// Quickstart: build an Unbiased Space Saving sketch over a disaggregated
// event stream, then answer the two questions the paper targets —
// arbitrary subset sums (with confidence intervals) and frequent items.
//
//   ./quickstart

#include <cstdio>

#include "core/frequent_items.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

int main() {
  using namespace dsketch;

  // A synthetic disaggregated stream: 5000 "users" with heavy-tailed
  // event counts, one row per event, arriving in random order.
  auto counts = WeibullCounts(/*n_items=*/5000, /*scale=*/50.0,
                              /*shape=*/0.4);
  Rng rng(42);
  auto rows = PermutedStream(counts, rng);
  std::printf("stream: %zu rows over %zu users\n", rows.size(),
              counts.size());

  // One pass, 256 bins. Updates are O(1).
  UnbiasedSpaceSaving sketch(/*capacity=*/256, /*seed=*/7);
  for (uint64_t user : rows) sketch.Update(user);

  std::printf("sketch: %zu bins, min bin %lld, total %lld (exact)\n\n",
              sketch.size(), static_cast<long long>(sketch.MinCount()),
              static_cast<long long>(sketch.TotalCount()));

  // --- Disaggregated subset sum: total events of even-id users. ---
  auto result =
      EstimateSubsetSum(sketch, [](uint64_t user) { return user % 2 == 0; });
  Interval ci = result.Confidence(0.95);
  double truth = 0;
  for (size_t u = 0; u < counts.size(); u += 2) {
    truth += static_cast<double>(counts[u]);
  }
  std::printf("subset sum (even users):\n");
  std::printf("  estimate  %10.0f\n", result.estimate);
  std::printf("  95%% CI    [%.0f, %.0f]\n", ci.lo, ci.hi);
  std::printf("  truth     %10.0f  (covered: %s)\n\n", truth,
              ci.Contains(truth) ? "yes" : "no");

  // --- Frequent items: users above 0.5% of all traffic. ---
  std::printf("frequent users (>0.5%% of events):\n");
  for (const FrequentItem& f : FrequentItems(sketch, 0.005)) {
    std::printf("  user %-6llu  estimate %-8lld  true %lld\n",
                static_cast<unsigned long long>(f.item),
                static_cast<long long>(f.estimate),
                static_cast<long long>(counts[f.item]));
  }
  return 0;
}
