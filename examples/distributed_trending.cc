// Distributed + time-decayed counting (paper §5.5, §5.3): the "trending
// news per country, merged into trending news for Europe" scenario.
//
// Each country runs its own Unbiased Space Saving sketch over its local
// click stream (a mapper); the reducer merges them unbiasedly to answer
// continent-level questions. A forward-decayed sketch over the same
// stream surfaces what is trending *now* rather than all-time.
//
//   ./distributed_trending

#include <cstdio>
#include <string>
#include <vector>

#include "core/decayed_space_saving.h"
#include "core/distributed.h"
#include "core/frequent_items.h"
#include "core/merge.h"
#include "stream/distributions.h"
#include "util/alias.h"
#include "util/random.h"

int main() {
  using namespace dsketch;

  const size_t kCountries = 8;
  const size_t kStories = 5000;
  const int kClicksPerCountry = 300000;

  // Story popularity differs per country; story 7 is big everywhere,
  // story 11 is big only in country 2, and story 42 bursts at the end.
  Rng rng(7);
  ShardedSketcher countries(kCountries, /*shard_capacity=*/128, 3);
  DecayedSpaceSaving trending(/*capacity=*/128, /*half_life=*/50000.0, 4);
  std::vector<int64_t> truth(kStories, 0);

  double clock = 0.0;
  for (size_t c = 0; c < kCountries; ++c) {
    std::vector<double> weights(kStories);
    for (size_t s = 0; s < kStories; ++s) {
      weights[s] = 1.0 / (1.0 + static_cast<double>((s * 31 + c * 17) % kStories));
    }
    weights[7] += 3.0;                     // global hit
    if (c == 2) weights[11] += 80.0;       // local hit
    AliasTable table(weights);
    for (int click = 0; click < kClicksPerCountry; ++click) {
      clock += 1.0;
      uint64_t story;
      // Burst of story 42 in the last 10% of each country stream.
      if (click > kClicksPerCountry * 90 / 100 && rng.NextDouble() < 0.8) {
        story = 42;
      } else {
        story = table.Sample(rng);
      }
      countries.UpdateShard(c, story);
      trending.Update(story, clock);
      ++truth[story];
    }
  }

  // Reducer: one unbiased merge over all country sketches.
  UnbiasedSpaceSaving global = countries.Combine(/*capacity=*/128, 5);
  std::printf("merged %zu country sketches; total %lld rows (exact)\n\n",
              kCountries, static_cast<long long>(global.TotalCount()));

  std::printf("all-time top stories (merged, vs truth):\n");
  for (const SketchEntry& e : TopK(global, 5)) {
    std::printf("  story %-6llu est %-9lld true %lld\n",
                static_cast<unsigned long long>(e.item),
                static_cast<long long>(e.count),
                static_cast<long long>(truth[e.item]));
  }

  std::printf("\ntrending now (half-life 50k clicks, decayed counts):\n");
  auto now_entries = trending.DecayedEntries(clock);
  for (size_t i = 0; i < 5 && i < now_entries.size(); ++i) {
    std::printf("  story %-6llu decayed weight %.0f\n",
                static_cast<unsigned long long>(now_entries[i].item),
                now_entries[i].weight);
  }
  std::printf("\n(story 42 should lead the trending list but not the\n"
              " all-time list; story 7 the reverse)\n");
  return 0;
}
