// Join size estimation under filters (paper §3.1: "database query
// optimization and join size estimation", Vengerov et al. 2015).
//
// Two disaggregated fact streams share a join key (e.g. user id). The
// exact join size is sum_u n_A(u) * n_B(u) — quadratic to pre-aggregate.
// This example shows the two sketch routes this library offers:
//
//  * AMS sketches of both streams: unbiased |A join B| for the unfiltered
//    join (linear sketches, no per-key state);
//  * Unbiased Space Saving on each stream: join size under *arbitrary
//    filters* by joining the two samples' HT-adjusted entries — something
//    AMS cannot do.
//
//   ./join_size [--users=N]
//
// The AMS route touches every one of its 2800 counters per row, so the
// runtime is proportional to --users (default 20000, the paper-sized
// run); the CTest smoke test passes a smaller universe to keep tier-1
// fast, and the full-sized run is registered under the `slow` label.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "core/unbiased_space_saving.h"
#include "frequency/ams.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace dsketch;

  // Universe of --users users; stream A = page views, stream B = purchases.
  size_t kUsers = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--users=", 8) == 0) {
      kUsers = static_cast<size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    }
  }
  auto views_per_user = WeibullCounts(kUsers, 30.0, 0.5);
  auto buys_per_user = GeometricCounts(kUsers, 0.4);
  Rng rng(11);
  // Different per-user shuffles so the two metrics are only loosely
  // correlated across users.
  rng.Shuffle(buys_per_user.data(), buys_per_user.size());

  auto stream_a = PermutedStream(views_per_user, rng);
  auto stream_b = PermutedStream(buys_per_user, rng);
  std::printf("stream A: %zu view rows; stream B: %zu purchase rows\n",
              stream_a.size(), stream_b.size());

  // Exact join size (ground truth; this is the expensive computation the
  // sketches replace).
  double true_join = 0, true_filtered = 0;
  for (size_t u = 0; u < kUsers; ++u) {
    double prod = static_cast<double>(views_per_user[u]) *
                  static_cast<double>(buys_per_user[u]);
    true_join += prod;
    if (u % 5 == 0) true_filtered += prod;  // filter: 20% user segment
  }

  // --- Route 1: AMS sketches (shared seed => shared sign hashes). ---
  AmsSketch ams_a(7, 400, /*seed=*/99), ams_b(7, 400, /*seed=*/99);
  for (uint64_t u : stream_a) ams_a.Update(u);
  for (uint64_t u : stream_b) ams_b.Update(u);
  double ams_est = ams_a.EstimateJoinSize(ams_b);

  // --- Route 2: USS samples joined on HT-adjusted counts. ---
  UnbiasedSpaceSaving uss_a(1024, 1), uss_b(1024, 2);
  for (uint64_t u : stream_a) uss_a.Update(u);
  for (uint64_t u : stream_b) uss_b.Update(u);

  // n_A(u)*n_B(u) estimated as est_A(u)*est_B(u): the two sketches are
  // independent, so the product is unbiased for each user.
  std::unordered_map<uint64_t, double> b_est;
  for (const SketchEntry& e : uss_b.Entries()) {
    b_est[e.item] = static_cast<double>(e.count);
  }
  double uss_join = 0, uss_filtered = 0;
  for (const SketchEntry& e : uss_a.Entries()) {
    auto it = b_est.find(e.item);
    if (it == b_est.end()) continue;
    double prod = static_cast<double>(e.count) * it->second;
    uss_join += prod;
    if (e.item % 5 == 0) uss_filtered += prod;
  }

  std::printf("\n%-34s %16s %16s\n", "estimator", "join_size", "rel_error");
  std::printf("%-34s %16.3g %15.1f%%\n", "exact", true_join, 0.0);
  std::printf("%-34s %16.3g %15.1f%%\n", "ams (unfiltered only)", ams_est,
              100.0 * (ams_est - true_join) / true_join);
  std::printf("%-34s %16.3g %15.1f%%\n", "uss sample join", uss_join,
              100.0 * (uss_join - true_join) / true_join);
  std::printf("\nfiltered join (20%% user segment):\n");
  std::printf("%-34s %16.3g\n", "exact", true_filtered);
  std::printf("%-34s %16.3g  (%.1f%% error)\n", "uss sample join",
              uss_filtered,
              100.0 * (uss_filtered - true_filtered) / true_filtered);
  std::printf("\n(AMS answers only the pre-declared unfiltered join; the\n"
              " unbiased samples answer arbitrary filtered joins)\n");
  return 0;
}
