// Ad click-through counting — the paper's motivating application (§3.1).
//
// The raw data is a disaggregated impression log (one row per impression,
// multiple rows per ad). Historical click and impression counts per ad —
// and per advertiser segment, for cold-start ads — are the features an ad
// predictor needs. Two sketches (impressions, clicks) answer arbitrary
// filtered aggregates via the query engine, next to exact ground truth.
//
//   ./ad_ctr

#include <cstdio>

#include "core/unbiased_space_saving.h"
#include "query/engine.h"
#include "query/exact_aggregator.h"
#include "query/predicate.h"
#include "stream/ad_click.h"

int main() {
  using namespace dsketch;

  AdClickConfig cfg;
  cfg.num_ads = 30000;
  cfg.num_features = 9;  // e.g. advertiser, campaign, product category...
  cfg.feature_cardinality = 40;
  AdClickGenerator gen(cfg, 2024);
  auto log = gen.GenerateLog(/*shuffled=*/false, 7);  // time-ordered log
  std::printf("ad log: %zu impressions over %zu ads (9 features)\n\n",
              log.size(), cfg.num_ads);

  // One pass over the raw log: impressions sketch + clicks sketch, plus
  // exact aggregation for comparison.
  UnbiasedSpaceSaving impressions(4096, 1);
  UnbiasedSpaceSaving clicks(4096, 2);
  ExactAggregator exact_impressions, exact_clicks;
  for (const AdImpression& row : log) {
    impressions.Update(row.ad_id);
    exact_impressions.Update(row.ad_id);
    if (row.click) {
      clicks.Update(row.ad_id);
      exact_clicks.Update(row.ad_id);
    }
  }

  SketchQueryEngine imp_engine(&impressions, &gen.attributes());
  SketchQueryEngine clk_engine(&clicks, &gen.attributes());
  ExactQueryEngine exact_imp_engine(&exact_impressions, &gen.attributes());
  ExactQueryEngine exact_clk_engine(&exact_clicks, &gen.attributes());

  // Historical CTR for a new ad: aggregate over ads sharing feature 0
  // (say, the advertiser) — the cold-start fallback of Richardson et al.
  std::printf("%-12s %14s %14s %12s %12s\n", "advertiser", "est_impr",
              "true_impr", "est_ctr", "true_ctr");
  for (uint32_t advertiser = 0; advertiser < 5; ++advertiser) {
    Predicate filter = Predicate().WhereEq(0, advertiser);
    auto imp = imp_engine.Sum(filter);
    auto clk = clk_engine.Sum(filter);
    double true_imp =
        static_cast<double>(exact_imp_engine.Sum(filter));
    double true_clk =
        static_cast<double>(exact_clk_engine.Sum(filter));
    std::printf("%-12u %14.0f %14.0f %11.3f%% %11.3f%%\n", advertiser,
                imp.estimate, true_imp,
                imp.estimate > 0 ? 100.0 * clk.estimate / imp.estimate : 0.0,
                true_imp > 0 ? 100.0 * true_clk / true_imp : 0.0);
  }

  // Grouped report: impressions by product category (feature 1) for one
  // advertiser, with CIs — the SELECT ... WHERE ... GROUP BY of §3.
  std::printf("\nimpressions by category for advertiser 0 (95%% CI):\n");
  auto groups = imp_engine.GroupBy1(1, Predicate().WhereEq(0, 0));
  auto exact_groups = exact_imp_engine.GroupBy1(1, Predicate().WhereEq(0, 0));
  int printed = 0;
  for (const auto& [category, est] : groups) {
    if (printed++ >= 6) break;
    Interval ci = est.Confidence(0.95);
    std::printf("  category %-4u est %8.0f  [%6.0f, %6.0f]  true %lld\n",
                category, est.estimate, ci.lo, ci.hi,
                static_cast<long long>(exact_groups[category]));
  }
  return 0;
}
