// IP-flow traffic accounting (paper §3.1): heavy hitters and hierarchical
// subnet aggregation over a packet stream keyed by (src, dst) pairs.
//
// The unit of analysis is the flow (src/dst pair) — trillions of possible
// units, so pre-aggregation is infeasible and the disaggregated sketch
// shines. A network operator asks: which flows are elephants? how much
// traffic does subnet 10.3.x.x send? Both come from one sketch, the second
// via an arbitrary group-by on the flow key (hierarchical aggregation).
//
//   ./network_flows

#include <cstdio>
#include <unordered_map>

#include "core/frequent_items.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "stream/distributions.h"
#include "util/alias.h"
#include "util/random.h"

namespace {

// Flow key: src subnet (8 bits), src host (8), dst subnet (8), dst host (8).
uint64_t MakeFlow(uint32_t src_subnet, uint32_t src_host, uint32_t dst_subnet,
                  uint32_t dst_host) {
  return (static_cast<uint64_t>(src_subnet) << 24) |
         (static_cast<uint64_t>(src_host) << 16) |
         (static_cast<uint64_t>(dst_subnet) << 8) | dst_host;
}

uint32_t SrcSubnet(uint64_t flow) { return (flow >> 24) & 0xFF; }

}  // namespace

int main() {
  using namespace dsketch;

  // Synthesize a packet stream: a few elephant flows, a heavy-tailed mass
  // of mice, and subnet-skewed sources.
  Rng rng(99);
  std::vector<double> subnet_weights(32);
  for (size_t s = 0; s < subnet_weights.size(); ++s) {
    subnet_weights[s] = 1.0 / static_cast<double>(s + 1);  // skewed subnets
  }
  AliasTable subnet_picker(subnet_weights);

  UnbiasedSpaceSaving sketch(512, 5);
  std::unordered_map<uint64_t, int64_t> truth;
  const int kPackets = 2000000;
  const uint64_t elephant1 = MakeFlow(3, 7, 9, 1);
  const uint64_t elephant2 = MakeFlow(1, 2, 3, 4);
  for (int p = 0; p < kPackets; ++p) {
    uint64_t flow;
    double coin = rng.NextDouble();
    if (coin < 0.05) {
      flow = elephant1;
    } else if (coin < 0.08) {
      flow = elephant2;
    } else {
      flow = MakeFlow(subnet_picker.Sample(rng),
                      static_cast<uint32_t>(rng.NextBounded(256)),
                      subnet_picker.Sample(rng),
                      static_cast<uint32_t>(rng.NextBounded(256)));
    }
    sketch.Update(flow);
    ++truth[flow];
  }
  std::printf("packets: %d, distinct flows: %zu, sketch bins: %zu\n\n",
              kPackets, truth.size(), sketch.capacity());

  // Elephant detection (DDoS / capacity planning).
  std::printf("elephant flows (>1%% of traffic):\n");
  for (const FrequentItem& f : FrequentItems(sketch, 0.01)) {
    std::printf("  flow src=%u.%llu dst=%llu.%llu  est %-8lld true %lld\n",
                SrcSubnet(f.item),
                static_cast<unsigned long long>((f.item >> 16) & 0xFF),
                static_cast<unsigned long long>((f.item >> 8) & 0xFF),
                static_cast<unsigned long long>(f.item & 0xFF),
                static_cast<long long>(f.estimate),
                static_cast<long long>(truth[f.item]));
  }

  // Hierarchical aggregation: traffic per source subnet — an arbitrary
  // group-by the sketch was never pre-arranged for.
  std::printf("\ntraffic by source subnet (top 6 of 32):\n");
  std::printf("%-10s %12s %12s %18s\n", "subnet", "estimate", "true",
              "95%% CI");
  for (uint32_t subnet = 0; subnet < 6; ++subnet) {
    auto est = EstimateSubsetSum(sketch, [subnet](uint64_t flow) {
      return SrcSubnet(flow) == subnet;
    });
    int64_t subnet_truth = 0;
    for (const auto& [flow, count] : truth) {
      if (SrcSubnet(flow) == subnet) subnet_truth += count;
    }
    Interval ci = est.Confidence(0.95);
    std::printf("%-10u %12.0f %12lld   [%.0f, %.0f]\n", subnet, est.estimate,
                static_cast<long long>(subnet_truth), ci.lo, ci.hi);
  }
  return 0;
}
