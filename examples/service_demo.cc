// Streaming service demo: two sketch-server nodes, framed protocol,
// replica catch-up over snapshot bytes — the deployment shape the paper's
// disaggregated setting implies (producers stream rows to a node, nodes
// exchange wire snapshots, clients query live state).
//
// Node A ingests an ad-click-shaped Zipf stream (with per-row revenue
// fed through the weighted path), answers subset-sum / top-k / group-by
// queries over a country dimension table, then ships one snapshot to a
// freshly booted node B, which immediately answers for A's whole stream.
//
//   ./service_demo [--rows=N]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "query/attribute_table.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace dsketch;

  int64_t target_rows = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--rows=", 7) == 0) {
      target_rows = std::strtoll(argv[i] + 7, nullptr, 10);
    }
  }

  // The workload: Zipf item counts over 20k campaigns, each labeled with
  // a country (dim 0) and a device class (dim 1).
  const size_t kItems = 20000;
  auto counts = ScaleCountsToTotal(ZipfCounts(kItems, 1.1, 4000), target_rows);
  Rng rng(7);
  auto rows = PermutedStream(counts, rng);
  AttributeTable attrs(/*num_dims=*/2);
  for (size_t i = 0; i < kItems; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i % 7),    // country
                   static_cast<uint32_t>(i % 3)});  // device
  }

  // Node A: server thread on one end of an in-memory duplex, client on
  // the other — byte-for-byte the same frames a socket would carry.
  SketchServerOptions options;
  options.shard.num_shards = 2;
  options.shard.shard_capacity = 2048;
  options.merged_capacity = 2048;
  InMemoryDuplex wire_a;
  SketchServer node_a(options, &attrs);
  std::thread serve_a([&] { node_a.Serve(wire_a.server()); });
  SketchClient client_a(wire_a.client());

  // Producers stream framed batches; revenue rides the weighted path.
  const size_t kBatch = 8192;
  std::vector<double> revenue;
  for (size_t pos = 0; pos < rows.size(); pos += kBatch) {
    size_t len = std::min(kBatch, rows.size() - pos);
    std::vector<uint64_t> batch(rows.begin() + pos, rows.begin() + pos + len);
    client_a.IngestBatch(batch);
    revenue.resize(len);
    for (size_t i = 0; i < len; ++i) {
      revenue[i] = 0.01 * (1.0 + static_cast<double>(batch[i] % 50));
    }
    client_a.IngestWeighted(batch, revenue);
  }

  auto total = client_a.QuerySum();
  auto country2 = client_a.QuerySum(PredicateSpec().WhereEq(0, 2));
  auto by_country = client_a.QueryGroupBy(0);
  auto topk = client_a.QueryTopK(5);
  auto rev = client_a.QuerySum(PredicateSpec(), QueryScope::kWeighted);
  std::printf("node A: %zu rows streamed in %zu-row frames\n", rows.size(),
              kBatch);
  if (total && country2 && rev) {
    std::printf("  total clicks      %.0f (exact: sketch preserves totals)\n",
                total->estimate);
    std::printf("  country 2 clicks  %.0f  +-%.0f (1 sigma)\n",
                country2->estimate, std::sqrt(country2->variance));
    std::printf("  revenue (weighted) %.2f\n", rev->estimate);
  }
  if (by_country) {
    std::printf("  group-by country: %zu groups\n", by_country->groups.size());
  }
  if (topk) {
    std::printf("  top campaigns:");
    for (const SketchEntry& e : topk->counts) {
      std::printf(" %llu(%lld)", static_cast<unsigned long long>(e.item),
                  static_cast<long long>(e.count));
    }
    std::printf("\n");
  }

  // Replication: one SNAPSHOT/RESTORE hop boots node B into A's state.
  auto blob = client_a.Snapshot();
  InMemoryDuplex wire_b;
  SketchServerOptions options_b = options;
  options_b.shard.seed = 31;
  options_b.seed = 31;
  SketchServer node_b(options_b, &attrs);
  std::thread serve_b([&] { node_b.Serve(wire_b.server()); });
  SketchClient client_b(wire_b.client());
  bool restored = blob.has_value() && client_b.Restore(*blob);

  auto total_b = client_b.QuerySum();
  std::printf("\nnode B: restored %zu snapshot bytes: %s\n",
              blob ? blob->size() : 0, restored ? "ok" : "FAILED");
  if (total_b && total) {
    std::printf("  replica total %.0f (primary %.0f)\n", total_b->estimate,
                total->estimate);
  }

  client_a.Shutdown();
  client_b.Shutdown();
  serve_a.join();
  serve_b.join();
  return restored && total_b && total &&
                 total_b->estimate == total->estimate
             ? 0
             : 1;
}
