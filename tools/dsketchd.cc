// dsketchd — the sketch service daemon.
//
// Default mode serves the framed protocol (service/protocol.h) on
// stdin/stdout, so any supervisor that can pipe bytes can run a node:
//
//   mkfifo in out && ./dsketchd < in > out      # or socat/s6/systemd
//
// --replica=<path> boots a read-only node instead: the file at <path>
// must be a frozen sketch image (wire/frozen.h, e.g. the bytes of a
// frozen SNAPSHOT written to disk). The image is mmap'd and served with
// zero decode — counts-scope SUM/TOPK/GROUPBY come straight off the
// page cache, INGEST/RESTORE answer kUnsupported, and SNAPSHOT re-serves
// the image itself.
//
// --smoke runs the CI end-to-end scenario fully in-process instead: boot
// node A over the in-memory transport, ingest a batch, run one query,
// take a snapshot, restore it into a freshly booted node B, and verify
// B answers for A's rows — then repeat the whole hop for the windowed
// scope (epoch-stamped ingest, last-k window queries, ring snapshot,
// ring restore), and finally the frozen-replica hop: A emits the frozen
// image, a replica node mmaps the written file, and its zero-decode
// answers must be bit-identical to a node that thawed the same image.
// Exits 0 only if every step checks out — the per-push CI job calls
// this after the build.
//
// Flags (all --key=value):
//   --shards=N            worker threads per node        (default 2)
//   --shard-capacity=N    bins per shard sketch          (default 4096)
//   --merged-capacity=N   bins of the query/snapshot view (default 4096)
//   --window-epochs=N     ring length of the windowed scope (default 4)
//   --epoch-interval-ms=N wall-clock epoch scheduling: advance the
//                         windowed epoch every N ms of real time while
//                         serving (default 0 = caller-driven epochs)
//   --seed=N              reproducible randomness        (default 1)
//   --slow-request-us=N   log every request slower than N µs as one
//                         structured stderr line (default 0 = off;
//                         format in README "Observability")
//   --metrics-interval-ms=N  every N ms, export the full Prometheus-
//                         style metrics exposition (obs/metrics.h) to
//                         --metrics-file, plus once at exit
//                         (default 0 = off)
//   --metrics-file=PATH   exposition target; written to PATH.tmp and
//                         atomically renamed over PATH, so scrapers
//                         never read a torn or half-written dump
//                         (default "" = stderr)
//   --trace-sample=N      capture every Nth request's full span tree
//                         (obs/trace.h; 1 = every request, 0 = off —
//                         the flight recorder runs regardless). With
//                         --slow-request-us, every slow request is
//                         also captured in full (tail sampling)
//   --trace-file=PATH     export the recent sampled traces as Chrome
//                         trace-event JSON (Perfetto-loadable) every
//                         --metrics-interval-ms, plus once at exit;
//                         same atomic tmp-file + rename discipline
//   --replica=PATH        serve the frozen image at PATH read-only
//   --smoke               run the self-contained two-node scenario
//
// Every mode installs the flight-recorder fatal hook: a CHECK failure
// or fatal signal dumps the last trace spans to stderr before the
// process dies, so an abort leaves a postmortem.

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/frozen_source.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

int64_t FlagInt(int argc, char** argv, const char* name, int64_t def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoll(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

bool FlagSet(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const char* def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

SketchServerOptions MakeOptions(int argc, char** argv) {
  SketchServerOptions options;
  options.shard.num_shards =
      static_cast<size_t>(FlagInt(argc, argv, "shards", 2));
  options.shard.shard_capacity =
      static_cast<size_t>(FlagInt(argc, argv, "shard-capacity", 4096));
  options.shard.seed = static_cast<uint64_t>(FlagInt(argc, argv, "seed", 1));
  options.merged_capacity =
      static_cast<size_t>(FlagInt(argc, argv, "merged-capacity", 4096));
  options.window.window_epochs =
      static_cast<size_t>(FlagInt(argc, argv, "window-epochs", 4));
  options.epoch_interval_ms = FlagInt(argc, argv, "epoch-interval-ms", 0);
  options.slow_request_us = FlagInt(argc, argv, "slow-request-us", 0);
  options.trace_sample = FlagInt(argc, argv, "trace-sample", 0);
  options.seed = options.shard.seed;
  return options;
}

// Writes `text` to PATH.tmp, fsyncs it, then renames over PATH and
// fsyncs the parent directory — a reader always sees either the
// previous complete export or the new one, never a partial file, and
// the rename survives a crash or power loss (the tmp file's bytes are
// durable before its name is). False on any fs failure (the tmp file
// is cleaned up).
bool AtomicWriteFile(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);  // best effort: the rename itself already landed
    ::close(dir_fd);
  }
  return true;
}

// Periodic telemetry export (--metrics-interval-ms): a background
// thread writes the full DumpMetricsText() output to --metrics-file
// (or stderr) and, when --trace-file is set, the recent sampled traces
// as Chrome trace-event JSON — both via AtomicWriteFile, so a scraper
// or a Perfetto load never reads a torn export. A final export runs at
// shutdown whenever an interval or a target file was configured, so
// even a short-lived run leaves its last scrape and traces behind.
// Sleeps in short slices so destruction is prompt.
class TelemetryExporter {
 public:
  TelemetryExporter(int64_t interval_ms, std::string metrics_path,
                    std::string trace_path)
      : interval_ms_(interval_ms),
        metrics_path_(std::move(metrics_path)),
        trace_path_(std::move(trace_path)) {
    if (interval_ms_ > 0) thread_ = std::thread([this] { Loop(); });
  }

  ~TelemetryExporter() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
    if (interval_ms_ > 0 || !metrics_path_.empty() || !trace_path_.empty()) {
      Dump();
    }
  }

 private:
  void Loop() {
    using clock = std::chrono::steady_clock;
    auto next = clock::now() + std::chrono::milliseconds(interval_ms_);
    while (!stop_.load(std::memory_order_relaxed)) {
      if (clock::now() >= next) {
        Dump();
        next = clock::now() + std::chrono::milliseconds(interval_ms_);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  // Transient fs trouble must not kill serving: failures are dropped.
  void Dump() const {
    // Metrics go to stderr only under a periodic interval — a run that
    // set just --trace-file should not get a surprise metrics dump.
    if (interval_ms_ > 0 || !metrics_path_.empty()) {
      const std::string text = obs::DumpMetricsText();
      if (metrics_path_.empty()) {
        std::fwrite(text.data(), 1, text.size(), stderr);
      } else {
        AtomicWriteFile(metrics_path_, text);
      }
    }
    if (!trace_path_.empty()) {
      AtomicWriteFile(trace_path_, obs::TraceToChromeJson(
                                       obs::TraceCollector::Global().Recent()));
    }
  }

  const int64_t interval_ms_;
  const std::string metrics_path_;
  const std::string trace_path_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// One booted node: server thread on an in-memory connection, client on
// the other end. The destructor closes the client's write side (EOF ends
// Serve if it is still running) and joins, so early failure returns exit
// cleanly instead of aborting in a joinable thread's destructor.
struct Node {
  InMemoryDuplex wire;
  SketchServer server;
  std::thread serve;
  SketchClient client;

  explicit Node(const SketchServerOptions& options)
      : server(options),
        serve([this] { server.Serve(wire.server()); }),
        client(wire.client()) {}

  // Read-replica node over a frozen image (`replica` must outlive it).
  Node(const SketchServerOptions& options, FrozenSketchSource* replica)
      : server(options, replica, nullptr),
        serve([this] { server.Serve(wire.server()); }),
        client(wire.client()) {}

  ~Node() {
    wire.client().CloseWrite();
    if (serve.joinable()) serve.join();
  }
};

// Value of the exposition series `name` (exact match including labels),
// or -1.0 when the dump carries no such line.
double MetricFromText(const std::string& text, const std::string& name) {
  const std::string needle = name + ' ';
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (text.compare(pos, needle.size(), needle) == 0) {
      return std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    pos = eol + 1;
  }
  return -1.0;
}

// The CI smoke scenario: two nodes, one replication hop, every core
// opcode exercised once. Returns 0 on success, 1 with a message on the
// first failed check.
int RunSmoke(SketchServerOptions options) {
  // Sampling on for the whole scenario unless the caller picked a rate:
  // the trace assertions below need the span trees captured.
  if (options.trace_sample == 0) options.trace_sample = 1;
  auto fail = [](const char* what) {
    std::fprintf(stderr, "smoke: FAILED at %s\n", what);
    return 1;
  };

  // Node A over its own in-memory connection.
  Node node_a(options);
  SketchClient& client_a = node_a.client;

  // A Zipf workload (the shape producers actually send).
  auto counts = ZipfCounts(2000, 1.1, 500);
  Rng rng(42);
  auto rows = PermutedStream(counts, rng);
  const size_t kBatch = 4096;
  for (size_t pos = 0; pos < rows.size(); pos += kBatch) {
    size_t len = std::min(kBatch, rows.size() - pos);
    std::vector<uint64_t> batch(rows.begin() + pos, rows.begin() + pos + len);
    if (!client_a.IngestBatch(batch)) return fail("INGEST_BATCH");
  }

  auto sum_a = client_a.QuerySum();
  if (!sum_a.has_value()) return fail("QUERY_SUM");
  if (sum_a->estimate != static_cast<double>(rows.size())) {
    return fail("QUERY_SUM total (sketch preserves totals exactly)");
  }
  auto topk_a = client_a.QueryTopK(10);
  if (!topk_a.has_value() || topk_a->counts.empty()) {
    return fail("QUERY_TOPK");
  }

  auto blob = client_a.Snapshot();
  if (!blob.has_value() || blob->empty()) return fail("SNAPSHOT");

  // Node B: fresh instance, catches up purely from A's snapshot bytes.
  SketchServerOptions options_b = options;
  options_b.shard.seed += 100;
  options_b.seed += 100;
  Node node_b(options_b);
  SketchClient& client_b = node_b.client;

  if (!client_b.Restore(*blob)) return fail("RESTORE");
  auto sum_b = client_b.QuerySum();
  if (!sum_b.has_value()) return fail("QUERY_SUM on replica");
  if (sum_b->estimate != sum_a->estimate) {
    return fail("replica total == primary total");
  }
  auto topk_b = client_b.QueryTopK(10);
  if (!topk_b.has_value() || topk_b->counts.size() != topk_a->counts.size()) {
    return fail("QUERY_TOPK on replica");
  }
  auto stats_b = client_b.Stats();
  if (!stats_b.has_value() || stats_b->restores != 1) return fail("STATS");

  // Windowed scope: epoch-stamped ingest on A, last-k window queries,
  // then the full epoch ring replicates to B through one SNAPSHOT →
  // RESTORE hop.
  const size_t kEpochs = 3;
  const size_t kRowsPerEpoch = 2000;
  size_t window_rows = 0;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    std::vector<uint64_t> epoch_rows;
    epoch_rows.reserve(kRowsPerEpoch);
    for (size_t i = 0; i < kRowsPerEpoch; ++i) {
      // Epoch-disjoint labels so per-epoch truths are known exactly.
      epoch_rows.push_back(e * 10000 + rng.NextBounded(500));
    }
    window_rows += epoch_rows.size();
    if (!client_a.IngestWindowed(epoch_rows, e)) {
      return fail("windowed INGEST_BATCH");
    }
  }
  auto win_all = client_a.QuerySum(PredicateSpec(), QueryScope::kWindow);
  if (!win_all.has_value()) return fail("windowed QUERY_SUM");
  if (win_all->estimate != static_cast<double>(window_rows)) {
    return fail("windowed QUERY_SUM total (window merge preserves totals)");
  }
  auto win_last = client_a.QuerySum(PredicateSpec(), QueryScope::kWindow,
                                    /*last_k=*/1);
  if (!win_last.has_value()) return fail("windowed QUERY_SUM last_k=1");
  if (win_last->estimate != static_cast<double>(kRowsPerEpoch)) {
    return fail("windowed last_k=1 total == newest epoch rows");
  }
  auto win_topk =
      client_a.QueryTopK(5, QueryScope::kWindow, /*last_k=*/1);
  if (!win_topk.has_value() || win_topk->counts.empty()) {
    return fail("windowed QUERY_TOPK");
  }
  // Every last_k=1 heavy hitter must be a newest-epoch label.
  for (const SketchEntry& e : win_topk->counts) {
    if (e.item / 10000 != kEpochs - 1) {
      return fail("windowed last_k=1 top-k stays in the newest epoch");
    }
  }

  // Tracing hop. The first windowed query hit a dirty ring, so its
  // sampled span tree must cover every layer: frame decode → shard
  // drain → window merge → query reduction → wire encode, all under
  // one "request" root. (Spans compile to no-ops under
  // -DDSKETCH_NO_METRICS; the structural checks are gated with them.)
#ifndef DSKETCH_NO_METRICS
  {
    bool tree_found = false;
    for (const obs::TraceRecord& rec :
         obs::TraceCollector::Global().Recent()) {
      bool root = false, decode = false, drain = false, window = false,
           reduce = false, encode = false;
      for (const obs::Span& s : rec.spans) {
        if (s.name == nullptr) continue;
        if (std::strcmp(s.name, "request") == 0 && s.parent_id == 0) {
          root = true;
        }
        if (std::strcmp(s.name, "frame_decode") == 0) decode = true;
        if (std::strcmp(s.name, "shard_drain") == 0) drain = true;
        if (std::strcmp(s.name, "window_merge") == 0) window = true;
        if (std::strcmp(s.name, "query_reduce") == 0) reduce = true;
        if (std::strcmp(s.name, "wire_encode") == 0) encode = true;
      }
      if (root && decode && drain && window && reduce && encode) {
        tree_found = true;
        break;
      }
    }
    if (!tree_found) {
      return fail("sampled trace covers service/shard/window/wire layers");
    }
  }
#endif
  // TRACE opcode: recent scope is Chrome trace-event JSON, flight scope
  // the always-on recorder's text dump.
  auto trace_json = client_a.Trace();
  if (!trace_json.has_value() ||
      trace_json->find("traceEvents") == std::string::npos) {
    return fail("TRACE recent (Chrome JSON)");
  }
  auto flight = client_a.Trace(TraceScope::kFlight);
  if (!flight.has_value()) return fail("TRACE flight");
#ifndef DSKETCH_NO_METRICS
  if (trace_json->find("window_merge") == std::string::npos) {
    return fail("TRACE recent carries the window_merge span");
  }
  if (flight->find("request") == std::string::npos) {
    return fail("TRACE flight carries request spans");
  }
#endif

  auto ring = client_a.Snapshot(QueryScope::kWindow);
  if (!ring.has_value() || ring->empty()) return fail("windowed SNAPSHOT");
  if (!client_b.Restore(*ring, QueryScope::kWindow)) {
    return fail("windowed RESTORE");
  }
  auto win_b = client_b.QuerySum(PredicateSpec(), QueryScope::kWindow);
  if (!win_b.has_value()) return fail("windowed QUERY_SUM on replica");
  if (win_b->estimate != win_all->estimate) {
    return fail("windowed replica total == primary total");
  }
  auto win_b_last = client_b.QuerySum(PredicateSpec(), QueryScope::kWindow,
                                      /*last_k=*/1);
  if (!win_b_last.has_value() ||
      win_b_last->estimate != win_last->estimate) {
    return fail("windowed replica last_k=1 == primary last_k=1");
  }
  auto stats_a = client_a.Stats();
  if (!stats_a.has_value() ||
      stats_a->windowed_rows_ingested != window_rows ||
      stats_a->window_epoch != kEpochs - 1) {
    return fail("windowed STATS");
  }
#ifndef DSKETCH_NO_METRICS
  if (stats_a->traces_captured_total == 0) {
    return fail("STATS traces_captured_total after sampled requests");
  }
#endif

  // METRICS hop: the exposition must show the smoke's own traffic.
  // First stir the window merge cache deliberately: last_k=2 decomposes
  // to a level-0 node the earlier full-window query already cached (a
  // node-cache hit), and re-asking last_k=1 lands on the combine memo
  // entry that query populated (a memo hit).
  auto win_last2 = client_a.QuerySum(PredicateSpec(), QueryScope::kWindow,
                                     /*last_k=*/2);
  if (!win_last2.has_value() ||
      win_last2->estimate != static_cast<double>(2 * kRowsPerEpoch)) {
    return fail("windowed QUERY_SUM last_k=2");
  }
  auto win_last1b = client_a.QuerySum(PredicateSpec(), QueryScope::kWindow,
                                      /*last_k=*/1);
  if (!win_last1b.has_value() || win_last1b->estimate != win_last->estimate) {
    return fail("windowed QUERY_SUM last_k=1 repeat");
  }
  // The exposition's content (like the trace checks above) only exists
  // when the build records metrics; the opcode itself must answer kOk
  // either way.
  auto metrics = client_a.Metrics();
  if (!metrics.has_value()) return fail("METRICS");
#ifndef DSKETCH_NO_METRICS
  if (metrics->empty()) return fail("METRICS");
  const std::string requests = "dsketch_service_requests_total";
  if (MetricFromText(*metrics, requests + "{opcode=\"ingest_batch\"}") <= 0 ||
      MetricFromText(*metrics, requests + "{opcode=\"query_sum\"}") <= 0 ||
      MetricFromText(*metrics, requests + "{opcode=\"snapshot\"}") <= 0) {
    return fail("METRICS nonzero request counters");
  }
  if (MetricFromText(*metrics,
                     "dsketch_service_request_latency_us_count"
                     "{opcode=\"query_sum\"}") <= 0) {
    return fail("METRICS nonzero query latency histogram");
  }
  if (MetricFromText(*metrics, "dsketch_window_node_cache_hits_total") <= 0 ||
      MetricFromText(*metrics, "dsketch_window_node_cache_misses_total") <= 0 ||
      MetricFromText(*metrics, "dsketch_window_combine_memo_hits_total") <= 0) {
    return fail("METRICS window merge-cache movement");
  }
  if (MetricFromText(*metrics,
                     "dsketch_shard_rows_ingested_total{shard=\"0\"}") <= 0) {
    return fail("METRICS shard ingest counters");
  }
  if (metrics->find("dsketch_util_build_info{") == std::string::npos) {
    return fail("METRICS allocator/build info gauge");
  }
  // Scope filter: a window-scoped dump carries window families only.
  auto scoped = client_a.Metrics(MetricsScope::kWindow);
  if (!scoped.has_value() || scoped->empty() ||
      scoped->find("dsketch_service_") != std::string::npos ||
      scoped->find("dsketch_window_") == std::string::npos) {
    return fail("METRICS window scope filter");
  }
#endif  // DSKETCH_NO_METRICS

  // Frozen-replica hop: A emits the frozen mmap-able image, the image
  // goes to disk, a replica node mmaps the file and answers with zero
  // decode. The reference answers come from a node that THAWED the same
  // image (restored it through the normal path), so this asserts the
  // tentpole bit-identity contract: frozen answers == thawed answers.
  auto frozen = client_a.Snapshot(QueryScope::kCounts, /*frozen=*/true);
  if (!frozen.has_value() || frozen->empty()) return fail("frozen SNAPSHOT");
  auto stats_fa = client_a.Stats();
  if (!stats_fa.has_value() ||
      stats_fa->last_snapshot_format != SnapshotFormat::kFrozen ||
      stats_fa->last_snapshot_bytes != frozen->size()) {
    return fail("STATS last_snapshot_format/bytes after frozen SNAPSHOT");
  }
  const std::string image_path =
      "dsketchd_smoke_frozen_" +
      std::to_string(static_cast<unsigned>(options.seed)) + ".bin";
  {
    std::FILE* f = std::fopen(image_path.c_str(), "wb");
    if (f == nullptr) return fail("frozen image fopen");
    const bool wrote =
        std::fwrite(frozen->data(), 1, frozen->size(), f) == frozen->size();
    std::fclose(f);
    if (!wrote) return fail("frozen image fwrite");
  }
  std::optional<FrozenSketchSource> image =
      FrozenSketchSource::FromFile(image_path);
  if (!image.has_value() || !image->Validate()) {
    std::remove(image_path.c_str());
    return fail("frozen image map + vet");
  }
  {
    Node node_r(options, &*image);
    SketchClient& client_r = node_r.client;

    // Thawed reference: a fresh node restores the SAME frozen bytes
    // through the O(n) path (RESTORE accepts the frozen kind).
    SketchServerOptions options_c = options;
    options_c.shard.seed += 200;
    options_c.seed += 200;
    Node node_c(options_c);
    SketchClient& client_c = node_c.client;
    if (!client_c.Restore(*frozen)) return fail("RESTORE of frozen blob");

    auto sum_r = client_r.QuerySum();
    auto sum_c = client_c.QuerySum();
    if (!sum_r.has_value() || !sum_c.has_value()) {
      return fail("QUERY_SUM on frozen replica");
    }
    if (sum_r->estimate != sum_c->estimate ||
        sum_r->variance != sum_c->variance ||
        sum_r->items_in_sample != sum_c->items_in_sample) {
      return fail("frozen SUM bit-identical to thawed SUM");
    }
    auto topk_r = client_r.QueryTopK(10);
    auto topk_c = client_c.QueryTopK(10);
    if (!topk_r.has_value() || !topk_c.has_value() ||
        topk_r->counts.size() != topk_c->counts.size()) {
      return fail("QUERY_TOPK on frozen replica");
    }
    for (size_t i = 0; i < topk_r->counts.size(); ++i) {
      if (topk_r->counts[i].item != topk_c->counts[i].item ||
          topk_r->counts[i].count != topk_c->counts[i].count) {
        return fail("frozen TOPK bit-identical to thawed TOPK");
      }
    }
    // The replica is read-only: ingest and restore must be refused.
    if (client_r.IngestBatch(std::vector<uint64_t>{1, 2, 3})) {
      return fail("replica rejects INGEST_BATCH");
    }
    if (client_r.Restore(*blob)) return fail("replica rejects RESTORE");
    // A replica's snapshot is the image itself, byte for byte.
    auto refrozen = client_r.Snapshot();
    if (!refrozen.has_value() || *refrozen != *frozen) {
      return fail("replica SNAPSHOT re-serves the image");
    }
    auto stats_r = client_r.Stats();
    if (!stats_r.has_value() ||
        stats_r->total_count != static_cast<int64_t>(rows.size())) {
      return fail("replica STATS total_count off the image header");
    }
    // Replicas serve TRACE too — observability never requires a writer.
    auto trace_r = client_r.Trace();
    if (!trace_r.has_value() ||
        trace_r->find("traceEvents") == std::string::npos) {
      return fail("TRACE on frozen replica");
    }
    if (!client_r.Shutdown()) return fail("SHUTDOWN replica node");
    if (!client_c.Shutdown()) return fail("SHUTDOWN thawed node");
  }
  std::remove(image_path.c_str());

  if (!client_a.Shutdown()) return fail("SHUTDOWN node A");
  if (!client_b.Shutdown()) return fail("SHUTDOWN node B");

  std::printf(
      "smoke: OK — %zu rows ingested, top-1 item %llu, %zu snapshot bytes "
      "replicated, replica total %.0f; windowed: %zu rows over %zu epochs, "
      "%zu ring bytes replicated, replica window total %.0f; frozen: %zu "
      "image bytes served via mmap=%d, zero-decode answers bit-identical\n",
      rows.size(),
      static_cast<unsigned long long>(topk_a->counts.front().item),
      blob->size(), sum_b->estimate, window_rows, kEpochs, ring->size(),
      win_b->estimate, frozen->size(), image->backed_by_mmap() ? 1 : 0);
  return 0;
}

int Run(int argc, char** argv) {
  SketchServerOptions options = MakeOptions(argc, argv);
  // Flag validation before any server boots: a bad value must be a
  // usage error on stderr, not a DSKETCH_CHECK abort mid-startup.
  if (options.epoch_interval_ms < 0) {
    std::fprintf(stderr,
                 "dsketchd: --epoch-interval-ms must be >= 0 (got %lld)\n",
                 static_cast<long long>(options.epoch_interval_ms));
    return 2;
  }
  if (options.slow_request_us < 0) {
    std::fprintf(stderr,
                 "dsketchd: --slow-request-us must be >= 0 (got %lld)\n",
                 static_cast<long long>(options.slow_request_us));
    return 2;
  }
  if (options.trace_sample < 0) {
    std::fprintf(stderr,
                 "dsketchd: --trace-sample must be >= 0 (got %lld)\n",
                 static_cast<long long>(options.trace_sample));
    return 2;
  }
  const int64_t metrics_interval_ms =
      FlagInt(argc, argv, "metrics-interval-ms", 0);
  if (metrics_interval_ms < 0) {
    std::fprintf(stderr,
                 "dsketchd: --metrics-interval-ms must be >= 0 (got %lld)\n",
                 static_cast<long long>(metrics_interval_ms));
    return 2;
  }
  // Postmortem hook: a CHECK failure or fatal signal from here on dumps
  // the flight recorder's newest spans to stderr before the abort.
  obs::InstallTraceFatalHandlers();

  if (FlagSet(argc, argv, "smoke")) return RunSmoke(options);

  // Covers both writer and replica modes below; inert at interval 0.
  TelemetryExporter exporter(metrics_interval_ms,
                             FlagStr(argc, argv, "metrics-file", ""),
                             FlagStr(argc, argv, "trace-file", ""));

  const std::string replica_path = FlagStr(argc, argv, "replica", "");
  if (!replica_path.empty()) {
    // Read-replica mode: mmap the frozen image, vet it structurally
    // (O(1)), then deep-validate the content once (O(n)) — the file is
    // untrusted input, and a serving process must never CHECK-fail on
    // it later.
    std::optional<FrozenSketchSource> image =
        FrozenSketchSource::FromFile(replica_path);
    if (!image.has_value()) {
      std::fprintf(stderr,
                   "dsketchd: --replica: %s is not a readable frozen image\n",
                   replica_path.c_str());
      return 2;
    }
    if (!image->Validate()) {
      std::fprintf(stderr,
                   "dsketchd: --replica: %s failed content validation\n",
                   replica_path.c_str());
      return 2;
    }
    std::fprintf(
        stderr,
        "dsketchd: replica mode: %s — %zu bytes, %llu entries, "
        "total_count %lld, snapshot format frozen, backed_by_mmap=%d\n",
        replica_path.c_str(), image->frozen().bytes().size(),
        static_cast<unsigned long long>(image->frozen().entry_count()),
        static_cast<long long>(image->frozen().total_count()),
        image->backed_by_mmap() ? 1 : 0);
    FdTransport stdio(/*read_fd=*/0, /*write_fd=*/1);
    SketchServer server(options, &*image, nullptr);
    server.Serve(stdio);
    return 0;
  }

  // Serve the framed protocol on stdin/stdout until EOF or SHUTDOWN.
  FdTransport stdio(/*read_fd=*/0, /*write_fd=*/1);
  SketchServer server(options);
  server.Serve(stdio);
  return 0;
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) { return dsketch::Run(argc, argv); }
