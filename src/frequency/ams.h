// AMS "tug of war" sketch (Alon, Matias & Szegedy 1999), the second
// counting sketch the paper's related work cites for pre-known filters.
// Estimates the second frequency moment F2 = sum_i n_i^2 (self-join size)
// with a median-of-means over counters Z_j = sum_i s_j(i) n_i, where each
// sign hash s_j is 4-wise independent.

#ifndef DSKETCH_FREQUENCY_AMS_H_
#define DSKETCH_FREQUENCY_AMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hashing/poly_hash.h"
#include "util/random.h"

namespace dsketch {

/// AMS F2 sketch with `groups` x `per_group` sign counters.
class AmsSketch {
 public:
  /// Median over `groups` groups of the mean of `per_group` squared
  /// counters. Variance of each group mean is 2 F2^2 / per_group.
  AmsSketch(size_t groups, size_t per_group, uint64_t seed = 1);

  /// Adds `count` occurrences of `item` (negative deletes are allowed —
  /// the sketch is linear).
  void Update(uint64_t item, int64_t count = 1);

  /// Estimate of F2 = sum_i n_i^2.
  double EstimateF2() const;

  /// Estimated join size with `other` (must share seed/shape):
  /// sum_i n_i * m_i via the cross product of counters.
  double EstimateJoinSize(const AmsSketch& other) const;

  /// Total counters.
  size_t size() const { return counters_.size(); }

 private:
  size_t groups_;
  size_t per_group_;
  std::vector<int64_t> counters_;   // groups_ x per_group_
  std::vector<PolyHash> sign_hash_;  // one 4-wise hash per counter
};

}  // namespace dsketch

#endif  // DSKETCH_FREQUENCY_AMS_H_
