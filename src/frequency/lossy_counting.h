// Lossy Counting (Manku & Motwani 2002), simplified form described in the
// paper (§5.2): the same decrement-all reduction as Misra-Gries but on a
// fixed schedule — after every `period` rows all counters drop by one —
// rather than a data-dependent one. Counts items with frequency > n/period
// while underestimating counts by at most n/period. Unlike Misra-Gries,
// the number of live counters is not bounded by the period; it can grow to
// O(period * log(n/period)) in the worst case.

#ifndef DSKETCH_FREQUENCY_LOSSY_COUNTING_H_
#define DSKETCH_FREQUENCY_LOSSY_COUNTING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sketch_entry.h"

namespace dsketch {

/// Lossy Counting with decrement period `period` (the "m" of the paper).
class LossyCounting {
 public:
  /// Decrements all counters after every `period` rows.
  explicit LossyCounting(size_t period);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Estimated count (underestimate by at most decrements(); 0 if absent).
  int64_t EstimateCount(uint64_t item) const;

  /// Upper bound: estimate + decrements().
  int64_t UpperBound(uint64_t item) const;

  /// True if `item` holds a counter.
  bool Contains(uint64_t item) const {
    return counters_.find(item) != counters_.end();
  }

  /// Number of decrement epochs so far (= floor(n / period)).
  int64_t decrements() const { return offset_; }

  /// Rows processed.
  int64_t TotalCount() const { return total_; }

  /// Live counters in descending estimate order.
  std::vector<SketchEntry> Entries() const;

  /// Number of live counters (not bounded by period).
  size_t size() const { return counters_.size(); }

 private:
  size_t period_;
  std::unordered_map<uint64_t, int64_t> counters_;  // stored = est + offset_
  int64_t offset_ = 0;
  int64_t total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_FREQUENCY_LOSSY_COUNTING_H_
