// Misra-Gries frequent item sketch (Misra & Gries 1982; Demaine et al.
// 2002; Karp et al. 2003).
//
// Maintains at most m counters. A tracked item increments its counter; an
// untracked item takes a free counter if available, otherwise *all*
// counters are decremented by one (zeros are dropped, and the new item is
// discarded). Estimates underestimate by at most n/m.
//
// The sketch is isomorphic to Deterministic Space Saving (paper §5.2;
// Agarwal et al. 2013): Misra-Gries with m-1 counters corresponds exactly
// to Space Saving with m bins via
//   N̂_MG(i) = (N̂_DSS(i) - N̂min)₊ ,
// independent of tie-breaking, and the total number of decrements equals
// the DSS minimum bin count at all times.
// This implementation uses a global-offset trick: "decrement all" is a
// single offset increment plus an amortized purge of dead counters, so
// updates are amortized O(1).

#ifndef DSKETCH_FREQUENCY_MISRA_GRIES_H_
#define DSKETCH_FREQUENCY_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sketch_entry.h"

namespace dsketch {

/// The Misra-Gries summary.
class MisraGries {
 public:
  /// Sketch with at most `capacity` counters.
  explicit MisraGries(size_t capacity);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Estimated count (underestimate; 0 when untracked).
  int64_t EstimateCount(uint64_t item) const;

  /// Upper bound on the true count: estimate + decrements().
  int64_t UpperBound(uint64_t item) const;

  /// True if `item` holds a counter.
  bool Contains(uint64_t item) const {
    return counters_.find(item) != counters_.end();
  }

  /// Total number of decrement-all operations performed (equals the
  /// Deterministic Space Saving minimum bin count on the same stream).
  int64_t decrements() const { return offset_; }

  /// Rows processed.
  int64_t TotalCount() const { return total_; }

  /// Maximum number of counters.
  size_t capacity() const { return capacity_; }

  /// Number of live counters.
  size_t size() const { return counters_.size(); }

  /// Live counters (estimate > 0) in descending estimate order.
  std::vector<SketchEntry> Entries() const;

  /// Merges another sketch into this one with the Agarwal et al.
  /// soft-threshold merge (deterministic guarantee preserved; biased).
  void MergeFrom(const MisraGries& other);

  /// Replaces contents with `entries` (≤ capacity, distinct labels,
  /// positive estimates) plus the global decrement count and row total.
  /// Used by serialization; the restored sketch answers EstimateCount,
  /// UpperBound, and TotalCount exactly as the original did.
  void LoadState(const std::vector<SketchEntry>& entries, int64_t decrements,
                 int64_t total);

 private:
  void DecrementAll();

  size_t capacity_;
  // Stored value = estimate + offset_ at all times; estimate = stored - offset_.
  std::unordered_map<uint64_t, int64_t> counters_;
  int64_t offset_ = 0;
  int64_t total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_FREQUENCY_MISRA_GRIES_H_
