#include "frequency/sticky_sampling.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

StickySampling::StickySampling(size_t t, uint64_t seed)
    : t_(t), next_boundary_(static_cast<int64_t>(2 * t)), rng_(seed) {
  DSKETCH_CHECK(t > 0);
}

void StickySampling::Update(uint64_t item) {
  if (total_ >= next_boundary_) HalveRate();
  ++total_;

  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (rng_.NextBernoulli(rate_)) counters_.emplace(item, 1);
}

void StickySampling::HalveRate() {
  rate_ *= 0.5;
  next_boundary_ *= 2;
  // Diminish each counter by the number of tails before the first head of
  // a fair coin; drop counters that reach zero (Manku & Motwani).
  for (auto it = counters_.begin(); it != counters_.end();) {
    int64_t tails = static_cast<int64_t>(rng_.NextGeometric0(0.5));
    it->second -= tails;
    if (it->second <= 0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t StickySampling::EstimateCount(uint64_t item) const {
  auto it = counters_.find(item);
  return it != counters_.end() ? it->second : 0;
}

std::vector<SketchEntry> StickySampling::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(counters_.size());
  for (const auto& [item, c] : counters_) out.push_back({item, c});
  std::sort(out.begin(), out.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count > b.count;
            });
  return out;
}

}  // namespace dsketch
