// Signed / deletion-capable Misra-Gries (paper §5.3): "It can be modified
// to handle deletions and arbitrary numeric aggregations by making the
// thresholding operation two-sided so that negative values are shrunk
// toward 0 as well."
//
// Counters hold signed values; when the summary exceeds capacity the
// reduction soft-thresholds *two-sidedly* by the (capacity+1)-th largest
// absolute value: positives shrink down, negatives shrink up, and values
// crossing zero are dropped. Estimates carry the deterministic error bound
// |n̂ - n| <= (sum of thresholds applied). As in the paper, no stronger
// theoretical analysis is claimed for the signed case.

#ifndef DSKETCH_FREQUENCY_SIGNED_MISRA_GRIES_H_
#define DSKETCH_FREQUENCY_SIGNED_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sketch_entry.h"

namespace dsketch {

/// Misra-Gries over signed integer updates (insertions and deletions).
class SignedMisraGries {
 public:
  /// At most `capacity` counters are kept after each reduction.
  explicit SignedMisraGries(size_t capacity);

  /// Adds `delta` (any sign, non-zero) to `item`'s value.
  void Update(uint64_t item, int64_t delta);

  /// Estimated value (biased toward 0 by at most error_bound()).
  int64_t EstimateValue(uint64_t item) const;

  /// Deterministic bound on |truth - estimate| for any item.
  int64_t error_bound() const { return threshold_applied_; }

  /// True if `item` holds a counter.
  bool Contains(uint64_t item) const {
    return counters_.find(item) != counters_.end();
  }

  /// Exact sum of all deltas processed (maintained separately).
  int64_t NetTotal() const { return net_total_; }

  /// Live counters, descending by |value|.
  std::vector<SketchEntry> Entries() const;

  /// Number of live counters.
  size_t size() const { return counters_.size(); }

  /// Maximum counters retained after a reduction.
  size_t capacity() const { return capacity_; }

 private:
  void Reduce();

  size_t capacity_;
  std::unordered_map<uint64_t, int64_t> counters_;
  int64_t threshold_applied_ = 0;  // cumulative two-sided shrinkage
  int64_t net_total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_FREQUENCY_SIGNED_MISRA_GRIES_H_
