// Sticky Sampling (Manku & Motwani 2002). Included to complete the
// related-work family the paper discusses (§5.2); the paper notes it has
// both worse practical performance and weaker guarantees than the other
// frequent-item sketches, which the bench suite confirms.
//
// Rows are sampled into the summary with a rate that halves every time the
// window doubles; on each rate change every counter is diminished by a
// Geometric number of failed coin tosses. Tracked items count exactly.

#ifndef DSKETCH_FREQUENCY_STICKY_SAMPLING_H_
#define DSKETCH_FREQUENCY_STICKY_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sketch_entry.h"
#include "util/random.h"

namespace dsketch {

/// Sticky Sampling with window scale `t`: the first 2t rows are sampled at
/// rate 1, the next 2t at rate 1/2, then 4t at rate 1/4, and so on.
class StickySampling {
 public:
  /// `t` controls memory (expected ~2t counters); `seed` drives sampling.
  explicit StickySampling(size_t t, uint64_t seed = 1);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Estimated count (underestimate; 0 when untracked).
  int64_t EstimateCount(uint64_t item) const;

  /// True if `item` holds a counter.
  bool Contains(uint64_t item) const {
    return counters_.find(item) != counters_.end();
  }

  /// Current sampling rate (1, 1/2, 1/4, ...).
  double sampling_rate() const { return rate_; }

  /// Rows processed.
  int64_t TotalCount() const { return total_; }

  /// Number of live counters.
  size_t size() const { return counters_.size(); }

  /// Live counters in descending estimate order.
  std::vector<SketchEntry> Entries() const;

 private:
  void HalveRate();

  size_t t_;
  std::unordered_map<uint64_t, int64_t> counters_;
  double rate_ = 1.0;
  int64_t total_ = 0;
  int64_t next_boundary_;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_FREQUENCY_STICKY_SAMPLING_H_
