#include "frequency/lossy_counting.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

LossyCounting::LossyCounting(size_t period) : period_(period) {
  DSKETCH_CHECK(period > 0);
}

void LossyCounting::Update(uint64_t item) {
  ++total_;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
  } else {
    counters_.emplace(item, offset_ + 1);
  }

  if (static_cast<size_t>(total_) % period_ == 0) {
    ++offset_;
    for (auto cit = counters_.begin(); cit != counters_.end();) {
      if (cit->second <= offset_) {
        cit = counters_.erase(cit);
      } else {
        ++cit;
      }
    }
  }
}

int64_t LossyCounting::EstimateCount(uint64_t item) const {
  auto it = counters_.find(item);
  return it != counters_.end() ? it->second - offset_ : 0;
}

int64_t LossyCounting::UpperBound(uint64_t item) const {
  return EstimateCount(item) + offset_;
}

std::vector<SketchEntry> LossyCounting::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(counters_.size());
  for (const auto& [item, stored] : counters_) {
    out.push_back({item, stored - offset_});
  }
  std::sort(out.begin(), out.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count > b.count;
            });
  return out;
}

}  // namespace dsketch
