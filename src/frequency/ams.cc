#include "frequency/ams.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

AmsSketch::AmsSketch(size_t groups, size_t per_group, uint64_t seed)
    : groups_(groups),
      per_group_(per_group),
      counters_(groups * per_group, 0) {
  DSKETCH_CHECK(groups > 0 && per_group > 0);
  Rng rng(seed);
  sign_hash_.reserve(counters_.size());
  for (size_t i = 0; i < counters_.size(); ++i) {
    sign_hash_.emplace_back(/*k=*/4, rng);
  }
}

void AmsSketch::Update(uint64_t item, int64_t count) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += sign_hash_[i].HashSign(item) * count;
  }
}

double AmsSketch::EstimateF2() const {
  std::vector<double> means;
  means.reserve(groups_);
  for (size_t g = 0; g < groups_; ++g) {
    double sum = 0.0;
    for (size_t j = 0; j < per_group_; ++j) {
      double z = static_cast<double>(counters_[g * per_group_ + j]);
      sum += z * z;
    }
    means.push_back(sum / static_cast<double>(per_group_));
  }
  std::nth_element(means.begin(), means.begin() + static_cast<long>(groups_ / 2),
                   means.end());
  return means[groups_ / 2];
}

double AmsSketch::EstimateJoinSize(const AmsSketch& other) const {
  DSKETCH_CHECK(groups_ == other.groups_ && per_group_ == other.per_group_);
  std::vector<double> means;
  means.reserve(groups_);
  for (size_t g = 0; g < groups_; ++g) {
    double sum = 0.0;
    for (size_t j = 0; j < per_group_; ++j) {
      size_t idx = g * per_group_ + j;
      sum += static_cast<double>(counters_[idx]) *
             static_cast<double>(other.counters_[idx]);
    }
    means.push_back(sum / static_cast<double>(per_group_));
  }
  std::nth_element(means.begin(), means.begin() + static_cast<long>(groups_ / 2),
                   means.end());
  return means[groups_ / 2];
}

}  // namespace dsketch
