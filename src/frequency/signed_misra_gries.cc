#include "frequency/signed_misra_gries.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace dsketch {

SignedMisraGries::SignedMisraGries(size_t capacity) : capacity_(capacity) {
  DSKETCH_CHECK(capacity > 0);
  counters_.reserve(2 * capacity);
}

void SignedMisraGries::Update(uint64_t item, int64_t delta) {
  DSKETCH_CHECK(delta != 0);
  net_total_ += delta;
  int64_t& value = counters_[item];
  value += delta;
  if (value == 0) {
    counters_.erase(item);
    return;
  }
  // Amortize: allow 2x overflow before reducing so each reduction is paid
  // for by at least `capacity` inserts.
  if (counters_.size() > 2 * capacity_) Reduce();
}

void SignedMisraGries::Reduce() {
  // Two-sided soft threshold by the (capacity+1)-th largest |value|.
  std::vector<int64_t> magnitudes;
  magnitudes.reserve(counters_.size());
  for (const auto& [item, value] : counters_) {
    magnitudes.push_back(std::llabs(value));
  }
  if (magnitudes.size() <= capacity_) return;
  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + static_cast<long>(capacity_),
                   magnitudes.end(), std::greater<>());
  int64_t threshold = magnitudes[capacity_];
  if (threshold == 0) return;

  threshold_applied_ += threshold;
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second > threshold) {
      it->second -= threshold;
      ++it;
    } else if (it->second < -threshold) {
      it->second += threshold;
      ++it;
    } else {
      it = counters_.erase(it);
    }
  }
}

int64_t SignedMisraGries::EstimateValue(uint64_t item) const {
  auto it = counters_.find(item);
  return it != counters_.end() ? it->second : 0;
}

std::vector<SketchEntry> SignedMisraGries::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(counters_.size());
  for (const auto& [item, value] : counters_) out.push_back({item, value});
  std::sort(out.begin(), out.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return std::llabs(a.count) > std::llabs(b.count);
            });
  return out;
}

}  // namespace dsketch
