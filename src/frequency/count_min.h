// CountMin sketch (Cormode & Muthukrishnan 2005). The paper's related-work
// baseline for pre-known filter conditions (§2) and the counting sketch
// used by prior ad-prediction systems (§7). d pairwise-independent rows of
// w counters; point queries return the minimum, overestimating by at most
// 2n/w with probability 1 - 2^-d. Supports the conservative-update
// variant, which only raises counters as far as necessary.

#ifndef DSKETCH_FREQUENCY_COUNT_MIN_H_
#define DSKETCH_FREQUENCY_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hashing/poly_hash.h"
#include "util/random.h"

namespace dsketch {

/// CountMin sketch over 64-bit items with int64 counters.
class CountMin {
 public:
  /// `width` counters per row, `depth` rows, independent hashes from
  /// `seed`. `conservative` enables conservative update.
  CountMin(size_t width, size_t depth, uint64_t seed = 1,
           bool conservative = false);

  /// Adds `count` (> 0) occurrences of `item`.
  void Update(uint64_t item, int64_t count = 1);

  /// Point estimate: min over rows; never underestimates.
  int64_t EstimateCount(uint64_t item) const;

  /// Sum of all processed counts.
  int64_t TotalCount() const { return total_; }

  /// Counters per row.
  size_t width() const { return width_; }

  /// Number of rows.
  size_t depth() const { return depth_; }

  /// The seed the row hashes were derived from.
  uint64_t seed() const { return seed_; }

  /// True if conservative update is enabled.
  bool conservative() const { return conservative_; }

  /// The raw counter table (depth x width, row-major).
  const std::vector<int64_t>& table() const { return table_; }

  /// Replaces the counter table and row total. `table` must be
  /// depth x width non-negative counters; the hashes stay those derived
  /// from the constructor seed, so this only round-trips state between
  /// sketches built with the same (width, depth, seed, conservative)
  /// parameters. Used by serialization.
  void LoadState(std::vector<int64_t> table, int64_t total);

 private:
  size_t Cell(size_t row, uint64_t item) const;

  size_t width_;
  size_t depth_;
  uint64_t seed_;
  bool conservative_;
  std::vector<int64_t> table_;  // depth_ x width_, row-major
  std::vector<PolyHash> hashes_;
  int64_t total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_FREQUENCY_COUNT_MIN_H_
