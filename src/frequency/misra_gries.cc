#include "frequency/misra_gries.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace dsketch {

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  DSKETCH_CHECK(capacity > 0);
  counters_.reserve(capacity + 1);
}

void MisraGries::Update(uint64_t item) {
  ++total_;
  auto it = counters_.find(item);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(item, offset_ + 1);
    return;
  }
  DecrementAll();
}

void MisraGries::DecrementAll() {
  // One global decrement; purge counters whose estimate reached zero.
  // The purge scans all counters, but each scanned-and-removed counter was
  // inserted once, and a scan happens only when a full sketch absorbs an
  // untracked row, which costs m tracked increments of "mass" — amortized
  // O(1) per update overall (see paper §5.2 on the decrement reduction).
  ++offset_;
  for (auto it = counters_.begin(); it != counters_.end();) {
    if (it->second <= offset_) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
}

int64_t MisraGries::EstimateCount(uint64_t item) const {
  auto it = counters_.find(item);
  return it != counters_.end() ? it->second - offset_ : 0;
}

int64_t MisraGries::UpperBound(uint64_t item) const {
  return EstimateCount(item) + offset_;
}

std::vector<SketchEntry> MisraGries::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(counters_.size());
  for (const auto& [item, stored] : counters_) {
    out.push_back({item, stored - offset_});
  }
  std::sort(out.begin(), out.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count > b.count;
            });
  return out;
}

void MisraGries::LoadState(const std::vector<SketchEntry>& entries,
                           int64_t decrements, int64_t total) {
  DSKETCH_CHECK(entries.size() <= capacity_);
  DSKETCH_CHECK(decrements >= 0);
  DSKETCH_CHECK(total >= 0);
  counters_.clear();
  offset_ = decrements;
  total_ = total;
  for (const SketchEntry& e : entries) {
    DSKETCH_CHECK(e.count > 0);
    // Stored value = estimate + offset; the sum must not wrap.
    DSKETCH_CHECK(e.count <= std::numeric_limits<int64_t>::max() - offset_);
    bool inserted = counters_.emplace(e.item, e.count + offset_).second;
    DSKETCH_CHECK(inserted);  // labels must be distinct
  }
}

void MisraGries::MergeFrom(const MisraGries& other) {
  // Combine estimates, then soft-threshold by the (capacity+1)-th largest
  // combined count (Agarwal et al. 2013).
  std::unordered_map<uint64_t, int64_t> combined;
  combined.reserve(counters_.size() + other.counters_.size());
  for (const auto& [item, stored] : counters_) {
    combined[item] += stored - offset_;
  }
  for (const auto& [item, stored] : other.counters_) {
    combined[item] += stored - other.offset_;
  }

  int64_t threshold = 0;
  if (combined.size() > capacity_) {
    std::vector<int64_t> counts;
    counts.reserve(combined.size());
    for (const auto& [item, c] : combined) counts.push_back(c);
    std::nth_element(counts.begin(),
                     counts.begin() + static_cast<long>(capacity_),
                     counts.end(), std::greater<>());
    threshold = counts[capacity_];
  }

  counters_.clear();
  offset_ += other.offset_ + threshold;
  total_ += other.total_;
  for (const auto& [item, c] : combined) {
    if (c > threshold) counters_.emplace(item, c - threshold + offset_);
  }
}

}  // namespace dsketch
