#include "frequency/count_min.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace dsketch {

CountMin::CountMin(size_t width, size_t depth, uint64_t seed,
                   bool conservative)
    : width_(width),
      depth_(depth),
      seed_(seed),
      conservative_(conservative),
      table_(width * depth, 0) {
  DSKETCH_CHECK(width > 0 && depth > 0);
  Rng rng(seed);
  hashes_.reserve(depth);
  for (size_t d = 0; d < depth; ++d) hashes_.emplace_back(/*k=*/2, rng);
}

void CountMin::LoadState(std::vector<int64_t> table, int64_t total) {
  DSKETCH_CHECK(table.size() == width_ * depth_);
  DSKETCH_CHECK(total >= 0);
  for (int64_t cell : table) DSKETCH_CHECK(cell >= 0);
  table_ = std::move(table);
  total_ = total;
}

size_t CountMin::Cell(size_t row, uint64_t item) const {
  return row * width_ + hashes_[row].HashRange(item, width_);
}

void CountMin::Update(uint64_t item, int64_t count) {
  DSKETCH_CHECK(count > 0);
  total_ += count;
  if (!conservative_) {
    for (size_t d = 0; d < depth_; ++d) table_[Cell(d, item)] += count;
    return;
  }
  // Conservative update: raise each counter only up to (estimate + count).
  int64_t est = std::numeric_limits<int64_t>::max();
  for (size_t d = 0; d < depth_; ++d) est = std::min(est, table_[Cell(d, item)]);
  int64_t target = est + count;
  for (size_t d = 0; d < depth_; ++d) {
    int64_t& cell = table_[Cell(d, item)];
    cell = std::max(cell, target);
  }
}

int64_t CountMin::EstimateCount(uint64_t item) const {
  int64_t est = std::numeric_limits<int64_t>::max();
  for (size_t d = 0; d < depth_; ++d) est = std::min(est, table_[Cell(d, item)]);
  return est;
}

}  // namespace dsketch
