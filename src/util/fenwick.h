// Fenwick (binary indexed) tree over non-negative weights, with O(log n)
// point update, prefix sum, and inverse-prefix search. The stream
// generators use it as a weighted urn to draw rows without replacement
// (exchangeable streams too large to materialize and shuffle).

#ifndef DSKETCH_UTIL_FENWICK_H_
#define DSKETCH_UTIL_FENWICK_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dsketch {

/// Fenwick tree over int64 weights indexed 0..n-1.
class FenwickTree {
 public:
  /// Zero-initialized tree of `n` positions.
  explicit FenwickTree(size_t n);

  /// Tree initialized from `weights` in O(n).
  explicit FenwickTree(const std::vector<int64_t>& weights);

  /// Adds `delta` to position `i` (the result must stay non-negative; this
  /// is checked only in debug builds via the sampling paths).
  void Add(size_t i, int64_t delta);

  /// Sum of positions [0, i).
  int64_t PrefixSum(size_t i) const;

  /// Sum of all positions.
  int64_t Total() const { return total_; }

  /// Weight at position `i`.
  int64_t Get(size_t i) const;

  /// Smallest index `i` such that PrefixSum(i+1) > target, for
  /// 0 <= target < Total(). This is the inverse-CDF lookup.
  size_t FindByPrefix(int64_t target) const;

  /// Number of positions.
  size_t size() const { return n_; }

 private:
  size_t n_;
  std::vector<int64_t> tree_;  // 1-based internal layout
  int64_t total_ = 0;
};

/// Weighted urn: draws positions proportional to their remaining weight and
/// decrements the drawn position, i.e., samples the rows of a disaggregated
/// stream without replacement.
class WeightedUrn {
 public:
  /// Urn whose position `i` starts with integer multiplicity `counts[i]`.
  explicit WeightedUrn(const std::vector<int64_t>& counts);

  /// True when every row has been drawn.
  bool Empty() const { return tree_.Total() == 0; }

  /// Rows remaining.
  int64_t Remaining() const { return tree_.Total(); }

  /// Draws one position proportional to remaining multiplicity and
  /// decrements it. Must not be called when Empty().
  size_t Draw(Rng& rng);

 private:
  FenwickTree tree_;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_FENWICK_H_
