#include "util/fenwick.h"

#include "util/logging.h"

namespace dsketch {

FenwickTree::FenwickTree(size_t n) : n_(n), tree_(n + 1, 0) {}

FenwickTree::FenwickTree(const std::vector<int64_t>& weights)
    : n_(weights.size()), tree_(weights.size() + 1, 0) {
  // O(n) construction: place values then propagate to parents.
  for (size_t i = 0; i < n_; ++i) {
    DSKETCH_CHECK(weights[i] >= 0);
    tree_[i + 1] += weights[i];
    total_ += weights[i];
    size_t parent = (i + 1) + ((i + 1) & (~(i + 1) + 1));
    if (parent <= n_) tree_[parent] += tree_[i + 1];
  }
}

void FenwickTree::Add(size_t i, int64_t delta) {
  DSKETCH_DCHECK(i < n_);
  total_ += delta;
  for (size_t j = i + 1; j <= n_; j += j & (~j + 1)) tree_[j] += delta;
}

int64_t FenwickTree::PrefixSum(size_t i) const {
  DSKETCH_DCHECK(i <= n_);
  int64_t s = 0;
  for (size_t j = i; j > 0; j -= j & (~j + 1)) s += tree_[j];
  return s;
}

int64_t FenwickTree::Get(size_t i) const {
  return PrefixSum(i + 1) - PrefixSum(i);
}

size_t FenwickTree::FindByPrefix(int64_t target) const {
  DSKETCH_DCHECK(target >= 0 && target < total_);
  size_t pos = 0;
  size_t mask = 1;
  while ((mask << 1) <= n_) mask <<= 1;
  for (; mask > 0; mask >>= 1) {
    size_t next = pos + mask;
    if (next <= n_ && tree_[next] <= target) {
      pos = next;
      target -= tree_[next];
    }
  }
  return pos;  // pos is the 0-based index whose cumulative range covers target
}

WeightedUrn::WeightedUrn(const std::vector<int64_t>& counts)
    : tree_(counts) {}

size_t WeightedUrn::Draw(Rng& rng) {
  DSKETCH_CHECK(!Empty());
  int64_t target =
      static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(tree_.Total())));
  size_t pos = tree_.FindByPrefix(target);
  tree_.Add(pos, -1);
  return pos;
}

}  // namespace dsketch
