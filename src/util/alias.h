// Walker's alias method for O(1) sampling from a fixed discrete
// distribution. Used by the workload generators to draw i.i.d. item streams
// with heavy-tailed frequency vectors.

#ifndef DSKETCH_UTIL_ALIAS_H_
#define DSKETCH_UTIL_ALIAS_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dsketch {

/// Alias table over categories 0..n-1 with probabilities proportional to
/// the constructor weights. Construction is O(n); each draw is O(1).
class AliasTable {
 public:
  /// Builds the table from non-negative `weights` (at least one positive).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws one category index.
  uint32_t Sample(Rng& rng) const;

  /// Number of categories.
  size_t size() const { return prob_.size(); }

  /// Probability of category `i` implied by the construction weights.
  double Probability(size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // acceptance probability per column
  std::vector<uint32_t> alias_;    // alias category per column
  std::vector<double> normalized_; // input weights normalized to sum 1
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_ALIAS_H_
