// Pseudo-random number generation used throughout the library.
//
// The library deliberately does not use <random> engines on hot paths:
// sketch updates draw one Bernoulli variate per unseen item, so the
// generator must be a handful of instructions. We implement SplitMix64 for
// seeding and xoshiro256++ for the main stream, plus the small set of
// distributions the sketches and workload generators need.

#ifndef DSKETCH_UTIL_RANDOM_H_
#define DSKETCH_UTIL_RANDOM_H_

#include <cstdint>
#include <cstddef>

namespace dsketch {

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256++ generator (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush; more than adequate for sampling sketches.
class Xoshiro256 {
 public:
  /// Seeds the four state words from `seed` via SplitMix64.
  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniformly random bits.
  uint64_t Next();

  /// Jumps the generator 2^128 steps ahead (for independent substreams).
  void Jump();

 private:
  uint64_t s_[4];
};

/// Convenience wrapper bundling a generator with common distributions.
///
/// All methods are deterministic given the seed, which the test and bench
/// harnesses rely on for reproducibility.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0xd1b54a32d192ed03ULL) : gen_(seed) {}

  /// Next 64 uniformly random bits.
  uint64_t NextU64() { return gen_.Next(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(gen_.Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0 (safe for division/logs).
  double NextDoublePositive() {
    return (static_cast<double>(gen_.Next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Bernoulli(p): true with probability p (p clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Number of failures before the first success of a Bernoulli(p) sequence;
  /// support {0, 1, 2, ...}, mean (1-p)/p. `p` must be in (0, 1].
  uint64_t NextGeometric0(double p);

  /// Exponential(rate): mean 1/rate.
  double NextExponential(double rate);

  /// Standard normal via polar Box-Muller (caches the spare variate).
  double NextGaussian();

  /// Fisher-Yates shuffles `data[0..n)`.
  template <typename T>
  void Shuffle(T* data, size_t n) {
    for (size_t i = n; i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      T tmp = data[i - 1];
      data[i - 1] = data[j];
      data[j] = tmp;
    }
  }

 private:
  Xoshiro256 gen_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_RANDOM_H_
