// Open-addressing hash map from uint64_t keys to a small trivially-copyable
// value, tuned for the sketch hot path (one lookup per stream row).
//
// Design notes:
//  - Linear probing with a power-of-two table and a strong 64-bit mixer.
//    Sketch workloads are read-mostly lookups over at most `capacity` keys,
//    so probe sequences stay short at the 0.5 max load factor used here.
//  - Keys and values live interleaved in one slot array, so a lookup that
//    hits touches a single cache line for both (the batched ingestion path
//    made this the layout that matters; probes past a slot waste a little
//    bandwidth, but at 0.5 load the expected probe length is ~1).
//  - The slot array lives in an MmapArray: at production sizes it is
//    huge-page backed, so a probe costs one TLB entry per 2 MiB of table
//    instead of one per 4 KiB (see util/mmap_array.h).
//  - Probing is group-at-a-time: when a slot is 16 bytes (every map in
//    the ingest path), FindSlot compares a whole cache line of keys at
//    once with AVX2 (four slots) or SSE2 (two slots), runtime-dispatched,
//    instead of walking one slot per branch. The scalar walk is kept both
//    as the portable fallback and behind the DSKETCH_NO_SIMD escape
//    hatch (CI builds it so it cannot rot).
//  - Erase uses backward-shift deletion (no tombstones), keeping lookups
//    O(1) even under the frequent label-replacement churn of Space Saving.
//  - One reserved key (kEmpty) marks free slots; the sketches never store
//    it because item ids are hashed upstream or offset by callers.
//  - The batched ingestion path pre-mixes keys once (MixedHash) and reuses
//    the mix across Find/Insert/Erase via the *Hashed overloads, and hides
//    probe-line misses with Prefetch/FindBatch. A mixed hash stays valid
//    across rehashes (only the mask applied to it changes).
//  - Callers that keep a per-entry backpointer (SpaceSavingCore's
//    slot -> index-position array) use the *AtPos API: values are updated
//    or erased at a known table position with no probe walk at all, and
//    EraseAtPos reports every backward-shift relocation through a hook so
//    backpointers stay exact. generation() counts structural changes —
//    the validity token for held positions and FindBatch pointers.

#ifndef DSKETCH_UTIL_FLAT_MAP_H_
#define DSKETCH_UTIL_FLAT_MAP_H_

#include <cstdint>
#include <utility>

#include "util/logging.h"
#include "util/mmap_array.h"

#if defined(_MSC_VER) && !defined(__clang__)
#include <intrin.h>
#define DSKETCH_PREFETCH(addr) _mm_prefetch((const char*)(addr), _MM_HINT_T0)
#else
#define DSKETCH_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#endif

// SIMD group probing: x86-64 GCC/Clang only (MSVC and other ISAs use the
// scalar walk). -DDSKETCH_NO_SIMD=ON forces the scalar walk everywhere —
// the CI escape hatch that keeps the fallback honest.
#if !defined(DSKETCH_NO_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define DSKETCH_FLATMAP_SIMD 1
#include <immintrin.h>
#else
#define DSKETCH_FLATMAP_SIMD 0
#endif

namespace dsketch {

#if DSKETCH_FLATMAP_SIMD
namespace internal_simd {

// One-time CPUID check; AVX2 covers every probe after dispatch.
inline const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;

// The group probes below scan slots of exactly 16 bytes whose first 8
// bytes are the key, returning the position (cyclic from `start`, table
// size mask+1) of the first slot whose key equals `key` or `empty`.
// They visit slots in the same order as the scalar walk, so the result
// is identical; they just test a cache line of keys per iteration.

__attribute__((target("avx2"))) inline size_t FindSlot16Avx2(
    const char* slots, size_t mask, uint64_t key, uint64_t empty,
    size_t start) {
  const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i vempty = _mm256_set1_epi64x(static_cast<long long>(empty));
  size_t group = start & ~size_t{3};
  unsigned skip = static_cast<unsigned>(start & 3);  // lanes before start
  while (true) {
    const char* p = slots + group * 16;
    // Two 32-byte loads cover slots group..group+3; keys are the even
    // qwords. permute+blend packs them, in slot order, into one vector.
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    const __m256i keys = _mm256_blend_epi32(
        _mm256_permute4x64_epi64(a, 0x08), _mm256_permute4x64_epi64(b, 0x80),
        0xF0);
    const __m256i hit = _mm256_or_si256(_mm256_cmpeq_epi64(keys, vkey),
                                        _mm256_cmpeq_epi64(keys, vempty));
    unsigned m =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(hit)));
    m &= 0xFu << skip;
    if (m != 0) return group + static_cast<size_t>(__builtin_ctz(m));
    skip = 0;
    group = (group + 4) & mask;
  }
}

// SSE2 is part of the x86-64 baseline, so this needs no dispatch check.
// There is no 64-bit compare until SSE4.1; equality is built from a
// 32-bit compare ANDed with its half-swapped self.
inline __m128i Eq64Sse2(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32,
                       _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

inline size_t FindSlot16Sse2(const char* slots, size_t mask, uint64_t key,
                             uint64_t empty, size_t start) {
  const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
  const __m128i vempty = _mm_set1_epi64x(static_cast<long long>(empty));
  size_t group = start & ~size_t{1};
  unsigned skip = static_cast<unsigned>(start & 1);
  while (true) {
    const char* p = slots + group * 16;
    const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i keys = _mm_unpacklo_epi64(s0, s1);
    const __m128i hit =
        _mm_or_si128(Eq64Sse2(keys, vkey), Eq64Sse2(keys, vempty));
    unsigned m =
        static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(hit)));
    m &= 0x3u << skip;
    if (m != 0) return group + static_cast<size_t>(__builtin_ctz(m));
    skip = 0;
    group = (group + 2) & mask;
  }
}

}  // namespace internal_simd
#endif  // DSKETCH_FLATMAP_SIMD

/// The probe kernel this build/machine dispatches to ("avx2", "sse2",
/// or "scalar"); benchmarks record it next to their numbers.
inline const char* FlatMapProbeIsa() {
#if DSKETCH_FLATMAP_SIMD
  return internal_simd::kHaveAvx2 ? "avx2" : "sse2";
#else
  return "scalar";
#endif
}

/// Open-addressing uint64 -> Value map with backward-shift deletion.
///
/// `Value` must be trivially copyable. The key 0xFFFFFFFFFFFFFFFF is
/// reserved to mark empty slots and must not be inserted.
template <typename Value>
class FlatMap {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;
  static constexpr size_t kNpos = ~size_t{0};

  /// Creates a map sized for `expected` keys without rehashing.
  explicit FlatMap(size_t expected = 16) { Rehash(TableSizeFor(expected)); }

  /// Number of stored keys.
  size_t size() const { return size_; }

  /// True if no keys are stored.
  bool empty() const { return size_ == 0; }

  /// Number of table slots. Stays fixed while size() <= TableSize()/2;
  /// callers that pre-size for their maximum key count (FlatMap(max))
  /// therefore never see positions move under them.
  size_t TableSize() const { return slots_.size(); }

  /// Structural version: changes exactly when table slots may have moved
  /// or been freed (new-key insert, erase, rehash, clear). Positions and
  /// pointers obtained from this map are valid only while generation()
  /// is unchanged.
  uint64_t generation() const { return generation_; }

  /// True if the slot table came from mmap (see util/mmap_array.h).
  bool TableBackedByMmap() const { return slots_.backed_by_mmap(); }

  /// Debug aid for the FindBatch/position contract: captures
  /// generation() at construction; Check() DCHECK-fails if the map has
  /// structurally changed since — i.e. if pointers or positions taken
  /// before the guard may now dangle.
  class BatchGuard {
   public:
    explicit BatchGuard(const FlatMap& m) : map_(m), gen_(m.generation()) {}
    void Check() const { DSKETCH_DCHECK(map_.generation() == gen_); }

   private:
    const FlatMap& map_;
    uint64_t gen_;
  };

  /// The mixed (table-size independent) hash of `key`. Callers that touch
  /// the same key several times can compute this once and use the *Hashed
  /// overloads below.
  static uint64_t MixedHash(uint64_t key) { return Mix(key); }

  /// Prefetches the probe line a lookup for this mixed hash would start
  /// at. Advisory only; issue it a handful of operations ahead.
  void Prefetch(uint64_t mixed_hash) const {
    DSKETCH_PREFETCH(&slots_[mixed_hash & (slots_.size() - 1)]);
  }

  /// Inserts `key -> value` or overwrites the existing mapping.
  void InsertOrAssign(uint64_t key, Value value) {
    InsertOrAssignHashed(key, Mix(key), value);
  }

  /// InsertOrAssign with a precomputed MixedHash(key).
  void InsertOrAssignHashed(uint64_t key, uint64_t mixed_hash, Value value) {
    InsertOrAssignPosHashed(key, mixed_hash, value);
  }

  /// InsertOrAssign that returns the table position the mapping landed
  /// in. The position stays valid until generation() next changes (for
  /// pre-sized maps: until an erase shifts a cluster over it, reported
  /// via EraseAtPos's hook).
  size_t InsertOrAssignPosHashed(uint64_t key, uint64_t mixed_hash,
                                 Value value) {
    DSKETCH_DCHECK(key != kEmpty);
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    if ((size_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    size_t i = FindSlotHashed(key, mixed_hash);
    if (slots_[i].key == kEmpty) {
      slots_[i].key = key;
      ++size_;
      ++generation_;
    }
    slots_[i].value = value;
    return i;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  Value* Find(uint64_t key) { return FindHashed(key, Mix(key)); }

  /// Const overload of Find.
  const Value* Find(uint64_t key) const { return FindHashed(key, Mix(key)); }

  /// Find with a precomputed MixedHash(key).
  Value* FindHashed(uint64_t key, uint64_t mixed_hash) {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }

  /// Const overload of FindHashed.
  const Value* FindHashed(uint64_t key, uint64_t mixed_hash) const {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }

  /// Table position of `key`, or kNpos if absent. Valid while
  /// generation() is unchanged.
  size_t FindPosHashed(uint64_t key, uint64_t mixed_hash) const {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    return slots_[i].key == key ? i : kNpos;
  }

  /// Reference probe for tests: Find via the scalar walk regardless of
  /// SIMD dispatch, for group-probe equivalence sweeps.
  const Value* FindScalar(uint64_t key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = FindSlotScalar(key, Mix(key) & mask, mask);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }

  /// The key stored at table position `pos` (kEmpty for a free slot).
  uint64_t KeyAtPos(size_t pos) const { return slots_[pos].key; }

  /// Overwrites the value at an occupied table position — O(1), no probe
  /// walk, no structural change. `pos` must come from a *Pos* call and
  /// generation() must be unchanged since.
  void AssignAtPos(size_t pos, Value value) {
    DSKETCH_DCHECK(slots_[pos].key != kEmpty);
    slots_[pos].value = value;
  }

  /// Batched lookup: out[j] points at the value for keys[j] (nullptr when
  /// absent). Prefetches every probe line before the first probe, so the
  /// memory latencies of the n lookups overlap instead of serializing.
  ///
  /// POINTER-INVALIDATION HAZARD: the returned pointers alias the slot
  /// table and are valid only until the next structural mutation (insert
  /// of a new key, erase, clear — anything that bumps generation(); a
  /// rehash frees the table outright, so a stale pointer is a
  /// use-after-free, not just a wrong value). Callers holding the batch
  /// output across other code must guard it with BatchGuard (or compare
  /// generation()) — mirrors the windowed view-cache reference contract.
  void FindBatch(const uint64_t* keys, size_t n, const Value** out) const {
    constexpr size_t kChunk = 32;
    uint64_t hashes[kChunk];
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t len = n - base < kChunk ? n - base : kChunk;
      for (size_t j = 0; j < len; ++j) {
        hashes[j] = Mix(keys[base + j]);
        Prefetch(hashes[j]);
      }
      for (size_t j = 0; j < len; ++j) {
        out[base + j] = FindHashed(keys[base + j], hashes[j]);
      }
    }
  }

  /// Removes `key` if present; returns true if a mapping was removed.
  bool Erase(uint64_t key) { return EraseHashed(key, Mix(key)); }

  /// Erase with a precomputed MixedHash(key).
  bool EraseHashed(uint64_t key, uint64_t mixed_hash) {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    if (slots_[i].key != key) return false;
    EraseAtPos(i, [](Value, size_t) {});
    return true;
  }

  /// Erases the entry at an occupied table position — no probe walk to
  /// re-find the key. Backward-shift deletion relocates later cluster
  /// entries into the hole; every relocation is reported as
  /// on_move(value, new_pos) so callers keeping value -> position
  /// backpointers (SpaceSavingCore) can fix them in O(1) each.
  template <typename OnMove>
  void EraseAtPos(size_t i, OnMove&& on_move) {
    DSKETCH_DCHECK(i < slots_.size() && slots_[i].key != kEmpty);
    // Backward-shift deletion: move subsequent cluster entries into the
    // hole while they are not at their home position.
    size_t mask = slots_.size() - 1;
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].key == kEmpty) break;
      size_t home = Home(slots_[j].key);
      // Entry at j may move into the hole if its home position does not lie
      // (cyclically) strictly after the hole.
      bool movable;
      if (j > hole) {
        movable = home <= hole || home > j;
      } else {
        movable = home <= hole && home > j;
      }
      if (movable) {
        slots_[hole] = slots_[j];
        on_move(slots_[hole].value, hole);
        hole = j;
      }
    }
    slots_[hole].key = kEmpty;
    --size_;
    ++generation_;
  }

  /// Removes all keys, keeping the current capacity.
  void Clear() {
    for (auto& s : slots_) s.key = kEmpty;
    size_ = 0;
    ++generation_;
  }

 private:
  struct Slot {
    uint64_t key;
    Value value;
  };

  static size_t TableSizeFor(size_t expected) {
    size_t n = 16;
    while (n < expected * 2) n <<= 1;
    return n;
  }

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  size_t Home(uint64_t key) const { return Mix(key) & (slots_.size() - 1); }

  size_t FindSlotScalar(uint64_t key, size_t start, size_t mask) const {
    size_t i = start;
    while (slots_[i].key != kEmpty && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  // First slot (cyclically from the hash's home position) whose key is
  // `key` or kEmpty. The home slot is always tested scalar first: at the
  // 0.5 max load factor the expected probe length is ~1, and two scalar
  // compares beat any vector sequence there. Only when the home slot
  // belongs to a collision cluster does the probe continue — and that
  // continuation scans a whole cache line of keys per step with AVX2
  // (four slots) or SSE2 (two slots) when the slot layout allows it
  // (16-byte slots, key first — true for every Value up to 8 bytes).
  // Scalar walk as the portable / DSKETCH_NO_SIMD fallback.
  size_t FindSlotHashed(uint64_t key, uint64_t mixed_hash) const {
    const size_t mask = slots_.size() - 1;
    const size_t start = mixed_hash & mask;
    const uint64_t first = slots_[start].key;
    if (first == key || first == kEmpty) return start;
#if DSKETCH_FLATMAP_SIMD
    if constexpr (sizeof(Slot) == 16) {
      const char* base = reinterpret_cast<const char*>(slots_.data());
      if (internal_simd::kHaveAvx2) {
        return internal_simd::FindSlot16Avx2(base, mask, key, kEmpty,
                                             (start + 1) & mask);
      }
      return internal_simd::FindSlot16Sse2(base, mask, key, kEmpty,
                                           (start + 1) & mask);
    }
#endif
    return FindSlotScalar(key, (start + 1) & mask, mask);
  }

  void Rehash(size_t new_size) {
    MmapArray<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{kEmpty, Value()});
    size_ = 0;
    ++generation_;
    for (const Slot& s : old) {
      if (s.key != kEmpty) {
        size_t j = FindSlotHashed(s.key, Mix(s.key));
        slots_[j] = s;
        ++size_;
      }
    }
  }

  MmapArray<Slot> slots_;
  size_t size_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_FLAT_MAP_H_
