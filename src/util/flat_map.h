// Open-addressing hash map from uint64_t keys to a small trivially-copyable
// value, tuned for the sketch hot path (one lookup per stream row).
//
// Design notes:
//  - Linear probing with a power-of-two table and a strong 64-bit mixer.
//    Sketch workloads are read-mostly lookups over at most `capacity` keys,
//    so probe sequences stay short at the 0.5 max load factor used here.
//  - Erase uses backward-shift deletion (no tombstones), keeping lookups
//    O(1) even under the frequent label-replacement churn of Space Saving.
//  - One reserved key (kEmpty) marks free slots; the sketches never store
//    it because item ids are hashed upstream or offset by callers.

#ifndef DSKETCH_UTIL_FLAT_MAP_H_
#define DSKETCH_UTIL_FLAT_MAP_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dsketch {

/// Open-addressing uint64 -> Value map with backward-shift deletion.
///
/// `Value` must be trivially copyable. The key 0xFFFFFFFFFFFFFFFF is
/// reserved to mark empty slots and must not be inserted.
template <typename Value>
class FlatMap {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;

  /// Creates a map sized for `expected` keys without rehashing.
  explicit FlatMap(size_t expected = 16) { Rehash(TableSizeFor(expected)); }

  /// Number of stored keys.
  size_t size() const { return size_; }

  /// True if no keys are stored.
  bool empty() const { return size_ == 0; }

  /// Inserts `key -> value` or overwrites the existing mapping.
  void InsertOrAssign(uint64_t key, Value value) {
    DSKETCH_DCHECK(key != kEmpty);
    if ((size_ + 1) * 2 > keys_.size()) Rehash(keys_.size() * 2);
    size_t i = FindSlot(key);
    if (keys_[i] == kEmpty) {
      keys_[i] = key;
      ++size_;
    }
    values_[i] = value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  Value* Find(uint64_t key) {
    size_t i = FindSlot(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }

  /// Const overload of Find.
  const Value* Find(uint64_t key) const {
    size_t i = FindSlot(key);
    return keys_[i] == key ? &values_[i] : nullptr;
  }

  /// Removes `key` if present; returns true if a mapping was removed.
  bool Erase(uint64_t key) {
    size_t i = FindSlot(key);
    if (keys_[i] != key) return false;
    // Backward-shift deletion: move subsequent cluster entries into the
    // hole while they are not at their home position.
    size_t mask = keys_.size() - 1;
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (keys_[j] == kEmpty) break;
      size_t home = Home(keys_[j]);
      // Entry at j may move into the hole if its home position does not lie
      // (cyclically) strictly after the hole.
      bool movable;
      if (j > hole) {
        movable = home <= hole || home > j;
      } else {
        movable = home <= hole && home > j;
      }
      if (movable) {
        keys_[hole] = keys_[j];
        values_[hole] = values_[j];
        hole = j;
      }
    }
    keys_[hole] = kEmpty;
    --size_;
    return true;
  }

  /// Removes all keys, keeping the current capacity.
  void Clear() {
    for (auto& k : keys_) k = kEmpty;
    size_ = 0;
  }

 private:
  static size_t TableSizeFor(size_t expected) {
    size_t n = 16;
    while (n < expected * 2) n <<= 1;
    return n;
  }

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  size_t Home(uint64_t key) const { return Mix(key) & (keys_.size() - 1); }

  size_t FindSlot(uint64_t key) const {
    size_t mask = keys_.size() - 1;
    size_t i = Home(key);
    while (keys_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void Rehash(size_t new_size) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(new_size, kEmpty);
    values_.assign(new_size, Value());
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmpty) {
        size_t j = FindSlot(old_keys[i]);
        keys_[j] = old_keys[i];
        values_[j] = old_values[i];
        ++size_;
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<Value> values_;
  size_t size_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_FLAT_MAP_H_
