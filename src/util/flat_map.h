// Open-addressing hash map from uint64_t keys to a small trivially-copyable
// value, tuned for the sketch hot path (one lookup per stream row).
//
// Design notes:
//  - Linear probing with a power-of-two table and a strong 64-bit mixer.
//    Sketch workloads are read-mostly lookups over at most `capacity` keys,
//    so probe sequences stay short at the 0.5 max load factor used here.
//  - Keys and values live interleaved in one slot array, so a lookup that
//    hits touches a single cache line for both (the batched ingestion path
//    made this the layout that matters; probes past a slot waste a little
//    bandwidth, but at 0.5 load the expected probe length is ~1).
//  - Erase uses backward-shift deletion (no tombstones), keeping lookups
//    O(1) even under the frequent label-replacement churn of Space Saving.
//  - One reserved key (kEmpty) marks free slots; the sketches never store
//    it because item ids are hashed upstream or offset by callers.
//  - The batched ingestion path pre-mixes keys once (MixedHash) and reuses
//    the mix across Find/Insert/Erase via the *Hashed overloads, and hides
//    probe-line misses with Prefetch/FindBatch. A mixed hash stays valid
//    across rehashes (only the mask applied to it changes).

#ifndef DSKETCH_UTIL_FLAT_MAP_H_
#define DSKETCH_UTIL_FLAT_MAP_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

#if defined(_MSC_VER) && !defined(__clang__)
#include <intrin.h>
#define DSKETCH_PREFETCH(addr) _mm_prefetch((const char*)(addr), _MM_HINT_T0)
#else
#define DSKETCH_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#endif

namespace dsketch {

/// Open-addressing uint64 -> Value map with backward-shift deletion.
///
/// `Value` must be trivially copyable. The key 0xFFFFFFFFFFFFFFFF is
/// reserved to mark empty slots and must not be inserted.
template <typename Value>
class FlatMap {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;

  /// Creates a map sized for `expected` keys without rehashing.
  explicit FlatMap(size_t expected = 16) { Rehash(TableSizeFor(expected)); }

  /// Number of stored keys.
  size_t size() const { return size_; }

  /// True if no keys are stored.
  bool empty() const { return size_ == 0; }

  /// The mixed (table-size independent) hash of `key`. Callers that touch
  /// the same key several times can compute this once and use the *Hashed
  /// overloads below.
  static uint64_t MixedHash(uint64_t key) { return Mix(key); }

  /// Prefetches the probe line a lookup for this mixed hash would start
  /// at. Advisory only; issue it a handful of operations ahead.
  void Prefetch(uint64_t mixed_hash) const {
    DSKETCH_PREFETCH(&slots_[mixed_hash & (slots_.size() - 1)]);
  }

  /// Inserts `key -> value` or overwrites the existing mapping.
  void InsertOrAssign(uint64_t key, Value value) {
    InsertOrAssignHashed(key, Mix(key), value);
  }

  /// InsertOrAssign with a precomputed MixedHash(key).
  void InsertOrAssignHashed(uint64_t key, uint64_t mixed_hash, Value value) {
    DSKETCH_DCHECK(key != kEmpty);
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    if ((size_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    size_t i = FindSlotHashed(key, mixed_hash);
    if (slots_[i].key == kEmpty) {
      slots_[i].key = key;
      ++size_;
    }
    slots_[i].value = value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  Value* Find(uint64_t key) { return FindHashed(key, Mix(key)); }

  /// Const overload of Find.
  const Value* Find(uint64_t key) const { return FindHashed(key, Mix(key)); }

  /// Find with a precomputed MixedHash(key).
  Value* FindHashed(uint64_t key, uint64_t mixed_hash) {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }

  /// Const overload of FindHashed.
  const Value* FindHashed(uint64_t key, uint64_t mixed_hash) const {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }

  /// Batched lookup: out[j] points at the value for keys[j] (nullptr when
  /// absent). Prefetches every probe line before the first probe, so the
  /// memory latencies of the n lookups overlap instead of serializing.
  /// Pointers are valid until the next mutating call.
  void FindBatch(const uint64_t* keys, size_t n, const Value** out) const {
    constexpr size_t kChunk = 32;
    uint64_t hashes[kChunk];
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t len = n - base < kChunk ? n - base : kChunk;
      for (size_t j = 0; j < len; ++j) {
        hashes[j] = Mix(keys[base + j]);
        Prefetch(hashes[j]);
      }
      for (size_t j = 0; j < len; ++j) {
        out[base + j] = FindHashed(keys[base + j], hashes[j]);
      }
    }
  }

  /// Removes `key` if present; returns true if a mapping was removed.
  bool Erase(uint64_t key) { return EraseHashed(key, Mix(key)); }

  /// Erase with a precomputed MixedHash(key).
  bool EraseHashed(uint64_t key, uint64_t mixed_hash) {
    DSKETCH_DCHECK(mixed_hash == Mix(key));
    size_t i = FindSlotHashed(key, mixed_hash);
    if (slots_[i].key != key) return false;
    // Backward-shift deletion: move subsequent cluster entries into the
    // hole while they are not at their home position.
    size_t mask = slots_.size() - 1;
    size_t hole = i;
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].key == kEmpty) break;
      size_t home = Home(slots_[j].key);
      // Entry at j may move into the hole if its home position does not lie
      // (cyclically) strictly after the hole.
      bool movable;
      if (j > hole) {
        movable = home <= hole || home > j;
      } else {
        movable = home <= hole && home > j;
      }
      if (movable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = kEmpty;
    --size_;
    return true;
  }

  /// Removes all keys, keeping the current capacity.
  void Clear() {
    for (auto& s : slots_) s.key = kEmpty;
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t key;
    Value value;
  };

  static size_t TableSizeFor(size_t expected) {
    size_t n = 16;
    while (n < expected * 2) n <<= 1;
    return n;
  }

  static uint64_t Mix(uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  size_t Home(uint64_t key) const { return Mix(key) & (slots_.size() - 1); }

  size_t FindSlotHashed(uint64_t key, uint64_t mixed_hash) const {
    size_t mask = slots_.size() - 1;
    size_t i = mixed_hash & mask;
    while (slots_[i].key != kEmpty && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash(size_t new_size) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{kEmpty, Value()});
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmpty) {
        size_t j = FindSlotHashed(s.key, Mix(s.key));
        slots_[j] = s;
        ++size_;
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_FLAT_MAP_H_
