#include "util/alias.h"

#include "util/logging.h"

namespace dsketch {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  DSKETCH_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    DSKETCH_CHECK(w >= 0.0);
    total += w;
  }
  DSKETCH_CHECK(total > 0.0);

  normalized_.resize(n);
  prob_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    alias_[i] = static_cast<uint32_t>(i);
  }

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to floating-point error.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

uint32_t AliasTable::Sample(Rng& rng) const {
  const size_t n = prob_.size();
  size_t col = static_cast<size_t>(rng.NextBounded(n));
  return rng.NextDouble() < prob_[col] ? static_cast<uint32_t>(col)
                                       : alias_[col];
}

}  // namespace dsketch
