#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace dsketch {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64Next(sm);
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

void Xoshiro256::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DSKETCH_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = gen_.Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (low < threshold) {
      x = gen_.Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::NextGeometric0(double p) {
  DSKETCH_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inversion: floor(log(U) / log(1-p)) with U in (0,1].
  double u = NextDoublePositive();
  double g = std::floor(std::log(u) / std::log1p(-p));
  if (g < 0) g = 0;
  return static_cast<uint64_t>(g);
}

double Rng::NextExponential(double rate) {
  DSKETCH_DCHECK(rate > 0.0);
  return -std::log(NextDoublePositive()) / rate;
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * scale;
  have_spare_gaussian_ = true;
  return u * scale;
}

}  // namespace dsketch
