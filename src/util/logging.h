// Lightweight CHECK/DCHECK macros in the spirit of the Google C++ style
// guide. Library code uses these for programmer-error invariants instead of
// exceptions; violations print a message and abort.

#ifndef DSKETCH_UTIL_LOGGING_H_
#define DSKETCH_UTIL_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dsketch {
namespace internal {

/// Called after a CHECK-failure message prints, before abort. Installed
/// by obs::InstallTraceFatalHandlers to dump the flight recorder; must
/// be safe to run from any thread mid-crash.
using FatalHook = void (*)();

inline std::atomic<FatalHook>& FatalHookSlot() {
  static std::atomic<FatalHook> slot{nullptr};
  return slot;
}

inline void SetFatalHook(FatalHook hook) {
  FatalHookSlot().store(hook, std::memory_order_release);
}

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  if (FatalHook hook = FatalHookSlot().load(std::memory_order_acquire)) {
    hook();
  }
  std::abort();
}

}  // namespace internal
}  // namespace dsketch

/// Aborts the process if `cond` does not hold. Always enabled.
#define DSKETCH_CHECK(cond)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::dsketch::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                              \
  } while (0)

/// Like DSKETCH_CHECK but compiled out in NDEBUG builds. Use on hot paths.
/// -DDSKETCH_FORCE_DCHECK=ON keeps these active even in optimized builds —
/// the sanitizer CI job uses it so the DCHECK'd contracts (reserved keys,
/// position validity, BatchGuard) stay enforced under asan+ubsan.
#if defined(NDEBUG) && !defined(DSKETCH_FORCE_DCHECK)
#define DSKETCH_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define DSKETCH_DCHECK(cond) DSKETCH_CHECK(cond)
#endif

/// True when DSKETCH_DCHECK is active (death tests on DCHECK'd contracts
/// compile only when this is 1).
#if defined(NDEBUG) && !defined(DSKETCH_FORCE_DCHECK)
#define DSKETCH_DCHECK_IS_ON 0
#else
#define DSKETCH_DCHECK_IS_ON 1
#endif

#endif  // DSKETCH_UTIL_LOGGING_H_
