// Lightweight CHECK/DCHECK macros in the spirit of the Google C++ style
// guide. Library code uses these for programmer-error invariants instead of
// exceptions; violations print a message and abort.

#ifndef DSKETCH_UTIL_LOGGING_H_
#define DSKETCH_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace dsketch {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace dsketch

/// Aborts the process if `cond` does not hold. Always enabled.
#define DSKETCH_CHECK(cond)                                        \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::dsketch::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                              \
  } while (0)

/// Like DSKETCH_CHECK but compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define DSKETCH_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define DSKETCH_DCHECK(cond) DSKETCH_CHECK(cond)
#endif

#endif  // DSKETCH_UTIL_LOGGING_H_
