#include "util/mmap_array.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define DSKETCH_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define DSKETCH_HAVE_MMAP 0
#endif

namespace dsketch {
namespace {

// Below this, auto mode stays on the heap: the table fits in a handful of
// 4 KiB pages anyway and a syscall per small sketch would be pure loss.
constexpr size_t kAutoMmapThreshold = 1 << 20;  // 1 MiB
constexpr size_t kHugePage = 2 << 20;           // x86-64 THP size

AllocMode ModeFromEnv() {
  const char* env = std::getenv("DSKETCH_ALLOC");
  if (env == nullptr) return AllocMode::kAuto;
  if (env[0] == 'm') return AllocMode::kMmap;
  if (env[0] == 'h') return AllocMode::kHeap;
  return AllocMode::kAuto;
}

AllocMode& GlobalModeRef() {
  static AllocMode mode = ModeFromEnv();
  return mode;
}

internal::RawAlloc HeapAlloc(size_t bytes) {
  internal::RawAlloc a;
  // Cache-line alignment so SIMD group probes never split a slot group
  // across lines and unaligned 64-byte groups stay one-line loads.
  a.block = ::operator new(bytes, std::align_val_t(64));
  a.data = a.block;
  return a;
}

#if DSKETCH_HAVE_MMAP
size_t RoundUp(size_t n, size_t unit) { return (n + unit - 1) / unit * unit; }

// Maps `bytes` anonymous read-write pages, prefaulted where the kernel
// supports it. For huge-page candidates the range is reserved oversized
// and trimmed so the usable start is 2 MiB-aligned — MADV_HUGEPAGE only
// helps when the advised range actually covers aligned 2 MiB extents.
bool MmapAlloc(size_t bytes, bool populate, internal::RawAlloc* out) {
  int flags = MAP_PRIVATE | MAP_ANONYMOUS;
#if defined(MAP_POPULATE)
  if (populate) flags |= MAP_POPULATE;
#endif
  const bool want_huge = bytes >= kHugePage;
  if (!want_huge) {
    void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE, flags, -1, 0);
    if (p == MAP_FAILED) return false;
    out->block = p;
    out->data = p;
    out->block_bytes = bytes;
    out->mmapped = true;
    return true;
  }

  const size_t len = RoundUp(bytes, kHugePage);
  // Reserve len + one huge page without populating, then place the real
  // populated mapping at the first aligned address inside it.
  void* reserve = mmap(nullptr, len + kHugePage, PROT_NONE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (reserve == MAP_FAILED) return false;
  uintptr_t base = reinterpret_cast<uintptr_t>(reserve);
  uintptr_t aligned = RoundUp(base, kHugePage);
  const size_t head = aligned - base;
  const size_t tail = (base + len + kHugePage) - (aligned + len);
  if (head > 0) munmap(reserve, head);
  if (tail > 0) munmap(reinterpret_cast<void*>(aligned + len), tail);
  // No MAP_POPULATE here: prefaulting before MADV_HUGEPAGE would pin the
  // range to 4 KiB pages (the advice only steers *future* faults; the
  // kernel will not synchronously collapse an already-populated range).
  // Advise first, then populate, so the faults allocate 2 MiB pages.
  void* p = mmap(reinterpret_cast<void*>(aligned), len, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  if (p == MAP_FAILED) {
    munmap(reinterpret_cast<void*>(aligned), len);
    return false;
  }
#if defined(MADV_HUGEPAGE)
  out->huge = madvise(p, len, MADV_HUGEPAGE) == 0;
#endif
#if defined(MADV_POPULATE_WRITE)
  // Linux 5.14+: prefault the whole range in one syscall, honoring the
  // huge-page advice just given. Best effort — on older kernels the
  // first touches fault the pages in (also post-advice).
  if (populate) madvise(p, len, MADV_POPULATE_WRITE);
#endif
  out->block = p;
  out->data = p;
  out->block_bytes = len;
  out->mmapped = true;
  return true;
}
#endif  // DSKETCH_HAVE_MMAP

}  // namespace

AllocMode GlobalAllocMode() { return GlobalModeRef(); }

void SetGlobalAllocMode(AllocMode mode) { GlobalModeRef() = mode; }

const char* AllocModeName(AllocMode mode) {
  switch (mode) {
    case AllocMode::kAuto:
      return "auto";
    case AllocMode::kMmap:
      return "mmap";
    case AllocMode::kHeap:
      return "heap";
  }
  return "unknown";
}

bool MmapAllocSupported() { return DSKETCH_HAVE_MMAP != 0; }

namespace {

// stdio fallback shared by the non-POSIX build and mmap-failure paths:
// read the whole file into `out`. Returns false on any I/O error.
bool ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  out->clear();
  for (;;) {
    const size_t n = std::fread(buf, 1, sizeof(buf), f);
    out->append(buf, n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

std::optional<MappedFile> MappedFile::Map(const std::string& path) {
  MappedFile out;
#if DSKETCH_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const size_t size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return out;  // empty file: empty bytes, no mapping needed
      }
      void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      // The mapping outlives the descriptor either way.
      ::close(fd);
      if (p != MAP_FAILED) {
        out.data_ = static_cast<const char*>(p);
        out.size_ = size;
        out.mmapped_ = true;
        return out;
      }
    } else {
      ::close(fd);
    }
    // Open succeeded but stat/mmap did not (e.g. a filesystem that
    // refuses mappings): fall through to the read path.
  } else {
    return std::nullopt;
  }
#endif
  if (!ReadWholeFile(path, &out.heap_)) return std::nullopt;
  out.data_ = out.heap_.data();
  out.size_ = out.heap_.size();
  return out;
}

void MappedFile::Release() {
#if DSKETCH_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mmapped_ = false;
}

namespace internal {
namespace {

// Table-allocation telemetry: how often the backing store actually came
// from mmap vs the heap fallback, and how many mappings took huge-page
// advice — the observable answers to "did auto mode kick in" and "are
// the big tables really on 2 MiB pages" (README "Observability").
obs::Counter& MmapAllocs() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_util_mmap_allocs_total");
  return c;
}

obs::Counter& HeapAllocs() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_util_heap_allocs_total");
  return c;
}

obs::Counter& ThpAdvised() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_util_thp_advised_total");
  return c;
}

}  // namespace

RawAlloc AllocRaw(size_t bytes, AllocMode mode, bool populate) {
  if (bytes == 0) bytes = 1;
#if DSKETCH_HAVE_MMAP
  const bool try_mmap =
      mode == AllocMode::kMmap ||
      (mode == AllocMode::kAuto && bytes >= kAutoMmapThreshold);
  if (try_mmap) {
    RawAlloc a;
    const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
    if (MmapAlloc(RoundUp(bytes, page), populate, &a)) {
      MmapAllocs().Inc();
      if (a.huge) ThpAdvised().Inc();
      return a;
    }
    // Fall through: address space exhaustion or a sandbox that denies
    // anonymous mappings must not take the sketch down with it.
  }
#else
  (void)mode;
  (void)populate;
#endif
  HeapAllocs().Inc();
  return HeapAlloc(bytes);
}

void FreeRaw(const RawAlloc& a) {
  if (a.block == nullptr) return;
#if DSKETCH_HAVE_MMAP
  if (a.mmapped) {
    munmap(a.block, a.block_bytes);
    return;
  }
#endif
  ::operator delete(a.block, std::align_val_t(64));
}

}  // namespace internal
}  // namespace dsketch
