// Fixed-shape array storage for the ingest hot path, allocated straight
// from the kernel instead of the heap.
//
// The sketch hot path at production sizes (millions of bins) is bound by
// TLB and cache misses on two big flat arrays: FlatMap's slot table and
// SpaceSavingCore's bin array. Backing them with `mmap` buys two things:
//
//   * MAP_POPULATE prefaults the whole range up front, so the first pass
//     over the table does not take one minor fault per 4 KiB page;
//   * MADV_HUGEPAGE asks for transparent huge pages (2 MiB), cutting the
//     number of TLB entries the working set needs by ~512x — the main
//     lever behind the large-m ingest throughput recovery (see the
//     "ingest hot path" section of README.md and BENCH_throughput.json).
//
// MmapArray<T> degrades gracefully: when mmap/THP is unavailable (non-
// Linux, sandboxed CI, exhausted address space) or the allocation is too
// small to benefit, it falls back to a 64-byte-aligned heap block with
// identical semantics. The policy is controlled by a process-wide mode —
// settable programmatically or via the DSKETCH_ALLOC environment
// variable ("auto" | "mmap" | "heap") — and each instance records which
// backend it actually got, so benchmarks can log the choice alongside
// their numbers.

#ifndef DSKETCH_UTIL_MMAP_ARRAY_H_
#define DSKETCH_UTIL_MMAP_ARRAY_H_

#include <cstddef>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "util/logging.h"

namespace dsketch {

/// Backing-store policy for MmapArray allocations.
enum class AllocMode {
  kAuto,  ///< mmap + huge pages for large blocks, heap below the threshold
  kMmap,  ///< mmap every page-sized-or-larger block (heap only on failure)
  kHeap,  ///< never mmap (the CI-safe fallback; also the non-POSIX default)
};

/// Process-wide allocation mode. Initialized once from the DSKETCH_ALLOC
/// environment variable ("auto" | "mmap" | "heap", default auto).
AllocMode GlobalAllocMode();

/// Overrides the process-wide mode (tests and benchmarks; not
/// thread-safe against concurrent allocations).
void SetGlobalAllocMode(AllocMode mode);

/// Short stable name for a mode ("auto" / "mmap" / "heap").
const char* AllocModeName(AllocMode mode);

/// True if this build can mmap at all (POSIX). When false, every
/// MmapArray is heap-backed regardless of mode.
bool MmapAllocSupported();

/// A whole file mapped (or read) into memory, read-only — the restore
/// side of the frozen snapshot path: a read replica MapFile()s a frozen
/// image and serves queries off the page cache with zero decode and
/// zero copies. On POSIX the file is mmap'd MAP_PRIVATE/PROT_READ (the
/// base is page-aligned, so the image's 64-byte-aligned sections stay
/// aligned in memory); elsewhere — or when mmap fails — the bytes are
/// read into a heap buffer with identical semantics. Move-only; the
/// mapping lives until destruction.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept { MoveFrom(std::move(other)); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~MappedFile() { Release(); }

  /// Maps `path` read-only. Returns nullopt when the file cannot be
  /// opened or read (missing, unreadable); an empty file maps to empty
  /// bytes successfully.
  static std::optional<MappedFile> Map(const std::string& path);

  /// The file's bytes; valid until this object is destroyed or moved.
  std::string_view bytes() const {
    return data_ == nullptr ? std::string_view()
                            : std::string_view(data_, size_);
  }

  /// True when the bytes come from an actual mmap (false for the
  /// read-into-heap fallback).
  bool backed_by_mmap() const { return mmapped_; }

 private:
  void MoveFrom(MappedFile&& other) noexcept {
    mmapped_ = other.mmapped_;
    heap_ = std::move(other.heap_);
    if (other.data_ == nullptr) {
      data_ = nullptr;
      size_ = 0;
    } else if (mmapped_) {
      data_ = other.data_;
      size_ = other.size_;
    } else {
      // Heap fallback: re-point at our own string — a small string's
      // buffer lives inside the object and does not survive the move.
      data_ = heap_.data();
      size_ = heap_.size();
    }
    other.data_ = nullptr;
    other.size_ = 0;
    other.mmapped_ = false;
  }
  void Release();

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mmapped_ = false;
  std::string heap_;  // owns the bytes in the fallback path
};

/// Convenience wrapper: MappedFile::Map.
inline std::optional<MappedFile> MapFile(const std::string& path) {
  return MappedFile::Map(path);
}

namespace internal {

struct RawAlloc {
  void* block = nullptr;      // what to free (mmap base or heap pointer)
  void* data = nullptr;       // usable, aligned start
  size_t block_bytes = 0;     // mapped length (0 for heap blocks)
  bool mmapped = false;
  bool huge = false;          // MADV_HUGEPAGE applied
};

// Allocates `bytes` (zero-filled when mmapped) under `mode`; falls back
// to the heap on any mmap failure. `bytes` may be 0. `populate`
// prefaults the whole range up front (kernel-side, honoring any huge-
// page advice) — callers that immediately overwrite every element pass
// false, since populating first would write the range twice.
RawAlloc AllocRaw(size_t bytes, AllocMode mode, bool populate);
void FreeRaw(const RawAlloc& a);

}  // namespace internal

/// Flat array of trivially-copyable T with std::vector-like surface,
/// backed by mmap'd (optionally huge) pages or the heap — see file
/// comment. Unlike std::vector it never over-allocates: assign/resize
/// always reallocate to the exact new size, which is the right trade for
/// the hash tables and bin arrays it backs (they size once, or double —
/// either way the old block is dead).
template <typename T>
class MmapArray {
  static_assert(std::is_trivially_copyable<T>::value,
                "MmapArray requires trivially copyable elements");

 public:
  MmapArray() = default;

  /// An array of `n` value-initialized elements.
  explicit MmapArray(size_t n) { resize(n); }

  MmapArray(const MmapArray& other) { CopyFrom(other); }
  MmapArray& operator=(const MmapArray& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  MmapArray(MmapArray&& other) noexcept { MoveFrom(std::move(other)); }
  MmapArray& operator=(MmapArray&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~MmapArray() { Release(); }

  /// Replaces the contents with `n` copies of `v` (reallocates). The
  /// fill itself faults the pages in — after the huge-page advice — so
  /// no separate populate pass is paid.
  void assign(size_t n, const T& v) {
    Reallocate(n, /*populate=*/false);
    for (size_t i = 0; i < size_; ++i) data_[i] = v;
  }

  /// Replaces the contents with `n` value-initialized elements. Existing
  /// contents are NOT preserved (every in-repo caller sizes-then-fills).
  void resize(size_t n) {
    // Zero-filled mmap pages arrive ready; prefault them kernel-side so
    // first touches during use do not take one minor fault per page.
    Reallocate(n, /*populate=*/true);
    if (!alloc_.mmapped && size_ > 0) {
      std::memset(static_cast<void*>(data_), 0, size_ * sizeof(T));
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// True if the current block came from mmap (false for heap fallback
  /// or empty arrays). Benchmarks record this next to their numbers.
  bool backed_by_mmap() const { return alloc_.mmapped; }

  /// True if the block additionally got MADV_HUGEPAGE.
  bool huge_pages_advised() const { return alloc_.huge; }

 private:
  void Reallocate(size_t n, bool populate) {
    Release();
    if (n == 0) return;
    alloc_ = internal::AllocRaw(n * sizeof(T), GlobalAllocMode(), populate);
    DSKETCH_CHECK(alloc_.data != nullptr);
    data_ = static_cast<T*>(alloc_.data);
    size_ = n;
  }

  void CopyFrom(const MmapArray& other) {
    Reallocate(other.size_, /*populate=*/false);
    if (size_ > 0) {
      std::memcpy(static_cast<void*>(data_), other.data_, size_ * sizeof(T));
    }
  }

  void MoveFrom(MmapArray&& other) noexcept {
    alloc_ = other.alloc_;
    data_ = other.data_;
    size_ = other.size_;
    other.alloc_ = internal::RawAlloc{};
    other.data_ = nullptr;
    other.size_ = 0;
  }

  void Release() {
    if (alloc_.data != nullptr) internal::FreeRaw(alloc_);
    alloc_ = internal::RawAlloc{};
    data_ = nullptr;
    size_ = 0;
  }

  internal::RawAlloc alloc_;
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_MMAP_ARRAY_H_
