// Fixed-shape array storage for the ingest hot path, allocated straight
// from the kernel instead of the heap.
//
// The sketch hot path at production sizes (millions of bins) is bound by
// TLB and cache misses on two big flat arrays: FlatMap's slot table and
// SpaceSavingCore's bin array. Backing them with `mmap` buys two things:
//
//   * MAP_POPULATE prefaults the whole range up front, so the first pass
//     over the table does not take one minor fault per 4 KiB page;
//   * MADV_HUGEPAGE asks for transparent huge pages (2 MiB), cutting the
//     number of TLB entries the working set needs by ~512x — the main
//     lever behind the large-m ingest throughput recovery (see the
//     "ingest hot path" section of README.md and BENCH_throughput.json).
//
// MmapArray<T> degrades gracefully: when mmap/THP is unavailable (non-
// Linux, sandboxed CI, exhausted address space) or the allocation is too
// small to benefit, it falls back to a 64-byte-aligned heap block with
// identical semantics. The policy is controlled by a process-wide mode —
// settable programmatically or via the DSKETCH_ALLOC environment
// variable ("auto" | "mmap" | "heap") — and each instance records which
// backend it actually got, so benchmarks can log the choice alongside
// their numbers.

#ifndef DSKETCH_UTIL_MMAP_ARRAY_H_
#define DSKETCH_UTIL_MMAP_ARRAY_H_

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "util/logging.h"

namespace dsketch {

/// Backing-store policy for MmapArray allocations.
enum class AllocMode {
  kAuto,  ///< mmap + huge pages for large blocks, heap below the threshold
  kMmap,  ///< mmap every page-sized-or-larger block (heap only on failure)
  kHeap,  ///< never mmap (the CI-safe fallback; also the non-POSIX default)
};

/// Process-wide allocation mode. Initialized once from the DSKETCH_ALLOC
/// environment variable ("auto" | "mmap" | "heap", default auto).
AllocMode GlobalAllocMode();

/// Overrides the process-wide mode (tests and benchmarks; not
/// thread-safe against concurrent allocations).
void SetGlobalAllocMode(AllocMode mode);

/// Short stable name for a mode ("auto" / "mmap" / "heap").
const char* AllocModeName(AllocMode mode);

/// True if this build can mmap at all (POSIX). When false, every
/// MmapArray is heap-backed regardless of mode.
bool MmapAllocSupported();

namespace internal {

struct RawAlloc {
  void* block = nullptr;      // what to free (mmap base or heap pointer)
  void* data = nullptr;       // usable, aligned start
  size_t block_bytes = 0;     // mapped length (0 for heap blocks)
  bool mmapped = false;
  bool huge = false;          // MADV_HUGEPAGE applied
};

// Allocates `bytes` (zero-filled when mmapped) under `mode`; falls back
// to the heap on any mmap failure. `bytes` may be 0. `populate`
// prefaults the whole range up front (kernel-side, honoring any huge-
// page advice) — callers that immediately overwrite every element pass
// false, since populating first would write the range twice.
RawAlloc AllocRaw(size_t bytes, AllocMode mode, bool populate);
void FreeRaw(const RawAlloc& a);

}  // namespace internal

/// Flat array of trivially-copyable T with std::vector-like surface,
/// backed by mmap'd (optionally huge) pages or the heap — see file
/// comment. Unlike std::vector it never over-allocates: assign/resize
/// always reallocate to the exact new size, which is the right trade for
/// the hash tables and bin arrays it backs (they size once, or double —
/// either way the old block is dead).
template <typename T>
class MmapArray {
  static_assert(std::is_trivially_copyable<T>::value,
                "MmapArray requires trivially copyable elements");

 public:
  MmapArray() = default;

  /// An array of `n` value-initialized elements.
  explicit MmapArray(size_t n) { resize(n); }

  MmapArray(const MmapArray& other) { CopyFrom(other); }
  MmapArray& operator=(const MmapArray& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }

  MmapArray(MmapArray&& other) noexcept { MoveFrom(std::move(other)); }
  MmapArray& operator=(MmapArray&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~MmapArray() { Release(); }

  /// Replaces the contents with `n` copies of `v` (reallocates). The
  /// fill itself faults the pages in — after the huge-page advice — so
  /// no separate populate pass is paid.
  void assign(size_t n, const T& v) {
    Reallocate(n, /*populate=*/false);
    for (size_t i = 0; i < size_; ++i) data_[i] = v;
  }

  /// Replaces the contents with `n` value-initialized elements. Existing
  /// contents are NOT preserved (every in-repo caller sizes-then-fills).
  void resize(size_t n) {
    // Zero-filled mmap pages arrive ready; prefault them kernel-side so
    // first touches during use do not take one minor fault per page.
    Reallocate(n, /*populate=*/true);
    if (!alloc_.mmapped && size_ > 0) {
      std::memset(static_cast<void*>(data_), 0, size_ * sizeof(T));
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// True if the current block came from mmap (false for heap fallback
  /// or empty arrays). Benchmarks record this next to their numbers.
  bool backed_by_mmap() const { return alloc_.mmapped; }

  /// True if the block additionally got MADV_HUGEPAGE.
  bool huge_pages_advised() const { return alloc_.huge; }

 private:
  void Reallocate(size_t n, bool populate) {
    Release();
    if (n == 0) return;
    alloc_ = internal::AllocRaw(n * sizeof(T), GlobalAllocMode(), populate);
    DSKETCH_CHECK(alloc_.data != nullptr);
    data_ = static_cast<T*>(alloc_.data);
    size_ = n;
  }

  void CopyFrom(const MmapArray& other) {
    Reallocate(other.size_, /*populate=*/false);
    if (size_ > 0) {
      std::memcpy(static_cast<void*>(data_), other.data_, size_ * sizeof(T));
    }
  }

  void MoveFrom(MmapArray&& other) noexcept {
    alloc_ = other.alloc_;
    data_ = other.data_;
    size_ = other.size_;
    other.alloc_ = internal::RawAlloc{};
    other.data_ = nullptr;
    other.size_ = 0;
  }

  void Release() {
    if (alloc_.data != nullptr) internal::FreeRaw(alloc_);
    alloc_ = internal::RawAlloc{};
    data_ = nullptr;
    size_ = 0;
  }

  internal::RawAlloc alloc_;
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_MMAP_ARRAY_H_
