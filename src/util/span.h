// Minimal read-only span for the batched ingestion APIs.
//
// The library targets C++17, which predates std::span; this is the small
// subset the batch paths need (pointer + length view over contiguous
// memory, implicitly constructible from std::vector and C arrays). When
// the project moves to C++20 this can become an alias for std::span.

#ifndef DSKETCH_UTIL_SPAN_H_
#define DSKETCH_UTIL_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace dsketch {

/// Non-owning view over a contiguous sequence of `T`.
template <typename T>
class Span {
 public:
  constexpr Span() : data_(nullptr), size_(0) {}
  constexpr Span(const T* data, size_t size) : data_(data), size_(size) {}
  Span(const std::vector<std::remove_cv_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  template <size_t N>
  constexpr Span(const T (&arr)[N]) : data_(arr), size_(N) {}

  constexpr const T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const T& operator[](size_t i) const { return data_[i]; }
  constexpr const T* begin() const { return data_; }
  constexpr const T* end() const { return data_ + size_; }

  /// Sub-view of `count` elements starting at `offset` (clamped to size).
  constexpr Span subspan(size_t offset, size_t count) const {
    if (offset > size_) offset = size_;
    if (count > size_ - offset) count = size_ - offset;
    return Span(data_ + offset, count);
  }

 private:
  const T* data_;
  size_t size_;
};

}  // namespace dsketch

#endif  // DSKETCH_UTIL_SPAN_H_
