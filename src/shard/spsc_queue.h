// Bounded single-producer / single-consumer ring buffer used to feed the
// per-shard ingestion workers. Lock-free: one producer thread calls
// PushBulk, one consumer thread calls PopBulk; head and tail live on
// separate cache lines and each side keeps a cached copy of the other's
// position so the common case touches no shared line at all (the design
// popularized by Rigtorp's SPSCQueue).

#ifndef DSKETCH_SHARD_SPSC_QUEUE_H_
#define DSKETCH_SHARD_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dsketch {

/// Bounded SPSC queue of trivially-copyable `T` with bulk operations.
template <typename T>
class SpscQueue {
 public:
  /// Queue holding up to `capacity` elements (rounded up to a power of
  /// two; one slot is kept free to distinguish full from empty).
  explicit SpscQueue(size_t capacity) {
    DSKETCH_CHECK(capacity > 0);
    size_t n = 2;
    while (n < capacity + 1) n <<= 1;
    buf_.resize(n);
    mask_ = n - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer: enqueues up to `n` elements from `data`; returns how many
  /// were accepted (0 when full). Never blocks.
  size_t PushBulk(const T* data, size_t n) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t free_slots = buf_.size() - 1 - (tail - cached_head_);
    if (free_slots < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free_slots = buf_.size() - 1 - (tail - cached_head_);
    }
    const size_t count = n < free_slots ? n : free_slots;
    for (size_t i = 0; i < count; ++i) {
      buf_[(tail + i) & mask_] = data[i];
    }
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Consumer: dequeues up to `max` elements into `out`; returns how many
  /// were taken (0 when empty). Never blocks.
  size_t PopBulk(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const size_t count = max < avail ? max : avail;
    for (size_t i = 0; i < count; ++i) {
      out[i] = buf_[(head + i) & mask_];
    }
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// True when the queue held no elements at the time of the call. Safe
  /// from any thread (approximate while the producer is active).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Capacity in elements.
  size_t capacity() const { return buf_.size() - 1; }

 private:
  std::vector<T> buf_;
  size_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer position
  alignas(64) uint64_t cached_tail_ = 0;       // consumer's view of tail_
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer position
  alignas(64) uint64_t cached_head_ = 0;       // producer's view of head_
};

}  // namespace dsketch

#endif  // DSKETCH_SHARD_SPSC_QUEUE_H_
