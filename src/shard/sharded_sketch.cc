#include "shard/sharded_sketch.h"

#include <unordered_map>

#include "core/merge.h"

namespace dsketch {

namespace {

template <typename S>
std::vector<const S*> Pointers(const std::vector<S>& shards) {
  std::vector<const S*> ptrs;
  ptrs.reserve(shards.size());
  for (const S& s : shards) ptrs.push_back(&s);
  return ptrs;
}

}  // namespace

UnbiasedSpaceSaving MergeShards(const std::vector<UnbiasedSpaceSaving>& shards,
                                size_t capacity, uint64_t seed) {
  return MergeShards(Pointers(shards), capacity, seed);
}

UnbiasedSpaceSaving MergeShards(
    const std::vector<const UnbiasedSpaceSaving*>& shards, size_t capacity,
    uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  return MergeAll(shards, capacity, seed);
}

DeterministicSpaceSaving MergeShards(
    const std::vector<DeterministicSpaceSaving>& shards, size_t capacity,
    uint64_t seed) {
  return MergeShards(Pointers(shards), capacity, seed);
}

WeightedSpaceSaving MergeShards(const std::vector<WeightedSpaceSaving>& shards,
                                size_t capacity, uint64_t seed) {
  return MergeShards(Pointers(shards), capacity, seed);
}

WeightedSpaceSaving MergeShards(
    const std::vector<const WeightedSpaceSaving*>& shards, size_t capacity,
    uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  // Combine duplicate labels across shards, then reduce once — the
  // weighted analogue of MergeAll's single final pairwise reduction.
  std::unordered_map<uint64_t, double> sums;
  for (const WeightedSpaceSaving* shard : shards) {
    for (const WeightedEntry& e : shard->Entries()) sums[e.item] += e.weight;
  }
  std::vector<WeightedEntry> combined;
  combined.reserve(sums.size());
  for (const auto& [item, weight] : sums) {
    if (weight > 0.0) combined.push_back({item, weight});
  }
  return WeightedSketchFromEntries(std::move(combined), capacity, seed);
}

DeterministicSpaceSaving MergeShards(
    const std::vector<const DeterministicSpaceSaving*>& shards,
    size_t capacity, uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  if (shards.size() == 1) {
    // Still honor the requested capacity via the soft-threshold reduction.
    DeterministicSpaceSaving out(capacity, seed);
    out.core().LoadEntries(
        ReduceMisraGries(shards.front()->Entries(), capacity));
    return out;
  }
  DeterministicSpaceSaving merged =
      Merge(*shards[0], *shards[1], capacity, seed);
  for (size_t i = 2; i < shards.size(); ++i) {
    merged = Merge(merged, *shards[i], capacity, seed + i);
  }
  return merged;
}

}  // namespace dsketch
