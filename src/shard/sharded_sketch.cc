#include "shard/sharded_sketch.h"

#include "core/merge.h"

namespace dsketch {

namespace {

template <typename S>
std::vector<const S*> Pointers(const std::vector<S>& shards) {
  std::vector<const S*> ptrs;
  ptrs.reserve(shards.size());
  for (const S& s : shards) ptrs.push_back(&s);
  return ptrs;
}

}  // namespace

UnbiasedSpaceSaving MergeShards(const std::vector<UnbiasedSpaceSaving>& shards,
                                size_t capacity, uint64_t seed) {
  return MergeShards(Pointers(shards), capacity, seed);
}

UnbiasedSpaceSaving MergeShards(
    const std::vector<const UnbiasedSpaceSaving*>& shards, size_t capacity,
    uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  return MergeAll(shards, capacity, seed);
}

DeterministicSpaceSaving MergeShards(
    const std::vector<DeterministicSpaceSaving>& shards, size_t capacity,
    uint64_t seed) {
  return MergeShards(Pointers(shards), capacity, seed);
}

DeterministicSpaceSaving MergeShards(
    const std::vector<const DeterministicSpaceSaving*>& shards,
    size_t capacity, uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  if (shards.size() == 1) {
    // Still honor the requested capacity via the soft-threshold reduction.
    DeterministicSpaceSaving out(capacity, seed);
    out.core().LoadEntries(
        ReduceMisraGries(shards.front()->Entries(), capacity));
    return out;
  }
  DeterministicSpaceSaving merged =
      Merge(*shards[0], *shards[1], capacity, seed);
  for (size_t i = 2; i < shards.size(); ++i) {
    merged = Merge(merged, *shards[i], capacity, seed + i);
  }
  return merged;
}

}  // namespace dsketch
