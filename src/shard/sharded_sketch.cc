#include "shard/sharded_sketch.h"

#include "core/merge.h"

namespace dsketch {

UnbiasedSpaceSaving MergeShards(const std::vector<UnbiasedSpaceSaving>& shards,
                                size_t capacity, uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  std::vector<const UnbiasedSpaceSaving*> ptrs;
  ptrs.reserve(shards.size());
  for (const UnbiasedSpaceSaving& s : shards) ptrs.push_back(&s);
  return MergeAll(ptrs, capacity, seed);
}

DeterministicSpaceSaving MergeShards(
    const std::vector<DeterministicSpaceSaving>& shards, size_t capacity,
    uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  if (shards.size() == 1) {
    // Still honor the requested capacity via the soft-threshold reduction.
    DeterministicSpaceSaving out(capacity, seed);
    out.core().LoadEntries(
        ReduceMisraGries(shards.front().Entries(), capacity));
    return out;
  }
  DeterministicSpaceSaving merged = Merge(shards[0], shards[1], capacity, seed);
  for (size_t i = 2; i < shards.size(); ++i) {
    merged = Merge(merged, shards[i], capacity, seed + i);
  }
  return merged;
}

}  // namespace dsketch
