// Sharded concurrent front-end for the Space Saving family.
//
// One ingest thread partitions rows by item hash across N shards; each
// shard owns a core-local sketch fed through a bounded SPSC queue by a
// dedicated worker thread that applies rows with the batched UpdateBatch
// path. Because the hash partition sends every distinct item to exactly
// one shard, and the §4/§5.3 merge is unbiased for arbitrary splits of
// the stream (Theorem 2), Snapshot() — merge of the per-shard sketches —
// gives unbiased subset-sum estimates over the full stream, and every
// downstream estimator (subset sums, CIs, top-k, the query engine) works
// on it unchanged.
//
// Determinism: with a fixed options.seed, the partition, the per-shard
// streams (single producer preserves order within a shard), the per-shard
// sketches, and the snapshot merge are all independent of thread timing,
// so runs are reproducible despite the concurrency.
//
// Threading contract: one thread calls Ingest/IngestSerialized/Flush/
// Snapshot (single producer); the destructor stops and joins the
// workers. Snapshot and shard() are safe only after a Flush with no
// concurrent Ingest.
//
// Replication: SerializeSnapshot() ships the merged state as wire-format
// bytes and IngestSerialized() absorbs a peer's bytes (any supported
// wire version) as an extra shard, so sharded fleets exchange state as
// byte payloads — the primitive the streaming-service layer replicates
// with.

#ifndef DSKETCH_SHARD_SHARDED_SKETCH_H_
#define DSKETCH_SHARD_SHARDED_SKETCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/deterministic_space_saving.h"
#include "core/serialization.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/spsc_queue.h"
#include "util/flat_map.h"
#include "util/logging.h"
#include "util/span.h"

namespace dsketch {

// Shard-layer telemetry (obs/metrics.h), shared by every fleet in the
// process and keyed by shard index: a counts, weighted, and windowed
// fleet with the same shard count aggregate into the same per-shard
// series. Handles are registered at fleet construction and cached in
// the Shard, so the ingest/worker paths only touch relaxed atomics.
namespace shard_metrics {

inline obs::Counter& RowsIngested(size_t shard_index) {
  return obs::MetricsRegistry::Global().GetCounter(
      "dsketch_shard_rows_ingested_total{shard=\"" +
      std::to_string(shard_index) + "\"}");
}

inline obs::Gauge& QueueDepthHighwater(size_t shard_index) {
  return obs::MetricsRegistry::Global().GetGauge(
      "dsketch_shard_queue_depth_highwater{shard=\"" +
      std::to_string(shard_index) + "\"}");
}

inline obs::Histogram& SnapshotMergeUs() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "dsketch_shard_snapshot_merge_us");
  return hist;
}

}  // namespace shard_metrics

/// Unbiased merge of per-shard sketches (single final pairwise-PPS
/// reduction over all entries, as in MergeAll).
UnbiasedSpaceSaving MergeShards(const std::vector<UnbiasedSpaceSaving>& shards,
                                size_t capacity, uint64_t seed);

/// Pointer form of the above (lets callers merge sketches they cannot or
/// need not copy, e.g. ShardedSketch's absorbed remote snapshots).
UnbiasedSpaceSaving MergeShards(
    const std::vector<const UnbiasedSpaceSaving*>& shards, size_t capacity,
    uint64_t seed);

/// Misra-Gries style merge of deterministic per-shard sketches (biased,
/// deterministic-guarantee preserving).
DeterministicSpaceSaving MergeShards(
    const std::vector<DeterministicSpaceSaving>& shards, size_t capacity,
    uint64_t seed);

/// Pointer form of the deterministic merge.
DeterministicSpaceSaving MergeShards(
    const std::vector<const DeterministicSpaceSaving*>& shards,
    size_t capacity, uint64_t seed);

/// Unbiased merge of weighted per-shard sketches (combine duplicate
/// labels, then one ReducePairwiseWeighted reduction — real-valued
/// analogue of the integer shard merge; preserves the total weight).
WeightedSpaceSaving MergeShards(const std::vector<WeightedSpaceSaving>& shards,
                                size_t capacity, uint64_t seed);

/// Pointer form of the weighted merge.
WeightedSpaceSaving MergeShards(
    const std::vector<const WeightedSpaceSaving*>& shards, size_t capacity,
    uint64_t seed);

/// Row type a shard queue carries for sketch type `S`, and how the
/// partitioner extracts the routing label from one row. Integer-count
/// sketches ship bare item labels; weighted sketches ship (item, weight)
/// entries so every row keeps its real-valued weight through the queue.
template <typename S>
struct ShardRow {
  using Type = uint64_t;
  static uint64_t ItemOf(uint64_t row) { return row; }
};

template <>
struct ShardRow<WeightedSpaceSaving> {
  using Type = WeightedEntry;
  static uint64_t ItemOf(const WeightedEntry& row) { return row.item; }
};

/// Tuning knobs for ShardedSketch.
struct ShardedSketchOptions {
  size_t num_shards = 4;          ///< worker threads / core-local sketches
  size_t shard_capacity = 4096;   ///< bins per shard sketch
  size_t queue_capacity = 65536;  ///< per-shard SPSC queue length (rows)
  size_t batch_size = 1024;       ///< rows a worker drains per UpdateBatch
  uint64_t seed = 1;              ///< shard i seeds its sketch with seed+i
};

/// Concurrent sharded front-end over sketch type `S`. `S` must provide
/// S(capacity, seed), UpdateBatch(Span<const ShardRow<S>::Type>), a
/// MergeShards(const std::vector<const S*>&, capacity, seed) overload,
/// and a SketchWire<S> specialization for snapshot replication.
template <typename S>
class ShardedSketch {
 public:
  /// What one queued row looks like for this sketch type.
  using Row = typename ShardRow<S>::Type;

  /// Builds the shard sketch for partition `i` (lets sketch types whose
  /// constructor is not (capacity, seed) — e.g. the windowed epoch ring —
  /// ride the same front-end).
  using ShardFactory = std::function<S(size_t)>;

  explicit ShardedSketch(const ShardedSketchOptions& options)
      : ShardedSketch(options, [&options](size_t i) {
          return S(options.shard_capacity, options.seed + i);
        }) {}

  ShardedSketch(const ShardedSketchOptions& options,
                const ShardFactory& factory)
      : options_(options) {
    DSKETCH_CHECK(options.num_shards > 0);
    DSKETCH_CHECK(options.shard_capacity > 0);
    DSKETCH_CHECK(options.batch_size > 0);
    shards_.reserve(options.num_shards);
    staging_.resize(options.num_shards);
    for (size_t i = 0; i < options.num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(options, i, factory));
    }
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
    }
  }

  ~ShardedSketch() {
    stop_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }

  ShardedSketch(const ShardedSketch&) = delete;
  ShardedSketch& operator=(const ShardedSketch&) = delete;

  /// Routes `rows` to their shards and enqueues them (blocking with
  /// backoff while a destination queue is full). Single producer.
  void Ingest(Span<const Row> items) {
    obs::ScopedSpan span("shard_enqueue", obs::TraceLayer::kShard);
    span.Annotate("rows", items.size());
    for (const Row& row : items) {
      staging_[ShardOf(ShardRow<S>::ItemOf(row))].push_back(row);
    }
    for (size_t s = 0; s < staging_.size(); ++s) {
      std::vector<Row>& rows = staging_[s];
      if (rows.empty()) continue;
      Shard& shard = *shards_[s];
      size_t done = 0;
      while (done < rows.size()) {
        size_t pushed =
            shard.queue.PushBulk(rows.data() + done, rows.size() - done);
        if (pushed == 0) {
          std::this_thread::yield();  // queue full: let the worker drain
        }
        done += pushed;
      }
      const uint64_t enqueued =
          shard.enqueued.fetch_add(rows.size(), std::memory_order_release) +
          rows.size();
      // Queue-pressure high-water mark: rows enqueued but not yet
      // applied, sampled once per batch (not per row — one relaxed load
      // and a CAS-max on the ingest path).
      shard.queue_highwater->RaiseTo(static_cast<int64_t>(
          enqueued - shard.applied.load(std::memory_order_relaxed)));
      rows.clear();
    }
  }

  /// Blocks until every enqueued row has been applied to its shard sketch.
  void Flush() {
    obs::ScopedSpan span("shard_drain", obs::TraceLayer::kShard);
    for (auto& shard : shards_) {
      const uint64_t target = shard->enqueued.load(std::memory_order_acquire);
      while (shard->applied.load(std::memory_order_acquire) < target) {
        std::this_thread::yield();
      }
    }
  }

  /// Flushes, then merges the per-shard sketches into one sketch with
  /// `capacity` bins. Estimates from the result are unbiased (Theorem 2);
  /// deterministic given the ingested stream and seeds.
  S Snapshot(size_t capacity, uint64_t seed = 1) {
    obs::ScopedTimer merge_timer(shard_metrics::SnapshotMergeUs());
    // Flush() nests its shard_drain span under this one.
    obs::ScopedSpan span("snapshot_merge", obs::TraceLayer::kShard);
    span.Annotate("shards", shards_.size());
    Flush();
    // Shard sketches are copied under their locks (workers may still be
    // alive); absorbed remotes are producer-thread-only and immutable,
    // so they join the merge by pointer.
    std::vector<S> copies;
    copies.reserve(shards_.size());
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      copies.push_back(shard->sketch);
    }
    std::vector<const S*> parts;
    parts.reserve(copies.size() + remotes_.size());
    for (const S& copy : copies) parts.push_back(&copy);
    for (const S& remote : remotes_) parts.push_back(&remote);
    return MergeShards(parts, capacity, seed);
  }

  /// Serializes Snapshot(capacity, seed) with the current wire format —
  /// the replication payload a peer absorbs with IngestSerialized().
  std::string SerializeSnapshot(size_t capacity, uint64_t seed = 1) {
    return SketchWire<S>::Serialize(Snapshot(capacity, seed));
  }

  /// Absorbs a serialized sketch (any supported wire version — e.g. a
  /// peer's SerializeSnapshot or a v1 blob from an old writer) into this
  /// sketch's state: the decoded sketch joins the shard set, and
  /// Snapshot() merges it with the locally ingested rows under the same
  /// unbiased reduction. Call from the producer thread only. Returns
  /// false (leaving the state untouched) on malformed bytes.
  bool IngestSerialized(std::string_view bytes) {
    std::optional<S> restored = SketchWire<S>::Deserialize(
        bytes, options_.seed + num_shards() + remotes_.size());
    if (!restored.has_value()) return false;
    remotes_.push_back(std::move(*restored));
    return true;
  }

  /// Sketches absorbed via IngestSerialized so far.
  size_t num_absorbed() const { return remotes_.size(); }

  /// Rows handed to Ingest so far (rows inside absorbed serialized
  /// sketches are not included; see num_absorbed()).
  int64_t RowsIngested() const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      total +=
          static_cast<int64_t>(shard->enqueued.load(std::memory_order_acquire));
    }
    return total;
  }

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// The shard sketch fed by partition `i`. Call only after Flush() with
  /// no concurrent Ingest.
  const S& shard(size_t i) const { return shards_[i]->sketch; }

  /// The shard partition `item` routes to (exposed for tests).
  size_t ShardOf(uint64_t item) const {
    // High mixed bits, scaled: independent of the low bits FlatMap homes
    // on, so shard-local hash tables stay uniformly filled.
    const uint64_t h = FlatMap<uint32_t>::MixedHash(item) >> 32;
    return static_cast<size_t>((h * shards_.size()) >> 32);
  }

 private:
  struct Shard {
    Shard(const ShardedSketchOptions& options, size_t i,
          const ShardFactory& factory)
        : queue(options.queue_capacity),
          sketch(factory(i)),
          rows_metric(&shard_metrics::RowsIngested(i)),
          queue_highwater(&shard_metrics::QueueDepthHighwater(i)) {}

    SpscQueue<Row> queue;
    S sketch;
    std::mutex mu;  // guards sketch between worker and Snapshot
    std::atomic<uint64_t> enqueued{0};
    std::atomic<uint64_t> applied{0};
    // Cached telemetry handles (register once here, bump lock-free on
    // the ingest/worker paths).
    obs::Counter* rows_metric;
    obs::Gauge* queue_highwater;
    std::thread worker;
  };

  void WorkerLoop(Shard& shard) {
    std::vector<Row> rows(options_.batch_size);
    while (true) {
      const size_t n = shard.queue.PopBulk(rows.data(), rows.size());
      if (n == 0) {
        if (stop_.load(std::memory_order_acquire) && shard.queue.Empty()) {
          return;
        }
        std::this_thread::yield();
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.sketch.UpdateBatch(Span<const Row>(rows.data(), n));
      }
      shard.applied.fetch_add(n, std::memory_order_release);
      shard.rows_metric->Inc(n);  // per drained batch, not per row
    }
  }

  ShardedSketchOptions options_;
  std::atomic<bool> stop_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Row>> staging_;  // per-shard routing buffers
  std::vector<S> remotes_;  // sketches absorbed via IngestSerialized
};

/// The concurrent front-end for the paper's primary sketch.
using ShardedSpaceSaving = ShardedSketch<UnbiasedSpaceSaving>;

/// The concurrent front-end for real-valued (item, weight) rows — the
/// §5.3 weighted generalization behind the service layer's weighted
/// ingest path.
using ShardedWeightedSpaceSaving = ShardedSketch<WeightedSpaceSaving>;

}  // namespace dsketch

#endif  // DSKETCH_SHARD_SHARDED_SKETCH_H_
