// Numerically stable streaming mean/variance (Welford's algorithm),
// used by the test/bench harnesses to accumulate Monte Carlo error
// statistics without storing samples.

#ifndef DSKETCH_STATS_WELFORD_H_
#define DSKETCH_STATS_WELFORD_H_

#include <cmath>
#include <cstdint>

namespace dsketch {

/// Streaming accumulator of count/mean/variance.
class Welford {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Number of observations.
  uint64_t count() const { return n_; }

  /// Sample mean (0 if empty).
  double mean() const { return mean_; }

  /// Unbiased sample variance (0 if fewer than 2 observations).
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  /// Population (biased) variance.
  double population_variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }

  /// Sample standard deviation.
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? std::sqrt(variance() / static_cast<double>(n_)) : 0.0;
  }

  /// Merges another accumulator (parallel Welford combine).
  void Merge(const Welford& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double delta = other.mean_ - mean_;
    uint64_t total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    n_ = total;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace dsketch

#endif  // DSKETCH_STATS_WELFORD_H_
