// Error-summary utilities shared by the figure benches and the statistical
// tests: MSE/RRMSE accumulators keyed by estimator, coverage counters for
// confidence intervals, quantiles, and a bucketizer that produces the
// "smoothed relative error vs true count" curves the paper plots.

#ifndef DSKETCH_STATS_SUMMARY_H_
#define DSKETCH_STATS_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/welford.h"

namespace dsketch {

/// Accumulates squared error of repeated estimates of a known truth and
/// reports RMSE / relative RMSE, bias, and variance decomposition.
class ErrorAccumulator {
 public:
  /// Records one (estimate, truth) pair.
  void Add(double estimate, double truth) {
    err_.Add(estimate - truth);
    sq_err_.Add((estimate - truth) * (estimate - truth));
    truth_.Add(truth);
  }

  /// Number of recorded pairs.
  uint64_t count() const { return err_.count(); }

  /// Mean error (bias estimate).
  double bias() const { return err_.mean(); }

  /// Standard error of the bias estimate (for z-tests of unbiasedness).
  double bias_stderr() const { return err_.stderr_mean(); }

  /// Mean squared error.
  double mse() const { return sq_err_.mean(); }

  /// Root mean squared error.
  double rmse() const;

  /// RMSE divided by the mean truth (the paper's relative RMSE).
  double rrmse() const;

  /// Mean of the recorded truths.
  double mean_truth() const { return truth_.mean(); }

 private:
  Welford err_;
  Welford sq_err_;
  Welford truth_;
};

/// Counts how often confidence intervals cover the truth.
class CoverageCounter {
 public:
  /// Records one interval [lo, hi] against `truth`.
  void Add(double lo, double hi, double truth) {
    ++n_;
    if (truth >= lo && truth <= hi) ++covered_;
  }

  /// Number of recorded intervals.
  uint64_t count() const { return n_; }

  /// Fraction of intervals containing the truth.
  double coverage() const {
    return n_ > 0 ? static_cast<double>(covered_) / static_cast<double>(n_)
                  : 0.0;
  }

 private:
  uint64_t n_ = 0;
  uint64_t covered_ = 0;
};

/// Returns the q-quantile (0<=q<=1) of `values` by linear interpolation.
/// The input vector is copied; it may be unsorted.
double Quantile(std::vector<double> values, double q);

/// Buckets (x, y) points by log-spaced x and reports the mean y per bucket:
/// the "smoothed curve" used in the paper's relative-error figures.
class LogBucketCurve {
 public:
  /// Buckets span [min_x, max_x] with `buckets` log-uniform cells.
  LogBucketCurve(double min_x, double max_x, int buckets);

  /// Adds a point. x outside the range is clamped to the end buckets.
  void Add(double x, double y);

  struct Point {
    double x_center = 0.0;  ///< geometric center of the bucket
    double mean_y = 0.0;    ///< mean of y values in the bucket
    uint64_t count = 0;     ///< number of points in the bucket
  };

  /// Non-empty buckets in ascending x order.
  std::vector<Point> Points() const;

 private:
  double log_min_;
  double log_max_;
  int buckets_;
  std::vector<Welford> cells_;
};

/// Pretty-prints a table of named columns to stdout; benches use this so
/// every figure's series is greppable as `name: value` rows.
void PrintTableRow(const std::string& tag,
                   const std::vector<std::pair<std::string, double>>& cols);

}  // namespace dsketch

#endif  // DSKETCH_STATS_SUMMARY_H_
