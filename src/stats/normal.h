// Normal distribution helpers for the variance estimator and confidence
// intervals (paper §6.4-6.5): pdf, cdf, and quantile (inverse cdf).

#ifndef DSKETCH_STATS_NORMAL_H_
#define DSKETCH_STATS_NORMAL_H_

namespace dsketch {

/// Standard normal density at x.
double NormalPdf(double x);

/// Standard normal CDF Phi(x), accurate to ~1e-15 via erfc.
double NormalCdf(double x);

/// Standard normal quantile Phi^{-1}(p) for p in (0, 1).
/// Acklam's rational approximation refined with one Halley step; absolute
/// error below 1e-12 across the domain.
double NormalQuantile(double p);

/// Two-sided z value for a confidence `level` in (0,1), e.g. 1.959964 for
/// level = 0.95.
double NormalTwoSidedZ(double level);

}  // namespace dsketch

#endif  // DSKETCH_STATS_NORMAL_H_
