#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace dsketch {

double ErrorAccumulator::rmse() const { return std::sqrt(mse()); }

double ErrorAccumulator::rrmse() const {
  double mt = mean_truth();
  return mt != 0.0 ? rmse() / mt : 0.0;
}

double Quantile(std::vector<double> values, double q) {
  DSKETCH_CHECK(!values.empty());
  DSKETCH_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double idx = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LogBucketCurve::LogBucketCurve(double min_x, double max_x, int buckets)
    : log_min_(std::log(min_x)),
      log_max_(std::log(max_x)),
      buckets_(buckets),
      cells_(static_cast<size_t>(buckets)) {
  DSKETCH_CHECK(min_x > 0.0 && max_x > min_x && buckets > 0);
}

void LogBucketCurve::Add(double x, double y) {
  if (x <= 0.0) x = std::exp(log_min_);
  double frac = (std::log(x) - log_min_) / (log_max_ - log_min_);
  int b = static_cast<int>(frac * buckets_);
  b = std::clamp(b, 0, buckets_ - 1);
  cells_[static_cast<size_t>(b)].Add(y);
}

std::vector<LogBucketCurve::Point> LogBucketCurve::Points() const {
  std::vector<Point> out;
  for (int b = 0; b < buckets_; ++b) {
    const Welford& w = cells_[static_cast<size_t>(b)];
    if (w.count() == 0) continue;
    double lo = log_min_ + (log_max_ - log_min_) *
                               (static_cast<double>(b) / buckets_);
    double hi = log_min_ + (log_max_ - log_min_) *
                               (static_cast<double>(b + 1) / buckets_);
    Point p;
    p.x_center = std::exp(0.5 * (lo + hi));
    p.mean_y = w.mean();
    p.count = w.count();
    out.push_back(p);
  }
  return out;
}

void PrintTableRow(const std::string& tag,
                   const std::vector<std::pair<std::string, double>>& cols) {
  std::printf("%s", tag.c_str());
  for (const auto& [name, value] : cols) {
    std::printf("  %s=%.6g", name.c_str(), value);
  }
  std::printf("\n");
}

}  // namespace dsketch
