// Hierarchical heavy hitters over prefix hierarchies (paper §3.1: network
// addresses arrange hierarchically; an administrator wants both individual
// hot nodes and hot subnets; cf. Zhang et al. 2004, Mitzenmacher et al.
// 2012 "hierarchical heavy hitters with the space saving algorithm").
//
// One Unbiased Space Saving sketch per hierarchy level, each fed the row's
// key truncated to that level's prefix. Because every level's sketch is
// unbiased, level-l subset sums (e.g. "traffic of 10.3.0.0/16") are
// unbiased too, and *conditioned* heavy hitters — prefixes heavy after
// subtracting their heavy children — follow from the level estimates.

#ifndef DSKETCH_HHH_HIERARCHICAL_HEAVY_HITTERS_H_
#define DSKETCH_HHH_HIERARCHICAL_HEAVY_HITTERS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/unbiased_space_saving.h"

namespace dsketch {

/// A heavy prefix reported by the hierarchy.
struct HeavyPrefix {
  uint64_t prefix = 0;           ///< key truncated to the level
  int level = 0;                 ///< 0 = full key, higher = coarser
  int64_t estimate = 0;          ///< estimated total under the prefix
  int64_t conditioned = 0;       ///< estimate minus heavy-descendant mass
};

/// Per-level Space Saving over an N-level truncation hierarchy of 64-bit
/// keys. Level l truncates the low `bits_per_level * l` bits.
class HierarchicalHeavyHitters {
 public:
  /// `levels` >= 1 sketches of `capacity_per_level` bins each;
  /// `bits_per_level` low bits are dropped per level step.
  HierarchicalHeavyHitters(int levels, int bits_per_level,
                           size_t capacity_per_level, uint64_t seed = 1);

  /// Processes one row keyed by `key` (weight-1).
  void Update(uint64_t key);

  /// Unbiased estimate of the total under `prefix` at `level`.
  int64_t EstimatePrefix(uint64_t prefix, int level) const;

  /// Rows processed.
  int64_t TotalCount() const;

  /// Number of levels.
  int levels() const { return static_cast<int>(sketches_.size()); }

  /// The level-l sketch (level 0 = full keys).
  const UnbiasedSpaceSaving& level_sketch(int level) const {
    return sketches_[static_cast<size_t>(level)];
  }

  /// Truncates `key` to `level`.
  uint64_t Truncate(uint64_t key, int level) const;

  /// Hierarchical heavy hitters above `phi` * total: per level, prefixes
  /// whose *conditioned* count (estimate minus the mass of reported
  /// descendants one level below) still exceeds the threshold. Sorted by
  /// level then estimate.
  std::vector<HeavyPrefix> Query(double phi) const;

 private:
  int bits_per_level_;
  std::vector<UnbiasedSpaceSaving> sketches_;
};

}  // namespace dsketch

#endif  // DSKETCH_HHH_HIERARCHICAL_HEAVY_HITTERS_H_
