#include "hhh/hierarchical_heavy_hitters.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace dsketch {

HierarchicalHeavyHitters::HierarchicalHeavyHitters(int levels,
                                                   int bits_per_level,
                                                   size_t capacity_per_level,
                                                   uint64_t seed)
    : bits_per_level_(bits_per_level) {
  DSKETCH_CHECK(levels >= 1);
  DSKETCH_CHECK(bits_per_level >= 1 && bits_per_level * (levels - 1) < 64);
  sketches_.reserve(static_cast<size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    sketches_.emplace_back(capacity_per_level,
                           seed + 0x9e3779b97f4a7c15ULL * (l + 1));
  }
}

uint64_t HierarchicalHeavyHitters::Truncate(uint64_t key, int level) const {
  DSKETCH_DCHECK(level >= 0 && level < levels());
  int shift = bits_per_level_ * level;
  return shift == 0 ? key : (key >> shift) << shift;
}

void HierarchicalHeavyHitters::Update(uint64_t key) {
  for (int l = 0; l < levels(); ++l) {
    sketches_[static_cast<size_t>(l)].Update(Truncate(key, l));
  }
}

int64_t HierarchicalHeavyHitters::EstimatePrefix(uint64_t prefix,
                                                 int level) const {
  DSKETCH_CHECK(level >= 0 && level < levels());
  return sketches_[static_cast<size_t>(level)].EstimateCount(prefix);
}

int64_t HierarchicalHeavyHitters::TotalCount() const {
  return sketches_.front().TotalCount();
}

std::vector<HeavyPrefix> HierarchicalHeavyHitters::Query(double phi) const {
  DSKETCH_CHECK(phi > 0.0 && phi < 1.0);
  const double threshold = phi * static_cast<double>(TotalCount());
  std::vector<HeavyPrefix> out;

  // Mass of reported prefixes from the previous (finer) level, keyed by
  // their parent prefix at the current level.
  std::unordered_map<uint64_t, int64_t> reported_child_mass;

  for (int l = 0; l < levels(); ++l) {
    std::unordered_map<uint64_t, int64_t> next_child_mass;
    for (const SketchEntry& e :
         sketches_[static_cast<size_t>(l)].Entries()) {
      if (static_cast<double>(e.count) <= threshold) continue;
      int64_t child_mass = 0;
      auto it = reported_child_mass.find(e.item);
      if (it != reported_child_mass.end()) child_mass = it->second;

      HeavyPrefix hp;
      hp.prefix = e.item;
      hp.level = l;
      hp.estimate = e.count;
      hp.conditioned = e.count - child_mass;
      // A prefix is a *hierarchical* heavy hitter when it is heavy beyond
      // its already-reported descendants.
      bool report = static_cast<double>(hp.conditioned) > threshold;
      if (report) out.push_back(hp);

      // Mass absorbed at this level (either reported here or passed
      // through from below) shields the parent one level up.
      int64_t absorbed = report ? e.count : child_mass;
      if (l + 1 < levels()) {
        next_child_mass[Truncate(e.item, l + 1)] += absorbed;
      }
    }
    reported_child_mass = std::move(next_child_mass);
  }

  std::sort(out.begin(), out.end(),
            [](const HeavyPrefix& a, const HeavyPrefix& b) {
              if (a.level != b.level) return a.level < b.level;
              return a.estimate > b.estimate;
            });
  return out;
}

}  // namespace dsketch
