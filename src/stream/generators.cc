#include "stream/generators.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace dsketch {

std::vector<uint64_t> ExpandRows(const std::vector<int64_t>& counts) {
  int64_t total = 0;
  for (int64_t c : counts) {
    DSKETCH_CHECK(c >= 0);
    total += c;
  }
  std::vector<uint64_t> rows;
  rows.reserve(static_cast<size_t>(total));
  for (size_t i = 0; i < counts.size(); ++i) {
    for (int64_t j = 0; j < counts[i]; ++j) rows.push_back(i);
  }
  return rows;
}

std::vector<uint64_t> PermutedStream(const std::vector<int64_t>& counts,
                                     Rng& rng) {
  std::vector<uint64_t> rows = ExpandRows(counts);
  rng.Shuffle(rows.data(), rows.size());
  return rows;
}

std::vector<uint64_t> SortedStream(const std::vector<int64_t>& counts,
                                   bool ascending) {
  // Order items by count, then expand.
  std::vector<size_t> order(counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ascending ? counts[a] < counts[b] : counts[a] > counts[b];
  });
  std::vector<uint64_t> rows;
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  rows.reserve(static_cast<size_t>(total));
  for (size_t idx : order) {
    for (int64_t j = 0; j < counts[idx]; ++j) rows.push_back(idx);
  }
  return rows;
}

std::vector<uint64_t> TwoHalfStream(const std::vector<int64_t>& first,
                                    const std::vector<int64_t>& second,
                                    Rng& rng) {
  std::vector<uint64_t> rows = PermutedStream(first, rng);
  std::vector<uint64_t> tail = PermutedStream(second, rng);
  const uint64_t offset = first.size();
  rows.reserve(rows.size() + tail.size());
  for (uint64_t item : tail) rows.push_back(item + offset);
  return rows;
}

std::vector<uint64_t> AdversarialWipeoutStream(
    const std::vector<int64_t>& counts, uint64_t fresh_start_id) {
  // Most frequent first (Theorem 11 sorts descending).
  std::vector<uint64_t> rows = SortedStream(counts, /*ascending=*/false);
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  DSKETCH_CHECK(fresh_start_id >= counts.size());
  rows.reserve(rows.size() + static_cast<size_t>(total));
  for (int64_t j = 0; j < total; ++j) {
    rows.push_back(fresh_start_id + static_cast<uint64_t>(j));
  }
  return rows;
}

std::vector<uint64_t> BurstyStream(uint64_t burst_item, int64_t burst_length,
                                   int64_t quiet_length, int64_t periods,
                                   uint64_t fresh_start_id) {
  DSKETCH_CHECK(burst_length >= 0 && quiet_length >= 0 && periods > 0);
  std::vector<uint64_t> rows;
  rows.reserve(static_cast<size_t>((burst_length + quiet_length) * periods));
  uint64_t fresh = fresh_start_id;
  for (int64_t p = 0; p < periods; ++p) {
    for (int64_t j = 0; j < burst_length; ++j) rows.push_back(burst_item);
    for (int64_t j = 0; j < quiet_length; ++j) rows.push_back(fresh++);
  }
  return rows;
}

std::vector<uint64_t> DistinctStream(int64_t n, uint64_t start) {
  DSKETCH_CHECK(n >= 0);
  std::vector<uint64_t> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), start);
  return rows;
}

UrnStream::UrnStream(const std::vector<int64_t>& counts, uint64_t seed)
    : urn_(counts), rng_(seed) {}

bool UrnStream::Next(uint64_t* item) {
  if (urn_.Empty()) return false;
  *item = urn_.Draw(rng_);
  return true;
}

}  // namespace dsketch
