// Item-frequency distributions used by the paper's experiments (§7).
//
// The paper draws item counts as n_i = Round(F^{-1}(u_i)) for u_i on a
// regular grid (the inverse-CDF method, "for more easily reproducible
// behavior"), with F a Weibull distribution — a discretized generalization
// of the geometric whose tail heaviness is tuned by the shape parameter —
// or a geometric distribution. Zipf counts are provided for additional
// skew sweeps.

#ifndef DSKETCH_STREAM_DISTRIBUTIONS_H_
#define DSKETCH_STREAM_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsketch {

/// Counts n_i = Round(scale * (-log(1-u_i))^(1/shape)) on the regular grid
/// u_i = (i + 0.5) / n_items, ascending in i. Items may round to zero
/// (they simply never appear in the stream), matching the paper's setup.
std::vector<int64_t> WeibullCounts(size_t n_items, double scale, double shape);

/// Counts from the discretized Geometric(p): n_i = floor(log(1-u_i) /
/// log(1-p)) on the same regular grid, ascending.
std::vector<int64_t> GeometricCounts(size_t n_items, double p);

/// Zipf counts n_i proportional to (n_items - i)^-s scaled so the largest
/// count is `max_count`, ascending in i.
std::vector<int64_t> ZipfCounts(size_t n_items, double s, int64_t max_count);

/// Sum of a count vector.
int64_t TotalCount(const std::vector<int64_t>& counts);

/// Rescales counts so their total is approximately `target_total` (>=
/// current positive entries keep at least 1). Used to shrink paper-scale
/// workloads (10^9 rows) to bench-friendly sizes with the same shape.
std::vector<int64_t> ScaleCountsToTotal(const std::vector<int64_t>& counts,
                                        int64_t target_total);

}  // namespace dsketch

#endif  // DSKETCH_STREAM_DISTRIBUTIONS_H_
