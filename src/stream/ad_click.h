// Synthetic Criteo-like ad impression log (paper §7, Fig. 6 substitution).
//
// The paper evaluates marginal-count estimation on the Criteo Kaggle
// display-advertising dataset: 45M impressions with categorical features,
// 9 of which are used, arriving in their natural (non-randomized) order.
// That dataset is not redistributable here, so this generator produces a
// log with the statistical properties the sketches are sensitive to:
//   * heavy-tailed impressions per ad unit (discretized Weibull);
//   * categorical attribute tuples with skewed (Zipf-like) per-feature
//     marginals, so 1-way and 2-way marginals span many magnitudes;
//   * per-ad click-through rates for the "sum of clicks" metric;
//   * optionally non-exchangeable arrival order (ads created in blocks),
//     mimicking the real log's time-ordered arrival.
// See DESIGN.md §3 for the substitution rationale.

#ifndef DSKETCH_STREAM_AD_CLICK_H_
#define DSKETCH_STREAM_AD_CLICK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/attribute_table.h"
#include "util/random.h"

namespace dsketch {

/// One impression row of the disaggregated log.
struct AdImpression {
  uint64_t ad_id = 0;  ///< unit of analysis (dense id into the table)
  bool click = false;  ///< click outcome
};

/// Configuration for the synthetic log.
struct AdClickConfig {
  size_t num_ads = 20000;            ///< distinct ad units
  size_t num_features = 9;           ///< categorical features (paper uses 9)
  uint32_t feature_cardinality = 50; ///< values per feature
  double feature_skew = 1.1;         ///< Zipf exponent of feature marginals
  double weibull_scale = 50.0;       ///< impressions-per-ad scale
  double weibull_shape = 0.35;       ///< impressions-per-ad tail heaviness
  double base_ctr = 0.03;            ///< mean click-through rate
};

/// Generator owning the ad dimension table and per-ad impression counts.
class AdClickGenerator {
 public:
  /// Builds the ad universe deterministically from `seed`.
  AdClickGenerator(const AdClickConfig& config, uint64_t seed);

  /// Per-ad impression counts (index = ad id).
  const std::vector<int64_t>& impressions_per_ad() const {
    return impressions_;
  }

  /// Per-ad click counts (realized once at construction).
  const std::vector<int64_t>& clicks_per_ad() const { return clicks_; }

  /// Ad attribute tuples (one row per ad id).
  const AttributeTable& attributes() const { return attrs_; }

  /// Total impressions.
  int64_t total_impressions() const { return total_; }

  /// The disaggregated log. `shuffled` = exchangeable arrival;
  /// otherwise ads arrive grouped in creation blocks (non-i.i.d., the
  /// realistic order that stresses Deterministic Space Saving).
  std::vector<AdImpression> GenerateLog(bool shuffled, uint64_t seed) const;

  /// Configuration used.
  const AdClickConfig& config() const { return config_; }

 private:
  AdClickConfig config_;
  AttributeTable attrs_;
  std::vector<int64_t> impressions_;
  std::vector<int64_t> clicks_;
  int64_t total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_STREAM_AD_CLICK_H_
