#include "stream/ad_click.h"

#include <algorithm>
#include <cmath>

#include "stream/distributions.h"
#include "util/alias.h"
#include "util/logging.h"

namespace dsketch {

AdClickGenerator::AdClickGenerator(const AdClickConfig& config, uint64_t seed)
    : config_(config), attrs_(config.num_features) {
  DSKETCH_CHECK(config.num_ads > 0 && config.num_features > 0);
  DSKETCH_CHECK(config.feature_cardinality > 0);
  DSKETCH_CHECK(config.base_ctr > 0.0 && config.base_ctr < 1.0);
  Rng rng(seed);

  // Zipf-weighted alias table shared by all features; each feature gets an
  // independent random value permutation so features are not identical.
  std::vector<double> zipf(config.feature_cardinality);
  for (uint32_t v = 0; v < config.feature_cardinality; ++v) {
    zipf[v] = 1.0 / std::pow(static_cast<double>(v + 1), config.feature_skew);
  }
  AliasTable alias(zipf);
  std::vector<std::vector<uint32_t>> perms(config.num_features);
  for (auto& perm : perms) {
    perm.resize(config.feature_cardinality);
    for (uint32_t v = 0; v < config.feature_cardinality; ++v) perm[v] = v;
    rng.Shuffle(perm.data(), perm.size());
  }

  // Heavy-tailed impressions per ad, shuffled so ad id carries no rank
  // information (the paper's ads are not sorted by popularity either).
  impressions_ = WeibullCounts(config.num_ads, config.weibull_scale,
                               config.weibull_shape);
  rng.Shuffle(impressions_.data(), impressions_.size());

  clicks_.resize(config.num_ads);
  std::vector<uint32_t> tuple(config.num_features);
  for (size_t ad = 0; ad < config.num_ads; ++ad) {
    for (size_t f = 0; f < config.num_features; ++f) {
      tuple[f] = perms[f][alias.Sample(rng)];
    }
    attrs_.AddItem(tuple);

    // Per-ad CTR jitters around the base rate (multiplicative lognormal).
    double ctr = config.base_ctr * std::exp(0.5 * rng.NextGaussian());
    ctr = std::min(ctr, 0.5);
    int64_t clicks = 0;
    for (int64_t i = 0; i < impressions_[ad]; ++i) {
      if (rng.NextBernoulli(ctr)) ++clicks;
    }
    clicks_[ad] = clicks;
    total_ += impressions_[ad];
  }
}

std::vector<AdImpression> AdClickGenerator::GenerateLog(bool shuffled,
                                                        uint64_t seed) const {
  Rng rng(seed);
  std::vector<AdImpression> log;
  log.reserve(static_cast<size_t>(total_));
  // Blocks of ads in creation order; clicks are spread uniformly across an
  // ad's impressions.
  for (size_t ad = 0; ad < impressions_.size(); ++ad) {
    int64_t n = impressions_[ad];
    int64_t c = clicks_[ad];
    for (int64_t i = 0; i < n; ++i) {
      // The first c of the ad's rows are clicks; shuffling (below) or the
      // per-ad uniform spread makes position irrelevant for aggregates.
      log.push_back({ad, i < c});
    }
  }
  if (shuffled) rng.Shuffle(log.data(), log.size());
  return log;
}

}  // namespace dsketch
