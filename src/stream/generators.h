// Row-stream builders over an item-count vector (paper §6.3, §7).
//
// A "stream" is the disaggregated input: one row per occurrence, labeled
// by item id. Items are the indices 0..n-1 of the count vector unless a
// builder documents otherwise. The builders cover every arrival order the
// paper evaluates:
//   * exchangeable (uniformly permuted) streams — equivalent to i.i.d.
//     draws by de Finetti (paper §7);
//   * sorted streams (ascending frequency = Unbiased Space Saving's worst
//     case; descending = its best case), Figs. 8-10;
//   * the two-half pathological stream that breaks Deterministic Space
//     Saving (Fig. 7);
//   * the Theorem-11 adversarial wipe-out sequence;
//   * periodic bursts and all-distinct streams (§6.3).

#ifndef DSKETCH_STREAM_GENERATORS_H_
#define DSKETCH_STREAM_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/fenwick.h"
#include "util/random.h"

namespace dsketch {

/// Item i repeated counts[i] times, ascending item order.
std::vector<uint64_t> ExpandRows(const std::vector<int64_t>& counts);

/// Uniformly random permutation of ExpandRows (exchangeable stream).
std::vector<uint64_t> PermutedStream(const std::vector<int64_t>& counts,
                                     Rng& rng);

/// Rows sorted by item frequency: ascending (rarest items first — the
/// pathological order for subset sums) or descending.
std::vector<uint64_t> SortedStream(const std::vector<int64_t>& counts,
                                   bool ascending);

/// Concatenation of two independently permuted halves: items 0..|a|-1
/// appear only in the first half (counts `first`), items |a|..|a|+|b|-1
/// only in the second (counts `second`). Fig. 7's pathological stream.
std::vector<uint64_t> TwoHalfStream(const std::vector<int64_t>& first,
                                    const std::vector<int64_t>& second,
                                    Rng& rng);

/// Theorem 11's adversarial sequence: items 0..v-1 played most-frequent
/// first (counts[i] rows each, descending count order), followed by
/// sum(counts) fresh distinct items with ids starting at `fresh_start_id`.
/// Deterministic Space Saving estimates 0 for every original item when
/// counts[i] < 2*total/m.
std::vector<uint64_t> AdversarialWipeoutStream(
    const std::vector<int64_t>& counts, uint64_t fresh_start_id);

/// Periodic-burst stream: each period is `burst_item` repeated
/// `burst_length` times followed by `quiet_length` fresh distinct items
/// (ids from `fresh_start_id` on), for `periods` periods (§6.3's bursty
/// pathological pattern).
std::vector<uint64_t> BurstyStream(uint64_t burst_item, int64_t burst_length,
                                   int64_t quiet_length, int64_t periods,
                                   uint64_t fresh_start_id);

/// Stream of `n` all-distinct items starting at id `start` (the paper's
/// "most obvious pathological sequence").
std::vector<uint64_t> DistinctStream(int64_t n, uint64_t start = 0);

/// Streaming without-replacement row sampler for counts too large to
/// materialize: draws the same distribution as PermutedStream one row at
/// a time in O(log n) via a Fenwick urn.
class UrnStream {
 public:
  /// Urn over `counts` with randomness from `seed`.
  UrnStream(const std::vector<int64_t>& counts, uint64_t seed);

  /// Rows remaining.
  int64_t Remaining() const { return urn_.Remaining(); }

  /// Draws the next row's item id; returns false when exhausted.
  bool Next(uint64_t* item);

 private:
  WeightedUrn urn_;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_STREAM_GENERATORS_H_
