#include "stream/distributions.h"

#include <cmath>

#include "util/logging.h"

namespace dsketch {

std::vector<int64_t> WeibullCounts(size_t n_items, double scale,
                                   double shape) {
  DSKETCH_CHECK(n_items > 0 && scale > 0.0 && shape > 0.0);
  std::vector<int64_t> counts(n_items);
  for (size_t i = 0; i < n_items; ++i) {
    double u = (static_cast<double>(i) + 0.5) / static_cast<double>(n_items);
    double x = scale * std::pow(-std::log1p(-u), 1.0 / shape);
    counts[i] = static_cast<int64_t>(std::llround(x));
  }
  return counts;
}

std::vector<int64_t> GeometricCounts(size_t n_items, double p) {
  DSKETCH_CHECK(n_items > 0 && p > 0.0 && p < 1.0);
  std::vector<int64_t> counts(n_items);
  for (size_t i = 0; i < n_items; ++i) {
    double u = (static_cast<double>(i) + 0.5) / static_cast<double>(n_items);
    counts[i] =
        static_cast<int64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
  }
  return counts;
}

std::vector<int64_t> ZipfCounts(size_t n_items, double s, int64_t max_count) {
  DSKETCH_CHECK(n_items > 0 && s > 0.0 && max_count > 0);
  std::vector<int64_t> counts(n_items);
  for (size_t i = 0; i < n_items; ++i) {
    // Rank 1 = most frequent; store ascending like the other generators.
    double rank = static_cast<double>(n_items - i);
    double x = static_cast<double>(max_count) / std::pow(rank, s);
    counts[i] = static_cast<int64_t>(std::llround(x));
  }
  return counts;
}

int64_t TotalCount(const std::vector<int64_t>& counts) {
  int64_t total = 0;
  for (int64_t c : counts) {
    DSKETCH_CHECK(c >= 0);
    total += c;
  }
  return total;
}

std::vector<int64_t> ScaleCountsToTotal(const std::vector<int64_t>& counts,
                                        int64_t target_total) {
  DSKETCH_CHECK(target_total > 0);
  int64_t total = TotalCount(counts);
  if (total == 0) return counts;
  double factor =
      static_cast<double>(target_total) / static_cast<double>(total);
  std::vector<int64_t> out(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      out[i] = 0;
      continue;
    }
    int64_t scaled =
        static_cast<int64_t>(std::llround(static_cast<double>(counts[i]) * factor));
    out[i] = scaled > 0 ? scaled : 1;  // keep present items present
  }
  return out;
}

}  // namespace dsketch
