// Versioned wire envelope and the kind-codec registry.
//
// Every serialized sketch starts with the same 8-byte envelope,
// regardless of wire version:
//
//   [u32 magic = "DSK1"][u8 kind][u8 version][u16 reserved = 0]
//
// What follows is the kind- and version-specific payload. Version 1 (the
// legacy format) continues with fixed-width [u64 capacity][u32 entries];
// version 2 payloads are varint/delta encoded (see core/serialization.h
// for the per-kind layouts). Readers negotiate by version byte: a decoder
// accepts every version in the kind's registered [min, max] range and
// rejects the rest, so old blobs keep decoding while new encoders emit
// the current version only.
//
// The registry maps each kind byte to a CodecInfo (name + supported
// version range). The built-in sketch kinds are seeded by the wire layer
// itself (codec.cc), so classification works in every link
// configuration; RegisterCodec lets additional families extend the
// table at static-initialization time. DescribeWire uses the registry to
// classify a blob without decoding it, and decoders use it to gate
// version dispatch in one place.

#ifndef DSKETCH_WIRE_CODEC_H_
#define DSKETCH_WIRE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wire/varint.h"

namespace dsketch {
namespace wire {

/// Shared magic ("DSK1" little-endian) across all wire versions.
inline constexpr uint32_t kMagic = 0x44534B31;

/// The legacy fixed-width format (decode-only on current builds).
inline constexpr uint8_t kVersionLegacy = 1;

/// The current varint/delta format; what Serialize emits.
inline constexpr uint8_t kVersionCurrent = 2;

/// Envelope size in bytes (same for every version).
inline constexpr size_t kEnvelopeBytes = 8;

/// The parsed envelope of a wire blob.
struct Envelope {
  uint8_t kind = 0;
  uint8_t version = 0;
};

/// Appends the 8-byte envelope for (`kind`, `version`).
void WriteEnvelope(std::string& out, uint8_t kind, uint8_t version);

/// Parses the envelope, validating the magic; the reader is left
/// positioned at the first payload byte. Returns nullopt on truncated or
/// foreign input. (The reserved field is not validated: v1 never checked
/// it, and rejecting it now would refuse blobs old writers produced.)
std::optional<Envelope> ReadEnvelope(VarintReader& reader);

/// Registry metadata one sketch family contributes for its kind byte.
struct CodecInfo {
  uint8_t kind = 0;
  const char* name = "";
  uint8_t min_version = kVersionLegacy;
  uint8_t max_version = kVersionCurrent;
};

/// Registers `info` for its kind byte (static-init time; re-registration
/// overwrites, including the built-ins). Kind bytes must be in [1, 63];
/// 1-8 are reserved for the built-in sketch kinds (see codec.cc; 7 is
/// the windowed epoch-ring snapshot, encoded by src/window, and 8 the
/// frozen mmap-able image, encoded by wire/frozen.h).
void RegisterCodec(const CodecInfo& info);

/// Looks up the registered codec for `kind`; nullptr when unknown.
const CodecInfo* FindCodec(uint8_t kind);

/// True when `version` is one the registered codec for `kind` decodes.
bool VersionSupported(uint8_t kind, uint8_t version);

/// What DescribeWire reports about a blob without decoding its payload.
struct WireInfo {
  uint8_t kind = 0;
  uint8_t version = 0;
  const char* kind_name = "";   ///< registered codec name
  size_t payload_bytes = 0;     ///< bytes after the envelope
};

/// Classifies a wire blob: parses the envelope and resolves the kind
/// against the registry. Returns nullopt for foreign bytes, unknown
/// kinds, or versions outside the kind's supported range.
std::optional<WireInfo> DescribeWire(std::string_view bytes);

/// Telemetry taps the serialization chokepoints call per blob: bump
/// dsketch_wire_encoded_bytes_total / dsketch_wire_decoded_bytes_total
/// labeled by the registered kind name and version (unknown kinds count
/// under kind="unknown"). Blob-granular, so the registry lookup cost is
/// irrelevant next to the codec work itself. Decode taps count accepted
/// blobs only — rejected hostile bytes never reach them. Container
/// blobs (the windowed ring) count their full size under their own
/// kind; the inner per-slot blobs also count under theirs.
void RecordWireEncoded(uint8_t kind, uint8_t version, size_t bytes);
void RecordWireDecoded(uint8_t kind, uint8_t version, size_t bytes);

}  // namespace wire
}  // namespace dsketch

#endif  // DSKETCH_WIRE_CODEC_H_
