// The frozen sketch format (wire kind 8): an on-disk image that IS the
// query-ready layout, so "deserialization" is O(1) header/bounds vetting
// instead of an O(n) varint parse.
//
// Image layout (all fields little-endian; offsets relative to byte 0 of
// the image):
//
//   [0, 8)    shared wire envelope (codec.h): magic "DSK1", kind = 8,
//             version = 2, reserved = 0
//   [8, 88)   frozen header: ten fixed-width u64 fields, in order
//               image_bytes     total image size; must equal the buffer
//               capacity        sketch bins m (1 .. 2^22)
//               entry_count     occupied bins n (<= capacity)
//               min_count       MinCount() of the frozen sketch (>= 0)
//               total_count     TotalCount() of the frozen sketch (>= 0)
//               entries_offset  -> entry section, 64-byte aligned
//               entries_bytes   == 16 * entry_count
//               index_offset    -> index section, 64-byte aligned
//               index_bytes     == 4 * index_slots
//               index_slots     == FrozenIndexSlots(entry_count)
//   entries   entry_count * 16 B records [u64 item][i64 count], sorted
//             canonically: count descending, ties by ascending item
//             (exactly the order a thawed sketch's Entries() reports, so
//             answers off the image are bit-identical to the thawed path)
//   index     open-addressed item -> entry-index hash table: index_slots
//             (a power of two) u32 slots, empty = 0xFFFFFFFF, probe start
//             FrozenHash(item) & (index_slots - 1), linear probing
//   padding   zero bytes pad each section start and the image end to a
//             64-byte multiple (cache-line-aligned sections when the
//             image is mapped at a page boundary)
//
// min_count / total_count are the bin-range metadata unbiased SUM needs
// (paper eq. 5 variance = Nmin^2 * max(1, C_S)); the descending entry
// order is what TOPK needs. Nothing else of the sketch travels.
//
// Trust model: FrozenView::Vet performs strict O(1) *structural*
// validation — envelope, exact image size, section alignment, bounds,
// and overlap — and rejects anything inconsistent. It deliberately does
// NOT read the O(n) payload, so a vetted view may still carry hostile
// *content* (lying counts, garbage index slots). Every query accessor is
// therefore bounds-checked against the vetted structure: probes are
// masked and step-capped, entry reads are bounded by entry_count, and no
// code path reads outside [0, image_bytes). Deep content validation
// happens only on thaw (core/serialization.cc), which is the O(n) path
// anyway.
//
// This layer is below core on purpose (wire must not include core), so
// it speaks its own POD FrozenEntry; core/serialization.cc static_asserts
// it is layout-identical to SketchEntry and bridges the two.

#ifndef DSKETCH_WIRE_FROZEN_H_
#define DSKETCH_WIRE_FROZEN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "wire/codec.h"

namespace dsketch {
namespace wire {

/// The frozen unbiased sketch wire kind (registered in codec.cc; v2-only
/// like the windowed ring — the format was born after the varint era).
inline constexpr uint8_t kKindFrozenUnbiased = 8;

/// Section alignment: every section offset and the image size are
/// multiples of this, so an image mapped at a page boundary has
/// cache-line-aligned sections.
inline constexpr size_t kFrozenAlign = 64;

/// Bytes per entry record ([u64 item][i64 count]).
inline constexpr size_t kFrozenEntryBytes = 16;

/// Bytes per index slot (u32 entry index).
inline constexpr size_t kFrozenSlotBytes = 4;

/// Empty-slot sentinel in the index section.
inline constexpr uint32_t kFrozenEmptySlot = 0xFFFFFFFFu;

/// Largest capacity a frozen image may claim. Mirrors the core codecs'
/// kMaxSerializableCapacity (serialization.cc static_asserts equality);
/// duplicated here because wire cannot include core.
inline constexpr uint64_t kFrozenMaxCapacity = uint64_t{1} << 22;

/// End of the fixed header (envelope + ten u64 fields); the smallest
/// prefix Vet must see before trusting any offset.
inline constexpr size_t kFrozenHeaderEnd = kEnvelopeBytes + 10 * 8;

/// One frozen entry record. Layout-identical to core's SketchEntry
/// (static_asserted at the core/wire seam) but owned by this layer so
/// the wire stays below core in the dependency DAG.
struct FrozenEntry {
  uint64_t item = 0;
  int64_t count = 0;
};

/// The index hash — part of the on-disk format contract, so it is
/// spelled out here rather than shared with util/flat_map.h: images are
/// read by builds (and foreign-language bindings) that must agree on the
/// probe sequence forever. It is the murmur3 finalizer.
inline uint64_t FrozenHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Index slots for `entry_count` entries: the smallest power of two
/// >= max(8, 2 * entry_count) (load factor <= 0.5).
size_t FrozenIndexSlots(size_t entry_count);

/// Total image bytes for `entry_count` entries (header + aligned
/// sections + final padding). This is the size FreezeInto writes and the
/// size a valid image of that entry count must have.
size_t FrozenImageBytes(size_t entry_count);

/// Writes a frozen image into the caller's buffer (the hipermap shape:
/// size with FrozenImageBytes, then compile into your own storage — an
/// arena, a file mapping, a string). `entries` must be in canonical
/// order (count descending, ties ascending item) with positive counts
/// and distinct items; `capacity` in [max(1, entry_count), 2^22];
/// min_count/total_count >= 0. Returns the bytes written
/// (== FrozenImageBytes(entry_count)), or 0 — writing nothing — when the
/// buffer is too small or any argument breaks those rules (duplicate
/// items are caught during the index build). Never aborts: the C ABI
/// calls this with caller-supplied data.
size_t FreezeInto(const FrozenEntry* entries, size_t entry_count,
                  uint64_t capacity, int64_t min_count, int64_t total_count,
                  void* out, size_t out_bytes);

/// Validated zero-copy view over a frozen image. Borrow semantics: the
/// view holds a pointer into the caller's bytes (string, file mapping),
/// which must outlive it. Copyable (it is just a vetted pointer + cached
/// header fields).
class FrozenView {
 public:
  /// O(1) structural vetting (see file comment). Returns nullopt on
  /// anything that is not a byte-exact-sized, well-aligned,
  /// non-overlapping frozen image; never reads outside `bytes`.
  static std::optional<FrozenView> Vet(std::string_view bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t entry_count() const { return entry_count_; }
  int64_t min_count() const { return min_count_; }
  int64_t total_count() const { return total_count_; }

  /// Entry `i` (caller keeps i < entry_count(); reads are memcpy loads,
  /// so no base-pointer alignment is required of the backing bytes).
  FrozenEntry entry(size_t i) const {
    FrozenEntry e;
    const unsigned char* p = base_ + entries_offset_ + i * kFrozenEntryBytes;
    std::memcpy(&e.item, p, 8);
    std::memcpy(&e.count, p + 8, 8);
    return e;
  }

  /// Point estimate via the hash index: the entry count when `item` is
  /// tracked, 0 otherwise (matching the thawed EstimateCount contract on
  /// well-formed images). Probes are masked and capped at index_slots
  /// steps, and lying slot values are bounds-checked, so hostile index
  /// content degrades to a wrong answer — never an out-of-bounds read or
  /// an unterminated loop.
  int64_t EstimateCount(uint64_t item) const;

  /// The whole vetted image (e.g. to copy it onward as snapshot bytes).
  std::string_view bytes() const {
    return std::string_view(reinterpret_cast<const char*>(base_),
                            image_bytes_);
  }

 private:
  FrozenView() = default;

  uint32_t slot(size_t i) const {
    uint32_t v;
    std::memcpy(&v, base_ + index_offset_ + i * kFrozenSlotBytes, 4);
    return v;
  }

  const unsigned char* base_ = nullptr;
  size_t image_bytes_ = 0;
  uint64_t capacity_ = 0;
  uint64_t entry_count_ = 0;
  int64_t min_count_ = 0;
  int64_t total_count_ = 0;
  size_t entries_offset_ = 0;
  size_t index_offset_ = 0;
  size_t index_slots_ = 0;
};

/// Subset-sum result over a frozen view; mirrors core's
/// SubsetSumEstimate fields without the core dependency.
struct FrozenSumResult {
  double estimate = 0.0;
  double variance = 0.0;
  uint64_t items_in_sample = 0;
};

/// The unbiased subset-sum estimator evaluated straight off the image.
/// The loop mirrors core/subset_sum.cc EstimateSubsetSumFromEntries
/// term-for-term (same double accumulation over the same canonical entry
/// order, variance = Nmin^2 * max(1, C_S)), so answers are bit-identical
/// to the thawed sketch — pinned by frozen_test and the bench_wire CI
/// smoke, which fail if the two implementations ever drift.
template <typename Pred>
FrozenSumResult FrozenSubsetSum(const FrozenView& view, Pred&& pred) {
  FrozenSumResult out;
  const size_t n = static_cast<size_t>(view.entry_count());
  for (size_t i = 0; i < n; ++i) {
    const FrozenEntry e = view.entry(i);
    if (pred(e.item)) {
      out.estimate += static_cast<double>(e.count);
      ++out.items_in_sample;
    }
  }
  const double nmin = static_cast<double>(view.min_count());
  const double c_s = static_cast<double>(
      out.items_in_sample > 1 ? out.items_in_sample : uint64_t{1});
  out.variance = nmin * nmin * c_s;
  return out;
}

}  // namespace wire
}  // namespace dsketch

#endif  // DSKETCH_WIRE_FROZEN_H_
