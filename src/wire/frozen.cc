#include "wire/frozen.h"

#include <limits>

namespace dsketch {
namespace wire {

namespace {

constexpr size_t AlignUp(size_t n) {
  return (n + (kFrozenAlign - 1)) & ~(kFrozenAlign - 1);
}

void StoreU64(unsigned char* p, uint64_t v) { std::memcpy(p, &v, 8); }

uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

size_t FrozenIndexSlots(size_t entry_count) {
  size_t want = entry_count > 4 ? 2 * entry_count : 8;
  size_t slots = 8;
  while (slots < want) slots <<= 1;
  return slots;
}

size_t FrozenImageBytes(size_t entry_count) {
  const size_t entries_offset = AlignUp(kFrozenHeaderEnd);
  const size_t index_offset =
      AlignUp(entries_offset + entry_count * kFrozenEntryBytes);
  return AlignUp(index_offset +
                 FrozenIndexSlots(entry_count) * kFrozenSlotBytes);
}

size_t FreezeInto(const FrozenEntry* entries, size_t entry_count,
                  uint64_t capacity, int64_t min_count, int64_t total_count,
                  void* out, size_t out_bytes) {
  if (capacity == 0 || capacity > kFrozenMaxCapacity) return 0;
  if (entry_count > capacity) return 0;
  if (min_count < 0 || total_count < 0) return 0;
  if (entry_count > 0 && entries == nullptr) return 0;
  // Canonical order with positive counts; duplicates across different
  // counts are caught by the index build below, duplicates within a tie
  // by the strict item ordering here.
  for (size_t i = 0; i < entry_count; ++i) {
    if (entries[i].count <= 0) return 0;
    if (i > 0 && !(entries[i - 1].count > entries[i].count ||
                   (entries[i - 1].count == entries[i].count &&
                    entries[i - 1].item < entries[i].item))) {
      return 0;
    }
  }
  const size_t image_bytes = FrozenImageBytes(entry_count);
  if (out == nullptr || out_bytes < image_bytes) return 0;

  const size_t entries_offset = AlignUp(kFrozenHeaderEnd);
  const size_t index_offset =
      AlignUp(entries_offset + entry_count * kFrozenEntryBytes);
  const size_t index_slots = FrozenIndexSlots(entry_count);

  unsigned char* base = static_cast<unsigned char*>(out);
  // Zero first so every padding byte is deterministic: images of the
  // same sketch are byte-identical (golden-pinned in wire_compat_test).
  std::memset(base, 0, image_bytes);

  std::string envelope;
  WriteEnvelope(envelope, kKindFrozenUnbiased, kVersionCurrent);
  std::memcpy(base, envelope.data(), kEnvelopeBytes);

  unsigned char* h = base + kEnvelopeBytes;
  StoreU64(h + 0 * 8, image_bytes);
  StoreU64(h + 1 * 8, capacity);
  StoreU64(h + 2 * 8, entry_count);
  StoreU64(h + 3 * 8, static_cast<uint64_t>(min_count));
  StoreU64(h + 4 * 8, static_cast<uint64_t>(total_count));
  StoreU64(h + 5 * 8, entries_offset);
  StoreU64(h + 6 * 8, entry_count * kFrozenEntryBytes);
  StoreU64(h + 7 * 8, index_offset);
  StoreU64(h + 8 * 8, index_slots * kFrozenSlotBytes);
  StoreU64(h + 9 * 8, index_slots);

  unsigned char* entry_base = base + entries_offset;
  for (size_t i = 0; i < entry_count; ++i) {
    StoreU64(entry_base + i * kFrozenEntryBytes, entries[i].item);
    StoreU64(entry_base + i * kFrozenEntryBytes + 8,
             static_cast<uint64_t>(entries[i].count));
  }

  unsigned char* index_base = base + index_offset;
  std::memset(index_base, 0xFF, index_slots * kFrozenSlotBytes);
  const size_t mask = index_slots - 1;
  for (size_t i = 0; i < entry_count; ++i) {
    size_t s = static_cast<size_t>(FrozenHash(entries[i].item)) & mask;
    for (;;) {
      uint32_t v;
      std::memcpy(&v, index_base + s * kFrozenSlotBytes, 4);
      if (v == kFrozenEmptySlot) break;
      if (entries[v].item == entries[i].item) return 0;  // duplicate item
      s = (s + 1) & mask;
    }
    const uint32_t idx = static_cast<uint32_t>(i);
    std::memcpy(index_base + s * kFrozenSlotBytes, &idx, 4);
  }
  return image_bytes;
}

std::optional<FrozenView> FrozenView::Vet(std::string_view bytes) {
  if (bytes.size() < kFrozenHeaderEnd) return std::nullopt;
  VarintReader reader(bytes);
  std::optional<Envelope> env = ReadEnvelope(reader);
  if (!env || env->kind != kKindFrozenUnbiased ||
      env->version != kVersionCurrent) {
    return std::nullopt;
  }
  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(bytes.data());
  const unsigned char* h = base + kEnvelopeBytes;
  const uint64_t image_bytes = LoadU64(h + 0 * 8);
  const uint64_t capacity = LoadU64(h + 1 * 8);
  const uint64_t entry_count = LoadU64(h + 2 * 8);
  const uint64_t min_count = LoadU64(h + 3 * 8);
  const uint64_t total_count = LoadU64(h + 4 * 8);
  const uint64_t entries_offset = LoadU64(h + 5 * 8);
  const uint64_t entries_bytes = LoadU64(h + 6 * 8);
  const uint64_t index_offset = LoadU64(h + 7 * 8);
  const uint64_t index_bytes = LoadU64(h + 8 * 8);
  const uint64_t index_slots = LoadU64(h + 9 * 8);

  // Exact size: every truncation or extension of a valid image fails
  // here, before any offset is trusted.
  if (image_bytes != bytes.size()) return std::nullopt;
  if (capacity == 0 || capacity > kFrozenMaxCapacity) return std::nullopt;
  if (entry_count > capacity) return std::nullopt;
  const uint64_t int64_max =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max());
  if (min_count > int64_max || total_count > int64_max) return std::nullopt;

  // Section geometry must be internally consistent: derived sizes match
  // the counts, the slot count is canonical for the entry count, and
  // both sections are 64-byte aligned.
  if (entries_bytes != entry_count * kFrozenEntryBytes) return std::nullopt;
  if (index_slots != FrozenIndexSlots(static_cast<size_t>(entry_count))) {
    return std::nullopt;
  }
  if (index_bytes != index_slots * kFrozenSlotBytes) return std::nullopt;
  if (entries_offset % kFrozenAlign != 0 || index_offset % kFrozenAlign != 0) {
    return std::nullopt;
  }

  // Bounds: each section lives inside [header end, image end). All
  // arithmetic stays in u64 with subtraction-form checks, so a hostile
  // offset cannot wrap.
  if (entries_offset < kFrozenHeaderEnd || entries_offset > image_bytes ||
      entries_bytes > image_bytes - entries_offset) {
    return std::nullopt;
  }
  if (index_offset < kFrozenHeaderEnd || index_offset > image_bytes ||
      index_bytes > image_bytes - index_offset) {
    return std::nullopt;
  }

  // Overlap: the two sections must be disjoint (the index always has
  // bytes; the entry section may be empty, and an empty range overlaps
  // nothing).
  if (entries_bytes > 0 && entries_offset < index_offset + index_bytes &&
      index_offset < entries_offset + entries_bytes) {
    return std::nullopt;
  }

  FrozenView view;
  view.base_ = base;
  view.image_bytes_ = bytes.size();
  view.capacity_ = capacity;
  view.entry_count_ = entry_count;
  view.min_count_ = static_cast<int64_t>(min_count);
  view.total_count_ = static_cast<int64_t>(total_count);
  view.entries_offset_ = static_cast<size_t>(entries_offset);
  view.index_offset_ = static_cast<size_t>(index_offset);
  view.index_slots_ = static_cast<size_t>(index_slots);
  return view;
}

int64_t FrozenView::EstimateCount(uint64_t item) const {
  const size_t mask = index_slots_ - 1;
  size_t s = static_cast<size_t>(FrozenHash(item)) & mask;
  // A well-formed index terminates at an empty slot (load factor
  // <= 0.5); the step cap and the slot-value bound make hostile index
  // content safe (wrong answers, never out-of-bounds reads or spins).
  for (size_t step = 0; step < index_slots_; ++step) {
    const uint32_t v = slot(s);
    if (v == kFrozenEmptySlot) return 0;
    if (v >= entry_count_) return 0;  // corrupt slot: give up
    const FrozenEntry e = entry(v);
    if (e.item == item) return e.count;
    s = (s + 1) & mask;
  }
  return 0;
}

}  // namespace wire
}  // namespace dsketch
