// Byte-level wire primitives shared by every sketch codec: LEB128
// varints, zigzag mapping for signed values, and fixed-width little-
// endian scalars (doubles and legacy v1 fields travel fixed-width).
//
// VarintWriter appends to a caller-owned std::string; VarintReader walks
// a string_view and returns false on any truncation or malformed varint
// instead of reading past the end — decoders built on it can simply
// propagate the failure as nullopt. A varint is at most 10 bytes; the
// reader rejects encodings that overflow 64 bits or carry a continuation
// bit into an 11th byte (overlong-but-in-range encodings such as
// 0x80 0x00 are accepted).

#ifndef DSKETCH_WIRE_VARINT_H_
#define DSKETCH_WIRE_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dsketch {
namespace wire {

/// Maps signed to unsigned so small-magnitude values stay short on the
/// wire: 0 -> 0, -1 -> 1, 1 -> 2, ...
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

/// Inverse of ZigZagEncode.
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Appends wire primitives to a caller-owned byte string.
class VarintWriter {
 public:
  explicit VarintWriter(std::string& out) : out_(out) {}

  /// Appends `v` as an LEB128 varint (1-10 bytes).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<char>(v | 0x80));
      v >>= 7;
    }
    out_.push_back(static_cast<char>(v));
  }

  /// Appends a signed value as zigzag varint.
  void PutVarintSigned(int64_t v) { PutVarint(ZigZagEncode(v)); }

  /// Appends one raw byte.
  void PutByte(uint8_t b) { out_.push_back(static_cast<char>(b)); }

  /// Appends a fixed-width little-endian scalar (doubles, legacy fields).
  template <typename T>
  void PutValue(T value) {
    char buf[sizeof(T)];
    std::memcpy(buf, &value, sizeof(T));
    out_.append(buf, sizeof(T));
  }

  /// Appends a double as its 8 IEEE-754 bytes.
  void PutDouble(double d) { PutValue(d); }

  /// Bytes written so far (to the underlying string).
  size_t size() const { return out_.size(); }

 private:
  std::string& out_;
};

/// Reads wire primitives from a byte view; every method returns false on
/// truncated or malformed input and never reads out of bounds.
class VarintReader {
 public:
  explicit VarintReader(std::string_view bytes) : bytes_(bytes) {}

  /// Reads an LEB128 varint; false on truncation, 64-bit overflow, or a
  /// continuation bit in the 10th byte.
  bool ReadVarint(uint64_t* out) {
    uint64_t result = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (pos_ >= bytes_.size()) return false;
      const uint8_t b = static_cast<uint8_t>(bytes_[pos_++]);
      if (shift == 63 && b > 1) return false;  // would overflow 64 bits
      result |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *out = result;
        return true;
      }
    }
    return false;  // continuation bit past the 10th byte
  }

  /// Reads a varint that must fit a non-negative int64.
  bool ReadVarintInt64(int64_t* out) {
    uint64_t v;
    if (!ReadVarint(&v) || v > static_cast<uint64_t>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }

  /// Reads a zigzag-encoded signed varint.
  bool ReadVarintSigned(int64_t* out) {
    uint64_t v;
    if (!ReadVarint(&v)) return false;
    *out = ZigZagDecode(v);
    return true;
  }

  /// Reads one raw byte.
  bool ReadByte(uint8_t* out) {
    if (pos_ >= bytes_.size()) return false;
    *out = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }

  /// Appends `n` raw bytes to `out` in one copy; false (consuming
  /// nothing) when fewer than `n` remain. Callers must bound `n` by
  /// remaining() or a validated length before any allocation.
  bool ReadBytes(size_t n, std::string* out) {
    if (bytes_.size() - pos_ < n) return false;
    out->append(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// Reads a fixed-width little-endian scalar.
  template <typename T>
  bool ReadValue(T* out) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Reads a double from its 8 IEEE-754 bytes.
  bool ReadDouble(double* out) { return ReadValue(out); }

  /// Skips `n` raw bytes without copying; false (consuming nothing)
  /// when fewer than `n` remain.
  bool Skip(size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    pos_ += n;
    return true;
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return bytes_.size() - pos_; }

  /// True when every byte has been consumed (decoders require this so
  /// trailing garbage is rejected).
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace wire
}  // namespace dsketch

#endif  // DSKETCH_WIRE_VARINT_H_
