#include "wire/codec.h"

#include <string>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dsketch {
namespace wire {
namespace {

constexpr size_t kMaxKinds = 64;

// Fixed-size table indexed by kind byte, seeded with the built-in kinds
// on first access (a function-local static, so lookups like DescribeWire
// see the built-ins in every link configuration — a self-registering
// static in another archive member could be dropped by the linker).
// RegisterCodec may still overwrite or extend entries during static
// initialization; the table is read-only after main starts, so no
// locking is needed.
CodecInfo* RegistryTable() {
  static CodecInfo table[kMaxKinds];
  static const bool seeded = [] {
    const CodecInfo builtins[] = {
        {1, "unbiased_space_saving", kVersionLegacy, kVersionCurrent},
        {2, "deterministic_space_saving", kVersionLegacy, kVersionCurrent},
        {3, "weighted_space_saving", kVersionLegacy, kVersionCurrent},
        {4, "multi_metric_space_saving", kVersionLegacy, kVersionCurrent},
        {5, "misra_gries", kVersionLegacy, kVersionCurrent},
        {6, "count_min", kVersionLegacy, kVersionCurrent},
        // The windowed ring and frozen-image kinds are v2-only: both
        // were born after the varint era, so there is no legacy payload
        // to accept.
        {7, "windowed_sketch", kVersionCurrent, kVersionCurrent},
        {8, "frozen_unbiased", kVersionCurrent, kVersionCurrent},
    };
    for (const CodecInfo& info : builtins) table[info.kind] = info;
    return true;
  }();
  (void)seeded;
  return table;
}

}  // namespace

void WriteEnvelope(std::string& out, uint8_t kind, uint8_t version) {
  VarintWriter w(out);
  w.PutValue(kMagic);
  w.PutByte(kind);
  w.PutByte(version);
  w.PutValue(static_cast<uint16_t>(0));
}

std::optional<Envelope> ReadEnvelope(VarintReader& reader) {
  uint32_t magic;
  uint16_t reserved;
  Envelope env;
  if (!reader.ReadValue(&magic) || magic != kMagic) return std::nullopt;
  if (!reader.ReadByte(&env.kind)) return std::nullopt;
  if (!reader.ReadByte(&env.version)) return std::nullopt;
  if (!reader.ReadValue(&reserved)) return std::nullopt;
  return env;
}

void RegisterCodec(const CodecInfo& info) {
  DSKETCH_CHECK(info.kind > 0 && info.kind < kMaxKinds);
  DSKETCH_CHECK(info.min_version <= info.max_version);
  RegistryTable()[info.kind] = info;
}

const CodecInfo* FindCodec(uint8_t kind) {
  if (kind >= kMaxKinds) return nullptr;
  const CodecInfo* info = &RegistryTable()[kind];
  return info->kind == kind ? info : nullptr;
}

bool VersionSupported(uint8_t kind, uint8_t version) {
  const CodecInfo* info = FindCodec(kind);
  return info != nullptr && version >= info->min_version &&
         version <= info->max_version;
}

namespace {

void RecordWireBytes(const char* direction, uint8_t kind, uint8_t version,
                     size_t bytes) {
  const CodecInfo* info = FindCodec(kind);
  const char* kind_name = info != nullptr ? info->name : "unknown";
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("dsketch_wire_") + direction +
                  "_bytes_total{kind=\"" + kind_name + "\",version=\"" +
                  std::to_string(version) + "\"}")
      .Inc(bytes);
}

}  // namespace

void RecordWireEncoded(uint8_t kind, uint8_t version, size_t bytes) {
  RecordWireBytes("encoded", kind, version, bytes);
}

void RecordWireDecoded(uint8_t kind, uint8_t version, size_t bytes) {
  RecordWireBytes("decoded", kind, version, bytes);
}

std::optional<WireInfo> DescribeWire(std::string_view bytes) {
  VarintReader reader(bytes);
  std::optional<Envelope> env = ReadEnvelope(reader);
  if (!env) return std::nullopt;
  const CodecInfo* info = FindCodec(env->kind);
  if (info == nullptr || env->version < info->min_version ||
      env->version > info->max_version) {
    return std::nullopt;
  }
  WireInfo out;
  out.kind = env->kind;
  out.version = env->version;
  out.kind_name = info->name;
  out.payload_bytes = reader.remaining();
  return out;
}

}  // namespace wire
}  // namespace dsketch
