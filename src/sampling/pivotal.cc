#include "sampling/pivotal.h"

#include "sampling/pps.h"
#include "util/logging.h"

namespace dsketch {

std::vector<uint8_t> PivotalSample(const std::vector<double>& probs,
                                   Rng& rng) {
  const size_t n = probs.size();
  std::vector<uint8_t> take(n, 0);
  constexpr double kEps = 1e-12;

  // Sequential pivotal method: keep one "active" unit with fractional
  // probability and duel it against the next unit.
  size_t active = n;  // index of current fractional unit, n = none
  double pa = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double pb = probs[i];
    DSKETCH_CHECK(pb >= -kEps && pb <= 1.0 + kEps);
    if (pb <= kEps) continue;
    if (pb >= 1.0 - kEps) {
      take[i] = 1;
      continue;
    }
    if (active == n) {
      active = i;
      pa = pb;
      continue;
    }
    double sum = pa + pb;
    if (sum <= 1.0) {
      // One unit dies; the survivor carries probability pa + pb.
      if (rng.NextDouble() * sum < pa) {
        // a survives
        pa = sum;
      } else {
        active = i;
        pa = sum;
      }
    } else {
      // One unit is taken; the other continues with pa + pb - 1.
      double rem = sum - 1.0;
      if (rng.NextDouble() * (2.0 - sum) < (1.0 - pb)) {
        take[active] = 1;
        active = i;
        pa = rem;
      } else {
        take[i] = 1;
        pa = rem;
      }
      if (pa >= 1.0 - kEps) {
        take[active] = 1;
        active = n;
        pa = 0.0;
      } else if (pa <= kEps) {
        active = n;
        pa = 0.0;
      }
    }
  }
  if (active != n) {
    // Leftover fractional mass: Bernoulli draw preserves the marginal.
    if (rng.NextBernoulli(pa)) take[active] = 1;
  }
  return take;
}

std::vector<uint8_t> PivotalPpsSample(const std::vector<double>& weights,
                                      size_t k, Rng& rng,
                                      std::vector<double>* probs_out) {
  std::vector<double> probs = ThresholdedPpsProbabilities(weights, k);
  std::vector<uint8_t> take = PivotalSample(probs, rng);
  if (probs_out != nullptr) *probs_out = std::move(probs);
  return take;
}

}  // namespace dsketch
