// Probability proportional to size (PPS) machinery (paper §5.1).
//
// For a fixed sample size k over weights w, the optimal inclusion
// probabilities are the thresholded pi_i = min(1, alpha * w_i) with alpha
// chosen so that sum_i pi_i = k (heavy items are taken with certainty;
// the rest proportional to size). These targets feed the Deville-Tillé
// splitting sampler (pivotal.h) and serve as the theoretical reference
// curve in the inclusion-probability experiments (paper Fig. 2).

#ifndef DSKETCH_SAMPLING_PPS_H_
#define DSKETCH_SAMPLING_PPS_H_

#include <cstddef>
#include <vector>

namespace dsketch {

/// Thresholded PPS inclusion probabilities pi_i = min(1, alpha * w_i) with
/// sum pi = min(k, #positive weights). Zero-weight items get pi = 0.
/// Weights must be non-negative.
std::vector<double> ThresholdedPpsProbabilities(
    const std::vector<double>& weights, size_t k);

/// The alpha achieving sum_i min(1, alpha w_i) = min(k, #positive).
/// Returns 0 when every positive item must be taken (all pi capped at 1).
double ThresholdedPpsAlpha(const std::vector<double>& weights, size_t k);

/// Variance upper bound of the PPS subset-sum estimator for one item
/// (paper eq. 1): w_i^2 * (1 - pi_i) / pi_i, or 0 when pi_i = 0 or 1.
double PpsItemVariance(double weight, double inclusion_probability);

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_PPS_H_
