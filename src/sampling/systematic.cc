#include "sampling/systematic.h"

#include <cmath>

#include "sampling/pps.h"
#include "util/logging.h"

namespace dsketch {

std::vector<uint8_t> SystematicSample(const std::vector<double>& probs,
                                      Rng& rng) {
  std::vector<uint8_t> take(probs.size(), 0);
  double u = rng.NextDouble();  // grid offset in [0,1)
  double cum = 0.0;
  // Unit i occupies (cum, cum + p_i]; it is selected once for every grid
  // point u + j inside its segment. Probabilities <= 1 make duplicate
  // selections impossible.
  for (size_t i = 0; i < probs.size(); ++i) {
    double p = probs[i];
    DSKETCH_CHECK(p >= 0.0 && p <= 1.0 + 1e-12);
    double lo = cum;
    cum += p;
    // Smallest integer j with u + j > lo  <=>  j = floor(lo - u) + 1 when
    // lo >= u else j = 0.
    double first_grid = u + std::ceil(lo - u);
    if (first_grid <= lo) first_grid += 1.0;
    if (first_grid <= cum) take[i] = 1;
  }
  return take;
}

std::vector<uint8_t> SystematicPpsSample(const std::vector<double>& weights,
                                         size_t k, Rng& rng,
                                         std::vector<double>* probs_out) {
  std::vector<double> probs = ThresholdedPpsProbabilities(weights, k);
  std::vector<uint8_t> take = SystematicSample(probs, rng);
  if (probs_out != nullptr) *probs_out = std::move(probs);
  return take;
}

}  // namespace dsketch
