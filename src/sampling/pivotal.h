// Fixed-size unequal-probability sampling by the splitting procedure of
// Deville & Tillé (1998), in its sequential pivotal form (paper §5.1).
//
// Given target inclusion probabilities pi with integral sum k, two active
// units are repeatedly "split": either one unit's probability is pushed to
// 0 (it loses) or to 1 (it is taken), such that marginals are preserved
// exactly. The result is a fixed-size-k sample with inclusion
// probabilities exactly pi and negatively associated indicators. Used as
// the gold-standard PPS comparator in the variance experiments (Fig. 9).

#ifndef DSKETCH_SAMPLING_PIVOTAL_H_
#define DSKETCH_SAMPLING_PIVOTAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dsketch {

/// Draws a sample with marginal inclusion probabilities `probs` (each in
/// [0,1]). Returns an indicator per unit. When sum(probs) is an integer k
/// the sample size is exactly k (up to floating point rounding).
std::vector<uint8_t> PivotalSample(const std::vector<double>& probs,
                                   Rng& rng);

/// Convenience: PPS sample of expected size k over `weights` using
/// thresholded PPS probabilities; returns indicators and writes the
/// probabilities to `probs_out` when non-null.
std::vector<uint8_t> PivotalPpsSample(const std::vector<double>& weights,
                                      size_t k, Rng& rng,
                                      std::vector<double>* probs_out = nullptr);

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_PIVOTAL_H_
