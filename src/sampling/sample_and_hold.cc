#include "sampling/sample_and_hold.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

AdaptiveSampleAndHold::AdaptiveSampleAndHold(size_t capacity, uint64_t seed,
                                             double rate_decay)
    : capacity_(capacity), decay_(rate_decay), rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  DSKETCH_CHECK(rate_decay > 0.0 && rate_decay < 1.0);
  counts_.reserve(capacity + 1);
}

void AdaptiveSampleAndHold::Update(uint64_t item) {
  ++total_;
  auto it = counts_.find(item);
  if (it != counts_.end()) {
    ++it->second;
    return;
  }
  if (!rng_.NextBernoulli(p_)) return;
  counts_.emplace(item, 1);
  while (counts_.size() > capacity_) ReduceRate();
}

void AdaptiveSampleAndHold::ReduceRate() {
  // Resample every counter from rate p to rate p' = decay * p: keep with
  // probability p'/p, otherwise shave 1 + Geometric0(p') — as if the item
  // had needed additional tries to enter at the lower rate. Unbiased by
  // the memorylessness argument in paper §5.4.
  const double p_new = p_ * decay_;
  const double keep_prob = p_new / p_;
  for (auto it = counts_.begin(); it != counts_.end();) {
    if (rng_.NextBernoulli(keep_prob)) {
      ++it;
      continue;
    }
    int64_t shave = 1 + static_cast<int64_t>(rng_.NextGeometric0(p_new));
    it->second -= shave;
    if (it->second <= 0) {
      it = counts_.erase(it);
    } else {
      ++it;
    }
  }
  p_ = p_new;
}

double AdaptiveSampleAndHold::EstimateCount(uint64_t item) const {
  auto it = counts_.find(item);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) + (1.0 - p_) / p_;
}

double AdaptiveSampleAndHold::EstimateSubset(
    const std::function<bool(uint64_t)>& pred) const {
  double sum = 0.0;
  for (const auto& [item, count] : counts_) {
    if (pred(item)) sum += static_cast<double>(count) + (1.0 - p_) / p_;
  }
  return sum;
}

std::vector<WeightedEntry> AdaptiveSampleAndHold::Entries() const {
  std::vector<WeightedEntry> out;
  out.reserve(counts_.size());
  for (const auto& [item, count] : counts_) {
    out.push_back({item, static_cast<double>(count) + (1.0 - p_) / p_});
  }
  std::sort(out.begin(), out.end(),
            [](const WeightedEntry& a, const WeightedEntry& b) {
              return a.weight > b.weight;
            });
  return out;
}

StepSampleAndHold::StepSampleAndHold(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  items_.reserve(capacity + 1);
}

void StepSampleAndHold::Update(uint64_t item) {
  ++total_;
  auto it = items_.find(item);
  if (it != items_.end()) {
    ++it->second.count;
    return;
  }
  if (!rng_.NextBernoulli(p_)) return;
  items_.emplace(item, Held{1, p_});
  // New step: each entry at or beyond capacity halves the rate for future
  // entries, keeping growth past `capacity` logarithmic in the stream.
  if (items_.size() >= capacity_) p_ *= 0.5;
}

double StepSampleAndHold::EstimateCount(uint64_t item) const {
  auto it = items_.find(item);
  if (it == items_.end()) return 0.0;
  return static_cast<double>(it->second.count) - 1.0 + 1.0 / it->second.entry_rate;
}

double StepSampleAndHold::EstimateSubset(
    const std::function<bool(uint64_t)>& pred) const {
  double sum = 0.0;
  for (const auto& [item, held] : items_) {
    if (pred(item)) {
      sum += static_cast<double>(held.count) - 1.0 + 1.0 / held.entry_rate;
    }
  }
  return sum;
}

std::vector<WeightedEntry> StepSampleAndHold::Entries() const {
  std::vector<WeightedEntry> out;
  out.reserve(items_.size());
  for (const auto& [item, held] : items_) {
    out.push_back({item, static_cast<double>(held.count) - 1.0 +
                             1.0 / held.entry_rate});
  }
  std::sort(out.begin(), out.end(),
            [](const WeightedEntry& a, const WeightedEntry& b) {
              return a.weight > b.weight;
            });
  return out;
}

}  // namespace dsketch
