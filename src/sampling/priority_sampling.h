// Priority sampling (Duffield, Lund & Thorup 2007) — the paper's strongest
// baseline, which requires *pre-aggregated* (item, weight) input.
//
// Each item gets priority q_i = w_i / u_i with u_i ~ Uniform(0,1]; the k
// items with the largest priorities form the sample, and with threshold
// tau = (k+1)-th largest priority the Horvitz-Thompson style estimate for
// a sampled item is max(w_i, tau). Subset sums are unbiased, and the
// scheme is within a factor 1 + O(1/k) of the optimal k-sample variance
// (Szegedy 2006).

#ifndef DSKETCH_SAMPLING_PRIORITY_SAMPLING_H_
#define DSKETCH_SAMPLING_PRIORITY_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/sketch_entry.h"
#include "util/random.h"

namespace dsketch {

/// Streaming priority sampler of fixed sample size k.
class PrioritySampler {
 public:
  /// Sample of `k` items; `seed` drives the priority draws.
  PrioritySampler(size_t k, uint64_t seed = 1);

  /// Offers one aggregated item with positive `weight`. Each distinct item
  /// must be offered exactly once.
  void Add(uint64_t item, double weight);

  /// Number of items offered so far.
  size_t items_seen() const { return seen_; }

  /// Threshold tau: the (k+1)-th largest priority (0 when fewer than k+1
  /// items were offered, in which case the sample is exact).
  double Threshold() const;

  /// The sample with Horvitz-Thompson adjusted weights max(w_i, tau).
  std::vector<WeightedEntry> Sample() const;

  /// Unbiased subset-sum estimate over items satisfying `pred`.
  double EstimateSubset(const std::function<bool(uint64_t)>& pred) const;

  /// Estimate of the total weight (not exactly preserved — the paper notes
  /// this as a drawback versus Unbiased Space Saving).
  double EstimateTotal() const;

 private:
  struct Prioritized {
    double priority;
    uint64_t item;
    double weight;
    bool operator>(const Prioritized& o) const {
      return priority > o.priority;
    }
  };

  size_t k_;
  size_t seen_ = 0;
  // Min-heap over priorities keeping the k+1 largest.
  std::vector<Prioritized> heap_;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_PRIORITY_SAMPLING_H_
