#include "sampling/priority_sampling.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

PrioritySampler::PrioritySampler(size_t k, uint64_t seed)
    : k_(k), rng_(seed) {
  DSKETCH_CHECK(k > 0);
  heap_.reserve(k + 1);
}

void PrioritySampler::Add(uint64_t item, double weight) {
  DSKETCH_CHECK(weight > 0.0);
  ++seen_;
  double priority = weight / rng_.NextDoublePositive();
  if (heap_.size() < k_ + 1) {
    heap_.push_back({priority, item, weight});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    return;
  }
  if (priority > heap_.front().priority) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    heap_.back() = {priority, item, weight};
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
}

double PrioritySampler::Threshold() const {
  if (heap_.size() <= k_) return 0.0;
  return heap_.front().priority;  // (k+1)-th largest = heap minimum
}

std::vector<WeightedEntry> PrioritySampler::Sample() const {
  double tau = Threshold();
  std::vector<WeightedEntry> out;
  out.reserve(std::min(heap_.size(), k_));
  const bool exact = heap_.size() <= k_;
  for (size_t i = 0; i < heap_.size(); ++i) {
    // When over capacity the heap root is the threshold item — excluded.
    if (!exact && i == 0) continue;
    const Prioritized& p = heap_[i];
    out.push_back({p.item, exact ? p.weight : std::max(p.weight, tau)});
  }
  return out;
}

double PrioritySampler::EstimateSubset(
    const std::function<bool(uint64_t)>& pred) const {
  double sum = 0.0;
  for (const WeightedEntry& e : Sample()) {
    if (pred(e.item)) sum += e.weight;
  }
  return sum;
}

double PrioritySampler::EstimateTotal() const {
  double sum = 0.0;
  for (const WeightedEntry& e : Sample()) sum += e.weight;
  return sum;
}

}  // namespace dsketch
