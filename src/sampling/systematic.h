// Systematic PPS sampling (paper §5.1 context): the third classical
// fixed-size unequal-probability design next to the splitting/pivotal
// method and priority sampling. A single uniform start u ~ U(0,1) is
// stepped through the cumulative inclusion probabilities; unit i is taken
// when a grid point u + j lands inside its probability segment. Exactly k
// units are drawn when the probabilities sum to k, marginals are exact,
// and only one random variate is consumed — the cheapest PPS design, at
// the cost of strong (ordering-dependent) joint dependencies, which is
// why the pivotal method is the default comparator in the experiments.

#ifndef DSKETCH_SAMPLING_SYSTEMATIC_H_
#define DSKETCH_SAMPLING_SYSTEMATIC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dsketch {

/// Draws a systematic sample with marginal inclusion probabilities
/// `probs` (each in [0,1]); returns one indicator per unit. When
/// sum(probs) is an integer k, exactly k units are selected.
std::vector<uint8_t> SystematicSample(const std::vector<double>& probs,
                                      Rng& rng);

/// Convenience: systematic PPS sample of expected size k over `weights`
/// using thresholded PPS probabilities; optionally returns the
/// probabilities for Horvitz-Thompson estimation.
std::vector<uint8_t> SystematicPpsSample(
    const std::vector<double>& weights, size_t k, Rng& rng,
    std::vector<double>* probs_out = nullptr);

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_SYSTEMATIC_H_
