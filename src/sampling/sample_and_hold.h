// Sample-and-hold sketches (Gibbons & Matias 1998; Estan & Varghese 2003;
// Cohen et al. 2007) — the prior state of the art for the disaggregated
// subset sum problem, analyzed in paper §5.4.
//
// Adaptive sample-and-hold: rows of untracked items enter the sketch with
// the current sampling rate p; tracked items count exactly. When the
// sketch overflows, the rate is reduced to p' and every counter is
// resampled: kept intact with probability p'/p, otherwise reduced by
// 1 + Geometric0(p') (dropped at zero or below). The resample preserves
// expected estimates (Theorem 2), with the estimate for a tracked item
// being  count + (1 - p)/p.  The paper shows this reduction injects far
// more noise per step than Unbiased Space Saving — the Geometric variance
// (1-p')/p'^2 hits every bin, which the benches reproduce.
//
// Step sample-and-hold: the rate only applies to *entering* items; tracked
// items are never resampled, so each item's count after entry is exact and
// the unbiased estimate is  count - 1 + 1/p_entry. Memory is bounded only
// softly (rate halves whenever the sketch hits capacity).

#ifndef DSKETCH_SAMPLING_SAMPLE_AND_HOLD_H_
#define DSKETCH_SAMPLING_SAMPLE_AND_HOLD_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/sketch_entry.h"
#include "util/random.h"

namespace dsketch {

/// Adaptive sample-and-hold (Cohen et al. 2007).
class AdaptiveSampleAndHold {
 public:
  /// At most `capacity` tracked items; on overflow the rate is multiplied
  /// by `rate_decay` in (0,1) until at least one item drops.
  AdaptiveSampleAndHold(size_t capacity, uint64_t seed = 1,
                        double rate_decay = 0.9);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Unbiased estimate: count + (1-p)/p for tracked items, else 0.
  double EstimateCount(uint64_t item) const;

  /// Unbiased subset-sum estimate over items satisfying `pred`.
  double EstimateSubset(const std::function<bool(uint64_t)>& pred) const;

  /// Tracked items with adjusted weights, descending.
  std::vector<WeightedEntry> Entries() const;

  /// Current sampling rate p.
  double sampling_rate() const { return p_; }

  /// Rows processed.
  int64_t TotalCount() const { return total_; }

  /// Number of tracked items.
  size_t size() const { return counts_.size(); }

 private:
  void ReduceRate();

  size_t capacity_;
  double decay_;
  std::unordered_map<uint64_t, int64_t> counts_;
  double p_ = 1.0;
  int64_t total_ = 0;
  Rng rng_;
};

/// Step sample-and-hold: no resampling after entry (soft memory bound).
class StepSampleAndHold {
 public:
  /// The entry rate halves for every item admitted at or beyond
  /// `capacity`, so the tracked set exceeds capacity only logarithmically.
  StepSampleAndHold(size_t capacity, uint64_t seed = 1);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Unbiased estimate: count - 1 + 1/p_entry for tracked items, else 0.
  double EstimateCount(uint64_t item) const;

  /// Unbiased subset-sum estimate over items satisfying `pred`.
  double EstimateSubset(const std::function<bool(uint64_t)>& pred) const;

  /// Tracked items with adjusted weights, descending.
  std::vector<WeightedEntry> Entries() const;

  /// Current sampling rate for new entries.
  double sampling_rate() const { return p_; }

  /// Rows processed.
  int64_t TotalCount() const { return total_; }

  /// Number of tracked items (can exceed capacity, slowly).
  size_t size() const { return items_.size(); }

 private:
  struct Held {
    int64_t count;        // rows counted since entry (including the first)
    double entry_rate;    // sampling rate when the item entered
  };

  size_t capacity_;
  std::unordered_map<uint64_t, Held> items_;
  double p_ = 1.0;
  int64_t total_ = 0;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_SAMPLE_AND_HOLD_H_
