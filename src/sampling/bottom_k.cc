#include "sampling/bottom_k.h"

#include "hashing/hash.h"
#include "util/logging.h"

namespace dsketch {

BottomKSampler::BottomKSampler(size_t k, uint64_t seed)
    : k_(k), seed_(seed), index_(k + 1) {
  DSKETCH_CHECK(k > 0);
  heap_.reserve(k + 1);
}

void BottomKSampler::SetSlot(size_t i, Tracked t) {
  heap_[i] = t;
  index_.InsertOrAssign(t.item, static_cast<uint32_t>(i));
}

void BottomKSampler::SiftUp(size_t i) {
  Tracked t = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (heap_[parent].rank >= t.rank) break;
    SetSlot(i, heap_[parent]);
    i = parent;
  }
  SetSlot(i, t);
}

void BottomKSampler::SiftDown(size_t i) {
  Tracked t = heap_[i];
  const size_t n = heap_.size();
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].rank > heap_[child].rank) ++child;
    if (heap_[child].rank <= t.rank) break;
    SetSlot(i, heap_[child]);
    i = child;
  }
  SetSlot(i, t);
}

void BottomKSampler::Update(uint64_t item) {
  ++total_;
  if (uint32_t* pos = index_.Find(item)) {
    ++heap_[*pos].count;
    return;
  }
  double rank = HashToUnit(HashU64(item, seed_));
  if (heap_.size() < k_ + 1) {
    heap_.push_back({rank, item, 1});
    SetSlot(heap_.size() - 1, heap_.back());
    SiftUp(heap_.size() - 1);
    if (heap_.size() == k_ + 1) tau_ = heap_.front().rank;
    return;
  }
  if (rank < heap_.front().rank) {
    index_.Erase(heap_.front().item);
    SetSlot(0, {rank, item, 1});
    SiftDown(0);
    tau_ = heap_.front().rank;
  }
  // Otherwise: rank is beyond the (k+1)-th smallest — the row is dropped,
  // exactly the information loss uniform item sampling incurs.
}

std::vector<WeightedEntry> BottomKSampler::Sample() const {
  std::vector<WeightedEntry> out;
  const bool exact = heap_.size() <= k_;
  out.reserve(exact ? heap_.size() : k_);
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (!exact && i == 0) continue;  // root = threshold item, excluded
    const Tracked& t = heap_[i];
    double w = static_cast<double>(t.count);
    out.push_back({t.item, exact ? w : w / tau_});
  }
  return out;
}

double BottomKSampler::EstimateSubset(
    const std::function<bool(uint64_t)>& pred) const {
  double sum = 0.0;
  for (const WeightedEntry& e : Sample()) {
    if (pred(e.item)) sum += e.weight;
  }
  return sum;
}

}  // namespace dsketch
