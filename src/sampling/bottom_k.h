// Bottom-k sketch (Cohen & Kaplan 2007): uniform sampling of *items* via
// hash ranks, the paper's uniform baseline (Figs. 4). Because an item's
// rank is a fixed hash of its identity, the sketch can ingest the raw
// disaggregated stream: an item is tracked from its first row, counts of
// tracked items are exact, and once an item's rank exceeds the k-th
// smallest rank it can never re-enter.
//
// Subset sums use the rank-conditioning estimator: with tau = (k+1)-th
// smallest rank over distinct items seen, each sampled item has
// conditional inclusion probability tau, so  n̂_S = sum_{i in sample∩S}
// n_i / tau  is unbiased.

#ifndef DSKETCH_SAMPLING_BOTTOM_K_H_
#define DSKETCH_SAMPLING_BOTTOM_K_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/sketch_entry.h"
#include "util/flat_map.h"

namespace dsketch {

/// Streaming bottom-k uniform item sampler over a disaggregated stream.
class BottomKSampler {
 public:
  /// Keeps the `k` items with smallest hash ranks; `seed` salts the hash.
  BottomKSampler(size_t k, uint64_t seed = 1);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Conditional threshold tau: the (k+1)-th smallest distinct rank seen
  /// (1.0 while at most k distinct items have been seen).
  double Threshold() const { return tau_; }

  /// Sampled items with their exact counts and Horvitz-Thompson adjusted
  /// weights count/tau.
  std::vector<WeightedEntry> Sample() const;

  /// Unbiased subset-sum estimate over items satisfying `pred`.
  double EstimateSubset(const std::function<bool(uint64_t)>& pred) const;

  /// Number of tracked items (<= k).
  size_t size() const { return heap_.size() > k_ ? k_ : heap_.size(); }

  /// Rows processed.
  int64_t TotalCount() const { return total_; }

 private:
  struct Tracked {
    double rank;
    uint64_t item;
    int64_t count;
  };

  // Max-heap by rank over the k+1 smallest ranks (root = largest kept).
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void SetSlot(size_t i, Tracked t);

  size_t k_;
  uint64_t seed_;
  std::vector<Tracked> heap_;
  FlatMap<uint32_t> index_;  // item -> heap position
  double tau_ = 1.0;
  int64_t total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_BOTTOM_K_H_
