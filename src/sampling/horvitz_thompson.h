// Horvitz-Thompson estimation helpers (paper §5.1): unbiased totals from
// unequal-probability samples via  Ŝ = sum_i x_i Z_i / pi_i.

#ifndef DSKETCH_SAMPLING_HORVITZ_THOMPSON_H_
#define DSKETCH_SAMPLING_HORVITZ_THOMPSON_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dsketch {

/// HT total over parallel arrays: indicator take[i], value weights[i],
/// inclusion probability probs[i] (> 0 whenever take[i] is set).
inline double HorvitzThompsonTotal(const std::vector<uint8_t>& take,
                                   const std::vector<double>& weights,
                                   const std::vector<double>& probs) {
  DSKETCH_CHECK(take.size() == weights.size() && take.size() == probs.size());
  double sum = 0.0;
  for (size_t i = 0; i < take.size(); ++i) {
    if (take[i]) {
      DSKETCH_DCHECK(probs[i] > 0.0);
      sum += weights[i] / probs[i];
    }
  }
  return sum;
}

/// HT-adjusted per-item values: weights[i] / probs[i] for sampled items,
/// 0 otherwise (the "updated item values" the paper describes).
inline std::vector<double> HorvitzThompsonAdjust(
    const std::vector<uint8_t>& take, const std::vector<double>& weights,
    const std::vector<double>& probs) {
  DSKETCH_CHECK(take.size() == weights.size() && take.size() == probs.size());
  std::vector<double> out(take.size(), 0.0);
  for (size_t i = 0; i < take.size(); ++i) {
    if (take[i]) out[i] = weights[i] / probs[i];
  }
  return out;
}

}  // namespace dsketch

#endif  // DSKETCH_SAMPLING_HORVITZ_THOMPSON_H_
