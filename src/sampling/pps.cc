#include "sampling/pps.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

double ThresholdedPpsAlpha(const std::vector<double>& weights, size_t k) {
  size_t positive = 0;
  for (double w : weights) {
    DSKETCH_CHECK(w >= 0.0);
    if (w > 0.0) ++positive;
  }
  if (positive == 0) return 0.0;
  if (positive <= k) return 0.0;  // everything capped at 1

  // Sort positive weights descending; with L items capped at probability 1,
  // alpha(L) = (k - L) / tail_sum(L). The correct L is the smallest one for
  // which alpha(L) * w_(L+1) <= 1 (w_(L+1) = largest uncapped weight).
  std::vector<double> sorted;
  sorted.reserve(positive);
  for (double w : weights) {
    if (w > 0.0) sorted.push_back(w);
  }
  std::sort(sorted.begin(), sorted.end(), std::greater<>());

  // Suffix sums: tail[L] = sum of sorted[L..end).
  std::vector<double> tail(sorted.size() + 1, 0.0);
  for (size_t i = sorted.size(); i > 0; --i) {
    tail[i - 1] = tail[i] + sorted[i - 1];
  }

  for (size_t cap = 0; cap < k && cap < sorted.size(); ++cap) {
    double alpha = (static_cast<double>(k) - static_cast<double>(cap)) /
                   tail[cap];
    if (alpha * sorted[cap] <= 1.0) return alpha;
  }
  // k items capped exactly: alpha arbitrary below 1/sorted[k-1]; signal
  // with the boundary value.
  return 1.0 / sorted[k - 1];
}

std::vector<double> ThresholdedPpsProbabilities(
    const std::vector<double>& weights, size_t k) {
  size_t positive = 0;
  for (double w : weights) {
    DSKETCH_CHECK(w >= 0.0);
    if (w > 0.0) ++positive;
  }
  std::vector<double> pi(weights.size(), 0.0);
  if (positive == 0) return pi;
  if (positive <= k) {
    for (size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] > 0.0) pi[i] = 1.0;
    }
    return pi;
  }
  double alpha = ThresholdedPpsAlpha(weights, k);
  for (size_t i = 0; i < weights.size(); ++i) {
    pi[i] = std::min(1.0, alpha * weights[i]);
  }
  return pi;
}

double PpsItemVariance(double weight, double inclusion_probability) {
  if (inclusion_probability <= 0.0 || inclusion_probability >= 1.0) return 0.0;
  return weight * weight * (1.0 - inclusion_probability) /
         inclusion_probability;
}

}  // namespace dsketch
