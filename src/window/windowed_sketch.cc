#include "window/windowed_sketch.h"

#include <algorithm>
#include <cmath>

namespace dsketch {

namespace {

// Decayed accumulator of `shard` re-expressed as of `current` (the
// merged view's open epoch): the stored mass ages by the epochs the
// shard lags behind, and the shard's own open epoch — closed from the
// merged view's perspective when it lags — folds in at its true age.
// `half_life_epochs` is the merged view's (> 0 when this is called): a
// shard restored from a non-decayed blob carries half_life 0, and its
// own value would make the factor exp2(-lag/0) = 0, which Scale
// CHECK-rejects. A lag whose factor underflows double (trivial with
// timestamp-valued epochs) drains the shard's mass instead.
WeightedSpaceSaving AlignDecayed(const WindowedSpaceSaving& shard,
                                 uint64_t current, double half_life_epochs,
                                 uint64_t seed) {
  const WindowedSketchOptions& opt = shard.options();
  WeightedSpaceSaving acc = shard.DecayedClosedView();
  const uint64_t lag = current - shard.CurrentEpoch();
  if (lag == 0) return acc;
  const double age_factor =
      std::exp2(-static_cast<double>(lag) / half_life_epochs);
  if (age_factor <= 0.0) {
    return WeightedSpaceSaving(opt.merged_capacity, seed);
  }
  acc.Scale(age_factor);
  WeightedSpaceSaving open(opt.merged_capacity, seed);
  for (const SketchEntry& e : shard.slots().back().sketch.Entries()) {
    if (e.count > 0) {
      open.Update(e.item, static_cast<double>(e.count) * age_factor);
    }
  }
  if (open.size() == 0) return acc;
  return Merge(acc, open, opt.merged_capacity, seed);
}

}  // namespace

WindowedSpaceSaving MergeShards(
    const std::vector<const WindowedSpaceSaving*>& shards,
    size_t epoch_capacity, uint64_t seed) {
  DSKETCH_CHECK(!shards.empty());
  WindowedSketchOptions opt = shards.front()->options();
  opt.epoch_capacity = epoch_capacity;
  opt.seed = seed;

  uint64_t current = 0;
  uint64_t rows_in_epoch = 0;
  uint64_t total_rows = 0;
  for (const WindowedSpaceSaving* s : shards) {
    DSKETCH_CHECK(s != nullptr);
    current = std::max(current, s->CurrentEpoch());
    total_rows += s->TotalRows();
  }
  // Open-epoch row count: only shards whose open epoch IS the merged
  // open epoch contribute — a lagging shard's open rows belong to an
  // older (closed) slot of the merged ring.
  for (const WindowedSpaceSaving* s : shards) {
    if (s->CurrentEpoch() == current) rows_in_epoch += s->RowsInCurrentEpoch();
  }
  const uint64_t lo = current + 1 >= opt.window_epochs
                          ? current + 1 - opt.window_epochs
                          : 0;

  // One merged slot per epoch in the window, aligned by absolute epoch
  // id; epochs no shard saw stay as empty sketches so last-k counting
  // matches a single sketch over the whole stream.
  std::deque<WindowedSpaceSaving::EpochSlot> slots;
  for (uint64_t e = lo; e <= current; ++e) {
    std::vector<const UnbiasedSpaceSaving*> parts;
    for (const WindowedSpaceSaving* s : shards) {
      for (const auto& slot : s->slots()) {
        if (slot.epoch == e && slot.sketch.size() > 0) {
          parts.push_back(&slot.sketch);
        }
      }
    }
    if (parts.empty()) {
      slots.emplace_back(e, UnbiasedSpaceSaving(epoch_capacity, seed + e));
    } else {
      slots.emplace_back(e, MergeShards(parts, epoch_capacity, seed + e));
    }
  }

  WeightedSpaceSaving decayed(opt.merged_capacity, seed);
  if (opt.half_life_epochs > 0.0) {
    std::vector<WeightedSpaceSaving> aligned;
    aligned.reserve(shards.size());
    for (const WindowedSpaceSaving* s : shards) {
      aligned.push_back(
          AlignDecayed(*s, current, opt.half_life_epochs, seed + current));
    }
    decayed = MergeShards(aligned, opt.merged_capacity, seed + current);
  }

  WindowedSpaceSaving out(opt);
  out.LoadState(std::move(slots), std::move(decayed),
                std::min(rows_in_epoch, total_rows), total_rows);
  return out;
}

WindowedSpaceSaving MergeShards(const std::vector<WindowedSpaceSaving>& shards,
                                size_t epoch_capacity, uint64_t seed) {
  std::vector<const WindowedSpaceSaving*> ptrs;
  ptrs.reserve(shards.size());
  for (const WindowedSpaceSaving& s : shards) ptrs.push_back(&s);
  return MergeShards(ptrs, epoch_capacity, seed);
}

}  // namespace dsketch
