// Sharded hosting of the windowed sketch: the concurrent front-end of
// shard/sharded_sketch.h carrying epoch-stamped rows into per-thread
// epoch rings.
//
// The single producer stamps each row with its epoch (EpochRow) and the
// partition routes on the item label, so every distinct item's whole
// history lands in one shard and each per-epoch merge stays a
// disjoint-stream merge (unbiased by Theorem 2). Because the SPSC
// queues preserve order, per-shard epoch stamps are non-decreasing and
// each shard's ring advances exactly as a single-threaded windowed
// sketch over its partition would. Snapshot() runs the epoch-aligned
// MergeShards (windowed_sketch.h): slots merge by absolute epoch id and
// lagging shards' decayed accumulators are re-aged to the merged open
// epoch, so the merged ring is epoch-consistent — window and decayed
// queries answer as one windowed sketch over the whole stream.
//
// MakeShardedWindowed builds the fleet: ShardedSketch's default factory
// assumes an S(capacity, seed) constructor, so the windowed
// instantiation supplies one that seeds each shard's ring at
// shard.seed + i (per-epoch sketches then derive their own seeds).

#ifndef DSKETCH_WINDOW_SHARDED_WINDOWED_H_
#define DSKETCH_WINDOW_SHARDED_WINDOWED_H_

#include <memory>

#include "shard/sharded_sketch.h"
#include "window/window_wire.h"
#include "window/windowed_sketch.h"

namespace dsketch {

/// The concurrent front-end for epoch-stamped rows.
using ShardedWindowedSketch = ShardedSketch<WindowedSpaceSaving>;

/// Builds a sharded windowed fleet: `shard` configures the queues and
/// workers, `window` the per-shard epoch rings (its seed is offset per
/// shard; shard-ring epoch capacity comes from `window.epoch_capacity`,
/// not shard.shard_capacity). Row-count time (rows_per_epoch) is
/// rejected here: the stamped rows dictate epochs, and per-shard
/// auto-advance would fracture the shards' epoch alignment.
inline std::unique_ptr<ShardedWindowedSketch> MakeShardedWindowed(
    const ShardedSketchOptions& shard, const WindowedSketchOptions& window) {
  DSKETCH_CHECK(window.rows_per_epoch == 0);
  return std::make_unique<ShardedWindowedSketch>(
      shard, [window, base_seed = shard.seed](size_t i) {
        WindowedSketchOptions opt = window;
        opt.seed = base_seed + i;
        return WindowedSpaceSaving(opt);
      });
}

}  // namespace dsketch

#endif  // DSKETCH_WINDOW_SHARDED_WINDOWED_H_
