// Wire codec for the window-snapshot kind: the full epoch ring of a
// WindowedSpaceSaving — ring metadata, one embedded per-epoch sketch
// blob per slot, and the decayed accumulator — travels as one versioned
// blob, so windowed state replicates through the same
// SaveSnapshot/IngestSerialized machinery as flat sketches.
//
// Envelope: the shared 8-byte header (wire/codec.h) with kind 7
// ("windowed_sketch"). The kind is v2-only — it was born after the
// varint era, so there is no legacy layout to decode. Payload (varints
// unless noted; f64 = 8-byte IEEE-754 LE):
//
//   [window_epochs][epoch_capacity][merged_capacity][rows_per_epoch]
//   [f64 half_life_epochs]
//   [rows_in_current_epoch][total_rows]
//   [n_slots] then per slot, epochs strictly ascending (newest = open):
//       [epoch_id][blob_len][unbiased-space-saving v2 blob]
//   [u8 has_decayed][if 1: [blob_len][weighted-space-saving v2 blob]]
//
// The embedded blobs reuse the per-kind v2 codecs verbatim (envelope
// included), so every inner payload inherits their hostile-input
// hardening; the outer decoder additionally enforces the ring caps
// (window_epochs <= kMaxWindowEpochs, slot count <= window length,
// strictly ascending epochs spanning at most one window, inner
// capacities matching the declared ring geometry) and bounds every
// claimed length by the bytes actually present before allocating.
// DeserializeWindowed returns nullopt on any malformed input — never
// aborts — matching the core codecs' contract (wire_adversarial_test
// sweeps this kind too).

#ifndef DSKETCH_WINDOW_WINDOW_WIRE_H_
#define DSKETCH_WINDOW_WINDOW_WIRE_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/serialization.h"
#include "window/windowed_sketch.h"

namespace dsketch {

/// Kind byte of the window-snapshot blob (registered as a built-in in
/// wire/codec.cc; part of the wire contract).
inline constexpr uint8_t kWireKindWindowed = 7;

/// Serializes the full epoch ring (current wire version). CHECK-fails
/// beyond the documented caps, mirroring the flat-sketch encoders.
std::string SerializeWindowed(const WindowedSpaceSaving& sketch);

/// Reconstructs a windowed sketch; `seed` re-seeds the receiving side's
/// randomness (per-epoch sketches re-seed as seed + epoch, exactly as a
/// locally grown ring would). Returns nullopt on malformed or
/// wrong-kind input.
std::optional<WindowedSpaceSaving> DeserializeWindowed(
    std::string_view bytes, uint64_t seed = 1);

/// Reads the newest (open) slot epoch off a windowed blob in one linear
/// walk over the slot headers, without reconstructing any per-epoch
/// sketch. For callers that already validated/absorbed the blob and
/// only need its clock (e.g. the windowed source adopting an ahead
/// peer's epoch on restore). Returns nullopt on malformed input.
std::optional<uint64_t> PeekWindowedNewestEpoch(std::string_view bytes);

/// Wire dispatch so the generic layers (ShardedSketch snapshot
/// replication, SketchSource save/restore) handle windowed sketches
/// like any other kind.
template <>
struct SketchWire<WindowedSpaceSaving> {
  static std::string Serialize(const WindowedSpaceSaving& s) {
    return SerializeWindowed(s);
  }
  static std::optional<WindowedSpaceSaving> Deserialize(
      std::string_view bytes, uint64_t seed) {
    return DeserializeWindowed(bytes, seed);
  }
};

}  // namespace dsketch

#endif  // DSKETCH_WINDOW_WINDOW_WIRE_H_
