// First-class time-windowed sketching: an epoch ring of mergeable
// sketches with sliding-window and exponentially-decayed queries.
//
// A WindowedSketch<S> partitions the stream into epochs (logical time —
// the caller advances explicitly — or row-count time via
// rows_per_epoch) and keeps one sketch of type `S` per epoch in a ring
// of the last `window_epochs` epochs. Queries over "the last k epochs"
// merge the k newest ring slots with the same unbiased pairwise-PPS
// reduction the shard layer uses (MergeShards, paper §5.3 / Theorem 2),
// so a window estimate behaves exactly as if one sketch had seen just
// those epochs' rows — the classic mergeable-sketch window
// construction, promoted from bench/epoch_common.h's hand-merged form
// into a library citizen.
//
// Decayed mode (half_life_epochs > 0) additionally folds every *closed*
// epoch into a weighted accumulator whose mass decays by
// 2^(-age/half_life) per epoch: QueryDecayed() answers exponentially
// time-decayed subset sums over the entire stream with O(merged
// capacity) state, complementing the ring's sharp cutoff. Sliding
// window = "last W epochs count fully, older count zero"; decay =
// "every epoch counts, geometrically less" — the two standard
// time-scoped weightings.
//
// Query cost: QueryWindow is backed by an incremental hierarchical
// merge cache — a binary merge tree over aligned epoch spans. Closed
// epochs are immutable, so the exact per-span entry sums (integer
// addition is associative) are cached per (level, block) node and a
// last-k query assembles its combined entry set from O(log W) cached
// partials plus the open epoch's live entries, instead of re-merging
// all W slots pairwise from scratch. Only the open epoch is ever
// uncached (ingest invalidates nothing but a small combine memo);
// advancing the window evicts just the nodes that fell off the ring's
// left edge. QueryWindowUncached keeps the from-scratch path for
// benchmarks and cross-checks.
//
// Determinism: epoch e's sketch is seeded seed + e and the decay folds
// are seeded from seed + the epoch they fold at, so a fixed (seed,
// stream, epoch stamps) triple reproduces the ring, the accumulator,
// and every window merge bit-for-bit. Cached and uncached queries are
// bit-identical too: both feed the same exact entry sums into the same
// canonical-order pairwise reduction (core/merge's SketchFromEntries)
// with the same merge seed — which is what lets window_test cross-check
// QueryWindow against the hand-merged construction exactly.

#ifndef DSKETCH_WINDOW_WINDOWED_SKETCH_H_
#define DSKETCH_WINDOW_WINDOWED_SKETCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cmath>
#include <deque>
#include <iterator>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/merge.h"
#include "core/sketch_entry.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "obs/metrics.h"
#include "shard/sharded_sketch.h"
#include "util/logging.h"
#include "util/span.h"

namespace dsketch {

/// Largest ring length a WindowedSketch accepts (and the window-snapshot
/// wire codec restores) — epochs are coarse query units, not rows, so a
/// few thousand covers every realistic retention policy while keeping
/// hostile ring claims cheap to reject.
inline constexpr uint64_t kMaxWindowEpochs = 4096;

/// Largest epoch stamp the service decoder and the window wire codec
/// accept. Epochs are a coarse monotone clock, so 2^62 accommodates even
/// nanosecond unix timestamps while keeping epoch/seed arithmetic far
/// from uint64 wraparound on hostile stamps.
inline constexpr uint64_t kMaxEpochStamp = uint64_t{1} << 62;

/// Per-epoch decay factor 2^(-1/half_life) (0.0 when decay is off).
inline double EpochDecayFactor(double half_life_epochs) {
  return half_life_epochs > 0.0 ? std::exp2(-1.0 / half_life_epochs) : 0.0;
}

/// A usable half-life: decay off (exactly 0), or a per-epoch factor
/// that does not underflow double. Half-lives below ~0.00094 epochs
/// would yield factor 0 — decay silently disabled while half_life > 0,
/// a combination the wire codec rightly rejects as inconsistent — so
/// they are refused up front. Also rejects negatives and NaN.
inline bool ValidHalfLife(double half_life_epochs) {
  return half_life_epochs == 0.0 || EpochDecayFactor(half_life_epochs) > 0.0;
}

/// Configuration of the epoch ring.
struct WindowedSketchOptions {
  size_t window_epochs = 8;     ///< ring length W (>= 1, <= kMaxWindowEpochs)
  size_t epoch_capacity = 1024; ///< bins per per-epoch sketch
  size_t merged_capacity = 4096;  ///< bins of window merges + decay state
  /// > 0: auto-advance every N rows (row-count time). Applies to the
  /// unstamped Update/UpdateBatch path only — epoch-stamped rows carry
  /// their own clock, so the two are mutually exclusive.
  uint64_t rows_per_epoch = 0;
  double half_life_epochs = 0.0;  ///< > 0: maintain the decayed accumulator
  uint64_t seed = 1;            ///< epoch e's sketch is seeded seed + e
};

/// One (item, epoch) row, as shipped through the sharded front-end's
/// queues when a ShardedSketch hosts a windowed sketch.
struct EpochRow {
  uint64_t item = 0;
  uint64_t epoch = 0;
};

// Window-layer telemetry (obs/metrics.h), shared by every windowed
// sketch in the process: merge-cache effectiveness (node hits/misses
// and the level partial reuse lands at), combine-memo effectiveness,
// decay-fold cost, and fast-forward jumps. Handles are function-local
// statics, so the query/ingest paths only touch relaxed atomics.
namespace window_metrics {

inline obs::Counter& NodeCacheHits() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_node_cache_hits_total");
  return c;
}

inline obs::Counter& NodeCacheMisses() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_node_cache_misses_total");
  return c;
}

// Tree level a node-cache hit reused (0 = a single closed epoch,
// higher = wider aligned spans): the depth distribution of partial
// reuse, the quantity the hierarchical cache exists to maximize.
inline obs::Histogram& NodeReuseLevel() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "dsketch_window_node_reuse_level");
  return hist;
}

inline obs::Counter& CombineMemoHits() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_combine_memo_hits_total");
  return c;
}

inline obs::Counter& CombineMemoMisses() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_combine_memo_misses_total");
  return c;
}

inline obs::Histogram& FoldUs() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "dsketch_window_fold_us");
  return hist;
}

inline obs::Counter& FastForwards() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_fast_forward_total");
  return c;
}

}  // namespace window_metrics

namespace window_internal {

// Entry-to-weighted adapters so the decay fold works over both the
// integer-count and the real-valued sketch families.
inline WeightedEntry AsWeighted(const SketchEntry& e) {
  return {e.item, static_cast<double>(e.count)};
}
inline WeightedEntry AsWeighted(const WeightedEntry& e) { return e; }

}  // namespace window_internal

/// Epoch ring over sketch type `S` (UnbiasedSpaceSaving by default;
/// anything with S(capacity, seed), Update, UpdateBatch, Entries() and a
/// MergeShards pointer overload works).
template <typename S>
class WindowedSketch {
 public:
  /// One ring slot: the epoch id and its sketch.
  struct EpochSlot {
    uint64_t epoch = 0;
    S sketch;

    EpochSlot(uint64_t e, S s) : epoch(e), sketch(std::move(s)) {}
  };

  explicit WindowedSketch(const WindowedSketchOptions& options)
      : options_(options),
        decayed_(options.merged_capacity, options.seed),
        decay_factor_(EpochDecayFactor(options.half_life_epochs)) {
    DSKETCH_CHECK(options.window_epochs > 0 &&
                  options.window_epochs <= kMaxWindowEpochs);
    DSKETCH_CHECK(options.epoch_capacity > 0);
    DSKETCH_CHECK(options.merged_capacity > 0);
    DSKETCH_CHECK(ValidHalfLife(options.half_life_epochs));
    ring_.emplace_back(0, S(options.epoch_capacity, options.seed));
  }

  /// Processes one row in the open epoch; auto-advances first in
  /// row-count mode.
  void Update(uint64_t item) {
    ++open_version_;
    MaybeAutoAdvance();
    ring_.back().sketch.Update(item);
    ++rows_in_epoch_;
    ++total_rows_;
  }

  /// Batch form of Update (same auto-advance semantics per row chunk).
  void UpdateBatch(Span<const uint64_t> items) {
    ++open_version_;
    size_t pos = 0;
    while (pos < items.size()) {
      MaybeAutoAdvance();
      size_t len = items.size() - pos;
      if (options_.rows_per_epoch > 0) {
        const uint64_t room = options_.rows_per_epoch - rows_in_epoch_;
        if (static_cast<uint64_t>(len) > room) {
          len = static_cast<size_t>(room);
        }
      }
      ring_.back().sketch.UpdateBatch(
          Span<const uint64_t>(items.data() + pos, len));
      rows_in_epoch_ += len;
      total_rows_ += len;
      pos += len;
    }
  }

  /// Batch of epoch-stamped rows (the sharded hosting path). Stamps at
  /// or before the open epoch land in it (late rows are credited to the
  /// open epoch — a closed ring slot is immutable); a larger stamp
  /// advances the ring to it first. Stamps are the clock here, so
  /// row-count time must be off (MakeShardedWindowed enforces this for
  /// the sharded fleet).
  void UpdateBatch(Span<const EpochRow> rows) {
    DSKETCH_CHECK(options_.rows_per_epoch == 0);
    ++open_version_;
    size_t pos = 0;
    while (pos < rows.size()) {
      const uint64_t epoch = rows[pos].epoch;
      if (epoch > CurrentEpoch()) AdvanceTo(epoch);
      size_t end = pos;
      batch_.clear();
      while (end < rows.size() && rows[end].epoch <= CurrentEpoch()) {
        batch_.push_back(rows[end].item);
        ++end;
      }
      ring_.back().sketch.UpdateBatch(
          Span<const uint64_t>(batch_.data(), batch_.size()));
      rows_in_epoch_ += batch_.size();
      total_rows_ += batch_.size();
      pos = end;
    }
  }

  /// Closes the open epoch and opens the next one. Slots older than the
  /// window fall off the ring; in decayed mode the closed epoch is
  /// folded into the accumulator first, so its mass survives (decayed)
  /// after the ring forgets it.
  void Advance() { AdvanceTo(CurrentEpoch() + 1); }

  /// Advances the ring to `epoch` (no-op when not ahead of the open
  /// epoch). Skipped epochs are closed empty. Jumps past the whole
  /// window are O(window), not O(delta): an arbitrary stamp (a unix
  /// timestamp, or a hostile 2^64-1) never spins per skipped epoch.
  void AdvanceTo(uint64_t epoch) {
    if (epoch <= CurrentEpoch()) return;
    ++open_version_;
    if (epoch - CurrentEpoch() > options_.window_epochs) {
      FastForwardTo(epoch);
      return;
    }
    while (CurrentEpoch() < epoch) {
      CloseEpoch();
      ring_.emplace_back(CurrentEpoch() + 1,
                         S(options_.epoch_capacity,
                           options_.seed + CurrentEpoch() + 1));
      if (ring_.size() > options_.window_epochs) ring_.pop_front();
      rows_in_epoch_ = 0;
    }
    // Closed slots are immutable, so existing tree nodes stay valid —
    // only spans that fell off the ring's left edge are dropped.
    EvictExpiredNodes();
  }

  /// Unbiased merged view of the newest min(last_k, ring) epochs with
  /// `capacity` bins, reduced with `merge_seed` (single final pairwise
  /// reduction — identical to MergeShards over the same epoch sketches).
  /// last_k == 0 means the full ring. Assembled from the hierarchical
  /// merge cache: O(log W) cached closed-span partials plus the open
  /// epoch's live entries, bit-identical to QueryWindowUncached.
  S QueryWindow(size_t last_k, size_t capacity, uint64_t merge_seed) const {
    if (last_k == 0 || last_k > ring_.size()) last_k = ring_.size();
    return SketchFromEntries(WindowCombined(last_k), capacity, merge_seed);
  }

  /// QueryWindow with the configured merged capacity and a merge seed
  /// derived from (seed, open epoch) so repeated queries of the same
  /// state are deterministic.
  S QueryWindow(size_t last_k = 0) const {
    return QueryWindow(last_k, options_.merged_capacity,
                       options_.seed + CurrentEpoch() + 1);
  }

  /// The from-scratch reference path: pairwise-merges the suffix slots
  /// directly (what QueryWindow did before the merge cache existed).
  /// Always bit-identical to QueryWindow on the same state — pinned by
  /// window_test — and kept for benchmarks and cross-checks.
  S QueryWindowUncached(size_t last_k, size_t capacity,
                        uint64_t merge_seed) const {
    if (last_k == 0 || last_k > ring_.size()) last_k = ring_.size();
    std::vector<const S*> parts;
    parts.reserve(last_k);
    for (size_t i = ring_.size() - last_k; i < ring_.size(); ++i) {
      parts.push_back(&ring_[i].sketch);
    }
    return MergeShards(parts, capacity, merge_seed);
  }

  /// Exponentially decayed view over the whole stream as of the open
  /// epoch: closed epochs carry weight 2^(-age/half_life), the open
  /// epoch weight 1. Requires decayed mode.
  WeightedSpaceSaving QueryDecayed() const {
    DSKETCH_CHECK(decay_enabled());
    WeightedSpaceSaving open(options_.merged_capacity,
                             options_.seed + CurrentEpoch());
    for (const auto& e : ring_.back().sketch.Entries()) {
      WeightedEntry w = window_internal::AsWeighted(e);
      if (w.weight > 0.0) open.Update(w.item, w.weight);
    }
    WeightedSpaceSaving closed = DecayedClosedView();
    return Merge(closed, open, options_.merged_capacity,
                 options_.seed + CurrentEpoch());
  }

  /// Id of the open epoch (0-based, monotone).
  uint64_t CurrentEpoch() const { return ring_.back().epoch; }

  /// Rows applied to the open epoch so far.
  uint64_t RowsInCurrentEpoch() const { return rows_in_epoch_; }

  /// Rows applied across all epochs (ring and expired).
  uint64_t TotalRows() const { return total_rows_; }

  /// Ring slots, oldest first (newest is the open epoch).
  const std::deque<EpochSlot>& slots() const { return ring_; }

  /// The raw decayed accumulator (meaningful only in decayed mode).
  /// Excludes closed epochs still waiting in the amortized fold batch —
  /// use DecayedClosedView() for the query/serialization semantics.
  const WeightedSpaceSaving& decayed_accumulator() const { return decayed_; }

  /// The effective decayed view over all *closed* epochs as of the open
  /// epoch: the accumulator plus every pending (not yet batch-folded)
  /// closed epoch aged to now. Pure — reads never fold, so results stay
  /// a function of (seed, stream, epoch stamps) alone. QueryDecayed adds
  /// the open epoch on top of this.
  WeightedSpaceSaving DecayedClosedView() const {
    if (pending_.empty()) return decayed_;
    return WeightedSketchFromEntries(CombinedDecayed(CurrentEpoch()),
                                     options_.merged_capacity,
                                     options_.seed + CurrentEpoch());
  }

  /// True when the exponentially-decayed accumulator is maintained.
  bool decay_enabled() const { return decay_factor_ > 0.0; }

  /// The ring configuration.
  const WindowedSketchOptions& options() const { return options_; }

  /// Restores internal state from decoded parts (the window wire codec's
  /// entry point; `slots` must be non-empty with strictly increasing
  /// epochs spanning at most the window).
  void LoadState(std::deque<EpochSlot> slots, WeightedSpaceSaving decayed,
                 uint64_t rows_in_epoch, uint64_t total_rows) {
    DSKETCH_CHECK(!slots.empty() &&
                  slots.size() <= options_.window_epochs);
    for (size_t i = 1; i < slots.size(); ++i) {
      DSKETCH_CHECK(slots[i - 1].epoch < slots[i].epoch);
    }
    ring_ = std::move(slots);
    decayed_ = std::move(decayed);
    rows_in_epoch_ = rows_in_epoch;
    total_rows_ = total_rows;
    // Restores can replace slot contents at epochs the tree already
    // cached, so the whole merge cache (not just the expired left edge)
    // is rebuilt lazily from the new slots.
    pending_.clear();
    ClearMergeCache();
  }

 private:
  // Jump handler for advances past the whole window: every ring slot
  // that survives the jump is newly created and empty, so instead of
  // closing the skipped epochs one at a time the ring is rebuilt
  // directly at `epoch` and the decayed accumulator is aged once by the
  // whole lag. Ring state (slot epochs, seeds, emptiness) matches the
  // epoch-at-a-time path exactly; the decayed mass matches it
  // analytically — one Scale in place of the skipped epochs'
  // scale/merge-with-empty rounds, fp rounding aside.
  void FastForwardTo(uint64_t epoch) {
    window_metrics::FastForwards().Inc();
    if (decay_enabled()) {
      CloseEpoch();  // the open epoch's rows, aged one epoch
      // Settle the fold batch before lag-scaling: the whole pending mass
      // must age by the jump too.
      FoldPending(CurrentEpoch() + 1);
      const double lag = static_cast<double>(epoch - CurrentEpoch() - 1);
      const double factor = std::exp2(-lag / options_.half_life_epochs);
      if (factor > 0.0) {
        decayed_.Scale(factor);
      } else {
        decayed_.LoadEntries({});  // decayed below the double range
      }
    }
    ring_.clear();
    // epoch > window_epochs here (CurrentEpoch() >= 0), so no underflow.
    for (uint64_t e = epoch - options_.window_epochs + 1;; ++e) {
      ring_.emplace_back(e, S(options_.epoch_capacity, options_.seed + e));
      if (e == epoch) break;
    }
    rows_in_epoch_ = 0;
    // Every surviving slot is new (and empty); the old tree is useless.
    ClearMergeCache();
  }

  void MaybeAutoAdvance() {
    if (options_.rows_per_epoch > 0 &&
        rows_in_epoch_ >= options_.rows_per_epoch) {
      Advance();
    }
  }

  // Closes the open epoch into the decayed state: age the accumulator
  // by one epoch (cheap — it stays expressed as of the open epoch), but
  // *stash* the closing epoch's entries instead of paying a weighted
  // merge per close. Stashed epochs fold in batches of FoldBatchEpochs()
  // with their exact ages 2^(-(fold epoch - e)/half_life), so decay-on
  // ingest no longer pays a full fold per epoch close.
  void CloseEpoch() {
    if (!decay_enabled()) return;
    decayed_.Scale(decay_factor_);
    std::vector<WeightedEntry> closing;
    for (const auto& e : ring_.back().sketch.Entries()) {
      WeightedEntry w = window_internal::AsWeighted(e);
      if (w.weight > 0.0) closing.push_back(w);
    }
    if (!closing.empty()) {
      pending_.emplace_back(CurrentEpoch(), std::move(closing));
    }
    if (pending_.size() >= FoldBatchEpochs()) FoldPending(CurrentEpoch() + 1);
  }

  // Epochs stashed per fold: enough batching to amortize the weighted
  // reduction across ring growth, small enough that a read's on-the-fly
  // combine (DecayedClosedView) stays cheap.
  size_t FoldBatchEpochs() const {
    const size_t b = options_.window_epochs / 8;
    return b < 1 ? 1 : (b > 32 ? 32 : b);
  }

  // Exact (item -> weight) sums of the accumulator plus every pending
  // closed epoch aged to `as_of` (the epoch the accumulator itself is
  // expressed at). Zero/underflowed masses drop out.
  std::vector<WeightedEntry> CombinedDecayed(uint64_t as_of) const {
    std::unordered_map<uint64_t, double> sums;
    for (const WeightedEntry& e : decayed_.Entries()) sums[e.item] += e.weight;
    for (const auto& [ep, entries] : pending_) {
      const double f = std::exp2(-static_cast<double>(as_of - ep) /
                                 options_.half_life_epochs);
      if (f <= 0.0) continue;
      for (const WeightedEntry& e : entries) sums[e.item] += e.weight * f;
    }
    std::vector<WeightedEntry> combined;
    combined.reserve(sums.size());
    for (const auto& [item, w] : sums) {
      if (w > 0.0) combined.push_back({item, w});
    }
    return combined;
  }

  // Collapses the fold batch into the accumulator with one weighted
  // reduction, seeded by the epoch the fold lands at (span-derived, so
  // a fixed stream reproduces it).
  void FoldPending(uint64_t as_of) {
    if (pending_.empty()) return;
    obs::ScopedTimer fold_timer(window_metrics::FoldUs());
    decayed_ = WeightedSketchFromEntries(CombinedDecayed(as_of),
                                         options_.merged_capacity,
                                         options_.seed + as_of);
    pending_.clear();
  }

  // ---- hierarchical merge cache ----
  //
  // A node (level, block) covers the aligned absolute-epoch span
  // [block·2^level, (block+1)·2^level) and caches the item-sorted exact
  // entry sums of its slots. Exact integer sums are associative, so a
  // node is just the merge of its two children — and because only spans
  // of *closed* epochs are ever requested (the decomposition stops the
  // closed range at open-1), cached nodes can never go stale: ingest
  // touches only the open epoch, and advancing merely expires nodes off
  // the ring's left edge. At most ~2W nodes exist, each bounded by its
  // span's distinct items. Queries are logically const, so the cache
  // lives in mutable members (same single-producer threading contract
  // as the rest of the class).

  static bool ItemLess(const SketchEntry& a, const SketchEntry& b) {
    return a.item < b.item;
  }

  // Merges two item-sorted entry vectors, summing duplicate labels.
  static std::vector<SketchEntry> MergeByItem(
      const std::vector<SketchEntry>& a, const std::vector<SketchEntry>& b) {
    std::vector<SketchEntry> merged;
    merged.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(merged), ItemLess);
    size_t w = 0;
    for (size_t r = 0; r < merged.size(); ++r) {
      if (w > 0 && merged[w - 1].item == merged[r].item) {
        merged[w - 1].count += merged[r].count;
      } else {
        merged[w++] = merged[r];
      }
    }
    merged.resize(w);
    return merged;
  }

  // The slot holding absolute epoch `epoch`, or nullptr (expired epochs,
  // or gaps in a restored ring — both contribute nothing).
  const S* FindSlotSketch(uint64_t epoch) const {
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), epoch,
        [](const EpochSlot& s, uint64_t e) { return s.epoch < e; });
    return (it != ring_.end() && it->epoch == epoch) ? &it->sketch : nullptr;
  }

  // Cached item-sorted entry sums of the node (level, block); built
  // lazily from its children. Only called for all-closed spans.
  const std::vector<SketchEntry>& NodeEntries(uint32_t level,
                                              uint64_t block) const {
    const auto key = std::make_pair(level, block);
    auto it = node_cache_.find(key);
    if (it != node_cache_.end()) {
      window_metrics::NodeCacheHits().Inc();
      window_metrics::NodeReuseLevel().Record(level);
      return it->second;
    }
    window_metrics::NodeCacheMisses().Inc();
    std::vector<SketchEntry> entries;
    if (level == 0) {
      if (const S* slot = FindSlotSketch(block)) {
        entries = slot->Entries();
        std::sort(entries.begin(), entries.end(), ItemLess);
      }
    } else {
      const std::vector<SketchEntry>& left = NodeEntries(level - 1, 2 * block);
      const std::vector<SketchEntry>& right =
          NodeEntries(level - 1, 2 * block + 1);
      entries = MergeByItem(left, right);
    }
    return node_cache_.emplace(key, std::move(entries)).first->second;
  }

  // The combined exact entry sums of the newest `last_k` slots
  // (1 <= last_k <= ring size), memoized in the canonical reduce-ready
  // (count, item) order: repeated queries of unchanged state — any
  // capacity or merge seed — skip straight to the final collapse.
  const std::vector<SketchEntry>& WindowCombined(size_t last_k) const {
    auto mit = combine_memo_.find(last_k);
    if (mit != combine_memo_.end() && mit->second.version == open_version_) {
      window_metrics::CombineMemoHits().Inc();
      return mit->second.combined;
    }
    window_metrics::CombineMemoMisses().Inc();
    // Closed part: canonical segment decomposition of the epoch range
    // [first suffix epoch, open epoch) into O(log W) aligned nodes.
    std::vector<const std::vector<SketchEntry>*> parts;
    if (last_k >= 2) {
      uint64_t l = ring_[ring_.size() - last_k].epoch;
      uint64_t r = CurrentEpoch();
      uint32_t level = 0;
      while (l < r) {
        if (l & 1) parts.push_back(&NodeEntries(level, l++));
        if (r & 1) parts.push_back(&NodeEntries(level, --r));
        l >>= 1;
        r >>= 1;
        ++level;
      }
    }
    std::vector<SketchEntry> open = ring_.back().sketch.Entries();
    std::sort(open.begin(), open.end(), ItemLess);
    // Balanced pairwise merges (n log k element moves, not k·n).
    std::vector<std::vector<SketchEntry>> round;
    round.reserve(parts.size() / 2 + 2);
    for (size_t i = 0; i + 1 < parts.size(); i += 2) {
      round.push_back(MergeByItem(*parts[i], *parts[i + 1]));
    }
    if (parts.size() % 2 == 1) round.push_back(*parts.back());
    round.push_back(std::move(open));
    while (round.size() > 1) {
      std::vector<std::vector<SketchEntry>> next;
      next.reserve(round.size() / 2 + 1);
      for (size_t i = 0; i + 1 < round.size(); i += 2) {
        next.push_back(MergeByItem(round[i], round[i + 1]));
      }
      if (round.size() % 2 == 1) next.push_back(std::move(round.back()));
      round = std::move(next);
    }
    std::vector<SketchEntry> combined = std::move(round.front());
    std::sort(combined.begin(), combined.end(),
              [](const SketchEntry& a, const SketchEntry& b) {
                return a.count != b.count ? a.count < b.count
                                          : a.item < b.item;
              });
    if (combine_memo_.size() >= 8) combine_memo_.clear();
    CombineMemo& memo = combine_memo_[last_k];
    memo.version = open_version_;
    memo.combined = std::move(combined);
    return memo.combined;
  }

  // Drops cached nodes whose span lies entirely left of the ring.
  void EvictExpiredNodes() {
    const uint64_t front = ring_.front().epoch;
    for (auto it = node_cache_.begin(); it != node_cache_.end();) {
      const uint64_t span_hi =
          ((it->first.second + 1) << it->first.first) - 1;
      it = span_hi < front ? node_cache_.erase(it) : std::next(it);
    }
  }

  void ClearMergeCache() {
    node_cache_.clear();
    combine_memo_.clear();
  }

  WindowedSketchOptions options_;
  std::deque<EpochSlot> ring_;
  WeightedSpaceSaving decayed_;
  double decay_factor_;
  uint64_t rows_in_epoch_ = 0;
  uint64_t total_rows_ = 0;
  std::vector<uint64_t> batch_;  // scratch for epoch-stamped batches
  // Closed epochs stashed for the next batched decay fold (epoch id +
  // that epoch's full-weight entries).
  std::vector<std::pair<uint64_t, std::vector<WeightedEntry>>> pending_;
  // Bumped by every mutation that can change a query's combined entry
  // set (ingest into the open epoch, advances, restores); versions the
  // combine memo. Node entries never need versioning — closed spans are
  // immutable and restores clear the cache outright.
  uint64_t open_version_ = 0;
  mutable std::map<std::pair<uint32_t, uint64_t>, std::vector<SketchEntry>>
      node_cache_;
  struct CombineMemo {
    uint64_t version = 0;
    std::vector<SketchEntry> combined;
  };
  mutable std::map<size_t, CombineMemo> combine_memo_;
};

/// The windowed form of the paper's primary sketch — what the wire,
/// shard, query, and service layers instantiate.
using WindowedSpaceSaving = WindowedSketch<UnbiasedSpaceSaving>;

/// Epoch-aligned unbiased merge of windowed sketches: slots are matched
/// by absolute epoch id (a shard that saw no rows for an epoch simply
/// contributes nothing to it), each aligned epoch set is merged with the
/// unbiased MergeShards reduction at `epoch_capacity` bins, and the
/// decayed accumulators merge under the weighted reduction — so
/// ShardedSketch<WindowedSpaceSaving>::Snapshot() is epoch-consistent:
/// the merged ring answers window queries exactly as one windowed sketch
/// over the whole stream would.
WindowedSpaceSaving MergeShards(
    const std::vector<const WindowedSpaceSaving*>& shards,
    size_t epoch_capacity, uint64_t seed);

/// Value form of the windowed merge.
WindowedSpaceSaving MergeShards(const std::vector<WindowedSpaceSaving>& shards,
                                size_t epoch_capacity, uint64_t seed);

/// ShardRow trait: a windowed shard queue carries epoch-stamped rows and
/// routes on the item label (so every epoch of one item lands in one
/// shard and the per-epoch merge stays a disjoint-stream merge).
template <>
struct ShardRow<WindowedSpaceSaving> {
  using Type = EpochRow;
  static uint64_t ItemOf(const EpochRow& row) { return row.item; }
};

}  // namespace dsketch

#endif  // DSKETCH_WINDOW_WINDOWED_SKETCH_H_
