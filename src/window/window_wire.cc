#include "window/window_wire.h"

#include <cmath>
#include <deque>
#include <utility>

#include "util/logging.h"
#include "wire/codec.h"
#include "wire/varint.h"

namespace dsketch {

namespace {

using wire::VarintReader;
using wire::VarintWriter;

// Smallest possible wire footprint of one ring slot: epoch varint +
// length varint + an inner blob (8-byte envelope + 2-byte empty v2
// header). Bounds hostile slot-count claims before allocation.
constexpr size_t kMinSlotBytes = 12;

}  // namespace

std::string SerializeWindowed(const WindowedSpaceSaving& sketch) {
  const WindowedSketchOptions& opt = sketch.options();
  DSKETCH_CHECK(opt.window_epochs > 0 && opt.window_epochs <= kMaxWindowEpochs);
  DSKETCH_CHECK(opt.epoch_capacity > 0 &&
                opt.epoch_capacity <= kMaxSerializableCapacity);
  DSKETCH_CHECK(opt.merged_capacity > 0 &&
                opt.merged_capacity <= kMaxSerializableCapacity);
  DSKETCH_CHECK(sketch.CurrentEpoch() <= kMaxEpochStamp);

  std::string out;
  out.reserve(wire::kEnvelopeBytes + 64 +
              sketch.slots().size() * (16 + opt.epoch_capacity * 4));
  wire::WriteEnvelope(out, kWireKindWindowed, wire::kVersionCurrent);
  VarintWriter writer(out);
  writer.PutVarint(opt.window_epochs);
  writer.PutVarint(opt.epoch_capacity);
  writer.PutVarint(opt.merged_capacity);
  writer.PutVarint(opt.rows_per_epoch);
  writer.PutDouble(opt.half_life_epochs);
  writer.PutVarint(sketch.RowsInCurrentEpoch());
  writer.PutVarint(sketch.TotalRows());
  writer.PutVarint(sketch.slots().size());
  for (const auto& slot : sketch.slots()) {
    const std::string blob = Serialize(slot.sketch);
    writer.PutVarint(slot.epoch);
    writer.PutVarint(blob.size());
    out.append(blob);
  }
  writer.PutByte(sketch.decay_enabled() ? 1 : 0);
  if (sketch.decay_enabled()) {
    // DecayedClosedView (not the raw accumulator): folds any pending
    // closed epochs so the blob is complete regardless of batch phase.
    const WeightedSpaceSaving settled = sketch.DecayedClosedView();
    const std::string blob = Serialize(settled);
    writer.PutVarint(blob.size());
    out.append(blob);
  }
  wire::RecordWireEncoded(kWireKindWindowed, wire::kVersionCurrent, out.size());
  return out;
}

std::optional<WindowedSpaceSaving> DeserializeWindowed(std::string_view bytes,
                                                      uint64_t seed) {
  VarintReader reader(bytes);
  std::optional<wire::Envelope> env = wire::ReadEnvelope(reader);
  if (!env || env->kind != kWireKindWindowed) return std::nullopt;
  if (!wire::VersionSupported(env->kind, env->version)) return std::nullopt;

  uint64_t window_epochs, epoch_capacity, merged_capacity, rows_per_epoch;
  double half_life;
  uint64_t rows_in_epoch, total_rows, n_slots;
  if (!reader.ReadVarint(&window_epochs) || window_epochs == 0 ||
      window_epochs > kMaxWindowEpochs) {
    return std::nullopt;
  }
  if (!reader.ReadVarint(&epoch_capacity) || epoch_capacity == 0 ||
      epoch_capacity > kMaxSerializableCapacity) {
    return std::nullopt;
  }
  if (!reader.ReadVarint(&merged_capacity) || merged_capacity == 0 ||
      merged_capacity > kMaxSerializableCapacity) {
    return std::nullopt;
  }
  if (!reader.ReadVarint(&rows_per_epoch)) return std::nullopt;
  // ValidHalfLife covers negatives, NaN, and the underflow band where
  // decay would be silently off while half_life > 0; finiteness is still
  // checked separately (an infinite half-life means factor 1, which
  // ValidHalfLife alone would accept).
  if (!reader.ReadDouble(&half_life) || !std::isfinite(half_life) ||
      !ValidHalfLife(half_life)) {
    return std::nullopt;
  }
  if (!reader.ReadVarint(&rows_in_epoch)) return std::nullopt;
  if (!reader.ReadVarint(&total_rows) || rows_in_epoch > total_rows) {
    return std::nullopt;
  }
  if (!reader.ReadVarint(&n_slots) || n_slots == 0 ||
      n_slots > window_epochs || n_slots > reader.remaining() / kMinSlotBytes) {
    return std::nullopt;
  }

  std::deque<WindowedSpaceSaving::EpochSlot> slots;
  uint64_t prev_epoch = 0;
  for (uint64_t i = 0; i < n_slots; ++i) {
    uint64_t epoch, blob_len;
    // Ascending, and bounded like live stamps — a restored ring must not
    // carry a clock the ingest path would have refused.
    if (!reader.ReadVarint(&epoch) || epoch > kMaxEpochStamp) {
      return std::nullopt;
    }
    if (i > 0 && epoch <= prev_epoch) return std::nullopt;
    if (!reader.ReadVarint(&blob_len) || blob_len > reader.remaining()) {
      return std::nullopt;
    }
    std::string blob;
    if (!reader.ReadBytes(static_cast<size_t>(blob_len), &blob)) {
      return std::nullopt;
    }
    std::optional<UnbiasedSpaceSaving> inner =
        DeserializeUnbiased(blob, seed + epoch);
    if (!inner.has_value() || inner->capacity() != epoch_capacity) {
      return std::nullopt;
    }
    slots.emplace_back(epoch, std::move(*inner));
    prev_epoch = epoch;
  }
  // The ring spans at most one window ending at the open (newest) epoch.
  const uint64_t newest = slots.back().epoch;
  if (newest - slots.front().epoch >= window_epochs) return std::nullopt;

  uint8_t has_decayed;
  if (!reader.ReadByte(&has_decayed) || has_decayed > 1) return std::nullopt;
  if ((has_decayed == 1) != (half_life > 0.0)) return std::nullopt;
  WindowedSketchOptions opt;
  opt.window_epochs = static_cast<size_t>(window_epochs);
  opt.epoch_capacity = static_cast<size_t>(epoch_capacity);
  opt.merged_capacity = static_cast<size_t>(merged_capacity);
  opt.rows_per_epoch = rows_per_epoch;
  opt.half_life_epochs = half_life;
  opt.seed = seed;
  WeightedSpaceSaving decayed(opt.merged_capacity, seed);
  if (has_decayed == 1) {
    uint64_t blob_len;
    if (!reader.ReadVarint(&blob_len) || blob_len > reader.remaining()) {
      return std::nullopt;
    }
    std::string blob;
    if (!reader.ReadBytes(static_cast<size_t>(blob_len), &blob)) {
      return std::nullopt;
    }
    std::optional<WeightedSpaceSaving> acc =
        DeserializeWeighted(blob, seed + newest);
    if (!acc.has_value() || acc->capacity() != merged_capacity) {
      return std::nullopt;
    }
    decayed = std::move(*acc);
  }
  if (!reader.AtEnd()) return std::nullopt;
  wire::RecordWireDecoded(env->kind, env->version, bytes.size());

  WindowedSpaceSaving out(opt);
  out.LoadState(std::move(slots), std::move(decayed), rows_in_epoch,
                total_rows);
  return out;
}

std::optional<uint64_t> PeekWindowedNewestEpoch(std::string_view bytes) {
  VarintReader reader(bytes);
  std::optional<wire::Envelope> env = wire::ReadEnvelope(reader);
  if (!env || env->kind != kWireKindWindowed) return std::nullopt;
  if (!wire::VersionSupported(env->kind, env->version)) return std::nullopt;
  // window_epochs .. rows_per_epoch, then half_life, then the row counts.
  uint64_t skipped;
  for (int i = 0; i < 4; ++i) {
    if (!reader.ReadVarint(&skipped)) return std::nullopt;
  }
  double half_life;
  if (!reader.ReadDouble(&half_life)) return std::nullopt;
  uint64_t n_slots;
  if (!reader.ReadVarint(&skipped) || !reader.ReadVarint(&skipped) ||
      !reader.ReadVarint(&n_slots) || n_slots == 0 ||
      n_slots > kMaxWindowEpochs ||
      n_slots > reader.remaining() / kMinSlotBytes) {
    return std::nullopt;
  }
  uint64_t epoch = 0;
  for (uint64_t i = 0; i < n_slots; ++i) {
    uint64_t blob_len;
    if (!reader.ReadVarint(&epoch) || !reader.ReadVarint(&blob_len) ||
        blob_len > reader.remaining() ||
        !reader.Skip(static_cast<size_t>(blob_len))) {
      return std::nullopt;
    }
  }
  return epoch;  // slots travel oldest-first; the last one is the open epoch
}

}  // namespace dsketch
