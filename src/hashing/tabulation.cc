#include "hashing/tabulation.h"

namespace dsketch {

TabulationHash::TabulationHash(Rng& rng) {
  for (auto& row : table_) {
    for (auto& cell : row) cell = rng.NextU64();
  }
}

}  // namespace dsketch
