// Simple tabulation hashing: split the 64-bit key into 8 bytes and XOR
// eight random 64-bit table entries. 3-wise independent (and much stronger
// in practice), extremely fast; used where hash quality matters more than
// table size (e.g., independent replications in tests).

#ifndef DSKETCH_HASHING_TABULATION_H_
#define DSKETCH_HASHING_TABULATION_H_

#include <array>
#include <cstdint>

#include "util/random.h"

namespace dsketch {

/// Tabulation hash over 64-bit keys with 8x256 random tables.
class TabulationHash {
 public:
  /// Fills the tables from `rng`.
  explicit TabulationHash(Rng& rng);

  /// Hash of `key`.
  uint64_t Hash(uint64_t key) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= table_[static_cast<size_t>(i)][(key >> (8 * i)) & 0xFF];
    }
    return h;
  }

 private:
  std::array<std::array<uint64_t, 256>, 8> table_;
};

}  // namespace dsketch

#endif  // DSKETCH_HASHING_TABULATION_H_
