#include "hashing/poly_hash.h"

#include "util/logging.h"

namespace dsketch {

uint64_t MulMod61(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + hi;
  return r >= kMersenne61 ? r - kMersenne61 : r;
}

PolyHash::PolyHash(int k, Rng& rng) {
  DSKETCH_CHECK(k >= 1);
  coef_.resize(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    coef_[static_cast<size_t>(i)] = rng.NextBounded(kMersenne61);
  }
  // Keep the family "really" degree k-1: non-zero leading coefficient.
  if (k > 1 && coef_.back() == 0) coef_.back() = 1;
}

uint64_t PolyHash::Hash(uint64_t key) const {
  uint64_t x = Mod61(key);
  uint64_t acc = 0;
  // Horner evaluation, highest degree first.
  for (size_t i = coef_.size(); i > 0; --i) {
    acc = MulMod61(acc, x);
    acc += coef_[i - 1];
    if (acc >= kMersenne61) acc -= kMersenne61;
  }
  return acc;
}

uint64_t PolyHash::HashRange(uint64_t key, uint64_t range) const {
  DSKETCH_DCHECK(range > 0);
  __uint128_t scaled = static_cast<__uint128_t>(Hash(key)) * range;
  return static_cast<uint64_t>(scaled / kMersenne61);
}

}  // namespace dsketch
