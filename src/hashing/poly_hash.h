// k-wise independent polynomial hashing over the Mersenne prime 2^61 - 1.
//
// A random degree-(k-1) polynomial evaluated at the key is a k-wise
// independent hash family; CountMin needs pairwise independence and the
// AMS sketch needs 4-wise independence for its variance bound. Arithmetic
// uses the standard Mersenne-prime folding trick so no 128-bit modulo is
// required.

#ifndef DSKETCH_HASHING_POLY_HASH_H_
#define DSKETCH_HASHING_POLY_HASH_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dsketch {

/// The Mersenne prime 2^61 - 1 used as the hash field modulus.
constexpr uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Multiplies a*b mod 2^61-1 without overflow.
uint64_t MulMod61(uint64_t a, uint64_t b);

/// Reduces x mod 2^61-1 (x < 2^62 + 2^61 is fine).
inline uint64_t Mod61(uint64_t x) {
  uint64_t r = (x & kMersenne61) + (x >> 61);
  return r >= kMersenne61 ? r - kMersenne61 : r;
}

/// k-wise independent hash: h(x) = poly(x) mod p, coefficients drawn
/// uniformly from [0, p) with a non-zero leading coefficient.
class PolyHash {
 public:
  /// Degree-(k-1) polynomial => k-wise independence. k >= 1.
  PolyHash(int k, Rng& rng);

  /// Hash of `key` in [0, 2^61 - 1).
  uint64_t Hash(uint64_t key) const;

  /// Hash reduced to [0, range) via multiply-shift style scaling.
  uint64_t HashRange(uint64_t key, uint64_t range) const;

  /// Hash mapped to {-1, +1} (sign hash for AMS).
  int HashSign(uint64_t key) const { return (Hash(key) & 1) ? 1 : -1; }

 private:
  std::vector<uint64_t> coef_;  // coef_[0] + coef_[1] x + ...
};

}  // namespace dsketch

#endif  // DSKETCH_HASHING_POLY_HASH_H_
