// 64-bit hashing primitives implemented from scratch (no external deps):
// an XXH64-compatible byte-stream hash, a fast integer mixer, and seeded
// variants used to derive independent hash functions per sketch row.

#ifndef DSKETCH_HASHING_HASH_H_
#define DSKETCH_HASHING_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dsketch {

/// XXH64 of `len` bytes at `data` with the given `seed`. Matches the
/// reference xxHash algorithm (useful for cross-checking golden values).
uint64_t XXH64(const void* data, size_t len, uint64_t seed);

/// Convenience overload over a string_view.
inline uint64_t XXH64(std::string_view s, uint64_t seed = 0) {
  return XXH64(s.data(), s.size(), seed);
}

/// Strong 64-bit mixer (Murmur3 finalizer). Bijective.
uint64_t Mix64(uint64_t x);

/// Seeded hash of a 64-bit key: cheap, high-quality, used to derive
/// per-structure hash functions (e.g., bottom-k ranks, shard routing).
inline uint64_t HashU64(uint64_t key, uint64_t seed) {
  return Mix64(key ^ Mix64(seed ^ 0x9e3779b97f4a7c15ULL));
}

/// Maps a 64-bit hash to a double in [0, 1). Used for hash-derived ranks.
inline double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace dsketch

#endif  // DSKETCH_HASHING_HASH_H_
