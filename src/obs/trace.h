// Request-scoped tracing and an always-on flight recorder.
//
// Where obs/metrics.h answers "how much, how slow in aggregate", this
// layer answers "why was this one request slow": every request through
// SketchServer::HandleRequest opens a root span, and the layers it
// touches (frame decode, shard enqueue/drain, snapshot merge, window
// merge-cache assembly, query reduction, wire encode, response write)
// open child spans. Two sinks consume the spans:
//
//   * The flight recorder — a process-wide, lock-free, fixed-capacity
//     ring of completed spans. Always on: every finished span lands
//     here with a handful of relaxed atomic stores, overwriting the
//     oldest. On a CHECK failure or fatal signal the last events are
//     dumped to stderr (InstallTraceFatalHandlers), so an abort leaves
//     a postmortem even when nobody was sampling.
//   * Sampled traces — when sampling is configured (every Nth request
//     and/or tail sampling of every request slower than slow_request_us)
//     the full span tree of a kept request is published to a small
//     recent-traces ring, exported as Chrome trace-event JSON
//     (Perfetto / chrome://tracing loadable) or a compact text dump via
//     the TRACE opcode and `dsketchd --trace-file`.
//
// Cost model: an inert ScopedSpan (no open trace) is one thread-local
// load and a branch. Under an open trace a span close is ~a dozen
// relaxed atomic stores into the flight recorder plus, when sampling is
// on, one bounded vector append. -DDSKETCH_NO_METRICS=ON compiles
// ScopedTrace/ScopedSpan to empty structs, so all span recording
// disappears from the instrumented code paths entirely.
//
// Threading: trace context is thread_local (one request pipeline per
// serving thread — SketchServer's model). The flight recorder accepts
// concurrent producers from any thread: a relaxed fetch_add hands out
// slot tickets and each slot is a small seqlock — the producer swings
// the slot's stamp to an in-progress sentinel (CAS; the loser drops its
// span), writes the payload, then release-publishes ticket + 1, and
// readers re-check the stamp after copying — so dumps taken under fire
// discard in-progress or overwritten slots instead of tearing. The
// recent-traces ring is mutex-guarded — it is only touched at
// publish/scrape time, never per span.

#ifndef DSKETCH_OBS_TRACE_H_
#define DSKETCH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsketch {
namespace obs {

/// Which layer of the serving stack a span measures (exported as the
/// Chrome trace-event category).
enum class TraceLayer : uint8_t {
  kService = 0,
  kShard = 1,
  kWindow = 2,
  kQuery = 3,
  kWire = 4,
};

/// Stable lowercase name of `layer` ("service", "shard", ...).
const char* TraceLayerName(TraceLayer layer);

/// One key=value span annotation. Keys must be string literals (or
/// otherwise immortal) — spans outlive the scope that annotated them.
struct SpanAnnotation {
  const char* key = nullptr;
  uint64_t value = 0;
};

/// One completed span: a named, layered [start, end] interval on the
/// process-wide steady microsecond clock, linked to its trace and
/// parent span. Plain value type; safe to copy and export.
struct Span {
  static constexpr size_t kMaxAnnotations = 6;

  const char* name = "";  ///< string literal
  TraceLayer layer = TraceLayer::kService;
  uint64_t trace_id = 0;
  uint32_t span_id = 0;    ///< unique within the trace, 1 = root
  uint32_t parent_id = 0;  ///< 0 = root span
  uint64_t start_us = 0;   ///< steady clock, µs since process start
  uint64_t end_us = 0;
  SpanAnnotation annotations[kMaxAnnotations];
  uint32_t num_annotations = 0;
};

/// Microseconds on the trace clock (steady, anchored at first use — all
/// spans in a process share it, so exported timestamps interleave).
uint64_t TraceNowUs();

/// Stable trace id derived from a protocol request id (splitmix64 mix,
/// so sequential request ids spread across the id space).
uint64_t TraceIdFromRequestId(uint64_t request_id);

/// The always-on ring of completed spans. Fixed capacity (a power of
/// two), overwrite-oldest, lock-free for producers. Dump() returns the
/// surviving spans oldest-first; slots a concurrent producer was
/// mid-write on are discarded, never torn.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  /// `capacity` must be a power of two.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every ScopedSpan/ScopedTrace records into.
  static FlightRecorder& Global();

  /// Records one completed span (any thread; lock-free). When two
  /// producers a full ring lap apart land on the same slot, the later
  /// claimant drops its span — a dump never sees a torn one.
  void Record(const Span& span);

  /// Spans currently in the ring, oldest-first. Torn slots (a producer
  /// racing the dump) are skipped.
  std::vector<Span> Dump() const;

  /// Spans ever recorded.
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Spans no longer retrievable — overwritten by newer ones or dropped
  /// at claim time (recorded() minus the ring's capacity) — the STATS
  /// flight_recorder_dropped_total counter.
  uint64_t dropped() const {
    const uint64_t n = recorded();
    return n > capacity_ ? n - capacity_ : 0;
  }

  size_t capacity() const { return capacity_; }

  /// Writes the newest `last_n` spans to stderr using only
  /// async-signal-safe calls (write(2), no allocation, no locks) — the
  /// fatal-path postmortem dump.
  void DumpToStderr(size_t last_n) const;

 private:
  struct Slot;

  // Seqlock read of one slot: copies the payload into *out and returns
  // true only when the stamp matched `ticket + 1` both before and after
  // the copy (no producer touched the slot mid-read). Atomic loads and
  // a stack copy only — async-signal-safe, shared by Dump() and the
  // fatal-path DumpToStderr().
  bool CopySlot(const Slot& slot, uint64_t ticket, Span* out) const;

  const size_t capacity_;  // power of two
  std::atomic<uint64_t> head_{0};
  std::unique_ptr<Slot[]> slots_;
};

/// One sampled request: its trace id and full span set (children close
/// before the root, so the root span is last).
struct TraceRecord {
  uint64_t trace_id = 0;
  std::vector<Span> spans;
};

/// Sampling configuration (all zero = sampling off; the flight recorder
/// runs regardless).
struct TraceConfig {
  /// > 0: capture every Nth request (1 = every request).
  uint32_t sample_every = 0;
  /// > 0: tail sampling — every request whose root span lasted at least
  /// this many µs is captured in full, however the Nth dice fell.
  int64_t slow_request_us = 0;
};

/// Global sampling policy plus the mutex-guarded ring of recently
/// captured traces (the TRACE opcode's kRecent scope).
class TraceCollector {
 public:
  static constexpr size_t kMaxRecent = 16;

  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  static TraceCollector& Global();

  void Configure(const TraceConfig& config);
  TraceConfig config() const;

  /// True when any sampling knob is set (per-request span buffering is
  /// skipped entirely otherwise).
  bool sampling_enabled() const {
    return sample_every_.load(std::memory_order_relaxed) > 0 ||
           slow_request_us_.load(std::memory_order_relaxed) > 0;
  }

  /// Advances the every-Nth counter by one request and reports whether
  /// this request is the Nth. Call exactly once per finished trace.
  bool NextSampleTick();

  /// Appends a captured trace to the recent ring (oldest evicted past
  /// kMaxRecent) and bumps traces_captured().
  void Publish(TraceRecord record);

  /// Recently captured traces, oldest-first.
  std::vector<TraceRecord> Recent() const;

  /// Traces published so far — the STATS traces_captured_total counter.
  uint64_t traces_captured() const {
    return captured_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<int64_t> slow_request_us_{0};
  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> captured_{0};
  mutable std::mutex mu_;
  std::deque<TraceRecord> recent_;
};

#ifndef DSKETCH_NO_METRICS

/// Root span of one request. Opening marks the thread's trace context
/// active (nested ScopedSpans attach underneath); closing records the
/// root to the flight recorder and — when sampling kept the request —
/// stages the full span tree for publication. The staged trace is
/// published by the next FlushPendingTrace() (or the next ScopedTrace
/// on this thread), which lets the serve loop attach the response-write
/// span after HandleRequest returned.
class ScopedTrace {
 public:
  explicit ScopedTrace(const char* name,
                       TraceLayer layer = TraceLayer::kService);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  /// Overrides the provisional trace id (e.g. with
  /// TraceIdFromRequestId once the envelope decoded). Applies to every
  /// span of this trace, including ones already closed.
  void SetTraceId(uint64_t trace_id);

  /// Annotates the root span (up to Span::kMaxAnnotations; extras are
  /// dropped). `key` must be a string literal.
  void Annotate(const char* key, uint64_t value);

 private:
  Span root_;
};

/// One timed child span. Inert (a thread-local load and a branch) when
/// no trace is open on this thread. After the thread's root trace
/// closed but before FlushPendingTrace(), a new span still attaches to
/// the pending trace as a child of its root — how the serve loop's
/// response-write span joins the request that produced it.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, TraceLayer layer);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Annotates this span (up to Span::kMaxAnnotations; extras are
  /// dropped). `key` must be a string literal.
  void Annotate(const char* key, uint64_t value);

 private:
  enum class Mode : uint8_t { kInert, kActive, kPending };
  Mode mode_ = Mode::kInert;
  Span span_;
};

/// Publishes the thread's staged trace (if any) to
/// TraceCollector::Global(). Safe to call when nothing is pending.
void FlushPendingTrace();

#else  // DSKETCH_NO_METRICS

class ScopedTrace {
 public:
  explicit ScopedTrace(const char*, TraceLayer = TraceLayer::kService) {}
  void SetTraceId(uint64_t) {}
  void Annotate(const char*, uint64_t) {}
};

class ScopedSpan {
 public:
  ScopedSpan(const char*, TraceLayer) {}
  void Annotate(const char*, uint64_t) {}
};

inline void FlushPendingTrace() {}

#endif  // DSKETCH_NO_METRICS

// --- exporters --------------------------------------------------------

/// Chrome trace-event JSON ({"traceEvents":[...]}) over the captured
/// traces: one complete ("ph":"X") event per span, categorized by
/// layer, each trace on its own tid so Perfetto lays requests out as
/// separate tracks. Deterministic given the spans (golden-testable).
std::string TraceToChromeJson(const std::vector<TraceRecord>& traces);

/// Compact text dump of captured traces: one header line per trace, one
/// indented line per span with [start..end] µs, ids, and annotations.
std::string TraceToText(const std::vector<TraceRecord>& traces);

/// Compact text dump of bare spans (the flight recorder's Dump()).
std::string SpansToText(const std::vector<Span>& spans);

// --- fatal-path postmortem --------------------------------------------

/// Number of flight-recorder spans the fatal-path dump emits.
inline constexpr size_t kFatalDumpSpans = 32;

/// Installs the crash postmortem: a CHECK-failure hook (util/logging.h)
/// and SIGSEGV/SIGBUS/SIGFPE/SIGABRT handlers that dump the flight
/// recorder's last kFatalDumpSpans events to stderr before the process
/// dies. Idempotent; call once at process startup (dsketchd does).
void InstallTraceFatalHandlers();

}  // namespace obs
}  // namespace dsketch

#endif  // DSKETCH_OBS_TRACE_H_
