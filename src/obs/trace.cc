#include "obs/trace.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include <unistd.h>

#include "util/logging.h"

namespace dsketch {
namespace obs {

namespace {

// Bounds on the per-thread capture buffer and span nesting. A request
// deeper than kMaxDepth or wider than kMaxSpansPerTrace keeps serving
// (extra spans parent to the root / are dropped from the sampled
// record) — tracing must never be the thing that breaks a request.
constexpr size_t kMaxDepth = 16;
constexpr size_t kMaxSpansPerTrace = 128;

// In-progress sentinel for FlightRecorder slot stamps. Published stamps
// are ticket + 1, so this value is unreachable (head_ would have to
// wrap uint64).
constexpr uint64_t kSlotWriting = ~uint64_t{0};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* TraceLayerName(TraceLayer layer) {
  switch (layer) {
    case TraceLayer::kService:
      return "service";
    case TraceLayer::kShard:
      return "shard";
    case TraceLayer::kWindow:
      return "window";
    case TraceLayer::kQuery:
      return "query";
    case TraceLayer::kWire:
      return "wire";
  }
  return "unknown";
}

uint64_t TraceNowUs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

uint64_t TraceIdFromRequestId(uint64_t request_id) {
  // Never 0 (0 means "no trace"): the mix only yields 0 for one input,
  // which gets nudged onto a different orbit.
  const uint64_t id = SplitMix64(request_id);
  return id != 0 ? id : SplitMix64(request_id + 1);
}

// --- FlightRecorder ---------------------------------------------------

// Per-slot seqlock. A producer claims the slot by swinging `seq` from
// its last published stamp to kSlotWriting, writes the payload, then
// publishes its ticket + 1 (never 0 = never written). A reader accepts
// a slot only when the stamp equals its ticket + 1 both before and
// after copying the payload, so an in-progress or overwritten slot is
// discarded whole — two producers a full ring lap apart can never
// interleave payloads under one stamp (the CAS loser drops its span).
// Every field is an atomic, so the races tsan could flag are gone by
// construction and consistency rests on the stamp protocol alone.
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<uint8_t> layer{0};
  std::atomic<uint64_t> trace_id{0};
  std::atomic<uint32_t> span_id{0};
  std::atomic<uint32_t> parent_id{0};
  std::atomic<uint64_t> start_us{0};
  std::atomic<uint64_t> end_us{0};
  std::atomic<uint32_t> num_annotations{0};
  std::atomic<const char*> ann_key[Span::kMaxAnnotations] = {};
  std::atomic<uint64_t> ann_value[Span::kMaxAnnotations] = {};
};

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity), slots_(new Slot[capacity]) {
  DSKETCH_CHECK(capacity > 0 && (capacity & (capacity - 1)) == 0);
}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::Global() {
  // Leaked like the metrics registry: spans may record during static
  // destruction of other objects.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(const Span& span) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  // Claim the slot: only the producer that swings seq to the sentinel
  // may write. Losing the claim — a producer a full ring lap away is
  // mid-write on this very slot — drops the span rather than
  // interleaving two payloads under one stamp.
  uint64_t prev = slot.seq.load(std::memory_order_relaxed);
  if (prev == kSlotWriting ||
      !slot.seq.compare_exchange_strong(prev, kSlotWriting,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    return;
  }
  // The payload stores below must not become visible before the claim:
  // this release fence pairs with the acquire fence in CopySlot, so a
  // reader that observed any of them is guaranteed to see a changed
  // stamp on its re-check.
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(span.name, std::memory_order_relaxed);
  slot.layer.store(static_cast<uint8_t>(span.layer),
                   std::memory_order_relaxed);
  slot.trace_id.store(span.trace_id, std::memory_order_relaxed);
  slot.span_id.store(span.span_id, std::memory_order_relaxed);
  slot.parent_id.store(span.parent_id, std::memory_order_relaxed);
  slot.start_us.store(span.start_us, std::memory_order_relaxed);
  slot.end_us.store(span.end_us, std::memory_order_relaxed);
  const uint32_t n_ann =
      span.num_annotations <= Span::kMaxAnnotations
          ? span.num_annotations
          : static_cast<uint32_t>(Span::kMaxAnnotations);
  slot.num_annotations.store(n_ann, std::memory_order_relaxed);
  for (uint32_t i = 0; i < n_ann; ++i) {
    slot.ann_key[i].store(span.annotations[i].key, std::memory_order_relaxed);
    slot.ann_value[i].store(span.annotations[i].value,
                            std::memory_order_relaxed);
  }
  slot.seq.store(ticket + 1, std::memory_order_release);
}

bool FlightRecorder::CopySlot(const Slot& slot, uint64_t ticket,
                              Span* out) const {
  const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  // A slot whose stamp is not this ticket's was already overwritten by
  // a newer lap, is mid-write (kSlotWriting), or never completed; its
  // payload belongs elsewhere.
  if (seq_before != ticket + 1) return false;
  out->name = slot.name.load(std::memory_order_relaxed);
  out->layer =
      static_cast<TraceLayer>(slot.layer.load(std::memory_order_relaxed));
  out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
  out->span_id = slot.span_id.load(std::memory_order_relaxed);
  out->parent_id = slot.parent_id.load(std::memory_order_relaxed);
  out->start_us = slot.start_us.load(std::memory_order_relaxed);
  out->end_us = slot.end_us.load(std::memory_order_relaxed);
  uint32_t n_ann = slot.num_annotations.load(std::memory_order_relaxed);
  if (n_ann > Span::kMaxAnnotations) n_ann = Span::kMaxAnnotations;
  out->num_annotations = n_ann;
  for (uint32_t i = 0; i < n_ann; ++i) {
    out->annotations[i].key = slot.ann_key[i].load(std::memory_order_relaxed);
    out->annotations[i].value =
        slot.ann_value[i].load(std::memory_order_relaxed);
  }
  // Discard torn slots: a producer may have claimed this slot while the
  // fields were being copied. The acquire fence pairs with Record()'s
  // release fence — the field loads above cannot drift past the stamp
  // re-check, so a producer that touched any of them has provably
  // changed seq by the time it is re-read.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (slot.seq.load(std::memory_order_relaxed) != seq_before) return false;
  return out->name != nullptr;
}

std::vector<Span> FlightRecorder::Dump() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t count = head < capacity_ ? head : capacity_;
  std::vector<Span> out;
  out.reserve(static_cast<size_t>(count));
  for (uint64_t ticket = head - count; ticket < head; ++ticket) {
    Span span;
    if (!CopySlot(slots_[ticket & (capacity_ - 1)], ticket, &span)) continue;
    out.push_back(span);
  }
  return out;
}

namespace {

// write(2)-based emit helpers for the fatal path: no allocation, no
// stdio locks, no formatting machinery — async-signal-safe.
void FatalWrite(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(2, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

void FatalWriteStr(const char* s) { FatalWrite(s, std::strlen(s)); }

void FatalWriteU64(uint64_t v) {
  char buf[20];
  size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  FatalWrite(buf + i, sizeof(buf) - i);
}

void FatalWriteHex64(uint64_t v) {
  static const char kHex[] = "0123456789abcdef";
  char buf[16];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[v & 0xF];
    v >>= 4;
  }
  FatalWrite(buf, sizeof(buf));
}

}  // namespace

void FlightRecorder::DumpToStderr(size_t last_n) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t count = head < capacity_ ? head : capacity_;
  if (count > last_n) count = last_n;
  FatalWriteStr("dsketch flight recorder: last ");
  FatalWriteU64(count);
  FatalWriteStr(" of ");
  FatalWriteU64(head);
  FatalWriteStr(" spans\n");
  for (uint64_t ticket = head - count; ticket < head; ++ticket) {
    // Same validated seqlock read as Dump() — a stack copy and atomic
    // loads only, so it stays async-signal-safe and a producer racing
    // the crash can not make the postmortem print a torn span.
    Span span;
    if (!CopySlot(slots_[ticket & (capacity_ - 1)], ticket, &span)) continue;
    FatalWriteStr("  [");
    FatalWriteHex64(span.trace_id);
    FatalWriteStr("] ");
    FatalWriteStr(TraceLayerName(span.layer));
    FatalWriteStr(":");
    FatalWriteStr(span.name);
    FatalWriteStr(" ");
    FatalWriteU64(span.start_us);
    FatalWriteStr("..");
    FatalWriteU64(span.end_us);
    FatalWriteStr("us span=");
    FatalWriteU64(span.span_id);
    FatalWriteStr(" parent=");
    FatalWriteU64(span.parent_id);
    for (uint32_t i = 0; i < span.num_annotations; ++i) {
      if (span.annotations[i].key == nullptr) continue;
      FatalWriteStr(" ");
      FatalWriteStr(span.annotations[i].key);
      FatalWriteStr("=");
      FatalWriteU64(span.annotations[i].value);
    }
    FatalWriteStr("\n");
  }
}

// --- TraceCollector ---------------------------------------------------

TraceCollector::TraceCollector() = default;
TraceCollector::~TraceCollector() = default;

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Configure(const TraceConfig& config) {
  sample_every_.store(config.sample_every, std::memory_order_relaxed);
  slow_request_us_.store(
      config.slow_request_us > 0 ? config.slow_request_us : 0,
      std::memory_order_relaxed);
}

TraceConfig TraceCollector::config() const {
  TraceConfig out;
  out.sample_every = sample_every_.load(std::memory_order_relaxed);
  out.slow_request_us = slow_request_us_.load(std::memory_order_relaxed);
  return out;
}

bool TraceCollector::NextSampleTick() {
  const uint32_t every = sample_every_.load(std::memory_order_relaxed);
  const uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
  return every > 0 && tick % every == 0;
}

void TraceCollector::Publish(TraceRecord record) {
  captured_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  recent_.push_back(std::move(record));
  while (recent_.size() > kMaxRecent) recent_.pop_front();
}

std::vector<TraceRecord> TraceCollector::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceRecord>(recent_.begin(), recent_.end());
}

// --- thread-local trace context ---------------------------------------

#ifndef DSKETCH_NO_METRICS

namespace {

struct ThreadTraceState {
  bool active = false;   // a root trace is open on this thread
  bool capture = false;  // buffering spans for possible publication
  uint64_t trace_id = 0;
  uint32_t next_span_id = 1;
  uint32_t parent_stack[kMaxDepth];
  size_t depth = 0;
  std::vector<Span> buffer;  // captured spans of the open trace

  // Staged trace awaiting FlushPendingTrace (see ScopedTrace docs).
  bool pending_valid = false;
  uint64_t pending_trace_id = 0;
  uint32_t pending_root_id = 0;
  std::vector<Span> pending_spans;
};

ThreadTraceState& State() {
  static thread_local ThreadTraceState state;
  return state;
}

void AddAnnotation(Span* span, const char* key, uint64_t value) {
  if (span->num_annotations >= Span::kMaxAnnotations) return;
  span->annotations[span->num_annotations].key = key;
  span->annotations[span->num_annotations].value = value;
  ++span->num_annotations;
}

// Retroactively applies a trace-id override to already-buffered spans
// (children that closed before the envelope's request id decoded).
void RetagBufferedSpans(ThreadTraceState& st, uint64_t trace_id) {
  for (Span& span : st.buffer) span.trace_id = trace_id;
}

}  // namespace

void FlushPendingTrace() {
  ThreadTraceState& st = State();
  if (!st.pending_valid) return;
  TraceRecord record;
  record.trace_id = st.pending_trace_id;
  record.spans = std::move(st.pending_spans);
  st.pending_spans.clear();
  st.pending_valid = false;
  TraceCollector::Global().Publish(std::move(record));
}

ScopedTrace::ScopedTrace(const char* name, TraceLayer layer) {
  FlushPendingTrace();  // a stale staged trace publishes before reuse
  ThreadTraceState& st = State();
  // Re-entrant root opens (nested HandleRequest in tests) degrade to a
  // plain child span context rather than corrupting the open trace.
  if (st.active) {
    root_.name = nullptr;
    return;
  }
  st.active = true;
  st.capture = TraceCollector::Global().sampling_enabled();
  // Provisional id (a fresh trace might never learn a request id):
  // derived from the flight recorder's global span ticket so ids stay
  // unique across threads without coordination.
  st.trace_id = TraceIdFromRequestId(
      FlightRecorder::Global().recorded() * 0x10001ULL + TraceNowUs());
  st.next_span_id = 2;
  st.depth = 0;
  st.parent_stack[st.depth++] = 1;
  st.buffer.clear();
  root_.name = name;
  root_.layer = layer;
  root_.span_id = 1;
  root_.parent_id = 0;
  root_.start_us = TraceNowUs();
}

void ScopedTrace::SetTraceId(uint64_t trace_id) {
  if (root_.name == nullptr) return;
  ThreadTraceState& st = State();
  st.trace_id = trace_id;
  RetagBufferedSpans(st, trace_id);
}

void ScopedTrace::Annotate(const char* key, uint64_t value) {
  if (root_.name == nullptr) return;
  AddAnnotation(&root_, key, value);
}

ScopedTrace::~ScopedTrace() {
  if (root_.name == nullptr) return;
  ThreadTraceState& st = State();
  root_.trace_id = st.trace_id;
  root_.end_us = TraceNowUs();
  FlightRecorder::Global().Record(root_);
  st.active = false;
  st.depth = 0;
  if (!st.capture) return;
  st.capture = false;
  TraceCollector& collector = TraceCollector::Global();
  const TraceConfig config = collector.config();
  const uint64_t latency_us = root_.end_us - root_.start_us;
  const bool nth = collector.NextSampleTick();
  const bool slow = config.slow_request_us > 0 &&
                    latency_us >= static_cast<uint64_t>(config.slow_request_us);
  if (!nth && !slow) {
    st.buffer.clear();
    return;
  }
  if (st.buffer.size() < kMaxSpansPerTrace) st.buffer.push_back(root_);
  st.pending_valid = true;
  st.pending_trace_id = st.trace_id;
  st.pending_root_id = root_.span_id;
  st.pending_spans = std::move(st.buffer);
  st.buffer.clear();
}

ScopedSpan::ScopedSpan(const char* name, TraceLayer layer) {
  ThreadTraceState& st = State();
  if (st.active) {
    mode_ = Mode::kActive;
    span_.name = name;
    span_.layer = layer;
    span_.span_id = st.next_span_id++;
    span_.parent_id = st.depth > 0 ? st.parent_stack[st.depth - 1] : 0;
    if (st.depth < kMaxDepth) st.parent_stack[st.depth++] = span_.span_id;
    span_.start_us = TraceNowUs();
    return;
  }
  if (st.pending_valid) {
    // Post-trace span (e.g. the serve loop's response write): joins the
    // staged trace as a direct child of its root.
    mode_ = Mode::kPending;
    span_.name = name;
    span_.layer = layer;
    span_.trace_id = st.pending_trace_id;
    span_.span_id = st.next_span_id++;
    span_.parent_id = st.pending_root_id;
    span_.start_us = TraceNowUs();
    return;
  }
  mode_ = Mode::kInert;
}

void ScopedSpan::Annotate(const char* key, uint64_t value) {
  if (mode_ == Mode::kInert) return;
  AddAnnotation(&span_, key, value);
}

ScopedSpan::~ScopedSpan() {
  if (mode_ == Mode::kInert) return;
  ThreadTraceState& st = State();
  span_.end_us = TraceNowUs();
  if (mode_ == Mode::kActive) {
    span_.trace_id = st.trace_id;
    // Pop only our own frame: overflowed spans past kMaxDepth never
    // pushed, so the stack top must match before shrinking.
    if (st.depth > 0 && st.parent_stack[st.depth - 1] == span_.span_id) {
      --st.depth;
    }
    FlightRecorder::Global().Record(span_);
    if (st.capture && st.buffer.size() < kMaxSpansPerTrace) {
      st.buffer.push_back(span_);
    }
    return;
  }
  // kPending: the staged trace may have been flushed while this span was
  // open; it still lands in the flight recorder either way.
  FlightRecorder::Global().Record(span_);
  if (st.pending_valid && st.pending_trace_id == span_.trace_id &&
      st.pending_spans.size() < kMaxSpansPerTrace) {
    st.pending_spans.push_back(span_);
  }
}

#endif  // DSKETCH_NO_METRICS

// --- exporters --------------------------------------------------------

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendHex64(std::string* out, uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendSpanEvent(std::string* out, const Span& span, size_t tid,
                     bool* first) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("{\"name\":\"");
  out->append(span.name != nullptr ? span.name : "null");
  out->append("\",\"cat\":\"");
  out->append(TraceLayerName(span.layer));
  out->append("\",\"ph\":\"X\",\"ts\":");
  AppendU64(out, span.start_us);
  out->append(",\"dur\":");
  AppendU64(out, span.end_us >= span.start_us ? span.end_us - span.start_us
                                              : 0);
  out->append(",\"pid\":0,\"tid\":");
  AppendU64(out, tid);
  out->append(",\"args\":{\"trace_id\":\"");
  AppendHex64(out, span.trace_id);
  out->append("\",\"span\":");
  AppendU64(out, span.span_id);
  out->append(",\"parent\":");
  AppendU64(out, span.parent_id);
  const uint32_t n_ann = span.num_annotations <= Span::kMaxAnnotations
                             ? span.num_annotations
                             : static_cast<uint32_t>(Span::kMaxAnnotations);
  for (uint32_t i = 0; i < n_ann; ++i) {
    if (span.annotations[i].key == nullptr) continue;
    out->append(",\"");
    out->append(span.annotations[i].key);
    out->append("\":");
    AppendU64(out, span.annotations[i].value);
  }
  out->append("}}");
}

void AppendSpanText(std::string* out, const Span& span, const char* indent) {
  out->append(indent);
  out->append(TraceLayerName(span.layer));
  out->append(":");
  out->append(span.name != nullptr ? span.name : "null");
  out->append(" ");
  AppendU64(out, span.start_us);
  out->append("..");
  AppendU64(out, span.end_us);
  out->append("us (");
  AppendU64(out, span.end_us >= span.start_us ? span.end_us - span.start_us
                                              : 0);
  out->append("us) span=");
  AppendU64(out, span.span_id);
  out->append(" parent=");
  AppendU64(out, span.parent_id);
  const uint32_t n_ann = span.num_annotations <= Span::kMaxAnnotations
                             ? span.num_annotations
                             : static_cast<uint32_t>(Span::kMaxAnnotations);
  for (uint32_t i = 0; i < n_ann; ++i) {
    if (span.annotations[i].key == nullptr) continue;
    out->append(" ");
    out->append(span.annotations[i].key);
    out->append("=");
    AppendU64(out, span.annotations[i].value);
  }
  out->append("\n");
}

}  // namespace

std::string TraceToChromeJson(const std::vector<TraceRecord>& traces) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (size_t t = 0; t < traces.size(); ++t) {
    for (const Span& span : traces[t].spans) {
      AppendSpanEvent(&out, span, t, &first);
    }
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string TraceToText(const std::vector<TraceRecord>& traces) {
  std::string out;
  for (const TraceRecord& record : traces) {
    out.append("trace ");
    AppendHex64(&out, record.trace_id);
    out.append(" (");
    AppendU64(&out, record.spans.size());
    out.append(" spans)\n");
    for (const Span& span : record.spans) {
      AppendSpanText(&out, span, "  ");
    }
  }
  return out;
}

std::string SpansToText(const std::vector<Span>& spans) {
  std::string out;
  for (const Span& span : spans) {
    out.append("[");
    AppendHex64(&out, span.trace_id);
    out.append("] ");
    AppendSpanText(&out, span, "");
  }
  return out;
}

// --- fatal-path postmortem --------------------------------------------

namespace {

void FatalDump() {
  FlightRecorder::Global().DumpToStderr(kFatalDumpSpans);
}

void FatalSignalHandler(int signo) {
  FatalWriteStr("dsketch: fatal signal ");
  FatalWriteU64(static_cast<uint64_t>(signo));
  FatalWriteStr("\n");
  FatalDump();
  // Re-raise with the default disposition so the process still dies
  // with the original signal (core dumps, wait statuses stay honest).
  std::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void InstallTraceFatalHandlers() {
  static bool once = [] {
    internal::SetFatalHook(&FatalDump);
    for (int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
      struct sigaction sa;
      std::memset(&sa, 0, sizeof(sa));
      sa.sa_handler = &FatalSignalHandler;
      sigemptyset(&sa.sa_mask);
      sa.sa_flags = SA_RESETHAND;
      sigaction(signo, &sa, nullptr);
    }
    return true;
  }();
  (void)once;
}

}  // namespace obs
}  // namespace dsketch
