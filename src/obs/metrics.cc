#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/logging.h"

namespace dsketch {
namespace obs {

// --- histogram math ---------------------------------------------------

uint64_t HistogramSnapshot::BucketUpperBound(size_t i) {
  DSKETCH_DCHECK(i < kNumBuckets);
  // Buckets 0..62 bound at 2^0..2^62; the last bucket is +Inf.
  if (i >= kNumBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << i;
}

size_t HistogramSnapshot::BucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  // Smallest i with value <= 2^i is the bit width of value - 1.
  const size_t width =
      64 - static_cast<size_t>(__builtin_clzll(value - 1));
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower =
        i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1));
    // The overflow bucket has no finite bound; interpolate toward 2^63
    // (one doubling past the largest finite bound, like every other
    // bucket).
    const double upper = i == kNumBuckets - 1
                             ? static_cast<double>(uint64_t{1} << 62) * 2.0
                             : static_cast<double>(BucketUpperBound(i));
    const double into_bucket =
        target - static_cast<double>(cumulative - buckets[i]);
    const double fraction = std::min(
        1.0, std::max(0.0, into_bucket / static_cast<double>(buckets[i])));
    return lower + fraction * (upper - lower);
  }
  // Unreachable when count matches the buckets; a torn concurrent
  // snapshot can land here — answer the largest finite bound.
  return static_cast<double>(BucketUpperBound(kNumBuckets - 2));
}

HistogramSnapshot HistogramSnapshot::Since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  out.count = count - earlier.count;
  out.sum = sum - earlier.sum;
  return out;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

// --- registry ---------------------------------------------------------

struct MetricsRegistry::Entry {
  explicit Entry(MetricKind k) : kind(k) {}
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metric references handed to worker threads must
  // stay valid through static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(std::string_view name,
                                                  MetricKind kind) {
  DSKETCH_CHECK(!name.empty());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), std::make_unique<Entry>(kind))
             .first;
  }
  // One name, one kind: a collision is a naming bug at the call site,
  // not a runtime condition.
  DSKETCH_CHECK(it->second->kind == kind);
  return *it->second;
}

const MetricsRegistry::Entry* MetricsRegistry::FindEntry(
    std::string_view name, MetricKind kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second->kind != kind) return nullptr;
  return it->second.get();
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  return GetEntry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  return GetEntry(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  return GetEntry(name, MetricKind::kHistogram).histogram;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const Entry* e = FindEntry(name, MetricKind::kCounter);
  return e != nullptr ? &e->counter : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const Entry* e = FindEntry(name, MetricKind::kGauge);
  return e != nullptr ? &e->gauge : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const Entry* e = FindEntry(name, MetricKind::kHistogram);
  return e != nullptr ? &e->histogram : nullptr;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::vector<MetricValue> MetricsRegistry::Snapshot(
    std::string_view prefix) const {
  std::vector<MetricValue> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : metrics_) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    MetricValue v;
    v.name = name;
    v.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        v.counter = entry->counter.Value();
        break;
      case MetricKind::kGauge:
        v.gauge = entry->gauge.Value();
        break;
      case MetricKind::kHistogram:
        v.hist = entry->histogram.Snapshot();
        break;
    }
    out.push_back(std::move(v));
  }
  return out;
}

namespace {

// Everything up to the label set: the family a `# TYPE` line describes.
std::string_view FamilyOf(std::string_view name) {
  const size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

// Labels without the braces ("" when the name carries none).
std::string_view LabelsOf(std::string_view name) {
  const size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {};
  std::string_view rest = name.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  return rest;
}

void AppendUint(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendInt(std::string& out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

// One histogram sub-series line: family_suffix{labels,le="bound"} value.
void AppendHistLine(std::string& out, std::string_view family,
                    std::string_view suffix, std::string_view labels,
                    std::string_view le, uint64_t value) {
  out += family;
  out += suffix;
  if (!labels.empty() || !le.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !le.empty()) out += ',';
    if (!le.empty()) {
      out += "le=\"";
      out += le;
      out += '"';
    }
    out += '}';
  }
  out += ' ';
  AppendUint(out, value);
  out += '\n';
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string MetricsRegistry::DumpText(std::string_view prefix) const {
  const std::vector<MetricValue> values = Snapshot(prefix);
  std::string out;
  std::string last_family;
  for (const MetricValue& v : values) {
    const std::string_view family = FamilyOf(v.name);
    if (family != last_family) {
      out += "# TYPE ";
      out += family;
      out += ' ';
      out += KindName(v.kind);
      out += '\n';
      last_family.assign(family);
    }
    if (v.kind == MetricKind::kHistogram) {
      const std::string_view labels = LabelsOf(v.name);
      // Cumulative buckets; elide the all-zero head and tail (the
      // cumulative value of an elided line is implied by its
      // neighbors), always close with +Inf.
      size_t first = HistogramSnapshot::kNumBuckets;
      size_t last = 0;
      for (size_t i = 0; i < HistogramSnapshot::kNumBuckets - 1; ++i) {
        if (v.hist.buckets[i] == 0) continue;
        first = std::min(first, i);
        last = std::max(last, i);
      }
      uint64_t cumulative = 0;
      for (size_t i = 0; i < HistogramSnapshot::kNumBuckets - 1; ++i) {
        cumulative += v.hist.buckets[i];
        if (i < first || i > last) continue;
        char bound[24];
        std::snprintf(bound, sizeof(bound), "%" PRIu64,
                      HistogramSnapshot::BucketUpperBound(i));
        AppendHistLine(out, family, "_bucket", labels, bound, cumulative);
      }
      AppendHistLine(out, family, "_bucket", labels, "+Inf", v.hist.count);
      AppendHistLine(out, family, "_sum", labels, {}, v.hist.sum);
      AppendHistLine(out, family, "_count", labels, {}, v.hist.count);
    } else {
      out += v.name;
      out += ' ';
      if (v.kind == MetricKind::kCounter) {
        AppendUint(out, v.counter);
      } else {
        AppendInt(out, v.gauge);
      }
      out += '\n';
    }
  }
  return out;
}

std::string DumpMetricsText(std::string_view prefix) {
  return MetricsRegistry::Global().DumpText(prefix);
}

}  // namespace obs
}  // namespace dsketch
