// Runtime telemetry for the serving stack: hot-path-cheap counters,
// gauges, and latency histograms behind a process-wide named registry,
// with a Prometheus-style text exposition (DumpMetricsText, the METRICS
// opcode, and `dsketchd --metrics-interval-ms`).
//
// Cost model — safe to call from ingest workers and the serve loop:
//
//   * Counter/Gauge/Histogram updates are single relaxed atomic RMWs
//     (2-3 for a histogram record). No locks, no allocation, no fences.
//   * Registration (MetricsRegistry::Get*) takes a mutex and may
//     allocate; callers cache the returned reference (function-local
//     static or a stored pointer) so the hot path never re-registers.
//   * Snapshot/DumpText take the registry mutex only to walk the name
//     table; metric reads are relaxed loads, so a snapshot taken under
//     concurrent traffic is per-value atomic but not a consistent cut
//     (a histogram's count may briefly disagree with its bucket sum).
//
// Naming: the full exposition name — family plus an optional literal
// label set — IS the registry key, e.g.
//
//   dsketch_service_requests_total{opcode="query_sum"}
//
// Families group related series (everything up to '{'); the text dump
// emits one `# TYPE` line per family and scope filters select by family
// prefix (`dsketch_service_`, `dsketch_window_`, ...). Units ride the
// name suffix by convention: `_total` monotone counts, `_bytes_total`
// byte counts, `_us` microsecond histograms.
//
// Registering the same name twice with the same kind returns the same
// instance (so independent call sites may share a series); re-using a
// name with a different kind is a programmer error and CHECK-fails.
//
// -DDSKETCH_NO_METRICS=ON compiles every recording call to a no-op (the
// registry and exposition stay; all series read zero) for deployments
// that want the instrumented code paths byte-free. MetricsBuildMode()
// reports which build this is ("on"/"off") and travels in bench params.

#ifndef DSKETCH_OBS_METRICS_H_
#define DSKETCH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsketch {
namespace obs {

/// Series kinds a registry name can hold (part of the text exposition).
enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// "on" when this build records metrics, "off" under DSKETCH_NO_METRICS.
inline constexpr const char* MetricsBuildMode() {
#ifdef DSKETCH_NO_METRICS
  return "off";
#else
  return "on";
#endif
}

/// Monotone event count. Relaxed-atomic; safe from any thread.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
#ifndef DSKETCH_NO_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written signed value (queue depths, info flags, high-water
/// marks via RaiseTo). Relaxed-atomic; safe from any thread.
class Gauge {
 public:
  void Set(int64_t v) {
#ifndef DSKETCH_NO_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(int64_t delta) {
#ifndef DSKETCH_NO_METRICS
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  /// Monotone max: raises the gauge to `v` if `v` is larger (high-water
  /// marks under concurrent writers).
  void RaiseTo(int64_t v) {
#ifndef DSKETCH_NO_METRICS
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a histogram, with the percentile math the
/// benches and METRICS consumers share. Subtract two snapshots (Since)
/// to get the distribution of an interval.
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 64;

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Upper bound of bucket `i`: values v with
  /// BucketUpperBound(i-1) < v <= BucketUpperBound(i) land in bucket i.
  /// Bucket 0 holds [0, 1]; the last bucket is the +Inf overflow
  /// (anything above 2^62).
  static uint64_t BucketUpperBound(size_t i);

  /// Bucket index `value` records into (exact inverse of the bounds
  /// above): 0 for v <= 1, otherwise ceil(log2(v)) capped at the
  /// overflow bucket.
  static size_t BucketIndex(uint64_t value);

  /// Percentile estimate for p in [0, 100]: rank r = p/100 * count, the
  /// first bucket whose cumulative count reaches r answers, linearly
  /// interpolated between its bounds by the rank's position within the
  /// bucket. 0 when the histogram is empty; the overflow bucket
  /// interpolates toward 2^63. Exact when all samples share a bucket's
  /// upper bound; otherwise resolution is the power-of-two bucket width.
  double Percentile(double p) const;

  /// This snapshot minus `earlier` (per-bucket, count, sum): the
  /// distribution of everything recorded between the two.
  HistogramSnapshot Since(const HistogramSnapshot& earlier) const;
};

/// Power-of-two-bucket histogram of non-negative integer samples
/// (latencies in µs, sizes in bytes). 64 buckets with bounds
/// 1, 2, 4, ..., 2^62, +Inf; recording is 3 relaxed RMWs.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  void Record(uint64_t value) {
#ifndef DSKETCH_NO_METRICS
    buckets_[HistogramSnapshot::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Records the enclosed span's wall time (steady clock, µs) into a
/// histogram on destruction:
///
///   obs::ScopedTimer timer(SnapshotMergeHistogram());
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() { hist_->Record(ElapsedUs()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Microseconds elapsed since construction.
  uint64_t ElapsedUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// One read-side value from a registry walk.
struct MetricValue {
  std::string name;  ///< full registered name (family + labels)
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;       ///< kCounter
  int64_t gauge = 0;          ///< kGauge
  HistogramSnapshot hist;     ///< kHistogram
};

/// Named metric table. Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime (the global
/// registry never dies), so call sites cache it once and update
/// lock-free forever after.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem instruments into.
  static MetricsRegistry& Global();

  /// Registers (or finds) a series. CHECK-fails if `name` is empty or
  /// already registered with a different kind.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Read-only lookups: nullptr when `name` is absent or a different
  /// kind (tests and benches peek without creating).
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Values of every series whose name starts with `prefix` (empty =
  /// all), sorted by name.
  std::vector<MetricValue> Snapshot(std::string_view prefix = {}) const;

  /// Prometheus-style text exposition of Snapshot(prefix): one `# TYPE`
  /// line per family, histograms expanded to cumulative `_bucket{le=}` /
  /// `_sum` / `_count` series (all-zero leading/trailing buckets are
  /// elided; the `+Inf` bucket always emits). Deterministic: sorted by
  /// name, values rendered as integers.
  std::string DumpText(std::string_view prefix = {}) const;

  /// Registered series count (tests).
  size_t size() const;

 private:
  struct Entry;
  Entry& GetEntry(std::string_view name, MetricKind kind);
  const Entry* FindEntry(std::string_view name, MetricKind kind) const;

  mutable std::mutex mu_;
  // Stable addresses for the metric objects; sorted iteration gives the
  // exposition its deterministic order.
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> metrics_;
};

/// `MetricsRegistry::Global().DumpText(prefix)` — the embedding API
/// (also what the METRICS opcode and dsketchd's exposition thread
/// serve).
std::string DumpMetricsText(std::string_view prefix = {});

}  // namespace obs
}  // namespace dsketch

#endif  // DSKETCH_OBS_METRICS_H_
