// Read-replica ingestion front: a SketchSource over a frozen image
// (wire/frozen.h) that was mmap'd from disk or borrowed from a peer's
// SNAPSHOT response.
//
// Construction is O(1): the image is structurally vetted, never parsed.
// SketchQueryEngine recognizes this source and serves SUM / TOPK /
// GROUPBY straight off the image — zero decode, answers bit-identical
// to the thawed sketch. The SketchSource surface degrades to read-only:
// Ingest CHECK-fails (a replica never ingests; route writes to a
// writer node), RestoreSnapshot returns false, and SaveSnapshot returns
// the image itself, so replicas re-serve their snapshot for free.
//
// View() is the compatibility escape hatch for code that needs a live
// sketch: it thaws once (O(n)) and caches. Thaw CHECK-fails on images
// whose *content* is malformed (structural vetting cannot see that);
// servers exposed to untrusted images call Validate() once instead and
// refuse the paths that would thaw.

#ifndef DSKETCH_QUERY_FROZEN_SOURCE_H_
#define DSKETCH_QUERY_FROZEN_SOURCE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/serialization.h"
#include "core/sketch_entry.h"
#include "query/sketch_source.h"
#include "util/logging.h"
#include "util/mmap_array.h"
#include "wire/frozen.h"

namespace dsketch {

/// SketchSource over a frozen image (borrowed, adopted, or mmap'd).
class FrozenSketchSource : public SketchSource {
 public:
  /// Over borrowed bytes, which must outlive the source. O(1) vetting
  /// only; nullopt when the bytes are not a structurally valid image.
  static std::optional<FrozenSketchSource> FromBytes(std::string_view bytes,
                                                     uint64_t seed = 1) {
    std::optional<wire::FrozenView> view = wire::FrozenView::Vet(bytes);
    if (!view.has_value()) return std::nullopt;
    FrozenSketchSource out;
    out.view_ = view;
    out.seed_ = seed;
    return out;
  }

  /// Adopts a copy of the blob (e.g. a SNAPSHOT response body).
  static std::optional<FrozenSketchSource> FromBlob(std::string blob,
                                                    uint64_t seed = 1) {
    auto owned = std::make_shared<std::string>(std::move(blob));
    std::optional<FrozenSketchSource> out = FromBytes(*owned, seed);
    if (out.has_value()) out->owned_blob_ = std::move(owned);
    return out;
  }

  /// Maps `path` (util/mmap_array.h MappedFile: real mmap on POSIX,
  /// read-into-heap elsewhere) and vets the image. The mapping is owned
  /// by the source, so the frozen file serves straight off the page
  /// cache for the source's lifetime.
  static std::optional<FrozenSketchSource> FromFile(const std::string& path,
                                                    uint64_t seed = 1) {
    std::optional<MappedFile> file = MapFile(path);
    if (!file.has_value()) return std::nullopt;
    auto owned = std::make_shared<MappedFile>(std::move(*file));
    std::optional<FrozenSketchSource> out = FromBytes(owned->bytes(), seed);
    if (out.has_value()) out->file_ = std::move(owned);
    return out;
  }

  /// The vetted zero-copy view the engine queries against.
  const wire::FrozenView& frozen() const { return *view_; }

  /// True when the image is served from an actual file mapping.
  bool backed_by_mmap() const {
    return file_ != nullptr && file_->backed_by_mmap();
  }

  /// Deep O(n) content validation (everything ThawFrozen checks) without
  /// keeping the thawed sketch. Servers fed untrusted images call this
  /// once at startup so the View() escape hatch can never abort later.
  bool Validate() const {
    return ThawFrozen(view_->bytes(), seed_).has_value();
  }

  /// Replicas are read-only: rows belong on a writer node.
  void Ingest(Span<const uint64_t> items) override {
    (void)items;
    DSKETCH_CHECK(false && "FrozenSketchSource is read-only");
  }

  /// Thaws once (O(n)) and caches — the compatibility path for code
  /// that needs a live sketch (e.g. re-encoding as v2). CHECK-fails on
  /// content-malformed images; see Validate().
  const UnbiasedSpaceSaving& View() override {
    if (thawed_ == nullptr) {
      std::optional<UnbiasedSpaceSaving> thawed =
          ThawFrozen(view_->bytes(), seed_);
      DSKETCH_CHECK(thawed.has_value());
      thawed_ = std::make_shared<UnbiasedSpaceSaving>(std::move(*thawed));
    }
    return *thawed_;
  }

  /// The snapshot of a frozen replica is the image itself (no re-encode).
  std::string SaveSnapshot() override { return std::string(view_->bytes()); }

  /// Read-only: nothing restores into a frozen view.
  bool RestoreSnapshot(std::string_view bytes) override {
    (void)bytes;
    return false;
  }

 private:
  FrozenSketchSource() = default;

  // Always engaged once a factory succeeds (optional because only Vet
  // can produce a FrozenView).
  std::optional<wire::FrozenView> view_;
  uint64_t seed_ = 1;
  // Exactly one of these owns the bytes; both empty for borrowed bytes.
  // shared_ptr keeps the source copyable (the view is just a pointer).
  std::shared_ptr<const std::string> owned_blob_;
  std::shared_ptr<const MappedFile> file_;
  std::shared_ptr<UnbiasedSpaceSaving> thawed_;
};

/// Top-k of a frozen image without decoding: the image stores entries in
/// canonical descending order, so the answer is its first k records —
/// bit-identical to TopK(thawed_sketch, k). k must be > 0.
inline std::vector<SketchEntry> FrozenTopK(const wire::FrozenView& view,
                                           size_t k) {
  DSKETCH_CHECK(k > 0);
  const size_t n = static_cast<size_t>(view.entry_count());
  std::vector<SketchEntry> out;
  out.reserve(k < n ? k : n);
  for (size_t i = 0; i < n && i < k; ++i) {
    const wire::FrozenEntry e = view.entry(i);
    out.push_back(SketchEntry{e.item, e.count});
  }
  return out;
}

}  // namespace dsketch

#endif  // DSKETCH_QUERY_FROZEN_SOURCE_H_
