// Dimension table mapping a dense unit-of-analysis id to its categorical
// attribute tuple. This is the "dimensions" side of the paper's motivating
// query (SELECT sum(metric) ... WHERE filters GROUP BY dimensions): the
// sketch stores unit ids; filters and group-bys are evaluated against this
// table at query time.

#ifndef DSKETCH_QUERY_ATTRIBUTE_TABLE_H_
#define DSKETCH_QUERY_ATTRIBUTE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsketch {

/// Dense (item id 0..n-1) table of `num_dims` categorical attributes.
class AttributeTable {
 public:
  /// Empty table with `num_dims` dimensions.
  explicit AttributeTable(size_t num_dims);

  /// Appends one item's attribute tuple (size must equal num_dims());
  /// items receive consecutive ids starting at 0.
  uint64_t AddItem(const std::vector<uint32_t>& attrs);

  /// Attribute of `item` in dimension `dim`.
  uint32_t Get(uint64_t item, size_t dim) const;

  /// Number of dimensions.
  size_t num_dims() const { return num_dims_; }

  /// Number of items.
  size_t num_items() const { return flat_.size() / num_dims_; }

  /// Largest attribute value in `dim` plus one (its cardinality bound).
  uint32_t DimCardinality(size_t dim) const;

 private:
  size_t num_dims_;
  std::vector<uint32_t> flat_;  // row-major, num_items x num_dims
};

}  // namespace dsketch

#endif  // DSKETCH_QUERY_ATTRIBUTE_TABLE_H_
