// Query engines answering the paper's motivating SQL shape
//
//   SELECT sum(metric) FROM table WHERE filters GROUP BY dimensions
//
// over (a) an Unbiased Space Saving sketch — approximate, with variance
// and confidence intervals — and (b) an ExactAggregator — ground truth.
// Group-by keys are the attribute value (1-way) or a packed pair of
// attribute values (2-way), matching the marginal queries of Fig. 6.

#ifndef DSKETCH_QUERY_ENGINE_H_
#define DSKETCH_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "query/attribute_table.h"
#include "query/exact_aggregator.h"
#include "query/frozen_source.h"
#include "query/predicate.h"
#include "query/sketch_source.h"
#include "query/windowed_source.h"
#include "wire/frozen.h"

namespace dsketch {

/// Packs two 32-bit group keys into one 64-bit key (d1 high, d2 low).
inline uint64_t PackGroupKey(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// Approximate engine over a sketch plus dimension table.
class SketchQueryEngine {
 public:
  /// Both pointers must outlive the engine.
  SketchQueryEngine(const UnbiasedSpaceSaving* sketch,
                    const AttributeTable* attrs);

  /// Engine over any ingestion source (plain or sharded); queries run
  /// against source->View(), so they always see all flushed rows. Both
  /// pointers must outlive the engine.
  SketchQueryEngine(SketchSource* source, const AttributeTable* attrs);

  /// Engine over a windowed source: plain queries see the full-window
  /// merge (the source's View), and the *Window variants below scope to
  /// the newest last_k epochs. Both pointers must outlive the engine.
  SketchQueryEngine(WindowedSketchSource* source, const AttributeTable* attrs);

  /// Engine over a frozen image (read replica): Sum / GroupBy run
  /// straight off the image — zero decode, answers bit-identical to an
  /// engine over the thawed sketch. Both pointers must outlive the
  /// engine.
  SketchQueryEngine(FrozenSketchSource* source, const AttributeTable* attrs);

  /// SELECT sum(1) WHERE `where`.
  SubsetSumEstimate Sum(const Predicate& where) const;

  /// SELECT sum(1) GROUP BY dim WHERE `where`; key = attribute value.
  std::unordered_map<uint32_t, SubsetSumEstimate> GroupBy1(
      size_t dim, const Predicate& where = Predicate()) const;

  /// Two-dimensional group-by; key = PackGroupKey(attr[d1], attr[d2]).
  std::unordered_map<uint64_t, SubsetSumEstimate> GroupBy2(
      size_t d1, size_t d2, const Predicate& where = Predicate()) const;

  /// SELECT sum(1) WHERE `where` over the newest `last_k` epochs
  /// (0 = the full window). Requires the windowed constructor.
  SubsetSumEstimate SumWindow(size_t last_k,
                              const Predicate& where = Predicate()) const;

  /// 1-way group-by over the newest `last_k` epochs.
  std::unordered_map<uint32_t, SubsetSumEstimate> GroupBy1Window(
      size_t last_k, size_t dim, const Predicate& where = Predicate()) const;

  /// 2-way group-by over the newest `last_k` epochs.
  std::unordered_map<uint64_t, SubsetSumEstimate> GroupBy2Window(
      size_t last_k, size_t d1, size_t d2,
      const Predicate& where = Predicate()) const;

  /// True when the engine was built over a windowed source (the
  /// *Window queries are available).
  bool windowed() const { return window_source_ != nullptr; }

  /// Serializes the engine's sketch state (wire format, current
  /// version); restorable into another engine with RestoreState.
  std::string SaveState() const;

  /// Absorbs saved state into the engine's source (any supported wire
  /// version). Returns false when the engine wraps a borrowed const
  /// sketch (no source to restore into) or the bytes are malformed.
  bool RestoreState(std::string_view bytes);

 private:
  // The sketch queries run against: `sketch_` when constructed from a
  // plain sketch, otherwise `source_->View()` resolved per query.
  const UnbiasedSpaceSaving& QuerySketch() const;

  // The last_k-scoped merge (CHECKs that the engine is windowed).
  const UnbiasedSpaceSaving& WindowSketch(size_t last_k) const;

  // Shared group-by body over an explicit sketch view.
  template <typename KeyFn>
  std::unordered_map<uint64_t, SubsetSumEstimate> GroupByImpl(
      const UnbiasedSpaceSaving& sketch, const Predicate& where,
      KeyFn&& key_of) const;

  // GroupByImpl mirrored over the frozen image (same accumulation, same
  // variance arithmetic, entry-for-entry the same iteration order), so
  // frozen answers are bit-identical to thawed ones.
  template <typename KeyFn>
  std::unordered_map<uint64_t, SubsetSumEstimate> FrozenGroupByImpl(
      const Predicate& where, KeyFn&& key_of) const;

  const UnbiasedSpaceSaving* sketch_;
  SketchSource* source_;
  WindowedSketchSource* window_source_;
  // Set for the frozen constructor: Sum / GroupBy bypass QuerySketch()
  // and read the image directly.
  const wire::FrozenView* frozen_;
  const AttributeTable* attrs_;
};

/// Exact engine with the same query surface (returns true sums).
class ExactQueryEngine {
 public:
  /// Both pointers must outlive the engine.
  ExactQueryEngine(const ExactAggregator* agg, const AttributeTable* attrs);

  /// Exact SELECT sum(1) WHERE `where`.
  int64_t Sum(const Predicate& where) const;

  /// Exact 1-way group-by.
  std::unordered_map<uint32_t, int64_t> GroupBy1(
      size_t dim, const Predicate& where = Predicate()) const;

  /// Exact 2-way group-by (keys packed as in PackGroupKey).
  std::unordered_map<uint64_t, int64_t> GroupBy2(
      size_t d1, size_t d2, const Predicate& where = Predicate()) const;

 private:
  const ExactAggregator* agg_;
  const AttributeTable* attrs_;
};

}  // namespace dsketch

#endif  // DSKETCH_QUERY_ENGINE_H_
