#include "query/predicate.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

Predicate& Predicate::WhereEq(size_t dim, uint32_t value) {
  conditions_.push_back({dim, {value}});
  return *this;
}

Predicate& Predicate::WhereIn(size_t dim, std::vector<uint32_t> values) {
  DSKETCH_CHECK(!values.empty());
  std::sort(values.begin(), values.end());
  conditions_.push_back({dim, std::move(values)});
  return *this;
}

bool Predicate::Matches(const AttributeTable& table, uint64_t item) const {
  // Items the table does not describe satisfy no condition (they can
  // reach a query when sketch ids arrive from remote producers ahead of
  // the dimension load); the empty predicate still matches them.
  if (!conditions_.empty() && item >= table.num_items()) return false;
  for (const Condition& c : conditions_) {
    uint32_t v = table.Get(item, c.dim);
    if (c.values.size() == 1) {
      if (v != c.values[0]) return false;
    } else if (!std::binary_search(c.values.begin(), c.values.end(), v)) {
      return false;
    }
  }
  return true;
}

}  // namespace dsketch
