#include "query/attribute_table.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

AttributeTable::AttributeTable(size_t num_dims) : num_dims_(num_dims) {
  DSKETCH_CHECK(num_dims > 0);
}

uint64_t AttributeTable::AddItem(const std::vector<uint32_t>& attrs) {
  DSKETCH_CHECK(attrs.size() == num_dims_);
  uint64_t id = num_items();
  flat_.insert(flat_.end(), attrs.begin(), attrs.end());
  return id;
}

uint32_t AttributeTable::Get(uint64_t item, size_t dim) const {
  DSKETCH_DCHECK(item < num_items() && dim < num_dims_);
  return flat_[item * num_dims_ + dim];
}

uint32_t AttributeTable::DimCardinality(size_t dim) const {
  DSKETCH_CHECK(dim < num_dims_);
  uint32_t max_val = 0;
  for (size_t i = dim; i < flat_.size(); i += num_dims_) {
    max_val = std::max(max_val, flat_[i]);
  }
  return flat_.empty() ? 0 : max_val + 1;
}

}  // namespace dsketch
