// Filter predicates over attribute tuples: conjunctions of per-dimension
// equality / set-membership conditions — the arbitrary "WHERE filters" of
// the disaggregated subset sum problem.

#ifndef DSKETCH_QUERY_PREDICATE_H_
#define DSKETCH_QUERY_PREDICATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/attribute_table.h"

namespace dsketch {

/// Conjunctive filter over dimensions of an AttributeTable.
class Predicate {
 public:
  /// The always-true predicate.
  Predicate() = default;

  /// Adds the condition attr[dim] == value; returns *this for chaining.
  Predicate& WhereEq(size_t dim, uint32_t value);

  /// Adds the condition attr[dim] IN values; returns *this for chaining.
  Predicate& WhereIn(size_t dim, std::vector<uint32_t> values);

  /// True if `item`'s attributes satisfy every condition. Items beyond
  /// the table (unknown unit ids, e.g. from remote producers) satisfy no
  /// condition; the empty predicate matches them regardless.
  bool Matches(const AttributeTable& table, uint64_t item) const;

  /// Number of conditions.
  size_t num_conditions() const { return conditions_.size(); }

 private:
  struct Condition {
    size_t dim;
    std::vector<uint32_t> values;  // sorted for binary search
  };
  std::vector<Condition> conditions_;
};

}  // namespace dsketch

#endif  // DSKETCH_QUERY_PREDICATE_H_
