#include "query/engine.h"

#include <algorithm>

#include "core/serialization.h"
#include "util/logging.h"

namespace dsketch {

SketchQueryEngine::SketchQueryEngine(const UnbiasedSpaceSaving* sketch,
                                     const AttributeTable* attrs)
    : sketch_(sketch), source_(nullptr), attrs_(attrs) {
  DSKETCH_CHECK(sketch != nullptr && attrs != nullptr);
}

SketchQueryEngine::SketchQueryEngine(SketchSource* source,
                                     const AttributeTable* attrs)
    : sketch_(nullptr), source_(source), attrs_(attrs) {
  DSKETCH_CHECK(source != nullptr && attrs != nullptr);
}

const UnbiasedSpaceSaving& SketchQueryEngine::QuerySketch() const {
  return source_ != nullptr ? source_->View() : *sketch_;
}

std::string SketchQueryEngine::SaveState() const {
  return source_ != nullptr ? source_->SaveSnapshot() : Serialize(*sketch_);
}

bool SketchQueryEngine::RestoreState(std::string_view bytes) {
  return source_ != nullptr && source_->RestoreSnapshot(bytes);
}

SubsetSumEstimate SketchQueryEngine::Sum(const Predicate& where) const {
  return EstimateSubsetSum(QuerySketch(), [&](uint64_t item) {
    return where.Matches(*attrs_, item);
  });
}

std::unordered_map<uint32_t, SubsetSumEstimate> SketchQueryEngine::GroupBy1(
    size_t dim, const Predicate& where) const {
  struct Acc {
    double sum = 0.0;
    uint64_t items = 0;
  };
  const UnbiasedSpaceSaving& sketch = QuerySketch();
  std::unordered_map<uint32_t, Acc> acc;
  for (const SketchEntry& e : sketch.Entries()) {
    // Items the table does not describe belong to no group.
    if (e.item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, e.item)) continue;
    Acc& a = acc[attrs_->Get(e.item, dim)];
    a.sum += static_cast<double>(e.count);
    ++a.items;
  }
  double nmin = static_cast<double>(sketch.MinCount());
  std::unordered_map<uint32_t, SubsetSumEstimate> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    SubsetSumEstimate est;
    est.estimate = a.sum;
    est.items_in_sample = a.items;
    est.variance =
        nmin * nmin * static_cast<double>(std::max<uint64_t>(1, a.items));
    out.emplace(key, est);
  }
  return out;
}

std::unordered_map<uint64_t, SubsetSumEstimate> SketchQueryEngine::GroupBy2(
    size_t d1, size_t d2, const Predicate& where) const {
  struct Acc {
    double sum = 0.0;
    uint64_t items = 0;
  };
  const UnbiasedSpaceSaving& sketch = QuerySketch();
  std::unordered_map<uint64_t, Acc> acc;
  for (const SketchEntry& e : sketch.Entries()) {
    if (e.item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, e.item)) continue;
    uint64_t key = PackGroupKey(attrs_->Get(e.item, d1),
                                attrs_->Get(e.item, d2));
    Acc& a = acc[key];
    a.sum += static_cast<double>(e.count);
    ++a.items;
  }
  double nmin = static_cast<double>(sketch.MinCount());
  std::unordered_map<uint64_t, SubsetSumEstimate> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    SubsetSumEstimate est;
    est.estimate = a.sum;
    est.items_in_sample = a.items;
    est.variance =
        nmin * nmin * static_cast<double>(std::max<uint64_t>(1, a.items));
    out.emplace(key, est);
  }
  return out;
}

ExactQueryEngine::ExactQueryEngine(const ExactAggregator* agg,
                                   const AttributeTable* attrs)
    : agg_(agg), attrs_(attrs) {
  DSKETCH_CHECK(agg != nullptr && attrs != nullptr);
}

int64_t ExactQueryEngine::Sum(const Predicate& where) const {
  int64_t sum = 0;
  for (const auto& [item, count] : agg_->counts()) {
    if (where.Matches(*attrs_, item)) sum += count;
  }
  return sum;
}

std::unordered_map<uint32_t, int64_t> ExactQueryEngine::GroupBy1(
    size_t dim, const Predicate& where) const {
  std::unordered_map<uint32_t, int64_t> out;
  for (const auto& [item, count] : agg_->counts()) {
    if (item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, item)) continue;
    out[attrs_->Get(item, dim)] += count;
  }
  return out;
}

std::unordered_map<uint64_t, int64_t> ExactQueryEngine::GroupBy2(
    size_t d1, size_t d2, const Predicate& where) const {
  std::unordered_map<uint64_t, int64_t> out;
  for (const auto& [item, count] : agg_->counts()) {
    if (item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, item)) continue;
    out[PackGroupKey(attrs_->Get(item, d1), attrs_->Get(item, d2))] += count;
  }
  return out;
}

}  // namespace dsketch
