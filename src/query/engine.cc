#include "query/engine.h"

#include <algorithm>

#include "core/serialization.h"
#include "util/logging.h"

namespace dsketch {

SketchQueryEngine::SketchQueryEngine(const UnbiasedSpaceSaving* sketch,
                                     const AttributeTable* attrs)
    : sketch_(sketch), source_(nullptr), window_source_(nullptr),
      frozen_(nullptr), attrs_(attrs) {
  DSKETCH_CHECK(sketch != nullptr && attrs != nullptr);
}

SketchQueryEngine::SketchQueryEngine(SketchSource* source,
                                     const AttributeTable* attrs)
    : sketch_(nullptr), source_(source), window_source_(nullptr),
      frozen_(nullptr), attrs_(attrs) {
  DSKETCH_CHECK(source != nullptr && attrs != nullptr);
}

SketchQueryEngine::SketchQueryEngine(WindowedSketchSource* source,
                                     const AttributeTable* attrs)
    : sketch_(nullptr), source_(source), window_source_(source),
      frozen_(nullptr), attrs_(attrs) {
  DSKETCH_CHECK(source != nullptr && attrs != nullptr);
}

SketchQueryEngine::SketchQueryEngine(FrozenSketchSource* source,
                                     const AttributeTable* attrs)
    : sketch_(nullptr), source_(source), window_source_(nullptr),
      frozen_(source != nullptr ? &source->frozen() : nullptr),
      attrs_(attrs) {
  DSKETCH_CHECK(source != nullptr && attrs != nullptr);
}

const UnbiasedSpaceSaving& SketchQueryEngine::QuerySketch() const {
  return source_ != nullptr ? source_->View() : *sketch_;
}

const UnbiasedSpaceSaving& SketchQueryEngine::WindowSketch(
    size_t last_k) const {
  DSKETCH_CHECK(window_source_ != nullptr);
  return window_source_->WindowView(last_k);
}

std::string SketchQueryEngine::SaveState() const {
  return source_ != nullptr ? source_->SaveSnapshot() : Serialize(*sketch_);
}

bool SketchQueryEngine::RestoreState(std::string_view bytes) {
  return source_ != nullptr && source_->RestoreSnapshot(bytes);
}

SubsetSumEstimate SketchQueryEngine::Sum(const Predicate& where) const {
  if (frozen_ != nullptr) {
    // Zero-decode: FrozenSubsetSum walks the image in entry order with
    // the same accumulation EstimateSubsetSum uses over Entries(), so
    // the answer is bit-identical to the thawed path below.
    const wire::FrozenSumResult r =
        wire::FrozenSubsetSum(*frozen_, [&](uint64_t item) {
          return where.Matches(*attrs_, item);
        });
    SubsetSumEstimate est;
    est.estimate = r.estimate;
    est.variance = r.variance;
    est.items_in_sample = r.items_in_sample;
    return est;
  }
  return EstimateSubsetSum(QuerySketch(), [&](uint64_t item) {
    return where.Matches(*attrs_, item);
  });
}

template <typename KeyFn>
std::unordered_map<uint64_t, SubsetSumEstimate> SketchQueryEngine::GroupByImpl(
    const UnbiasedSpaceSaving& sketch, const Predicate& where,
    KeyFn&& key_of) const {
  struct Acc {
    double sum = 0.0;
    uint64_t items = 0;
  };
  std::unordered_map<uint64_t, Acc> acc;
  for (const SketchEntry& e : sketch.Entries()) {
    // Items the table does not describe belong to no group.
    if (e.item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, e.item)) continue;
    Acc& a = acc[key_of(e.item)];
    a.sum += static_cast<double>(e.count);
    ++a.items;
  }
  double nmin = static_cast<double>(sketch.MinCount());
  std::unordered_map<uint64_t, SubsetSumEstimate> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    SubsetSumEstimate est;
    est.estimate = a.sum;
    est.items_in_sample = a.items;
    est.variance =
        nmin * nmin * static_cast<double>(std::max<uint64_t>(1, a.items));
    out.emplace(key, est);
  }
  return out;
}

template <typename KeyFn>
std::unordered_map<uint64_t, SubsetSumEstimate>
SketchQueryEngine::FrozenGroupByImpl(const Predicate& where,
                                     KeyFn&& key_of) const {
  struct Acc {
    double sum = 0.0;
    uint64_t items = 0;
  };
  std::unordered_map<uint64_t, Acc> acc;
  const size_t n = static_cast<size_t>(frozen_->entry_count());
  for (size_t i = 0; i < n; ++i) {
    const wire::FrozenEntry e = frozen_->entry(i);
    // Items the table does not describe belong to no group.
    if (e.item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, e.item)) continue;
    Acc& a = acc[key_of(e.item)];
    a.sum += static_cast<double>(e.count);
    ++a.items;
  }
  double nmin = static_cast<double>(frozen_->min_count());
  std::unordered_map<uint64_t, SubsetSumEstimate> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    SubsetSumEstimate est;
    est.estimate = a.sum;
    est.items_in_sample = a.items;
    est.variance =
        nmin * nmin * static_cast<double>(std::max<uint64_t>(1, a.items));
    out.emplace(key, est);
  }
  return out;
}

namespace {

// GroupBy1's public key type is the attribute value itself.
std::unordered_map<uint32_t, SubsetSumEstimate> NarrowKeys(
    const std::unordered_map<uint64_t, SubsetSumEstimate>& wide) {
  std::unordered_map<uint32_t, SubsetSumEstimate> out;
  out.reserve(wide.size());
  for (const auto& [key, est] : wide) {
    out.emplace(static_cast<uint32_t>(key), est);
  }
  return out;
}

}  // namespace

std::unordered_map<uint32_t, SubsetSumEstimate> SketchQueryEngine::GroupBy1(
    size_t dim, const Predicate& where) const {
  auto key_of = [&](uint64_t item) {
    return static_cast<uint64_t>(attrs_->Get(item, dim));
  };
  if (frozen_ != nullptr) {
    return NarrowKeys(FrozenGroupByImpl(where, key_of));
  }
  return NarrowKeys(GroupByImpl(QuerySketch(), where, key_of));
}

std::unordered_map<uint64_t, SubsetSumEstimate> SketchQueryEngine::GroupBy2(
    size_t d1, size_t d2, const Predicate& where) const {
  auto key_of = [&](uint64_t item) {
    return PackGroupKey(attrs_->Get(item, d1), attrs_->Get(item, d2));
  };
  if (frozen_ != nullptr) return FrozenGroupByImpl(where, key_of);
  return GroupByImpl(QuerySketch(), where, key_of);
}

SubsetSumEstimate SketchQueryEngine::SumWindow(size_t last_k,
                                               const Predicate& where) const {
  return EstimateSubsetSum(WindowSketch(last_k), [&](uint64_t item) {
    return where.Matches(*attrs_, item);
  });
}

std::unordered_map<uint32_t, SubsetSumEstimate>
SketchQueryEngine::GroupBy1Window(size_t last_k, size_t dim,
                                  const Predicate& where) const {
  return NarrowKeys(
      GroupByImpl(WindowSketch(last_k), where, [&](uint64_t item) {
        return static_cast<uint64_t>(attrs_->Get(item, dim));
      }));
}

std::unordered_map<uint64_t, SubsetSumEstimate>
SketchQueryEngine::GroupBy2Window(size_t last_k, size_t d1, size_t d2,
                                  const Predicate& where) const {
  return GroupByImpl(WindowSketch(last_k), where, [&](uint64_t item) {
    return PackGroupKey(attrs_->Get(item, d1), attrs_->Get(item, d2));
  });
}

ExactQueryEngine::ExactQueryEngine(const ExactAggregator* agg,
                                   const AttributeTable* attrs)
    : agg_(agg), attrs_(attrs) {
  DSKETCH_CHECK(agg != nullptr && attrs != nullptr);
}

int64_t ExactQueryEngine::Sum(const Predicate& where) const {
  int64_t sum = 0;
  for (const auto& [item, count] : agg_->counts()) {
    if (where.Matches(*attrs_, item)) sum += count;
  }
  return sum;
}

std::unordered_map<uint32_t, int64_t> ExactQueryEngine::GroupBy1(
    size_t dim, const Predicate& where) const {
  std::unordered_map<uint32_t, int64_t> out;
  for (const auto& [item, count] : agg_->counts()) {
    if (item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, item)) continue;
    out[attrs_->Get(item, dim)] += count;
  }
  return out;
}

std::unordered_map<uint64_t, int64_t> ExactQueryEngine::GroupBy2(
    size_t d1, size_t d2, const Predicate& where) const {
  std::unordered_map<uint64_t, int64_t> out;
  for (const auto& [item, count] : agg_->counts()) {
    if (item >= attrs_->num_items()) continue;
    if (!where.Matches(*attrs_, item)) continue;
    out[PackGroupKey(attrs_->Get(item, d1), attrs_->Get(item, d2))] += count;
  }
  return out;
}

}  // namespace dsketch
