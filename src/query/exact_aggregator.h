// Exact per-unit pre-aggregation: the expensive baseline the paper's
// disaggregated sketches avoid. Used as ground truth in every experiment
// and as the input required by the pre-aggregated samplers (priority
// sampling).

#ifndef DSKETCH_QUERY_EXACT_AGGREGATOR_H_
#define DSKETCH_QUERY_EXACT_AGGREGATOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sketch_entry.h"

namespace dsketch {

/// Exact item -> count aggregation over a disaggregated stream.
class ExactAggregator {
 public:
  ExactAggregator() = default;

  /// Processes one row with label `item` and optional weight.
  void Update(uint64_t item, int64_t count = 1);

  /// True count of `item` (0 if never seen).
  int64_t Count(uint64_t item) const;

  /// Total rows (sum of weights) processed.
  int64_t TotalCount() const { return total_; }

  /// Number of distinct items.
  size_t size() const { return counts_.size(); }

  /// All (item, count) pairs, unordered.
  std::vector<SketchEntry> Entries() const;

  /// Read access for single-pass consumers.
  const std::unordered_map<uint64_t, int64_t>& counts() const {
    return counts_;
  }

 private:
  std::unordered_map<uint64_t, int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_QUERY_EXACT_AGGREGATOR_H_
