#include "query/exact_aggregator.h"

#include "util/logging.h"

namespace dsketch {

void ExactAggregator::Update(uint64_t item, int64_t count) {
  DSKETCH_CHECK(count > 0);
  counts_[item] += count;
  total_ += count;
}

int64_t ExactAggregator::Count(uint64_t item) const {
  auto it = counts_.find(item);
  return it != counts_.end() ? it->second : 0;
}

std::vector<SketchEntry> ExactAggregator::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(counts_.size());
  for (const auto& [item, count] : counts_) out.push_back({item, count});
  return out;
}

}  // namespace dsketch
