// Windowed ingestion source for the query engine: epoch-stamped rows
// fan out across a ShardedWindowedSketch, and queries see either the
// full-window merge (the SketchSource::View contract, so every existing
// estimator works over "the last W epochs" unchanged) or an explicit
// last-k window / decayed view through the windowed accessors.
//
// Epoch consistency: the producer-side epoch (advanced by Advance, by
// the stamps fed to IngestEpoch, or by restoring a peer that is ahead)
// is authoritative. The merged snapshot is re-aligned to it after every
// merge — a shard that saw no rows for recent epochs cannot drag the
// merged ring backwards — so window queries always cut at the epoch the
// producer last declared.
//
// Snapshots: SaveSnapshot ships the full epoch ring as the
// window-snapshot wire kind (window/window_wire.h) and RestoreSnapshot
// absorbs a peer's ring into the shard fleet, merging slot-by-epoch
// with locally ingested rows — windowed state replicates exactly like
// flat sketches do.

#ifndef DSKETCH_QUERY_WINDOWED_SOURCE_H_
#define DSKETCH_QUERY_WINDOWED_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "query/sketch_source.h"
#include "window/sharded_windowed.h"
#include "window/windowed_sketch.h"

namespace dsketch {

/// Sharded windowed source. Single producer, like every source.
class WindowedSketchSource : public SketchSource {
 public:
  /// `shard` configures the fleet, `window` the per-shard epoch rings;
  /// View()/window queries merge at `window.merged_capacity` bins.
  WindowedSketchSource(const ShardedSketchOptions& shard,
                       const WindowedSketchOptions& window)
      : sharded_(MakeShardedWindowed(shard, window)),
        window_(window),
        seed_(shard.seed) {}

  /// Rows stamped with the current producer epoch.
  void Ingest(Span<const uint64_t> items) override {
    staging_.clear();
    staging_.reserve(items.size());
    for (uint64_t item : items) staging_.push_back({item, epoch_});
    sharded_->Ingest(Span<const EpochRow>(staging_.data(), staging_.size()));
    MarkDirty();
  }

  /// Explicitly stamped rows; stamps ahead of the producer epoch
  /// advance it (stale stamps are credited to the epoch that is open
  /// when their shard applies them — see WindowedSketch::UpdateBatch).
  /// Stamps are bounded by kMaxEpochStamp, checked here at the call
  /// that introduces them — a stamp past the cap would otherwise only
  /// surface as a serialization CHECK at the next SaveSnapshot.
  void IngestEpoch(Span<const EpochRow> rows) {
    for (const EpochRow& row : rows) {
      if (row.epoch > epoch_) {
        DSKETCH_CHECK(row.epoch <= kMaxEpochStamp);
        epoch_ = row.epoch;
      }
    }
    sharded_->Ingest(rows);
    MarkDirty();
  }

  /// Closes the producer epoch and opens `epoch` (monotone; no-op when
  /// not ahead, bounded by kMaxEpochStamp like every stamp). Reaches
  /// the shards with the next stamped batch, and the merged view is
  /// re-aligned to it regardless.
  void Advance(uint64_t epoch) {
    DSKETCH_CHECK(epoch <= kMaxEpochStamp);
    if (epoch > epoch_) {
      epoch_ = epoch;
      MarkDirty();
    }
  }

  void Flush() override { sharded_->Flush(); }

  /// Merged view over the full window (the ring's W newest epochs).
  const UnbiasedSpaceSaving& View() override {
    return WindowView(/*last_k=*/0);
  }

  /// Merged view over the newest min(last_k, ring) epochs (0 = full
  /// window). The two caches are keyed by the *caller's* last_k — a
  /// non-zero last_k never aliases the full-window cache, even while
  /// the ring is still shorter than last_k, so a fixed last_k keeps
  /// meaning "the newest k epochs" as the ring fills past k. One
  /// partial-window merge is cached at a time, so the returned
  /// reference stays valid until the next Ingest/IngestEpoch/Advance/
  /// RestoreSnapshot *or* the next WindowView call with a different
  /// non-zero last_k (the full-window view is cached separately and
  /// only invalidated by state changes). Both views are thin
  /// materializations over the merged ring's hierarchical merge cache:
  /// a miss costs one O(log W) cached-partial assembly, not an O(W)
  /// re-merge.
  const UnbiasedSpaceSaving& WindowView(size_t last_k) {
    // Opened before MergedRing() so a dirty ring's fleet snapshot
    // (shard_drain / snapshot_merge) nests under this span. The
    // merge-cache counter deltas distinguish a cached assembly from an
    // uncached re-merge in the exported trace.
    obs::ScopedSpan span("window_merge", obs::TraceLayer::kWindow);
    span.Annotate("last_k", last_k);
    const uint64_t node_hits0 = window_metrics::NodeCacheHits().Value();
    const uint64_t node_misses0 = window_metrics::NodeCacheMisses().Value();
    const uint64_t memo_hits0 = window_metrics::CombineMemoHits().Value();
    const WindowedSpaceSaving& ring = MergedRing();
    std::optional<UnbiasedSpaceSaving>& cache =
        last_k == 0 ? ring_view_ : window_view_;
    if (last_k != 0 && window_view_k_ != last_k) {
      cache.reset();
      window_view_k_ = last_k;
    }
    const bool cached = cache.has_value();
    if (!cached) {
      cache.emplace(
          ring.QueryWindow(last_k, window_.merged_capacity, MergeSeed()));
    }
    span.Annotate("view_cached", cached ? 1 : 0);
    span.Annotate("node_hits",
                  window_metrics::NodeCacheHits().Value() - node_hits0);
    span.Annotate("node_misses",
                  window_metrics::NodeCacheMisses().Value() - node_misses0);
    span.Annotate("memo_hits",
                  window_metrics::CombineMemoHits().Value() - memo_hits0);
    return *cache;
  }

  /// Exponentially decayed view as of the producer epoch (requires
  /// half_life_epochs > 0 in the window options). Never invalidates
  /// WindowView references — only mutations do.
  WeightedSpaceSaving DecayedView() { return MergedRing().QueryDecayed(); }

  /// The epoch-consistent merged ring itself (e.g. for serialization or
  /// slot inspection). Valid until the next Ingest/IngestEpoch/Advance/
  /// RestoreSnapshot — like WindowView references: views are dropped
  /// eagerly at mutation time (MarkDirty), so a read on a dirty source
  /// re-merges without invalidating anything a caller still holds.
  const WindowedSpaceSaving& MergedRing() {
    if (dirty_ || !merged_.has_value()) {
      merged_.emplace(
          sharded_->Snapshot(window_.epoch_capacity, seed_ + 1000003));
      // The producer epoch is authoritative: open it even if no shard
      // saw rows for it yet.
      merged_->AdvanceTo(epoch_);
      dirty_ = false;
    }
    return *merged_;
  }

  /// Ships the full epoch ring (window-snapshot wire kind).
  std::string SaveSnapshot() override {
    return SerializeWindowed(MergedRing());
  }

  /// Absorbs a peer's ring into the fleet (epoch-aligned merge with
  /// local rows on the next view). A peer that is ahead advances the
  /// producer epoch to its newest epoch — otherwise rows ingested after
  /// the restore would be stamped with the stale clock and fall outside
  /// the merged window. False on malformed bytes.
  bool RestoreSnapshot(std::string_view bytes) override {
    if (!sharded_->IngestSerialized(bytes)) return false;
    MarkDirty();
    // Peeked off the slot headers, not read from a merged view — a
    // restore stays cheap (the flush + fleet merge keeps being deferred
    // to the next query, where consecutive restores coalesce into one).
    std::optional<uint64_t> newest = PeekWindowedNewestEpoch(bytes);
    if (newest.has_value() && *newest > epoch_) epoch_ = *newest;
    return true;
  }

  /// Producer-side open epoch.
  uint64_t current_epoch() const { return epoch_; }

  /// The underlying fleet (tests/embedders).
  ShardedWindowedSketch& sharded() { return *sharded_; }

 private:
  uint64_t MergeSeed() const { return seed_ + 2000003 + epoch_; }

  // Every mutation ends handed-out view validity *here*, eagerly — not
  // lazily at the next read. This is what makes the documented contract
  // ("references valid until the next Ingest/Advance/Restore") true:
  // DecayedView/MergedRing/SaveSnapshot on a dirty source re-merge the
  // ring but never destroy a view some caller still references. The
  // window_view_k_ tag is reset with its cache so it can never describe
  // a cleared cache.
  void MarkDirty() {
    dirty_ = true;
    ring_view_.reset();
    window_view_.reset();
    window_view_k_ = 0;
  }

  std::unique_ptr<ShardedWindowedSketch> sharded_;
  WindowedSketchOptions window_;
  uint64_t seed_;
  uint64_t epoch_ = 0;
  bool dirty_ = true;
  std::vector<EpochRow> staging_;
  std::optional<WindowedSpaceSaving> merged_;
  std::optional<UnbiasedSpaceSaving> ring_view_;    // full-window merge
  std::optional<UnbiasedSpaceSaving> window_view_;  // last-k merge cache
  size_t window_view_k_ = 0;
};

}  // namespace dsketch

#endif  // DSKETCH_QUERY_WINDOWED_SOURCE_H_
