// One ingestion interface in front of the approximate query engine.
//
// Callers feed disaggregated rows through SketchSource::Ingest and query
// through SketchQueryEngine; whether the rows land in a single in-process
// Unbiased Space Saving sketch or fan out across the sharded concurrent
// front-end (shard/sharded_sketch.h) is a deployment choice the query
// layer no longer cares about. Both implementations expose the stream as
// an UnbiasedSpaceSaving view, so every estimator downstream of the
// engine (subset sums, variances, CIs, top-k) behaves identically.
//
// Sources also save/restore state as wire-format bytes (SaveSnapshot /
// RestoreSnapshot), so engine state survives process restarts and
// replicates between deployments — including across wire versions.

#ifndef DSKETCH_QUERY_SKETCH_SOURCE_H_
#define DSKETCH_QUERY_SKETCH_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "core/merge.h"
#include "core/serialization.h"
#include "core/unbiased_space_saving.h"
#include "shard/sharded_sketch.h"
#include "util/span.h"

namespace dsketch {

/// Uniform batched-ingestion front for the query engine.
class SketchSource {
 public:
  virtual ~SketchSource() = default;

  /// Feeds a batch of disaggregated rows (unit-of-analysis labels).
  virtual void Ingest(Span<const uint64_t> items) = 0;

  /// Blocks until all ingested rows are reflected in View().
  virtual void Flush() {}

  /// Sketch over everything ingested so far. The reference stays valid
  /// until the next Ingest/Flush call on this source.
  virtual const UnbiasedSpaceSaving& View() = 0;

  /// Serializes the source's state (wire format, current version):
  /// flushes, then encodes View(). The bytes restore through
  /// RestoreSnapshot on the same kind of source (sources with richer
  /// state — e.g. the windowed epoch ring — override this to ship it).
  virtual std::string SaveSnapshot() {
    Flush();
    return Serialize(View());
  }

  /// Absorbs a serialized snapshot (any supported wire version) into
  /// this source's state, merging with whatever was already ingested; on
  /// a fresh source this restores the saved estimates exactly. Returns
  /// false — leaving the state untouched — on malformed bytes.
  virtual bool RestoreSnapshot(std::string_view bytes) = 0;
};

/// Single-threaded source: rows go straight into one sketch via the
/// batched update path.
class PlainSketchSource : public SketchSource {
 public:
  /// Sketch with `capacity` bins; `seed` makes runs reproducible.
  explicit PlainSketchSource(size_t capacity, uint64_t seed = 1)
      : sketch_(capacity, seed), seed_(seed) {}

  void Ingest(Span<const uint64_t> items) override {
    sketch_.UpdateBatch(items);
  }

  const UnbiasedSpaceSaving& View() override { return sketch_; }

  /// Fresh source: adopts the decoded sketch verbatim (exact restore,
  /// capacity taken from the bytes). Non-empty source: unbiased-merges
  /// the decoded entries in at the current capacity.
  bool RestoreSnapshot(std::string_view bytes) override {
    std::optional<UnbiasedSpaceSaving> restored =
        DeserializeUnbiased(bytes, seed_ + 1);
    if (!restored.has_value()) return false;
    if (sketch_.TotalCount() == 0) {
      sketch_ = std::move(*restored);
    } else {
      sketch_ = Merge(sketch_, *restored, sketch_.capacity(), seed_ + 2);
    }
    return true;
  }

 private:
  UnbiasedSpaceSaving sketch_;
  uint64_t seed_;
};

/// Concurrent source: rows fan out across a ShardedSketch; View() merges
/// the shards with the unbiased reduction (cached until the next Ingest).
class ShardedSketchSource : public SketchSource {
 public:
  /// `options` configures the shard fleet; View() merges into a sketch
  /// with `merged_capacity` bins using `merge_seed` (deterministic given
  /// the ingested stream).
  ShardedSketchSource(const ShardedSketchOptions& options,
                      size_t merged_capacity, uint64_t merge_seed = 1)
      : sharded_(options),
        merged_capacity_(merged_capacity),
        merge_seed_(merge_seed),
        snapshot_(merged_capacity, merge_seed) {}

  void Ingest(Span<const uint64_t> items) override {
    sharded_.Ingest(items);
    dirty_ = true;
  }

  void Flush() override { sharded_.Flush(); }

  const UnbiasedSpaceSaving& View() override {
    if (dirty_) {
      snapshot_ = sharded_.Snapshot(merged_capacity_, merge_seed_);
      dirty_ = false;
    }
    return snapshot_;
  }

  /// Routes the snapshot into the shard fleet as an absorbed remote
  /// sketch (ShardedSketch::IngestSerialized); the next View() merges it
  /// with the locally ingested rows.
  bool RestoreSnapshot(std::string_view bytes) override {
    if (!sharded_.IngestSerialized(bytes)) return false;
    dirty_ = true;
    return true;
  }

  /// The underlying shard fleet (e.g. to inspect per-shard sketches).
  ShardedSpaceSaving& sharded() { return sharded_; }

 private:
  ShardedSpaceSaving sharded_;
  size_t merged_capacity_;
  uint64_t merge_seed_;
  UnbiasedSpaceSaving snapshot_;
  bool dirty_ = false;
};

}  // namespace dsketch

#endif  // DSKETCH_QUERY_SKETCH_SOURCE_H_
