/* dsketch C ABI over the frozen sketch image (wire/frozen.h, wire kind
 * 8) — the stable seam for foreign-language bindings and embedders that
 * cannot link C++.
 *
 * The surface is deliberately stateless (the hipermap shape): freeze
 * compiles entries into a caller-owned flat buffer, and every query
 * takes the raw image bytes — typically an mmap'd file — re-vets them in
 * O(1), and answers without allocating. There are no handles to create
 * or destroy; the image IS the data structure.
 *
 *   // writer: freeze entries into your own storage
 *   size_t n = ...;                      // entries, canonical order
 *   size_t bytes = dsketch_freeze_size(n);
 *   void* image = malloc(bytes);
 *   if (dsketch_freeze(entries, n, capacity, min_count, total_count,
 *                      image, bytes) == 0) { ... error ... }
 *
 *   // reader: answer straight off the (mmap'd) image
 *   if (!dsketch_frozen_valid(image, bytes)) { ... reject ... }
 *   int64_t c = dsketch_frozen_estimate(image, bytes, item);
 *
 * Entries must be sorted canonically — count descending, ties by
 * ascending item — with positive counts and distinct items; that order
 * is what makes answers off the image bit-identical to the thawed C++
 * sketch. Hostile images are safe to query once dsketch_frozen_valid
 * accepts them: every accessor is bounds-checked against the vetted
 * structure, so corrupt content yields wrong answers, never a crash or
 * an out-of-bounds read.
 */

#ifndef DSKETCH_CAPI_DSKETCH_H_
#define DSKETCH_CAPI_DSKETCH_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* One frozen entry record: layout-identical to the image's 16-byte
 * entry section records (and to the C++ wire::FrozenEntry). */
typedef struct dsketch_frozen_entry {
  uint64_t item;
  int64_t count;
} dsketch_frozen_entry;

/* Result of an unbiased subset-sum query (paper eq. 5 variance). */
typedef struct dsketch_frozen_sum {
  double estimate;
  double variance;
  uint64_t items_in_sample;
} dsketch_frozen_sum;

/* Image bytes needed to freeze `entry_count` entries. */
size_t dsketch_freeze_size(size_t entry_count);

/* Writes a frozen image into `out` (at least `out_bytes` long). Returns
 * the bytes written — dsketch_freeze_size(entry_count) — or 0 on any
 * invalid argument: buffer too small, capacity outside
 * [max(1, entry_count), 2^22], negative min/total count, entries out of
 * canonical order, non-positive counts, or duplicate items. Writes
 * nothing on failure; never aborts. */
size_t dsketch_freeze(const dsketch_frozen_entry* entries,
                      size_t entry_count, uint64_t capacity,
                      int64_t min_count, int64_t total_count, void* out,
                      size_t out_bytes);

/* 1 when `image` is a structurally valid frozen image of exactly
 * `bytes` bytes (the O(1) vet every query repeats), else 0. */
int dsketch_frozen_valid(const void* image, size_t bytes);

/* Occupied entries in the image, or 0 if the image fails vetting. */
uint64_t dsketch_frozen_entry_count(const void* image, size_t bytes);

/* TotalCount() of the frozen sketch, or 0 if the image fails vetting. */
int64_t dsketch_frozen_total_count(const void* image, size_t bytes);

/* Point estimate for `item` via the image's hash index: the tracked
 * count, or 0 when untracked / the image fails vetting. */
int64_t dsketch_frozen_estimate(const void* image, size_t bytes,
                                uint64_t item);

/* Unbiased subset-sum over an explicit item set (`items`, `n_items`
 * labels): fills `*out` and returns 1, or returns 0 (zeroing `*out`)
 * when the image fails vetting or out is NULL. Accumulation follows the
 * image's entry order, so results are bit-identical to the C++ engine's
 * answer for the same set. */
int dsketch_frozen_query_sum(const void* image, size_t bytes,
                             const uint64_t* items, size_t n_items,
                             dsketch_frozen_sum* out);

/* Top-k entries (count descending — the image's native order) copied
 * into `out` (room for `k` records). Returns the number written:
 * min(k, entry_count), or 0 when the image fails vetting. */
size_t dsketch_frozen_query_topk(const void* image, size_t bytes, size_t k,
                                 dsketch_frozen_entry* out);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DSKETCH_CAPI_DSKETCH_H_ */
