#include "capi/dsketch.h"

#include <cstring>
#include <optional>
#include <string_view>

#include "wire/frozen.h"

namespace {

// The C record and the wire record must agree byte-for-byte: callers
// hand us arrays of one and FreezeInto reads arrays of the other.
static_assert(sizeof(dsketch_frozen_entry) == sizeof(dsketch::wire::FrozenEntry),
              "C ABI entry must match the wire entry layout");
static_assert(sizeof(dsketch_frozen_entry) == 16,
              "frozen entry records are 16 bytes on the wire");

std::optional<dsketch::wire::FrozenView> VetImage(const void* image,
                                                  size_t bytes) {
  if (image == nullptr) return std::nullopt;
  return dsketch::wire::FrozenView::Vet(
      std::string_view(static_cast<const char*>(image), bytes));
}

}  // namespace

extern "C" {

size_t dsketch_freeze_size(size_t entry_count) {
  return dsketch::wire::FrozenImageBytes(entry_count);
}

size_t dsketch_freeze(const dsketch_frozen_entry* entries,
                      size_t entry_count, uint64_t capacity,
                      int64_t min_count, int64_t total_count, void* out,
                      size_t out_bytes) {
  if ((entries == nullptr && entry_count > 0) || out == nullptr) return 0;
  // Layout-identical (static_asserted above): reinterpret, don't copy.
  return dsketch::wire::FreezeInto(
      reinterpret_cast<const dsketch::wire::FrozenEntry*>(entries),
      entry_count, capacity, min_count, total_count, out, out_bytes);
}

int dsketch_frozen_valid(const void* image, size_t bytes) {
  return VetImage(image, bytes).has_value() ? 1 : 0;
}

uint64_t dsketch_frozen_entry_count(const void* image, size_t bytes) {
  std::optional<dsketch::wire::FrozenView> view = VetImage(image, bytes);
  return view.has_value() ? view->entry_count() : 0;
}

int64_t dsketch_frozen_total_count(const void* image, size_t bytes) {
  std::optional<dsketch::wire::FrozenView> view = VetImage(image, bytes);
  return view.has_value() ? view->total_count() : 0;
}

int64_t dsketch_frozen_estimate(const void* image, size_t bytes,
                                uint64_t item) {
  std::optional<dsketch::wire::FrozenView> view = VetImage(image, bytes);
  return view.has_value() ? view->EstimateCount(item) : 0;
}

int dsketch_frozen_query_sum(const void* image, size_t bytes,
                             const uint64_t* items, size_t n_items,
                             dsketch_frozen_sum* out) {
  if (out == nullptr) return 0;
  out->estimate = 0.0;
  out->variance = 0.0;
  out->items_in_sample = 0;
  std::optional<dsketch::wire::FrozenView> view = VetImage(image, bytes);
  if (!view.has_value() || (items == nullptr && n_items > 0)) return 0;
  // Accumulate in the image's entry order (membership is a linear scan
  // of the query set), mirroring the C++ engine's iteration so the
  // floating-point sum is bit-identical for the same set.
  const dsketch::wire::FrozenSumResult r =
      dsketch::wire::FrozenSubsetSum(*view, [&](uint64_t entry_item) {
        for (size_t i = 0; i < n_items; ++i) {
          if (items[i] == entry_item) return true;
        }
        return false;
      });
  out->estimate = r.estimate;
  out->variance = r.variance;
  out->items_in_sample = r.items_in_sample;
  return 1;
}

size_t dsketch_frozen_query_topk(const void* image, size_t bytes, size_t k,
                                 dsketch_frozen_entry* out) {
  if (out == nullptr) return 0;
  std::optional<dsketch::wire::FrozenView> view = VetImage(image, bytes);
  if (!view.has_value()) return 0;
  const size_t n = static_cast<size_t>(view->entry_count());
  const size_t take = k < n ? k : n;
  for (size_t i = 0; i < take; ++i) {
    const dsketch::wire::FrozenEntry e = view->entry(i);
    out[i].item = e.item;
    out[i].count = e.count;
  }
  return take;
}

}  // extern "C"
