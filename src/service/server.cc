#include "service/server.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/frequent_items.h"
#include "core/serialization.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/frame.h"
#include "util/flat_map.h"
#include "util/logging.h"
#include "util/mmap_array.h"
#include "util/span.h"
#include "wire/codec.h"
#include "wire/frozen.h"

namespace dsketch {

namespace {

// Seed offsets separating the weighted and windowed fleets' randomness
// from the unit fleet's (all derive from options.shard.seed).
constexpr uint64_t kWeightedSeedOffset = 7777;
constexpr uint64_t kWindowSeedOffset = 8888;

// Classifies a restore blob for the STATS counters by its wire envelope
// (kind 8 = the frozen image; everything else is a stream encoding).
SnapshotFormat BlobSnapshotFormat(std::string_view blob) {
  wire::VarintReader reader(blob);
  std::optional<wire::Envelope> env = wire::ReadEnvelope(reader);
  return env.has_value() && env->kind == wire::kKindFrozenUnbiased
             ? SnapshotFormat::kFrozen
             : SnapshotFormat::kStream;
}

// Per-opcode telemetry handles, indexed by opcode value (0 = requests
// whose header never decoded or whose opcode is unknown). Registered
// once; the serve path only touches relaxed atomics.
constexpr size_t kOpcodeSlots = static_cast<size_t>(Opcode::kTrace) + 1;

constexpr const char* kOpcodeNames[kOpcodeSlots] = {
    "unknown",  "ingest_batch", "query_sum", "query_topk", "query_groupby",
    "snapshot", "restore",      "stats",     "shutdown",   "metrics",
    "trace"};

size_t OpcodeIndex(Opcode opcode) {
  const uint8_t v = static_cast<uint8_t>(opcode);
  return v < kOpcodeSlots ? v : 0;
}

obs::Counter& RequestCounter(size_t op_index) {
  static std::array<obs::Counter*, kOpcodeSlots>* counters = [] {
    auto* out = new std::array<obs::Counter*, kOpcodeSlots>;
    for (size_t i = 0; i < kOpcodeSlots; ++i) {
      (*out)[i] = &obs::MetricsRegistry::Global().GetCounter(
          std::string("dsketch_service_requests_total{opcode=\"") +
          kOpcodeNames[i] + "\"}");
    }
    return out;
  }();
  return *(*counters)[op_index];
}

obs::Histogram& LatencyHistogram(size_t op_index) {
  static std::array<obs::Histogram*, kOpcodeSlots>* hists = [] {
    auto* out = new std::array<obs::Histogram*, kOpcodeSlots>;
    for (size_t i = 0; i < kOpcodeSlots; ++i) {
      (*out)[i] = &obs::MetricsRegistry::Global().GetHistogram(
          std::string("dsketch_service_request_latency_us{opcode=\"") +
          kOpcodeNames[i] + "\"}");
    }
    return out;
  }();
  return *(*hists)[op_index];
}

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kMalformed:
      return "malformed";
    case Status::kUnknownOpcode:
      return "unknown_opcode";
    case Status::kUnsupported:
      return "unsupported";
    case Status::kTooLarge:
      return "too_large";
    case Status::kBadState:
      return "bad_state";
  }
  return "unknown";
}

obs::Counter& ErrorCounter(Status status) {
  static std::array<obs::Counter*, 6>* counters = [] {
    auto* out = new std::array<obs::Counter*, 6>;
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = &obs::MetricsRegistry::Global().GetCounter(
          std::string("dsketch_service_request_errors_total{status=\"") +
          StatusName(static_cast<Status>(i)) + "\"}");
    }
    return out;
  }();
  const size_t i = static_cast<size_t>(status);
  return *(*counters)[i < counters->size() ? i : 0];
}

obs::Counter& SlowRequestCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_service_slow_requests_total");
  return counter;
}

obs::Counter& FrameBytesCounter(bool in) {
  static obs::Counter& bytes_in = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_service_frame_bytes_total{dir=\"in\"}");
  static obs::Counter& bytes_out = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_service_frame_bytes_total{dir=\"out\"}");
  return in ? bytes_in : bytes_out;
}

obs::Counter& TimerTickCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_timer_ticks_total");
  return counter;
}

obs::Counter& TimerCatchupCounter() {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "dsketch_window_timer_catchup_ticks_total");
  return counter;
}

// Info gauge: constant 1, the interesting bits ride the labels (which
// allocator mode, probe kernel, and metrics build this process runs).
void RegisterBuildInfo() {
  static bool once = [] {
    obs::MetricsRegistry::Global()
        .GetGauge(std::string("dsketch_util_build_info{alloc_mode=\"") +
                  AllocModeName(GlobalAllocMode()) + "\",probe_isa=\"" +
                  FlatMapProbeIsa() + "\",metrics=\"" +
                  obs::MetricsBuildMode() + "\"}")
        .Set(1);
    return true;
  }();
  (void)once;
}

}  // namespace

SketchServer::SketchServer(const SketchServerOptions& options,
                           const AttributeTable* attrs)
    : options_(options),
      attrs_(attrs),
      source_(options.shard, options.merged_capacity, options.seed),
      engine_(&source_, attrs != nullptr ? attrs : &kEmptyAttrs),
      weighted_view_(options.merged_capacity, options.seed) {
  // The windowed fleet is built lazily on the first windowed frame, so
  // its configuration is vetted here: a bad SketchServerOptions.window
  // must fail at startup, not take down a serving process mid-stream.
  // Stamped rows are the windowed clock, so row-count time is rejected
  // (MakeShardedWindowed's contract); the rest mirrors the
  // WindowedSketch constructor checks.
  DSKETCH_CHECK(options.window.rows_per_epoch == 0);
  DSKETCH_CHECK(options.window.window_epochs > 0 &&
                options.window.window_epochs <= kMaxWindowEpochs);
  DSKETCH_CHECK(ValidHalfLife(options.window.half_life_epochs));
  // SNAPSHOT must be able to serialize every scope's view, so the
  // capacities are bounded by the wire encoders' cap up front too —
  // SerializeWindowed/Serialize would otherwise CHECK on the first
  // SNAPSHOT frame.
  DSKETCH_CHECK(options.window.epoch_capacity > 0 &&
                options.window.epoch_capacity <= kMaxSerializableCapacity);
  DSKETCH_CHECK(options.merged_capacity > 0 &&
                options.merged_capacity <= kMaxSerializableCapacity);
  // Wall-clock epoch scheduling is vetted at startup like the rest of
  // the window configuration (0 = disabled).
  DSKETCH_CHECK(options.epoch_interval_ms >= 0);
  DSKETCH_CHECK(options.slow_request_us >= 0);
  DSKETCH_CHECK(options.trace_sample >= 0);
  // Sampling rides the process-wide collector (one serving pipeline per
  // process is the deployment model); a server with both knobs at zero
  // leaves an already-configured collector alone. The previous policy
  // is saved and restored by the destructor so it stays scoped to this
  // server's lifetime.
  if (options.trace_sample > 0 || options.slow_request_us > 0) {
    saved_trace_config_ = obs::TraceCollector::Global().config();
    configured_tracing_ = true;
    obs::TraceConfig trace_config;
    trace_config.sample_every =
        options.trace_sample > int64_t{0xFFFFFFFF}
            ? uint32_t{0xFFFFFFFF}
            : static_cast<uint32_t>(options.trace_sample);
    trace_config.slow_request_us = options.slow_request_us;
    obs::TraceCollector::Global().Configure(trace_config);
  }
  RegisterBuildInfo();
}

SketchServer::SketchServer(const SketchServerOptions& options,
                           FrozenSketchSource* replica,
                           const AttributeTable* attrs)
    : SketchServer(options, attrs) {
  DSKETCH_CHECK(replica != nullptr);
  replica_ = replica;
  replica_engine_ = std::make_unique<SketchQueryEngine>(
      replica, attrs != nullptr ? attrs : &kEmptyAttrs);
}

SketchServer::~SketchServer() {
  if (configured_tracing_) {
    obs::TraceCollector::Global().Configure(saved_trace_config_);
  }
}

// Engine construction requires a non-null table; queries that actually
// touch attributes are gated on attrs_ before reaching it.
const AttributeTable SketchServer::kEmptyAttrs(1);

ShardedWeightedSpaceSaving& SketchServer::Weighted() {
  if (weighted_ == nullptr) {
    ShardedSketchOptions opt = options_.shard;
    opt.seed += kWeightedSeedOffset;
    weighted_ = std::make_unique<ShardedWeightedSpaceSaving>(opt);
  }
  return *weighted_;
}

const WeightedSpaceSaving& SketchServer::WeightedView() {
  if (weighted_ != nullptr && weighted_dirty_) {
    weighted_view_ = weighted_->Snapshot(options_.merged_capacity,
                                         options_.seed + kWeightedSeedOffset);
    weighted_dirty_ = false;
  }
  return weighted_view_;
}

WindowedSketchSource& SketchServer::Window() {
  if (window_source_ == nullptr) {
    ShardedSketchOptions shard = options_.shard;
    shard.seed += kWindowSeedOffset;
    WindowedSketchOptions window = options_.window;
    window.merged_capacity = options_.merged_capacity;
    window_source_ =
        std::make_unique<WindowedSketchSource>(shard, window);
  }
  return *window_source_;
}

SketchQueryEngine& SketchServer::WindowEngine() {
  if (window_engine_ == nullptr) {
    window_engine_ = std::make_unique<SketchQueryEngine>(
        &Window(), attrs_ != nullptr ? attrs_ : &kEmptyAttrs);
  }
  return *window_engine_;
}

Status SketchServer::BuildPredicate(const PredicateSpec& spec,
                                    Predicate* out) const {
  if (spec.conditions.empty()) return Status::kOk;
  if (attrs_ == nullptr) return Status::kUnsupported;
  for (const PredicateSpec::Condition& c : spec.conditions) {
    if (c.dim >= attrs_->num_dims() || c.values.empty()) {
      return Status::kMalformed;
    }
    out->WhereIn(static_cast<size_t>(c.dim), c.values);
  }
  return Status::kOk;
}

std::string SketchServer::Fail(Opcode opcode, uint64_t request_id,
                               Status status) {
  ++counters_.errors;
  switch (status) {
    case Status::kMalformed:
      ++counters_.errors_malformed;
      break;
    case Status::kUnknownOpcode:
      ++counters_.errors_unknown_opcode;
      break;
    case Status::kUnsupported:
      ++counters_.errors_unsupported;
      break;
    case Status::kTooLarge:
      ++counters_.errors_too_large;
      break;
    case Status::kBadState:
      ++counters_.errors_bad_state;
      break;
    case Status::kOk:
      break;
  }
  ErrorCounter(status).Inc();
  return EncodeErrorResponse(opcode, request_id, status);
}

std::string SketchServer::HandleRequest(std::string_view request) {
  // Root span of the request's trace. Declared first so every child
  // span below (decode, shard, window, query, encode) closes before it;
  // the serve loop's response-write span joins afterwards via the
  // pending-trace hand-off (obs/trace.h).
  obs::ScopedTrace trace("request");
  const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  wire::VarintReader reader(request);
  RequestHeader header;
  std::string response;
  size_t op_index = 0;
  uint64_t request_id = 0;
  Opcode opcode = static_cast<Opcode>(0);
  if (!DecodeRequestHeader(reader, &header)) {
    response = Fail(static_cast<Opcode>(0), 0, Status::kMalformed);
  } else {
    op_index = OpcodeIndex(header.opcode);
    request_id = header.request_id;
    opcode = header.opcode;
    trace.SetTraceId(obs::TraceIdFromRequestId(header.request_id));
    trace.Annotate("opcode", static_cast<uint64_t>(header.opcode));
    trace.Annotate("request_bytes", request.size());
    response = header.version != kProtocolVersion
                   ? Fail(header.opcode, header.request_id,
                          Status::kUnsupported)
                   : Dispatch(header, reader);
  }
  const uint64_t latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  RequestCounter(op_index).Inc();
  LatencyHistogram(op_index).Record(latency_us);
  if (options_.slow_request_us > 0 &&
      latency_us >= static_cast<uint64_t>(options_.slow_request_us)) {
    SlowRequestCounter().Inc();
    SlowRequestInfo info;
    info.opcode = opcode;
    info.request_id = request_id;
    info.latency_us = latency_us;
    info.request_bytes = request.size();
    info.response_bytes = response.size();
    if (options_.slow_request_hook) {
      options_.slow_request_hook(info);
    } else {
      std::fprintf(stderr,
                   "dsketchd: slow_request opcode=%s request_id=%" PRIu64
                   " latency_us=%" PRIu64 " request_bytes=%zu"
                   " response_bytes=%zu\n",
                   kOpcodeNames[op_index], info.request_id, info.latency_us,
                   info.request_bytes, info.response_bytes);
    }
  }
  return response;
}

std::string SketchServer::Dispatch(const RequestHeader& header,
                                   wire::VarintReader& reader) {
  switch (header.opcode) {
    case Opcode::kIngestBatch:
      return HandleIngestBatch(header, reader);
    case Opcode::kQuerySum:
      return HandleQuerySum(header, reader);
    case Opcode::kQueryTopK:
      return HandleQueryTopK(header, reader);
    case Opcode::kQueryGroupBy:
      return HandleQueryGroupBy(header, reader);
    case Opcode::kSnapshot:
      return HandleSnapshot(header, reader);
    case Opcode::kRestore:
      return HandleRestore(header, reader);
    case Opcode::kMetrics:
      return HandleMetrics(header, reader);
    case Opcode::kTrace:
      return HandleTrace(header, reader);
    case Opcode::kStats: {
      if (!reader.AtEnd()) {
        return Fail(header.opcode, header.request_id, Status::kMalformed);
      }
      return EncodeStatsResponse(header.request_id, Stats());
    }
    case Opcode::kShutdown: {
      if (!reader.AtEnd()) {
        return Fail(header.opcode, header.request_id, Status::kMalformed);
      }
      shutdown_ = true;
      return EncodeShutdownResponse(header.request_id);
    }
  }
  return Fail(header.opcode, header.request_id, Status::kUnknownOpcode);
}

std::string SketchServer::HandleMetrics(const RequestHeader& header,
                                        wire::VarintReader& reader) {
  MetricsRequest req;
  if (!DecodeMetricsRequest(reader, &req)) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  // Served in replica mode too: a read-only node's telemetry is exactly
  // what an operator watching a replica fleet needs.
  MetricsResponse rsp;
  rsp.text = obs::DumpMetricsText(MetricsScopePrefix(req.scope));
  if (rsp.text.size() > kMaxMetricsTextBytes) {
    return Fail(header.opcode, header.request_id, Status::kTooLarge);
  }
  return EncodeMetricsResponse(header.request_id, rsp);
}

std::string SketchServer::HandleTrace(const RequestHeader& header,
                                      wire::VarintReader& reader) {
  TraceRequest req;
  if (!DecodeTraceRequest(reader, &req)) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  // Served in replica mode too: why a read-only node's requests were
  // slow is exactly what its traces answer.
  TraceResponse rsp;
  rsp.text =
      req.scope == TraceScope::kRecent
          ? obs::TraceToChromeJson(obs::TraceCollector::Global().Recent())
          : obs::SpansToText(obs::FlightRecorder::Global().Dump());
  if (rsp.text.size() > kMaxTraceTextBytes) {
    return Fail(header.opcode, header.request_id, Status::kTooLarge);
  }
  return EncodeTraceResponse(header.request_id, rsp);
}

std::string SketchServer::HandleIngestBatch(const RequestHeader& header,
                                            wire::VarintReader& reader) {
  IngestBatchRequest req;
  bool decoded;
  {
    obs::ScopedSpan span("frame_decode", obs::TraceLayer::kWire);
    decoded = DecodeIngestBatchRequest(reader, &req);
    span.Annotate("rows", req.items.size());
  }
  if (!decoded) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  if (replica_ != nullptr) {
    // Replicas are read-only; rows belong on a writer node.
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  if (req.windowed) {
    std::vector<EpochRow> rows;
    rows.reserve(req.items.size());
    for (uint64_t item : req.items) rows.push_back({item, req.epoch});
    WindowedSketchSource& window = Window();
    window.Advance(req.epoch);  // an empty batch still advances the ring
    window.IngestEpoch(Span<const EpochRow>(rows.data(), rows.size()));
    counters_.windowed_rows_ingested += rows.size();
  } else if (req.weights.empty()) {
    source_.Ingest(Span<const uint64_t>(req.items.data(), req.items.size()));
    counters_.rows_ingested += req.items.size();
  } else {
    std::vector<WeightedEntry> rows;
    rows.reserve(req.items.size());
    for (size_t i = 0; i < req.items.size(); ++i) {
      rows.push_back({req.items[i], req.weights[i]});
    }
    Weighted().Ingest(Span<const WeightedEntry>(rows.data(), rows.size()));
    weighted_dirty_ = true;
    counters_.weighted_rows_ingested += rows.size();
  }
  ++counters_.batches;
  IngestBatchResponse rsp;
  rsp.rows_accepted = req.items.size();
  obs::ScopedSpan span("wire_encode", obs::TraceLayer::kWire);
  return EncodeIngestBatchResponse(header.request_id, rsp);
}

std::string SketchServer::HandleQuerySum(const RequestHeader& header,
                                         wire::VarintReader& reader) {
  QuerySumRequest req;
  bool decoded;
  {
    obs::ScopedSpan span("frame_decode", obs::TraceLayer::kWire);
    decoded = DecodeQuerySumRequest(reader, &req);
  }
  if (!decoded) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  Predicate pred;
  Status status = BuildPredicate(req.where, &pred);
  if (status != Status::kOk) {
    return Fail(header.opcode, header.request_id, status);
  }
  if (replica_ != nullptr && req.scope != QueryScope::kCounts) {
    // The image holds only the counts sketch.
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  ++counters_.queries;
  QuerySumResponse rsp;
  {
    obs::ScopedSpan span("query_reduce", obs::TraceLayer::kQuery);
    span.Annotate("scope", static_cast<uint64_t>(req.scope));
    if (req.scope == QueryScope::kCounts) {
      SubsetSumEstimate est =
          replica_ != nullptr ? replica_engine_->Sum(pred) : engine_.Sum(pred);
      rsp.estimate = est.estimate;
      rsp.variance = est.variance;
      rsp.items_in_sample = est.items_in_sample;
    } else if (req.scope == QueryScope::kWindow) {
      SubsetSumEstimate est =
          WindowEngine().SumWindow(static_cast<size_t>(req.last_k), pred);
      rsp.estimate = est.estimate;
      rsp.variance = est.variance;
      rsp.items_in_sample = est.items_in_sample;
    } else {
      const bool match_all = req.where.conditions.empty();
      WeightedSubsetSum est =
          EstimateSubsetSum(WeightedView(), [&](uint64_t item) {
            return match_all || pred.Matches(*attrs_, item);
          });
      rsp.estimate = est.estimate;
      rsp.variance = est.variance;
      rsp.items_in_sample = est.items_in_sample;
    }
  }
  obs::ScopedSpan span("wire_encode", obs::TraceLayer::kWire);
  return EncodeQuerySumResponse(header.request_id, rsp);
}

std::string SketchServer::HandleQueryTopK(const RequestHeader& header,
                                          wire::VarintReader& reader) {
  QueryTopKRequest req;
  bool decoded;
  {
    obs::ScopedSpan span("frame_decode", obs::TraceLayer::kWire);
    decoded = DecodeQueryTopKRequest(reader, &req);
  }
  if (!decoded) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  if (replica_ != nullptr && req.scope != QueryScope::kCounts) {
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  ++counters_.queries;
  QueryTopKResponse rsp;
  rsp.scope = req.scope;
  {
    obs::ScopedSpan span("query_reduce", obs::TraceLayer::kQuery);
    span.Annotate("scope", static_cast<uint64_t>(req.scope));
    span.Annotate("k", req.k);
    if (req.scope == QueryScope::kCounts) {
      if (replica_ != nullptr) {
        // The image stores entries in descending order: top-k is its
        // first k records, no decode or sort.
        rsp.counts =
            FrozenTopK(replica_->frozen(), static_cast<size_t>(req.k));
      } else {
        source_.Flush();
        rsp.counts = TopK(source_.View(), static_cast<size_t>(req.k));
      }
    } else if (req.scope == QueryScope::kWindow) {
      // WindowView's merge flushes the fleet whenever the view is dirty.
      rsp.counts = TopK(Window().WindowView(static_cast<size_t>(req.last_k)),
                        static_cast<size_t>(req.k));
    } else {
      std::vector<WeightedEntry> entries = WeightedView().Entries();
      if (entries.size() > req.k) entries.resize(static_cast<size_t>(req.k));
      rsp.weighted = std::move(entries);
    }
  }
  obs::ScopedSpan span("wire_encode", obs::TraceLayer::kWire);
  return EncodeQueryTopKResponse(header.request_id, rsp);
}

std::string SketchServer::HandleQueryGroupBy(const RequestHeader& header,
                                             wire::VarintReader& reader) {
  QueryGroupByRequest req;
  if (!DecodeQueryGroupByRequest(reader, &req)) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  if (attrs_ == nullptr) {
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  if (req.dim1 >= attrs_->num_dims() ||
      (req.has_dim2 && req.dim2 >= attrs_->num_dims())) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  Predicate pred;
  Status status = BuildPredicate(req.where, &pred);
  if (status != Status::kOk) {
    return Fail(header.opcode, header.request_id, status);
  }
  ++counters_.queries;
  QueryGroupByResponse rsp;
  {
    obs::ScopedSpan span("query_reduce", obs::TraceLayer::kQuery);
    auto add_group = [&rsp](uint64_t key, const SubsetSumEstimate& est) {
      rsp.groups.push_back(
          {key, est.estimate, est.variance, est.items_in_sample});
    };
    SketchQueryEngine& engine =
        replica_ != nullptr ? *replica_engine_ : engine_;
    if (req.has_dim2) {
      for (const auto& [key, est] :
           engine.GroupBy2(static_cast<size_t>(req.dim1),
                           static_cast<size_t>(req.dim2), pred)) {
        add_group(key, est);
      }
    } else {
      for (const auto& [key, est] :
           engine.GroupBy1(static_cast<size_t>(req.dim1), pred)) {
        add_group(key, est);
      }
    }
    // Deterministic response order (the engine's maps are unordered).
    std::sort(
        rsp.groups.begin(), rsp.groups.end(),
        [](const GroupRow& a, const GroupRow& b) { return a.key < b.key; });
    span.Annotate("groups", rsp.groups.size());
  }
  obs::ScopedSpan span("wire_encode", obs::TraceLayer::kWire);
  return EncodeQueryGroupByResponse(header.request_id, rsp);
}

std::string SketchServer::HandleSnapshot(const RequestHeader& header,
                                         wire::VarintReader& reader) {
  SnapshotRequest req;
  if (!DecodeSnapshotRequest(reader, &req)) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  // The frozen image carries only the counts sketch; other scopes have
  // no frozen form.
  if (req.frozen && req.scope != QueryScope::kCounts) {
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  if (replica_ != nullptr && req.scope != QueryScope::kCounts) {
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  ++counters_.snapshots;
  SnapshotResponse rsp;
  SnapshotFormat format = SnapshotFormat::kStream;
  if (replica_ != nullptr) {
    // A replica's state IS a frozen image: re-serve it byte-for-byte
    // whether or not the client asked for frozen.
    rsp.blob = replica_->SaveSnapshot();
    format = SnapshotFormat::kFrozen;
  } else if (req.scope == QueryScope::kCounts) {
    if (req.frozen) {
      source_.Flush();
      rsp.blob = SerializeFrozen(source_.View());
      format = SnapshotFormat::kFrozen;
    } else {
      rsp.blob = source_.SaveSnapshot();
    }
  } else if (req.scope == QueryScope::kWindow) {
    rsp.blob = Window().SaveSnapshot();  // the full epoch ring
  } else {
    rsp.blob = SketchWire<WeightedSpaceSaving>::Serialize(WeightedView());
  }
  // A frame must hold the response; the serialization caps keep real
  // snapshots far below this.
  if (rsp.blob.size() > kMaxSnapshotBlobBytes) {
    return Fail(header.opcode, header.request_id, Status::kTooLarge);
  }
  counters_.last_snapshot_format = format;
  counters_.last_snapshot_bytes = rsp.blob.size();
  obs::ScopedSpan span("wire_encode", obs::TraceLayer::kWire);
  span.Annotate("blob_bytes", rsp.blob.size());
  return EncodeSnapshotResponse(header.request_id, rsp);
}

std::string SketchServer::HandleRestore(const RequestHeader& header,
                                        wire::VarintReader& reader) {
  RestoreRequest req;
  if (!DecodeRestoreRequest(reader, &req)) {
    return Fail(header.opcode, header.request_id, Status::kMalformed);
  }
  if (replica_ != nullptr) {
    // Replicas are read-only; nothing restores into a frozen image.
    return Fail(header.opcode, header.request_id, Status::kUnsupported);
  }
  RestoreResponse rsp;
  if (req.scope == QueryScope::kCounts) {
    if (!source_.RestoreSnapshot(req.blob)) {
      return Fail(header.opcode, header.request_id, Status::kBadState);
    }
    rsp.num_absorbed = source_.sharded().num_absorbed();
  } else if (req.scope == QueryScope::kWindow) {
    if (!Window().RestoreSnapshot(req.blob)) {
      return Fail(header.opcode, header.request_id, Status::kBadState);
    }
    rsp.num_absorbed = Window().sharded().num_absorbed();
  } else {
    if (!Weighted().IngestSerialized(req.blob)) {
      return Fail(header.opcode, header.request_id, Status::kBadState);
    }
    weighted_dirty_ = true;
    rsp.num_absorbed = Weighted().num_absorbed();
  }
  ++counters_.restores;
  counters_.last_restore_format = BlobSnapshotFormat(req.blob);
  counters_.last_restore_bytes = req.blob.size();
  return EncodeRestoreResponse(header.request_id, rsp);
}

StatsResponse SketchServer::Stats() {
  StatsResponse out;
  out.rows_ingested = counters_.rows_ingested;
  out.weighted_rows_ingested = counters_.weighted_rows_ingested;
  out.windowed_rows_ingested = counters_.windowed_rows_ingested;
  out.window_epoch =
      window_source_ != nullptr ? window_source_->current_epoch() : 0;
  out.batches = counters_.batches;
  out.queries = counters_.queries;
  out.snapshots = counters_.snapshots;
  out.restores = counters_.restores;
  out.errors = counters_.errors;
  out.errors_malformed = counters_.errors_malformed;
  out.errors_unknown_opcode = counters_.errors_unknown_opcode;
  out.errors_unsupported = counters_.errors_unsupported;
  out.errors_too_large = counters_.errors_too_large;
  out.errors_bad_state = counters_.errors_bad_state;
  out.num_shards = source_.sharded().num_shards();
  if (replica_ != nullptr) {
    // Replica totals come off the image header; the (empty) writer
    // fleet underneath never sees a row.
    out.total_count = replica_->frozen().total_count();
  } else {
    source_.Flush();
    out.total_count = source_.View().TotalCount();
  }
  out.total_weight =
      weighted_ != nullptr ? WeightedView().TotalWeight() : 0.0;
  out.last_snapshot_format = counters_.last_snapshot_format;
  out.last_snapshot_bytes = counters_.last_snapshot_bytes;
  out.last_restore_format = counters_.last_restore_format;
  out.last_restore_bytes = counters_.last_restore_bytes;
  out.traces_captured_total = obs::TraceCollector::Global().traces_captured();
  out.flight_recorder_dropped_total = obs::FlightRecorder::Global().dropped();
  return out;
}

void SketchServer::TickEpochs(uint64_t ticks) {
  // Owed-tick catch-up is visible per cause: ticks counts every epoch
  // the wall clock owed, catchup the ones beyond the first — a stalled
  // serve loop (slow request, suspended process) shows up as catchup.
  TimerTickCounter().Inc(ticks);
  if (ticks > 1) TimerCatchupCounter().Inc(ticks - 1);
  WindowedSketchSource& window = Window();
  const uint64_t current = window.current_epoch();
  const uint64_t target = ticks > kMaxEpochStamp - current
                              ? kMaxEpochStamp
                              : current + ticks;
  window.Advance(target);
}

void SketchServer::Serve(Transport& transport) {
  using Clock = std::chrono::steady_clock;
  const int64_t interval = options_.epoch_interval_ms;
  Clock::time_point next_tick =
      Clock::now() + std::chrono::milliseconds(interval);
  std::string payload;
  while (true) {
    if (interval > 0) {
      // Wall-clock epoch scheduling: wait for readability in slices so
      // every elapsed interval advances the windowed epoch — including
      // idle stretches with no frames at all. A stalled serve loop
      // (slow request, suspended process) catches up in one Advance for
      // all owed ticks, never one epoch at a time.
      while (!transport.WaitReadable(static_cast<int>(std::max<int64_t>(
          0, std::chrono::duration_cast<std::chrono::milliseconds>(
                 next_tick - Clock::now())
                 .count())))) {
        const Clock::time_point now = Clock::now();
        if (now < next_tick) continue;  // spurious poll-timeout slop
        const uint64_t ticks =
            1 + static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - next_tick)
                        .count()) /
                    static_cast<uint64_t>(interval);
        TickEpochs(ticks);
        next_tick += std::chrono::milliseconds(
            interval * static_cast<int64_t>(ticks));
      }
    }
    FrameStatus fs = ReadFrame(transport, &payload);
    // EOF ends the session cleanly; a frame violation (hostile length
    // prefix, mid-frame EOF) is unrecoverable on a byte stream, so the
    // connection is dropped either way.
    if (fs != FrameStatus::kOk) break;
    FrameBytesCounter(/*in=*/true).Inc(payload.size() + kFrameHeaderBytes);
    std::string response = HandleRequest(payload);
    bool wrote;
    {
      // Joins the request's trace via the pending-trace hand-off even
      // though the root span already closed inside HandleRequest.
      obs::ScopedSpan span("response_write", obs::TraceLayer::kWire);
      span.Annotate("bytes", response.size());
      wrote = WriteFrame(transport, response);
    }
    obs::FlushPendingTrace();
    if (!wrote) break;
    FrameBytesCounter(/*in=*/false).Inc(response.size() + kFrameHeaderBytes);
    if (shutdown_) break;
  }
  transport.CloseWrite();
}

}  // namespace dsketch
