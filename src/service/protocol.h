// Request/response message layer of the sketch service protocol.
//
// Each frame payload (service/frame.h) is one message, encoded with the
// wire varint primitives (wire/varint.h):
//
//   request  = [u8 proto_version][u8 opcode][varint request_id][body]
//   response = [u8 proto_version][u8 opcode][varint request_id]
//              [u8 status][body iff status == kOk]
//
// The opcode and request id are echoed in the response so clients can
// match replies; status != kOk carries no body. Decoders must consume the
// payload exactly (trailing bytes are malformed) and validate every
// count against the bytes actually present before allocating, mirroring
// the sketch wire codecs' hostile-input contract: malformed input yields
// `false`, never a crash or a forced allocation.
//
// Message bodies (all varint unless noted; f64 = 8-byte IEEE-754 LE):
//
//   INGEST_BATCH  req: [u8 flags (1 = weighted, 2 = windowed)]
//                      [windowed: varint epoch][varint n][n varint items]
//                      [weighted: n f64 weights]
//                 rsp: [varint rows_accepted]
//   QUERY_SUM     req: [u8 scope][window scope: varint last_k][predicate]
//                 rsp: [f64 estimate][f64 variance][varint items_in_sample]
//   QUERY_TOPK    req: [u8 scope][varint k][window scope: varint last_k]
//                 rsp: [u8 scope][varint n] then per entry
//                      [varint item][counts/window: varint count |
//                       weighted: f64]
//   QUERY_GROUPBY req: [varint dim1][u8 has_dim2][varint dim2][predicate]
//                 rsp: [varint n] then per group [varint key][f64 estimate]
//                      [f64 variance][varint items_in_sample]
//   SNAPSHOT      req: [u8 scope | kSnapshotFrozenFlag (0x80)]
//                 rsp: [varint n_bytes][sketch wire blob]
//                 The high bit of the scope byte asks for the frozen
//                 mmap-able image (wire/frozen.h) instead of the v2
//                 stream encoding; only valid with the counts scope.
//   RESTORE       req: [u8 scope][varint n_bytes][sketch wire blob]
//                 rsp: [varint num_absorbed]
//   STATS         req: (empty)
//                 rsp: counters (see StatsResponse)
//   SHUTDOWN      req: (empty)   rsp: (empty)
//   METRICS       req: [u8 scope (MetricsScope: 0 = all, 1 = service,
//                       2 = shard, 3 = window, 4 = wire, 5 = util)]
//                 rsp: [varint n_bytes][Prometheus-style text
//                      exposition (obs/metrics.h), scope-filtered by
//                      metric family prefix]
//   TRACE         req: [u8 scope (TraceScope: 0 = recent sampled traces,
//                       1 = flight-recorder dump)]
//                 rsp: [varint n_bytes][kRecent: Chrome trace-event
//                      JSON over the recent-traces ring | kFlight:
//                      compact text dump of the span ring (obs/trace.h)]
//
//   predicate = [varint n_conditions] then per condition
//               [varint dim][varint n_values][n varint values (u32)]
//
// Scope selects which sketch a query/snapshot runs against: kCounts is
// the unit-row Unbiased Space Saving path, kWeighted the real-valued
// WeightedSpaceSaving path (populated by weighted INGEST_BATCH frames),
// and kWindow the epoch-ring path (populated by windowed INGEST_BATCH
// frames, whose epoch stamp also advances the ring). Window queries
// carry last_k — how many of the newest epochs to merge (0 = the full
// window) — and window SNAPSHOT/RESTORE move the entire ring as the
// windowed wire kind (window/window_wire.h). The weighted and windowed
// flags are mutually exclusive (the weighted fleet keeps no epochs).
//
// The element-count caps below every decoder enforces live in
// service/limits.h next to the frame cap, so message bodies and the
// frames that carry them are bounded by one set of numbers.

#ifndef DSKETCH_SERVICE_PROTOCOL_H_
#define DSKETCH_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/sketch_entry.h"
#include "service/limits.h"
#include "window/windowed_sketch.h"
#include "wire/varint.h"

namespace dsketch {

/// Protocol version this build speaks (requests and responses both carry
/// it; each side rejects others — servers with Status::kUnsupported,
/// clients by failing the call). Version 2 added the window scope and,
/// with it, an unconditional STATS body change (windowed_rows_ingested /
/// window_epoch travel mid-body), so mixed-version fleets refuse each
/// other explicitly instead of misparsing counters. Version 3 added the
/// frozen-format SNAPSHOT flag and another unconditional STATS body
/// change (the last_snapshot_* / last_restore_* counters). Version 4
/// added the METRICS opcode (telemetry text exposition, served by
/// writers and replicas alike) and an unconditional STATS body change
/// (the per-status error counters errors_malformed /
/// errors_unknown_opcode / errors_unsupported / errors_too_large /
/// errors_bad_state). Version 5 added the TRACE opcode (request-scoped
/// trace export — recent sampled traces as Chrome trace-event JSON, or
/// the always-on flight recorder as text — served by writers and
/// replicas alike) and an unconditional STATS body change (the
/// traces_captured_total / flight_recorder_dropped_total counters).
inline constexpr uint8_t kProtocolVersion = 5;

/// High bit of the SNAPSHOT request scope byte: the client wants the
/// frozen mmap-able image (wire kind 8) instead of the v2 stream
/// encoding. Counts scope only; the low 7 bits stay the QueryScope.
inline constexpr uint8_t kSnapshotFrozenFlag = 0x80;

/// Request opcodes (part of the wire contract; values are stable).
enum class Opcode : uint8_t {
  kIngestBatch = 1,
  kQuerySum = 2,
  kQueryTopK = 3,
  kQueryGroupBy = 4,
  kSnapshot = 5,
  kRestore = 6,
  kStats = 7,
  kShutdown = 8,
  kMetrics = 9,
  kTrace = 10,
};

/// Response status codes.
enum class Status : uint8_t {
  kOk = 0,
  kMalformed = 1,      ///< request failed to decode
  kUnknownOpcode = 2,  ///< opcode not in the table above
  kUnsupported = 3,    ///< wrong protocol version / feature not enabled
  kTooLarge = 4,       ///< caps exceeded (batch rows, k, blob size)
  kBadState = 5,       ///< e.g. RESTORE of malformed sketch bytes
};

/// Which sketch a query, snapshot, or restore addresses.
enum class QueryScope : uint8_t {
  kCounts = 0,    ///< unit-row Unbiased Space Saving state
  kWeighted = 1,  ///< real-valued WeightedSpaceSaving state
  kWindow = 2,    ///< epoch-ring WindowedSpaceSaving state
};

/// Which metric families a METRICS request selects (values are wire
/// contract): each maps to a family-name prefix in the registry
/// (`dsketch_service_`, `dsketch_shard_`, ...); kAll is everything.
enum class MetricsScope : uint8_t {
  kAll = 0,
  kService = 1,
  kShard = 2,
  kWindow = 3,
  kWire = 4,
  kUtil = 5,
};

/// The registry family prefix `scope` selects ("dsketch_" for kAll).
std::string_view MetricsScopePrefix(MetricsScope scope);

/// Which trace export a TRACE request selects (values are wire
/// contract).
enum class TraceScope : uint8_t {
  kRecent = 0,  ///< recent sampled traces as Chrome trace-event JSON
  kFlight = 1,  ///< flight-recorder span ring as a compact text dump
};

// The element-count caps (kMaxBatchRows, kMaxTopK, ...) are shared with
// the frame layer through service/limits.h. Window last_k values are
// bounded by the ring cap, kMaxWindowEpochs, and epoch stamps by
// kMaxEpochStamp (both window/windowed_sketch.h, shared with the window
// wire codec so a restored ring obeys the same clock bounds).

/// Parsed header common to every request.
struct RequestHeader {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kStats;
  uint64_t request_id = 0;
};

/// Parsed header common to every response.
struct ResponseHeader {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kStats;
  uint64_t request_id = 0;
  Status status = Status::kOk;
};

/// Wire form of a conjunctive attribute predicate (query/predicate.h):
/// attr[dim] IN values, ANDed across conditions. Empty = always true.
struct PredicateSpec {
  struct Condition {
    uint64_t dim = 0;
    std::vector<uint32_t> values;
  };
  std::vector<Condition> conditions;

  /// Convenience builders mirroring Predicate's chaining API.
  PredicateSpec& WhereEq(uint64_t dim, uint32_t value) {
    conditions.push_back({dim, {value}});
    return *this;
  }
  PredicateSpec& WhereIn(uint64_t dim, std::vector<uint32_t> values) {
    conditions.push_back({dim, std::move(values)});
    return *this;
  }
};

struct IngestBatchRequest {
  std::vector<uint64_t> items;
  std::vector<double> weights;  ///< empty (unit rows) or items.size()
  bool windowed = false;        ///< rows land in the epoch ring
  uint64_t epoch = 0;           ///< ring epoch stamp (windowed only)
};
struct IngestBatchResponse {
  uint64_t rows_accepted = 0;
};

struct QuerySumRequest {
  QueryScope scope = QueryScope::kCounts;
  uint64_t last_k = 0;  ///< window scope: newest epochs to merge (0 = all)
  PredicateSpec where;
};
struct QuerySumResponse {
  double estimate = 0.0;
  double variance = 0.0;
  uint64_t items_in_sample = 0;
};

struct QueryTopKRequest {
  QueryScope scope = QueryScope::kCounts;
  uint64_t k = 0;
  uint64_t last_k = 0;  ///< window scope: newest epochs to merge (0 = all)
};
struct QueryTopKResponse {
  QueryScope scope = QueryScope::kCounts;
  std::vector<SketchEntry> counts;      ///< scope == kCounts or kWindow
  std::vector<WeightedEntry> weighted;  ///< filled when scope == kWeighted
};

struct QueryGroupByRequest {
  uint64_t dim1 = 0;
  bool has_dim2 = false;
  uint64_t dim2 = 0;
  PredicateSpec where;
};
struct GroupRow {
  uint64_t key = 0;  ///< attr value (1-way) or PackGroupKey pair (2-way)
  double estimate = 0.0;
  double variance = 0.0;
  uint64_t items_in_sample = 0;
};
struct QueryGroupByResponse {
  std::vector<GroupRow> groups;
};

struct SnapshotRequest {
  QueryScope scope = QueryScope::kCounts;
  bool frozen = false;  ///< counts scope: return the frozen image
};
struct SnapshotResponse {
  std::string blob;  ///< sketch wire bytes (core/serialization.h)
};

struct MetricsRequest {
  MetricsScope scope = MetricsScope::kAll;
};
struct MetricsResponse {
  std::string text;  ///< Prometheus-style exposition (obs/metrics.h)
};

struct TraceRequest {
  TraceScope scope = TraceScope::kRecent;
};
struct TraceResponse {
  std::string text;  ///< Chrome trace-event JSON or flight-recorder text
};

struct RestoreRequest {
  QueryScope scope = QueryScope::kCounts;
  std::string blob;
};
struct RestoreResponse {
  uint64_t num_absorbed = 0;  ///< snapshots absorbed so far (this scope)
};

/// Snapshot/restore blob format codes reported in STATS.
enum class SnapshotFormat : uint8_t {
  kNone = 0,    ///< no snapshot/restore served yet
  kStream = 1,  ///< v1/v2 stream encoding (core/serialization.h)
  kFrozen = 2,  ///< frozen mmap-able image (wire/frozen.h)
};

struct StatsResponse {
  uint64_t rows_ingested = 0;           ///< unit rows accepted
  uint64_t weighted_rows_ingested = 0;  ///< weighted rows accepted
  uint64_t windowed_rows_ingested = 0;  ///< epoch-stamped rows accepted
  uint64_t batches = 0;
  uint64_t queries = 0;
  uint64_t snapshots = 0;
  uint64_t restores = 0;
  uint64_t errors = 0;           ///< requests answered with status != kOk
  /// Error responses broken down by status — adversarial traffic
  /// (malformed frames, unknown opcodes, oversized claims) is visible
  /// per cause, on writers and replicas alike. Sums to `errors`.
  uint64_t errors_malformed = 0;
  uint64_t errors_unknown_opcode = 0;
  uint64_t errors_unsupported = 0;
  uint64_t errors_too_large = 0;
  uint64_t errors_bad_state = 0;
  uint64_t num_shards = 0;
  uint64_t window_epoch = 0;     ///< open epoch of the windowed ring
  int64_t total_count = 0;       ///< TotalCount() of the counts view
  double total_weight = 0.0;     ///< TotalWeight() of the weighted view
  /// Format and blob size of the most recent SNAPSHOT served / RESTORE
  /// absorbed (kNone / 0 until one happens) — operators watching a
  /// replica fleet see which nodes already hand out frozen images.
  SnapshotFormat last_snapshot_format = SnapshotFormat::kNone;
  uint64_t last_snapshot_bytes = 0;
  SnapshotFormat last_restore_format = SnapshotFormat::kNone;
  uint64_t last_restore_bytes = 0;
  /// Sampling pressure of the tracing layer (obs/trace.h): how many
  /// request traces sampling has captured, and how many flight-recorder
  /// spans newer ones have already overwritten.
  uint64_t traces_captured_total = 0;
  uint64_t flight_recorder_dropped_total = 0;
};

// --- encoders (request side) -----------------------------------------

std::string EncodeIngestBatchRequest(uint64_t request_id,
                                     const IngestBatchRequest& msg);
std::string EncodeQuerySumRequest(uint64_t request_id,
                                  const QuerySumRequest& msg);
std::string EncodeQueryTopKRequest(uint64_t request_id,
                                   const QueryTopKRequest& msg);
std::string EncodeQueryGroupByRequest(uint64_t request_id,
                                      const QueryGroupByRequest& msg);
std::string EncodeSnapshotRequest(uint64_t request_id,
                                  const SnapshotRequest& msg);
std::string EncodeRestoreRequest(uint64_t request_id,
                                 const RestoreRequest& msg);
std::string EncodeStatsRequest(uint64_t request_id);
std::string EncodeShutdownRequest(uint64_t request_id);
std::string EncodeMetricsRequest(uint64_t request_id,
                                 const MetricsRequest& msg);
std::string EncodeTraceRequest(uint64_t request_id, const TraceRequest& msg);

// --- encoders (response side) ----------------------------------------

/// Header-only response carrying an error status (no body).
std::string EncodeErrorResponse(Opcode opcode, uint64_t request_id,
                                Status status);
std::string EncodeIngestBatchResponse(uint64_t request_id,
                                      const IngestBatchResponse& msg);
std::string EncodeQuerySumResponse(uint64_t request_id,
                                   const QuerySumResponse& msg);
std::string EncodeQueryTopKResponse(uint64_t request_id,
                                    const QueryTopKResponse& msg);
std::string EncodeQueryGroupByResponse(uint64_t request_id,
                                       const QueryGroupByResponse& msg);
std::string EncodeSnapshotResponse(uint64_t request_id,
                                   const SnapshotResponse& msg);
std::string EncodeRestoreResponse(uint64_t request_id,
                                  const RestoreResponse& msg);
std::string EncodeStatsResponse(uint64_t request_id,
                                const StatsResponse& msg);
std::string EncodeShutdownResponse(uint64_t request_id);
std::string EncodeMetricsResponse(uint64_t request_id,
                                  const MetricsResponse& msg);
std::string EncodeTraceResponse(uint64_t request_id, const TraceResponse& msg);

// --- decoders ---------------------------------------------------------
//
// Header decoders leave the reader at the first body byte. Body decoders
// require the reader to end exactly at the payload's last byte and
// return false otherwise (trailing bytes = malformed).

bool DecodeRequestHeader(wire::VarintReader& reader, RequestHeader* out);
bool DecodeResponseHeader(wire::VarintReader& reader, ResponseHeader* out);

bool DecodeIngestBatchRequest(wire::VarintReader& reader,
                              IngestBatchRequest* out);
bool DecodeQuerySumRequest(wire::VarintReader& reader, QuerySumRequest* out);
bool DecodeQueryTopKRequest(wire::VarintReader& reader, QueryTopKRequest* out);
bool DecodeQueryGroupByRequest(wire::VarintReader& reader,
                               QueryGroupByRequest* out);
bool DecodeSnapshotRequest(wire::VarintReader& reader, SnapshotRequest* out);
bool DecodeRestoreRequest(wire::VarintReader& reader, RestoreRequest* out);
bool DecodeMetricsRequest(wire::VarintReader& reader, MetricsRequest* out);
bool DecodeTraceRequest(wire::VarintReader& reader, TraceRequest* out);

bool DecodeIngestBatchResponse(wire::VarintReader& reader,
                               IngestBatchResponse* out);
bool DecodeQuerySumResponse(wire::VarintReader& reader, QuerySumResponse* out);
bool DecodeQueryTopKResponse(wire::VarintReader& reader,
                             QueryTopKResponse* out);
bool DecodeQueryGroupByResponse(wire::VarintReader& reader,
                                QueryGroupByResponse* out);
bool DecodeSnapshotResponse(wire::VarintReader& reader, SnapshotResponse* out);
bool DecodeRestoreResponse(wire::VarintReader& reader, RestoreResponse* out);
bool DecodeStatsResponse(wire::VarintReader& reader, StatsResponse* out);
bool DecodeMetricsResponse(wire::VarintReader& reader, MetricsResponse* out);
bool DecodeTraceResponse(wire::VarintReader& reader, TraceResponse* out);

}  // namespace dsketch

#endif  // DSKETCH_SERVICE_PROTOCOL_H_
