#include "service/frame.h"

#include <cstring>

namespace dsketch {

namespace {

// Fills `buf` with exactly `n` bytes. Returns how many arrived (< n only
// on EOF mid-read).
size_t ReadFully(Transport& transport, char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    size_t got = transport.Read(buf + done, n - done);
    if (got == 0) break;
    done += got;
  }
  return done;
}

}  // namespace

bool WriteFrame(Transport& transport, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  char prefix[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(prefix, &len, sizeof(len));
  // One buffered write keeps the frame contiguous on the wire (and one
  // syscall on fd transports).
  std::string frame;
  frame.reserve(sizeof(prefix) + payload.size());
  frame.append(prefix, sizeof(prefix));
  frame.append(payload.data(), payload.size());
  return transport.Write(frame);
}

FrameStatus ReadFrame(Transport& transport, std::string* payload) {
  char prefix[4];
  size_t got = ReadFully(transport, prefix, sizeof(prefix));
  if (got == 0) return FrameStatus::kEof;
  if (got < sizeof(prefix)) return FrameStatus::kMalformed;
  uint32_t len;
  std::memcpy(&len, prefix, sizeof(len));
  if (len > kMaxFramePayload) return FrameStatus::kMalformed;
  payload->clear();
  // Grow with the bytes that actually arrive (bounded chunks), so a
  // hostile length claim never drives the allocation.
  char chunk[4096];
  size_t remaining = len;
  while (remaining > 0) {
    size_t want = remaining < sizeof(chunk) ? remaining : sizeof(chunk);
    size_t n = ReadFully(transport, chunk, want);
    payload->append(chunk, n);
    if (n < want) return FrameStatus::kMalformed;  // EOF mid-frame
    remaining -= n;
  }
  return FrameStatus::kOk;
}

}  // namespace dsketch
