#include "service/client.h"

#include "service/frame.h"
#include "util/logging.h"

namespace dsketch {

std::optional<std::string> SketchClient::RoundTrip(Opcode opcode,
                                                   uint64_t request_id,
                                                   const std::string& request) {
  last_status_ = kTransportError;
  if (!WriteFrame(transport_, request)) return std::nullopt;
  std::string payload;
  if (ReadFrame(transport_, &payload) != FrameStatus::kOk) return std::nullopt;
  wire::VarintReader reader(payload);
  ResponseHeader header;
  if (!DecodeResponseHeader(reader, &header)) return std::nullopt;
  if (header.version != kProtocolVersion || header.opcode != opcode ||
      header.request_id != request_id) {
    return std::nullopt;
  }
  last_status_ = static_cast<uint8_t>(header.status);
  if (header.status != Status::kOk) return std::nullopt;
  return payload.substr(payload.size() - reader.remaining());
}

// Shared tail of the three ingest shapes: send the populated request,
// decode the response, require every row accepted.
bool SketchClient::SendIngest(const IngestBatchRequest& req) {
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kIngestBatch, id, EncodeIngestBatchRequest(id, req));
  if (!body.has_value()) return false;
  wire::VarintReader reader(*body);
  IngestBatchResponse rsp;
  return DecodeIngestBatchResponse(reader, &rsp) &&
         rsp.rows_accepted == req.items.size();
}

bool SketchClient::IngestBatch(Span<const uint64_t> items) {
  IngestBatchRequest req;
  req.items.assign(items.begin(), items.end());
  return SendIngest(req);
}

bool SketchClient::IngestWeighted(Span<const uint64_t> items,
                                  Span<const double> weights) {
  DSKETCH_CHECK(items.size() == weights.size());
  IngestBatchRequest req;
  req.items.assign(items.begin(), items.end());
  req.weights.assign(weights.begin(), weights.end());
  return SendIngest(req);
}

bool SketchClient::IngestWindowed(Span<const uint64_t> items, uint64_t epoch) {
  IngestBatchRequest req;
  req.items.assign(items.begin(), items.end());
  req.windowed = true;
  req.epoch = epoch;
  return SendIngest(req);
}

std::optional<QuerySumResponse> SketchClient::QuerySum(
    const PredicateSpec& where, QueryScope scope, uint64_t last_k) {
  QuerySumRequest req;
  req.scope = scope;
  req.last_k = last_k;
  req.where = where;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kQuerySum, id, EncodeQuerySumRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  QuerySumResponse rsp;
  if (!DecodeQuerySumResponse(reader, &rsp)) return std::nullopt;
  return rsp;
}

std::optional<QueryTopKResponse> SketchClient::QueryTopK(uint64_t k,
                                                         QueryScope scope,
                                                         uint64_t last_k) {
  QueryTopKRequest req;
  req.scope = scope;
  req.k = k;
  req.last_k = last_k;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kQueryTopK, id, EncodeQueryTopKRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  QueryTopKResponse rsp;
  if (!DecodeQueryTopKResponse(reader, &rsp)) return std::nullopt;
  return rsp;
}

std::optional<QueryGroupByResponse> SketchClient::QueryGroupBy(
    uint64_t dim, const PredicateSpec& where) {
  QueryGroupByRequest req;
  req.dim1 = dim;
  req.where = where;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kQueryGroupBy, id, EncodeQueryGroupByRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  QueryGroupByResponse rsp;
  if (!DecodeQueryGroupByResponse(reader, &rsp)) return std::nullopt;
  return rsp;
}

std::optional<QueryGroupByResponse> SketchClient::QueryGroupBy2(
    uint64_t dim1, uint64_t dim2, const PredicateSpec& where) {
  QueryGroupByRequest req;
  req.dim1 = dim1;
  req.has_dim2 = true;
  req.dim2 = dim2;
  req.where = where;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kQueryGroupBy, id, EncodeQueryGroupByRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  QueryGroupByResponse rsp;
  if (!DecodeQueryGroupByResponse(reader, &rsp)) return std::nullopt;
  return rsp;
}

std::optional<std::string> SketchClient::Snapshot(QueryScope scope,
                                                  bool frozen) {
  SnapshotRequest req;
  req.scope = scope;
  req.frozen = frozen;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kSnapshot, id, EncodeSnapshotRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  SnapshotResponse rsp;
  if (!DecodeSnapshotResponse(reader, &rsp)) return std::nullopt;
  return std::move(rsp.blob);
}

bool SketchClient::Restore(std::string_view blob, QueryScope scope) {
  RestoreRequest req;
  req.scope = scope;
  req.blob.assign(blob.data(), blob.size());
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kRestore, id, EncodeRestoreRequest(id, req));
  if (!body.has_value()) return false;
  wire::VarintReader reader(*body);
  RestoreResponse rsp;
  return DecodeRestoreResponse(reader, &rsp);
}

std::optional<StatsResponse> SketchClient::Stats() {
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kStats, id, EncodeStatsRequest(id));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  StatsResponse rsp;
  if (!DecodeStatsResponse(reader, &rsp)) return std::nullopt;
  return rsp;
}

std::optional<std::string> SketchClient::Metrics(MetricsScope scope) {
  MetricsRequest req;
  req.scope = scope;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kMetrics, id, EncodeMetricsRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  MetricsResponse rsp;
  if (!DecodeMetricsResponse(reader, &rsp)) return std::nullopt;
  return std::move(rsp.text);
}

std::optional<std::string> SketchClient::Trace(TraceScope scope) {
  TraceRequest req;
  req.scope = scope;
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kTrace, id, EncodeTraceRequest(id, req));
  if (!body.has_value()) return std::nullopt;
  wire::VarintReader reader(*body);
  TraceResponse rsp;
  if (!DecodeTraceResponse(reader, &rsp)) return std::nullopt;
  return std::move(rsp.text);
}

bool SketchClient::Shutdown() {
  const uint64_t id = next_request_id_++;
  std::optional<std::string> body =
      RoundTrip(Opcode::kShutdown, id, EncodeShutdownRequest(id));
  return body.has_value() && body->empty();
}

}  // namespace dsketch
