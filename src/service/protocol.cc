#include "service/protocol.h"

#include <limits>

namespace dsketch {

namespace {

void PutRequestHeader(wire::VarintWriter& w, Opcode opcode,
                      uint64_t request_id) {
  w.PutByte(kProtocolVersion);
  w.PutByte(static_cast<uint8_t>(opcode));
  w.PutVarint(request_id);
}

void PutResponseHeader(wire::VarintWriter& w, Opcode opcode,
                       uint64_t request_id, Status status) {
  w.PutByte(kProtocolVersion);
  w.PutByte(static_cast<uint8_t>(opcode));
  w.PutVarint(request_id);
  w.PutByte(static_cast<uint8_t>(status));
}

void PutPredicate(wire::VarintWriter& w, const PredicateSpec& pred) {
  w.PutVarint(pred.conditions.size());
  for (const PredicateSpec::Condition& c : pred.conditions) {
    w.PutVarint(c.dim);
    w.PutVarint(c.values.size());
    for (uint32_t v : c.values) w.PutVarint(v);
  }
}

bool ReadPredicate(wire::VarintReader& reader, PredicateSpec* out) {
  uint64_t n_conditions;
  if (!reader.ReadVarint(&n_conditions)) return false;
  if (n_conditions > kMaxPredicateConditions) return false;
  out->conditions.clear();
  out->conditions.reserve(static_cast<size_t>(n_conditions));
  for (uint64_t i = 0; i < n_conditions; ++i) {
    PredicateSpec::Condition cond;
    uint64_t n_values;
    if (!reader.ReadVarint(&cond.dim)) return false;
    if (!reader.ReadVarint(&n_values)) return false;
    // Byte budget: each value takes at least one byte on the wire.
    if (n_values > kMaxPredicateValues || n_values > reader.remaining()) {
      return false;
    }
    cond.values.reserve(static_cast<size_t>(n_values));
    for (uint64_t v = 0; v < n_values; ++v) {
      uint64_t value;
      if (!reader.ReadVarint(&value)) return false;
      if (value > std::numeric_limits<uint32_t>::max()) return false;
      cond.values.push_back(static_cast<uint32_t>(value));
    }
    out->conditions.push_back(std::move(cond));
  }
  return true;
}

bool ReadScope(wire::VarintReader& reader, QueryScope* out) {
  uint8_t scope;
  if (!reader.ReadByte(&scope)) return false;
  if (scope > static_cast<uint8_t>(QueryScope::kWindow)) return false;
  *out = static_cast<QueryScope>(scope);
  return true;
}

// last_k travels only on window-scoped queries; the ring cap bounds it.
bool ReadLastK(wire::VarintReader& reader, QueryScope scope, uint64_t* out) {
  *out = 0;
  if (scope != QueryScope::kWindow) return true;
  if (!reader.ReadVarint(out)) return false;
  return *out <= kMaxWindowEpochs;
}

}  // namespace

std::string_view MetricsScopePrefix(MetricsScope scope) {
  switch (scope) {
    case MetricsScope::kAll:
      return "dsketch_";
    case MetricsScope::kService:
      return "dsketch_service_";
    case MetricsScope::kShard:
      return "dsketch_shard_";
    case MetricsScope::kWindow:
      return "dsketch_window_";
    case MetricsScope::kWire:
      return "dsketch_wire_";
    case MetricsScope::kUtil:
      return "dsketch_util_";
  }
  return "dsketch_";
}

// --- request encoders -------------------------------------------------

std::string EncodeIngestBatchRequest(uint64_t request_id,
                                     const IngestBatchRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kIngestBatch, request_id);
  const bool weighted = !msg.weights.empty();
  w.PutByte(static_cast<uint8_t>((weighted ? 1 : 0) |
                                 (msg.windowed ? 2 : 0)));
  if (msg.windowed) w.PutVarint(msg.epoch);
  w.PutVarint(msg.items.size());
  for (uint64_t item : msg.items) w.PutVarint(item);
  if (weighted) {
    for (double weight : msg.weights) w.PutDouble(weight);
  }
  return out;
}

std::string EncodeQuerySumRequest(uint64_t request_id,
                                  const QuerySumRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kQuerySum, request_id);
  w.PutByte(static_cast<uint8_t>(msg.scope));
  if (msg.scope == QueryScope::kWindow) w.PutVarint(msg.last_k);
  PutPredicate(w, msg.where);
  return out;
}

std::string EncodeQueryTopKRequest(uint64_t request_id,
                                   const QueryTopKRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kQueryTopK, request_id);
  w.PutByte(static_cast<uint8_t>(msg.scope));
  w.PutVarint(msg.k);
  if (msg.scope == QueryScope::kWindow) w.PutVarint(msg.last_k);
  return out;
}

std::string EncodeQueryGroupByRequest(uint64_t request_id,
                                      const QueryGroupByRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kQueryGroupBy, request_id);
  w.PutVarint(msg.dim1);
  w.PutByte(msg.has_dim2 ? 1 : 0);
  w.PutVarint(msg.dim2);
  PutPredicate(w, msg.where);
  return out;
}

std::string EncodeSnapshotRequest(uint64_t request_id,
                                  const SnapshotRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kSnapshot, request_id);
  w.PutByte(static_cast<uint8_t>(
      static_cast<uint8_t>(msg.scope) |
      (msg.frozen ? kSnapshotFrozenFlag : 0)));
  return out;
}

std::string EncodeRestoreRequest(uint64_t request_id,
                                 const RestoreRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kRestore, request_id);
  w.PutByte(static_cast<uint8_t>(msg.scope));
  w.PutVarint(msg.blob.size());
  out.append(msg.blob);
  return out;
}

std::string EncodeStatsRequest(uint64_t request_id) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kStats, request_id);
  return out;
}

std::string EncodeShutdownRequest(uint64_t request_id) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kShutdown, request_id);
  return out;
}

std::string EncodeMetricsRequest(uint64_t request_id,
                                 const MetricsRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kMetrics, request_id);
  w.PutByte(static_cast<uint8_t>(msg.scope));
  return out;
}

std::string EncodeTraceRequest(uint64_t request_id, const TraceRequest& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutRequestHeader(w, Opcode::kTrace, request_id);
  w.PutByte(static_cast<uint8_t>(msg.scope));
  return out;
}

// --- response encoders ------------------------------------------------

std::string EncodeErrorResponse(Opcode opcode, uint64_t request_id,
                                Status status) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, opcode, request_id, status);
  return out;
}

std::string EncodeIngestBatchResponse(uint64_t request_id,
                                      const IngestBatchResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kIngestBatch, request_id, Status::kOk);
  w.PutVarint(msg.rows_accepted);
  return out;
}

std::string EncodeQuerySumResponse(uint64_t request_id,
                                   const QuerySumResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kQuerySum, request_id, Status::kOk);
  w.PutDouble(msg.estimate);
  w.PutDouble(msg.variance);
  w.PutVarint(msg.items_in_sample);
  return out;
}

std::string EncodeQueryTopKResponse(uint64_t request_id,
                                    const QueryTopKResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kQueryTopK, request_id, Status::kOk);
  w.PutByte(static_cast<uint8_t>(msg.scope));
  if (msg.scope != QueryScope::kWeighted) {
    w.PutVarint(msg.counts.size());
    for (const SketchEntry& e : msg.counts) {
      w.PutVarint(e.item);
      w.PutVarint(static_cast<uint64_t>(e.count));
    }
  } else {
    w.PutVarint(msg.weighted.size());
    for (const WeightedEntry& e : msg.weighted) {
      w.PutVarint(e.item);
      w.PutDouble(e.weight);
    }
  }
  return out;
}

std::string EncodeQueryGroupByResponse(uint64_t request_id,
                                       const QueryGroupByResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kQueryGroupBy, request_id, Status::kOk);
  w.PutVarint(msg.groups.size());
  for (const GroupRow& g : msg.groups) {
    w.PutVarint(g.key);
    w.PutDouble(g.estimate);
    w.PutDouble(g.variance);
    w.PutVarint(g.items_in_sample);
  }
  return out;
}

std::string EncodeSnapshotResponse(uint64_t request_id,
                                   const SnapshotResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kSnapshot, request_id, Status::kOk);
  w.PutVarint(msg.blob.size());
  out.append(msg.blob);
  return out;
}

std::string EncodeRestoreResponse(uint64_t request_id,
                                  const RestoreResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kRestore, request_id, Status::kOk);
  w.PutVarint(msg.num_absorbed);
  return out;
}

std::string EncodeStatsResponse(uint64_t request_id,
                                const StatsResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kStats, request_id, Status::kOk);
  w.PutVarint(msg.rows_ingested);
  w.PutVarint(msg.weighted_rows_ingested);
  w.PutVarint(msg.windowed_rows_ingested);
  w.PutVarint(msg.batches);
  w.PutVarint(msg.queries);
  w.PutVarint(msg.snapshots);
  w.PutVarint(msg.restores);
  w.PutVarint(msg.errors);
  w.PutVarint(msg.errors_malformed);
  w.PutVarint(msg.errors_unknown_opcode);
  w.PutVarint(msg.errors_unsupported);
  w.PutVarint(msg.errors_too_large);
  w.PutVarint(msg.errors_bad_state);
  w.PutVarint(msg.num_shards);
  w.PutVarint(msg.window_epoch);
  w.PutVarintSigned(msg.total_count);
  w.PutDouble(msg.total_weight);
  w.PutByte(static_cast<uint8_t>(msg.last_snapshot_format));
  w.PutVarint(msg.last_snapshot_bytes);
  w.PutByte(static_cast<uint8_t>(msg.last_restore_format));
  w.PutVarint(msg.last_restore_bytes);
  w.PutVarint(msg.traces_captured_total);
  w.PutVarint(msg.flight_recorder_dropped_total);
  return out;
}

std::string EncodeShutdownResponse(uint64_t request_id) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kShutdown, request_id, Status::kOk);
  return out;
}

std::string EncodeMetricsResponse(uint64_t request_id,
                                  const MetricsResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kMetrics, request_id, Status::kOk);
  w.PutVarint(msg.text.size());
  out.append(msg.text);
  return out;
}

std::string EncodeTraceResponse(uint64_t request_id,
                                const TraceResponse& msg) {
  std::string out;
  wire::VarintWriter w(out);
  PutResponseHeader(w, Opcode::kTrace, request_id, Status::kOk);
  w.PutVarint(msg.text.size());
  out.append(msg.text);
  return out;
}

// --- decoders ---------------------------------------------------------

bool DecodeRequestHeader(wire::VarintReader& reader, RequestHeader* out) {
  uint8_t opcode;
  if (!reader.ReadByte(&out->version)) return false;
  if (!reader.ReadByte(&opcode)) return false;
  if (!reader.ReadVarint(&out->request_id)) return false;
  out->opcode = static_cast<Opcode>(opcode);
  return true;
}

bool DecodeResponseHeader(wire::VarintReader& reader, ResponseHeader* out) {
  uint8_t opcode;
  uint8_t status;
  if (!reader.ReadByte(&out->version)) return false;
  if (!reader.ReadByte(&opcode)) return false;
  if (!reader.ReadVarint(&out->request_id)) return false;
  if (!reader.ReadByte(&status)) return false;
  if (status > static_cast<uint8_t>(Status::kBadState)) return false;
  out->opcode = static_cast<Opcode>(opcode);
  out->status = static_cast<Status>(status);
  return true;
}

bool DecodeIngestBatchRequest(wire::VarintReader& reader,
                              IngestBatchRequest* out) {
  uint8_t flags;
  uint64_t n;
  if (!reader.ReadByte(&flags)) return false;
  // Weighted (1) and windowed (2) are mutually exclusive: the weighted
  // fleet keeps no epoch ring.
  if (flags > 2) return false;
  out->windowed = (flags & 2) != 0;
  out->epoch = 0;
  if (out->windowed &&
      (!reader.ReadVarint(&out->epoch) || out->epoch > kMaxEpochStamp)) {
    return false;
  }
  if (!reader.ReadVarint(&n)) return false;
  // Byte budget: every item takes >= 1 byte, every weight exactly 8, so
  // a hostile row count fails here before any allocation.
  const uint64_t min_bytes = flags == 1 ? n * 9 : n;
  if (n > kMaxBatchRows || min_bytes > reader.remaining()) return false;
  out->items.clear();
  out->weights.clear();
  out->items.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t item;
    if (!reader.ReadVarint(&item)) return false;
    out->items.push_back(item);
  }
  if (flags == 1) {
    out->weights.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      double weight;
      if (!reader.ReadDouble(&weight)) return false;
      // Reject weights the sketches would CHECK-fail on.
      if (!(weight > 0.0) || weight > std::numeric_limits<double>::max()) {
        return false;
      }
      out->weights.push_back(weight);
    }
  }
  return reader.AtEnd();
}

bool DecodeQuerySumRequest(wire::VarintReader& reader, QuerySumRequest* out) {
  if (!ReadScope(reader, &out->scope)) return false;
  if (!ReadLastK(reader, out->scope, &out->last_k)) return false;
  if (!ReadPredicate(reader, &out->where)) return false;
  return reader.AtEnd();
}

bool DecodeQueryTopKRequest(wire::VarintReader& reader,
                            QueryTopKRequest* out) {
  if (!ReadScope(reader, &out->scope)) return false;
  if (!reader.ReadVarint(&out->k)) return false;
  if (out->k == 0 || out->k > kMaxTopK) return false;
  if (!ReadLastK(reader, out->scope, &out->last_k)) return false;
  return reader.AtEnd();
}

bool DecodeQueryGroupByRequest(wire::VarintReader& reader,
                               QueryGroupByRequest* out) {
  uint8_t has_dim2;
  if (!reader.ReadVarint(&out->dim1)) return false;
  if (!reader.ReadByte(&has_dim2)) return false;
  if (has_dim2 > 1) return false;
  out->has_dim2 = has_dim2 == 1;
  if (!reader.ReadVarint(&out->dim2)) return false;
  if (!ReadPredicate(reader, &out->where)) return false;
  return reader.AtEnd();
}

bool DecodeSnapshotRequest(wire::VarintReader& reader, SnapshotRequest* out) {
  // The frozen flag rides the high bit of the scope byte, so mask it off
  // before validating the scope proper (ReadScope would reject it).
  uint8_t raw;
  if (!reader.ReadByte(&raw)) return false;
  out->frozen = (raw & kSnapshotFrozenFlag) != 0;
  const uint8_t scope = raw & static_cast<uint8_t>(~kSnapshotFrozenFlag);
  if (scope > static_cast<uint8_t>(QueryScope::kWindow)) return false;
  out->scope = static_cast<QueryScope>(scope);
  return reader.AtEnd();
}

bool DecodeRestoreRequest(wire::VarintReader& reader, RestoreRequest* out) {
  uint64_t n_bytes;
  if (!ReadScope(reader, &out->scope)) return false;
  if (!reader.ReadVarint(&n_bytes)) return false;
  if (n_bytes != reader.remaining()) return false;
  out->blob.clear();
  if (!reader.ReadBytes(static_cast<size_t>(n_bytes), &out->blob)) {
    return false;
  }
  return reader.AtEnd();
}

bool DecodeMetricsRequest(wire::VarintReader& reader, MetricsRequest* out) {
  uint8_t scope;
  if (!reader.ReadByte(&scope)) return false;
  if (scope > static_cast<uint8_t>(MetricsScope::kUtil)) return false;
  out->scope = static_cast<MetricsScope>(scope);
  return reader.AtEnd();
}

bool DecodeTraceRequest(wire::VarintReader& reader, TraceRequest* out) {
  uint8_t scope;
  if (!reader.ReadByte(&scope)) return false;
  if (scope > static_cast<uint8_t>(TraceScope::kFlight)) return false;
  out->scope = static_cast<TraceScope>(scope);
  return reader.AtEnd();
}

bool DecodeIngestBatchResponse(wire::VarintReader& reader,
                               IngestBatchResponse* out) {
  if (!reader.ReadVarint(&out->rows_accepted)) return false;
  return reader.AtEnd();
}

bool DecodeQuerySumResponse(wire::VarintReader& reader,
                            QuerySumResponse* out) {
  if (!reader.ReadDouble(&out->estimate)) return false;
  if (!reader.ReadDouble(&out->variance)) return false;
  if (!reader.ReadVarint(&out->items_in_sample)) return false;
  return reader.AtEnd();
}

bool DecodeQueryTopKResponse(wire::VarintReader& reader,
                             QueryTopKResponse* out) {
  uint64_t n;
  if (!ReadScope(reader, &out->scope)) return false;
  if (!reader.ReadVarint(&n)) return false;
  if (n > kMaxTopK || n > reader.remaining()) return false;
  out->counts.clear();
  out->weighted.clear();
  if (out->scope != QueryScope::kWeighted) {
    out->counts.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      SketchEntry e;
      int64_t count;
      if (!reader.ReadVarint(&e.item)) return false;
      if (!reader.ReadVarintInt64(&count)) return false;
      e.count = count;
      out->counts.push_back(e);
    }
  } else {
    out->weighted.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      WeightedEntry e;
      if (!reader.ReadVarint(&e.item)) return false;
      if (!reader.ReadDouble(&e.weight)) return false;
      out->weighted.push_back(e);
    }
  }
  return reader.AtEnd();
}

bool DecodeQueryGroupByResponse(wire::VarintReader& reader,
                                QueryGroupByResponse* out) {
  uint64_t n;
  if (!reader.ReadVarint(&n)) return false;
  if (n > kMaxGroupRows || n > reader.remaining()) return false;
  out->groups.clear();
  out->groups.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    GroupRow g;
    if (!reader.ReadVarint(&g.key)) return false;
    if (!reader.ReadDouble(&g.estimate)) return false;
    if (!reader.ReadDouble(&g.variance)) return false;
    if (!reader.ReadVarint(&g.items_in_sample)) return false;
    out->groups.push_back(g);
  }
  return reader.AtEnd();
}

bool DecodeSnapshotResponse(wire::VarintReader& reader,
                            SnapshotResponse* out) {
  uint64_t n_bytes;
  if (!reader.ReadVarint(&n_bytes)) return false;
  if (n_bytes != reader.remaining()) return false;
  out->blob.clear();
  if (!reader.ReadBytes(static_cast<size_t>(n_bytes), &out->blob)) {
    return false;
  }
  return reader.AtEnd();
}

bool DecodeRestoreResponse(wire::VarintReader& reader, RestoreResponse* out) {
  if (!reader.ReadVarint(&out->num_absorbed)) return false;
  return reader.AtEnd();
}

bool DecodeStatsResponse(wire::VarintReader& reader, StatsResponse* out) {
  if (!reader.ReadVarint(&out->rows_ingested)) return false;
  if (!reader.ReadVarint(&out->weighted_rows_ingested)) return false;
  if (!reader.ReadVarint(&out->windowed_rows_ingested)) return false;
  if (!reader.ReadVarint(&out->batches)) return false;
  if (!reader.ReadVarint(&out->queries)) return false;
  if (!reader.ReadVarint(&out->snapshots)) return false;
  if (!reader.ReadVarint(&out->restores)) return false;
  if (!reader.ReadVarint(&out->errors)) return false;
  if (!reader.ReadVarint(&out->errors_malformed)) return false;
  if (!reader.ReadVarint(&out->errors_unknown_opcode)) return false;
  if (!reader.ReadVarint(&out->errors_unsupported)) return false;
  if (!reader.ReadVarint(&out->errors_too_large)) return false;
  if (!reader.ReadVarint(&out->errors_bad_state)) return false;
  if (!reader.ReadVarint(&out->num_shards)) return false;
  if (!reader.ReadVarint(&out->window_epoch)) return false;
  if (!reader.ReadVarintSigned(&out->total_count)) return false;
  if (!reader.ReadDouble(&out->total_weight)) return false;
  uint8_t snapshot_format;
  uint8_t restore_format;
  if (!reader.ReadByte(&snapshot_format)) return false;
  if (snapshot_format > static_cast<uint8_t>(SnapshotFormat::kFrozen)) {
    return false;
  }
  out->last_snapshot_format = static_cast<SnapshotFormat>(snapshot_format);
  if (!reader.ReadVarint(&out->last_snapshot_bytes)) return false;
  if (!reader.ReadByte(&restore_format)) return false;
  if (restore_format > static_cast<uint8_t>(SnapshotFormat::kFrozen)) {
    return false;
  }
  out->last_restore_format = static_cast<SnapshotFormat>(restore_format);
  if (!reader.ReadVarint(&out->last_restore_bytes)) return false;
  if (!reader.ReadVarint(&out->traces_captured_total)) return false;
  if (!reader.ReadVarint(&out->flight_recorder_dropped_total)) return false;
  return reader.AtEnd();
}

bool DecodeMetricsResponse(wire::VarintReader& reader, MetricsResponse* out) {
  uint64_t n_bytes;
  if (!reader.ReadVarint(&n_bytes)) return false;
  if (n_bytes > kMaxMetricsTextBytes || n_bytes != reader.remaining()) {
    return false;
  }
  out->text.clear();
  if (!reader.ReadBytes(static_cast<size_t>(n_bytes), &out->text)) {
    return false;
  }
  return reader.AtEnd();
}

bool DecodeTraceResponse(wire::VarintReader& reader, TraceResponse* out) {
  uint64_t n_bytes;
  if (!reader.ReadVarint(&n_bytes)) return false;
  if (n_bytes > kMaxTraceTextBytes || n_bytes != reader.remaining()) {
    return false;
  }
  out->text.clear();
  if (!reader.ReadBytes(static_cast<size_t>(n_bytes), &out->text)) {
    return false;
  }
  return reader.AtEnd();
}

}  // namespace dsketch
