// SketchClient: typed request/response calls over a framed transport.
//
// One client drives one connection to a SketchServer: each method
// encodes a request, writes it as a frame, blocks for the response
// frame, and decodes it. Calls return nullopt/false on transport
// failure, malformed responses, or a non-OK status — last_status()
// distinguishes the server-reported cause (kTransportError when the
// connection itself failed).
//
// Replication between two servers is two clients and a byte string:
//
//   std::optional<std::string> blob = client_a.Snapshot();
//   client_b.Restore(*blob);    // B now answers for A's rows too
//
// Not thread-safe: one client per thread (requests are matched to
// responses by id on a strictly serial connection).

#ifndef DSKETCH_SERVICE_CLIENT_H_
#define DSKETCH_SERVICE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "service/protocol.h"
#include "service/transport.h"
#include "util/span.h"

namespace dsketch {

/// Client-side status after the last call: a protocol Status from the
/// server, or kTransportError when no well-formed response arrived.
inline constexpr uint8_t kTransportError = 0xFF;

/// Typed client over a framed transport (see SketchServer for the
/// server side).
class SketchClient {
 public:
  /// The transport must outlive the client.
  explicit SketchClient(Transport& transport) : transport_(transport) {}

  /// Streams a batch of unit rows; true when the server accepted it.
  bool IngestBatch(Span<const uint64_t> items);

  /// Streams a batch of (item, weight) rows (sizes must match; weights
  /// must be positive).
  bool IngestWeighted(Span<const uint64_t> items, Span<const double> weights);

  /// Streams a batch of epoch-stamped rows into the windowed ring;
  /// `epoch` must be non-decreasing across calls (a larger stamp
  /// advances the server's ring; an empty batch is a pure advance).
  bool IngestWindowed(Span<const uint64_t> items, uint64_t epoch);

  /// SELECT sum(1) WHERE `where` against the chosen scope. For the
  /// window scope, `last_k` selects how many of the newest epochs to
  /// merge (0 = the full window); other scopes ignore it.
  std::optional<QuerySumResponse> QuerySum(
      const PredicateSpec& where = PredicateSpec(),
      QueryScope scope = QueryScope::kCounts, uint64_t last_k = 0);

  /// Top-k heavy hitters of the chosen scope (`last_k` as in QuerySum).
  std::optional<QueryTopKResponse> QueryTopK(
      uint64_t k, QueryScope scope = QueryScope::kCounts,
      uint64_t last_k = 0);

  /// 1-way group-by over attribute dimension `dim`.
  std::optional<QueryGroupByResponse> QueryGroupBy(
      uint64_t dim, const PredicateSpec& where = PredicateSpec());

  /// 2-way group-by (keys packed as PackGroupKey(attr[d1], attr[d2])).
  std::optional<QueryGroupByResponse> QueryGroupBy2(
      uint64_t dim1, uint64_t dim2,
      const PredicateSpec& where = PredicateSpec());

  /// Serialized snapshot of the server's state — the replication payload
  /// a peer's Restore absorbs. `frozen` (counts scope only) negotiates
  /// the frozen mmap-able image (wire/frozen.h) instead of the v2 stream
  /// encoding: the returned bytes can be written to disk and served by a
  /// read replica (`dsketchd --replica`) with O(1) restore.
  std::optional<std::string> Snapshot(QueryScope scope = QueryScope::kCounts,
                                      bool frozen = false);

  /// Feeds a peer snapshot into the server's state; true on success.
  bool Restore(std::string_view blob, QueryScope scope = QueryScope::kCounts);

  /// Server-side counters.
  std::optional<StatsResponse> Stats();

  /// Prometheus-style telemetry text (obs/metrics.h), filtered to the
  /// requested scope's metric families (kAll = everything). Served by
  /// writers and read replicas alike.
  std::optional<std::string> Metrics(
      MetricsScope scope = MetricsScope::kAll);

  /// Trace export (obs/trace.h): kRecent returns the sampled traces as
  /// Chrome trace-event JSON (Perfetto-loadable), kFlight the always-on
  /// flight recorder as a compact text dump. Served by writers and read
  /// replicas alike.
  std::optional<std::string> Trace(TraceScope scope = TraceScope::kRecent);

  /// Asks the server to stop serving after replying; true when
  /// acknowledged.
  bool Shutdown();

  /// Status of the last call: a protocol Status byte, or
  /// kTransportError when the transport/framing failed.
  uint8_t last_status() const { return last_status_; }

 private:
  // Writes `request` as a frame, reads one response frame, validates the
  // header (opcode + id echo, status kOk) and returns a reader positioned
  // at the response body; nullopt on any failure.
  std::optional<std::string> RoundTrip(Opcode opcode, uint64_t request_id,
                                       const std::string& request);

  // Sends one populated ingest request; true when every row was
  // accepted (shared by the unit/weighted/windowed shapes).
  bool SendIngest(const IngestBatchRequest& req);

  Transport& transport_;
  uint64_t next_request_id_ = 1;
  uint8_t last_status_ = static_cast<uint8_t>(Status::kOk);
};

}  // namespace dsketch

#endif  // DSKETCH_SERVICE_CLIENT_H_
