// Shared transport and protocol limits for the sketch service.
//
// Every cap a frame, request, or response must respect lives here, so
// the frame layer, the protocol codecs, the server's snapshot path, and
// new opcode scopes (e.g. the windowed ring snapshots) all bound
// themselves against the same numbers and cannot drift apart: a payload
// the protocol layer is willing to build is always one the frame layer
// is willing to carry.

#ifndef DSKETCH_SERVICE_LIMITS_H_
#define DSKETCH_SERVICE_LIMITS_H_

#include <cstddef>
#include <cstdint>

namespace dsketch {

/// Largest payload a frame may carry (16 MiB). Bounds both sides:
/// writers refuse to send more, readers reject length prefixes beyond
/// it before allocating anything.
inline constexpr size_t kMaxFramePayload = size_t{1} << 24;

/// Worst-case bytes a response spends outside its blob body: the
/// response header (version, opcode, varint id, status) plus a varint
/// length prefix. Used to bound blob payloads against the frame cap.
inline constexpr size_t kMaxResponseEnvelopeBytes = 64;

/// Largest sketch/ring blob a SNAPSHOT response (or RESTORE request)
/// may carry and still fit one frame with its envelope.
inline constexpr size_t kMaxSnapshotBlobBytes =
    kMaxFramePayload - kMaxResponseEnvelopeBytes;

/// Caps enforced on decode (and by honest encoders). A frame already
/// bounds payload bytes; these bound element counts so hostile claims
/// fail before allocation.
inline constexpr uint64_t kMaxBatchRows = uint64_t{1} << 20;
inline constexpr uint64_t kMaxPredicateConditions = 64;
inline constexpr uint64_t kMaxPredicateValues = uint64_t{1} << 16;
inline constexpr uint64_t kMaxTopK = uint64_t{1} << 16;
inline constexpr uint64_t kMaxGroupRows = uint64_t{1} << 20;

/// Largest METRICS text exposition a response may carry (1 MiB —
/// thousands of series; a registry would have to leak names to reach
/// it). Bounds decode-side allocation like every other cap.
inline constexpr uint64_t kMaxMetricsTextBytes = uint64_t{1} << 20;

/// Largest TRACE text/JSON payload a response may carry (1 MiB — the
/// recent-traces ring and the flight recorder are both fixed-capacity,
/// so honest exports sit far below this). Same decode-side role as
/// kMaxMetricsTextBytes.
inline constexpr uint64_t kMaxTraceTextBytes = uint64_t{1} << 20;

}  // namespace dsketch

#endif  // DSKETCH_SERVICE_LIMITS_H_
