// SketchServer: the long-lived streaming service over the query engine.
//
// One server owns the full ingest-to-answer pipeline the ROADMAP's
// streaming-service item describes: framed INGEST_BATCH requests drain
// into a ShardedSketch via SketchSource::Ingest (unit rows) or into a
// ShardedWeightedSpaceSaving fleet (weighted rows), queries are answered
// from SketchQueryEngine against the merged snapshot view, and
// replication rides the wire snapshot codecs — SNAPSHOT streams
// SaveSnapshot bytes out, RESTORE feeds IngestSerialized so a replica
// catches up from a peer's snapshot while keeping its own rows.
//
// The request surface is transport-agnostic: HandleRequest maps one
// request payload to one response payload (pure request/response, fully
// unit-testable), and Serve() is the event loop that runs it over a
// framed Transport until EOF, a frame-level protocol violation, or a
// SHUTDOWN request. Hostile input never crashes the server: undecodable
// requests get Status::kMalformed responses, unknown opcodes
// Status::kUnknownOpcode, oversized claims Status::kTooLarge — the same
// never-abort contract the sketch wire decoders pin under asan.
//
// Threading: one thread drives HandleRequest/Serve (the sharded fleets
// below fan work out across their own workers). Run multiple servers for
// multiple connections and let them exchange snapshots.

#ifndef DSKETCH_SERVICE_SERVER_H_
#define DSKETCH_SERVICE_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "query/attribute_table.h"
#include "query/engine.h"
#include "query/frozen_source.h"
#include "query/sketch_source.h"
#include "query/windowed_source.h"
#include "service/protocol.h"
#include "service/transport.h"
#include "shard/sharded_sketch.h"

namespace dsketch {

/// One slow request, as handed to SketchServerOptions::slow_request_hook
/// (all sizes are payload bytes, excluding the 4-byte frame prefix).
struct SlowRequestInfo {
  Opcode opcode = Opcode::kStats;
  uint64_t request_id = 0;
  uint64_t latency_us = 0;
  size_t request_bytes = 0;
  size_t response_bytes = 0;
};

/// Server tuning knobs.
struct SketchServerOptions {
  /// Shard fleet configuration (workers, per-shard bins, queues) shared
  /// by the counts, weighted, and windowed ingest paths.
  ShardedSketchOptions shard;
  /// Bins of the merged snapshot view queries and SNAPSHOT run against.
  size_t merged_capacity = 4096;
  /// Epoch-ring configuration of the windowed scope (its merged_capacity
  /// is overridden by `merged_capacity` above so every scope's query
  /// view is sized the same way; its seed comes from shard.seed).
  WindowedSketchOptions window;
  /// Seed for the snapshot merge and restores (shard seeds come from
  /// shard.seed; the weighted/windowed fleets offset it so the paths
  /// differ).
  uint64_t seed = 1;
  /// > 0: wall-clock epoch scheduling — Serve() advances the windowed
  /// scope's epoch every this-many milliseconds of real time, so a
  /// deployment gets sliding windows without every client stamping rows.
  /// 0 (default) keeps epochs purely caller-driven. Must be >= 0.
  int64_t epoch_interval_ms = 0;
  /// > 0: every request whose HandleRequest latency reaches this many
  /// microseconds fires `slow_request_hook` (default: one structured
  /// line on stderr — see README "Observability") and bumps
  /// dsketch_service_slow_requests_total. 0 (default) disables the
  /// hook. Must be >= 0.
  int64_t slow_request_us = 0;
  /// Replaces the default stderr line when set (tests capture calls;
  /// embedders route into their own logger). Called on the serving
  /// thread — keep it cheap.
  std::function<void(const SlowRequestInfo&)> slow_request_hook;
  /// > 0: capture every Nth request's full span tree into the
  /// recent-traces ring (obs/trace.h; 1 = every request). Combined with
  /// slow_request_us > 0, every slow request is also captured in full
  /// (tail sampling). 0 (default) leaves per-request sampling off — the
  /// flight recorder still runs. Must be >= 0. Applied to the global
  /// TraceCollector at construction when either sampling knob is set;
  /// the destructor restores the previous policy, so a server's
  /// sampling does not outlive it (tests and embedders constructing
  /// several servers in one process see each policy scoped to its
  /// server's lifetime).
  int64_t trace_sample = 0;
};

/// The streaming sketch service.
class SketchServer {
 public:
  /// `attrs` is the dimension table predicates and group-bys evaluate
  /// against; it may be nullptr (queries with attribute conditions then
  /// answer Status::kUnsupported) and must outlive the server otherwise.
  explicit SketchServer(const SketchServerOptions& options,
                        const AttributeTable* attrs = nullptr);

  /// Read-replica server over a frozen image (`dsketchd --replica`):
  /// counts-scope queries are answered straight off the image via the
  /// engine's zero-decode path, SNAPSHOT re-serves the image itself, and
  /// everything that would mutate or miss the image (INGEST, RESTORE,
  /// weighted/window scopes) answers Status::kUnsupported. `replica`
  /// must be non-null and outlive the server; callers should Validate()
  /// untrusted images first.
  SketchServer(const SketchServerOptions& options, FrozenSketchSource* replica,
               const AttributeTable* attrs);

  /// Restores the process-global trace sampling policy the constructor
  /// replaced (see SketchServerOptions::trace_sample).
  ~SketchServer();

  /// Maps one request payload to one response payload. Always returns a
  /// well-formed response (possibly an error response); never aborts on
  /// hostile bytes.
  std::string HandleRequest(std::string_view request);

  /// Serves framed requests until EOF, a frame violation, or SHUTDOWN;
  /// closes the write side on exit.
  void Serve(Transport& transport);

  /// True once a SHUTDOWN request has been handled.
  bool shutdown_requested() const { return shutdown_; }

  /// The unit-row ingestion source queries run against (exposed so
  /// embedders and tests can reach the underlying fleet).
  ShardedSketchSource& source() { return source_; }

  /// Current counters (same numbers a STATS request reports).
  StatsResponse Stats();

 private:
  // The opcode switch HandleRequest wraps with telemetry (per-opcode
  // request count, latency histogram, slow-request hook).
  std::string Dispatch(const RequestHeader& header,
                       wire::VarintReader& reader);
  std::string HandleIngestBatch(const RequestHeader& header,
                                wire::VarintReader& reader);
  std::string HandleQuerySum(const RequestHeader& header,
                             wire::VarintReader& reader);
  std::string HandleQueryTopK(const RequestHeader& header,
                              wire::VarintReader& reader);
  std::string HandleQueryGroupBy(const RequestHeader& header,
                                 wire::VarintReader& reader);
  std::string HandleSnapshot(const RequestHeader& header,
                             wire::VarintReader& reader);
  std::string HandleRestore(const RequestHeader& header,
                            wire::VarintReader& reader);
  std::string HandleMetrics(const RequestHeader& header,
                            wire::VarintReader& reader);
  std::string HandleTrace(const RequestHeader& header,
                          wire::VarintReader& reader);

  // The single error-response chokepoint: bumps the total and
  // per-status error counters (STATS) and the labeled obs series, then
  // encodes the header-only error response.
  std::string Fail(Opcode opcode, uint64_t request_id, Status status);

  // Lazily boots the weighted fleet (first weighted ingest/restore).
  ShardedWeightedSpaceSaving& Weighted();

  // Merged weighted view, recomputed when the fleet ingested since the
  // last call (mirrors ShardedSketchSource's snapshot cache).
  const WeightedSpaceSaving& WeightedView();

  // Lazily boots the windowed source + engine (first windowed
  // ingest/query/restore); the source caches its own merged views.
  WindowedSketchSource& Window();
  SketchQueryEngine& WindowEngine();

  // Builds a Predicate from `spec`, validating dimensions. Returns
  // kOk, kMalformed (bad dim), or kUnsupported (no attribute table).
  Status BuildPredicate(const PredicateSpec& spec, Predicate* out) const;

  // Advances the windowed scope's epoch by `ticks` elapsed timer
  // intervals (boots the windowed fleet on the first tick). Saturates
  // at kMaxEpochStamp — a long-lived timer or a hostile near-cap stamp
  // stops the clock instead of crashing the serve loop.
  void TickEpochs(uint64_t ticks);

  // Stand-in table for attribute-less deployments (the engine requires a
  // non-null table; attribute-touching queries are gated on attrs_).
  static const AttributeTable kEmptyAttrs;

  SketchServerOptions options_;
  const AttributeTable* attrs_;
  ShardedSketchSource source_;
  SketchQueryEngine engine_;
  // Replica mode (see the replica constructor): borrowed image source
  // plus a zero-decode engine over it; both null for writer servers.
  FrozenSketchSource* replica_ = nullptr;
  std::unique_ptr<SketchQueryEngine> replica_engine_;
  std::unique_ptr<ShardedWeightedSpaceSaving> weighted_;
  WeightedSpaceSaving weighted_view_;
  std::unique_ptr<WindowedSketchSource> window_source_;
  std::unique_ptr<SketchQueryEngine> window_engine_;
  bool weighted_dirty_ = false;
  bool shutdown_ = false;
  // Set when the constructor applied this server's sampling knobs to
  // the process-global TraceCollector; the destructor then restores the
  // policy saved here.
  bool configured_tracing_ = false;
  obs::TraceConfig saved_trace_config_;

  struct Counters {
    uint64_t rows_ingested = 0;
    uint64_t weighted_rows_ingested = 0;
    uint64_t windowed_rows_ingested = 0;
    uint64_t batches = 0;
    uint64_t queries = 0;
    uint64_t snapshots = 0;
    uint64_t restores = 0;
    uint64_t errors = 0;
    uint64_t errors_malformed = 0;
    uint64_t errors_unknown_opcode = 0;
    uint64_t errors_unsupported = 0;
    uint64_t errors_too_large = 0;
    uint64_t errors_bad_state = 0;
    SnapshotFormat last_snapshot_format = SnapshotFormat::kNone;
    uint64_t last_snapshot_bytes = 0;
    SnapshotFormat last_restore_format = SnapshotFormat::kNone;
    uint64_t last_restore_bytes = 0;
  };
  Counters counters_;
};

}  // namespace dsketch

#endif  // DSKETCH_SERVICE_SERVER_H_
