// Byte-stream transports under the framed sketch protocol.
//
// A Transport is a blocking, ordered, reliable byte stream — the minimal
// contract the frame layer (service/frame.h) needs. Two implementations
// cover every deployment the service layer targets without pulling in a
// network stack:
//
//   * InMemoryDuplex — a socketpair-shaped pair of endpoints backed by
//     two in-process byte pipes. Tests and benchmarks run a real client
//     and a real server over it with no file descriptors involved; the
//     CI smoke scenario boots dsketchd on it.
//   * FdTransport — wraps POSIX file descriptors (stdin/stdout for the
//     dsketchd CLI, or a socketpair/socket fd a deployment hands in).
//
// Endpoints are bidirectional; Read blocks until bytes arrive or the
// peer's write side closes (then returns 0 = EOF forever after).

#ifndef DSKETCH_SERVICE_TRANSPORT_H_
#define DSKETCH_SERVICE_TRANSPORT_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string_view>

namespace dsketch {

/// Blocking, ordered, reliable byte stream.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads up to `n` bytes into `buf`, blocking until at least one byte
  /// is available. Returns the number of bytes read; 0 means the peer
  /// closed its write side (EOF — all subsequent reads also return 0).
  virtual size_t Read(char* buf, size_t n) = 0;

  /// Waits up to `timeout_ms` for Read to have something to return
  /// (bytes or EOF). True = Read won't block now; false = the timeout
  /// elapsed first. The base implementation returns true immediately —
  /// a conservative default for transports without a waitable handle:
  /// callers fall back to a blocking Read, so a timer using this is
  /// best-effort there, exact on FdTransport/InMemoryDuplex.
  virtual bool WaitReadable(int timeout_ms) {
    (void)timeout_ms;
    return true;
  }

  /// Writes all of `bytes`; returns false when the stream is closed or
  /// broken (partial writes are never silently dropped).
  virtual bool Write(std::string_view bytes) = 0;

  /// Closes this endpoint's write side; the peer's Read drains buffered
  /// bytes and then sees EOF.
  virtual void CloseWrite() = 0;
};

/// A connected pair of in-process endpoints: bytes written to client()
/// are read by server() and vice versa. Both endpoints stay valid for
/// the lifetime of the duplex; either side may be driven from its own
/// thread (each direction is an independent single-reader pipe).
class InMemoryDuplex {
 public:
  InMemoryDuplex();

  /// The caller-side endpoint.
  Transport& client() { return *client_; }

  /// The server-side endpoint.
  Transport& server() { return *server_; }

 private:
  // One direction of the duplex: a bounded-unbounded byte queue with
  // close semantics (writers append, the single reader drains).
  struct Pipe {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<char> bytes;
    bool closed = false;
  };

  class Endpoint;

  std::shared_ptr<Pipe> a_to_b_;
  std::shared_ptr<Pipe> b_to_a_;
  std::unique_ptr<Transport> client_;
  std::unique_ptr<Transport> server_;
};

/// Transport over POSIX file descriptors (e.g. stdin/stdout for the
/// dsketchd CLI, or one end of a socketpair). Does not own or close the
/// descriptors unless `owns_fds` is set.
class FdTransport : public Transport {
 public:
  /// Reads from `read_fd`, writes to `write_fd` (they may be equal for a
  /// socket). With `owns_fds`, both are closed on destruction.
  FdTransport(int read_fd, int write_fd, bool owns_fds = false);
  ~FdTransport() override;

  size_t Read(char* buf, size_t n) override;
  bool WaitReadable(int timeout_ms) override;
  bool Write(std::string_view bytes) override;
  void CloseWrite() override;

 private:
  int read_fd_;
  int write_fd_;
  bool owns_fds_;
  bool write_closed_ = false;
};

}  // namespace dsketch

#endif  // DSKETCH_SERVICE_TRANSPORT_H_
