// Length-prefixed frame layer of the sketch service protocol.
//
// Every protocol message — request or response — travels as one frame:
//
//   [u32 length LE][payload: length bytes]
//
// The length counts payload bytes only and is capped at kMaxFramePayload;
// a peer claiming more is treated as hostile and the connection is torn
// down (there is no way to resynchronize a byte stream after a corrupt
// length). Reads allocate as bytes actually arrive, never up front from
// the claimed length, so a hostile prefix cannot force a large
// allocation. What the payload means is the next layer's business
// (service/protocol.h).

#ifndef DSKETCH_SERVICE_FRAME_H_
#define DSKETCH_SERVICE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "service/limits.h"
#include "service/transport.h"

namespace dsketch {
// kMaxFramePayload (the 16 MiB cap both sides enforce) lives in
// service/limits.h with the other shared protocol limits.

/// Bytes a frame spends on its length prefix (what the
/// dsketch_service_frame_bytes_total counters add on top of payloads).
inline constexpr size_t kFrameHeaderBytes = 4;

/// Outcome of reading one frame off a transport.
enum class FrameStatus : uint8_t {
  kOk = 0,        ///< a whole frame arrived
  kEof = 1,       ///< clean end of stream at a frame boundary
  kMalformed = 2  ///< oversized length prefix or mid-frame EOF
};

/// Writes `payload` as one frame. Returns false if the payload exceeds
/// kMaxFramePayload or the transport rejects the write.
bool WriteFrame(Transport& transport, std::string_view payload);

/// Reads one frame into `payload` (replacing its contents). Returns kEof
/// only when the stream ends exactly at a frame boundary; a truncated
/// prefix or body, or a length above kMaxFramePayload, is kMalformed and
/// the caller must drop the connection.
FrameStatus ReadFrame(Transport& transport, std::string* payload);

}  // namespace dsketch

#endif  // DSKETCH_SERVICE_FRAME_H_
