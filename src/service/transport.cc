#include "service/transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

namespace dsketch {

// Endpoint of an InMemoryDuplex: reads from one pipe, writes the other.
class InMemoryDuplex::Endpoint : public Transport {
 public:
  Endpoint(std::shared_ptr<Pipe> read_pipe, std::shared_ptr<Pipe> write_pipe)
      : read_pipe_(std::move(read_pipe)), write_pipe_(std::move(write_pipe)) {}

  ~Endpoint() override { CloseWrite(); }

  size_t Read(char* buf, size_t n) override {
    if (n == 0) return 0;
    std::unique_lock<std::mutex> lock(read_pipe_->mu);
    read_pipe_->cv.wait(lock, [this] {
      return !read_pipe_->bytes.empty() || read_pipe_->closed;
    });
    size_t count = 0;
    while (count < n && !read_pipe_->bytes.empty()) {
      buf[count++] = read_pipe_->bytes.front();
      read_pipe_->bytes.pop_front();
    }
    return count;  // 0 only when closed and drained: EOF
  }

  bool WaitReadable(int timeout_ms) override {
    std::unique_lock<std::mutex> lock(read_pipe_->mu);
    return read_pipe_->cv.wait_for(
        lock, std::chrono::milliseconds(timeout_ms), [this] {
          return !read_pipe_->bytes.empty() || read_pipe_->closed;
        });
  }

  bool Write(std::string_view bytes) override {
    std::lock_guard<std::mutex> lock(write_pipe_->mu);
    if (write_pipe_->closed) return false;
    write_pipe_->bytes.insert(write_pipe_->bytes.end(), bytes.begin(),
                              bytes.end());
    write_pipe_->cv.notify_one();
    return true;
  }

  void CloseWrite() override {
    std::lock_guard<std::mutex> lock(write_pipe_->mu);
    write_pipe_->closed = true;
    write_pipe_->cv.notify_one();
  }

 private:
  std::shared_ptr<Pipe> read_pipe_;
  std::shared_ptr<Pipe> write_pipe_;
};

InMemoryDuplex::InMemoryDuplex()
    : a_to_b_(std::make_shared<Pipe>()), b_to_a_(std::make_shared<Pipe>()) {
  client_ = std::make_unique<Endpoint>(b_to_a_, a_to_b_);
  server_ = std::make_unique<Endpoint>(a_to_b_, b_to_a_);
}

FdTransport::FdTransport(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}

FdTransport::~FdTransport() {
  if (owns_fds_) {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
}

size_t FdTransport::Read(char* buf, size_t n) {
  while (true) {
    ssize_t got = ::read(read_fd_, buf, n);
    if (got >= 0) return static_cast<size_t>(got);
    if (errno != EINTR) return 0;  // treat hard errors as EOF
  }
}

bool FdTransport::WaitReadable(int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = read_fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  while (true) {
    int r = ::poll(&pfd, 1, timeout_ms);
    if (r > 0) return true;  // readable, hung up, or errored: Read decides
    if (r == 0) return false;
    // EINTR: retry with the full timeout — a signal storm only delays
    // the timer, it never wedges the wait.
    if (errno != EINTR) return true;  // let Read surface the failure
  }
}

bool FdTransport::Write(std::string_view bytes) {
  if (write_closed_) return false;
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t put = ::write(write_fd_, bytes.data() + done, bytes.size() - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(put);
  }
  return true;
}

void FdTransport::CloseWrite() {
  if (write_closed_) return;
  write_closed_ = true;
  // Half-close so the peer sees EOF: sockets (including a single fd
  // wrapped for both directions) get a real SHUT_WR; pipes/files return
  // ENOTSOCK, which is harmless — for an owned distinct write fd the
  // close below delivers the EOF instead.
  ::shutdown(write_fd_, SHUT_WR);
  if (owns_fds_ && write_fd_ != read_fd_) {
    ::close(write_fd_);
    write_fd_ = -1;
  }
}

}  // namespace dsketch
