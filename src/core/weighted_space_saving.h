// Weighted (real-valued) Unbiased Space Saving — the §5.3 generalization.
//
// The reduction step of Unbiased Space Saving is a PPS sample over the two
// smallest bins. Generalizing the update to "insert the new row as its own
// bin, then PPS-collapse the two smallest bins until m remain" yields a
// sketch that accepts arbitrary positive weights while remaining unbiased
// (Theorem 2) and preserving the total weight exactly. For unit weights
// the rule coincides bin-for-bin with integer Unbiased Space Saving.
//
// Updates are O(log m) (binary heap) versus O(1) for the unit-weight
// sketch — the trade-off the paper notes for real-valued counters.

#ifndef DSKETCH_CORE_WEIGHTED_SPACE_SAVING_H_
#define DSKETCH_CORE_WEIGHTED_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sketch_entry.h"
#include "util/flat_map.h"
#include "util/random.h"
#include "util/span.h"

namespace dsketch {

/// Unbiased Space Saving over weighted rows.
class WeightedSpaceSaving {
 public:
  /// Sketch with `capacity` bins; `seed` drives the PPS label draws.
  explicit WeightedSpaceSaving(size_t capacity, uint64_t seed = 1);

  /// Processes one row carrying `weight` (> 0) for `item`.
  void Update(uint64_t item, double weight);

  /// Processes `items` in stream order, each row carrying `weight`.
  /// Bit-for-bit identical to per-row Update (pre-hashing + prefetch).
  void UpdateBatch(Span<const uint64_t> items, double weight = 1.0);

  /// Row-aligned batch: items[i] carries weights[i] (sizes must match).
  void UpdateBatch(Span<const uint64_t> items, Span<const double> weights);

  /// Batch of (item, weight) rows, as shipped through the sharded
  /// front-end's queues. Bit-for-bit identical to per-row Update.
  void UpdateBatch(Span<const WeightedEntry> rows);

  /// Unbiased estimate of `item`'s total weight (0 when untracked).
  double EstimateWeight(uint64_t item) const;

  /// True if `item` currently labels a bin.
  bool Contains(uint64_t item) const { return index_.Find(item) != nullptr; }

  /// Weight of the smallest bin (0 while not full).
  double MinWeight() const;

  /// Sum of all processed weights; preserved exactly (up to fp rounding).
  double TotalWeight() const { return total_; }

  /// Number of bins (m).
  size_t capacity() const { return capacity_; }

  /// Number of labeled bins.
  size_t size() const { return heap_.size(); }

  /// Labeled bins in descending weight order.
  std::vector<WeightedEntry> Entries() const;

  /// Multiplies every bin weight (and the running total) by `factor` > 0.
  /// Used by time-decayed aggregation to renormalize counters.
  void Scale(double factor);

  /// Replaces contents with `entries` (≤ capacity, distinct labels).
  void LoadEntries(const std::vector<WeightedEntry>& entries);

 private:
  // Shared batch loop: per-row weights when `weights` is row-aligned with
  // `items`, otherwise `shared_weight` for every row.
  void UpdateBatch(Span<const uint64_t> items, Span<const double> weights,
                   double shared_weight);

  // Update body with the item's index hash precomputed (MixedHash(item)).
  void UpdateHashed(uint64_t item, uint64_t hash, double weight);

  // Min-heap by weight with index tracking for O(log m) weight increases.
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void SetSlot(size_t i, WeightedEntry e);

  size_t capacity_;
  std::vector<WeightedEntry> heap_;
  FlatMap<uint32_t> index_;  // item -> heap position
  double total_ = 0.0;
  Rng rng_;
};

/// Subset-sum estimate over the weighted sketch with the eq. 5 variance
/// analogue V̂ar = MinWeight()^2 * max(1, C_S).
struct WeightedSubsetSum {
  double estimate = 0.0;
  double variance = 0.0;
  uint64_t items_in_sample = 0;
};

/// Estimates the total weight of all items satisfying `pred`.
template <typename Pred>
WeightedSubsetSum EstimateSubsetSum(const WeightedSpaceSaving& sketch,
                                    Pred pred) {
  WeightedSubsetSum out;
  for (const WeightedEntry& e : sketch.Entries()) {
    if (pred(e.item)) {
      out.estimate += e.weight;
      ++out.items_in_sample;
    }
  }
  double floor_cs =
      static_cast<double>(out.items_in_sample > 0 ? out.items_in_sample : 1);
  out.variance = sketch.MinWeight() * sketch.MinWeight() * floor_cs;
  return out;
}

}  // namespace dsketch

#endif  // DSKETCH_CORE_WEIGHTED_SPACE_SAVING_H_
