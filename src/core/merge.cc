#include "core/merge.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/logging.h"

namespace dsketch {

std::vector<SketchEntry> CombineEntries(const std::vector<SketchEntry>& a,
                                        const std::vector<SketchEntry>& b) {
  std::unordered_map<uint64_t, int64_t> sums;
  sums.reserve(a.size() + b.size());
  for (const SketchEntry& e : a) sums[e.item] += e.count;
  for (const SketchEntry& e : b) sums[e.item] += e.count;
  std::vector<SketchEntry> out;
  out.reserve(sums.size());
  for (const auto& [item, count] : sums) out.push_back({item, count});
  return out;
}

std::vector<SketchEntry> ReducePairwise(std::vector<SketchEntry> entries,
                                        size_t target, Rng& rng) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) return entries;

  // Min-heap of (count, index, version). Merged bins are re-pushed with a
  // bumped version; stale heap items are discarded on pop.
  struct HeapItem {
    int64_t count;
    size_t index;
    uint32_t version;
    bool operator>(const HeapItem& o) const { return count > o.count; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::vector<uint32_t> version(entries.size(), 0);
  std::vector<bool> dead(entries.size(), false);
  for (size_t i = 0; i < entries.size(); ++i) {
    heap.push({entries[i].count, i, 0});
  }

  auto pop_live = [&]() -> HeapItem {
    while (true) {
      HeapItem top = heap.top();
      heap.pop();
      if (!dead[top.index] && version[top.index] == top.version) return top;
    }
  };

  size_t live = entries.size();
  while (live > target) {
    HeapItem a = pop_live();  // smallest
    HeapItem b = pop_live();  // second smallest
    int64_t combined = a.count + b.count;
    // Keep the label of the *larger* bin with probability c2/(c1+c2):
    // a PPS draw between the two collapsed bins (unbiased per Theorem 2).
    // combined == 0 can only happen for two zero-count bins; keep either.
    bool keep_larger =
        combined == 0 ||
        rng.NextDouble() * static_cast<double>(combined) <
            static_cast<double>(b.count);
    size_t keep = keep_larger ? b.index : a.index;
    size_t drop = keep_larger ? a.index : b.index;
    entries[keep].count = combined;
    dead[drop] = true;
    heap.push({combined, keep, ++version[keep]});
    --live;
  }

  std::vector<SketchEntry> out;
  out.reserve(live);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (!dead[i]) out.push_back(entries[i]);
  }
  return out;
}

std::vector<WeightedEntry> ReducePriority(
    const std::vector<SketchEntry>& entries, size_t target, Rng& rng) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) {
    std::vector<WeightedEntry> out;
    out.reserve(entries.size());
    for (const SketchEntry& e : entries) {
      out.push_back({e.item, static_cast<double>(e.count)});
    }
    return out;
  }

  struct Prioritized {
    double priority;
    size_t index;
  };
  std::vector<Prioritized> pris;
  pris.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    double u = rng.NextDoublePositive();
    pris.push_back({static_cast<double>(entries[i].count) / u, i});
  }
  // Partition so the `target` largest priorities come first; the threshold
  // tau is the (target+1)-th largest priority.
  std::nth_element(pris.begin(), pris.begin() + static_cast<long>(target),
                   pris.end(), [](const Prioritized& a, const Prioritized& b) {
                     return a.priority > b.priority;
                   });
  double tau = pris[target].priority;

  std::vector<WeightedEntry> out;
  out.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    const SketchEntry& e = entries[pris[i].index];
    out.push_back({e.item, std::max(static_cast<double>(e.count), tau)});
  }
  return out;
}

std::vector<SketchEntry> ReduceMisraGries(std::vector<SketchEntry> entries,
                                          size_t target) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) return entries;
  // Threshold = (target+1)-th largest count.
  std::nth_element(entries.begin(), entries.begin() + static_cast<long>(target),
                   entries.end(), [](const SketchEntry& a, const SketchEntry& b) {
                     return a.count > b.count;
                   });
  int64_t threshold = entries[target].count;
  std::vector<SketchEntry> out;
  out.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    int64_t c = entries[i].count - threshold;
    if (c > 0) out.push_back({entries[i].item, c});
  }
  return out;
}

UnbiasedSpaceSaving Merge(const UnbiasedSpaceSaving& a,
                          const UnbiasedSpaceSaving& b, size_t capacity,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<SketchEntry> combined = CombineEntries(a.Entries(), b.Entries());
  std::vector<SketchEntry> reduced = ReducePairwise(std::move(combined),
                                                    capacity, rng);
  UnbiasedSpaceSaving out(capacity, seed);
  out.core().LoadEntries(reduced);
  return out;
}

DeterministicSpaceSaving Merge(const DeterministicSpaceSaving& a,
                               const DeterministicSpaceSaving& b,
                               size_t capacity, uint64_t seed) {
  std::vector<SketchEntry> combined = CombineEntries(a.Entries(), b.Entries());
  std::vector<SketchEntry> reduced = ReduceMisraGries(std::move(combined),
                                                      capacity);
  DeterministicSpaceSaving out(capacity, seed);
  out.core().LoadEntries(reduced);
  return out;
}

std::vector<WeightedEntry> ReducePairwiseWeighted(
    std::vector<WeightedEntry> entries, size_t target, Rng& rng) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) return entries;

  struct HeapItem {
    double weight;
    size_t index;
    uint32_t version;
    bool operator>(const HeapItem& o) const { return weight > o.weight; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  std::vector<uint32_t> version(entries.size(), 0);
  std::vector<bool> dead(entries.size(), false);
  for (size_t i = 0; i < entries.size(); ++i) {
    heap.push({entries[i].weight, i, 0});
  }
  auto pop_live = [&]() -> HeapItem {
    while (true) {
      HeapItem top = heap.top();
      heap.pop();
      if (!dead[top.index] && version[top.index] == top.version) return top;
    }
  };

  size_t live = entries.size();
  while (live > target) {
    HeapItem a = pop_live();
    HeapItem b = pop_live();
    double combined = a.weight + b.weight;
    bool keep_larger =
        combined == 0.0 || rng.NextDouble() * combined < b.weight;
    size_t keep = keep_larger ? b.index : a.index;
    size_t drop = keep_larger ? a.index : b.index;
    entries[keep].weight = combined;
    dead[drop] = true;
    heap.push({combined, keep, ++version[keep]});
    --live;
  }

  std::vector<WeightedEntry> out;
  out.reserve(live);
  for (size_t i = 0; i < entries.size(); ++i) {
    if (!dead[i]) out.push_back(entries[i]);
  }
  return out;
}

WeightedSpaceSaving Merge(const WeightedSpaceSaving& a,
                          const WeightedSpaceSaving& b, size_t capacity,
                          uint64_t seed) {
  std::unordered_map<uint64_t, double> sums;
  for (const WeightedEntry& e : a.Entries()) sums[e.item] += e.weight;
  for (const WeightedEntry& e : b.Entries()) sums[e.item] += e.weight;
  std::vector<WeightedEntry> combined;
  combined.reserve(sums.size());
  for (const auto& [item, weight] : sums) combined.push_back({item, weight});

  Rng rng(seed);
  std::vector<WeightedEntry> reduced =
      ReducePairwiseWeighted(std::move(combined), capacity, rng);
  WeightedSpaceSaving out(capacity, seed);
  out.LoadEntries(reduced);
  return out;
}

UnbiasedSpaceSaving MergeAll(
    const std::vector<const UnbiasedSpaceSaving*>& sketches, size_t capacity,
    uint64_t seed) {
  DSKETCH_CHECK(!sketches.empty());
  std::unordered_map<uint64_t, int64_t> sums;
  for (const UnbiasedSpaceSaving* s : sketches) {
    DSKETCH_CHECK(s != nullptr);
    for (const SketchEntry& e : s->Entries()) sums[e.item] += e.count;
  }
  std::vector<SketchEntry> combined;
  combined.reserve(sums.size());
  for (const auto& [item, count] : sums) combined.push_back({item, count});

  Rng rng(seed);
  std::vector<SketchEntry> reduced = ReducePairwise(std::move(combined),
                                                    capacity, rng);
  UnbiasedSpaceSaving out(capacity, seed);
  out.core().LoadEntries(reduced);
  return out;
}

}  // namespace dsketch
