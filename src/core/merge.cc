#include "core/merge.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace dsketch {

std::vector<SketchEntry> CombineEntries(const std::vector<SketchEntry>& a,
                                        const std::vector<SketchEntry>& b) {
  std::unordered_map<uint64_t, int64_t> sums;
  sums.reserve(a.size() + b.size());
  for (const SketchEntry& e : a) sums[e.item] += e.count;
  for (const SketchEntry& e : b) sums[e.item] += e.count;
  std::vector<SketchEntry> out;
  out.reserve(sums.size());
  for (const auto& [item, count] : sums) out.push_back({item, count});
  return out;
}

std::vector<SketchEntry> ReducePairwise(std::vector<SketchEntry> entries,
                                        size_t target, Rng& rng) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) return entries;

  // Canonical order: the collapse sequence (and therefore the RNG draw
  // sequence) depends only on the (item, count) multiset, never on the
  // caller's entry order — so a merge assembled from cached partials
  // reproduces a from-scratch merge bit-for-bit given the same seed.
  auto canonical = [](const SketchEntry& a, const SketchEntry& b) {
    return a.count != b.count ? a.count < b.count : a.item < b.item;
  };
  if (!std::is_sorted(entries.begin(), entries.end(), canonical)) {
    std::sort(entries.begin(), entries.end(), canonical);
  }

  // Heap-free two-queue collapse (the classic linear-time Huffman
  // construction): originals are consumed in ascending order, and bins
  // produced by collapses emerge with non-decreasing counts, so the two
  // queue fronts always hold the two candidates for "current smallest".
  // Ties prefer the original queue, which fixes the collapse order.
  const size_t n = entries.size();
  std::vector<SketchEntry> merged;
  merged.reserve(n - target);
  size_t i = 0;  // next unconsumed original
  size_t j = 0;  // next unconsumed merged bin
  auto take_smallest = [&]() -> SketchEntry {
    if (i < n && (j >= merged.size() || entries[i].count <= merged[j].count)) {
      return entries[i++];
    }
    return merged[j++];
  };
  for (size_t live = n; live > target; --live) {
    SketchEntry a = take_smallest();  // smallest
    SketchEntry b = take_smallest();  // second smallest
    int64_t combined = a.count + b.count;
    // Keep the label of the *larger* bin with probability c2/(c1+c2):
    // a PPS draw between the two collapsed bins (unbiased per Theorem 2).
    // combined == 0 can only happen for two zero-count bins; keep either.
    bool keep_larger =
        combined == 0 ||
        rng.NextDouble() * static_cast<double>(combined) <
            static_cast<double>(b.count);
    merged.push_back({keep_larger ? b.item : a.item, combined});
  }

  std::vector<SketchEntry> out;
  out.reserve(target);
  for (; i < n; ++i) out.push_back(entries[i]);
  for (; j < merged.size(); ++j) out.push_back(merged[j]);
  return out;
}

std::vector<WeightedEntry> ReducePriority(
    const std::vector<SketchEntry>& entries, size_t target, Rng& rng) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) {
    std::vector<WeightedEntry> out;
    out.reserve(entries.size());
    for (const SketchEntry& e : entries) {
      out.push_back({e.item, static_cast<double>(e.count)});
    }
    return out;
  }

  struct Prioritized {
    double priority;
    size_t index;
  };
  std::vector<Prioritized> pris;
  pris.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    double u = rng.NextDoublePositive();
    pris.push_back({static_cast<double>(entries[i].count) / u, i});
  }
  // Partition so the `target` largest priorities come first; the threshold
  // tau is the (target+1)-th largest priority.
  std::nth_element(pris.begin(), pris.begin() + static_cast<long>(target),
                   pris.end(), [](const Prioritized& a, const Prioritized& b) {
                     return a.priority > b.priority;
                   });
  double tau = pris[target].priority;

  std::vector<WeightedEntry> out;
  out.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    const SketchEntry& e = entries[pris[i].index];
    out.push_back({e.item, std::max(static_cast<double>(e.count), tau)});
  }
  return out;
}

std::vector<SketchEntry> ReduceMisraGries(std::vector<SketchEntry> entries,
                                          size_t target) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) return entries;
  // Threshold = (target+1)-th largest count.
  std::nth_element(entries.begin(), entries.begin() + static_cast<long>(target),
                   entries.end(), [](const SketchEntry& a, const SketchEntry& b) {
                     return a.count > b.count;
                   });
  int64_t threshold = entries[target].count;
  std::vector<SketchEntry> out;
  out.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    int64_t c = entries[i].count - threshold;
    if (c > 0) out.push_back({entries[i].item, c});
  }
  return out;
}

UnbiasedSpaceSaving SketchFromEntries(std::vector<SketchEntry> combined,
                                      size_t capacity, uint64_t seed) {
  // Canonical order even when no reduction runs: the loaded bin order
  // (and so the sketch's internal layout) is a function of the entry
  // multiset, not of how the caller assembled it. Pre-sorted input
  // (e.g. the windowed combine memo replaying under a fresh seed) skips
  // straight to the reduction.
  auto canonical = [](const SketchEntry& a, const SketchEntry& b) {
    return a.count != b.count ? a.count < b.count : a.item < b.item;
  };
  if (!std::is_sorted(combined.begin(), combined.end(), canonical)) {
    std::sort(combined.begin(), combined.end(), canonical);
  }
  Rng rng(seed);
  std::vector<SketchEntry> reduced =
      ReducePairwise(std::move(combined), capacity, rng);
  UnbiasedSpaceSaving out(capacity, seed);
  out.core().LoadEntries(reduced);
  return out;
}

WeightedSpaceSaving WeightedSketchFromEntries(
    std::vector<WeightedEntry> combined, size_t capacity, uint64_t seed) {
  auto canonical = [](const WeightedEntry& a, const WeightedEntry& b) {
    return a.weight != b.weight ? a.weight < b.weight : a.item < b.item;
  };
  if (!std::is_sorted(combined.begin(), combined.end(), canonical)) {
    std::sort(combined.begin(), combined.end(), canonical);
  }
  Rng rng(seed);
  std::vector<WeightedEntry> reduced =
      ReducePairwiseWeighted(std::move(combined), capacity, rng);
  WeightedSpaceSaving out(capacity, seed);
  out.LoadEntries(reduced);
  return out;
}

UnbiasedSpaceSaving Merge(const UnbiasedSpaceSaving& a,
                          const UnbiasedSpaceSaving& b, size_t capacity,
                          uint64_t seed) {
  return SketchFromEntries(CombineEntries(a.Entries(), b.Entries()), capacity,
                           seed);
}

DeterministicSpaceSaving Merge(const DeterministicSpaceSaving& a,
                               const DeterministicSpaceSaving& b,
                               size_t capacity, uint64_t seed) {
  std::vector<SketchEntry> combined = CombineEntries(a.Entries(), b.Entries());
  std::vector<SketchEntry> reduced = ReduceMisraGries(std::move(combined),
                                                      capacity);
  DeterministicSpaceSaving out(capacity, seed);
  out.core().LoadEntries(reduced);
  return out;
}

std::vector<WeightedEntry> ReducePairwiseWeighted(
    std::vector<WeightedEntry> entries, size_t target, Rng& rng) {
  DSKETCH_CHECK(target > 0);
  if (entries.size() <= target) return entries;

  // Same canonical order + two-queue collapse as ReducePairwise: the
  // reduction is a function of the (item, weight) multiset and the seed.
  auto canonical = [](const WeightedEntry& a, const WeightedEntry& b) {
    return a.weight != b.weight ? a.weight < b.weight : a.item < b.item;
  };
  if (!std::is_sorted(entries.begin(), entries.end(), canonical)) {
    std::sort(entries.begin(), entries.end(), canonical);
  }

  const size_t n = entries.size();
  std::vector<WeightedEntry> merged;
  merged.reserve(n - target);
  size_t i = 0;
  size_t j = 0;
  auto take_smallest = [&]() -> WeightedEntry {
    if (i < n &&
        (j >= merged.size() || entries[i].weight <= merged[j].weight)) {
      return entries[i++];
    }
    return merged[j++];
  };
  for (size_t live = n; live > target; --live) {
    WeightedEntry a = take_smallest();
    WeightedEntry b = take_smallest();
    double combined = a.weight + b.weight;
    bool keep_larger =
        combined == 0.0 || rng.NextDouble() * combined < b.weight;
    merged.push_back({keep_larger ? b.item : a.item, combined});
  }

  std::vector<WeightedEntry> out;
  out.reserve(target);
  for (; i < n; ++i) out.push_back(entries[i]);
  for (; j < merged.size(); ++j) out.push_back(merged[j]);
  return out;
}

WeightedSpaceSaving Merge(const WeightedSpaceSaving& a,
                          const WeightedSpaceSaving& b, size_t capacity,
                          uint64_t seed) {
  std::unordered_map<uint64_t, double> sums;
  for (const WeightedEntry& e : a.Entries()) sums[e.item] += e.weight;
  for (const WeightedEntry& e : b.Entries()) sums[e.item] += e.weight;
  std::vector<WeightedEntry> combined;
  combined.reserve(sums.size());
  for (const auto& [item, weight] : sums) combined.push_back({item, weight});
  return WeightedSketchFromEntries(std::move(combined), capacity, seed);
}

UnbiasedSpaceSaving MergeAll(
    const std::vector<const UnbiasedSpaceSaving*>& sketches, size_t capacity,
    uint64_t seed) {
  DSKETCH_CHECK(!sketches.empty());
  std::unordered_map<uint64_t, int64_t> sums;
  for (const UnbiasedSpaceSaving* s : sketches) {
    DSKETCH_CHECK(s != nullptr);
    for (const SketchEntry& e : s->Entries()) sums[e.item] += e.count;
  }
  std::vector<SketchEntry> combined;
  combined.reserve(sums.size());
  for (const auto& [item, count] : sums) combined.push_back({item, count});
  return SketchFromEntries(std::move(combined), capacity, seed);
}

}  // namespace dsketch
