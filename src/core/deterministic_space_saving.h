// Deterministic (classic) Space Saving, Metwally et al. 2005 — Algorithm 1
// with p = 1. Implemented as the paper's baseline: excellent deterministic
// frequent-item guarantees (|n̂ᵢ - nᵢ| <= n/m), but biased counts that fail
// badly on subset sums over non-i.i.d. streams (paper §6.3, Theorem 11).

#ifndef DSKETCH_CORE_DETERMINISTIC_SPACE_SAVING_H_
#define DSKETCH_CORE_DETERMINISTIC_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/space_saving_core.h"

namespace dsketch {

/// The classic Space Saving sketch (always replaces the minimum label).
class DeterministicSpaceSaving {
 public:
  /// Sketch with `capacity` bins. The seed only drives tie-breaking among
  /// equal minimum bins.
  explicit DeterministicSpaceSaving(size_t capacity, uint64_t seed = 1,
                                    TieBreak tie_break = TieBreak::kRandom)
      : core_(capacity, LabelPolicy::kDeterministic, seed, tie_break) {}

  /// Processes one row with unit-of-analysis label `item`.
  void Update(uint64_t item) { core_.Update(item); }

  /// Processes `items` in stream order; bit-for-bit identical to per-row
  /// Update but faster (pre-hashing + software prefetch; see
  /// SpaceSavingCore::UpdateBatch).
  void UpdateBatch(Span<const uint64_t> items) { core_.UpdateBatch(items); }

  /// Estimated count: overestimates by at most MinCount(), and the error
  /// for any item is at most TotalCount()/capacity().
  int64_t EstimateCount(uint64_t item) const {
    return core_.EstimateCount(item);
  }

  /// Lower bound on `item`'s true count: estimate minus MinCount().
  int64_t GuaranteedCount(uint64_t item) const {
    int64_t e = core_.EstimateCount(item);
    return e > core_.MinCount() ? e - core_.MinCount() : 0;
  }

  /// True if `item` currently labels a bin.
  bool Contains(uint64_t item) const { return core_.Contains(item); }

  /// Count of the minimum bin (= maximum overestimation).
  int64_t MinCount() const { return core_.MinCount(); }

  /// Rows processed; preserved exactly by the bins.
  int64_t TotalCount() const { return core_.TotalCount(); }

  /// Number of bins (m).
  size_t capacity() const { return core_.capacity(); }

  /// Number of labeled bins.
  size_t size() const { return core_.size(); }

  /// Labeled bins in descending count order.
  std::vector<SketchEntry> Entries() const { return core_.Entries(); }

  /// Access for merge/estimation helpers.
  const SpaceSavingCore& core() const { return core_; }
  SpaceSavingCore& core() { return core_; }

 private:
  SpaceSavingCore core_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_DETERMINISTIC_SPACE_SAVING_H_
