// Disaggregated subset sum estimation over an Unbiased Space Saving sketch
// (paper §6.4-6.5): point estimate, the variance estimator
//
//   V̂ar(N̂_S) = N̂min² · C_S        (paper eq. 5)
//
// where C_S = max(1, #items of S tracked by the sketch), and normal
// confidence intervals built from it. The variance estimate is valid (and
// deliberately upward biased) even for worst-case non-i.i.d. streams.

#ifndef DSKETCH_CORE_SUBSET_SUM_H_
#define DSKETCH_CORE_SUBSET_SUM_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/unbiased_space_saving.h"

namespace dsketch {

/// A two-sided interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  /// True if `x` lies inside the interval (inclusive).
  bool Contains(double x) const { return x >= lo && x <= hi; }

  /// Interval width.
  double Width() const { return hi - lo; }
};

/// Result of a subset sum query against a sketch.
struct SubsetSumEstimate {
  double estimate = 0.0;       ///< unbiased estimate of the subset sum
  double variance = 0.0;       ///< V̂ar from paper eq. 5 (upward biased)
  uint64_t items_in_sample = 0;  ///< C_S before the max(1, .) floor

  /// Estimated standard deviation.
  double StdDev() const;

  /// Normal confidence interval at `level` (e.g. 0.95).
  Interval Confidence(double level) const;
};

/// Estimates the sum over all items satisfying `pred`.
SubsetSumEstimate EstimateSubsetSum(
    const UnbiasedSpaceSaving& sketch,
    const std::function<bool(uint64_t)>& pred);

/// Estimates the sum over an explicit item set.
SubsetSumEstimate EstimateSubsetSum(
    const UnbiasedSpaceSaving& sketch,
    const std::unordered_set<uint64_t>& items);

/// Estimate over pre-listed sketch entries (used when one scan must serve
/// many subsets); `min_count` is the sketch's MinCount().
SubsetSumEstimate EstimateSubsetSumFromEntries(
    const std::vector<SketchEntry>& entries, int64_t min_count,
    const std::function<bool(uint64_t)>& pred);

}  // namespace dsketch

#endif  // DSKETCH_CORE_SUBSET_SUM_H_
