// The classic "stream summary" data structure of Metwally et al. 2005: a
// doubly-linked list of count-value groups, each holding a doubly-linked
// list of bins, with a hash index from item to bin. Increments move a bin
// to the neighboring group in O(1).
//
// The main engine (core/space_saving_core.h) uses an equivalent
// count-sorted array instead; this faithful linked-list implementation
// exists (a) as the ablation comparator for that design choice
// (bench_ablation_structure) and (b) to cross-validate the two engines'
// statistical behavior. Functionally it supports the same two policies.
//
// Tie-breaking among minimum bins: the group's bin list acts as a queue —
// kFirstSlot picks the head; kRandom picks a uniformly random bin of the
// minimum group by drawing an offset and walking the list, which is
// expected O(group size / 2) and worst-case O(group size). A uniform
// pick over a linked list cannot be O(1) without auxiliary random-access
// state (a reservoir pass would walk the *whole* group, i.e. strictly
// more than the offset walk used here), so the cost is documented rather
// than hidden: bench_ablation_structure prints the caveat next to its
// numbers. The array engine indexes a random slot of the minimum range
// in O(1) — one of the reasons it is the engine the library prefers.

#ifndef DSKETCH_CORE_STREAM_SUMMARY_LIST_H_
#define DSKETCH_CORE_STREAM_SUMMARY_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sketch_entry.h"
#include "core/space_saving_core.h"  // LabelPolicy, TieBreak
#include "util/flat_map.h"
#include "util/random.h"

namespace dsketch {

/// Space Saving on the original linked-list stream summary structure.
class StreamSummaryList {
 public:
  /// Same contract as SpaceSavingCore.
  StreamSummaryList(size_t capacity, LabelPolicy policy, uint64_t seed = 1,
                    TieBreak tie_break = TieBreak::kRandom);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Estimated count (0 if untracked).
  int64_t EstimateCount(uint64_t item) const;

  /// True if `item` labels a bin.
  bool Contains(uint64_t item) const { return index_.Find(item) != nullptr; }

  /// Count of the minimum bin (0 while not full).
  int64_t MinCount() const;

  /// Rows processed (bins sum to exactly this).
  int64_t TotalCount() const { return total_; }

  /// Number of bins.
  size_t capacity() const { return capacity_; }

  /// Number of labeled bins.
  size_t size() const { return index_.size(); }

  /// Labeled bins, descending by count.
  std::vector<SketchEntry> Entries() const;

 private:
  static constexpr uint32_t kNil = ~0u;

  struct Bin {
    uint64_t item;
    uint32_t group;      // owning group index
    uint32_t prev, next; // within the group's bin list
  };

  struct Group {
    int64_t count;
    uint32_t head;        // first bin
    uint32_t size;        // number of bins
    uint32_t prev, next;  // neighboring groups by count (ascending)
  };

  uint32_t AllocGroup(int64_t count);
  void FreeGroup(uint32_t g);
  void DetachBin(uint32_t b);
  void AttachBin(uint32_t b, uint32_t g);
  // Moves bin b from its group (count c) to a group with count c+1,
  // creating/destroying groups as needed.
  void PromoteBin(uint32_t b);
  uint32_t PickMinBin();

  size_t capacity_;
  LabelPolicy policy_;
  TieBreak tie_break_;
  std::vector<Bin> bins_;
  std::vector<Group> groups_;
  std::vector<uint32_t> free_groups_;
  uint32_t min_group_ = kNil;
  FlatMap<uint32_t> index_;  // item -> bin id
  size_t used_bins_ = 0;
  int64_t total_ = 0;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_STREAM_SUMMARY_LIST_H_
