#include "core/unbiased_space_saving.h"

// Header-only wrapper; translation unit anchors the type for the library.
