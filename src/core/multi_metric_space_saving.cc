#include "core/multi_metric_space_saving.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace dsketch {

MultiMetricSpaceSaving::MultiMetricSpaceSaving(size_t capacity,
                                               size_t num_metrics,
                                               uint64_t seed)
    : capacity_(capacity),
      num_metrics_(num_metrics),
      index_(capacity),
      rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  DSKETCH_CHECK(num_metrics > 0);
  heap_.reserve(capacity);
}

void MultiMetricSpaceSaving::SetSlot(size_t i, MultiMetricEntry e) {
  heap_[i] = std::move(e);
  index_.InsertOrAssign(heap_[i].item, static_cast<uint32_t>(i));
}

void MultiMetricSpaceSaving::SiftUp(size_t i) {
  MultiMetricEntry e = std::move(heap_[i]);
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (heap_[parent].primary <= e.primary) break;
    SetSlot(i, std::move(heap_[parent]));
    i = parent;
  }
  SetSlot(i, std::move(e));
}

void MultiMetricSpaceSaving::SiftDown(size_t i) {
  MultiMetricEntry e = std::move(heap_[i]);
  const size_t n = heap_.size();
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].primary < heap_[child].primary) {
      ++child;
    }
    if (heap_[child].primary >= e.primary) break;
    SetSlot(i, std::move(heap_[child]));
    i = child;
  }
  SetSlot(i, std::move(e));
}

void MultiMetricSpaceSaving::Update(uint64_t item, double primary_weight,
                                    const std::vector<double>& metrics) {
  UpdateHashed(item, FlatMap<uint32_t>::MixedHash(item), primary_weight,
               metrics);
}

void MultiMetricSpaceSaving::UpdateBatch(Span<const uint64_t> items,
                                         double primary_weight,
                                         const std::vector<double>& metrics) {
  // Same chunked pre-hash + prefetch scheme as SpaceSavingCore; the state
  // transitions and RNG draws match per-row Update exactly.
  constexpr size_t kChunk = 256;
  constexpr size_t kAhead = 12;
  uint64_t hashes[kChunk];
  const uint64_t* data = items.data();
  const size_t n = items.size();
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t j = 0; j < len; ++j) {
      hashes[j] = FlatMap<uint32_t>::MixedHash(data[base + j]);
    }
    const size_t lead = std::min(kAhead, len);
    for (size_t j = 0; j < lead; ++j) index_.Prefetch(hashes[j]);
    for (size_t j = 0; j < len; ++j) {
      if (j + kAhead < len) index_.Prefetch(hashes[j + kAhead]);
      UpdateHashed(data[base + j], hashes[j], primary_weight, metrics);
    }
  }
}

void MultiMetricSpaceSaving::UpdateHashed(uint64_t item, uint64_t hash,
                                          double primary_weight,
                                          const std::vector<double>& metrics) {
  DSKETCH_CHECK(primary_weight > 0.0 && std::isfinite(primary_weight));
  DSKETCH_CHECK(metrics.size() == num_metrics_);
  // NaN or inf would poison the HT-scaled accumulators (inf - inf is
  // NaN) and make a serialized snapshot unrestorable (the deserializer
  // rejects non-finite payloads).
  for (double v : metrics) DSKETCH_CHECK(std::isfinite(v));
  total_primary_ += primary_weight;

  if (uint32_t* pos = index_.FindHashed(item, hash)) {
    MultiMetricEntry& bin = heap_[*pos];
    bin.primary += primary_weight;
    for (size_t k = 0; k < num_metrics_; ++k) bin.metrics[k] += metrics[k];
    SiftDown(*pos);
    return;
  }

  if (heap_.size() < capacity_) {
    MultiMetricEntry e;
    e.item = item;
    e.primary = primary_weight;
    e.metrics = metrics;
    heap_.push_back(std::move(e));
    SetSlot(heap_.size() - 1, std::move(heap_.back()));
    SiftUp(heap_.size() - 1);
    return;
  }

  // PPS-collapse the incoming bin with the minimum bin: the survivor's
  // auxiliary metrics are Horvitz-Thompson scaled by 1/P(survive), which
  // preserves every metric's expectation (Theorem 2 per metric).
  MultiMetricEntry& root = heap_[0];
  double combined = root.primary + primary_weight;
  double keep_incoming_prob = primary_weight / combined;
  bool keep_incoming = rng_.NextDouble() < keep_incoming_prob;

  MultiMetricEntry winner;
  winner.primary = combined;
  if (keep_incoming) {
    winner.item = item;
    winner.metrics = metrics;
    for (double& v : winner.metrics) v /= keep_incoming_prob;
  } else {
    winner.item = root.item;
    winner.metrics = root.metrics;
    for (double& v : winner.metrics) v /= (1.0 - keep_incoming_prob);
  }
  index_.Erase(root.item);
  SetSlot(0, std::move(winner));
  SiftDown(0);
}

void MultiMetricSpaceSaving::Update(uint64_t item, double primary_weight,
                                    double metric0) {
  scratch_.assign(num_metrics_, 0.0);
  scratch_[0] = metric0;
  Update(item, primary_weight, scratch_);
}

void MultiMetricSpaceSaving::LoadBins(std::vector<MultiMetricEntry> bins) {
  DSKETCH_CHECK(bins.size() <= capacity_);
  for (const MultiMetricEntry& b : bins) {
    DSKETCH_CHECK(b.metrics.size() == num_metrics_);
    DSKETCH_CHECK(b.primary >= 0.0 && std::isfinite(b.primary));
    for (double v : b.metrics) DSKETCH_CHECK(std::isfinite(v));
  }
  heap_ = std::move(bins);
  index_.Clear();
  total_primary_ = 0.0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    total_primary_ += heap_[i].primary;
    index_.InsertOrAssign(heap_[i].item, static_cast<uint32_t>(i));
  }
  DSKETCH_CHECK(index_.size() == heap_.size());  // labels were distinct
  // Heapify bottom-up (leaves are already heaps); SetSlot keeps the
  // index positions current as SiftDown moves entries.
  for (size_t i = heap_.size() / 2; i > 0; --i) SiftDown(i - 1);
}

double MultiMetricSpaceSaving::EstimatePrimary(uint64_t item) const {
  const uint32_t* pos = index_.Find(item);
  return pos != nullptr ? heap_[*pos].primary : 0.0;
}

double MultiMetricSpaceSaving::EstimateMetric(uint64_t item, size_t k) const {
  DSKETCH_CHECK(k < num_metrics_);
  const uint32_t* pos = index_.Find(item);
  return pos != nullptr ? heap_[*pos].metrics[k] : 0.0;
}

}  // namespace dsketch
