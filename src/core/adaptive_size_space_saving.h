// Adaptive sketch size (paper §5.3: "Other possible operations include
// adaptively varying the sketch size in order to only remove items with
// small estimated frequency").
//
// Instead of a fixed bin budget, the sketch targets a *relative error
// budget*: it admits every new item into its own bin and, whenever the bin
// count exceeds a high-water mark, PPS-collapses the smallest bins until
// either the floor capacity is reached or the smallest bin exceeds
// `error_target` * TotalCount() — i.e. it only ever merges away items
// whose estimated frequency is below the error target. Memory therefore
// floats with the data: skewed streams stay small, flat streams grow.
// Every reduction is the unbiased pairwise-PPS collapse, so Theorem 2
// keeps all estimates unbiased and the total exact.

#ifndef DSKETCH_CORE_ADAPTIVE_SIZE_SPACE_SAVING_H_
#define DSKETCH_CORE_ADAPTIVE_SIZE_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sketch_entry.h"
#include "util/flat_map.h"
#include "util/random.h"

namespace dsketch {

/// Unbiased Space Saving with a floating bin count.
class AdaptiveSizeSpaceSaving {
 public:
  /// Bins never drop below `min_capacity`; a reduction pass runs whenever
  /// the bin count reaches `max_capacity`, collapsing smallest-first while
  /// the smallest bin is under `error_target` * TotalCount().
  AdaptiveSizeSpaceSaving(size_t min_capacity, size_t max_capacity,
                          double error_target, uint64_t seed = 1);

  /// Processes one row with label `item`.
  void Update(uint64_t item);

  /// Unbiased estimate of the item's count (0 if untracked).
  int64_t EstimateCount(uint64_t item) const;

  /// True if `item` labels a bin.
  bool Contains(uint64_t item) const { return index_.Find(item) != nullptr; }

  /// Rows processed; bins sum to exactly this.
  int64_t TotalCount() const { return total_; }

  /// Current number of bins (floats between min_capacity and max_capacity).
  size_t size() const { return heap_.size(); }

  /// Labeled bins, descending by count.
  std::vector<SketchEntry> Entries() const;

  /// Smallest current bin count (the overestimation scale).
  int64_t MinCount() const;

 private:
  void SetSlot(size_t i, SketchEntry e);
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopMinInto(SketchEntry* out);
  void ReduceIfNeeded();

  size_t min_capacity_;
  size_t max_capacity_;
  double error_target_;
  std::vector<SketchEntry> heap_;  // min-heap by count
  FlatMap<uint32_t> index_;
  int64_t total_ = 0;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_ADAPTIVE_SIZE_SPACE_SAVING_H_
