#include "core/stream_summary_list.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

StreamSummaryList::StreamSummaryList(size_t capacity, LabelPolicy policy,
                                     uint64_t seed, TieBreak tie_break)
    : capacity_(capacity),
      policy_(policy),
      tie_break_(tie_break),
      index_(capacity),
      rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  DSKETCH_CHECK(capacity < (1ULL << 32) - 2);
  bins_.resize(capacity);
  groups_.reserve(capacity + 1);
}

uint32_t StreamSummaryList::AllocGroup(int64_t count) {
  uint32_t g;
  if (!free_groups_.empty()) {
    g = free_groups_.back();
    free_groups_.pop_back();
  } else {
    g = static_cast<uint32_t>(groups_.size());
    groups_.push_back({});
  }
  groups_[g].count = count;
  groups_[g].head = kNil;
  groups_[g].size = 0;
  groups_[g].prev = kNil;
  groups_[g].next = kNil;
  return g;
}

void StreamSummaryList::FreeGroup(uint32_t g) { free_groups_.push_back(g); }

void StreamSummaryList::DetachBin(uint32_t b) {
  Bin& bin = bins_[b];
  Group& g = groups_[bin.group];
  if (bin.prev != kNil) bins_[bin.prev].next = bin.next;
  if (bin.next != kNil) bins_[bin.next].prev = bin.prev;
  if (g.head == b) g.head = bin.next;
  --g.size;
}

void StreamSummaryList::AttachBin(uint32_t b, uint32_t g) {
  Bin& bin = bins_[b];
  bin.group = g;
  bin.prev = kNil;
  bin.next = groups_[g].head;
  if (groups_[g].head != kNil) bins_[groups_[g].head].prev = b;
  groups_[g].head = b;
  ++groups_[g].size;
}

void StreamSummaryList::PromoteBin(uint32_t b) {
  const uint32_t g = bins_[b].group;
  const int64_t c = groups_[g].count;
  const uint32_t nxt = groups_[g].next;

  uint32_t target;
  if (nxt != kNil && groups_[nxt].count == c + 1) {
    target = nxt;
  } else {
    target = AllocGroup(c + 1);
    groups_[target].prev = g;
    groups_[target].next = nxt;
    groups_[g].next = target;
    if (nxt != kNil) groups_[nxt].prev = target;
  }

  DetachBin(b);
  if (groups_[g].size == 0) {
    uint32_t p = groups_[g].prev;
    uint32_t n = groups_[g].next;
    if (p != kNil) groups_[p].next = n;
    if (n != kNil) groups_[n].prev = p;
    if (min_group_ == g) min_group_ = n;
    FreeGroup(g);
  }
  AttachBin(b, target);
}

uint32_t StreamSummaryList::PickMinBin() {
  DSKETCH_DCHECK(min_group_ != kNil);
  const Group& g = groups_[min_group_];
  uint32_t b = g.head;
  if (tie_break_ == TieBreak::kRandom && g.size > 1) {
    uint64_t steps = rng_.NextBounded(g.size);
    for (uint64_t s = 0; s < steps; ++s) b = bins_[b].next;
  }
  return b;
}

void StreamSummaryList::Update(uint64_t item) {
  ++total_;
  if (uint32_t* pb = index_.Find(item)) {
    PromoteBin(*pb);
    return;
  }

  if (used_bins_ < capacity_) {
    uint32_t b = static_cast<uint32_t>(used_bins_++);
    bins_[b].item = item;
    uint32_t g;
    if (min_group_ != kNil && groups_[min_group_].count == 1) {
      g = min_group_;
    } else {
      g = AllocGroup(1);
      groups_[g].next = min_group_;
      if (min_group_ != kNil) groups_[min_group_].prev = g;
      min_group_ = g;
    }
    AttachBin(b, g);
    index_.InsertOrAssign(item, b);
    return;
  }

  uint32_t b = PickMinBin();
  int64_t cmin = groups_[bins_[b].group].count;
  bool replace = true;
  if (policy_ == LabelPolicy::kUnbiased) {
    replace = rng_.NextBernoulli(1.0 / (static_cast<double>(cmin) + 1.0));
  }
  if (replace) {
    index_.Erase(bins_[b].item);
    bins_[b].item = item;
    index_.InsertOrAssign(item, b);
  }
  PromoteBin(b);
}

int64_t StreamSummaryList::EstimateCount(uint64_t item) const {
  const uint32_t* pb = index_.Find(item);
  return pb != nullptr ? groups_[bins_[*pb].group].count : 0;
}

int64_t StreamSummaryList::MinCount() const {
  if (used_bins_ < capacity_ || min_group_ == kNil) return 0;
  return groups_[min_group_].count;
}

std::vector<SketchEntry> StreamSummaryList::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(used_bins_);
  for (uint32_t g = min_group_; g != kNil; g = groups_[g].next) {
    for (uint32_t b = groups_[g].head; b != kNil; b = bins_[b].next) {
      out.push_back({bins_[b].item, groups_[g].count});
    }
  }
  std::reverse(out.begin(), out.end());  // ascending walk -> descending out
  return out;
}

}  // namespace dsketch
