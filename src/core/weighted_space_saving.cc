#include "core/weighted_space_saving.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

WeightedSpaceSaving::WeightedSpaceSaving(size_t capacity, uint64_t seed)
    : capacity_(capacity), index_(capacity), rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  heap_.reserve(capacity + 1);
}

void WeightedSpaceSaving::SetSlot(size_t i, WeightedEntry e) {
  heap_[i] = e;
  index_.InsertOrAssign(e.item, static_cast<uint32_t>(i));
}

void WeightedSpaceSaving::SiftUp(size_t i) {
  WeightedEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (heap_[parent].weight <= e.weight) break;
    SetSlot(i, heap_[parent]);
    i = parent;
  }
  SetSlot(i, e);
}

void WeightedSpaceSaving::SiftDown(size_t i) {
  WeightedEntry e = heap_[i];
  const size_t n = heap_.size();
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].weight < heap_[child].weight) {
      ++child;
    }
    if (heap_[child].weight >= e.weight) break;
    SetSlot(i, heap_[child]);
    i = child;
  }
  SetSlot(i, e);
}

void WeightedSpaceSaving::Update(uint64_t item, double weight) {
  UpdateHashed(item, FlatMap<uint32_t>::MixedHash(item), weight);
}

void WeightedSpaceSaving::UpdateBatch(Span<const uint64_t> items,
                                      double weight) {
  UpdateBatch(items, Span<const double>(nullptr, 0), weight);
}

void WeightedSpaceSaving::UpdateBatch(Span<const uint64_t> items,
                                      Span<const double> weights) {
  DSKETCH_CHECK(weights.size() == items.size());
  UpdateBatch(items, weights, 0.0);
}

void WeightedSpaceSaving::UpdateBatch(Span<const WeightedEntry> rows) {
  // Deinterleave into the aligned-array form chunk by chunk so the rows
  // reuse the pre-hash + prefetch pipeline below.
  constexpr size_t kChunk = 256;
  uint64_t items[kChunk];
  double weights[kChunk];
  for (size_t base = 0; base < rows.size(); base += kChunk) {
    const size_t len = std::min(kChunk, rows.size() - base);
    for (size_t j = 0; j < len; ++j) {
      items[j] = rows[base + j].item;
      weights[j] = rows[base + j].weight;
    }
    UpdateBatch(Span<const uint64_t>(items, len),
                Span<const double>(weights, len), 0.0);
  }
}

void WeightedSpaceSaving::UpdateBatch(Span<const uint64_t> items,
                                      Span<const double> weights,
                                      double shared_weight) {
  // Same chunked pre-hash + prefetch scheme as SpaceSavingCore; the state
  // transitions and RNG draws match per-row Update exactly.
  constexpr size_t kChunk = 256;
  constexpr size_t kAhead = 12;
  uint64_t hashes[kChunk];
  const uint64_t* data = items.data();
  const size_t n = items.size();
  const bool per_row = weights.size() == n && n > 0;
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t len = std::min(kChunk, n - base);
    for (size_t j = 0; j < len; ++j) {
      hashes[j] = FlatMap<uint32_t>::MixedHash(data[base + j]);
    }
    const size_t lead = std::min(kAhead, len);
    for (size_t j = 0; j < lead; ++j) index_.Prefetch(hashes[j]);
    for (size_t j = 0; j < len; ++j) {
      if (j + kAhead < len) index_.Prefetch(hashes[j + kAhead]);
      const double w = per_row ? weights[base + j] : shared_weight;
      UpdateHashed(data[base + j], hashes[j], w);
    }
  }
}

void WeightedSpaceSaving::UpdateHashed(uint64_t item, uint64_t hash,
                                       double weight) {
  DSKETCH_CHECK(weight > 0.0);
  total_ += weight;

  if (uint32_t* pos = index_.FindHashed(item, hash)) {
    heap_[*pos].weight += weight;
    SiftDown(*pos);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back({item, weight});
    SetSlot(heap_.size() - 1, {item, weight});
    SiftUp(heap_.size() - 1);
    return;
  }

  // Full: treat the row as a temporary (m+1)-th bin and PPS-collapse the
  // two smallest of the m+1 bins (Theorem 2 reduction). The smallest is
  // the heap root; the second smallest is the smaller of the root's
  // children and the incoming bin.
  WeightedEntry incoming{item, weight};
  size_t second = 0;  // index of the second-smallest *heap* bin
  if (heap_.size() > 1) {
    second = 1;
    if (heap_.size() > 2 && heap_[2].weight < heap_[1].weight) second = 2;
  }

  auto pps_winner = [this](const WeightedEntry& lo, const WeightedEntry& hi,
                           double combined) -> uint64_t {
    // Keep hi's label with probability hi.weight / combined.
    return rng_.NextDouble() * combined < hi.weight ? hi.item : lo.item;
  };

  if (second == 0 || incoming.weight <= heap_[second].weight) {
    // Collapse root with the incoming bin.
    WeightedEntry root = heap_[0];
    const WeightedEntry& lo = incoming.weight < root.weight ? incoming : root;
    const WeightedEntry& hi = incoming.weight < root.weight ? root : incoming;
    double combined = lo.weight + hi.weight;
    uint64_t winner = pps_winner(lo, hi, combined);
    index_.Erase(root.item);
    SetSlot(0, {winner, combined});
    SiftDown(0);
  } else {
    // Collapse root with its smaller child; the freed slot takes the
    // incoming bin unchanged.
    WeightedEntry root = heap_[0];
    WeightedEntry next = heap_[second];
    double combined = root.weight + next.weight;
    uint64_t winner = pps_winner(root, next, combined);
    index_.Erase(root.item);
    index_.Erase(next.item);
    SetSlot(second, incoming);
    SiftDown(second);
    SetSlot(0, {winner, combined});
    SiftDown(0);
  }
}

double WeightedSpaceSaving::EstimateWeight(uint64_t item) const {
  const uint32_t* pos = index_.Find(item);
  return pos != nullptr ? heap_[*pos].weight : 0.0;
}

double WeightedSpaceSaving::MinWeight() const {
  if (heap_.size() < capacity_) return 0.0;
  return heap_.empty() ? 0.0 : heap_[0].weight;
}

std::vector<WeightedEntry> WeightedSpaceSaving::Entries() const {
  std::vector<WeightedEntry> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const WeightedEntry& a, const WeightedEntry& b) {
              return a.weight > b.weight;
            });
  return out;
}

void WeightedSpaceSaving::Scale(double factor) {
  DSKETCH_CHECK(factor > 0.0);
  for (WeightedEntry& e : heap_) e.weight *= factor;
  total_ *= factor;
}

void WeightedSpaceSaving::LoadEntries(
    const std::vector<WeightedEntry>& entries) {
  DSKETCH_CHECK(entries.size() <= capacity_);
  heap_.clear();
  index_.Clear();
  total_ = 0.0;
  for (const WeightedEntry& e : entries) {
    DSKETCH_CHECK(e.weight >= 0.0);
    heap_.push_back(e);
    total_ += e.weight;
  }
  // Heapify bottom-up, then record positions.
  for (size_t i = heap_.size(); i > 0; --i) {
    size_t idx = i - 1;
    // SiftDown rewrites positions for the subtree it touches.
    SiftDown(idx);
  }
  for (size_t i = 0; i < heap_.size(); ++i) {
    index_.InsertOrAssign(heap_[i].item, static_cast<uint32_t>(i));
  }
}

}  // namespace dsketch
