// Shared engine for the Space Saving sketch family (paper Algorithm 1).
//
// The engine maintains m (item, count) bins and supports the single update
// rule both variants share:
//
//   * tracked item  -> increment its bin;
//   * untracked item -> increment a minimum-count bin and replace its label
//     with the new item with probability p, where
//       p = 1               (Deterministic Space Saving, Metwally et al.)
//       p = 1/(Nmin + 1)    (Unbiased Space Saving, the paper's sketch)
//
// Everything is O(1) per update. Instead of the linked-list "stream
// summary" structure of Metwally et al., bins live in an array kept sorted
// by count, with a hash map from each distinct count value to its
// contiguous [begin, end) slot range. Incrementing a bin swaps it to the
// end of its count range and extends the next range — an equivalent
// formulation that is cache-friendlier and, importantly here, supports
// uniform-random selection among minimum bins in O(1) (the paper's
// analysis assumes random tie-breaking, §6.1).

#ifndef DSKETCH_CORE_SPACE_SAVING_CORE_H_
#define DSKETCH_CORE_SPACE_SAVING_CORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sketch_entry.h"
#include "util/flat_map.h"
#include "util/mmap_array.h"
#include "util/random.h"
#include "util/span.h"

namespace dsketch {

/// Label-replacement rule for the minimum bin (see file comment).
enum class LabelPolicy {
  kDeterministic,  ///< always relabel (classic Space Saving)
  kUnbiased,       ///< relabel with probability 1/(Nmin+1) (the paper)
};

/// How to choose among several bins tied at the minimum count.
enum class TieBreak {
  kRandom,      ///< uniform random minimum bin (paper's analysis, default)
  kFirstSlot,   ///< deterministic choice (reproducible unit tests)
};

/// Engine implementing the Space Saving update; used via the
/// UnbiasedSpaceSaving / DeterministicSpaceSaving wrappers.
class SpaceSavingCore {
 public:
  /// A sketch with `capacity` bins. `seed` drives label replacement and
  /// tie-breaking; runs with equal seeds are bit-for-bit reproducible.
  SpaceSavingCore(size_t capacity, LabelPolicy policy, uint64_t seed = 1,
                  TieBreak tie_break = TieBreak::kRandom);

  /// Processes one row whose unit-of-analysis label is `item`.
  void Update(uint64_t item);

  /// Processes `items` in stream order. Bit-for-bit identical to calling
  /// Update once per row (same bins, same RNG stream), but pre-hashes the
  /// keys and software-prefetches the index probe lines a few rows ahead,
  /// so the per-row hash-table miss latencies overlap. The speedup grows
  /// with sketch size (larger tables miss more).
  void UpdateBatch(Span<const uint64_t> items);

  /// Estimated count for `item`: its bin count, or 0 if untracked.
  /// Unbiased under LabelPolicy::kUnbiased (paper Theorem 1).
  int64_t EstimateCount(uint64_t item) const;

  /// True if `item` currently labels a bin.
  bool Contains(uint64_t item) const { return index_.Find(item) != nullptr; }

  /// Count of the minimum bin (0 while the sketch has empty bins).
  int64_t MinCount() const { return slots_.front().count; }

  /// Rows processed so far; the bins always sum to exactly this value.
  int64_t TotalCount() const { return total_; }

  /// Number of bins (m).
  size_t capacity() const { return slots_.size(); }

  /// Number of bins currently holding a label.
  size_t size() const { return index_.size(); }

  /// All labeled bins, sorted by descending count.
  std::vector<SketchEntry> Entries() const;

  /// Replaces the sketch contents with `entries` (at most `capacity()`,
  /// distinct labels). Used by the merge operations to materialize a
  /// reduced sketch; TotalCount() becomes the sum of the entry counts.
  void LoadEntries(const std::vector<SketchEntry>& entries);

  /// The label-replacement policy this sketch was built with.
  LabelPolicy policy() const { return policy_; }

 private:
  struct Slot {
    uint64_t item;  // kNoLabel when the bin has never been labeled
    int64_t count;
  };

  struct Range {
    uint32_t begin;
    uint32_t end;  // exclusive
  };

  static constexpr uint64_t kNoLabel = ~0ULL - 1;
  static constexpr uint32_t kNoIndex = ~0u;  // bin holds no label

  // UpdateBatch body for large sketches: overlaps the hash-table and slot
  // misses of nearby rows via lookahead lookups and prefetch.
  void PipelinedUpdateBatch(Span<const uint64_t> items);

  // Update body with the item's index hash precomputed (MixedHash(item)).
  void UpdateHashed(uint64_t item, uint64_t hash);

  // The untracked-item branch of the update rule: pick a minimum bin,
  // maybe adopt the label, increment. Returns true if the label was
  // adopted (needed by UpdateBatch's staleness tracking).
  bool ApplyUntracked(uint64_t item, uint64_t hash);

  // Moves slot `i` (count c) to the top of its count range and bumps it to
  // c+1, fixing the range map (and the cached min-range end); returns the
  // slot's final position.
  uint32_t IncrementSlot(uint32_t i);

  void SwapSlots(uint32_t a, uint32_t b);

  LabelPolicy policy_;
  TieBreak tie_break_;
  MmapArray<Slot> slots_;         // ascending by count; huge-page backed
  FlatMap<uint32_t> index_;       // item -> slot position
  // Backpointer per bin: the index_ table position holding that bin's
  // label (kNoIndex for unlabeled bins). Lets the constant bin swaps of
  // IncrementSlot update the index with one direct store each instead of
  // a probe walk per swap partner, and lets ApplyUntracked erase the
  // evicted victim's index entry without re-hashing and re-probing it.
  // index_ is pre-sized for `capacity` keys, so it never rehashes and
  // positions only move on erases — which report every backward-shift
  // relocation through EraseAtPos's hook, fixing this array in O(1).
  MmapArray<uint32_t> index_pos_;
  FlatMap<Range> ranges_;         // count value -> slot range
  // End of the minimum count range (its begin is always 0). Maintained
  // incrementally by IncrementSlot/LoadEntries so the untracked-item path
  // needs no range lookup to tie-break among minimum bins.
  uint32_t min_range_end_ = 0;
  int64_t total_ = 0;
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_SPACE_SAVING_CORE_H_
