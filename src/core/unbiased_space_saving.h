// Unbiased Space Saving — the paper's primary contribution (Algorithm 1
// with p = 1/(Nmin+1)).
//
// One sketch answers both problems the paper targets:
//  * disaggregated subset sum: EstimateCount / EstimateSubsetSum (see
//    core/subset_sum.h) are unbiased for any item or item set (Theorem 1),
//    with a variance estimator and normal confidence intervals;
//  * frequent items: on i.i.d. streams every item with frequency > 1/m is
//    eventually tracked with probability 1 and its proportion estimate is
//    strongly consistent (Theorems 3, Corollaries 4-5).
//
// Updates are O(1); space is O(m).

#ifndef DSKETCH_CORE_UNBIASED_SPACE_SAVING_H_
#define DSKETCH_CORE_UNBIASED_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/space_saving_core.h"

namespace dsketch {

/// The Unbiased Space Saving sketch (paper Algorithm 1, randomized label).
class UnbiasedSpaceSaving {
 public:
  /// Sketch with `capacity` bins; `seed` makes runs reproducible.
  explicit UnbiasedSpaceSaving(size_t capacity, uint64_t seed = 1,
                               TieBreak tie_break = TieBreak::kRandom)
      : core_(capacity, LabelPolicy::kUnbiased, seed, tie_break) {}

  /// Processes one disaggregated row with unit-of-analysis label `item`.
  void Update(uint64_t item) { core_.Update(item); }

  /// Processes `items` in stream order; bit-for-bit identical to per-row
  /// Update but faster (pre-hashing + software prefetch; see
  /// SpaceSavingCore::UpdateBatch).
  void UpdateBatch(Span<const uint64_t> items) { core_.UpdateBatch(items); }

  /// Unbiased estimate of `item`'s count (0 when untracked).
  int64_t EstimateCount(uint64_t item) const {
    return core_.EstimateCount(item);
  }

  /// True if `item` currently labels a bin.
  bool Contains(uint64_t item) const { return core_.Contains(item); }

  /// Count of the minimum bin; drives the variance estimator (eq. 5).
  int64_t MinCount() const { return core_.MinCount(); }

  /// Rows processed; the sketch preserves this total exactly.
  int64_t TotalCount() const { return core_.TotalCount(); }

  /// Number of bins (m).
  size_t capacity() const { return core_.capacity(); }

  /// Number of labeled bins.
  size_t size() const { return core_.size(); }

  /// Labeled bins in descending count order.
  std::vector<SketchEntry> Entries() const { return core_.Entries(); }

  /// Access for merge/estimation helpers.
  const SpaceSavingCore& core() const { return core_; }
  SpaceSavingCore& core() { return core_; }

 private:
  SpaceSavingCore core_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_UNBIASED_SPACE_SAVING_H_
