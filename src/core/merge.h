// Merge operations and reduction primitives (paper §5.3, §5.5).
//
// All frequent-item sketches share the shape "exact increment, then a
// reduction that shrinks the bin set" (Algorithm 2). Theorem 2 shows any
// reduction whose post-reduction expected estimates equal the
// pre-reduction estimates yields an unbiased sketch. This module provides
// three reductions over (item, count) entry sets and the sketch-level
// merges built from them:
//
//  * ReducePairwise      — repeatedly PPS-collapse the two smallest bins
//                          (the generalization of USS's own update rule);
//                          unbiased, preserves the total count exactly,
//                          keeps integer counts.
//  * ReducePriority      — priority sampling over bins with the max(c, tau)
//                          Horvitz-Thompson estimator; unbiased, real-valued
//                          outputs, does not preserve the total exactly.
//  * ReduceMisraGries    — the Agarwal et al. soft-threshold merge used by
//                          the deterministic sketches; biased downward but
//                          deterministic-guarantee preserving.

#ifndef DSKETCH_CORE_MERGE_H_
#define DSKETCH_CORE_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/deterministic_space_saving.h"
#include "core/sketch_entry.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "util/random.h"

namespace dsketch {

/// Concatenates two entry sets, summing counts of duplicate labels.
std::vector<SketchEntry> CombineEntries(const std::vector<SketchEntry>& a,
                                        const std::vector<SketchEntry>& b);

/// Unbiased reduction to at most `target` bins by repeatedly collapsing
/// the two smallest bins into one whose label is chosen with probability
/// proportional to the collapsed counts. Preserves the total exactly.
/// When a reduction actually runs, entries are first brought into the
/// canonical (count, item) order, so the result is a function of the
/// entry *multiset* and the Rng state alone — cached-partial merges
/// reproduce from-scratch merges bit-for-bit. Under-target input is
/// returned unchanged (order included).
std::vector<SketchEntry> ReducePairwise(std::vector<SketchEntry> entries,
                                        size_t target, Rng& rng);

/// Builds a fresh sketch from pre-combined entry sums: canonical
/// (count, item) order, one pairwise reduction seeded by `seed`, then
/// LoadEntries. This is the single definition of "merge these entry
/// sums" — Merge, MergeAll, and the windowed merge cache all route
/// through it, which is what keeps their outputs bit-identical for the
/// same multiset + seed.
UnbiasedSpaceSaving SketchFromEntries(std::vector<SketchEntry> combined,
                                      size_t capacity, uint64_t seed);

/// Weighted analogue of SketchFromEntries (canonical (weight, item)
/// order + ReducePairwiseWeighted + LoadEntries).
WeightedSpaceSaving WeightedSketchFromEntries(
    std::vector<WeightedEntry> combined, size_t capacity, uint64_t seed);

/// Unbiased reduction to at most `target` bins via priority sampling
/// (priorities c_i/u_i, threshold tau = (target+1)-th priority, estimate
/// max(c_i, tau)). Returns real-valued adjusted weights.
std::vector<WeightedEntry> ReducePriority(
    const std::vector<SketchEntry>& entries, size_t target, Rng& rng);

/// Misra-Gries style reduction: subtracts the (target+1)-th largest count
/// from every entry and drops non-positive results (biased downward;
/// deterministic error guarantee preserved).
std::vector<SketchEntry> ReduceMisraGries(std::vector<SketchEntry> entries,
                                          size_t target);

/// Unbiased merge of two Unbiased Space Saving sketches into a fresh
/// sketch with `capacity` bins (pairwise reduction; Theorem 2).
UnbiasedSpaceSaving Merge(const UnbiasedSpaceSaving& a,
                          const UnbiasedSpaceSaving& b, size_t capacity,
                          uint64_t seed = 1);

/// Merge of deterministic sketches via the Misra-Gries soft threshold
/// (biased, deterministic guarantees).
DeterministicSpaceSaving Merge(const DeterministicSpaceSaving& a,
                               const DeterministicSpaceSaving& b,
                               size_t capacity, uint64_t seed = 1);

/// Unbiased merge of many sketches (fold with a single final reduction —
/// combines all entries first, then reduces once, which adds less noise
/// than repeated binary merges).
UnbiasedSpaceSaving MergeAll(const std::vector<const UnbiasedSpaceSaving*>& sketches,
                             size_t capacity, uint64_t seed = 1);

/// Real-valued analogue of ReducePairwise for weighted entries: unbiased,
/// preserves the total weight exactly (up to fp rounding).
std::vector<WeightedEntry> ReducePairwiseWeighted(
    std::vector<WeightedEntry> entries, size_t target, Rng& rng);

/// Unbiased merge of two weighted sketches (also covers time-decayed
/// sketches after rescaling both to a common landmark).
WeightedSpaceSaving Merge(const WeightedSpaceSaving& a,
                          const WeightedSpaceSaving& b, size_t capacity,
                          uint64_t seed = 1);

}  // namespace dsketch

#endif  // DSKETCH_CORE_MERGE_H_
