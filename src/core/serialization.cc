// Per-kind wire codecs over the layered primitives in src/wire: each
// sketch family contributes a thin codec (v2 encode, v1 + v2 payload
// decoders) keyed by the kind bytes the wire codec registry reserves for
// the built-in kinds (wire/codec.cc); the envelope, version dispatch,
// and varint/delta mechanics live in the wire layer and the shared
// drivers below. See serialization.h for the format documentation and
// caps table.

#include "core/serialization.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "wire/frozen.h"
#include "wire/varint.h"

// The frozen codec lives below core (wire cannot include core), so it
// speaks its own entry POD; the bridge here is a cast, which these
// asserts keep honest. The capacity cap is likewise duplicated on both
// sides of the seam.
static_assert(sizeof(dsketch::wire::FrozenEntry) ==
                  sizeof(dsketch::SketchEntry),
              "frozen/core entry layouts must match");
static_assert(dsketch::wire::kFrozenMaxCapacity ==
                  dsketch::kMaxSerializableCapacity,
              "frozen capacity cap must match the core serialization cap");

namespace dsketch {
namespace {

using wire::VarintReader;
using wire::VarintWriter;

// The public caps (serialization.h), enforced symmetrically on the
// serialize and deserialize paths of both wire versions: a sketch that
// can be serialized can always be restored, and a hostile header cannot
// force a huge allocation before the payload is validated. Space-saving
// sketches are small by design (thousands of bins; at 2^22 the
// worst-case restore footprint — slot array plus FlatMap index tables —
// stays in the low hundreds of MB). CountMin tables are flat i64 cells
// with no index, so they get a larger cap (2^25 cells = 256 MiB).
constexpr uint64_t kMaxCapacity = kMaxSerializableCapacity;
constexpr uint64_t kMaxCountMinCells = kMaxSerializableCountMinCells;

enum class SketchKind : uint8_t {
  kUnbiased = 1,
  kDeterministic = 2,
  kWeighted = 3,
  kMultiMetric = 4,
  kMisraGries = 5,
  kCountMin = 6,
};

uint64_t MaxCapacityFor(SketchKind kind) {
  return kind == SketchKind::kCountMin ? kMaxCountMinCells : kMaxCapacity;
}

// Fail loudly at write time rather than returning bytes that every
// deserializer would reject: a sketch that can be serialized can always
// be restored. Shared by both versions' encoders.
void CheckEncodable(SketchKind kind, uint64_t capacity, uint64_t entries) {
  DSKETCH_CHECK(capacity > 0 && capacity <= MaxCapacityFor(kind));
  DSKETCH_CHECK(entries <= capacity);
}

// Appends the envelope and runs `fn(writer)` to produce the payload.
// `payload_hint` pre-sizes the output so appends rarely reallocate.
template <typename PayloadFn>
std::string EncodeBlob(SketchKind kind, uint8_t version, size_t payload_hint,
                       PayloadFn&& fn) {
  std::string out;
  out.reserve(wire::kEnvelopeBytes + payload_hint);
  wire::WriteEnvelope(out, static_cast<uint8_t>(kind), version);
  VarintWriter writer(out);
  fn(writer);
  wire::RecordWireEncoded(static_cast<uint8_t>(kind), version, out.size());
  return out;
}

// Parses the envelope, checks the kind, and dispatches the payload to
// the per-version decoder; enforces full consumption so trailing garbage
// is rejected. The per-version decoders validate everything else.
template <typename Sketch, typename DecodeV1Fn, typename DecodeV2Fn>
std::optional<Sketch> DecodeBlob(std::string_view bytes, SketchKind kind,
                                 DecodeV1Fn&& decode_v1,
                                 DecodeV2Fn&& decode_v2) {
  VarintReader reader(bytes);
  std::optional<wire::Envelope> env = wire::ReadEnvelope(reader);
  if (!env || env->kind != static_cast<uint8_t>(kind)) return std::nullopt;
  if (!wire::VersionSupported(env->kind, env->version)) return std::nullopt;
  std::optional<Sketch> out;
  if (env->version == wire::kVersionLegacy) {
    out = decode_v1(reader);
  } else {
    out = decode_v2(reader);
  }
  if (!out.has_value() || !reader.AtEnd()) return std::nullopt;
  wire::RecordWireDecoded(env->kind, env->version, bytes.size());
  return out;
}

// ---------------------------------------------------------------------
// Version-1 payload helpers (fixed-width legacy layout).
// ---------------------------------------------------------------------

// v1 payload prefix: [u64 capacity][u32 entry_count].
void PutHeaderV1(VarintWriter& writer, SketchKind kind, uint64_t capacity,
                 uint32_t entries) {
  CheckEncodable(kind, capacity, entries);
  writer.PutValue(capacity);
  writer.PutValue(entries);
}

bool ReadHeaderV1(VarintReader& reader, SketchKind kind, uint64_t* capacity,
                  uint32_t* entries) {
  if (!reader.ReadValue(capacity) || *capacity == 0 ||
      *capacity > MaxCapacityFor(kind)) {
    return false;
  }
  if (!reader.ReadValue(entries) || *entries > *capacity) return false;
  return true;
}

// ---------------------------------------------------------------------
// Version-2 payload helpers (varint/delta layout).
// ---------------------------------------------------------------------

// v2 payload prefix for the bin sketches: [varint capacity][varint n].
void PutHeaderV2(VarintWriter& writer, SketchKind kind, uint64_t capacity,
                 uint64_t entries) {
  CheckEncodable(kind, capacity, entries);
  writer.PutVarint(capacity);
  writer.PutVarint(entries);
}

// `min_entry_bytes` is the smallest possible wire footprint of one entry;
// bounding the claimed count by the bytes actually present keeps hostile
// headers from forcing large reserve() calls before the payload scan.
bool ReadHeaderV2(VarintReader& reader, SketchKind kind, uint64_t* capacity,
                  uint64_t* entries, size_t min_entry_bytes) {
  if (!reader.ReadVarint(capacity) || *capacity == 0 ||
      *capacity > MaxCapacityFor(kind)) {
    return false;
  }
  if (!reader.ReadVarint(entries) || *entries > *capacity) return false;
  if (*entries > reader.remaining() / min_entry_bytes) return false;
  return true;
}

// Delta-encodes the descending count sequence of an entry list: the
// first count travels verbatim, every later one as prev-minus-current.
// The decoder rebuilds the sequence and structurally rejects increasing
// or negative counts (a delta larger than the running count underflows).
class CountDeltaWriter {
 public:
  explicit CountDeltaWriter(VarintWriter& writer) : writer_(writer) {}

  void Put(int64_t count) {
    if (first_) {
      writer_.PutVarint(static_cast<uint64_t>(count));
      first_ = false;
    } else {
      DSKETCH_CHECK(count <= prev_);  // Entries() order is descending
      writer_.PutVarint(static_cast<uint64_t>(prev_ - count));
    }
    prev_ = count;
  }

 private:
  VarintWriter& writer_;
  int64_t prev_ = 0;
  bool first_ = true;
};

class CountDeltaReader {
 public:
  explicit CountDeltaReader(VarintReader& reader) : reader_(reader) {}

  bool Read(int64_t* count) {
    if (first_) {
      if (!reader_.ReadVarintInt64(&prev_)) return false;
      first_ = false;
    } else {
      uint64_t delta;
      if (!reader_.ReadVarint(&delta)) return false;
      if (delta > static_cast<uint64_t>(prev_)) return false;  // negative
      prev_ -= static_cast<int64_t>(delta);
    }
    *count = prev_;
    return true;
  }

 private:
  VarintReader& reader_;
  int64_t prev_ = 0;
  bool first_ = true;
};

// ---------------------------------------------------------------------
// Integer entry-list codec (Unbiased / Deterministic Space Saving).
// ---------------------------------------------------------------------

template <typename Sketch>
std::string EncodeIntegerV1(SketchKind kind, const Sketch& sketch) {
  auto entries = sketch.Entries();
  return EncodeBlob(kind, wire::kVersionLegacy, 12 + entries.size() * 16,
                    [&](VarintWriter& writer) {
                      PutHeaderV1(writer, kind, sketch.capacity(),
                                  static_cast<uint32_t>(entries.size()));
                      for (const SketchEntry& e : entries) {
                        writer.PutValue(e.item);
                        writer.PutValue(e.count);
                      }
                    });
}

template <typename Sketch>
std::string EncodeIntegerV2(SketchKind kind, const Sketch& sketch) {
  auto entries = sketch.Entries();  // descending count order
  return EncodeBlob(kind, wire::kVersionCurrent, 4 + entries.size() * 12,
                    [&](VarintWriter& writer) {
                      PutHeaderV2(writer, kind, sketch.capacity(),
                                  entries.size());
                      CountDeltaWriter counts(writer);
                      for (const SketchEntry& e : entries) {
                        writer.PutVarint(e.item);
                        counts.Put(e.count);
                      }
                    });
}

// Shared v1/v2 tail: duplicate-label rejection, total-count overflow
// rejection (no real sketch's entries sum past int64 — TotalCount counts
// processed rows — so a blob that would wrap the restored total can only
// be tampering), and sketch construction.
template <typename Sketch>
std::optional<Sketch> LoadIntegerEntries(uint64_t capacity,
                                         std::vector<SketchEntry> entries,
                                         uint64_t seed) {
  std::unordered_set<uint64_t> seen;
  int64_t total = 0;
  for (const SketchEntry& e : entries) {
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    if (e.count > INT64_MAX - total) return std::nullopt;  // total overflow
    total += e.count;
  }
  Sketch sketch(static_cast<size_t>(capacity), seed);
  sketch.core().LoadEntries(entries);
  return sketch;
}

template <typename Sketch>
std::optional<Sketch> DecodeIntegerV1(VarintReader& reader, SketchKind kind,
                                      uint64_t seed) {
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeaderV1(reader, kind, &capacity, &count)) return std::nullopt;
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.ReadValue(&e.item) || !reader.ReadValue(&e.count)) {
      return std::nullopt;
    }
    if (e.count < 0) return std::nullopt;
    entries.push_back(e);
  }
  return LoadIntegerEntries<Sketch>(capacity, std::move(entries), seed);
}

template <typename Sketch>
std::optional<Sketch> DecodeIntegerV2(VarintReader& reader, SketchKind kind,
                                      uint64_t seed) {
  uint64_t capacity, count;
  if (!ReadHeaderV2(reader, kind, &capacity, &count, /*min_entry_bytes=*/2)) {
    return std::nullopt;
  }
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  CountDeltaReader counts(reader);
  for (uint64_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.ReadVarint(&e.item) || !counts.Read(&e.count)) {
      return std::nullopt;
    }
    entries.push_back(e);
  }
  return LoadIntegerEntries<Sketch>(capacity, std::move(entries), seed);
}

template <typename Sketch>
std::optional<Sketch> DecodeInteger(SketchKind kind, std::string_view bytes,
                                    uint64_t seed) {
  return DecodeBlob<Sketch>(
      bytes, kind,
      [&](VarintReader& r) { return DecodeIntegerV1<Sketch>(r, kind, seed); },
      [&](VarintReader& r) { return DecodeIntegerV2<Sketch>(r, kind, seed); });
}

// ---------------------------------------------------------------------
// Weighted codec.
// ---------------------------------------------------------------------

std::optional<WeightedSpaceSaving> LoadWeightedEntries(
    uint64_t capacity, const std::vector<WeightedEntry>& entries,
    uint64_t seed) {
  std::unordered_set<uint64_t> seen;
  for (const WeightedEntry& e : entries) {
    if (!(e.weight >= 0.0)) return std::nullopt;  // rejects NaN too
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
  }
  WeightedSpaceSaving sketch(static_cast<size_t>(capacity), seed);
  sketch.LoadEntries(entries);
  return sketch;
}

std::optional<WeightedSpaceSaving> DecodeWeightedV1(VarintReader& reader,
                                                    uint64_t seed) {
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeaderV1(reader, SketchKind::kWeighted, &capacity, &count)) {
    return std::nullopt;
  }
  std::vector<WeightedEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WeightedEntry e;
    if (!reader.ReadValue(&e.item) || !reader.ReadValue(&e.weight)) {
      return std::nullopt;
    }
    entries.push_back(e);
  }
  return LoadWeightedEntries(capacity, entries, seed);
}

std::optional<WeightedSpaceSaving> DecodeWeightedV2(VarintReader& reader,
                                                    uint64_t seed) {
  uint64_t capacity, count;
  if (!ReadHeaderV2(reader, SketchKind::kWeighted, &capacity, &count,
                    /*min_entry_bytes=*/9)) {
    return std::nullopt;
  }
  std::vector<WeightedEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    WeightedEntry e;
    if (!reader.ReadVarint(&e.item) || !reader.ReadDouble(&e.weight)) {
      return std::nullopt;
    }
    entries.push_back(e);
  }
  return LoadWeightedEntries(capacity, entries, seed);
}

// ---------------------------------------------------------------------
// Multi-metric codec.
// ---------------------------------------------------------------------

// Mirror of the decoders' footprint bound so the bytes are always
// restorable: ~(2 + K) doubles per bin plus per-bin vector overhead,
// capped well below the header-level capacity limit so a hostile header
// cannot force a huge allocation. With capacity >= 1 this also caps
// num_metrics.
bool MultiMetricFootprintOk(uint64_t capacity, uint64_t num_metrics) {
  return num_metrics > 0 && capacity * (2 + num_metrics) <= kMaxCapacity;
}

void CheckMultiMetricEncodable(const MultiMetricSpaceSaving& sketch) {
  DSKETCH_CHECK(MultiMetricFootprintOk(
      sketch.capacity(), static_cast<uint64_t>(sketch.num_metrics())));
}

std::optional<MultiMetricSpaceSaving> LoadMultiMetricBins(
    uint64_t capacity, uint64_t num_metrics,
    std::vector<MultiMetricEntry> bins, uint64_t seed) {
  std::unordered_set<uint64_t> seen;
  for (const MultiMetricEntry& b : bins) {
    // Rejects negatives, NaN, and inf (Serialize never emits them).
    if (!(b.primary >= 0.0) || !std::isfinite(b.primary)) return std::nullopt;
    for (double v : b.metrics) {
      if (!std::isfinite(v)) return std::nullopt;
    }
    if (!seen.insert(b.item).second) return std::nullopt;  // duplicate label
  }
  MultiMetricSpaceSaving sketch(static_cast<size_t>(capacity),
                                static_cast<size_t>(num_metrics), seed);
  sketch.LoadBins(std::move(bins));
  return sketch;
}

std::optional<MultiMetricSpaceSaving> DecodeMultiMetricV1(VarintReader& reader,
                                                          uint64_t seed) {
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeaderV1(reader, SketchKind::kMultiMetric, &capacity, &count)) {
    return std::nullopt;
  }
  uint32_t num_metrics;
  if (!reader.ReadValue(&num_metrics)) return std::nullopt;
  if (!MultiMetricFootprintOk(capacity, num_metrics)) return std::nullopt;
  std::vector<MultiMetricEntry> bins;
  bins.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    MultiMetricEntry b;
    if (!reader.ReadValue(&b.item) || !reader.ReadValue(&b.primary)) {
      return std::nullopt;
    }
    b.metrics.resize(num_metrics);
    for (uint32_t k = 0; k < num_metrics; ++k) {
      if (!reader.ReadValue(&b.metrics[k])) return std::nullopt;
    }
    bins.push_back(std::move(b));
  }
  return LoadMultiMetricBins(capacity, num_metrics, std::move(bins), seed);
}

std::optional<MultiMetricSpaceSaving> DecodeMultiMetricV2(VarintReader& reader,
                                                          uint64_t seed) {
  uint64_t capacity, count;
  if (!ReadHeaderV2(reader, SketchKind::kMultiMetric, &capacity, &count,
                    /*min_entry_bytes=*/9)) {
    return std::nullopt;
  }
  uint64_t num_metrics;
  if (!reader.ReadVarint(&num_metrics)) return std::nullopt;
  if (!MultiMetricFootprintOk(capacity, num_metrics)) return std::nullopt;
  if (count > 0 &&
      count > reader.remaining() / (1 + 8 * (1 + num_metrics))) {
    return std::nullopt;  // claimed bins cannot fit the bytes present
  }
  std::vector<MultiMetricEntry> bins;
  bins.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MultiMetricEntry b;
    if (!reader.ReadVarint(&b.item) || !reader.ReadDouble(&b.primary)) {
      return std::nullopt;
    }
    b.metrics.resize(num_metrics);
    for (uint64_t k = 0; k < num_metrics; ++k) {
      if (!reader.ReadDouble(&b.metrics[k])) return std::nullopt;
    }
    bins.push_back(std::move(b));
  }
  return LoadMultiMetricBins(capacity, num_metrics, std::move(bins), seed);
}

// ---------------------------------------------------------------------
// Misra-Gries codec.
// ---------------------------------------------------------------------

// Shared semantic validation: positive live counters, distinct labels,
// and the estimate budget (sum of estimates <= total - decrements, each
// decrement-all having consumed one row no counter accounts for). The
// incremental form keeps the accumulator from overflowing int64 and also
// rules out overflow of the stored counter inside LoadState
// (count + decrements <= total).
std::optional<MisraGries> LoadMisraGries(uint64_t capacity,
                                         const std::vector<SketchEntry>& entries,
                                         int64_t decrements, int64_t total) {
  if (decrements < 0 || total < 0 || decrements > total) return std::nullopt;
  const int64_t estimate_budget = total - decrements;
  std::unordered_set<uint64_t> seen;
  int64_t estimate_sum = 0;
  for (const SketchEntry& e : entries) {
    if (e.count <= 0) return std::nullopt;  // live counters only
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    if (e.count > estimate_budget - estimate_sum) return std::nullopt;
    estimate_sum += e.count;
  }
  MisraGries sketch(static_cast<size_t>(capacity));
  sketch.LoadState(entries, decrements, total);
  return sketch;
}

std::optional<MisraGries> DecodeMisraGriesV1(VarintReader& reader) {
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeaderV1(reader, SketchKind::kMisraGries, &capacity, &count)) {
    return std::nullopt;
  }
  int64_t decrements, total;
  if (!reader.ReadValue(&decrements) || !reader.ReadValue(&total)) {
    return std::nullopt;
  }
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.ReadValue(&e.item) || !reader.ReadValue(&e.count)) {
      return std::nullopt;
    }
    entries.push_back(e);
  }
  return LoadMisraGries(capacity, entries, decrements, total);
}

std::optional<MisraGries> DecodeMisraGriesV2(VarintReader& reader) {
  uint64_t capacity, count;
  if (!ReadHeaderV2(reader, SketchKind::kMisraGries, &capacity, &count,
                    /*min_entry_bytes=*/2)) {
    return std::nullopt;
  }
  int64_t decrements, total;
  if (!reader.ReadVarintInt64(&decrements) ||
      !reader.ReadVarintInt64(&total)) {
    return std::nullopt;
  }
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  CountDeltaReader counts(reader);
  for (uint64_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.ReadVarint(&e.item) || !counts.Read(&e.count)) {
      return std::nullopt;
    }
    entries.push_back(e);
  }
  return LoadMisraGries(capacity, entries, decrements, total);
}

// ---------------------------------------------------------------------
// CountMin codec. The v1 header's capacity/entry_count describe the
// counter table (the sketch has no entry list); v2 drops the redundancy
// and derives the cell count from the width/depth sub-header.
// ---------------------------------------------------------------------

// Shared table validation: every table CountMin can produce sums each
// row to exactly `total` (a plain update adds its count to one cell per
// row) or to at most `total` (conservative update raises each row by at
// most the count). Enforcing that keeps EstimateCount <= TotalCount on
// restored sketches, and the incremental bound keeps the row accumulator
// from overflowing int64. `read_cell` pulls the next counter off the
// wire in the version's encoding.
template <typename ReadCellFn>
std::optional<CountMin> LoadCountMin(uint64_t width, uint64_t depth,
                                     uint64_t seed, uint8_t conservative,
                                     int64_t total, ReadCellFn&& read_cell) {
  if (conservative > 1 || total < 0) return std::nullopt;
  const uint64_t cells = width * depth;
  std::vector<int64_t> table(cells);
  int64_t row_sum = 0;
  for (uint64_t i = 0; i < cells; ++i) {
    if (!read_cell(&table[i]) || table[i] < 0) return std::nullopt;
    if (table[i] > total - row_sum) return std::nullopt;
    row_sum += table[i];
    if ((i + 1) % width == 0) {
      if (conservative == 0 && row_sum != total) return std::nullopt;
      row_sum = 0;
    }
  }
  CountMin sketch(static_cast<size_t>(width), static_cast<size_t>(depth),
                  seed, conservative != 0);
  sketch.LoadState(std::move(table), total);
  return sketch;
}

std::optional<CountMin> DecodeCountMinV1(VarintReader& reader) {
  uint64_t cells;
  uint32_t count;
  if (!ReadHeaderV1(reader, SketchKind::kCountMin, &cells, &count)) {
    return std::nullopt;
  }
  uint64_t width, depth, seed;
  uint8_t conservative;
  int64_t total;
  if (!reader.ReadValue(&width) || width == 0 || width > cells) {
    return std::nullopt;
  }
  if (!reader.ReadValue(&depth) || depth == 0 || depth > cells) {
    return std::nullopt;
  }
  // width and depth are each <= cells <= kMaxCountMinCells (2^25), so
  // the product below cannot wrap uint64.
  if (width * depth != cells || cells != count) return std::nullopt;
  if (!reader.ReadValue(&seed)) return std::nullopt;
  if (!reader.ReadByte(&conservative)) return std::nullopt;
  if (!reader.ReadValue(&total)) return std::nullopt;
  return LoadCountMin(width, depth, seed, conservative, total,
                      [&](int64_t* cell) { return reader.ReadValue(cell); });
}

std::optional<CountMin> DecodeCountMinV2(VarintReader& reader) {
  uint64_t width, depth, seed_bits;
  uint8_t conservative;
  int64_t total;
  // width, depth <= kMaxCountMinCells keeps the product from wrapping
  // (2^25 * 2^25 = 2^50 < 2^64).
  if (!reader.ReadVarint(&width) || width == 0 ||
      width > kMaxCountMinCells) {
    return std::nullopt;
  }
  if (!reader.ReadVarint(&depth) || depth == 0 ||
      depth > kMaxCountMinCells / width) {
    return std::nullopt;
  }
  const uint64_t cells = width * depth;
  // Each counter is at least one byte on the wire, so a geometry whose
  // table cannot fit the bytes present is hostile; rejecting it here
  // bounds the allocation below.
  if (!reader.ReadValue(&seed_bits)) return std::nullopt;
  if (!reader.ReadByte(&conservative)) return std::nullopt;
  if (!reader.ReadVarintInt64(&total)) return std::nullopt;
  if (cells > reader.remaining()) return std::nullopt;
  return LoadCountMin(width, depth, seed_bits, conservative, total,
                      [&](int64_t* cell) {
                        return reader.ReadVarintInt64(cell);
                      });
}

}  // namespace

// ---------------------------------------------------------------------
// Public encoders (current version).
// ---------------------------------------------------------------------

std::string Serialize(const UnbiasedSpaceSaving& sketch) {
  return EncodeIntegerV2(SketchKind::kUnbiased, sketch);
}

std::string SerializeFrozen(const UnbiasedSpaceSaving& sketch) {
  // Entries() is count-descending but breaks count ties in slot order;
  // the image requires the canonical order (ties ascending item) so that
  // thaw -> Entries() round-trips to the exact image order.
  std::vector<SketchEntry> entries = sketch.Entries();
  std::sort(entries.begin(), entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.item < b.item);
            });
  std::vector<wire::FrozenEntry> frozen;
  frozen.reserve(entries.size());
  for (const SketchEntry& e : entries) frozen.push_back({e.item, e.count});
  std::string out;
  out.resize(wire::FrozenImageBytes(frozen.size()));
  const size_t written = wire::FreezeInto(
      frozen.data(), frozen.size(), sketch.capacity(), sketch.MinCount(),
      sketch.TotalCount(), &out[0], out.size());
  // Same loud-failure contract as the other encoders: a sketch within
  // the caps always freezes (FreezeInto only rejects malformed input).
  DSKETCH_CHECK(written == out.size());
  wire::RecordWireEncoded(wire::kKindFrozenUnbiased, wire::kVersionCurrent,
                          out.size());
  return out;
}

std::optional<UnbiasedSpaceSaving> ThawFrozen(std::string_view bytes,
                                              uint64_t seed) {
  std::optional<wire::FrozenView> view = wire::FrozenView::Vet(bytes);
  if (!view.has_value()) return std::nullopt;
  // Deep content validation — the O(n) work Vet deliberately skips:
  // counts positive in canonical order (count descending, ties ascending
  // item), header metadata consistent with the entries. Duplicate labels
  // and total-count overflow are rejected by LoadIntegerEntries below.
  const size_t n = static_cast<size_t>(view->entry_count());
  std::vector<SketchEntry> entries;
  entries.reserve(n);
  int64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const wire::FrozenEntry e = view->entry(i);
    if (e.count <= 0) return std::nullopt;
    if (i > 0 && !(entries[i - 1].count > e.count ||
                   (entries[i - 1].count == e.count &&
                    entries[i - 1].item < e.item))) {
      return std::nullopt;
    }
    if (e.count > INT64_MAX - sum) return std::nullopt;
    sum += e.count;
    entries.push_back({e.item, e.count});
  }
  // min_count/total_count are served straight off the image by the
  // zero-decode path, so a valid image must agree with what the thawed
  // sketch would report — otherwise frozen and thawed answers diverge.
  if (view->total_count() != sum) return std::nullopt;
  const int64_t expected_min =
      (n == view->capacity() && n > 0) ? entries.back().count : 0;
  if (view->min_count() != expected_min) return std::nullopt;
  // The hash index must agree with the entry section: zero-decode point
  // lookups are served through it, so a lying index would make a replica
  // answer differently from the thawed sketch while still "validating".
  for (const SketchEntry& e : entries) {
    if (view->EstimateCount(e.item) != e.count) return std::nullopt;
  }
  wire::RecordWireDecoded(wire::kKindFrozenUnbiased, wire::kVersionCurrent,
                          bytes.size());
  return LoadIntegerEntries<UnbiasedSpaceSaving>(view->capacity(),
                                                 std::move(entries), seed);
}

std::string Serialize(const DeterministicSpaceSaving& sketch) {
  return EncodeIntegerV2(SketchKind::kDeterministic, sketch);
}

std::string Serialize(const WeightedSpaceSaving& sketch) {
  auto entries = sketch.Entries();
  return EncodeBlob(SketchKind::kWeighted, wire::kVersionCurrent,
                    4 + entries.size() * 13, [&](VarintWriter& writer) {
                      PutHeaderV2(writer, SketchKind::kWeighted,
                                  sketch.capacity(), entries.size());
                      for (const WeightedEntry& e : entries) {
                        writer.PutVarint(e.item);
                        writer.PutDouble(e.weight);
                      }
                    });
}

std::string Serialize(const MultiMetricSpaceSaving& sketch) {
  CheckMultiMetricEncodable(sketch);
  const auto& bins = sketch.bins();
  const size_t per_bin = 5 + 8 * (1 + sketch.num_metrics());
  return EncodeBlob(
      SketchKind::kMultiMetric, wire::kVersionCurrent,
      8 + bins.size() * per_bin, [&](VarintWriter& writer) {
        PutHeaderV2(writer, SketchKind::kMultiMetric, sketch.capacity(),
                    bins.size());
        writer.PutVarint(static_cast<uint64_t>(sketch.num_metrics()));
        for (const MultiMetricEntry& b : bins) {
          // Fail loudly on non-finite state (HT scaling can overflow
          // finite inputs to inf) rather than emit bytes the
          // deserializer rejects.
          DSKETCH_CHECK(std::isfinite(b.primary));
          for (double v : b.metrics) DSKETCH_CHECK(std::isfinite(v));
          writer.PutVarint(b.item);
          writer.PutDouble(b.primary);
          for (double v : b.metrics) writer.PutDouble(v);
        }
      });
}

std::string Serialize(const MisraGries& sketch) {
  auto entries = sketch.Entries();  // descending estimate order
  return EncodeBlob(SketchKind::kMisraGries, wire::kVersionCurrent,
                    24 + entries.size() * 12, [&](VarintWriter& writer) {
                      PutHeaderV2(writer, SketchKind::kMisraGries,
                                  sketch.capacity(), entries.size());
                      writer.PutVarint(
                          static_cast<uint64_t>(sketch.decrements()));
                      writer.PutVarint(
                          static_cast<uint64_t>(sketch.TotalCount()));
                      CountDeltaWriter counts(writer);
                      for (const SketchEntry& e : entries) {
                        writer.PutVarint(e.item);
                        counts.Put(e.count);
                      }
                    });
}

std::string Serialize(const CountMin& sketch) {
  const std::vector<int64_t>& table = sketch.table();
  CheckEncodable(SketchKind::kCountMin, table.size(), table.size());
  return EncodeBlob(SketchKind::kCountMin, wire::kVersionCurrent,
                    24 + table.size() * 3, [&](VarintWriter& writer) {
                      writer.PutVarint(static_cast<uint64_t>(sketch.width()));
                      writer.PutVarint(static_cast<uint64_t>(sketch.depth()));
                      writer.PutValue(sketch.seed());
                      writer.PutByte(sketch.conservative() ? 1 : 0);
                      writer.PutVarint(
                          static_cast<uint64_t>(sketch.TotalCount()));
                      for (int64_t cell : table) {
                        writer.PutVarint(static_cast<uint64_t>(cell));
                      }
                    });
}

// ---------------------------------------------------------------------
// Legacy version-1 encoders.
// ---------------------------------------------------------------------

std::string SerializeV1(const UnbiasedSpaceSaving& sketch) {
  return EncodeIntegerV1(SketchKind::kUnbiased, sketch);
}

std::string SerializeV1(const DeterministicSpaceSaving& sketch) {
  return EncodeIntegerV1(SketchKind::kDeterministic, sketch);
}

std::string SerializeV1(const WeightedSpaceSaving& sketch) {
  auto entries = sketch.Entries();
  return EncodeBlob(SketchKind::kWeighted, wire::kVersionLegacy,
                    12 + entries.size() * 16, [&](VarintWriter& writer) {
                      PutHeaderV1(writer, SketchKind::kWeighted,
                                  sketch.capacity(),
                                  static_cast<uint32_t>(entries.size()));
                      for (const WeightedEntry& e : entries) {
                        writer.PutValue(e.item);
                        writer.PutValue(e.weight);
                      }
                    });
}

std::string SerializeV1(const MultiMetricSpaceSaving& sketch) {
  CheckMultiMetricEncodable(sketch);
  const auto& bins = sketch.bins();
  const size_t per_bin = 16 + 8 * sketch.num_metrics();
  return EncodeBlob(
      SketchKind::kMultiMetric, wire::kVersionLegacy,
      16 + bins.size() * per_bin, [&](VarintWriter& writer) {
        PutHeaderV1(writer, SketchKind::kMultiMetric, sketch.capacity(),
                    static_cast<uint32_t>(bins.size()));
        writer.PutValue(static_cast<uint32_t>(sketch.num_metrics()));
        for (const MultiMetricEntry& b : bins) {
          DSKETCH_CHECK(std::isfinite(b.primary));
          for (double v : b.metrics) DSKETCH_CHECK(std::isfinite(v));
          writer.PutValue(b.item);
          writer.PutValue(b.primary);
          for (double v : b.metrics) writer.PutValue(v);
        }
      });
}

std::string SerializeV1(const MisraGries& sketch) {
  auto entries = sketch.Entries();
  return EncodeBlob(SketchKind::kMisraGries, wire::kVersionLegacy,
                    28 + entries.size() * 16, [&](VarintWriter& writer) {
                      PutHeaderV1(writer, SketchKind::kMisraGries,
                                  sketch.capacity(),
                                  static_cast<uint32_t>(entries.size()));
                      writer.PutValue(sketch.decrements());
                      writer.PutValue(sketch.TotalCount());
                      for (const SketchEntry& e : entries) {
                        writer.PutValue(e.item);
                        writer.PutValue(e.count);
                      }
                    });
}

std::string SerializeV1(const CountMin& sketch) {
  const std::vector<int64_t>& table = sketch.table();
  return EncodeBlob(SketchKind::kCountMin, wire::kVersionLegacy,
                    45 + table.size() * 8, [&](VarintWriter& writer) {
                      PutHeaderV1(writer, SketchKind::kCountMin, table.size(),
                                  static_cast<uint32_t>(table.size()));
                      writer.PutValue(static_cast<uint64_t>(sketch.width()));
                      writer.PutValue(static_cast<uint64_t>(sketch.depth()));
                      writer.PutValue(sketch.seed());
                      writer.PutByte(sketch.conservative() ? 1 : 0);
                      writer.PutValue(sketch.TotalCount());
                      for (int64_t cell : table) writer.PutValue(cell);
                    });
}

// ---------------------------------------------------------------------
// Public decoders (version-negotiating).
// ---------------------------------------------------------------------

std::optional<UnbiasedSpaceSaving> DeserializeUnbiased(std::string_view bytes,
                                                       uint64_t seed) {
  // A frozen image is the same logical sketch under a different kind
  // byte; accepting it here means every unbiased restore path (snapshot
  // RESTORE, CombineSerialized, PlainSketchSource) takes frozen inputs.
  {
    VarintReader reader(bytes);
    std::optional<wire::Envelope> env = wire::ReadEnvelope(reader);
    if (env.has_value() && env->kind == wire::kKindFrozenUnbiased) {
      return ThawFrozen(bytes, seed);
    }
  }
  return DecodeInteger<UnbiasedSpaceSaving>(SketchKind::kUnbiased, bytes,
                                            seed);
}

std::optional<DeterministicSpaceSaving> DeserializeDeterministic(
    std::string_view bytes, uint64_t seed) {
  return DecodeInteger<DeterministicSpaceSaving>(SketchKind::kDeterministic,
                                                 bytes, seed);
}

std::optional<WeightedSpaceSaving> DeserializeWeighted(std::string_view bytes,
                                                       uint64_t seed) {
  return DecodeBlob<WeightedSpaceSaving>(
      bytes, SketchKind::kWeighted,
      [&](VarintReader& r) { return DecodeWeightedV1(r, seed); },
      [&](VarintReader& r) { return DecodeWeightedV2(r, seed); });
}

std::optional<MultiMetricSpaceSaving> DeserializeMultiMetric(
    std::string_view bytes, uint64_t seed) {
  return DecodeBlob<MultiMetricSpaceSaving>(
      bytes, SketchKind::kMultiMetric,
      [&](VarintReader& r) { return DecodeMultiMetricV1(r, seed); },
      [&](VarintReader& r) { return DecodeMultiMetricV2(r, seed); });
}

std::optional<MisraGries> DeserializeMisraGries(std::string_view bytes) {
  return DecodeBlob<MisraGries>(
      bytes, SketchKind::kMisraGries,
      [&](VarintReader& r) { return DecodeMisraGriesV1(r); },
      [&](VarintReader& r) { return DecodeMisraGriesV2(r); });
}

std::optional<CountMin> DeserializeCountMin(std::string_view bytes) {
  return DecodeBlob<CountMin>(
      bytes, SketchKind::kCountMin,
      [&](VarintReader& r) { return DecodeCountMinV1(r); },
      [&](VarintReader& r) { return DecodeCountMinV2(r); });
}

}  // namespace dsketch
