#include "core/serialization.h"

#include <cmath>
#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace dsketch {
namespace {

constexpr uint32_t kMagic = 0x44534B31;  // "DSK1"
constexpr uint8_t kVersion = 1;

// The public caps (serialization.h), enforced symmetrically on the
// serialize and deserialize paths (part of the v1 format contract):
// a sketch that can be serialized can always be restored, and a hostile
// 20-byte header cannot force a huge allocation before the payload is
// validated. Space-saving sketches are small by design (thousands of
// bins; at 2^22 the worst-case restore footprint — slot array plus
// FlatMap index tables — stays in the low hundreds of MB). CountMin
// tables are flat i64 cells with no index, so they get a larger cap
// (2^25 cells = 256 MiB).
constexpr uint64_t kMaxCapacity = kMaxSerializableCapacity;
constexpr uint64_t kMaxCountMinCells = kMaxSerializableCountMinCells;

enum class SketchKind : uint8_t {
  kUnbiased = 1,
  kDeterministic = 2,
  kWeighted = 3,
  kMultiMetric = 4,
  kMisraGries = 5,
  kCountMin = 6,
};

uint64_t MaxCapacityFor(SketchKind kind) {
  return kind == SketchKind::kCountMin ? kMaxCountMinCells : kMaxCapacity;
}

void AppendRaw(std::string& out, const void* data, size_t n) {
  out.append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendValue(std::string& out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// `payload_bytes` is everything the caller appends after the 20-byte
// header (sub-header plus entries), reserved up front so appends never
// reallocate.
std::string SerializeHeader(SketchKind kind, uint64_t capacity,
                            uint32_t entries, size_t payload_bytes) {
  // Fail loudly at write time rather than returning bytes that every
  // deserializer would reject: a sketch that can be serialized can
  // always be restored.
  DSKETCH_CHECK(capacity > 0 && capacity <= MaxCapacityFor(kind));
  DSKETCH_CHECK(entries <= capacity);
  std::string out;
  out.reserve(20 + payload_bytes);
  AppendValue(out, kMagic);
  AppendValue(out, static_cast<uint8_t>(kind));
  AppendValue(out, kVersion);
  AppendValue(out, static_cast<uint16_t>(0));
  AppendValue(out, capacity);
  AppendValue(out, entries);
  return out;
}

// Parses and validates the header; returns false on any mismatch.
bool ReadHeader(Reader& reader, SketchKind expected_kind, uint64_t* capacity,
                uint32_t* entries) {
  uint32_t magic;
  uint8_t kind, version;
  uint16_t reserved;
  if (!reader.Read(&magic) || magic != kMagic) return false;
  if (!reader.Read(&kind) || kind != static_cast<uint8_t>(expected_kind)) {
    return false;
  }
  if (!reader.Read(&version) || version != kVersion) return false;
  if (!reader.Read(&reserved)) return false;
  if (!reader.Read(capacity) || *capacity == 0 ||
      *capacity > MaxCapacityFor(expected_kind)) {
    return false;
  }
  if (!reader.Read(entries) || *entries > *capacity) return false;
  return true;
}

template <typename Sketch>
std::string SerializeInteger(SketchKind kind, const Sketch& sketch) {
  auto entries = sketch.Entries();
  std::string out = SerializeHeader(kind, sketch.capacity(),
                                    static_cast<uint32_t>(entries.size()),
                                    entries.size() * 16);
  for (const SketchEntry& e : entries) {
    AppendValue(out, e.item);
    AppendValue(out, e.count);
  }
  return out;
}

template <typename Sketch>
std::optional<Sketch> DeserializeInteger(SketchKind kind,
                                         std::string_view bytes,
                                         uint64_t seed) {
  Reader reader(bytes);
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeader(reader, kind, &capacity, &count)) return std::nullopt;
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  std::unordered_set<uint64_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.Read(&e.item) || !reader.Read(&e.count)) return std::nullopt;
    if (e.count < 0) return std::nullopt;
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    entries.push_back(e);
  }
  if (!reader.AtEnd()) return std::nullopt;
  Sketch sketch(static_cast<size_t>(capacity), seed);
  sketch.core().LoadEntries(entries);
  return sketch;
}

}  // namespace

std::string Serialize(const UnbiasedSpaceSaving& sketch) {
  return SerializeInteger(SketchKind::kUnbiased, sketch);
}

std::string Serialize(const DeterministicSpaceSaving& sketch) {
  return SerializeInteger(SketchKind::kDeterministic, sketch);
}

std::string Serialize(const WeightedSpaceSaving& sketch) {
  auto entries = sketch.Entries();
  std::string out = SerializeHeader(SketchKind::kWeighted, sketch.capacity(),
                                    static_cast<uint32_t>(entries.size()),
                                    entries.size() * 16);
  for (const WeightedEntry& e : entries) {
    AppendValue(out, e.item);
    AppendValue(out, e.weight);
  }
  return out;
}

std::optional<UnbiasedSpaceSaving> DeserializeUnbiased(std::string_view bytes,
                                                       uint64_t seed) {
  return DeserializeInteger<UnbiasedSpaceSaving>(SketchKind::kUnbiased,
                                                 bytes, seed);
}

std::optional<DeterministicSpaceSaving> DeserializeDeterministic(
    std::string_view bytes, uint64_t seed) {
  return DeserializeInteger<DeterministicSpaceSaving>(
      SketchKind::kDeterministic, bytes, seed);
}

std::string Serialize(const MultiMetricSpaceSaving& sketch) {
  const auto& bins = sketch.bins();
  // Mirror of the deserializer's footprint bound so the bytes are always
  // restorable (see DeserializeMultiMetric).
  DSKETCH_CHECK(sketch.capacity() *
                    (2 + static_cast<uint64_t>(sketch.num_metrics())) <=
                kMaxCapacity);
  std::string out = SerializeHeader(
      SketchKind::kMultiMetric, sketch.capacity(),
      static_cast<uint32_t>(bins.size()),
      4 + bins.size() * (16 + 8 * sketch.num_metrics()));
  AppendValue(out, static_cast<uint32_t>(sketch.num_metrics()));
  for (const MultiMetricEntry& b : bins) {
    // Fail loudly on non-finite state (HT scaling can overflow finite
    // inputs to inf) rather than emit bytes the deserializer rejects.
    DSKETCH_CHECK(std::isfinite(b.primary));
    for (double v : b.metrics) DSKETCH_CHECK(std::isfinite(v));
    AppendValue(out, b.item);
    AppendValue(out, b.primary);
    for (double v : b.metrics) AppendValue(out, v);
  }
  return out;
}

std::string Serialize(const MisraGries& sketch) {
  auto entries = sketch.Entries();
  std::string out = SerializeHeader(SketchKind::kMisraGries,
                                    sketch.capacity(),
                                    static_cast<uint32_t>(entries.size()),
                                    16 + entries.size() * 16);
  AppendValue(out, sketch.decrements());
  AppendValue(out, sketch.TotalCount());
  for (const SketchEntry& e : entries) {
    AppendValue(out, e.item);
    AppendValue(out, e.count);
  }
  return out;
}

std::string Serialize(const CountMin& sketch) {
  // The header's capacity/entry_count describe the counter table (the
  // sketch has no entry list); geometry and hashing live in the
  // sub-header.
  const std::vector<int64_t>& table = sketch.table();
  std::string out = SerializeHeader(SketchKind::kCountMin, table.size(),
                                    static_cast<uint32_t>(table.size()),
                                    33 + table.size() * 8);
  AppendValue(out, static_cast<uint64_t>(sketch.width()));
  AppendValue(out, static_cast<uint64_t>(sketch.depth()));
  AppendValue(out, sketch.seed());
  AppendValue(out, static_cast<uint8_t>(sketch.conservative() ? 1 : 0));
  AppendValue(out, sketch.TotalCount());
  for (int64_t cell : table) AppendValue(out, cell);
  return out;
}

std::optional<WeightedSpaceSaving> DeserializeWeighted(std::string_view bytes,
                                                       uint64_t seed) {
  Reader reader(bytes);
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeader(reader, SketchKind::kWeighted, &capacity, &count)) {
    return std::nullopt;
  }
  std::vector<WeightedEntry> entries;
  entries.reserve(count);
  std::unordered_set<uint64_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    WeightedEntry e;
    if (!reader.Read(&e.item) || !reader.Read(&e.weight)) return std::nullopt;
    if (!(e.weight >= 0.0)) return std::nullopt;  // rejects NaN too
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    entries.push_back(e);
  }
  if (!reader.AtEnd()) return std::nullopt;
  WeightedSpaceSaving sketch(static_cast<size_t>(capacity), seed);
  sketch.LoadEntries(entries);
  return sketch;
}

std::optional<MultiMetricSpaceSaving> DeserializeMultiMetric(
    std::string_view bytes, uint64_t seed) {
  Reader reader(bytes);
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeader(reader, SketchKind::kMultiMetric, &capacity, &count)) {
    return std::nullopt;
  }
  uint32_t num_metrics;
  if (!reader.Read(&num_metrics) || num_metrics == 0) return std::nullopt;
  // Bound the restored footprint: ~(2 + K) doubles per bin plus per-bin
  // vector overhead, capped well below the header-level capacity limit
  // so a 24-byte hostile header cannot force a huge allocation. With
  // capacity >= 1 this also caps num_metrics, and it is the exact bound
  // Serialize CHECKs, so everything serializable restores.
  if (capacity * (2 + static_cast<uint64_t>(num_metrics)) > kMaxCapacity) {
    return std::nullopt;
  }
  std::vector<MultiMetricEntry> bins;
  bins.reserve(count);
  std::unordered_set<uint64_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    MultiMetricEntry b;
    if (!reader.Read(&b.item) || !reader.Read(&b.primary)) {
      return std::nullopt;
    }
    // Rejects negatives, NaN, and inf (Serialize never emits them).
    if (!(b.primary >= 0.0) || !std::isfinite(b.primary)) return std::nullopt;
    b.metrics.resize(num_metrics);
    for (uint32_t k = 0; k < num_metrics; ++k) {
      if (!reader.Read(&b.metrics[k])) return std::nullopt;
      if (!std::isfinite(b.metrics[k])) return std::nullopt;
    }
    if (!seen.insert(b.item).second) return std::nullopt;  // duplicate label
    bins.push_back(std::move(b));
  }
  if (!reader.AtEnd()) return std::nullopt;
  MultiMetricSpaceSaving sketch(static_cast<size_t>(capacity), num_metrics,
                                seed);
  sketch.LoadBins(std::move(bins));
  return sketch;
}

std::optional<MisraGries> DeserializeMisraGries(std::string_view bytes) {
  Reader reader(bytes);
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeader(reader, SketchKind::kMisraGries, &capacity, &count)) {
    return std::nullopt;
  }
  int64_t decrements, total;
  if (!reader.Read(&decrements) || decrements < 0) return std::nullopt;
  if (!reader.Read(&total) || total < 0) return std::nullopt;
  // Each decrement-all consumed one row that no counter accounts for.
  if (decrements > total) return std::nullopt;
  const int64_t estimate_budget = total - decrements;
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  std::unordered_set<uint64_t> seen;
  int64_t estimate_sum = 0;
  for (uint32_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.Read(&e.item) || !reader.Read(&e.count)) return std::nullopt;
    if (e.count <= 0) return std::nullopt;  // live counters only
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    // Estimates never overcount: their sum is bounded by the rows not
    // consumed by decrement-alls (an invariant both streaming updates
    // and MergeFrom preserve). Checked incrementally so the accumulator
    // cannot overflow, and it also rules out int64 overflow of the
    // stored counter inside LoadState: count + decrements <= total.
    if (e.count > estimate_budget - estimate_sum) return std::nullopt;
    estimate_sum += e.count;
    entries.push_back(e);
  }
  if (!reader.AtEnd()) return std::nullopt;
  MisraGries sketch(static_cast<size_t>(capacity));
  sketch.LoadState(entries, decrements, total);
  return sketch;
}

std::optional<CountMin> DeserializeCountMin(std::string_view bytes) {
  Reader reader(bytes);
  uint64_t cells;
  uint32_t count;
  if (!ReadHeader(reader, SketchKind::kCountMin, &cells, &count)) {
    return std::nullopt;
  }
  uint64_t width, depth, seed;
  uint8_t conservative;
  int64_t total;
  if (!reader.Read(&width) || width == 0 || width > cells) {
    return std::nullopt;
  }
  if (!reader.Read(&depth) || depth == 0 || depth > cells) {
    return std::nullopt;
  }
  // width and depth are each <= cells <= kMaxCountMinCells (2^25), so
  // the product below cannot wrap uint64.
  if (width * depth != cells || cells != count) return std::nullopt;
  if (!reader.Read(&seed)) return std::nullopt;
  if (!reader.Read(&conservative) || conservative > 1) return std::nullopt;
  if (!reader.Read(&total) || total < 0) return std::nullopt;
  std::vector<int64_t> table(cells);
  // Every table CountMin can produce sums each row to exactly `total`
  // (a plain update adds its count to one cell per row) or to at most
  // `total` (conservative update raises each row by at most the count).
  // Enforcing that keeps EstimateCount <= TotalCount on restored
  // sketches, and the incremental bound keeps the row accumulator from
  // overflowing int64.
  int64_t row_sum = 0;
  for (uint64_t i = 0; i < cells; ++i) {
    if (!reader.Read(&table[i]) || table[i] < 0) return std::nullopt;
    if (table[i] > total - row_sum) return std::nullopt;
    row_sum += table[i];
    if ((i + 1) % width == 0) {
      if (conservative == 0 && row_sum != total) return std::nullopt;
      row_sum = 0;
    }
  }
  if (!reader.AtEnd()) return std::nullopt;
  CountMin sketch(static_cast<size_t>(width), static_cast<size_t>(depth),
                  seed, conservative != 0);
  sketch.LoadState(std::move(table), total);
  return sketch;
}

}  // namespace dsketch
