#include "core/serialization.h"

#include <cstring>
#include <unordered_set>
#include <vector>

namespace dsketch {
namespace {

constexpr uint32_t kMagic = 0x44534B31;  // "DSK1"
constexpr uint8_t kVersion = 1;

enum class SketchKind : uint8_t {
  kUnbiased = 1,
  kDeterministic = 2,
  kWeighted = 3,
};

void AppendRaw(std::string& out, const void* data, size_t n) {
  out.append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendValue(std::string& out, T value) {
  AppendRaw(out, &value, sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* out) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string SerializeHeader(SketchKind kind, uint64_t capacity,
                            uint32_t entries) {
  std::string out;
  out.reserve(20 + entries * 16);
  AppendValue(out, kMagic);
  AppendValue(out, static_cast<uint8_t>(kind));
  AppendValue(out, kVersion);
  AppendValue(out, static_cast<uint16_t>(0));
  AppendValue(out, capacity);
  AppendValue(out, entries);
  return out;
}

// Parses and validates the header; returns false on any mismatch.
bool ReadHeader(Reader& reader, SketchKind expected_kind, uint64_t* capacity,
                uint32_t* entries) {
  uint32_t magic;
  uint8_t kind, version;
  uint16_t reserved;
  if (!reader.Read(&magic) || magic != kMagic) return false;
  if (!reader.Read(&kind) || kind != static_cast<uint8_t>(expected_kind)) {
    return false;
  }
  if (!reader.Read(&version) || version != kVersion) return false;
  if (!reader.Read(&reserved)) return false;
  if (!reader.Read(capacity) || *capacity == 0 ||
      *capacity >= (1ULL << 32)) {
    return false;
  }
  if (!reader.Read(entries) || *entries > *capacity) return false;
  return true;
}

template <typename Sketch>
std::string SerializeInteger(SketchKind kind, const Sketch& sketch) {
  auto entries = sketch.Entries();
  std::string out = SerializeHeader(kind, sketch.capacity(),
                                    static_cast<uint32_t>(entries.size()));
  for (const SketchEntry& e : entries) {
    AppendValue(out, e.item);
    AppendValue(out, e.count);
  }
  return out;
}

template <typename Sketch>
std::optional<Sketch> DeserializeInteger(SketchKind kind,
                                         std::string_view bytes,
                                         uint64_t seed) {
  Reader reader(bytes);
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeader(reader, kind, &capacity, &count)) return std::nullopt;
  std::vector<SketchEntry> entries;
  entries.reserve(count);
  std::unordered_set<uint64_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    SketchEntry e;
    if (!reader.Read(&e.item) || !reader.Read(&e.count)) return std::nullopt;
    if (e.count < 0) return std::nullopt;
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    entries.push_back(e);
  }
  if (!reader.AtEnd()) return std::nullopt;
  Sketch sketch(static_cast<size_t>(capacity), seed);
  sketch.core().LoadEntries(entries);
  return sketch;
}

}  // namespace

std::string Serialize(const UnbiasedSpaceSaving& sketch) {
  return SerializeInteger(SketchKind::kUnbiased, sketch);
}

std::string Serialize(const DeterministicSpaceSaving& sketch) {
  return SerializeInteger(SketchKind::kDeterministic, sketch);
}

std::string Serialize(const WeightedSpaceSaving& sketch) {
  auto entries = sketch.Entries();
  std::string out = SerializeHeader(SketchKind::kWeighted, sketch.capacity(),
                                    static_cast<uint32_t>(entries.size()));
  for (const WeightedEntry& e : entries) {
    AppendValue(out, e.item);
    AppendValue(out, e.weight);
  }
  return out;
}

std::optional<UnbiasedSpaceSaving> DeserializeUnbiased(std::string_view bytes,
                                                       uint64_t seed) {
  return DeserializeInteger<UnbiasedSpaceSaving>(SketchKind::kUnbiased,
                                                 bytes, seed);
}

std::optional<DeterministicSpaceSaving> DeserializeDeterministic(
    std::string_view bytes, uint64_t seed) {
  return DeserializeInteger<DeterministicSpaceSaving>(
      SketchKind::kDeterministic, bytes, seed);
}

std::optional<WeightedSpaceSaving> DeserializeWeighted(std::string_view bytes,
                                                       uint64_t seed) {
  Reader reader(bytes);
  uint64_t capacity;
  uint32_t count;
  if (!ReadHeader(reader, SketchKind::kWeighted, &capacity, &count)) {
    return std::nullopt;
  }
  std::vector<WeightedEntry> entries;
  entries.reserve(count);
  std::unordered_set<uint64_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    WeightedEntry e;
    if (!reader.Read(&e.item) || !reader.Read(&e.weight)) return std::nullopt;
    if (!(e.weight >= 0.0)) return std::nullopt;  // rejects NaN too
    if (!seen.insert(e.item).second) return std::nullopt;  // duplicate label
    entries.push_back(e);
  }
  if (!reader.AtEnd()) return std::nullopt;
  WeightedSpaceSaving sketch(static_cast<size_t>(capacity), seed);
  sketch.LoadEntries(entries);
  return sketch;
}

}  // namespace dsketch
