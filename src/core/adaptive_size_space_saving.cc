#include "core/adaptive_size_space_saving.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

AdaptiveSizeSpaceSaving::AdaptiveSizeSpaceSaving(size_t min_capacity,
                                                 size_t max_capacity,
                                                 double error_target,
                                                 uint64_t seed)
    : min_capacity_(min_capacity),
      max_capacity_(max_capacity),
      error_target_(error_target),
      index_(max_capacity),
      rng_(seed) {
  DSKETCH_CHECK(min_capacity > 0);
  DSKETCH_CHECK(max_capacity >= 2 * min_capacity);
  DSKETCH_CHECK(error_target > 0.0 && error_target < 1.0);
  heap_.reserve(max_capacity);
}

void AdaptiveSizeSpaceSaving::SetSlot(size_t i, SketchEntry e) {
  heap_[i] = e;
  index_.InsertOrAssign(e.item, static_cast<uint32_t>(i));
}

void AdaptiveSizeSpaceSaving::SiftUp(size_t i) {
  SketchEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (heap_[parent].count <= e.count) break;
    SetSlot(i, heap_[parent]);
    i = parent;
  }
  SetSlot(i, e);
}

void AdaptiveSizeSpaceSaving::SiftDown(size_t i) {
  SketchEntry e = heap_[i];
  const size_t n = heap_.size();
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_[child + 1].count < heap_[child].count) ++child;
    if (heap_[child].count >= e.count) break;
    SetSlot(i, heap_[child]);
    i = child;
  }
  SetSlot(i, e);
}

void AdaptiveSizeSpaceSaving::PopMinInto(SketchEntry* out) {
  *out = heap_[0];
  index_.Erase(out->item);
  SketchEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SetSlot(0, last);
    SiftDown(0);
  }
}

void AdaptiveSizeSpaceSaving::ReduceIfNeeded() {
  if (heap_.size() < max_capacity_) return;
  // Collapse smallest pairs while bins remain above the floor and the
  // smallest bin is below the error budget.
  const int64_t budget = static_cast<int64_t>(
      error_target_ * static_cast<double>(total_));
  auto collapse_smallest_pair = [this]() {
    SketchEntry a, b;
    PopMinInto(&a);  // smallest
    PopMinInto(&b);  // second smallest
    int64_t combined = a.count + b.count;
    bool keep_b = combined == 0 ||
                  rng_.NextDouble() * static_cast<double>(combined) <
                      static_cast<double>(b.count);
    SketchEntry winner{keep_b ? b.item : a.item, combined};
    heap_.push_back(winner);
    SetSlot(heap_.size() - 1, winner);
    SiftUp(heap_.size() - 1);
  };
  // Collapse only pairs where *both* bins are within the error budget, so
  // an above-budget ("heavy") label is never put at risk by the
  // budget-driven reduction. The second smallest is one of the root's
  // children.
  while (heap_.size() > min_capacity_ && heap_[0].count <= budget) {
    size_t second = 1;
    if (heap_.size() > 2 && heap_[2].count < heap_[1].count) second = 2;
    if (heap_[second].count > budget) break;  // lone light bin left
    collapse_smallest_pair();
  }
  // Hard bound: if everything above the floor clears the error budget
  // (e.g. an all-light prefix where budget is still ~0), fall back to the
  // plain pairwise reduction so memory never exceeds max_capacity.
  while (heap_.size() >= max_capacity_) collapse_smallest_pair();
}

void AdaptiveSizeSpaceSaving::Update(uint64_t item) {
  ++total_;
  if (uint32_t* pos = index_.Find(item)) {
    ++heap_[*pos].count;
    SiftDown(*pos);
    return;
  }
  SketchEntry e{item, 1};
  heap_.push_back(e);
  SetSlot(heap_.size() - 1, e);
  SiftUp(heap_.size() - 1);
  ReduceIfNeeded();
}

int64_t AdaptiveSizeSpaceSaving::EstimateCount(uint64_t item) const {
  const uint32_t* pos = index_.Find(item);
  return pos != nullptr ? heap_[*pos].count : 0;
}

int64_t AdaptiveSizeSpaceSaving::MinCount() const {
  return heap_.empty() ? 0 : heap_[0].count;
}

std::vector<SketchEntry> AdaptiveSizeSpaceSaving::Entries() const {
  std::vector<SketchEntry> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count > b.count;
            });
  return out;
}

}  // namespace dsketch
