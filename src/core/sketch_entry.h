// Common (item, count) entry types shared by the sketch family.

#ifndef DSKETCH_CORE_SKETCH_ENTRY_H_
#define DSKETCH_CORE_SKETCH_ENTRY_H_

#include <cstddef>
#include <cstdint>

namespace dsketch {

/// One bin of an integer-count sketch.
struct SketchEntry {
  uint64_t item = 0;  ///< item label (unit-of-analysis identifier)
  int64_t count = 0;  ///< estimated count for the label

  friend bool operator==(const SketchEntry&, const SketchEntry&) = default;
};

/// One bin of a real-valued (weighted) sketch.
struct WeightedEntry {
  uint64_t item = 0;   ///< item label
  double weight = 0.0; ///< estimated total weight for the label

  friend bool operator==(const WeightedEntry&, const WeightedEntry&) = default;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_SKETCH_ENTRY_H_
