// Common (item, count) entry types shared by the sketch family.

#ifndef DSKETCH_CORE_SKETCH_ENTRY_H_
#define DSKETCH_CORE_SKETCH_ENTRY_H_

#include <cstddef>
#include <cstdint>

namespace dsketch {

// The comparators are spelled out (not `= default`) so the headers stay
// C++17-compatible; defaulted equality is a C++20 feature.

/// One bin of an integer-count sketch.
struct SketchEntry {
  uint64_t item = 0;  ///< item label (unit-of-analysis identifier)
  int64_t count = 0;  ///< estimated count for the label

  friend bool operator==(const SketchEntry& a, const SketchEntry& b) {
    return a.item == b.item && a.count == b.count;
  }
  friend bool operator!=(const SketchEntry& a, const SketchEntry& b) {
    return !(a == b);
  }
};

/// One bin of a real-valued (weighted) sketch.
struct WeightedEntry {
  uint64_t item = 0;   ///< item label
  double weight = 0.0; ///< estimated total weight for the label

  friend bool operator==(const WeightedEntry& a, const WeightedEntry& b) {
    return a.item == b.item && a.weight == b.weight;
  }
  friend bool operator!=(const WeightedEntry& a, const WeightedEntry& b) {
    return !(a == b);
  }
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_SKETCH_ENTRY_H_
