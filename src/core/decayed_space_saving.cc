#include "core/decayed_space_saving.h"

#include <cmath>

#include "util/logging.h"

namespace dsketch {
namespace {

// Advance the landmark whenever forward weights exceed this, to keep
// exp(lambda * (t - L)) far from overflow.
constexpr double kRenormThreshold = 1e100;

}  // namespace

DecayedSpaceSaving::DecayedSpaceSaving(size_t capacity, double half_life,
                                       uint64_t seed)
    : inner_(capacity, seed), lambda_(std::log(2.0) / half_life) {
  DSKETCH_CHECK(half_life > 0.0);
}

double DecayedSpaceSaving::ForwardFactor(double timestamp, double weight) {
  DSKETCH_CHECK(weight > 0.0);
  if (!started_) {
    landmark_ = timestamp;
    last_time_ = timestamp;
    started_ = true;
  }
  DSKETCH_CHECK(timestamp >= last_time_);
  last_time_ = timestamp;

  double forward = std::exp(lambda_ * (timestamp - landmark_));
  if (forward * weight > kRenormThreshold) {
    // Memorylessness of exponential decay: rescaling all counters by
    // exp(-lambda (timestamp - L)) and moving the landmark to `timestamp`
    // leaves every decayed estimate unchanged.
    inner_.Scale(std::exp(-lambda_ * (timestamp - landmark_)));
    landmark_ = timestamp;
    forward = 1.0;
  }
  return forward;
}

void DecayedSpaceSaving::Update(uint64_t item, double timestamp,
                                double weight) {
  inner_.Update(item, ForwardFactor(timestamp, weight) * weight);
}

void DecayedSpaceSaving::UpdateBatch(Span<const uint64_t> items,
                                     double timestamp, double weight) {
  if (items.empty()) return;
  // All rows share the timestamp, so the forward factor (and any landmark
  // renormalization) is computed once; per-row Update would recompute the
  // same exp() and take the same renorm branch on the first row.
  const double w = ForwardFactor(timestamp, weight) * weight;
  inner_.UpdateBatch(items, w);
}

double DecayedSpaceSaving::DecayFactor(double query_time) const {
  DSKETCH_CHECK(query_time >= last_time_);
  return std::exp(-lambda_ * (query_time - landmark_));
}

double DecayedSpaceSaving::EstimateDecayedCount(uint64_t item,
                                                double query_time) const {
  return inner_.EstimateWeight(item) * DecayFactor(query_time);
}

std::vector<WeightedEntry> DecayedSpaceSaving::DecayedEntries(
    double query_time) const {
  double f = DecayFactor(query_time);
  std::vector<WeightedEntry> out = inner_.Entries();
  for (WeightedEntry& e : out) e.weight *= f;
  return out;
}

double DecayedSpaceSaving::TotalDecayedWeight(double query_time) const {
  return inner_.TotalWeight() * DecayFactor(query_time);
}

}  // namespace dsketch
