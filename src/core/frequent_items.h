// Frequent item (heavy hitter) queries over the Space Saving family
// (paper §3.2, §6.1).
//
// For the deterministic sketch, `guaranteed` reports items whose lower
// bound (estimate - Nmin) already clears the support threshold — the
// classic deterministic guarantee. For the unbiased sketch there is no
// deterministic bound, but Theorem 3 gives eventual inclusion of every
// item with frequency > 1/m on i.i.d. streams, and the estimate itself is
// unbiased; candidates are reported with their estimates.

#ifndef DSKETCH_CORE_FREQUENT_ITEMS_H_
#define DSKETCH_CORE_FREQUENT_ITEMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/deterministic_space_saving.h"
#include "core/unbiased_space_saving.h"

namespace dsketch {

/// One reported heavy hitter.
struct FrequentItem {
  uint64_t item = 0;        ///< item label
  int64_t estimate = 0;     ///< estimated count
  int64_t lower_bound = 0;  ///< estimate - Nmin (deterministic floor)
  bool guaranteed = false;  ///< lower_bound itself clears the threshold
};

/// Items with estimated count > `phi` * TotalCount(), descending by
/// estimate. 0 <= phi < 1.
std::vector<FrequentItem> FrequentItems(const DeterministicSpaceSaving& sketch,
                                        double phi);

/// Unbiased-sketch variant; `guaranteed` uses the same conservative
/// (estimate - Nmin) floor, which remains a valid lower bound only in
/// expectation — it is reported for symmetry but not as a hard guarantee.
std::vector<FrequentItem> FrequentItems(const UnbiasedSpaceSaving& sketch,
                                        double phi);

/// Top-k entries by estimated count (k > 0), descending.
std::vector<SketchEntry> TopK(const DeterministicSpaceSaving& sketch,
                              size_t k);

/// Top-k entries by estimated count (k > 0), descending.
std::vector<SketchEntry> TopK(const UnbiasedSpaceSaving& sketch, size_t k);

}  // namespace dsketch

#endif  // DSKETCH_CORE_FREQUENT_ITEMS_H_
