// Time-decayed Unbiased Space Saving via forward decay (paper §5.3;
// Cormode, Shkapenyuk, Srivastava & Xu 2009).
//
// Forward decay weights a row arriving at time t_i by g(t_i - L) for a
// fixed landmark L <= t_i; a query at time t reports counters divided by
// g(t - L), so each row contributes g(t_i - L)/g(t - L) — for exponential
// g this equals exp(-lambda (t - t_i)), the usual backward exponential
// decay. Because the weighting is computed *forward*, counters are
// append-only and the weighted Space Saving reduction applies unchanged;
// the sketch stays unbiased for decayed subset sums.
//
// Exponential g is memoryless, which lets the sketch periodically advance
// the landmark and rescale counters to avoid overflow.

#ifndef DSKETCH_CORE_DECAYED_SPACE_SAVING_H_
#define DSKETCH_CORE_DECAYED_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sketch_entry.h"
#include "core/weighted_space_saving.h"
#include "util/span.h"

namespace dsketch {

/// Exponentially time-decayed Unbiased Space Saving sketch.
class DecayedSpaceSaving {
 public:
  /// `half_life` is the time for a row's influence to halve (> 0).
  DecayedSpaceSaving(size_t capacity, double half_life, uint64_t seed = 1);

  /// Processes a row for `item` observed at `timestamp` (non-decreasing
  /// across calls) carrying `weight` (> 0, default 1).
  void Update(uint64_t item, double timestamp, double weight = 1.0);

  /// Processes `items` as rows sharing one `timestamp` (the common shape
  /// for epoch/batch ingest) each carrying `weight`. Bit-for-bit identical
  /// to per-row Update, and additionally amortizes the forward-decay
  /// exp() over the whole batch.
  void UpdateBatch(Span<const uint64_t> items, double timestamp,
                   double weight = 1.0);

  /// Unbiased estimate of the decayed count of `item` as of `query_time`
  /// (>= the last update timestamp): sum over the item's rows of
  /// weight * 2^{-(query_time - t_i)/half_life}.
  double EstimateDecayedCount(uint64_t item, double query_time) const;

  /// All labeled bins with decayed weights as of `query_time`, descending.
  std::vector<WeightedEntry> DecayedEntries(double query_time) const;

  /// Total decayed mass as of `query_time` (preserved exactly).
  double TotalDecayedWeight(double query_time) const;

  /// True if `item` currently labels a bin.
  bool Contains(uint64_t item) const { return inner_.Contains(item); }

  /// Number of bins.
  size_t capacity() const { return inner_.capacity(); }

  /// Number of labeled bins.
  size_t size() const { return inner_.size(); }

  /// Decay rate lambda = ln 2 / half_life.
  double lambda() const { return lambda_; }

 private:
  // Registers `timestamp`, renormalizing the landmark if needed, and
  // returns the forward factor g(timestamp - L) a row's weight carries.
  double ForwardFactor(double timestamp, double weight);

  double DecayFactor(double query_time) const;

  WeightedSpaceSaving inner_;
  double lambda_;
  double landmark_ = 0.0;
  double last_time_ = 0.0;
  bool started_ = false;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_DECAYED_SPACE_SAVING_H_
