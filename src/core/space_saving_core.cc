#include "core/space_saving_core.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

SpaceSavingCore::SpaceSavingCore(size_t capacity, LabelPolicy policy,
                                 uint64_t seed, TieBreak tie_break)
    : policy_(policy),
      tie_break_(tie_break),
      index_(capacity),
      ranges_(capacity),
      rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  DSKETCH_CHECK(capacity < (1ULL << 32));
  slots_.resize(capacity);
  for (auto& s : slots_) {
    s.item = kNoLabel;
    s.count = 0;
  }
  ranges_.InsertOrAssign(0, Range{0, static_cast<uint32_t>(capacity)});
}

void SpaceSavingCore::SwapSlots(uint32_t a, uint32_t b) {
  if (a == b) return;
  std::swap(slots_[a], slots_[b]);
  if (slots_[a].item != kNoLabel) index_.InsertOrAssign(slots_[a].item, a);
  if (slots_[b].item != kNoLabel) index_.InsertOrAssign(slots_[b].item, b);
}

uint32_t SpaceSavingCore::IncrementSlot(uint32_t i) {
  const int64_t c = slots_[i].count;
  Range* r = ranges_.Find(static_cast<uint64_t>(c));
  DSKETCH_DCHECK(r != nullptr && r->begin <= i && i < r->end);
  const uint32_t last = r->end - 1;
  SwapSlots(i, last);
  slots_[last].count = c + 1;

  if (r->begin == last) {
    ranges_.Erase(static_cast<uint64_t>(c));
  } else {
    r->end = last;
  }
  Range* up = ranges_.Find(static_cast<uint64_t>(c + 1));
  if (up != nullptr) {
    DSKETCH_DCHECK(up->begin == last + 1);
    up->begin = last;
  } else {
    ranges_.InsertOrAssign(static_cast<uint64_t>(c + 1),
                           Range{last, last + 1});
  }
  ++total_;
  return last;
}

void SpaceSavingCore::Update(uint64_t item) {
  DSKETCH_DCHECK(item != kNoLabel && item != FlatMap<uint32_t>::kEmpty);
  if (uint32_t* pos = index_.Find(item)) {
    IncrementSlot(*pos);
    return;
  }

  // Untracked item: pick a minimum-count bin.
  const int64_t min_count = slots_.front().count;
  const Range* min_range = ranges_.Find(static_cast<uint64_t>(min_count));
  DSKETCH_DCHECK(min_range != nullptr && min_range->begin == 0);
  uint32_t k;
  if (tie_break_ == TieBreak::kRandom && min_range->end > 1) {
    k = static_cast<uint32_t>(rng_.NextBounded(min_range->end));
  } else {
    k = 0;
  }

  // Replace the label with probability p. An unlabeled (never used) bin
  // has count 0, so p = 1 under both policies and the item is adopted.
  bool replace = true;
  if (policy_ == LabelPolicy::kUnbiased && min_count > 0) {
    replace = rng_.NextBernoulli(1.0 / (static_cast<double>(min_count) + 1.0));
  }
  if (replace) {
    if (slots_[k].item != kNoLabel) index_.Erase(slots_[k].item);
    slots_[k].item = item;
    index_.InsertOrAssign(item, k);
  }
  IncrementSlot(k);
}

int64_t SpaceSavingCore::EstimateCount(uint64_t item) const {
  const uint32_t* pos = index_.Find(item);
  return pos != nullptr ? slots_[*pos].count : 0;
}

std::vector<SketchEntry> SpaceSavingCore::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(index_.size());
  // Slots are ascending by count; emit in reverse for descending order.
  for (size_t i = slots_.size(); i > 0; --i) {
    const Slot& s = slots_[i - 1];
    if (s.item != kNoLabel) out.push_back({s.item, s.count});
  }
  return out;
}

void SpaceSavingCore::LoadEntries(const std::vector<SketchEntry>& entries) {
  DSKETCH_CHECK(entries.size() <= slots_.size());
  index_.Clear();
  ranges_.Clear();
  total_ = 0;

  std::vector<SketchEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count < b.count;
            });

  const size_t pad = slots_.size() - sorted.size();
  for (size_t i = 0; i < pad; ++i) {
    slots_[i].item = kNoLabel;
    slots_[i].count = 0;
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    DSKETCH_CHECK(sorted[i].count >= 0);
    slots_[pad + i].item = sorted[i].item;
    slots_[pad + i].count = sorted[i].count;
    total_ += sorted[i].count;
    index_.InsertOrAssign(sorted[i].item, static_cast<uint32_t>(pad + i));
  }

  // Rebuild the count -> range map over the now-sorted slot array.
  size_t begin = 0;
  for (size_t i = 1; i <= slots_.size(); ++i) {
    if (i == slots_.size() || slots_[i].count != slots_[begin].count) {
      ranges_.InsertOrAssign(static_cast<uint64_t>(slots_[begin].count),
                             Range{static_cast<uint32_t>(begin),
                                   static_cast<uint32_t>(i)});
      begin = i;
    }
  }
}

}  // namespace dsketch
