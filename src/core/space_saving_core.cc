#include "core/space_saving_core.h"

#include <algorithm>

#include "util/logging.h"

namespace dsketch {

SpaceSavingCore::SpaceSavingCore(size_t capacity, LabelPolicy policy,
                                 uint64_t seed, TieBreak tie_break)
    : policy_(policy),
      tie_break_(tie_break),
      index_(capacity),
      // Sized for the number of *distinct count values*, which stays far
      // below capacity for realistic (skewed) streams; the map grows on
      // demand. Pre-sizing to `capacity` would spread a handful of hot
      // entries over megabytes and turn every range lookup into a cache
      // miss at production sketch sizes.
      ranges_(64),
      rng_(seed) {
  DSKETCH_CHECK(capacity > 0);
  // Slot positions are uint32; index table positions (2x the bin count,
  // rounded up to a power of two) must fit uint32 as well for the
  // slot -> index backpointers. 2^30 bins is already a ~48 GiB sketch.
  DSKETCH_CHECK(capacity <= (1ULL << 30));
  slots_.assign(capacity, Slot{kNoLabel, 0});
  index_pos_.assign(capacity, kNoIndex);
  ranges_.InsertOrAssign(0, Range{0, static_cast<uint32_t>(capacity)});
  min_range_end_ = static_cast<uint32_t>(capacity);
}

void SpaceSavingCore::SwapSlots(uint32_t a, uint32_t b) {
  if (a == b) return;
  std::swap(slots_[a], slots_[b]);
  std::swap(index_pos_[a], index_pos_[b]);
  // The backpointers name each label's index table slot, so the two
  // item -> position mappings are fixed with one direct store apiece —
  // no Mix, no probe walk (the old InsertOrAssign pair re-probed both
  // labels' chains on every bin swap, i.e. twice per stream row).
  if (slots_[a].item != kNoLabel) {
    DSKETCH_DCHECK(index_.KeyAtPos(index_pos_[a]) == slots_[a].item);
    index_.AssignAtPos(index_pos_[a], a);
  }
  if (slots_[b].item != kNoLabel) {
    DSKETCH_DCHECK(index_.KeyAtPos(index_pos_[b]) == slots_[b].item);
    index_.AssignAtPos(index_pos_[b], b);
  }
}

uint32_t SpaceSavingCore::IncrementSlot(uint32_t i) {
  const int64_t c = slots_[i].count;
  Range* r = ranges_.Find(static_cast<uint64_t>(c));
  DSKETCH_DCHECK(r != nullptr && r->begin <= i && i < r->end);
  const uint32_t last = r->end - 1;
  // The range with begin == 0 is the minimum-count range (ranges partition
  // the slot array in ascending count order).
  const bool was_min = r->begin == 0;
  SwapSlots(i, last);
  slots_[last].count = c + 1;

  if (r->begin == last) {
    ranges_.Erase(static_cast<uint64_t>(c));
  } else {
    r->end = last;
    if (was_min) min_range_end_ = last;
  }
  Range* up = ranges_.Find(static_cast<uint64_t>(c + 1));
  if (up != nullptr) {
    DSKETCH_DCHECK(up->begin == last + 1);
    up->begin = last;
    if (was_min && last == 0) min_range_end_ = up->end;
  } else {
    ranges_.InsertOrAssign(static_cast<uint64_t>(c + 1),
                           Range{last, last + 1});
    if (was_min && last == 0) min_range_end_ = last + 1;
  }
  ++total_;
  return last;
}

void SpaceSavingCore::Update(uint64_t item) {
  UpdateHashed(item, FlatMap<uint32_t>::MixedHash(item));
}

void SpaceSavingCore::UpdateBatch(Span<const uint64_t> items) {
  // Small sketches live entirely in cache, where the pipeline's ring
  // bookkeeping costs more than the misses it hides; a plain loop that
  // only reuses the pre-mixed hash is the better batch path there.
  if (slots_.size() < 65536) {
    constexpr size_t kAhead = 8;
    const uint64_t* data = items.data();
    const size_t n = items.size();
    uint64_t hashes[kAhead];
    for (size_t i = 0; i < n; ++i) {
      // Read row i's hash before the lookahead write below reuses its
      // ring slot (the ring is exactly one lookahead distance long).
      const uint64_t h = i >= kAhead ? hashes[i % kAhead]
                                     : FlatMap<uint32_t>::MixedHash(data[i]);
      if (i + kAhead < n) {
        const uint64_t ha = FlatMap<uint32_t>::MixedHash(data[i + kAhead]);
        hashes[(i + kAhead) % kAhead] = ha;
        index_.Prefetch(ha);
      }
      UpdateHashed(data[i], h);
    }
    return;
  }
  PipelinedUpdateBatch(items);
}

void SpaceSavingCore::PipelinedUpdateBatch(Span<const uint64_t> items) {
  // Software-pipelined version of per-row Update, bit-for-bit identical
  // (the mutation and RNG order is unchanged; only *reads* are hoisted).
  // Row i + 2D gets its key mixed and its index probe line prefetched;
  // row i + D is looked up (probe line now hot) and its slot line
  // prefetched; row i is applied. A looked-up position can be stale by
  // apply time — the sketch mutates in between — so each verdict is
  // re-validated cheaply:
  //   * "tracked at pos": valid iff slots_[pos].item still == item (label
  //     and index stay bijective, so a matching label proves the position);
  //   * "untracked": valid unless one of the D in-flight applies adopted
  //     exactly this label (tracked via a tiny ring of recent adoptions).
  // Invalid verdicts (rare: only near-duplicate rows within D) redo the
  // full lookup.
  constexpr size_t kDist = 8;          // lookup -> apply distance
  constexpr size_t kRing = 2 * kDist;  // also prefetch -> lookup distance
  struct Looked {
    uint64_t item;
    uint64_t hash;
    uint32_t pos;  // kNotFound when absent at lookup time
  };
  constexpr uint32_t kNotFound = ~0u;
  Looked ring[kRing];
  uint64_t hashes[kRing];
  uint64_t adopted[kDist];  // labels adopted by the last kDist applies
  for (size_t i = 0; i < kDist; ++i) adopted[i] = kNoLabel;
  size_t adopt_next = 0;
  uint32_t guess[kRing];  // predicted minimum-bin picks (prefetch hints)
  for (size_t i = 0; i < kRing; ++i) guess[i] = kNotFound;

  const uint64_t* data = items.data();
  const size_t n = items.size();
  for (size_t i = 0; i < n; ++i) {
    // The minimum-bin slot predicted for row i+1 was prefetched one apply
    // ago; by now it has usually arrived, so reading the victim label and
    // prefetching its index probe line hides the eviction's erase miss.
    {
      uint32_t& g = guess[(i + 1) % kRing];
      if (g != kNotFound) {
        const uint64_t victim = slots_[g].item;
        if (victim != kNoLabel) {
          index_.Prefetch(FlatMap<uint32_t>::MixedHash(victim));
        }
        g = kNotFound;
      }
    }
    if (i + kRing < n) {  // stage 1: mix + prefetch index probe line
      const uint64_t h = FlatMap<uint32_t>::MixedHash(data[i + kRing]);
      hashes[(i + kRing) % kRing] = h;
      index_.Prefetch(h);
    }
    if (i + kDist < n) {  // stage 2: index lookup + prefetch slot line
      const size_t j = i + kDist;
      const uint64_t item = data[j];
      const uint64_t h = j < kRing ? FlatMap<uint32_t>::MixedHash(item)
                                   : hashes[j % kRing];
      Looked& lk = ring[j % kRing];
      lk.item = item;
      lk.hash = h;
      const uint32_t* pos = index_.FindHashed(item, h);
      if (pos != nullptr) {
        lk.pos = *pos;
        DSKETCH_PREFETCH(&slots_[lk.pos]);
      } else {
        lk.pos = kNotFound;
        // Every untracked apply swaps its minimum bin with the last slot
        // of the minimum range. The range end moves by at most kDist
        // rows until this row applies, so this line (or its neighbor,
        // also pulled) is almost always the one touched.
        const uint32_t end = min_range_end_;
        DSKETCH_PREFETCH(&slots_[end - 1]);
        if (end >= kDist) DSKETCH_PREFETCH(&slots_[end - kDist]);
      }
    }
    // stage 3: apply row i.
    const uint64_t item = data[i];
    bool did_adopt = false;
    bool redo = false;
    if (i < kDist) {
      redo = true;  // head of the stream: no lookup was staged
    } else {
      const Looked& lk = ring[i % kRing];
      DSKETCH_DCHECK(lk.item == item);
      if (lk.pos != kNotFound) {
        if (slots_[lk.pos].item == item) {
          IncrementSlot(lk.pos);
        } else {
          redo = true;  // label moved or evicted since lookup
        }
      } else {
        bool maybe_adopted = false;
        for (size_t a = 0; a < kDist; ++a) {
          maybe_adopted |= adopted[a] == item;
        }
        if (!maybe_adopted) {
          did_adopt = ApplyUntracked(item, lk.hash);
        } else {
          redo = true;  // an in-flight apply adopted this label
        }
      }
    }
    if (redo) {
      const uint64_t h = FlatMap<uint32_t>::MixedHash(item);
      if (uint32_t* pos = index_.FindHashed(item, h)) {
        IncrementSlot(*pos);
      } else {
        did_adopt = ApplyUntracked(item, h);
      }
    }
    adopted[adopt_next] = did_adopt ? item : kNoLabel;
    adopt_next = (adopt_next + 1) % kDist;

    // The RNG state now is exactly what the next applies will see, so if
    // the ring says the upcoming rows are untracked we can replay their
    // minimum-bin draws on a throwaway copy and prefetch the exact slots
    // they will touch (the min range shrinks by one per untracked apply).
    // A stale verdict merely wastes the prefetch; the real draws happen
    // at apply time as always.
    if (i + 1 < n && i + 1 >= kDist && tie_break_ == TieBreak::kRandom &&
        ring[(i + 1) % kRing].pos == kNotFound && min_range_end_ > 1) {
      uint32_t end = min_range_end_;
      const int64_t min_count = slots_.front().count;
      Rng peek = rng_;
      for (size_t d = 1; d <= 4 && i + d < n && end > 1; ++d) {
        const Looked& nx = ring[(i + d) % kRing];
        if (nx.pos != kNotFound) break;  // tracked: consumes no draws
        const uint32_t pick = static_cast<uint32_t>(peek.NextBounded(end));
        DSKETCH_PREFETCH(&slots_[pick]);
        guess[(i + d) % kRing] = pick;
        if (policy_ == LabelPolicy::kUnbiased && min_count > 0) {
          peek.NextDouble();  // the adoption draw, to stay aligned
        }
        --end;
      }
    }
  }
}

void SpaceSavingCore::UpdateHashed(uint64_t item, uint64_t hash) {
  if (uint32_t* pos = index_.FindHashed(item, hash)) {
    IncrementSlot(*pos);
    return;
  }
  ApplyUntracked(item, hash);
}

bool SpaceSavingCore::ApplyUntracked(uint64_t item, uint64_t hash) {
  DSKETCH_DCHECK(item != kNoLabel && item != FlatMap<uint32_t>::kEmpty);
  // Pick a minimum-count bin. The minimum range is always
  // [0, min_range_end_) — maintained by IncrementSlot, no lookup needed.
  const int64_t min_count = slots_.front().count;
  DSKETCH_DCHECK([&] {
    const Range* mr = ranges_.Find(static_cast<uint64_t>(min_count));
    return mr != nullptr && mr->begin == 0 && mr->end == min_range_end_;
  }());
  uint32_t k;
  if (tie_break_ == TieBreak::kRandom && min_range_end_ > 1) {
    k = static_cast<uint32_t>(rng_.NextBounded(min_range_end_));
  } else {
    k = 0;
  }

  // Replace the label with probability p. An unlabeled (never used) bin
  // has count 0, so p = 1 under both policies and the item is adopted.
  bool replace = true;
  if (policy_ == LabelPolicy::kUnbiased && min_count > 0) {
    replace = rng_.NextBernoulli(1.0 / (static_cast<double>(min_count) + 1.0));
  }
  if (replace) {
    if (slots_[k].item != kNoLabel) {
      // The victim's index entry is erased at its known table position:
      // no re-Mix, no probe walk to find it again. Backward-shift
      // relocations of neighboring entries are reported through the
      // hook, which repairs their bins' backpointers in O(1) each.
      DSKETCH_DCHECK(index_.KeyAtPos(index_pos_[k]) == slots_[k].item);
      index_.EraseAtPos(index_pos_[k], [this](uint32_t bin, size_t pos) {
        index_pos_[bin] = static_cast<uint32_t>(pos);
      });
      index_pos_[k] = kNoIndex;
    }
    slots_[k].item = item;
    index_pos_[k] = static_cast<uint32_t>(
        index_.InsertOrAssignPosHashed(item, hash, k));
    // index_ was pre-sized for capacity() keys, so the insert above can
    // never trigger a rehash that would silently move stored positions.
    DSKETCH_DCHECK(index_.TableSize() >= 2 * slots_.size());
  }
  IncrementSlot(k);
  return replace;
}

int64_t SpaceSavingCore::EstimateCount(uint64_t item) const {
  const uint32_t* pos = index_.Find(item);
  return pos != nullptr ? slots_[*pos].count : 0;
}

std::vector<SketchEntry> SpaceSavingCore::Entries() const {
  std::vector<SketchEntry> out;
  out.reserve(index_.size());
  // Slots are ascending by count; emit in reverse for descending order.
  for (size_t i = slots_.size(); i > 0; --i) {
    const Slot& s = slots_[i - 1];
    if (s.item != kNoLabel) out.push_back({s.item, s.count});
  }
  return out;
}

void SpaceSavingCore::LoadEntries(const std::vector<SketchEntry>& entries) {
  DSKETCH_CHECK(entries.size() <= slots_.size());
  index_.Clear();
  ranges_.Clear();
  total_ = 0;

  // Ascending by count with a deterministic tie-break (descending item,
  // so the reverse iteration in Entries() reports count descending, ties
  // ascending item). This makes restore canonical: a thawed sketch's
  // Entries() order matches the frozen image's canonical entry order
  // exactly, which the frozen query path (wire/frozen.h) relies on for
  // bit-identical answers.
  std::vector<SketchEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              return a.count < b.count ||
                     (a.count == b.count && a.item > b.item);
            });

  const size_t pad = slots_.size() - sorted.size();
  for (size_t i = 0; i < pad; ++i) {
    slots_[i].item = kNoLabel;
    slots_[i].count = 0;
    index_pos_[i] = kNoIndex;
  }
  for (size_t i = 0; i < sorted.size(); ++i) {
    DSKETCH_CHECK(sorted[i].count >= 0);
    slots_[pad + i].item = sorted[i].item;
    slots_[pad + i].count = sorted[i].count;
    total_ += sorted[i].count;
    index_pos_[pad + i] =
        static_cast<uint32_t>(index_.InsertOrAssignPosHashed(
            sorted[i].item, FlatMap<uint32_t>::MixedHash(sorted[i].item),
            static_cast<uint32_t>(pad + i)));
  }

  // Rebuild the count -> range map over the now-sorted slot array.
  size_t begin = 0;
  for (size_t i = 1; i <= slots_.size(); ++i) {
    if (i == slots_.size() || slots_[i].count != slots_[begin].count) {
      ranges_.InsertOrAssign(static_cast<uint64_t>(slots_[begin].count),
                             Range{static_cast<uint32_t>(begin),
                                   static_cast<uint32_t>(i)});
      if (begin == 0) min_range_end_ = static_cast<uint32_t>(i);
      begin = i;
    }
  }
}

}  // namespace dsketch
