#include "core/frequent_items.h"

#include <cmath>

#include "util/logging.h"

namespace dsketch {
namespace {

std::vector<FrequentItem> FrequentFromEntries(
    const std::vector<SketchEntry>& entries, int64_t min_count, int64_t total,
    double phi) {
  DSKETCH_CHECK(phi >= 0.0 && phi < 1.0);
  const double threshold = phi * static_cast<double>(total);
  std::vector<FrequentItem> out;
  for (const SketchEntry& e : entries) {  // entries are descending
    if (static_cast<double>(e.count) <= threshold) break;
    FrequentItem f;
    f.item = e.item;
    f.estimate = e.count;
    f.lower_bound = e.count > min_count ? e.count - min_count : 0;
    f.guaranteed = static_cast<double>(f.lower_bound) > threshold;
    out.push_back(f);
  }
  return out;
}

std::vector<SketchEntry> TopKFromEntries(std::vector<SketchEntry> entries,
                                         size_t k) {
  DSKETCH_CHECK(k > 0);
  if (entries.size() > k) entries.resize(k);
  return entries;
}

}  // namespace

std::vector<FrequentItem> FrequentItems(const DeterministicSpaceSaving& sketch,
                                        double phi) {
  return FrequentFromEntries(sketch.Entries(), sketch.MinCount(),
                             sketch.TotalCount(), phi);
}

std::vector<FrequentItem> FrequentItems(const UnbiasedSpaceSaving& sketch,
                                        double phi) {
  return FrequentFromEntries(sketch.Entries(), sketch.MinCount(),
                             sketch.TotalCount(), phi);
}

std::vector<SketchEntry> TopK(const DeterministicSpaceSaving& sketch,
                              size_t k) {
  return TopKFromEntries(sketch.Entries(), k);
}

std::vector<SketchEntry> TopK(const UnbiasedSpaceSaving& sketch, size_t k) {
  return TopKFromEntries(sketch.Entries(), k);
}

}  // namespace dsketch
