#include "core/subset_sum.h"

#include <algorithm>
#include <cmath>

#include "stats/normal.h"

namespace dsketch {

double SubsetSumEstimate::StdDev() const { return std::sqrt(variance); }

Interval SubsetSumEstimate::Confidence(double level) const {
  double z = NormalTwoSidedZ(level);
  double half = z * StdDev();
  return Interval{estimate - half, estimate + half};
}

SubsetSumEstimate EstimateSubsetSum(
    const UnbiasedSpaceSaving& sketch,
    const std::function<bool(uint64_t)>& pred) {
  return EstimateSubsetSumFromEntries(sketch.Entries(), sketch.MinCount(),
                                      pred);
}

SubsetSumEstimate EstimateSubsetSum(
    const UnbiasedSpaceSaving& sketch,
    const std::unordered_set<uint64_t>& items) {
  return EstimateSubsetSum(sketch, [&items](uint64_t item) {
    return items.find(item) != items.end();
  });
}

SubsetSumEstimate EstimateSubsetSumFromEntries(
    const std::vector<SketchEntry>& entries, int64_t min_count,
    const std::function<bool(uint64_t)>& pred) {
  SubsetSumEstimate out;
  for (const SketchEntry& e : entries) {
    if (pred(e.item)) {
      out.estimate += static_cast<double>(e.count);
      ++out.items_in_sample;
    }
  }
  double nmin = static_cast<double>(min_count);
  double c_s = static_cast<double>(std::max<uint64_t>(1, out.items_in_sample));
  out.variance = nmin * nmin * c_s;
  return out;
}

}  // namespace dsketch
