// Multiple metrics per unit (paper §5: "If multiple metrics are being
// tracked, multi-objective sampling (Cohen 2015) may be used").
//
// Each bin tracks the primary count (which drives the PPS label choice,
// exactly as in Unbiased Space Saving) plus K auxiliary metric
// accumulators (e.g. clicks, revenue, bytes alongside impressions). On a
// label collapse the surviving label's auxiliary values are divided by its
// survival probability — a Horvitz-Thompson correction that keeps every
// auxiliary subset sum unbiased (Theorem 2 applied per metric). The
// primary counts behave exactly like the weighted sketch and preserve the
// total; auxiliary totals are preserved in expectation only, and their
// variance grows for metrics poorly correlated with the primary — the
// standard multi-objective trade-off.

#ifndef DSKETCH_CORE_MULTI_METRIC_SPACE_SAVING_H_
#define DSKETCH_CORE_MULTI_METRIC_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_map.h"
#include "util/random.h"
#include "util/span.h"

namespace dsketch {

/// One bin of the multi-metric sketch.
struct MultiMetricEntry {
  uint64_t item = 0;
  double primary = 0.0;          ///< sampling weight (e.g. impressions)
  std::vector<double> metrics;   ///< HT-adjusted auxiliary metrics
};

/// Unbiased Space Saving carrying K auxiliary metrics per bin.
class MultiMetricSpaceSaving {
 public:
  /// `capacity` bins, `num_metrics` auxiliary metrics.
  MultiMetricSpaceSaving(size_t capacity, size_t num_metrics,
                         uint64_t seed = 1);

  /// Processes one row: primary weight (> 0) plus auxiliary contributions
  /// (`metrics` must have num_metrics() entries; values may be 0).
  void Update(uint64_t item, double primary_weight,
              const std::vector<double>& metrics);

  /// Convenience for count-like primaries with one auxiliary metric.
  void Update(uint64_t item, double primary_weight, double metric0);

  /// Processes `items` as rows sharing one primary weight and metric
  /// vector (the shape of pre-grouped ingest batches). Bit-for-bit
  /// identical to per-row Update (pre-hashing + prefetch).
  void UpdateBatch(Span<const uint64_t> items, double primary_weight,
                   const std::vector<double>& metrics);

  /// Unbiased estimate of the item's primary weight (0 if untracked).
  double EstimatePrimary(uint64_t item) const;

  /// Unbiased estimate of auxiliary metric `k` for the item.
  double EstimateMetric(uint64_t item, size_t k) const;

  /// Unbiased subset-sum of auxiliary metric `k`.
  template <typename Pred>
  double EstimateMetricSubset(size_t k, Pred pred) const {
    double sum = 0;
    for (const auto& bin : heap_) {
      if (pred(bin.item)) sum += bin.metrics[k];
    }
    return sum;
  }

  /// Exact total of primary weights processed.
  double TotalPrimary() const { return total_primary_; }

  /// Number of auxiliary metrics.
  size_t num_metrics() const { return num_metrics_; }

  /// Number of bins.
  size_t capacity() const { return capacity_; }

  /// Number of labeled bins.
  size_t size() const { return heap_.size(); }

  /// All bins (unordered).
  const std::vector<MultiMetricEntry>& bins() const { return heap_; }

  /// Replaces contents with `bins` (≤ capacity, distinct labels, each with
  /// num_metrics() metric values). TotalPrimary() becomes the bin sum —
  /// the quantity the sketch preserves exactly. Used by serialization.
  void LoadBins(std::vector<MultiMetricEntry> bins);

 private:
  // Update body with the item's index hash precomputed (MixedHash(item)).
  void UpdateHashed(uint64_t item, uint64_t hash, double primary_weight,
                    const std::vector<double>& metrics);

  void SetSlot(size_t i, MultiMetricEntry e);
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  size_t capacity_;
  size_t num_metrics_;
  std::vector<MultiMetricEntry> heap_;  // min-heap by primary
  FlatMap<uint32_t> index_;
  double total_primary_ = 0.0;
  std::vector<double> scratch_;  // reused by the single-metric overload
  Rng rng_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_MULTI_METRIC_SPACE_SAVING_H_
