// Distributed counting with mergeable sketches (paper §5.5).
//
// Models the map-reduce deployment the paper motivates: each mapper
// maintains a local Unbiased Space Saving sketch over its shard of the
// stream; the reducer combines them with the unbiased pairwise-PPS merge.
// Because the merge satisfies Theorem 2, the combined sketch gives
// unbiased subset-sum estimates over the union of all shards, and the
// total count is preserved exactly.

#ifndef DSKETCH_CORE_DISTRIBUTED_H_
#define DSKETCH_CORE_DISTRIBUTED_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/unbiased_space_saving.h"

namespace dsketch {

/// Reducer over serialized mapper sketches: deserializes every blob
/// (accepting any mix of wire formats — v1 from old writers, v2 from
/// new ones, frozen images from read replicas) and combines them with the
/// unbiased merge into `capacity` bins. Returns nullopt if any blob is
/// malformed or not an Unbiased Space Saving sketch.
std::optional<UnbiasedSpaceSaving> CombineSerialized(
    const std::vector<std::string>& blobs, size_t capacity,
    uint64_t seed = 1);

/// A fleet of per-shard Unbiased Space Saving sketches with an unbiased
/// reducer-side combine.
class ShardedSketcher {
 public:
  /// `num_shards` mappers, each with `shard_capacity` bins.
  ShardedSketcher(size_t num_shards, size_t shard_capacity,
                  uint64_t seed = 1);

  /// Routes `item` to a shard by hash (simulates partitioned ingest).
  void Update(uint64_t item);

  /// Feeds `item` to an explicit shard (simulates arbitrary partitioning,
  /// e.g. one sketch per day or per data center).
  void UpdateShard(size_t shard, uint64_t item);

  /// Reducer: unbiased merge of all shards into `capacity` bins.
  UnbiasedSpaceSaving Combine(size_t capacity, uint64_t seed = 1) const;

  /// Mapper side of the network deployment: every shard serialized with
  /// the current wire format, ready to ship to a CombineSerialized
  /// reducer.
  std::vector<std::string> SerializeShards() const;

  /// Read access to an individual shard sketch.
  const UnbiasedSpaceSaving& shard(size_t i) const { return shards_[i]; }

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// Rows processed across all shards.
  int64_t TotalCount() const;

 private:
  std::vector<UnbiasedSpaceSaving> shards_;
  uint64_t route_seed_;
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_DISTRIBUTED_H_
