// Binary serialization for the mergeable sketches (paper §5.5: "in a
// map-reduce framework ... only a set of small sketches needs to be sent
// over the network"). The wire format is a little-endian header plus the
// entry list:
//
//   [u32 magic][u8 kind][u8 version][u16 reserved]
//   [u64 capacity][u32 entry_count]
//   entries: kind-dependent (u64 item + i64 count, or u64 item + f64 weight)
//
// Deserialization validates the header and sizes and returns nullopt on
// any malformed input (never aborts) — inputs may come from the network.

#ifndef DSKETCH_CORE_SERIALIZATION_H_
#define DSKETCH_CORE_SERIALIZATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/deterministic_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"

namespace dsketch {

/// Serializes a sketch's state (capacity + entries) to bytes.
std::string Serialize(const UnbiasedSpaceSaving& sketch);

/// Serializes a deterministic sketch.
std::string Serialize(const DeterministicSpaceSaving& sketch);

/// Serializes a weighted sketch.
std::string Serialize(const WeightedSpaceSaving& sketch);

/// Reconstructs an Unbiased Space Saving sketch; `seed` re-seeds the
/// receiving side's randomness (the sample itself is in the entries).
/// Returns nullopt on malformed or wrong-kind input.
std::optional<UnbiasedSpaceSaving> DeserializeUnbiased(std::string_view bytes,
                                                       uint64_t seed = 1);

/// Reconstructs a Deterministic Space Saving sketch.
std::optional<DeterministicSpaceSaving> DeserializeDeterministic(
    std::string_view bytes, uint64_t seed = 1);

/// Reconstructs a weighted sketch.
std::optional<WeightedSpaceSaving> DeserializeWeighted(std::string_view bytes,
                                                       uint64_t seed = 1);

}  // namespace dsketch

#endif  // DSKETCH_CORE_SERIALIZATION_H_
