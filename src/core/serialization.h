// Binary serialization for the mergeable sketches (paper §5.5: "in a
// map-reduce framework ... only a set of small sketches needs to be sent
// over the network"). The wire format is a little-endian header, an
// optional kind-specific sub-header, and the entry list:
//
//   [u32 magic][u8 kind][u8 version][u16 reserved]
//   [u64 capacity][u32 entry_count]
//   sub-header: kind-dependent (e.g. metric arity, decrement count,
//               CountMin geometry)
//   entries: kind-dependent (u64 item + i64 count, u64 item + f64 weight,
//            multi-metric bins, or raw CountMin counters)
//
// Deserialization validates the header and sizes and returns nullopt on
// any malformed input (never aborts) — inputs may come from the network.
// Capacities are capped on both paths — 2^22 bins for the space-saving
// kinds, 2^25 cells for CountMin tables (Serialize CHECK-fails beyond
// the cap; Deserialize rejects) — so hostile headers cannot force huge
// allocations and everything serializable restores. The caps are part
// of the v1 format contract.

#ifndef DSKETCH_CORE_SERIALIZATION_H_
#define DSKETCH_CORE_SERIALIZATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/deterministic_space_saving.h"
#include "core/multi_metric_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"

namespace dsketch {

/// Largest capacity Serialize accepts for the space-saving kinds (for
/// MultiMetric the bound is capacity * (2 + num_metrics)). Part of the
/// v1 format contract; Serialize CHECK-fails beyond it, so callers
/// sizing sketches for snapshotting should stay within it.
inline constexpr uint64_t kMaxSerializableCapacity = uint64_t{1} << 22;

/// Largest CountMin table (width * depth cells) Serialize accepts.
inline constexpr uint64_t kMaxSerializableCountMinCells = uint64_t{1} << 25;

/// Serializes a sketch's state (capacity + entries) to bytes.
std::string Serialize(const UnbiasedSpaceSaving& sketch);

/// Serializes a deterministic sketch.
std::string Serialize(const DeterministicSpaceSaving& sketch);

/// Serializes a weighted sketch.
std::string Serialize(const WeightedSpaceSaving& sketch);

/// Serializes a multi-metric sketch (bins carry primary + K metrics).
std::string Serialize(const MultiMetricSpaceSaving& sketch);

/// Serializes a Misra-Gries summary (entries + decrement count + total).
std::string Serialize(const MisraGries& sketch);

/// Serializes a CountMin sketch (geometry + seed + raw counter table).
std::string Serialize(const CountMin& sketch);

/// Reconstructs an Unbiased Space Saving sketch; `seed` re-seeds the
/// receiving side's randomness (the sample itself is in the entries).
/// Returns nullopt on malformed or wrong-kind input.
std::optional<UnbiasedSpaceSaving> DeserializeUnbiased(std::string_view bytes,
                                                       uint64_t seed = 1);

/// Reconstructs a Deterministic Space Saving sketch.
std::optional<DeterministicSpaceSaving> DeserializeDeterministic(
    std::string_view bytes, uint64_t seed = 1);

/// Reconstructs a weighted sketch.
std::optional<WeightedSpaceSaving> DeserializeWeighted(std::string_view bytes,
                                                       uint64_t seed = 1);

/// Reconstructs a multi-metric sketch.
std::optional<MultiMetricSpaceSaving> DeserializeMultiMetric(
    std::string_view bytes, uint64_t seed = 1);

/// Reconstructs a Misra-Gries summary (fully deterministic; no seed).
std::optional<MisraGries> DeserializeMisraGries(std::string_view bytes);

/// Reconstructs a CountMin sketch. The hash functions are re-derived from
/// the serialized seed, so estimates match the original bit-for-bit.
std::optional<CountMin> DeserializeCountMin(std::string_view bytes);

}  // namespace dsketch

#endif  // DSKETCH_CORE_SERIALIZATION_H_
