// Binary serialization for the mergeable sketches (paper §5.5: "in a
// map-reduce framework ... only a set of small sketches needs to be sent
// over the network"), built on the layered wire subsystem in src/wire.
//
// Every blob starts with the shared 8-byte envelope (wire/codec.h):
//
//   [u32 magic = "DSK1"][u8 kind][u8 version][u16 reserved = 0]
//
// Version negotiation: encoders emit the current version (2); decoders
// accept every version in the kind's registered range (1-2), so v1 blobs
// from old writers keep decoding and a fleet can roll forward node by
// node. SerializeV1 keeps the legacy encoder available for compatibility
// tests, golden fixtures, and benchmarks.
//
// v1 payload (fixed-width little-endian, decode-only):
//
//   [u64 capacity][u32 entry_count]
//   sub-header: kind-dependent (metric arity, decrement count, CountMin
//               geometry)
//   entries: 16 B/entry (u64 item + i64 count or f64 weight),
//            multi-metric bins, or raw i64 CountMin counters
//
// v2 payload (varint/delta; see src/wire/varint.h for the primitives):
//
//   [varint capacity][varint entry_count]
//   sub-header: kind-dependent, varint-encoded (CountMin carries
//               width/depth/seed/flags/total instead of capacity/count)
//   entries: varint item per entry; integer counts are delta-encoded
//            against the descending count order Entries() emits (first
//            count as varint, then varint prev-minus-current), so the
//            long near-minimum tail costs ~1 B/count; real-valued
//            weights/metrics stay fixed 8-byte IEEE-754
//
// Deserialization validates the envelope, sizes, and per-kind invariants
// and returns nullopt on any malformed input (never aborts) — inputs may
// come from the network.
//
// Capacity caps (identical on both wire versions, enforced symmetrically
// on encode — Serialize CHECK-fails beyond them — and decode — rejected —
// so everything serializable restores and hostile headers cannot force
// huge allocations):
//
//   kind                         cap
//   ---------------------------  ----------------------------------------
//   Unbiased / Deterministic /   2^22 bins (kMaxSerializableCapacity)
//   Weighted / MisraGries
//   MultiMetric                  capacity * (2 + num_metrics) <= 2^22
//   CountMin                     2^25 cells (kMaxSerializableCountMinCells)

#ifndef DSKETCH_CORE_SERIALIZATION_H_
#define DSKETCH_CORE_SERIALIZATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/deterministic_space_saving.h"
#include "core/multi_metric_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "wire/codec.h"

namespace dsketch {

/// Largest capacity Serialize accepts for the space-saving kinds (for
/// MultiMetric the bound is capacity * (2 + num_metrics)). Part of the
/// wire format contract for both versions; Serialize CHECK-fails beyond
/// it, so callers sizing sketches for snapshotting should stay within it.
inline constexpr uint64_t kMaxSerializableCapacity = uint64_t{1} << 22;

/// Largest CountMin table (width * depth cells) Serialize accepts.
inline constexpr uint64_t kMaxSerializableCountMinCells = uint64_t{1} << 25;

/// Serializes a sketch's state (capacity + entries) with the current
/// wire version.
std::string Serialize(const UnbiasedSpaceSaving& sketch);

/// Serializes a deterministic sketch.
std::string Serialize(const DeterministicSpaceSaving& sketch);

/// Serializes a weighted sketch.
std::string Serialize(const WeightedSpaceSaving& sketch);

/// Serializes a multi-metric sketch (bins carry primary + K metrics).
std::string Serialize(const MultiMetricSpaceSaving& sketch);

/// Serializes a Misra-Gries summary (entries + decrement count + total).
std::string Serialize(const MisraGries& sketch);

/// Serializes a CountMin sketch (geometry + seed + raw counter table).
std::string Serialize(const CountMin& sketch);

/// Legacy version-1 encoders, retained so compatibility tests, golden
/// fixtures, and the wire benchmarks can still produce v1 bytes. New
/// code should use Serialize (current version); every Deserialize*
/// accepts both.
std::string SerializeV1(const UnbiasedSpaceSaving& sketch);
std::string SerializeV1(const DeterministicSpaceSaving& sketch);
std::string SerializeV1(const WeightedSpaceSaving& sketch);
std::string SerializeV1(const MultiMetricSpaceSaving& sketch);
std::string SerializeV1(const MisraGries& sketch);
std::string SerializeV1(const CountMin& sketch);

/// Serializes an unbiased sketch as the frozen mmap-able image (wire
/// kind 8, wire/frozen.h): the bytes ARE the query-ready flat layout, so
/// a reader restores in O(1) via wire::FrozenView::Vet (zero-decode
/// replica serving; see query/frozen_source.h) or thaws in O(n) via
/// DeserializeUnbiased, which accepts frozen blobs alongside v1/v2 —
/// CombineSerialized and snapshot RESTORE therefore take frozen inputs
/// unchanged. Entries are written in canonical order (count descending,
/// ties ascending item), the order a thawed sketch's Entries() reports,
/// so frozen and thawed answers are bit-identical.
std::string SerializeFrozen(const UnbiasedSpaceSaving& sketch);

/// O(n) thaw of a frozen image into a live sketch: structural vetting,
/// then full content validation (canonical entry order, positive counts,
/// duplicate labels, total/min consistency with the header metadata, and
/// a hash index that resolves every entry — zero-decode point lookups go
/// through it). Returns nullopt on anything malformed; never aborts.
std::optional<UnbiasedSpaceSaving> ThawFrozen(std::string_view bytes,
                                              uint64_t seed = 1);

/// Reconstructs an Unbiased Space Saving sketch; `seed` re-seeds the
/// receiving side's randomness (the sample itself is in the entries).
/// Returns nullopt on malformed or wrong-kind input. Accepts wire v1,
/// v2, and the frozen image kind (thawed via ThawFrozen).
std::optional<UnbiasedSpaceSaving> DeserializeUnbiased(std::string_view bytes,
                                                       uint64_t seed = 1);

/// Reconstructs a Deterministic Space Saving sketch.
std::optional<DeterministicSpaceSaving> DeserializeDeterministic(
    std::string_view bytes, uint64_t seed = 1);

/// Reconstructs a weighted sketch.
std::optional<WeightedSpaceSaving> DeserializeWeighted(std::string_view bytes,
                                                       uint64_t seed = 1);

/// Reconstructs a multi-metric sketch.
std::optional<MultiMetricSpaceSaving> DeserializeMultiMetric(
    std::string_view bytes, uint64_t seed = 1);

/// Reconstructs a Misra-Gries summary (fully deterministic; no seed).
std::optional<MisraGries> DeserializeMisraGries(std::string_view bytes);

/// Reconstructs a CountMin sketch. The hash functions are re-derived from
/// the serialized seed, so estimates match the original bit-for-bit.
std::optional<CountMin> DeserializeCountMin(std::string_view bytes);

/// Compile-time serializer dispatch for generic layers (shard snapshot
/// replication, query-engine state) that handle a sketch type `S` without
/// naming its kind-specific Serialize/Deserialize pair.
template <typename S>
struct SketchWire;

template <>
struct SketchWire<UnbiasedSpaceSaving> {
  static std::string Serialize(const UnbiasedSpaceSaving& s) {
    return dsketch::Serialize(s);
  }
  static std::optional<UnbiasedSpaceSaving> Deserialize(std::string_view bytes,
                                                        uint64_t seed) {
    return DeserializeUnbiased(bytes, seed);
  }
};

template <>
struct SketchWire<DeterministicSpaceSaving> {
  static std::string Serialize(const DeterministicSpaceSaving& s) {
    return dsketch::Serialize(s);
  }
  static std::optional<DeterministicSpaceSaving> Deserialize(
      std::string_view bytes, uint64_t seed) {
    return DeserializeDeterministic(bytes, seed);
  }
};

template <>
struct SketchWire<WeightedSpaceSaving> {
  static std::string Serialize(const WeightedSpaceSaving& s) {
    return dsketch::Serialize(s);
  }
  static std::optional<WeightedSpaceSaving> Deserialize(std::string_view bytes,
                                                        uint64_t seed) {
    return DeserializeWeighted(bytes, seed);
  }
};

}  // namespace dsketch

#endif  // DSKETCH_CORE_SERIALIZATION_H_
