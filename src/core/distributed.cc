#include "core/distributed.h"

#include <utility>

#include "core/merge.h"
#include "core/serialization.h"
#include "hashing/hash.h"
#include "util/logging.h"

namespace dsketch {

std::optional<UnbiasedSpaceSaving> CombineSerialized(
    const std::vector<std::string>& blobs, size_t capacity, uint64_t seed) {
  if (blobs.empty()) return UnbiasedSpaceSaving(capacity, seed);
  std::vector<UnbiasedSpaceSaving> restored;
  restored.reserve(blobs.size());
  for (size_t i = 0; i < blobs.size(); ++i) {
    std::optional<UnbiasedSpaceSaving> sketch =
        DeserializeUnbiased(blobs[i], seed + i + 1);
    if (!sketch.has_value()) return std::nullopt;
    restored.push_back(std::move(*sketch));
  }
  std::vector<const UnbiasedSpaceSaving*> ptrs;
  ptrs.reserve(restored.size());
  for (const auto& s : restored) ptrs.push_back(&s);
  return MergeAll(ptrs, capacity, seed);
}

ShardedSketcher::ShardedSketcher(size_t num_shards, size_t shard_capacity,
                                 uint64_t seed)
    : route_seed_(seed ^ 0xabcdef0123456789ULL) {
  DSKETCH_CHECK(num_shards > 0);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.emplace_back(shard_capacity, seed + 0x9e3779b97f4a7c15ULL * (i + 1));
  }
}

void ShardedSketcher::Update(uint64_t item) {
  size_t shard = HashU64(item, route_seed_) % shards_.size();
  shards_[shard].Update(item);
}

void ShardedSketcher::UpdateShard(size_t shard, uint64_t item) {
  DSKETCH_CHECK(shard < shards_.size());
  shards_[shard].Update(item);
}

UnbiasedSpaceSaving ShardedSketcher::Combine(size_t capacity,
                                             uint64_t seed) const {
  std::vector<const UnbiasedSpaceSaving*> ptrs;
  ptrs.reserve(shards_.size());
  for (const auto& s : shards_) ptrs.push_back(&s);
  return MergeAll(ptrs, capacity, seed);
}

std::vector<std::string> ShardedSketcher::SerializeShards() const {
  std::vector<std::string> blobs;
  blobs.reserve(shards_.size());
  for (const auto& s : shards_) blobs.push_back(Serialize(s));
  return blobs;
}

int64_t ShardedSketcher::TotalCount() const {
  int64_t total = 0;
  for (const auto& s : shards_) total += s.TotalCount();
  return total;
}

}  // namespace dsketch
