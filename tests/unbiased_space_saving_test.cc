// Tests for the Unbiased Space Saving sketch: Theorem 1 unbiasedness on
// i.i.d. and adversarial orders, Theorem 3 frequent-item stickiness,
// Theorem 9 PPS-like inclusion probabilities, and Theorem 10's worst-case
// inclusion bound.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/unbiased_space_saving.h"
#include "sampling/pps.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "test_scale.h"
#include "util/random.h"

namespace dsketch {
namespace {

// Runs `trials` sketches over fresh stream orders and returns per-item
// estimate accumulators.
std::vector<Welford> EstimateOverTrials(const std::vector<int64_t>& counts,
                                        size_t capacity, int trials,
                                        bool sorted_ascending,
                                        uint64_t seed_base) {
  std::vector<Welford> est(counts.size());
  for (int t = 0; t < trials; ++t) {
    std::vector<uint64_t> rows;
    if (sorted_ascending) {
      rows = SortedStream(counts, /*ascending=*/true);
    } else {
      Rng rng(seed_base + 2 * t);
      rows = PermutedStream(counts, rng);
    }
    UnbiasedSpaceSaving sketch(capacity, seed_base + 2 * t + 1);
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(sketch.EstimateCount(i)));
    }
  }
  return est;
}

TEST(UnbiasedSpaceSavingTest, Theorem1UnbiasedOnPermutedStream) {
  std::vector<int64_t> counts{50, 30, 10, 8, 8, 5, 3, 2, 2, 1, 1, 1};
  auto est = EstimateOverTrials(counts, 4, test::ScaledTrials(1200),
                                /*sorted=*/false, 100);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(UnbiasedSpaceSavingTest, Theorem1UnbiasedOnSortedStream) {
  // Ascending-frequency order is the sketch's pathological case; the
  // estimates must still be unbiased (only the variance grows).
  std::vector<int64_t> counts{40, 20, 12, 6, 4, 3, 2, 2, 1, 1};
  auto est = EstimateOverTrials(counts, 4, test::ScaledTrials(1200),
                                /*sorted=*/true, 200);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(UnbiasedSpaceSavingTest, TotalAlwaysExact) {
  UnbiasedSpaceSaving sketch(32, 7);
  Rng rng(101);
  for (int i = 0; i < 30000; ++i) sketch.Update(rng.NextBounded(2000));
  int64_t sum = 0;
  for (const SketchEntry& e : sketch.Entries()) sum += e.count;
  EXPECT_EQ(sum, 30000);
  EXPECT_EQ(sketch.TotalCount(), 30000);
}

TEST(UnbiasedSpaceSavingTest, Theorem3FrequentItemSticks) {
  // One item with p > 1/m on an i.i.d. stream must end up tracked with a
  // near-exact proportion estimate (strong consistency, Corollary 5).
  const size_t kM = 10;
  // A single pass; cheap enough to run at full strength in every tier
  // (the fixed 0.02 tolerance needs the full stream length).
  const int kRows = 200000;
  Rng rng(102);
  // Item 0 has probability 0.3 > 1/10; the rest spread over 5000 items.
  UnbiasedSpaceSaving sketch(kM, 8);
  for (int i = 0; i < kRows; ++i) {
    uint64_t item = rng.NextBernoulli(0.3) ? 0 : 1 + rng.NextBounded(5000);
    sketch.Update(item);
  }
  EXPECT_TRUE(sketch.Contains(0));
  double p_hat = static_cast<double>(sketch.EstimateCount(0)) / kRows;
  EXPECT_NEAR(p_hat, 0.3, 0.02);
}

TEST(UnbiasedSpaceSavingTest, Theorem9InclusionMatchesPps) {
  // Paper Fig. 2: empirical inclusion probabilities track thresholded PPS
  // targets when no item dominates.
  auto counts = WeibullCounts(300, 500.0, 0.5);
  const size_t kM = 40;
  std::vector<double> weights(counts.begin(), counts.end());
  auto target = ThresholdedPpsProbabilities(weights, kM);

  const int kTrials = test::ScaledTrials(300);
  std::vector<int> included(counts.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(10000 + t);
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving sketch(kM, 20000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      if (sketch.Contains(i)) ++included[i];
    }
  }
  // Compare on aggregate: mean absolute deviation below a few percent.
  double mad = 0;
  int measured = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double freq = included[i] / static_cast<double>(kTrials);
    mad += std::abs(freq - target[i]);
    ++measured;
  }
  mad /= measured;
  // 0.04 is the full-strength (3000-trial) threshold; smaller trial
  // counts add per-item binomial noise of order 1/sqrt(trials) to the MAD.
  EXPECT_LT(mad, 0.04 + 0.5 / std::sqrt(static_cast<double>(kTrials)));
}

TEST(UnbiasedSpaceSavingTest, Theorem10WorstCaseInclusionBound) {
  // The equality-achieving sequence: n-k distinct items then item X k
  // times. pi_X >= 1 - (1 - k/n)^m, with equality for this stream.
  const int64_t kNoise = 900;
  const int64_t kX = 100;  // item of interest appears 100 times
  const size_t kM = 20;
  const double n_tot = static_cast<double>(kNoise + kX);
  double lower = 1.0 - std::pow(1.0 - static_cast<double>(kX) / n_tot,
                                static_cast<double>(kM));

  const int kTrials = test::ScaledTrials(400);
  int included = 0;
  const uint64_t kItemX = 1000000;
  for (int t = 0; t < kTrials; ++t) {
    UnbiasedSpaceSaving sketch(kM, 30000 + t);
    for (int64_t i = 0; i < kNoise; ++i) {
      sketch.Update(static_cast<uint64_t>(i));
    }
    for (int64_t i = 0; i < kX; ++i) sketch.Update(kItemX);
    if (sketch.Contains(kItemX)) ++included;
  }
  double pi = included / static_cast<double>(kTrials);
  double se = std::sqrt(lower * (1 - lower) / kTrials);
  EXPECT_GE(pi, lower - 5 * se);
  // Equality case: should also not exceed the bound by much.
  EXPECT_LE(pi, lower + 5 * se + 0.02);
}

TEST(UnbiasedSpaceSavingTest, DistinctStreamStillUnbiasedTotal) {
  // All-distinct stream: every estimate is a tiny-probability lottery, but
  // the bins must still sum to the total.
  UnbiasedSpaceSaving sketch(16, 9);
  auto rows = DistinctStream(5000, 0);
  for (uint64_t item : rows) sketch.Update(item);
  int64_t sum = 0;
  for (const SketchEntry& e : sketch.Entries()) sum += e.count;
  EXPECT_EQ(sum, 5000);
}

TEST(UnbiasedSpaceSavingTest, EstimateZeroForUntracked) {
  UnbiasedSpaceSaving sketch(4, 10);
  for (int i = 0; i < 100; ++i) sketch.Update(1);
  EXPECT_EQ(sketch.EstimateCount(999), 0);
  EXPECT_FALSE(sketch.Contains(999));
}

TEST(UnbiasedSpaceSavingTest, BurstyItemRemainsEstimable) {
  // Periodic bursts (paper §6.3): the unbiased sketch keeps a handle on
  // the bursty item's count on average.
  const int64_t kBurst = 50, kQuiet = 200, kPeriods = 20;
  Welford est;
  const int kTrials = test::ScaledTrials(300);
  for (int t = 0; t < kTrials; ++t) {
    auto rows = BurstyStream(7, kBurst, kQuiet, kPeriods, 1000000);
    UnbiasedSpaceSaving sketch(32, 40000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    est.Add(static_cast<double>(sketch.EstimateCount(7)));
  }
  double truth = static_cast<double>(kBurst * kPeriods);
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean() + 0.1);
}

}  // namespace
}  // namespace dsketch
