// Tests for Deterministic Space Saving: the classic guarantees, the
// guaranteed-count lower bound, and the paper's negative results — the
// Theorem 11 adversarial wipe-out and the two-half pathological bias that
// motivate the unbiased sketch.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/deterministic_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(DeterministicSpaceSavingTest, NeverUnderestimates) {
  std::vector<int64_t> counts = ZipfCounts(100, 1.1, 300);
  Rng rng(110);
  auto rows = PermutedStream(counts, rng);
  DeterministicSpaceSaving sketch(16, 1);
  for (uint64_t item : rows) sketch.Update(item);
  for (size_t i = 0; i < counts.size(); ++i) {
    if (sketch.Contains(i)) {
      EXPECT_GE(sketch.EstimateCount(i), counts[i]);
    }
  }
}

TEST(DeterministicSpaceSavingTest, GuaranteedCountIsValidLowerBound) {
  std::vector<int64_t> counts = ZipfCounts(150, 1.3, 400);
  Rng rng(111);
  auto rows = PermutedStream(counts, rng);
  DeterministicSpaceSaving sketch(20, 2);
  for (uint64_t item : rows) sketch.Update(item);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_LE(sketch.GuaranteedCount(i), counts[i]) << "item " << i;
  }
}

TEST(DeterministicSpaceSavingTest, HeavyItemAlwaysTracked) {
  // Any item with count > n/m must be in the sketch (classic guarantee).
  std::vector<int64_t> counts{500, 400, 300, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  Rng rng(112);
  auto rows = PermutedStream(counts, rng);
  DeterministicSpaceSaving sketch(8, 3);
  for (uint64_t item : rows) sketch.Update(item);
  EXPECT_TRUE(sketch.Contains(0));
  EXPECT_TRUE(sketch.Contains(1));
  EXPECT_TRUE(sketch.Contains(2));
}

TEST(DeterministicSpaceSavingTest, Theorem11AdversarialWipeout) {
  // Counts all below 2*ntot/m: after ntot extra distinct rows the sketch
  // estimates exactly 0 for every original item.
  const size_t kM = 10;
  std::vector<int64_t> counts{30, 25, 20, 15, 10, 10, 8, 7, 5, 5,
                              5,  5,  5,  5,  5};  // total 160
  int64_t total = TotalCount(counts);
  for (int64_t c : counts) ASSERT_LT(c, 2 * total / static_cast<int64_t>(kM));

  auto rows = AdversarialWipeoutStream(counts, 1000000);
  DeterministicSpaceSaving sketch(kM, 4);
  for (uint64_t item : rows) sketch.Update(item);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(sketch.EstimateCount(i), 0) << "item " << i;
  }
}

TEST(DeterministicSpaceSavingTest, UnbiasedSurvivesTheSameAdversary) {
  // Same stream: Unbiased Space Saving keeps unbiased estimates (its
  // expected estimate equals the true count; in particular the heavy
  // originals are retained with non-trivial probability).
  std::vector<int64_t> counts{30, 25, 20, 15, 10, 10, 8, 7, 5, 5,
                              5,  5,  5,  5,  5};
  std::vector<Welford> est(counts.size());
  for (int t = 0; t < 6000; ++t) {
    auto rows = AdversarialWipeoutStream(counts, 1000000);
    UnbiasedSpaceSaving sketch(10, 50000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(sketch.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.1)
        << "item " << i;
  }
}

TEST(DeterministicSpaceSavingTest, TwoHalfStreamDropsFirstHalfTail) {
  // Paper Fig. 7: infrequent items from the first half are completely
  // forgotten by the deterministic sketch.
  auto half_counts = WeibullCounts(200, 30.0, 0.6);
  Rng rng(113);
  auto rows = TwoHalfStream(half_counts, half_counts, rng);
  DeterministicSpaceSaving sketch(50, 5);
  for (uint64_t item : rows) sketch.Update(item);

  // Count how many *infrequent* first-half items survive.
  int first_half_tail_tracked = 0;
  int tail_items = 0;
  for (size_t i = 0; i < half_counts.size(); ++i) {
    if (half_counts[i] == 0) continue;
    if (half_counts[i] < 30) {
      ++tail_items;
      if (sketch.Contains(i)) ++first_half_tail_tracked;
    }
  }
  ASSERT_GT(tail_items, 50);
  // Essentially all of the first-half tail must be gone.
  EXPECT_LE(first_half_tail_tracked, tail_items / 10);
}

TEST(DeterministicSpaceSavingTest, AllDistinctKeepsOnlyLastItems) {
  // "The sketch always consists of the last m items" on all-distinct
  // streams (paper §6.3). With random tie-breaking the replacement wave
  // can lag one bin-generation, so the survivors come from the last 2m
  // arrivals; with first-slot tie-breaking or at wave boundaries it is
  // exactly the last m.
  const size_t kM = 16;
  DeterministicSpaceSaving sketch(kM, 6);
  auto rows = DistinctStream(1000, 0);
  for (uint64_t item : rows) sketch.Update(item);
  for (const SketchEntry& e : sketch.Entries()) {
    EXPECT_GE(e.item, 1000 - 2 * kM);
  }
  // At an exact wave boundary (1024 = 16 + 63*16), only the last m remain.
  DeterministicSpaceSaving aligned(kM, 7);
  auto rows2 = DistinctStream(1024, 0);
  for (uint64_t item : rows2) aligned.Update(item);
  for (const SketchEntry& e : aligned.Entries()) {
    EXPECT_GE(e.item, 1024 - kM);
  }
}

TEST(DeterministicSpaceSavingTest, MinCountIsMaxError) {
  DeterministicSpaceSaving sketch(8, 7);
  Rng rng(114);
  std::vector<int64_t> truth(100, 0);
  for (int i = 0; i < 5000; ++i) {
    uint64_t item = rng.NextBounded(100);
    ++truth[item];
    sketch.Update(item);
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    if (!sketch.Contains(i)) continue;
    EXPECT_LE(sketch.EstimateCount(i) - truth[i], sketch.MinCount());
  }
}

}  // namespace
}  // namespace dsketch
