// Parameterized property sweeps across distributions, stream orders, and
// sketch sizes: unbiasedness (Theorem 1/2), exact total preservation, and
// estimator sanity hold for *every* configuration, not just the defaults.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/merge.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "test_scale.h"
#include "util/random.h"

namespace dsketch {
namespace {

enum class Order { kPermuted, kAscending, kDescending, kTwoHalf };

struct PropertyCase {
  std::string name;
  std::string dist;   // "weibull", "geometric", "zipf", "uniform"
  size_t n_items;
  size_t capacity;
  Order order;
};

std::string CaseName(const testing::TestParamInfo<PropertyCase>& info) {
  return info.param.name;
}

std::vector<int64_t> MakeCounts(const PropertyCase& pc) {
  if (pc.dist == "weibull") return WeibullCounts(pc.n_items, 30.0, 0.5);
  if (pc.dist == "geometric") return GeometricCounts(pc.n_items, 0.08);
  if (pc.dist == "zipf") return ZipfCounts(pc.n_items, 1.2, 60);
  return std::vector<int64_t>(pc.n_items, 4);  // uniform
}

std::vector<uint64_t> MakeStream(const PropertyCase& pc,
                                 const std::vector<int64_t>& counts,
                                 uint64_t seed) {
  Rng rng(seed);
  switch (pc.order) {
    case Order::kPermuted:
      return PermutedStream(counts, rng);
    case Order::kAscending:
      return SortedStream(counts, true);
    case Order::kDescending:
      return SortedStream(counts, false);
    case Order::kTwoHalf: {
      // Split item ids into two halves of the same count vector.
      std::vector<int64_t> first(counts.begin(),
                                 counts.begin() + counts.size() / 2);
      std::vector<int64_t> second(counts.begin() + counts.size() / 2,
                                  counts.end());
      return TwoHalfStream(first, second, rng);
    }
  }
  return {};
}

class UssPropertyTest : public testing::TestWithParam<PropertyCase> {};

TEST_P(UssPropertyTest, TotalPreservedExactly) {
  const PropertyCase& pc = GetParam();
  auto counts = MakeCounts(pc);
  auto rows = MakeStream(pc, counts, 300);
  UnbiasedSpaceSaving sketch(pc.capacity, 301);
  for (uint64_t item : rows) sketch.Update(item);
  int64_t sum = 0;
  for (const SketchEntry& e : sketch.Entries()) sum += e.count;
  EXPECT_EQ(sum, static_cast<int64_t>(rows.size()));
  EXPECT_EQ(sketch.TotalCount(), static_cast<int64_t>(rows.size()));
}

TEST_P(UssPropertyTest, SubsetSumUnbiased) {
  const PropertyCase& pc = GetParam();
  auto counts = MakeCounts(pc);
  double truth = 0;
  for (size_t i = 0; i < counts.size(); i += 2) {
    truth += static_cast<double>(counts[i]);
  }
  Welford est;
  const int kTrials = test::ScaledTrials(300);
  for (int t = 0; t < kTrials; ++t) {
    auto rows = MakeStream(pc, counts, 400 + static_cast<uint64_t>(t));
    UnbiasedSpaceSaving sketch(pc.capacity, 5000 + static_cast<uint64_t>(t));
    for (uint64_t item : rows) sketch.Update(item);
    est.Add(EstimateSubsetSum(sketch, [](uint64_t x) {
              return x % 2 == 0;
            }).estimate);
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean() + 1e-9)
      << "bias z-score "
      << (est.mean() - truth) / (est.stderr_mean() + 1e-12);
}

TEST_P(UssPropertyTest, MinCountNeverExceedsMeanBinLoad) {
  const PropertyCase& pc = GetParam();
  auto counts = MakeCounts(pc);
  auto rows = MakeStream(pc, counts, 500);
  UnbiasedSpaceSaving sketch(pc.capacity, 501);
  for (uint64_t item : rows) sketch.Update(item);
  EXPECT_LE(sketch.MinCount() * static_cast<int64_t>(pc.capacity),
            sketch.TotalCount());
}

TEST_P(UssPropertyTest, EstimatesNonNegativeAndBoundedByTotal) {
  const PropertyCase& pc = GetParam();
  auto counts = MakeCounts(pc);
  auto rows = MakeStream(pc, counts, 600);
  UnbiasedSpaceSaving sketch(pc.capacity, 601);
  for (uint64_t item : rows) sketch.Update(item);
  for (const SketchEntry& e : sketch.Entries()) {
    EXPECT_GT(e.count, 0);
    EXPECT_LE(e.count, sketch.TotalCount());
  }
  EXPECT_LE(sketch.size(), pc.capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UssPropertyTest,
    testing::Values(
        PropertyCase{"WeibullPermutedM8", "weibull", 100, 8, Order::kPermuted},
        PropertyCase{"WeibullPermutedM32", "weibull", 100, 32,
                     Order::kPermuted},
        PropertyCase{"WeibullAscendingM8", "weibull", 100, 8,
                     Order::kAscending},
        PropertyCase{"WeibullDescendingM8", "weibull", 100, 8,
                     Order::kDescending},
        PropertyCase{"WeibullTwoHalfM16", "weibull", 100, 16,
                     Order::kTwoHalf},
        PropertyCase{"GeometricPermutedM8", "geometric", 120, 8,
                     Order::kPermuted},
        PropertyCase{"GeometricAscendingM16", "geometric", 120, 16,
                     Order::kAscending},
        PropertyCase{"ZipfPermutedM8", "zipf", 80, 8, Order::kPermuted},
        PropertyCase{"ZipfTwoHalfM8", "zipf", 80, 8, Order::kTwoHalf},
        PropertyCase{"UniformPermutedM8", "uniform", 60, 8, Order::kPermuted},
        PropertyCase{"UniformAscendingM8", "uniform", 60, 8,
                     Order::kAscending}),
    CaseName);

// Capacity sweep: unbiasedness must hold when the sketch is barely 1 bin,
// exactly the distinct count, or larger.
class CapacitySweepTest : public testing::TestWithParam<size_t> {};

TEST_P(CapacitySweepTest, PerItemUnbiasedTinyUniverse) {
  size_t capacity = GetParam();
  std::vector<int64_t> counts{20, 10, 5, 2, 1};
  std::vector<Welford> est(counts.size());
  const int kTrials = test::ScaledTrials(600);
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(700 + static_cast<uint64_t>(t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving sketch(capacity, 90000 + static_cast<uint64_t>(t));
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(sketch.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "capacity " << capacity << " item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweepTest,
                         testing::Values(1, 2, 3, 5, 8),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "M" + std::to_string(info.param);
                         });

// Weight-scale sweep: the weighted sketch's unbiasedness must be scale
// invariant (weights spanning many magnitudes exercise the PPS collapse
// arithmetic differently).
class WeightScaleSweepTest : public testing::TestWithParam<double> {};

TEST_P(WeightScaleSweepTest, WeightedSketchUnbiasedAtScale) {
  const double scale = GetParam();
  const std::vector<double> base{16.0, 8.0, 4.0, 2.0, 1.0, 1.0, 0.5, 0.5};
  std::vector<Welford> est(base.size());
  const int kTrials = test::ScaledTrials(800);
  for (int t = 0; t < kTrials; ++t) {
    Rng order(800 + static_cast<uint64_t>(t));
    std::vector<size_t> idx(base.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    order.Shuffle(idx.data(), idx.size());
    WeightedSpaceSaving sketch(3, 95000 + static_cast<uint64_t>(t));
    for (size_t i : idx) sketch.Update(i, base[i] * scale);
    for (size_t i = 0; i < base.size(); ++i) {
      est[i].Add(sketch.EstimateWeight(i) / scale);
    }
  }
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), base[i], 5 * est[i].stderr_mean() + 0.01)
        << "scale " << scale << " item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, WeightScaleSweepTest,
                         testing::Values(1e-6, 1.0, 1e6),
                         [](const testing::TestParamInfo<double>& info) {
                           if (info.param < 1.0) return std::string("Micro");
                           if (info.param > 1.0) return std::string("Mega");
                           return std::string("Unit");
                         });

// Merge-capacity sweep: the pairwise merge stays unbiased whether the
// target capacity forces heavy reduction (2) or nearly none (16).
class MergeCapacitySweepTest : public testing::TestWithParam<size_t> {};

TEST_P(MergeCapacitySweepTest, MergeUnbiasedAtCapacity) {
  const size_t capacity = GetParam();
  std::vector<int64_t> counts{40, 20, 10, 5, 3, 2, 1, 1};
  std::vector<Welford> est(counts.size());
  const int kTrials = test::ScaledTrials(800);
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(900 + static_cast<uint64_t>(t));
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving a(capacity, 96000 + static_cast<uint64_t>(t));
    UnbiasedSpaceSaving b(capacity, 97000 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < rows.size(); ++i) {
      (i % 2 == 0 ? a : b).Update(rows[i]);
    }
    UnbiasedSpaceSaving merged =
        Merge(a, b, capacity, 98000 + static_cast<uint64_t>(t));
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(merged.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "capacity " << capacity << " item " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(MergeCapacities, MergeCapacitySweepTest,
                         testing::Values(2, 4, 8, 16),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "M" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dsketch
