// Tests for the sharded concurrent front-end: the SPSC queue, routing,
// exactness of totals, determinism despite threading, per-shard
// equivalence with a sequentially-partitioned reference, and the
// statistical contract — Snapshot() subset-sum estimates stay unbiased
// because the hash partition + unbiased merge satisfy Theorem 2.

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "shard/sharded_sketch.h"
#include "shard/spsc_queue.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "test_scale.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(SpscQueueTest, BulkRoundTripSingleThread) {
  SpscQueue<uint64_t> q(100);
  EXPECT_GE(q.capacity(), 100u);
  std::vector<uint64_t> in(70), out(200);
  for (size_t i = 0; i < in.size(); ++i) in[i] = i;
  EXPECT_EQ(q.PushBulk(in.data(), in.size()), in.size());
  EXPECT_EQ(q.PushBulk(in.data(), in.size()), q.capacity() - in.size());
  EXPECT_EQ(q.PopBulk(out.data(), out.size()), q.capacity());
  for (size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.PopBulk(out.data(), out.size()), 0u);
}

TEST(SpscQueueTest, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  SpscQueue<uint64_t> q(256);
  constexpr uint64_t kRows = 200000;
  std::vector<uint64_t> got;
  got.reserve(kRows);
  std::thread consumer([&] {
    uint64_t buf[64];
    while (got.size() < kRows) {
      size_t n = q.PopBulk(buf, 64);
      for (size_t i = 0; i < n; ++i) got.push_back(buf[i]);
      if (n == 0) std::this_thread::yield();
    }
  });
  uint64_t next = 0;
  while (next < kRows) {
    uint64_t buf[64];
    size_t len = 0;
    while (len < 64 && next < kRows) buf[len++] = next++;
    size_t done = 0;
    while (done < len) {
      done += q.PushBulk(buf + done, len - done);
      if (done < len) std::this_thread::yield();
    }
  }
  consumer.join();
  ASSERT_EQ(got.size(), kRows);
  for (uint64_t i = 0; i < kRows; ++i) ASSERT_EQ(got[i], i);
}

ShardedSketchOptions SmallOptions(size_t shards) {
  ShardedSketchOptions opt;
  opt.num_shards = shards;
  opt.shard_capacity = 64;
  opt.queue_capacity = 4096;
  opt.batch_size = 256;
  opt.seed = 11;
  return opt;
}

TEST(ShardedSketchTest, PreservesTotalCountExactly) {
  auto counts = WeibullCounts(500, 40.0, 0.5);
  Rng rng(21);
  auto rows = PermutedStream(counts, rng);

  ShardedSpaceSaving sharded(SmallOptions(4));
  // Ingest in uneven chunks, as a streaming caller would.
  size_t pos = 0;
  while (pos < rows.size()) {
    size_t len = std::min<size_t>(1000, rows.size() - pos);
    sharded.Ingest(Span<const uint64_t>(rows.data() + pos, len));
    pos += len;
  }
  sharded.Flush();

  EXPECT_EQ(sharded.RowsIngested(), static_cast<int64_t>(rows.size()));
  int64_t shard_total = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    shard_total += sharded.shard(s).TotalCount();
  }
  EXPECT_EQ(shard_total, static_cast<int64_t>(rows.size()));

  // The unbiased merge preserves the total exactly as well.
  UnbiasedSpaceSaving merged = sharded.Snapshot(128, 3);
  EXPECT_EQ(merged.TotalCount(), static_cast<int64_t>(rows.size()));
}

TEST(ShardedSketchTest, ShardsMatchSequentiallyPartitionedReference) {
  // Thread timing must not affect per-shard state: each shard sees its
  // partition's rows in stream order, so a single-threaded partition of
  // the same stream into per-shard sketches is bit-for-bit identical.
  auto counts = WeibullCounts(800, 25.0, 0.5);
  Rng rng(31);
  auto rows = PermutedStream(counts, rng);

  ShardedSketchOptions opt = SmallOptions(3);
  ShardedSpaceSaving sharded(opt);
  sharded.Ingest(rows);
  sharded.Flush();

  std::vector<UnbiasedSpaceSaving> reference;
  for (size_t s = 0; s < opt.num_shards; ++s) {
    reference.emplace_back(opt.shard_capacity, opt.seed + s);
  }
  for (uint64_t item : rows) {
    reference[sharded.ShardOf(item)].Update(item);
  }

  for (size_t s = 0; s < opt.num_shards; ++s) {
    auto got = sharded.shard(s).Entries();
    auto want = reference[s].Entries();
    ASSERT_EQ(got.size(), want.size()) << "shard " << s;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].item, want[i].item) << "shard " << s << " entry " << i;
      EXPECT_EQ(got[i].count, want[i].count) << "shard " << s << " entry " << i;
    }
  }
}

TEST(ShardedSketchTest, SnapshotIsDeterministicAcrossRuns) {
  auto counts = WeibullCounts(600, 20.0, 0.5);
  Rng rng(41);
  auto rows = PermutedStream(counts, rng);

  auto run = [&rows] {
    ShardedSpaceSaving sharded(SmallOptions(4));
    sharded.Ingest(rows);
    return sharded.Snapshot(96, 7);
  };
  UnbiasedSpaceSaving a = run();
  UnbiasedSpaceSaving b = run();
  auto ea = a.Entries(), eb = b.Entries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].item, eb[i].item);
    EXPECT_EQ(ea[i].count, eb[i].count);
  }
}

TEST(ShardedSketchTest, RoutingCoversAllShardsAndIsConsistent) {
  ShardedSpaceSaving sharded(SmallOptions(4));
  std::vector<int> hits(4, 0);
  for (uint64_t item = 0; item < 10000; ++item) {
    size_t s = sharded.ShardOf(item);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, sharded.ShardOf(item));  // stable
    ++hits[s];
  }
  for (int h : hits) EXPECT_GT(h, 1500);  // roughly balanced
}

TEST(ShardedSketchTest, SnapshotSubsetSumsStayUnbiased) {
  // Statistical contract: the mean Snapshot() subset-sum estimate over
  // independently-seeded trials must match the true subset sum within a
  // CI (the hash partition is fixed; the randomness is in the per-shard
  // label draws and the merge reduction).
  auto counts = WeibullCounts(300, 50.0, 0.45);
  double truth = 0;
  for (size_t i = 0; i < counts.size(); i += 3) {
    truth += static_cast<double>(counts[i]);
  }
  const int trials = test::ScaledTrials(300);
  Welford est;
  for (int t = 0; t < trials; ++t) {
    Rng rng(50000 + t);
    auto rows = PermutedStream(counts, rng);
    ShardedSketchOptions opt;
    opt.num_shards = 4;
    opt.shard_capacity = 24;
    opt.queue_capacity = 8192;
    opt.batch_size = 512;
    opt.seed = 60000 + static_cast<uint64_t>(t) * 17;
    ShardedSpaceSaving sharded(opt);
    sharded.Ingest(rows);
    UnbiasedSpaceSaving merged =
        sharded.Snapshot(64, 70000 + static_cast<uint64_t>(t));
    est.Add(EstimateSubsetSum(merged, [](uint64_t x) {
              return x % 3 == 0;
            }).estimate);
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(ShardedSketchTest, SerializedSnapshotRoundTripsIntoFreshFleet) {
  // Replication: a fleet's serialized snapshot absorbed by a fresh fleet
  // reproduces the snapshot exactly (no local rows to merge with, and
  // the merge capacity holds every entry, so the reduction is a no-op).
  auto counts = WeibullCounts(300, 30.0, 0.5);
  Rng rng(91);
  auto rows = PermutedStream(counts, rng);
  ShardedSpaceSaving primary(SmallOptions(4));
  primary.Ingest(Span<const uint64_t>(rows.data(), rows.size()));
  primary.Flush();
  std::string blob = primary.SerializeSnapshot(512, 7);

  ShardedSpaceSaving replica(SmallOptions(2));
  ASSERT_TRUE(replica.IngestSerialized(blob));
  EXPECT_EQ(replica.num_absorbed(), 1u);
  UnbiasedSpaceSaving original = primary.Snapshot(512, 7);
  UnbiasedSpaceSaving restored = replica.Snapshot(512, 9);
  EXPECT_EQ(restored.TotalCount(), original.TotalCount());
  for (const SketchEntry& e : original.Entries()) {
    EXPECT_EQ(restored.EstimateCount(e.item), e.count);
  }
}

TEST(ShardedSketchTest, AbsorbedSnapshotMergesWithLocalRows) {
  // Peer replication: fleet B ingests its own rows and absorbs fleet A's
  // snapshot (shipped as v2 bytes and, from a not-yet-upgraded peer, as
  // v1 bytes); the snapshot total covers both streams.
  std::vector<uint64_t> rows_a(4000), rows_b(6000);
  Rng rng(92);
  for (auto& r : rows_a) r = rng.NextBounded(200);
  for (auto& r : rows_b) r = 200 + rng.NextBounded(300);

  ShardedSpaceSaving fleet_a(SmallOptions(2));
  fleet_a.Ingest(Span<const uint64_t>(rows_a.data(), rows_a.size()));
  std::string v2_blob = fleet_a.SerializeSnapshot(256, 3);
  std::string v1_blob = SerializeV1(fleet_a.Snapshot(256, 3));

  ShardedSpaceSaving fleet_b(SmallOptions(3));
  fleet_b.Ingest(Span<const uint64_t>(rows_b.data(), rows_b.size()));
  ASSERT_TRUE(fleet_b.IngestSerialized(v2_blob));
  ASSERT_TRUE(fleet_b.IngestSerialized(v1_blob));
  EXPECT_EQ(fleet_b.num_absorbed(), 2u);

  UnbiasedSpaceSaving merged = fleet_b.Snapshot(1024, 5);
  EXPECT_EQ(merged.TotalCount(),
            static_cast<int64_t>(2 * rows_a.size() + rows_b.size()));
}

TEST(ShardedSketchTest, IngestSerializedRejectsMalformedBytes) {
  ShardedSpaceSaving fleet(SmallOptions(2));
  EXPECT_FALSE(fleet.IngestSerialized("not a sketch"));
  std::string blob = fleet.SerializeSnapshot(64, 1);
  EXPECT_FALSE(
      fleet.IngestSerialized(std::string_view(blob.data(), blob.size() - 1)));
  EXPECT_EQ(fleet.num_absorbed(), 0u);
  EXPECT_TRUE(fleet.IngestSerialized(blob));
  EXPECT_EQ(fleet.num_absorbed(), 1u);
}

// ---------------------------------------------------------------------
// Weighted sharding: (item, weight) rows through the same queues,
// WeightedSpaceSaving shards, ReducePairwiseWeighted merge.
// ---------------------------------------------------------------------

std::vector<WeightedEntry> WeightedRows(size_t n_items, size_t rows_per_item,
                                        uint64_t seed) {
  std::vector<WeightedEntry> rows;
  rows.reserve(n_items * rows_per_item);
  Rng rng(seed);
  for (size_t i = 0; i < n_items; ++i) {
    for (size_t r = 0; r < rows_per_item; ++r) {
      rows.push_back({static_cast<uint64_t>(i), 0.25 + rng.NextDouble()});
    }
  }
  for (size_t i = rows.size(); i > 1; --i) {
    std::swap(rows[i - 1], rows[rng.NextBounded(i)]);
  }
  return rows;
}

TEST(ShardedWeightedSketchTest, PreservesTotalWeight) {
  auto rows = WeightedRows(400, 20, 101);
  double truth = 0.0;
  for (const WeightedEntry& r : rows) truth += r.weight;

  ShardedWeightedSpaceSaving sharded(SmallOptions(4));
  size_t pos = 0;
  while (pos < rows.size()) {
    size_t len = std::min<size_t>(777, rows.size() - pos);
    sharded.Ingest(Span<const WeightedEntry>(rows.data() + pos, len));
    pos += len;
  }
  sharded.Flush();
  EXPECT_EQ(sharded.RowsIngested(), static_cast<int64_t>(rows.size()));

  double shard_total = 0.0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    shard_total += sharded.shard(s).TotalWeight();
  }
  EXPECT_NEAR(shard_total, truth, 1e-6 * truth);

  WeightedSpaceSaving merged = sharded.Snapshot(128, 3);
  EXPECT_NEAR(merged.TotalWeight(), truth, 1e-6 * truth);
}

TEST(ShardedWeightedSketchTest, ShardsMatchSequentiallyPartitionedReference) {
  // Same contract as the unit-row fleet: per-shard state is bit-for-bit
  // the single-threaded partition of the stream (UpdateBatch over
  // (item, weight) rows is pinned identical to per-row Update).
  auto rows = WeightedRows(300, 12, 131);
  ShardedSketchOptions opt = SmallOptions(3);
  ShardedWeightedSpaceSaving sharded(opt);
  sharded.Ingest(rows);
  sharded.Flush();

  std::vector<WeightedSpaceSaving> reference;
  for (size_t s = 0; s < opt.num_shards; ++s) {
    reference.emplace_back(opt.shard_capacity, opt.seed + s);
  }
  for (const WeightedEntry& row : rows) {
    reference[sharded.ShardOf(row.item)].Update(row.item, row.weight);
  }
  for (size_t s = 0; s < opt.num_shards; ++s) {
    auto got = sharded.shard(s).Entries();
    auto want = reference[s].Entries();
    ASSERT_EQ(got.size(), want.size()) << "shard " << s;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].item, want[i].item) << "shard " << s << " entry " << i;
      EXPECT_EQ(got[i].weight, want[i].weight)
          << "shard " << s << " entry " << i;
    }
  }
}

TEST(ShardedWeightedSketchTest, SnapshotSubsetSumsStayUnbiased) {
  // The weighted merge (combine + ReducePairwiseWeighted) is a Theorem-2
  // reduction, so snapshot subset sums stay unbiased across trials.
  const size_t kItems = 300;
  std::vector<double> item_weight(kItems);
  for (size_t i = 0; i < kItems; ++i) {
    item_weight[i] = 0.5 + static_cast<double>(i % 13);
  }
  double truth = 0.0;
  for (size_t i = 0; i < kItems; i += 3) truth += 8 * item_weight[i];

  const int trials = test::ScaledTrials(300);
  Welford est;
  for (int t = 0; t < trials; ++t) {
    std::vector<WeightedEntry> rows;
    for (size_t i = 0; i < kItems; ++i) {
      for (int r = 0; r < 8; ++r) {
        rows.push_back({static_cast<uint64_t>(i), item_weight[i]});
      }
    }
    Rng rng(90000 + t);
    for (size_t i = rows.size(); i > 1; --i) {
      std::swap(rows[i - 1], rows[rng.NextBounded(i)]);
    }
    ShardedSketchOptions opt;
    opt.num_shards = 4;
    opt.shard_capacity = 24;
    opt.queue_capacity = 8192;
    opt.batch_size = 512;
    opt.seed = 91000 + static_cast<uint64_t>(t) * 13;
    ShardedWeightedSpaceSaving sharded(opt);
    sharded.Ingest(rows);
    WeightedSpaceSaving merged =
        sharded.Snapshot(64, 92000 + static_cast<uint64_t>(t));
    est.Add(EstimateSubsetSum(merged, [](uint64_t x) {
              return x % 3 == 0;
            }).estimate);
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(ShardedWeightedSketchTest, SerializedSnapshotRoundTripsIntoFreshFleet) {
  auto rows = WeightedRows(200, 15, 171);
  ShardedWeightedSpaceSaving primary(SmallOptions(3));
  primary.Ingest(rows);
  primary.Flush();
  std::string blob = primary.SerializeSnapshot(256, 7);

  ShardedWeightedSpaceSaving replica(SmallOptions(2));
  ASSERT_TRUE(replica.IngestSerialized(blob));
  EXPECT_FALSE(replica.IngestSerialized("junk"));
  EXPECT_EQ(replica.num_absorbed(), 1u);
  WeightedSpaceSaving original = primary.Snapshot(256, 7);
  WeightedSpaceSaving restored = replica.Snapshot(256, 9);
  EXPECT_NEAR(restored.TotalWeight(), original.TotalWeight(),
              1e-9 * original.TotalWeight());
  for (const WeightedEntry& e : original.Entries()) {
    EXPECT_DOUBLE_EQ(restored.EstimateWeight(e.item), e.weight);
  }
}

}  // namespace
}  // namespace dsketch
