// Tests for core/distributed: sharded sketching with an unbiased
// reducer-side combine (paper §5.5 map-reduce deployment).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distributed.h"
#include "core/serialization.h"
#include "stats/welford.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(ShardedSketcherTest, RoutingCoversAllShards) {
  ShardedSketcher sharded(4, 32, 1);
  for (uint64_t i = 0; i < 10000; ++i) sharded.Update(i);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_GT(sharded.shard(s).TotalCount(), 0);
  }
  EXPECT_EQ(sharded.TotalCount(), 10000);
}

TEST(ShardedSketcherTest, HashRoutingIsConsistent) {
  // The same item must always land on the same shard: per-shard counts of
  // a repeated item live in exactly one shard.
  ShardedSketcher sharded(8, 16, 2);
  for (int i = 0; i < 1000; ++i) sharded.Update(42);
  int shards_with_item = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    if (sharded.shard(s).Contains(42)) ++shards_with_item;
  }
  EXPECT_EQ(shards_with_item, 1);
}

TEST(ShardedSketcherTest, CombinePreservesTotal) {
  ShardedSketcher sharded(5, 16, 3);
  Rng rng(170);
  for (int i = 0; i < 20000; ++i) sharded.Update(rng.NextBounded(400));
  UnbiasedSpaceSaving combined = sharded.Combine(32, 4);
  EXPECT_EQ(combined.TotalCount(), 20000);
  EXPECT_LE(combined.size(), 32u);
}

TEST(ShardedSketcherTest, CombinedEstimatesAreUnbiased) {
  std::vector<int64_t> counts{100, 50, 20, 10, 5, 5, 3, 2, 2, 1, 1, 1};
  std::vector<Welford> est(counts.size());
  const int kTrials = 8000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(240000 + t);
    auto rows = PermutedStream(counts, rng);
    ShardedSketcher sharded(4, 4, 250000 + t);
    // Round-robin partitioning (worst case: shards see different mixes).
    for (size_t i = 0; i < rows.size(); ++i) {
      sharded.UpdateShard(i % 4, rows[i]);
    }
    UnbiasedSpaceSaving combined = sharded.Combine(6, 260000 + t);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(combined.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.1)
        << "item " << i;
  }
}

TEST(ShardedSketcherTest, HeavyHitterSurvivesCombine) {
  ShardedSketcher sharded(4, 16, 5);
  for (int i = 0; i < 10000; ++i) sharded.Update(7);
  Rng rng(171);
  for (int i = 0; i < 2000; ++i) sharded.Update(100 + rng.NextBounded(1000));
  UnbiasedSpaceSaving combined = sharded.Combine(16, 6);
  EXPECT_TRUE(combined.Contains(7));
  EXPECT_GT(combined.EstimateCount(7), 9000);
}

TEST(ShardedSketcherTest, ExplicitShardRouting) {
  ShardedSketcher sharded(3, 8, 7);
  sharded.UpdateShard(0, 1);
  sharded.UpdateShard(1, 1);
  sharded.UpdateShard(2, 1);
  EXPECT_EQ(sharded.shard(0).EstimateCount(1), 1);
  EXPECT_EQ(sharded.shard(1).EstimateCount(1), 1);
  EXPECT_EQ(sharded.shard(2).EstimateCount(1), 1);
  UnbiasedSpaceSaving combined = sharded.Combine(8, 8);
  EXPECT_EQ(combined.EstimateCount(1), 3);
}

TEST(ShardedSketcherTest, CombineSerializedAcceptsMixedWireVersions) {
  // Rolling-upgrade reduce: two mappers ship v2 blobs, one still ships
  // v1. With shard capacity >= per-shard distinct items and reducer
  // capacity >= the combined entry count, no reduction happens, so the
  // network combine must match the in-process Combine exactly.
  ShardedSketcher fleet(3, 64, 5);
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) fleet.Update(rng.NextBounded(150));

  std::vector<std::string> blobs = fleet.SerializeShards();
  ASSERT_EQ(blobs.size(), 3u);
  blobs[0] = SerializeV1(fleet.shard(0));  // the not-yet-upgraded mapper

  std::optional<UnbiasedSpaceSaving> combined =
      CombineSerialized(blobs, 256, 6);
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(combined->TotalCount(), fleet.TotalCount());
  UnbiasedSpaceSaving reference = fleet.Combine(256, 6);
  for (const SketchEntry& e : reference.Entries()) {
    EXPECT_EQ(combined->EstimateCount(e.item), e.count);
  }

  // One malformed blob poisons the whole reduce (no partial merges).
  blobs[1].resize(blobs[1].size() / 2);
  EXPECT_FALSE(CombineSerialized(blobs, 256, 6).has_value());
}

}  // namespace
}  // namespace dsketch
