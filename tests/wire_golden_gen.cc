// Regenerates the checked-in v1 golden fixtures:
//
//   ./wire_golden_gen <output_dir>
//
// Run only when intentionally re-pinning the legacy wire contract (the
// fixtures exist to catch accidental drift, so regeneration should be a
// deliberate, reviewed act); wire_compat_test verifies the checked-in
// bytes against the recipes in wire_golden_common.h.

#include <cstdio>
#include <fstream>
#include <string>

#include "wire_golden_common.h"

namespace dsketch {
namespace {

int WriteFixture(const std::string& dir, const char* name,
                 const std::string& bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  std::printf("%s: %zu bytes\n", path.c_str(), bytes.size());
  return 0;
}

int Run(const std::string& dir) {
  int failures = 0;
  failures += WriteFixture(dir, golden::kFixtureNames[0],
                           SerializeV1(golden::Unbiased()));
  failures += WriteFixture(dir, golden::kFixtureNames[1],
                           SerializeV1(golden::Deterministic()));
  failures += WriteFixture(dir, golden::kFixtureNames[2],
                           SerializeV1(golden::Weighted()));
  failures += WriteFixture(dir, golden::kFixtureNames[3],
                           SerializeV1(golden::MultiMetric()));
  failures += WriteFixture(dir, golden::kFixtureNames[4],
                           SerializeV1(golden::MisraGriesSketch()));
  failures += WriteFixture(dir, golden::kFixtureNames[5],
                           SerializeV1(golden::CountMinSketch()));
  failures += WriteFixture(dir, golden::kWindowedFixtureName,
                           SerializeWindowed(golden::Windowed()));
  failures += WriteFixture(dir, golden::kFrozenFixtureName,
                           SerializeFrozen(golden::Unbiased()));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dsketch

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output_dir>\n", argv[0]);
    return 2;
  }
  return dsketch::Run(argv[1]);
}
