// Tests for stream/: count distributions, row-stream generators, and the
// synthetic ad-click workload.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stream/ad_click.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(WeibullCountsTest, AscendingAndNonNegative) {
  auto counts = WeibullCounts(1000, 5e5, 0.15);
  ASSERT_EQ(counts.size(), 1000u);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i - 1], counts[i]);
  }
  EXPECT_GE(counts.front(), 0);
  EXPECT_GT(counts.back(), 0);
}

TEST(WeibullCountsTest, ShapeControlsSkew) {
  auto light = WeibullCounts(1000, 1000.0, 1.0);
  auto heavy = WeibullCounts(1000, 1000.0, 0.2);
  // Heavier tail => larger max/median ratio.
  double light_ratio =
      static_cast<double>(light.back()) / static_cast<double>(light[500] + 1);
  double heavy_ratio =
      static_cast<double>(heavy.back()) / static_cast<double>(heavy[500] + 1);
  EXPECT_GT(heavy_ratio, 10 * light_ratio);
}

TEST(GeometricCountsTest, MatchesInverseCdf) {
  auto counts = GeometricCounts(4, 0.5);
  // u = .125,.375,.625,.875 -> floor(log(1-u)/log(.5)) = 0,0,1,3
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 3);
}

TEST(ZipfCountsTest, MaxAtLastIndex) {
  auto counts = ZipfCounts(100, 1.0, 1000);
  EXPECT_EQ(counts.back(), 1000);
  EXPECT_EQ(counts.front(), 10);  // 1000/100
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i - 1], counts[i]);
  }
}

TEST(ScaleCountsToTotalTest, HitsTargetApproximately) {
  auto counts = WeibullCounts(500, 1e4, 0.3);
  auto scaled = ScaleCountsToTotal(counts, 100000);
  int64_t total = TotalCount(scaled);
  EXPECT_NEAR(static_cast<double>(total), 1e5, 0.02 * 1e5);
  // Present items stay present.
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(scaled[i] > 0, counts[i] > 0);
  }
}

TEST(ExpandRowsTest, MultisetMatchesCounts) {
  std::vector<int64_t> counts{2, 0, 3};
  auto rows = ExpandRows(counts);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(std::count(rows.begin(), rows.end(), 0u), 2);
  EXPECT_EQ(std::count(rows.begin(), rows.end(), 1u), 0);
  EXPECT_EQ(std::count(rows.begin(), rows.end(), 2u), 3);
}

TEST(PermutedStreamTest, PreservesMultiset) {
  std::vector<int64_t> counts{5, 1, 7, 0, 2};
  Rng rng(60);
  auto rows = PermutedStream(counts, rng);
  ASSERT_EQ(rows.size(), 15u);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(std::count(rows.begin(), rows.end(), i),
              counts[i]);
  }
}

TEST(SortedStreamTest, AscendingGroupsByFrequency) {
  std::vector<int64_t> counts{3, 1, 2};
  auto rows = SortedStream(counts, /*ascending=*/true);
  // Items in frequency order: 1 (count 1), 2 (count 2), 0 (count 3).
  std::vector<uint64_t> expected{1, 2, 2, 0, 0, 0};
  EXPECT_EQ(rows, expected);
}

TEST(SortedStreamTest, DescendingReverses) {
  std::vector<int64_t> counts{3, 1, 2};
  auto rows = SortedStream(counts, /*ascending=*/false);
  std::vector<uint64_t> expected{0, 0, 0, 2, 2, 1};
  EXPECT_EQ(rows, expected);
}

TEST(TwoHalfStreamTest, HalvesDoNotMix) {
  std::vector<int64_t> first{2, 2};
  std::vector<int64_t> second{3};
  Rng rng(61);
  auto rows = TwoHalfStream(first, second, rng);
  ASSERT_EQ(rows.size(), 7u);
  for (size_t i = 0; i < 4; ++i) EXPECT_LT(rows[i], 2u);
  for (size_t i = 4; i < 7; ++i) EXPECT_EQ(rows[i], 2u);
}

TEST(AdversarialWipeoutStreamTest, StructureMatchesTheorem11) {
  std::vector<int64_t> counts{2, 3};  // total 5
  auto rows = AdversarialWipeoutStream(counts, 100);
  ASSERT_EQ(rows.size(), 10u);
  // Most frequent first: item 1 three times, then item 0 twice.
  std::vector<uint64_t> head{1, 1, 1, 0, 0};
  for (size_t i = 0; i < head.size(); ++i) EXPECT_EQ(rows[i], head[i]);
  // Then 5 fresh distinct items.
  std::set<uint64_t> fresh(rows.begin() + 5, rows.end());
  EXPECT_EQ(fresh.size(), 5u);
  for (uint64_t f : fresh) EXPECT_GE(f, 100u);
}

TEST(BurstyStreamTest, PeriodsAlternate) {
  auto rows = BurstyStream(/*burst_item=*/7, /*burst_length=*/2,
                           /*quiet_length=*/3, /*periods=*/2,
                           /*fresh_start_id=*/100);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0], 7u);
  EXPECT_EQ(rows[1], 7u);
  EXPECT_EQ(rows[2], 100u);
  EXPECT_EQ(rows[4], 102u);
  EXPECT_EQ(rows[5], 7u);
  EXPECT_EQ(rows[9], 105u);
}

TEST(DistinctStreamTest, AllDistinct) {
  auto rows = DistinctStream(100, 5);
  std::set<uint64_t> s(rows.begin(), rows.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 5u);
}

TEST(UrnStreamTest, DrawsSameMultisetAsExpand) {
  std::vector<int64_t> counts{4, 0, 1, 3};
  UrnStream stream(counts, 62);
  std::vector<int64_t> seen(counts.size(), 0);
  uint64_t item;
  while (stream.Next(&item)) ++seen[item];
  for (size_t i = 0; i < counts.size(); ++i) EXPECT_EQ(seen[i], counts[i]);
  EXPECT_FALSE(stream.Next(&item));
}

TEST(AdClickGeneratorTest, LogMatchesPerAdCounts) {
  AdClickConfig cfg;
  cfg.num_ads = 200;
  cfg.weibull_scale = 10.0;
  AdClickGenerator gen(cfg, 63);
  auto log = gen.GenerateLog(/*shuffled=*/true, 64);
  EXPECT_EQ(static_cast<int64_t>(log.size()), gen.total_impressions());

  std::vector<int64_t> imp(cfg.num_ads, 0), clk(cfg.num_ads, 0);
  for (const AdImpression& row : log) {
    ++imp[row.ad_id];
    if (row.click) ++clk[row.ad_id];
  }
  for (size_t ad = 0; ad < cfg.num_ads; ++ad) {
    EXPECT_EQ(imp[ad], gen.impressions_per_ad()[ad]);
    EXPECT_EQ(clk[ad], gen.clicks_per_ad()[ad]);
  }
}

TEST(AdClickGeneratorTest, AttributesCoverAllAds) {
  AdClickConfig cfg;
  cfg.num_ads = 100;
  cfg.num_features = 4;
  cfg.feature_cardinality = 8;
  AdClickGenerator gen(cfg, 65);
  EXPECT_EQ(gen.attributes().num_items(), 100u);
  EXPECT_EQ(gen.attributes().num_dims(), 4u);
  for (size_t ad = 0; ad < 100; ++ad) {
    for (size_t f = 0; f < 4; ++f) {
      EXPECT_LT(gen.attributes().Get(ad, f), 8u);
    }
  }
}

TEST(AdClickGeneratorTest, UnshuffledLogIsBlocked) {
  AdClickConfig cfg;
  cfg.num_ads = 50;
  cfg.weibull_scale = 20.0;
  AdClickGenerator gen(cfg, 66);
  auto log = gen.GenerateLog(/*shuffled=*/false, 0);
  // Ads appear in contiguous blocks: ad ids are non-decreasing.
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].ad_id, log[i].ad_id);
  }
}

TEST(AdClickGeneratorTest, CtrIsNearBase) {
  AdClickConfig cfg;
  cfg.num_ads = 2000;
  cfg.weibull_scale = 30.0;
  cfg.base_ctr = 0.05;
  AdClickGenerator gen(cfg, 67);
  int64_t clicks = 0;
  for (int64_t c : gen.clicks_per_ad()) clicks += c;
  double ctr = static_cast<double>(clicks) /
               static_cast<double>(gen.total_impressions());
  // Lognormal jitter with sigma 0.5 inflates the mean by exp(0.125)~1.13.
  EXPECT_GT(ctr, 0.02);
  EXPECT_LT(ctr, 0.12);
}

}  // namespace
}  // namespace dsketch
