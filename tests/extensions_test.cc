// Tests for the §5.3 extension modules: the classic linked-list stream
// summary engine (cross-validated against the array engine), the
// multi-metric sketch (per-metric unbiasedness), signed Misra-Gries
// (deletions, two-sided threshold guarantee), and the adaptive-size
// sketch (floating memory, unbiasedness, hard bounds).

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_size_space_saving.h"
#include "core/multi_metric_space_saving.h"
#include "core/space_saving_core.h"
#include "core/stream_summary_list.h"
#include "frequency/signed_misra_gries.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

// ---------------------------------------------------------------- list ---

TEST(StreamSummaryListTest, ExactWhileDistinctItemsFit) {
  StreamSummaryList list(8, LabelPolicy::kDeterministic, 1);
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t i = 0; i < 8; ++i) {
      for (uint64_t j = 0; j <= i; ++j) list.Update(i);
    }
  }
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(list.EstimateCount(i), static_cast<int64_t>(3 * (i + 1)));
  }
  EXPECT_EQ(list.size(), 8u);
}

TEST(StreamSummaryListTest, TotalPreservedExactly) {
  for (LabelPolicy policy :
       {LabelPolicy::kDeterministic, LabelPolicy::kUnbiased}) {
    StreamSummaryList list(16, policy, 2);
    Rng rng(210);
    for (int i = 0; i < 20000; ++i) list.Update(rng.NextBounded(300));
    int64_t sum = 0;
    for (const SketchEntry& e : list.Entries()) sum += e.count;
    EXPECT_EQ(sum, 20000);
    EXPECT_EQ(list.TotalCount(), 20000);
  }
}

TEST(StreamSummaryListTest, EntriesSortedDescending) {
  StreamSummaryList list(32, LabelPolicy::kDeterministic, 3);
  Rng rng(211);
  for (int i = 0; i < 10000; ++i) list.Update(rng.NextBounded(1000));
  auto entries = list.Entries();
  EXPECT_EQ(entries.size(), 32u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].count, entries[i].count);
  }
}

TEST(StreamSummaryListTest, DeterministicPolicyMatchesArrayEngine) {
  // Both engines with deterministic policy and first-slot... the engines
  // may pick different tie-break bins, but the *count multiset* of a
  // deterministic Space Saving sketch is tie-break invariant (it equals
  // the Misra-Gries projection plus the min count). Compare multisets.
  StreamSummaryList list(12, LabelPolicy::kDeterministic, 4);
  SpaceSavingCore core(12, LabelPolicy::kDeterministic, 5);
  Rng rng(212);
  for (int i = 0; i < 30000; ++i) {
    uint64_t item = rng.NextBounded(200);
    list.Update(item);
    core.Update(item);
  }
  std::vector<int64_t> list_counts, core_counts;
  for (const SketchEntry& e : list.Entries()) list_counts.push_back(e.count);
  for (const SketchEntry& e : core.Entries()) core_counts.push_back(e.count);
  EXPECT_EQ(list_counts, core_counts);
  EXPECT_EQ(list.MinCount(), core.MinCount());
}

TEST(StreamSummaryListTest, UnbiasedPolicyIsUnbiased) {
  std::vector<int64_t> counts{40, 20, 10, 5, 3, 2, 1, 1};
  std::vector<Welford> est(counts.size());
  for (int t = 0; t < 8000; ++t) {
    Rng rng(430000 + t);
    auto rows = PermutedStream(counts, rng);
    StreamSummaryList list(4, LabelPolicy::kUnbiased,
                           static_cast<uint64_t>(440000 + t));
    for (uint64_t item : rows) list.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(list.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(StreamSummaryListTest, MinCountZeroUntilFull) {
  StreamSummaryList list(4, LabelPolicy::kUnbiased, 6);
  list.Update(1);
  list.Update(2);
  EXPECT_EQ(list.MinCount(), 0);
  list.Update(3);
  list.Update(4);
  EXPECT_EQ(list.MinCount(), 1);
}

// ---------------------------------------------------------- multi-metric ---

TEST(MultiMetricTest, ExactWhileUnderCapacity) {
  MultiMetricSpaceSaving sketch(8, 2, 1);
  sketch.Update(1, 1.0, {1.0, 0.5});
  sketch.Update(1, 1.0, {0.0, 0.5});
  sketch.Update(2, 3.0, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(sketch.EstimatePrimary(1), 2.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateMetric(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateMetric(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateMetric(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.TotalPrimary(), 5.0);
}

TEST(MultiMetricTest, PrimaryTotalPreserved) {
  MultiMetricSpaceSaving sketch(16, 1, 2);
  Rng rng(213);
  double total = 0;
  for (int i = 0; i < 10000; ++i) {
    double w = 0.5 + rng.NextDouble();
    sketch.Update(rng.NextBounded(300), w, {1.0});
    total += w;
  }
  double bin_sum = 0;
  for (const auto& b : sketch.bins()) bin_sum += b.primary;
  EXPECT_NEAR(bin_sum, total, 1e-6 * total);
}

TEST(MultiMetricTest, AuxiliaryMetricsAreUnbiased) {
  // Clicks ride along with impressions: per-item click estimates must be
  // unbiased even though clicks never drive the sampling.
  std::vector<int64_t> impressions{50, 25, 10, 5, 4, 3, 2, 1};
  std::vector<double> ctr{0.5, 0.1, 0.8, 0.2, 1.0, 0.5, 0.1, 1.0};
  std::vector<Welford> click_est(impressions.size());
  for (int t = 0; t < 20000; ++t) {
    Rng rng(450000 + t);
    auto rows = PermutedStream(impressions, rng);
    MultiMetricSpaceSaving sketch(4, 1, 460000 + t);
    std::vector<double> true_clicks(impressions.size(), 0.0);
    for (uint64_t item : rows) {
      double click = rng.NextBernoulli(ctr[item]) ? 1.0 : 0.0;
      true_clicks[item] += click;
      sketch.Update(item, 1.0, {click});
    }
    for (size_t i = 0; i < impressions.size(); ++i) {
      // Deviation from the realized clicks of this trial.
      click_est[i].Add(sketch.EstimateMetric(i, 0) - true_clicks[i]);
    }
  }
  for (size_t i = 0; i < impressions.size(); ++i) {
    EXPECT_NEAR(click_est[i].mean(), 0.0,
                5 * click_est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(MultiMetricTest, SingleMetricOverload) {
  MultiMetricSpaceSaving sketch(4, 3, 3);
  sketch.Update(9, 2.0, 7.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateMetric(9, 0), 7.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateMetric(9, 1), 0.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateMetric(9, 2), 0.0);
}

TEST(MultiMetricTest, HeavyPrimaryRetainsItsMetrics) {
  MultiMetricSpaceSaving sketch(2, 1, 4);
  for (int i = 0; i < 1000; ++i) sketch.Update(1, 10.0, {2.0});
  for (uint64_t noise = 100; noise < 150; ++noise) {
    sketch.Update(noise, 0.01, {1.0});
  }
  EXPECT_GE(sketch.EstimatePrimary(1), 10000.0);
  // The heavy bin is essentially never collapsed away, so its metric
  // accumulator stays near-exact.
  EXPECT_NEAR(sketch.EstimateMetric(1, 0), 2000.0, 100.0);
}

// ------------------------------------------------------------- signed MG ---

TEST(SignedMisraGriesTest, ExactWithoutOverflow) {
  SignedMisraGries mg(10);
  mg.Update(1, 5);
  mg.Update(2, -3);
  mg.Update(1, -2);
  EXPECT_EQ(mg.EstimateValue(1), 3);
  EXPECT_EQ(mg.EstimateValue(2), -3);
  EXPECT_EQ(mg.NetTotal(), 0);
  EXPECT_EQ(mg.error_bound(), 0);
}

TEST(SignedMisraGriesTest, ExactCancellationRemovesCounter) {
  SignedMisraGries mg(4);
  mg.Update(7, 10);
  mg.Update(7, -10);
  EXPECT_FALSE(mg.Contains(7));
  EXPECT_EQ(mg.EstimateValue(7), 0);
}

TEST(SignedMisraGriesTest, ErrorBoundHolds) {
  SignedMisraGries mg(16);
  std::unordered_map<uint64_t, int64_t> truth;
  Rng rng(214);
  for (int i = 0; i < 30000; ++i) {
    uint64_t item = rng.NextBounded(400);
    int64_t delta = rng.NextBernoulli(0.7) ? 1 : -1;
    // Heavy head: a few items get large positive drift.
    if (item < 5) delta = 3;
    truth[item] += delta;
    if (delta != 0) mg.Update(item, delta);
  }
  int64_t bound = mg.error_bound();
  EXPECT_GT(bound, 0);
  for (const auto& [item, value] : truth) {
    EXPECT_LE(std::llabs(mg.EstimateValue(item) - value), bound)
        << "item " << item;
  }
}

TEST(SignedMisraGriesTest, ShrinksTowardZeroBothSides) {
  SignedMisraGries mg(16);
  Rng rng(215);
  for (int i = 0; i < 30000; ++i) {
    uint64_t item = rng.NextBounded(400);
    mg.Update(item, item % 2 == 0 ? 1 : -1);
  }
  // Estimates are magnitude-shrunk: |est| <= |truth| cannot be asserted
  // per item without truth tracking, but signs must be consistent with
  // two-sided shrinkage: no estimate may exceed the true extreme range.
  for (const SketchEntry& e : mg.Entries()) {
    EXPECT_NE(e.count, 0);
  }
  EXPECT_LE(mg.size(), 2 * mg.capacity() + 1);
}

TEST(SignedMisraGriesTest, HeavySurvivorsKeepSign) {
  SignedMisraGries mg(8);
  for (int i = 0; i < 5000; ++i) mg.Update(1, 2);
  for (int i = 0; i < 5000; ++i) mg.Update(2, -2);
  Rng rng(216);
  for (int i = 0; i < 5000; ++i) {
    mg.Update(100 + rng.NextBounded(500), rng.NextBernoulli(0.5) ? 1 : -1);
  }
  EXPECT_GT(mg.EstimateValue(1), 0);
  EXPECT_LT(mg.EstimateValue(2), 0);
}

// ----------------------------------------------------------- adaptive ---

TEST(AdaptiveSizeTest, StaysWithinBounds) {
  AdaptiveSizeSpaceSaving sketch(16, 256, 0.01, 1);
  Rng rng(217);
  for (int i = 0; i < 50000; ++i) {
    sketch.Update(rng.NextBounded(5000));
    EXPECT_LE(sketch.size(), 256u);
  }
  EXPECT_GE(sketch.size(), 16u);
}

TEST(AdaptiveSizeTest, TotalPreservedExactly) {
  AdaptiveSizeSpaceSaving sketch(8, 64, 0.02, 2);
  Rng rng(218);
  for (int i = 0; i < 20000; ++i) sketch.Update(rng.NextBounded(1000));
  int64_t sum = 0;
  for (const SketchEntry& e : sketch.Entries()) sum += e.count;
  EXPECT_EQ(sum, 20000);
  EXPECT_EQ(sketch.TotalCount(), 20000);
}

TEST(AdaptiveSizeTest, EstimatesAreUnbiased) {
  std::vector<int64_t> counts{60, 30, 12, 6, 4, 3, 2, 2, 1, 1};
  std::vector<Welford> est(counts.size());
  for (int t = 0; t < 8000; ++t) {
    Rng rng(470000 + t);
    auto rows = PermutedStream(counts, rng);
    AdaptiveSizeSpaceSaving sketch(2, 6, 0.05,
                                   static_cast<uint64_t>(480000 + t));
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(sketch.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(AdaptiveSizeTest, FlatStreamOscillatesWithinBounds) {
  // All-light streams cycle between the high-water mark (which triggers a
  // reduction) and the floor (where reductions stop).
  AdaptiveSizeSpaceSaving flat(16, 512, 0.01, 4);
  size_t max_seen = 0, min_seen_after_fill = 512;
  for (int i = 0; i < 100000; ++i) {
    flat.Update(static_cast<uint64_t>(i % 50000));
    max_seen = std::max(max_seen, flat.size());
    if (i > 1000) min_seen_after_fill = std::min(min_seen_after_fill, flat.size());
  }
  EXPECT_LE(max_seen, 512u);
  EXPECT_GE(max_seen, 500u);  // actually reaches the high-water mark
  // Reductions sweep the light mass into ~1/error_target aggregate bins.
  EXPECT_LE(min_seen_after_fill, 200u);
  EXPECT_GE(flat.size(), 16u);
}

TEST(AdaptiveSizeTest, OnlyLightBinsAreMergedAboveFloor) {
  AdaptiveSizeSpaceSaving sketch(4, 32, 0.05, 5);
  // Three very heavy items plus light noise.
  for (int i = 0; i < 3000; ++i) sketch.Update(i % 3);
  Rng rng(219);
  for (int i = 0; i < 2000; ++i) sketch.Update(100 + rng.NextBounded(2000));
  // Heavy items exceed 5% of total each and must all be present.
  for (uint64_t h = 0; h < 3; ++h) {
    EXPECT_TRUE(sketch.Contains(h));
    EXPECT_GE(sketch.EstimateCount(h), 1000);
  }
}

}  // namespace
}  // namespace dsketch
