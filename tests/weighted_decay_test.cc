// Tests for the §5.3 generalizations: weighted Unbiased Space Saving
// (arbitrary positive weights, heap-backed PPS reduction) and forward-
// decay time-decayed aggregation.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/decayed_space_saving.h"
#include "core/weighted_space_saving.h"
#include "stats/welford.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(WeightedSpaceSavingTest, ExactWhileUnderCapacity) {
  WeightedSpaceSaving sketch(8, 1);
  sketch.Update(1, 2.5);
  sketch.Update(2, 4.0);
  sketch.Update(1, 0.5);
  EXPECT_DOUBLE_EQ(sketch.EstimateWeight(1), 3.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateWeight(2), 4.0);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(), 7.0);
  EXPECT_EQ(sketch.MinWeight(), 0.0);  // not yet full
}

TEST(WeightedSpaceSavingTest, TotalWeightPreserved) {
  WeightedSpaceSaving sketch(16, 2);
  Rng rng(160);
  double total = 0;
  for (int i = 0; i < 20000; ++i) {
    double w = 0.1 + rng.NextDouble() * 10;
    sketch.Update(rng.NextBounded(500), w);
    total += w;
  }
  double bin_sum = 0;
  for (const auto& e : sketch.Entries()) bin_sum += e.weight;
  EXPECT_NEAR(bin_sum, total, 1e-6 * total);
  EXPECT_NEAR(sketch.TotalWeight(), total, 1e-6 * total);
}

TEST(WeightedSpaceSavingTest, UnitWeightsAreUnbiased) {
  std::vector<int64_t> counts{50, 25, 10, 5, 4, 3, 2, 1, 1, 1};
  std::vector<Welford> est(counts.size());
  for (int t = 0; t < 10000; ++t) {
    Rng rng(200000 + t);
    auto rows = PermutedStream(counts, rng);
    WeightedSpaceSaving sketch(4, 210000 + t);
    for (uint64_t item : rows) sketch.Update(item, 1.0);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(sketch.EstimateWeight(i));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(WeightedSpaceSavingTest, RealWeightsAreUnbiased) {
  // Items with fractional weights; per-item totals must be preserved in
  // expectation under the PPS collapse.
  const std::vector<double> weights{12.5, 6.25, 3.0, 1.5, 0.75,
                                    0.6,  0.4,  0.3, 0.2, 0.1};
  std::vector<Welford> est(weights.size());
  for (int t = 0; t < 20000; ++t) {
    Rng order_rng(220000 + t);
    std::vector<size_t> order(weights.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    order_rng.Shuffle(order.data(), order.size());

    WeightedSpaceSaving sketch(4, 230000 + t);
    for (size_t idx : order) sketch.Update(idx, weights[idx]);
    for (size_t i = 0; i < weights.size(); ++i) {
      est[i].Add(sketch.EstimateWeight(i));
    }
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), weights[i], 5 * est[i].stderr_mean() + 0.01)
        << "item " << i;
  }
}

TEST(WeightedSpaceSavingTest, HeavyWeightNeverDisplacedIncorrectly) {
  WeightedSpaceSaving sketch(2, 3);
  sketch.Update(1, 1e6);
  for (int i = 0; i < 1000; ++i) {
    sketch.Update(static_cast<uint64_t>(10 + i), 0.001);
  }
  EXPECT_TRUE(sketch.Contains(1));
  EXPECT_GE(sketch.EstimateWeight(1), 1e6);
}

TEST(WeightedSpaceSavingTest, ScaleMultipliesEverything) {
  WeightedSpaceSaving sketch(4, 4);
  sketch.Update(1, 2.0);
  sketch.Update(2, 3.0);
  sketch.Scale(0.5);
  EXPECT_DOUBLE_EQ(sketch.EstimateWeight(1), 1.0);
  EXPECT_DOUBLE_EQ(sketch.EstimateWeight(2), 1.5);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(), 2.5);
}

TEST(WeightedSpaceSavingTest, LoadEntriesRebuildsHeap) {
  WeightedSpaceSaving sketch(4, 5);
  sketch.LoadEntries({{1, 5.0}, {2, 1.0}, {3, 3.0}});
  EXPECT_DOUBLE_EQ(sketch.EstimateWeight(2), 1.0);
  auto entries = sketch.Entries();
  EXPECT_EQ(entries[0].item, 1u);
  // Continue updating: the heap invariant must hold.
  sketch.Update(4, 2.0);
  sketch.Update(5, 10.0);  // forces a collapse
  double total = 0;
  for (const auto& e : sketch.Entries()) total += e.weight;
  EXPECT_NEAR(total, 21.0, 1e-9);
}

TEST(WeightedSpaceSavingTest, SubsetSumWithVariance) {
  WeightedSpaceSaving sketch(4, 6);
  sketch.LoadEntries({{1, 10.0}, {2, 20.0}, {3, 30.0}, {4, 40.0}});
  auto est = EstimateSubsetSum(sketch, [](uint64_t x) { return x <= 2; });
  EXPECT_DOUBLE_EQ(est.estimate, 30.0);
  EXPECT_EQ(est.items_in_sample, 2u);
  EXPECT_DOUBLE_EQ(est.variance, 10.0 * 10.0 * 2);
}

TEST(DecayedSpaceSavingTest, NoDecayAtQueryTimeOfLastUpdate) {
  DecayedSpaceSaving sketch(8, /*half_life=*/100.0, 1);
  sketch.Update(1, 0.0);
  sketch.Update(1, 0.0);
  EXPECT_NEAR(sketch.EstimateDecayedCount(1, 0.0), 2.0, 1e-12);
}

TEST(DecayedSpaceSavingTest, HalfLifeHalvesOldRows) {
  DecayedSpaceSaving sketch(8, /*half_life=*/10.0, 2);
  sketch.Update(1, 0.0);
  // A row observed at t=0 queried at t=10 contributes 1/2.
  EXPECT_NEAR(sketch.EstimateDecayedCount(1, 10.0), 0.5, 1e-9);
  EXPECT_NEAR(sketch.EstimateDecayedCount(1, 20.0), 0.25, 1e-9);
}

TEST(DecayedSpaceSavingTest, RecentRowsDominate) {
  DecayedSpaceSaving sketch(4, /*half_life=*/5.0, 3);
  // Item 1: 100 old rows; item 2: 10 recent rows.
  for (int i = 0; i < 100; ++i) sketch.Update(1, 0.0);
  for (int i = 0; i < 10; ++i) sketch.Update(2, 100.0);
  double w1 = sketch.EstimateDecayedCount(1, 100.0);
  double w2 = sketch.EstimateDecayedCount(2, 100.0);
  EXPECT_LT(w1, 0.01);  // 100 * 2^-20
  EXPECT_NEAR(w2, 10.0, 1e-6);
}

TEST(DecayedSpaceSavingTest, TotalDecayedWeightPreserved) {
  DecayedSpaceSaving sketch(16, /*half_life=*/50.0, 4);
  Rng rng(161);
  // Compute the exact decayed total independently.
  double expected = 0;
  double t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.NextDouble();
    sketch.Update(rng.NextBounded(200), t);
  }
  double query_time = t;
  // Recompute with a fresh generator replaying the same sequence.
  Rng replay(161);
  double tt = 0;
  for (int i = 0; i < 5000; ++i) {
    tt += replay.NextDouble();
    replay.NextBounded(200);
    expected += std::exp2(-(query_time - tt) / 50.0);
  }
  EXPECT_NEAR(sketch.TotalDecayedWeight(query_time), expected,
              1e-6 * expected);
}

TEST(DecayedSpaceSavingTest, RenormalizationKeepsEstimates) {
  // Long horizon stresses the landmark-advance path (forward weights would
  // otherwise overflow): estimates must stay finite and correct.
  DecayedSpaceSaving sketch(8, /*half_life=*/1.0, 5);
  double t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 0.5;
    sketch.Update(7, t);
  }
  // Geometric series: sum_j 2^{-j/2} over the last rows ~ 1/(1-2^-0.5).
  double expected = 0;
  for (int i = 0; i < 5000; ++i) {
    expected += std::exp2(-(0.5 * i));
  }
  EXPECT_NEAR(sketch.EstimateDecayedCount(7, t), expected, 1e-6 * expected);
  EXPECT_TRUE(std::isfinite(sketch.TotalDecayedWeight(t)));
}

TEST(DecayedSpaceSavingTest, DecayedEntriesSortedAndScaled) {
  DecayedSpaceSaving sketch(4, 10.0, 6);
  sketch.Update(1, 0.0);
  sketch.Update(1, 0.0);
  sketch.Update(2, 10.0);
  auto entries = sketch.DecayedEntries(10.0);
  ASSERT_EQ(entries.size(), 2u);
  // Item 1: 2 * 0.5 = 1.0; item 2: 1.0 -> tie; both weights 1.0.
  EXPECT_NEAR(entries[0].weight, 1.0, 1e-9);
  EXPECT_NEAR(entries[1].weight, 1.0, 1e-9);
}

}  // namespace
}  // namespace dsketch
