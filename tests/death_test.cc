// Contract (CHECK) tests: invalid arguments abort with a diagnostic
// instead of corrupting sketch state. These document the library's
// programmer-error surface.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_size_space_saving.h"
#include "core/decayed_space_saving.h"
#include "core/multi_metric_space_saving.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "sampling/bottom_k.h"
#include "core/serialization.h"
#include "query/windowed_source.h"
#include "sampling/pps.h"
#include "sampling/priority_sampling.h"
#include "service/server.h"
#include "stats/normal.h"
#include "stream/distributions.h"
#include "util/alias.h"
#include "util/random.h"

namespace dsketch {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, ZeroCapacitySketchAborts) {
  EXPECT_DEATH(UnbiasedSpaceSaving(0), "CHECK failed");
  EXPECT_DEATH(WeightedSpaceSaving(0), "CHECK failed");
  EXPECT_DEATH(MisraGries(0), "CHECK failed");
  EXPECT_DEATH(BottomKSampler(0), "CHECK failed");
  EXPECT_DEATH(PrioritySampler(0), "CHECK failed");
}

TEST(DeathTest, NonPositiveWeightAborts) {
  WeightedSpaceSaving sketch(4);
  EXPECT_DEATH(sketch.Update(1, 0.0), "CHECK failed");
  EXPECT_DEATH(sketch.Update(1, -1.0), "CHECK failed");
  PrioritySampler sampler(4);
  EXPECT_DEATH(sampler.Add(1, 0.0), "CHECK failed");
}

TEST(DeathTest, MultiMetricContracts) {
  MultiMetricSpaceSaving sketch(4, 2);
  EXPECT_DEATH(sketch.Update(1, 0.0, {1.0, 1.0}), "CHECK failed");
  EXPECT_DEATH(sketch.Update(1, 1.0, std::vector<double>{1.0}),
               "CHECK failed");  // arity
  // NaN metrics would make a serialized snapshot unrestorable.
  EXPECT_DEATH(sketch.Update(1, 1.0, {1.0, std::nan("")}), "CHECK failed");
}

TEST(DeathTest, DecayedSketchContracts) {
  EXPECT_DEATH(DecayedSpaceSaving(4, 0.0), "CHECK failed");
  DecayedSpaceSaving sketch(4, 10.0);
  sketch.Update(1, 100.0);
  // Timestamps must be non-decreasing.
  EXPECT_DEATH(sketch.Update(1, 99.0), "CHECK failed");
  // Queries cannot predate the last update.
  EXPECT_DEATH(sketch.EstimateDecayedCount(1, 50.0), "CHECK failed");
}

TEST(DeathTest, AdaptiveSizeContracts) {
  EXPECT_DEATH(AdaptiveSizeSpaceSaving(0, 10, 0.1), "CHECK failed");
  EXPECT_DEATH(AdaptiveSizeSpaceSaving(8, 10, 0.1), "CHECK failed");
  EXPECT_DEATH(AdaptiveSizeSpaceSaving(8, 16, 0.0), "CHECK failed");
  EXPECT_DEATH(AdaptiveSizeSpaceSaving(8, 16, 1.0), "CHECK failed");
}

TEST(DeathTest, CountMinContracts) {
  EXPECT_DEATH(CountMin(0, 4), "CHECK failed");
  EXPECT_DEATH(CountMin(16, 0), "CHECK failed");
  CountMin cm(16, 2);
  EXPECT_DEATH(cm.Update(1, 0), "CHECK failed");
  EXPECT_DEATH(cm.Update(1, -5), "CHECK failed");
}

TEST(DeathTest, NormalQuantileDomain) {
  EXPECT_DEATH(NormalQuantile(0.0), "CHECK failed");
  EXPECT_DEATH(NormalQuantile(1.0), "CHECK failed");
  EXPECT_DEATH(NormalTwoSidedZ(1.5), "CHECK failed");
}

TEST(DeathTest, AliasTableContracts) {
  EXPECT_DEATH(AliasTable({}), "CHECK failed");
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "CHECK failed");
  EXPECT_DEATH(AliasTable({1.0, -1.0}), "CHECK failed");
}

TEST(DeathTest, DistributionContracts) {
  EXPECT_DEATH(WeibullCounts(0, 1.0, 1.0), "CHECK failed");
  EXPECT_DEATH(WeibullCounts(10, -1.0, 1.0), "CHECK failed");
  EXPECT_DEATH(GeometricCounts(10, 1.5), "CHECK failed");
  EXPECT_DEATH(ScaleCountsToTotal({1, 2}, 0), "CHECK failed");
}

TEST(DeathTest, PpsRejectsNegativeWeights) {
  EXPECT_DEATH(ThresholdedPpsProbabilities({1.0, -2.0}, 1), "CHECK failed");
}

TEST(DeathTest, ServerVetsWindowConfigAtStartup) {
  // The windowed fleet boots lazily on the first windowed frame, so a
  // bad SketchServerOptions.window must abort at construction — not mid-
  // stream when a client first touches the window scope.
  SketchServerOptions rows_clock;
  rows_clock.window.rows_per_epoch = 100;  // stamped rows are the clock
  EXPECT_DEATH(SketchServer{rows_clock}, "CHECK failed");
  SketchServerOptions no_ring;
  no_ring.window.window_epochs = 0;
  EXPECT_DEATH(SketchServer{no_ring}, "CHECK failed");
  SketchServerOptions huge_ring;
  huge_ring.window.window_epochs = kMaxWindowEpochs + 1;
  EXPECT_DEATH(SketchServer{huge_ring}, "CHECK failed");
  // A half-life so short the per-epoch factor underflows to 0 would
  // leave decay silently off while half_life > 0 — and make the
  // server's own windowed snapshots unrestorable.
  SketchServerOptions tiny_half_life;
  tiny_half_life.window.half_life_epochs = 1e-5;
  EXPECT_DEATH(SketchServer{tiny_half_life}, "CHECK failed");
  WindowedSketchOptions underflow;
  underflow.half_life_epochs = 1e-5;
  EXPECT_DEATH(WindowedSpaceSaving{underflow}, "CHECK failed");
  // The wall-clock epoch timer cannot run backwards (dsketchd rejects
  // the flag value before it gets here; embedders hit the same CHECK).
  SketchServerOptions negative_interval;
  negative_interval.epoch_interval_ms = -1;
  EXPECT_DEATH(SketchServer{negative_interval}, "CHECK failed");
  // Capacities past the wire encoders' cap would otherwise only abort
  // on the first SNAPSHOT frame.
  SketchServerOptions big_epoch_cap;
  big_epoch_cap.window.epoch_capacity =
      static_cast<size_t>(kMaxSerializableCapacity) + 1;
  EXPECT_DEATH(SketchServer{big_epoch_cap}, "CHECK failed");
  SketchServerOptions big_merged;
  big_merged.merged_capacity = static_cast<size_t>(kMaxSerializableCapacity) + 1;
  EXPECT_DEATH(SketchServer{big_merged}, "CHECK failed");
}

TEST(DeathTest, WindowedSourceRejectsStampsPastTheClockCap) {
  // A stamp past kMaxEpochStamp must fail at the call that introduces
  // it, not as a serialization CHECK at the next SaveSnapshot.
  ShardedSketchOptions shard;
  shard.num_shards = 1;
  WindowedSketchSource source(shard, WindowedSketchOptions{});
  EXPECT_DEATH(source.Advance(kMaxEpochStamp + 1), "CHECK failed");
  EpochRow row{1, kMaxEpochStamp + 1};
  EXPECT_DEATH(source.IngestEpoch(Span<const EpochRow>(&row, 1)),
               "CHECK failed");
}

}  // namespace
}  // namespace dsketch
