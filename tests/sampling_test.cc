// Tests for sampling/: thresholded PPS probabilities, the pivotal
// (Deville-Tillé splitting) sampler, priority sampling, bottom-k, and
// Horvitz-Thompson helpers.

#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/bottom_k.h"
#include "sampling/horvitz_thompson.h"
#include "sampling/pivotal.h"
#include "sampling/pps.h"
#include "sampling/priority_sampling.h"
#include "sampling/systematic.h"
#include "stats/welford.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(PpsTest, PaperExampleCapsHeavyItem) {
  // Paper §5.1: values 1, 1, 10 with k = 2 force pi = (1/2, 1/2, 1).
  auto pi = ThresholdedPpsProbabilities({1.0, 1.0, 10.0}, 2);
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
  EXPECT_NEAR(pi[2], 1.0, 1e-12);
}

TEST(PpsTest, SumsToSampleSize) {
  Rng rng(70);
  std::vector<double> w(50);
  for (double& x : w) x = std::exp(3.0 * rng.NextGaussian());
  for (size_t k : {1u, 5u, 20u, 49u}) {
    auto pi = ThresholdedPpsProbabilities(w, k);
    double sum = std::accumulate(pi.begin(), pi.end(), 0.0);
    EXPECT_NEAR(sum, static_cast<double>(k), 1e-9) << "k=" << k;
    for (double p : pi) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-12);
    }
  }
}

TEST(PpsTest, AllTakenWhenFewerItemsThanK) {
  auto pi = ThresholdedPpsProbabilities({2.0, 0.0, 5.0}, 4);
  EXPECT_EQ(pi[0], 1.0);
  EXPECT_EQ(pi[1], 0.0);  // zero weight never sampled
  EXPECT_EQ(pi[2], 1.0);
}

TEST(PpsTest, ProportionalWhenNoCapBinds) {
  auto pi = ThresholdedPpsProbabilities({1.0, 2.0, 3.0, 4.0}, 2);
  // alpha = 2/10; no cap binds since 0.2*4 = 0.8 < 1.
  EXPECT_NEAR(pi[0], 0.2, 1e-12);
  EXPECT_NEAR(pi[3], 0.8, 1e-12);
}

TEST(PpsTest, ItemVarianceFormula) {
  EXPECT_NEAR(PpsItemVariance(10.0, 0.5), 100.0, 1e-12);
  EXPECT_EQ(PpsItemVariance(10.0, 1.0), 0.0);
  EXPECT_EQ(PpsItemVariance(10.0, 0.0), 0.0);
}

TEST(PivotalTest, FixedSizeWhenSumIntegral) {
  Rng rng(71);
  std::vector<double> probs{0.2, 0.5, 0.3, 0.7, 0.3};  // sum = 2
  for (int t = 0; t < 2000; ++t) {
    auto take = PivotalSample(probs, rng);
    int size = std::accumulate(take.begin(), take.end(), 0);
    EXPECT_EQ(size, 2);
  }
}

TEST(PivotalTest, MarginalsMatchTargets) {
  Rng rng(72);
  std::vector<double> probs{0.1, 0.9, 0.45, 0.55, 0.6, 0.4};  // sum = 3
  const int kTrials = 60000;
  std::vector<int> hits(probs.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    auto take = PivotalSample(probs, rng);
    for (size_t i = 0; i < take.size(); ++i) hits[i] += take[i];
  }
  for (size_t i = 0; i < probs.size(); ++i) {
    double freq = hits[i] / static_cast<double>(kTrials);
    // 5 sigma of sqrt(p(1-p)/n) <= 0.011
    EXPECT_NEAR(freq, probs[i], 0.012) << "unit " << i;
  }
}

TEST(PivotalTest, DeterministicUnitsRespected) {
  Rng rng(73);
  std::vector<double> probs{1.0, 0.0, 1.0, 0.0};
  for (int t = 0; t < 100; ++t) {
    auto take = PivotalSample(probs, rng);
    EXPECT_EQ(take[0], 1);
    EXPECT_EQ(take[1], 0);
    EXPECT_EQ(take[2], 1);
    EXPECT_EQ(take[3], 0);
  }
}

TEST(PivotalTest, PpsSampleEstimatorIsUnbiased) {
  std::vector<double> weights{1, 2, 3, 4, 50, 7, 1, 1, 9, 22};
  double truth = std::accumulate(weights.begin(), weights.end(), 0.0);
  const size_t k = 4;
  Welford est;
  for (int t = 0; t < 20000; ++t) {
    Rng rng(1000 + t);
    std::vector<double> probs;
    auto take = PivotalPpsSample(weights, k, rng, &probs);
    est.Add(HorvitzThompsonTotal(take, weights, probs));
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean() + 1e-9);
}

TEST(PrioritySamplerTest, ExactWhenUnderCapacity) {
  PrioritySampler sampler(10, 74);
  sampler.Add(1, 5.0);
  sampler.Add(2, 7.0);
  EXPECT_EQ(sampler.Threshold(), 0.0);
  auto sample = sampler.Sample();
  ASSERT_EQ(sample.size(), 2u);
  double total = sampler.EstimateTotal();
  EXPECT_NEAR(total, 12.0, 1e-12);
}

TEST(PrioritySamplerTest, SampleSizeIsK) {
  PrioritySampler sampler(5, 75);
  for (uint64_t i = 0; i < 100; ++i) sampler.Add(i, 1.0 + (i % 7));
  EXPECT_EQ(sampler.Sample().size(), 5u);
  EXPECT_GT(sampler.Threshold(), 0.0);
}

TEST(PrioritySamplerTest, TotalEstimateIsUnbiased) {
  std::vector<double> weights{1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144};
  double truth = std::accumulate(weights.begin(), weights.end(), 0.0);
  Welford est;
  for (int t = 0; t < 30000; ++t) {
    PrioritySampler sampler(4, 2000 + t);
    for (size_t i = 0; i < weights.size(); ++i) {
      sampler.Add(i, weights[i]);
    }
    est.Add(sampler.EstimateTotal());
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(PrioritySamplerTest, SubsetEstimateIsUnbiased) {
  std::vector<double> weights{10, 1, 1, 1, 1, 1, 1, 1, 40, 1};
  double truth = weights[0] + weights[2] + weights[8];  // subset {0,2,8}
  std::unordered_set<uint64_t> subset{0, 2, 8};
  Welford est;
  for (int t = 0; t < 30000; ++t) {
    PrioritySampler sampler(4, 3000 + t);
    for (size_t i = 0; i < weights.size(); ++i) sampler.Add(i, weights[i]);
    est.Add(sampler.EstimateSubset(
        [&subset](uint64_t item) { return subset.count(item) > 0; }));
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(PrioritySamplerTest, HeavyItemAlwaysKeptWithAdjustedWeight) {
  // A dominant weight has priority >> others and estimate max(w, tau) = w.
  for (int t = 0; t < 200; ++t) {
    PrioritySampler sampler(3, 4000 + t);
    sampler.Add(99, 1e9);
    for (uint64_t i = 0; i < 50; ++i) sampler.Add(i, 1.0);
    auto sample = sampler.Sample();
    bool found = false;
    for (const auto& e : sample) {
      if (e.item == 99) {
        found = true;
        EXPECT_NEAR(e.weight, 1e9, 1e9 * 1e-3);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(BottomKTest, ExactWhenFewDistinct) {
  BottomKSampler sampler(10, 76);
  for (int rep = 0; rep < 3; ++rep) {
    for (uint64_t i = 0; i < 5; ++i) sampler.Update(i);
  }
  EXPECT_EQ(sampler.Threshold(), 1.0);
  auto sample = sampler.Sample();
  ASSERT_EQ(sample.size(), 5u);
  for (const auto& e : sample) EXPECT_NEAR(e.weight, 3.0, 1e-12);
}

TEST(BottomKTest, TracksExactCountsOfSampledItems) {
  // Whoever is in the sample must carry its exact count (tracked from its
  // first row; ranks are fixed by hash).
  std::vector<int64_t> counts{9, 5, 14, 3, 8, 1, 1, 12, 2, 6};
  BottomKSampler sampler(4, 77);
  for (size_t i = 0; i < counts.size(); ++i) {
    for (int64_t j = 0; j < counts[i]; ++j) {
      sampler.Update(i);
    }
  }
  double tau = sampler.Threshold();
  ASSERT_GT(tau, 0.0);
  for (const auto& e : sampler.Sample()) {
    double exact = static_cast<double>(counts[e.item]);
    EXPECT_NEAR(e.weight * tau, exact, 1e-9);
  }
}

TEST(BottomKTest, SubsetEstimateIsUnbiasedOverSeeds) {
  std::vector<int64_t> counts{40, 5, 14, 3, 8, 1, 1, 12, 2, 6, 9, 9, 3, 2, 7};
  double truth = 0;
  for (size_t i = 0; i < counts.size(); i += 2) {
    truth += static_cast<double>(counts[i]);  // subset = even ids
  }
  Welford est;
  for (int t = 0; t < 20000; ++t) {
    BottomKSampler sampler(5, 5000 + t);
    for (size_t i = 0; i < counts.size(); ++i) {
      for (int64_t j = 0; j < counts[i]; ++j) sampler.Update(i);
    }
    est.Add(sampler.EstimateSubset(
        [](uint64_t item) { return item % 2 == 0; }));
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean());
}

TEST(SystematicTest, FixedSizeWhenSumIntegral) {
  Rng rng(78);
  std::vector<double> probs{0.3, 0.7, 0.5, 0.5, 0.6, 0.4};  // sum = 3
  for (int t = 0; t < 5000; ++t) {
    auto take = SystematicSample(probs, rng);
    EXPECT_EQ(std::accumulate(take.begin(), take.end(), 0), 3);
  }
}

TEST(SystematicTest, MarginalsMatchTargets) {
  Rng rng(79);
  std::vector<double> probs{0.15, 0.85, 0.4, 0.6, 0.25, 0.75};  // sum = 3
  const int kTrials = 60000;
  std::vector<int> hits(probs.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    auto take = SystematicSample(probs, rng);
    for (size_t i = 0; i < take.size(); ++i) hits[i] += take[i];
  }
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(kTrials), probs[i], 0.012)
        << "unit " << i;
  }
}

TEST(SystematicTest, CertainUnitsAlwaysTaken) {
  Rng rng(80);
  std::vector<double> probs{1.0, 0.0, 1.0, 0.5, 0.5};
  for (int t = 0; t < 1000; ++t) {
    auto take = SystematicSample(probs, rng);
    EXPECT_EQ(take[0], 1);
    EXPECT_EQ(take[1], 0);
    EXPECT_EQ(take[2], 1);
  }
}

TEST(SystematicTest, PpsEstimatorIsUnbiased) {
  std::vector<double> weights{2, 9, 4, 1, 30, 3, 8, 1, 5, 12};
  double truth = std::accumulate(weights.begin(), weights.end(), 0.0);
  const size_t k = 3;
  Welford est;
  for (int t = 0; t < 20000; ++t) {
    Rng rng(6000 + t);
    std::vector<double> probs;
    auto take = SystematicPpsSample(weights, k, rng, &probs);
    est.Add(HorvitzThompsonTotal(take, weights, probs));
  }
  EXPECT_NEAR(est.mean(), truth, 5 * est.stderr_mean() + 1e-9);
}

TEST(SystematicTest, ConsumesOneVariatePerSample) {
  // Two generators advanced identically must produce identical samples;
  // the draw uses exactly one uniform, so the generators stay in lockstep.
  Rng rng_a(81), rng_b(81);
  std::vector<double> probs{0.2, 0.8, 0.5, 0.5};
  for (int t = 0; t < 100; ++t) {
    auto a = SystematicSample(probs, rng_a);
    auto b = SystematicSample(probs, rng_b);
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
}

TEST(HorvitzThompsonTest, TotalAndAdjustment) {
  std::vector<uint8_t> take{1, 0, 1};
  std::vector<double> weights{2.0, 5.0, 4.0};
  std::vector<double> probs{0.5, 0.1, 1.0};
  EXPECT_NEAR(HorvitzThompsonTotal(take, weights, probs), 8.0, 1e-12);
  auto adj = HorvitzThompsonAdjust(take, weights, probs);
  EXPECT_NEAR(adj[0], 4.0, 1e-12);
  EXPECT_EQ(adj[1], 0.0);
  EXPECT_NEAR(adj[2], 4.0, 1e-12);
}

}  // namespace
}  // namespace dsketch
