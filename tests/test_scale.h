// Trial-count scaling for the statistical suites.
//
// DSKETCH_TEST_SCALE is a positive multiplier applied to the trial and
// stream-size constants of the statistical tests. The default of 1 keeps
// the tier-1 loop fast (each suite finishes in seconds at -O2); the CTest
// `slow` label re-runs the same binaries with DSKETCH_TEST_SCALE=10,
// which restores the seed's original full-strength trial counts.
//
// Tests whose tolerances are stderr-based adapt automatically; tests with
// fixed tolerances should derive them from the scaled trial count (see
// e.g. RobustnessTest.UrnStreamFirstDrawMatchesProportions).

#ifndef DSKETCH_TESTS_TEST_SCALE_H_
#define DSKETCH_TESTS_TEST_SCALE_H_

#include <cstdlib>
#include <limits>

namespace dsketch {
namespace test {

/// The DSKETCH_TEST_SCALE multiplier (1.0 when unset or unparsable).
inline double TestScale() {
  static const double scale = [] {
    const char* raw = std::getenv("DSKETCH_TEST_SCALE");
    if (raw == nullptr) return 1.0;
    char* end = nullptr;
    double parsed = std::strtod(raw, &end);
    if (end == raw || !(parsed > 0.0)) return 1.0;
    return parsed;
  }();
  return scale;
}

/// `base` trials scaled by DSKETCH_TEST_SCALE, clamped to [1, INT_MAX]
/// (an out-of-range double-to-int cast would be undefined behavior).
inline int ScaledTrials(int base) {
  double scaled = static_cast<double>(base) * TestScale();
  if (scaled < 1.0) return 1;
  if (scaled >= static_cast<double>(std::numeric_limits<int>::max())) {
    return std::numeric_limits<int>::max();
  }
  return static_cast<int>(scaled);
}

}  // namespace test
}  // namespace dsketch

#endif  // DSKETCH_TESTS_TEST_SCALE_H_
