// Tests for core/space_saving_core: structural invariants of the shared
// Space Saving engine — exact totals, min-count bounds, count-sorted
// slots, LoadEntries round trips, and both tie-breaking modes.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/space_saving_core.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(SpaceSavingCoreTest, ExactWhileDistinctItemsFit) {
  for (LabelPolicy policy :
       {LabelPolicy::kDeterministic, LabelPolicy::kUnbiased}) {
    SpaceSavingCore core(8, policy, 1);
    for (int rep = 0; rep < 5; ++rep) {
      for (uint64_t i = 0; i < 8; ++i) {
        for (uint64_t j = 0; j <= i; ++j) core.Update(i);
      }
    }
    for (uint64_t i = 0; i < 8; ++i) {
      EXPECT_EQ(core.EstimateCount(i), static_cast<int64_t>(5 * (i + 1)));
    }
    EXPECT_EQ(core.size(), 8u);
  }
}

TEST(SpaceSavingCoreTest, TotalCountPreservedExactly) {
  for (LabelPolicy policy :
       {LabelPolicy::kDeterministic, LabelPolicy::kUnbiased}) {
    SpaceSavingCore core(16, policy, 2);
    Rng rng(90);
    int64_t rows = 0;
    for (int i = 0; i < 20000; ++i) {
      core.Update(rng.NextBounded(300));
      ++rows;
      if (i % 1000 == 0) {
        int64_t bin_sum = 0;
        for (const SketchEntry& e : core.Entries()) bin_sum += e.count;
        EXPECT_EQ(bin_sum, rows);
        EXPECT_EQ(core.TotalCount(), rows);
      }
    }
  }
}

TEST(SpaceSavingCoreTest, MinCountBoundedByMean) {
  SpaceSavingCore core(10, LabelPolicy::kUnbiased, 3);
  Rng rng(91);
  for (int i = 1; i <= 50000; ++i) {
    core.Update(rng.NextBounded(100));
    EXPECT_LE(core.MinCount() * 10, core.TotalCount());
  }
}

TEST(SpaceSavingCoreTest, EntriesSortedDescending) {
  SpaceSavingCore core(32, LabelPolicy::kDeterministic, 4);
  Rng rng(92);
  for (int i = 0; i < 5000; ++i) core.Update(rng.NextBounded(1000));
  auto entries = core.Entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].count, entries[i].count);
  }
}

TEST(SpaceSavingCoreTest, MinCountZeroUntilFull) {
  SpaceSavingCore core(5, LabelPolicy::kUnbiased, 5);
  for (uint64_t i = 0; i < 4; ++i) {
    core.Update(i);
    EXPECT_EQ(core.MinCount(), 0);
  }
  core.Update(4);
  EXPECT_EQ(core.MinCount(), 1);
}

TEST(SpaceSavingCoreTest, CapacityOneAlwaysHoldsTotal) {
  SpaceSavingCore core(1, LabelPolicy::kDeterministic, 6);
  for (uint64_t i = 0; i < 100; ++i) core.Update(i % 7);
  auto entries = core.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 100);
}

TEST(SpaceSavingCoreTest, SameSeedIsReproducible) {
  SpaceSavingCore a(16, LabelPolicy::kUnbiased, 42);
  SpaceSavingCore b(16, LabelPolicy::kUnbiased, 42);
  Rng rng(93);
  for (int i = 0; i < 10000; ++i) {
    uint64_t item = rng.NextBounded(500);
    a.Update(item);
    b.Update(item);
  }
  EXPECT_EQ(a.Entries(), b.Entries());
}

TEST(SpaceSavingCoreTest, DeterministicOverestimatesByAtMostMin) {
  std::vector<int64_t> counts = ZipfCounts(200, 1.2, 500);
  Rng rng(94);
  auto rows = PermutedStream(counts, rng);
  SpaceSavingCore core(24, LabelPolicy::kDeterministic, 7);
  for (uint64_t item : rows) core.Update(item);
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t est = core.EstimateCount(i);
    if (est == 0) continue;  // untracked
    EXPECT_GE(est, counts[i]);
    EXPECT_LE(est, counts[i] + core.MinCount());
  }
}

TEST(SpaceSavingCoreTest, DeterministicErrorWithinTotalOverM) {
  std::vector<int64_t> counts = ZipfCounts(300, 1.0, 400);
  Rng rng(95);
  auto rows = PermutedStream(counts, rng);
  SpaceSavingCore core(20, LabelPolicy::kDeterministic, 8);
  for (uint64_t item : rows) core.Update(item);
  int64_t bound = core.TotalCount() / 20;
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t err = core.EstimateCount(i) - counts[i];
    EXPECT_LE(std::abs(err), bound) << "item " << i;
  }
}

TEST(SpaceSavingCoreTest, LoadEntriesRoundTrips) {
  SpaceSavingCore core(8, LabelPolicy::kUnbiased, 9);
  std::vector<SketchEntry> entries{{11, 5}, {22, 1}, {33, 9}, {44, 3}};
  core.LoadEntries(entries);
  EXPECT_EQ(core.size(), 4u);
  EXPECT_EQ(core.TotalCount(), 18);
  EXPECT_EQ(core.EstimateCount(11), 5);
  EXPECT_EQ(core.EstimateCount(33), 9);
  EXPECT_EQ(core.EstimateCount(99), 0);
  EXPECT_EQ(core.MinCount(), 0);  // 4 empty bins remain

  auto out = core.Entries();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].item, 33u);
  EXPECT_EQ(out[0].count, 9);
}

TEST(SpaceSavingCoreTest, UpdatesContinueAfterLoadEntries) {
  SpaceSavingCore core(4, LabelPolicy::kDeterministic, 10);
  core.LoadEntries({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  core.Update(2);
  EXPECT_EQ(core.EstimateCount(2), 21);
  // New item replaces the minimum bin (deterministic policy).
  core.Update(5);
  EXPECT_EQ(core.EstimateCount(5), 11);
  EXPECT_EQ(core.EstimateCount(1), 0);
  EXPECT_EQ(core.TotalCount(), 102);
}

TEST(SpaceSavingCoreTest, FullLoadThenUpdateKeepsInvariant) {
  SpaceSavingCore core(3, LabelPolicy::kUnbiased, 11);
  core.LoadEntries({{7, 2}, {8, 2}, {9, 2}});
  for (int i = 0; i < 100; ++i) core.Update(100 + (i % 5));
  int64_t sum = 0;
  for (const SketchEntry& e : core.Entries()) sum += e.count;
  EXPECT_EQ(sum, 106);
}

TEST(SpaceSavingCoreTest, FirstSlotTieBreakIsDeterministic) {
  SpaceSavingCore a(8, LabelPolicy::kDeterministic, 1, TieBreak::kFirstSlot);
  SpaceSavingCore b(8, LabelPolicy::kDeterministic, 2, TieBreak::kFirstSlot);
  // Different seeds but deterministic policy + deterministic tie-break:
  // identical states.
  Rng rng(96);
  for (int i = 0; i < 20000; ++i) {
    uint64_t item = rng.NextBounded(400);
    a.Update(item);
    b.Update(item);
  }
  EXPECT_EQ(a.Entries(), b.Entries());
}

TEST(SpaceSavingCoreTest, EachMinBinReplacedOncePerDistinctWave) {
  // 64 count-1 bins absorbing 64 new distinct items: every update must
  // pick a *different* min bin (the picked bin leaves the minimum range),
  // so all second-wave items survive at count 2, regardless of tie-break.
  for (TieBreak tb : {TieBreak::kRandom, TieBreak::kFirstSlot}) {
    SpaceSavingCore core(64, LabelPolicy::kDeterministic, 12, tb);
    for (uint64_t i = 0; i < 64; ++i) core.Update(i);  // fill, all count 1
    for (uint64_t i = 64; i < 128; ++i) core.Update(i);
    for (const SketchEntry& e : core.Entries()) {
      EXPECT_GE(e.item, 64u);
      EXPECT_EQ(e.count, 2);
    }
  }
}

TEST(SpaceSavingCoreTest, RandomTieBreakVariesAcrossSeeds) {
  // Fill 64 bins, then add 16 distinct items: which first-wave labels are
  // displaced must depend on the seed under kRandom tie-breaking.
  auto survivors = [](uint64_t seed) {
    SpaceSavingCore core(64, LabelPolicy::kDeterministic, seed,
                         TieBreak::kRandom);
    for (uint64_t i = 0; i < 64; ++i) core.Update(i);
    for (uint64_t i = 64; i < 80; ++i) core.Update(i);
    std::vector<uint64_t> out;
    for (const SketchEntry& e : core.Entries()) {
      if (e.item < 64) out.push_back(e.item);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_NE(survivors(1), survivors(2));
}

TEST(SpaceSavingCoreTest, UnbiasedKeepsHeavyLabelAgainstNoise) {
  // A heavy item reaching a large count is almost never displaced: the
  // replacement probability of its bin is ~1/count.
  SpaceSavingCore core(2, LabelPolicy::kUnbiased, 13);
  for (int i = 0; i < 10000; ++i) core.Update(777);
  for (uint64_t i = 0; i < 50; ++i) core.Update(1000 + i);
  EXPECT_TRUE(core.Contains(777));
  EXPECT_GE(core.EstimateCount(777), 10000);
}

}  // namespace
}  // namespace dsketch
