// Frozen-image subsystem end to end: the freeze -> thaw round trip and
// its canonical-order contract, zero-decode queries (point lookups,
// SUM, TOPK, GROUPBY) answered straight off the image bit-identically
// to the thawed sketch, the mmap-backed FrozenSketchSource, the replica
// server (read-only SketchServer over a borrowed image), and the C ABI
// (capi/dsketch.h). The distributed merge accepting frozen inputs is
// covered too: CombineSerialized never looks past DeserializeUnbiased's
// envelope dispatch.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "capi/dsketch.h"
#include "core/distributed.h"
#include "core/frequent_items.h"
#include "core/serialization.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "query/attribute_table.h"
#include "query/engine.h"
#include "query/frozen_source.h"
#include "query/predicate.h"
#include "service/client.h"
#include "service/server.h"
#include "service/transport.h"
#include "util/mmap_array.h"
#include "util/random.h"
#include "wire/codec.h"
#include "wire/frozen.h"

namespace dsketch {
namespace {

UnbiasedSpaceSaving MakeSketch(size_t capacity = 64, uint64_t universe = 200,
                               int rows = 5000) {
  UnbiasedSpaceSaving sketch(capacity, 42);
  Rng rng(99);
  for (int i = 0; i < rows; ++i) sketch.Update(rng.NextBounded(universe));
  return sketch;
}

// Attribute table covering [0, universe): dim0 = item % 5, dim1 = item % 3.
AttributeTable MakeAttrs(uint64_t universe) {
  AttributeTable attrs(2);
  for (uint64_t i = 0; i < universe; ++i) {
    attrs.AddItem(
        {static_cast<uint32_t>(i % 5), static_cast<uint32_t>(i % 3)});
  }
  return attrs;
}

bool SameEstimate(const SubsetSumEstimate& a, const SubsetSumEstimate& b) {
  return a.estimate == b.estimate && a.variance == b.variance &&
         a.items_in_sample == b.items_in_sample;
}

TEST(FrozenTest, FreezeThawRoundTripPreservesState) {
  UnbiasedSpaceSaving sketch = MakeSketch();
  const std::string image = SerializeFrozen(sketch);

  auto info = wire::DescribeWire(image);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, wire::kKindFrozenUnbiased);

  std::optional<UnbiasedSpaceSaving> thawed = ThawFrozen(image, 7);
  ASSERT_TRUE(thawed.has_value());
  EXPECT_EQ(thawed->TotalCount(), sketch.TotalCount());
  EXPECT_EQ(thawed->size(), sketch.size());
  EXPECT_EQ(thawed->capacity(), sketch.capacity());
  for (const SketchEntry& e : sketch.Entries()) {
    EXPECT_EQ(thawed->EstimateCount(e.item), e.count) << e.item;
  }

  // Freezing is a pure function of sketch state: the thawed copy
  // re-freezes to the identical bytes (the property replicas rely on
  // when they re-serve their image).
  EXPECT_EQ(SerializeFrozen(*thawed), image);
}

TEST(FrozenTest, ImageEntriesAreCanonicallyOrdered) {
  const std::string image = SerializeFrozen(MakeSketch());
  auto view = wire::FrozenView::Vet(image);
  ASSERT_TRUE(view.has_value());
  ASSERT_GT(view->entry_count(), 1u);
  for (uint64_t i = 1; i < view->entry_count(); ++i) {
    const wire::FrozenEntry prev = view->entry(i - 1);
    const wire::FrozenEntry cur = view->entry(i);
    EXPECT_TRUE(prev.count > cur.count ||
                (prev.count == cur.count && prev.item < cur.item))
        << "entries " << (i - 1) << " and " << i;
  }
}

TEST(FrozenTest, EmptySketchFreezesAndThaws) {
  UnbiasedSpaceSaving empty(16, 3);
  const std::string image = SerializeFrozen(empty);
  auto view = wire::FrozenView::Vet(image);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->entry_count(), 0u);
  EXPECT_EQ(view->total_count(), 0);
  EXPECT_EQ(view->EstimateCount(1), 0);

  std::optional<UnbiasedSpaceSaving> thawed = ThawFrozen(image, 3);
  ASSERT_TRUE(thawed.has_value());
  EXPECT_EQ(thawed->size(), 0u);
  EXPECT_EQ(thawed->capacity(), 16u);
}

TEST(FrozenTest, FreezeIntoRejectsBadArguments) {
  const wire::FrozenEntry entries[] = {{3, 10}, {5, 10}, {9, 4}};
  const size_t n = 3;
  std::vector<unsigned char> buf(wire::FrozenImageBytes(n));

  // The happy path works...
  EXPECT_EQ(wire::FreezeInto(entries, n, 8, 0, 24, buf.data(), buf.size()),
            buf.size());
  // ...and each broken precondition returns 0 without writing.
  EXPECT_EQ(wire::FreezeInto(entries, n, 0, 0, 24, buf.data(), buf.size()),
            0u);  // zero capacity
  EXPECT_EQ(wire::FreezeInto(entries, n, 2, 0, 24, buf.data(), buf.size()),
            0u);  // entry_count > capacity
  EXPECT_EQ(wire::FreezeInto(entries, n, 8, -1, 24, buf.data(), buf.size()),
            0u);  // negative min_count
  EXPECT_EQ(wire::FreezeInto(entries, n, 8, 0, -1, buf.data(), buf.size()),
            0u);  // negative total_count
  EXPECT_EQ(
      wire::FreezeInto(entries, n, 8, 0, 24, buf.data(), buf.size() - 1),
      0u);  // buffer too small
  EXPECT_EQ(wire::FreezeInto(nullptr, n, 8, 0, 24, buf.data(), buf.size()),
            0u);  // null entries

  const wire::FrozenEntry unsorted[] = {{3, 10}, {5, 12}};
  EXPECT_EQ(
      wire::FreezeInto(unsorted, 2, 8, 0, 22, buf.data(), buf.size()),
      0u);  // counts ascending
  const wire::FrozenEntry tie_swapped[] = {{5, 10}, {3, 10}};
  EXPECT_EQ(
      wire::FreezeInto(tie_swapped, 2, 8, 0, 20, buf.data(), buf.size()),
      0u);  // tie out of item order
  const wire::FrozenEntry nonpositive[] = {{5, 0}};
  EXPECT_EQ(
      wire::FreezeInto(nonpositive, 1, 8, 0, 0, buf.data(), buf.size()),
      0u);  // zero count
  const wire::FrozenEntry duplicate[] = {{5, 10}, {5, 4}};
  EXPECT_EQ(
      wire::FreezeInto(duplicate, 2, 8, 0, 14, buf.data(), buf.size()),
      0u);  // same item twice
}

TEST(FrozenTest, EngineAnswersBitIdenticalOffTheImage) {
  UnbiasedSpaceSaving sketch = MakeSketch();
  const std::string image = SerializeFrozen(sketch);
  std::optional<UnbiasedSpaceSaving> thawed = ThawFrozen(image, 7);
  ASSERT_TRUE(thawed.has_value());
  std::optional<FrozenSketchSource> source =
      FrozenSketchSource::FromBlob(image, 7);
  ASSERT_TRUE(source.has_value());
  EXPECT_TRUE(source->Validate());

  AttributeTable attrs = MakeAttrs(200);
  SketchQueryEngine frozen_engine(&*source, &attrs);
  SketchQueryEngine thawed_engine(&*thawed, &attrs);

  // SUM, unfiltered and per-value.
  EXPECT_TRUE(SameEstimate(frozen_engine.Sum(Predicate()),
                           thawed_engine.Sum(Predicate())));
  for (uint32_t v = 0; v < 5; ++v) {
    Predicate where;
    where.WhereEq(0, v);
    EXPECT_TRUE(
        SameEstimate(frozen_engine.Sum(where), thawed_engine.Sum(where)))
        << "dim0 == " << v;
  }

  // GROUPBY, one- and two-dimensional.
  Predicate filter;
  filter.WhereIn(1, {0, 2});
  auto g1_frozen = frozen_engine.GroupBy1(0, filter);
  auto g1_thawed = thawed_engine.GroupBy1(0, filter);
  ASSERT_EQ(g1_frozen.size(), g1_thawed.size());
  for (const auto& [key, est] : g1_frozen) {
    auto it = g1_thawed.find(key);
    ASSERT_NE(it, g1_thawed.end()) << key;
    EXPECT_TRUE(SameEstimate(est, it->second)) << key;
  }
  auto g2_frozen = frozen_engine.GroupBy2(0, 1, Predicate());
  auto g2_thawed = thawed_engine.GroupBy2(0, 1, Predicate());
  ASSERT_EQ(g2_frozen.size(), g2_thawed.size());
  for (const auto& [key, est] : g2_frozen) {
    auto it = g2_thawed.find(key);
    ASSERT_NE(it, g2_thawed.end());
    EXPECT_TRUE(SameEstimate(est, it->second));
  }

  // TOPK straight off the image's native order.
  for (size_t k : {size_t{1}, size_t{5}, thawed->size()}) {
    std::vector<SketchEntry> frozen_top = FrozenTopK(source->frozen(), k);
    std::vector<SketchEntry> thawed_top = TopK(*thawed, k);
    ASSERT_EQ(frozen_top.size(), thawed_top.size()) << k;
    for (size_t i = 0; i < frozen_top.size(); ++i) {
      EXPECT_EQ(frozen_top[i].item, thawed_top[i].item) << k << "/" << i;
      EXPECT_EQ(frozen_top[i].count, thawed_top[i].count) << k << "/" << i;
    }
  }
}

TEST(FrozenTest, FromFileMapsAndAnswers) {
  UnbiasedSpaceSaving sketch = MakeSketch(32, 100, 2000);
  const std::string image = SerializeFrozen(sketch);
  const std::string path = "frozen_test_image.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
    std::fclose(f);
  }

  std::optional<FrozenSketchSource> source =
      FrozenSketchSource::FromFile(path, 7);
  ASSERT_TRUE(source.has_value());
  EXPECT_TRUE(source->Validate());
  EXPECT_EQ(std::string(source->frozen().bytes()), image);
  for (const SketchEntry& e : sketch.Entries()) {
    // Same counts; the image and the live sketch may order ties
    // differently, so compare per item.
    EXPECT_EQ(source->frozen().EstimateCount(e.item),
              sketch.EstimateCount(e.item));
  }

  // SaveSnapshot re-serves the image bytes unchanged.
  EXPECT_EQ(source->SaveSnapshot(), image);
  std::remove(path.c_str());

  // A missing file is a clean failure, not a crash.
  EXPECT_FALSE(
      FrozenSketchSource::FromFile("frozen_test_missing.bin", 7).has_value());
}

TEST(FrozenTest, CombineSerializedAcceptsFrozenInputs) {
  UnbiasedSpaceSaving a = MakeSketch(32, 80, 2000);
  UnbiasedSpaceSaving b(32, 43);
  Rng rng(7);
  for (int i = 0; i < 1500; ++i) b.Update(100 + rng.NextBounded(60));

  // Merging [frozen(a), v2(b)] must equal merging [v2(a), v2(b)]:
  // the merge path dispatches on the envelope per input.
  std::vector<std::string> mixed = {SerializeFrozen(a), Serialize(b)};
  std::vector<std::string> stream = {Serialize(a), Serialize(b)};
  auto merged_mixed = CombineSerialized(mixed, 64, 9);
  auto merged_stream = CombineSerialized(stream, 64, 9);
  ASSERT_TRUE(merged_mixed.has_value());
  ASSERT_TRUE(merged_stream.has_value());
  EXPECT_EQ(merged_mixed->TotalCount(), merged_stream->TotalCount());
  EXPECT_EQ(merged_mixed->TotalCount(), a.TotalCount() + b.TotalCount());
}

TEST(FrozenTest, ReplicaServerServesImageReadOnly) {
  UnbiasedSpaceSaving sketch = MakeSketch(32, 100, 3000);
  const std::string image = SerializeFrozen(sketch);
  std::optional<FrozenSketchSource> source =
      FrozenSketchSource::FromBlob(image, 7);
  ASSERT_TRUE(source.has_value());

  SketchServerOptions options;
  options.seed = 7;
  SketchServer server(options, &*source, nullptr);
  InMemoryDuplex duplex;
  std::thread serve([&] { server.Serve(duplex.server()); });
  SketchClient client(duplex.client());

  // Reference: a peer that restored the same image the normal way.
  std::optional<UnbiasedSpaceSaving> thawed = ThawFrozen(image, 7);
  ASSERT_TRUE(thawed.has_value());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->total_count, thawed->TotalCount());

  auto top = client.QueryTopK(5);
  ASSERT_TRUE(top.has_value());
  std::vector<SketchEntry> want = FrozenTopK(source->frozen(), 5);
  ASSERT_EQ(top->counts.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(top->counts[i].item, want[i].item);
    EXPECT_EQ(top->counts[i].count, want[i].count);
  }

  // Writes are refused, and the replica's snapshot is the image itself.
  std::vector<uint64_t> rows = {1, 2, 3};
  EXPECT_FALSE(client.IngestBatch(Span<const uint64_t>(rows.data(), rows.size())));
  EXPECT_FALSE(client.Restore(Serialize(*thawed)));
  auto snap = client.Snapshot();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(*snap, image);

  // The replica reports its snapshot as a frozen image in STATS.
  stats = client.Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->last_snapshot_format, SnapshotFormat::kFrozen);
  EXPECT_EQ(stats->last_snapshot_bytes, image.size());

  EXPECT_TRUE(client.Shutdown());
  serve.join();
}

TEST(FrozenTest, CapiFreezesAndQueries) {
  // Freeze through the C ABI and cross-check against the C++ codec.
  const dsketch_frozen_entry entries[] = {{7, 100}, {3, 40}, {11, 40}, {1, 9}};
  const size_t n = 4;
  const size_t bytes = dsketch_freeze_size(n);
  ASSERT_EQ(bytes, wire::FrozenImageBytes(n));
  std::vector<unsigned char> image(bytes);
  ASSERT_EQ(dsketch_freeze(entries, n, 16, 0, 189, image.data(), bytes),
            bytes);

  ASSERT_EQ(dsketch_frozen_valid(image.data(), bytes), 1);
  EXPECT_EQ(dsketch_frozen_entry_count(image.data(), bytes), n);
  EXPECT_EQ(dsketch_frozen_total_count(image.data(), bytes), 189);
  EXPECT_EQ(dsketch_frozen_estimate(image.data(), bytes, 7), 100);
  EXPECT_EQ(dsketch_frozen_estimate(image.data(), bytes, 3), 40);
  EXPECT_EQ(dsketch_frozen_estimate(image.data(), bytes, 999), 0);

  const uint64_t subset[] = {3, 11};
  dsketch_frozen_sum sum;
  ASSERT_EQ(dsketch_frozen_query_sum(image.data(), bytes, subset, 2, &sum), 1);
  EXPECT_EQ(sum.estimate, 80.0);
  EXPECT_EQ(sum.items_in_sample, 2u);

  dsketch_frozen_entry top[8];
  ASSERT_EQ(dsketch_frozen_query_topk(image.data(), bytes, 8, top), n);
  EXPECT_EQ(top[0].item, 7u);
  EXPECT_EQ(top[0].count, 100);
  EXPECT_EQ(top[1].item, 3u);   // tie at 40 breaks by ascending item
  EXPECT_EQ(top[2].item, 11u);

  // Error paths: bad order, bad image, null out.
  const dsketch_frozen_entry unsorted[] = {{1, 5}, {2, 9}};
  EXPECT_EQ(dsketch_freeze(unsorted, 2, 4, 0, 14, image.data(), bytes), 0u);
  EXPECT_EQ(dsketch_frozen_valid(image.data(), bytes - 1), 0);
  EXPECT_EQ(dsketch_frozen_valid(nullptr, bytes), 0);
  EXPECT_EQ(dsketch_frozen_query_sum(image.data(), bytes, subset, 2, nullptr),
            0);

  // The C image round-trips through the C++ deep thaw.
  EXPECT_TRUE(
      ThawFrozen(std::string_view(reinterpret_cast<const char*>(image.data()),
                                  bytes),
                 3)
          .has_value());
}

TEST(FrozenTest, MappedFileFallsBackToHeapAndSurvivesMove) {
  const std::string path = "frozen_test_mapped.bin";
  const std::string payload = "frozen image stand-in";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(payload.data(), 1, payload.size(), f),
              payload.size());
    std::fclose(f);
  }
  std::optional<MappedFile> mapped = MapFile(path);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(std::string(mapped->bytes()), payload);

  // The view must survive a move (the SSO-dangling regression: a moved
  // heap-backed mapping must re-point at its own buffer).
  MappedFile moved = std::move(*mapped);
  EXPECT_EQ(std::string(moved.bytes()), payload);
  std::remove(path.c_str());

  EXPECT_FALSE(MapFile("frozen_test_missing_file.bin").has_value());
}

}  // namespace
}  // namespace dsketch
