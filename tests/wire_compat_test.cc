// Cross-version wire compatibility against the checked-in v1 golden
// fixtures (tests/golden/): the legacy encoder still produces the golden
// bytes byte-for-byte, the goldens decode into the same state as the
// reference recipes, and the v2 round trip of every kind preserves the
// downstream estimates bit-exactly while never exceeding the v1
// footprint. DSKETCH_GOLDEN_DIR is injected by tests/CMakeLists.txt.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wire/frozen.h"
#include "wire_golden_common.h"

namespace dsketch {
namespace {

std::string ReadFixture(const char* name) {
  const std::string path = std::string(DSKETCH_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

using golden::Canonical;

TEST(WireCompatTest, LegacyEncoderStillProducesGoldenBytes) {
  EXPECT_EQ(SerializeV1(golden::Unbiased()), ReadFixture("v1_unbiased.bin"));
  EXPECT_EQ(SerializeV1(golden::Deterministic()),
            ReadFixture("v1_deterministic.bin"));
  EXPECT_EQ(SerializeV1(golden::Weighted()), ReadFixture("v1_weighted.bin"));
  EXPECT_EQ(SerializeV1(golden::MultiMetric()),
            ReadFixture("v1_multimetric.bin"));
  EXPECT_EQ(SerializeV1(golden::MisraGriesSketch()),
            ReadFixture("v1_misragries.bin"));
  EXPECT_EQ(SerializeV1(golden::CountMinSketch()),
            ReadFixture("v1_countmin.bin"));
}

TEST(WireCompatTest, GoldenV1BlobsDecodeIntoReferenceState) {
  auto uss = DeserializeUnbiased(ReadFixture("v1_unbiased.bin"), 2);
  ASSERT_TRUE(uss.has_value());
  UnbiasedSpaceSaving uss_ref = golden::Unbiased();
  EXPECT_EQ(uss->TotalCount(), uss_ref.TotalCount());
  EXPECT_EQ(Canonical(uss->Entries()), Canonical(uss_ref.Entries()));

  auto dss = DeserializeDeterministic(ReadFixture("v1_deterministic.bin"));
  ASSERT_TRUE(dss.has_value());
  EXPECT_EQ(Canonical(dss->Entries()),
            Canonical(golden::Deterministic().Entries()));

  auto wss = DeserializeWeighted(ReadFixture("v1_weighted.bin"));
  ASSERT_TRUE(wss.has_value());
  WeightedSpaceSaving wss_ref = golden::Weighted();
  for (const WeightedEntry& e : wss_ref.Entries()) {
    EXPECT_DOUBLE_EQ(wss->EstimateWeight(e.item), e.weight);
  }

  auto mm = DeserializeMultiMetric(ReadFixture("v1_multimetric.bin"));
  ASSERT_TRUE(mm.has_value());
  MultiMetricSpaceSaving mm_ref = golden::MultiMetric();
  for (const MultiMetricEntry& b : mm_ref.bins()) {
    EXPECT_DOUBLE_EQ(mm->EstimatePrimary(b.item), b.primary);
    for (size_t k = 0; k < mm_ref.num_metrics(); ++k) {
      EXPECT_DOUBLE_EQ(mm->EstimateMetric(b.item, k), b.metrics[k]);
    }
  }

  auto mg = DeserializeMisraGries(ReadFixture("v1_misragries.bin"));
  ASSERT_TRUE(mg.has_value());
  MisraGries mg_ref = golden::MisraGriesSketch();
  EXPECT_EQ(mg->decrements(), mg_ref.decrements());
  EXPECT_EQ(mg->TotalCount(), mg_ref.TotalCount());
  EXPECT_EQ(Canonical(mg->Entries()), Canonical(mg_ref.Entries()));

  auto cm = DeserializeCountMin(ReadFixture("v1_countmin.bin"));
  ASSERT_TRUE(cm.has_value());
  CountMin cm_ref = golden::CountMinSketch();
  EXPECT_EQ(cm->table(), cm_ref.table());
  EXPECT_EQ(cm->seed(), cm_ref.seed());
  for (uint64_t item = 0; item < 100; ++item) {
    ASSERT_EQ(cm->EstimateCount(item), cm_ref.EstimateCount(item));
  }
}

TEST(WireCompatTest, V2RoundTripMatchesGoldenState) {
  // The v2 encoding of each reference sketch restores bit-exactly the
  // same estimates the v1 golden carries — the two versions describe
  // identical states.
  UnbiasedSpaceSaving uss_ref = golden::Unbiased();
  auto uss = DeserializeUnbiased(Serialize(uss_ref), 2);
  ASSERT_TRUE(uss.has_value());
  EXPECT_EQ(Canonical(uss->Entries()), Canonical(uss_ref.Entries()));

  MisraGries mg_ref = golden::MisraGriesSketch();
  auto mg = DeserializeMisraGries(Serialize(mg_ref));
  ASSERT_TRUE(mg.has_value());
  EXPECT_EQ(Canonical(mg->Entries()), Canonical(mg_ref.Entries()));
  EXPECT_EQ(mg->decrements(), mg_ref.decrements());

  CountMin cm_ref = golden::CountMinSketch();
  auto cm = DeserializeCountMin(Serialize(cm_ref));
  ASSERT_TRUE(cm.has_value());
  EXPECT_EQ(cm->table(), cm_ref.table());

  WeightedSpaceSaving wss_ref = golden::Weighted();
  auto wss = DeserializeWeighted(Serialize(wss_ref));
  ASSERT_TRUE(wss.has_value());
  for (const WeightedEntry& e : wss_ref.Entries()) {
    EXPECT_DOUBLE_EQ(wss->EstimateWeight(e.item), e.weight);
  }

  MultiMetricSpaceSaving mm_ref = golden::MultiMetric();
  auto mm = DeserializeMultiMetric(Serialize(mm_ref));
  ASSERT_TRUE(mm.has_value());
  for (const MultiMetricEntry& b : mm_ref.bins()) {
    EXPECT_DOUBLE_EQ(mm->EstimatePrimary(b.item), b.primary);
  }

  DeterministicSpaceSaving dss_ref = golden::Deterministic();
  auto dss = DeserializeDeterministic(Serialize(dss_ref));
  ASSERT_TRUE(dss.has_value());
  EXPECT_EQ(Canonical(dss->Entries()), Canonical(dss_ref.Entries()));
}

TEST(WireCompatTest, V2NeverExceedsV1Footprint) {
  EXPECT_LE(Serialize(golden::Unbiased()).size(),
            ReadFixture("v1_unbiased.bin").size());
  EXPECT_LE(Serialize(golden::Deterministic()).size(),
            ReadFixture("v1_deterministic.bin").size());
  EXPECT_LE(Serialize(golden::Weighted()).size(),
            ReadFixture("v1_weighted.bin").size());
  EXPECT_LE(Serialize(golden::MultiMetric()).size(),
            ReadFixture("v1_multimetric.bin").size());
  EXPECT_LE(Serialize(golden::MisraGriesSketch()).size(),
            ReadFixture("v1_misragries.bin").size());
  EXPECT_LE(Serialize(golden::CountMinSketch()).size(),
            ReadFixture("v1_countmin.bin").size());
}

TEST(WireCompatTest, GoldenBlobsClassifyAsLegacyVersion) {
  for (const char* name : golden::kFixtureNames) {
    auto info = wire::DescribeWire(ReadFixture(name));
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_EQ(info->version, wire::kVersionLegacy) << name;
  }
}

TEST(WireCompatTest, WindowedGoldenPinsCurrentEncoderBytes) {
  // The windowed ring kind is v2-only, so its golden pins the current
  // encoder: bytes must stay byte-for-byte stable, classify as kind 7,
  // and decode into the reference ring state.
  const std::string bytes = ReadFixture(golden::kWindowedFixtureName);
  EXPECT_EQ(SerializeWindowed(golden::Windowed()), bytes);

  auto info = wire::DescribeWire(bytes);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, kWireKindWindowed);
  EXPECT_EQ(info->version, wire::kVersionCurrent);

  auto restored = DeserializeWindowed(bytes, 1007);
  ASSERT_TRUE(restored.has_value());
  WindowedSpaceSaving ref = golden::Windowed();
  EXPECT_EQ(restored->CurrentEpoch(), ref.CurrentEpoch());
  EXPECT_EQ(restored->TotalRows(), ref.TotalRows());
  ASSERT_EQ(restored->slots().size(), ref.slots().size());
  for (size_t i = 0; i < ref.slots().size(); ++i) {
    EXPECT_EQ(restored->slots()[i].epoch, ref.slots()[i].epoch);
    EXPECT_EQ(Canonical(restored->slots()[i].sketch.Entries()),
              Canonical(ref.slots()[i].sketch.Entries()));
  }
  EXPECT_NEAR(restored->decayed_accumulator().TotalWeight(),
              ref.decayed_accumulator().TotalWeight(),
              ref.decayed_accumulator().TotalWeight() * 1e-12);
}

TEST(WireCompatTest, FrozenGoldenPinsCurrentImageBytes) {
  // The frozen image is v2-only and deterministic down to its padding
  // bytes, so the golden pins the entire mmap'd layout: header field
  // order, section offsets, canonical entry order, and the hash
  // function behind the slot assignment. Any drift breaks every
  // mmap'd replica in the field — regenerate only deliberately.
  const std::string bytes = ReadFixture(golden::kFrozenFixtureName);
  EXPECT_EQ(SerializeFrozen(golden::Unbiased()), bytes);

  auto info = wire::DescribeWire(bytes);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, wire::kKindFrozenUnbiased);
  EXPECT_EQ(info->version, wire::kVersionCurrent);

  // The golden image thaws into the reference sketch's exact state —
  // and DeserializeUnbiased reaches the same result via its envelope
  // dispatch.
  auto thawed = ThawFrozen(bytes, 1001);
  ASSERT_TRUE(thawed.has_value());
  UnbiasedSpaceSaving ref = golden::Unbiased();
  EXPECT_EQ(thawed->TotalCount(), ref.TotalCount());
  EXPECT_EQ(Canonical(thawed->Entries()), Canonical(ref.Entries()));
  auto dispatched = DeserializeUnbiased(bytes, 1001);
  ASSERT_TRUE(dispatched.has_value());
  EXPECT_EQ(Canonical(dispatched->Entries()), Canonical(ref.Entries()));

  // Zero-decode point lookups off the golden image agree with the
  // reference sketch for every tracked item.
  auto view = wire::FrozenView::Vet(bytes);
  ASSERT_TRUE(view.has_value());
  for (const SketchEntry& e : ref.Entries()) {
    EXPECT_EQ(view->EstimateCount(e.item), e.count) << e.item;
  }
}

}  // namespace
}  // namespace dsketch
