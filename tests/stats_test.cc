// Tests for stats/: normal distribution functions, Welford accumulators,
// error summaries, quantiles, and log-bucket curves.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/normal.h"
#include "stats/summary.h"
#include "stats/welford.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(NormalTest, PdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-15);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(NormalPdf(-1.0), NormalPdf(1.0), 1e-15);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {1e-8, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99,
                   0.9999, 1.0 - 1e-8}) {
    double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963984540054, 1e-9);
}

TEST(NormalTest, TwoSidedZ) {
  EXPECT_NEAR(NormalTwoSidedZ(0.95), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalTwoSidedZ(0.99), 2.5758293035489004, 1e-9);
}

TEST(WelfordTest, MeanAndVarianceMatchClosedForm) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.Add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_NEAR(w.mean(), 5.0, 1e-12);
  EXPECT_NEAR(w.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);
}

TEST(WelfordTest, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.variance(), 0.0);
}

TEST(WelfordTest, MergeEqualsSequential) {
  Rng rng(50);
  Welford all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextGaussian() * 3 + 1;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
}

TEST(WelfordTest, MergeWithEmpty) {
  Welford a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 2.0, 1e-12);
}

TEST(ErrorAccumulatorTest, BiasAndMse) {
  ErrorAccumulator acc;
  acc.Add(12.0, 10.0);  // error +2
  acc.Add(8.0, 10.0);   // error -2
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_NEAR(acc.bias(), 0.0, 1e-12);
  EXPECT_NEAR(acc.mse(), 4.0, 1e-12);
  EXPECT_NEAR(acc.rmse(), 2.0, 1e-12);
  EXPECT_NEAR(acc.rrmse(), 0.2, 1e-12);
  EXPECT_NEAR(acc.mean_truth(), 10.0, 1e-12);
}

TEST(CoverageCounterTest, CountsContainment) {
  CoverageCounter c;
  c.Add(0.0, 1.0, 0.5);   // covered
  c.Add(0.0, 1.0, 1.0);   // boundary counts as covered
  c.Add(0.0, 1.0, 2.0);   // missed
  c.Add(0.0, 1.0, -0.1);  // missed
  EXPECT_EQ(c.count(), 4u);
  EXPECT_NEAR(c.coverage(), 0.5, 1e-12);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(Quantile(v, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 1.0), 5.0, 1e-12);
  EXPECT_NEAR(Quantile(v, 0.25), 2.0, 1e-12);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_NEAR(Quantile(v, 0.3), 3.0, 1e-12);
}

TEST(LogBucketCurveTest, BucketsByLogX) {
  LogBucketCurve curve(1.0, 10000.0, 4);  // decades-ish buckets
  curve.Add(2.0, 1.0);
  curve.Add(3.0, 3.0);
  curve.Add(200.0, 10.0);
  auto pts = curve.Points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].count, 2u);
  EXPECT_NEAR(pts[0].mean_y, 2.0, 1e-12);
  EXPECT_EQ(pts[1].count, 1u);
  EXPECT_NEAR(pts[1].mean_y, 10.0, 1e-12);
  EXPECT_LT(pts[0].x_center, pts[1].x_center);
}

TEST(LogBucketCurveTest, ClampsOutOfRange) {
  LogBucketCurve curve(1.0, 100.0, 2);
  curve.Add(0.0, 5.0);      // clamps to first bucket
  curve.Add(1e9, 7.0);      // clamps to last bucket
  auto pts = curve.Points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_NEAR(pts[0].mean_y, 5.0, 1e-12);
  EXPECT_NEAR(pts[1].mean_y, 7.0, 1e-12);
}

}  // namespace
}  // namespace dsketch
