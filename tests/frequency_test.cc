// Tests for frequency/: the exact Misra-Gries <-> Space Saving
// isomorphism (Agarwal et al.), Lossy Counting's schedule guarantee,
// Sticky Sampling, CountMin bounds, AMS F2 estimation, and the
// frequent-items query API.

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/deterministic_space_saving.h"
#include "core/frequent_items.h"
#include "core/unbiased_space_saving.h"
#include "frequency/ams.h"
#include "frequency/count_min.h"
#include "frequency/lossy_counting.h"
#include "frequency/misra_gries.h"
#include "frequency/sticky_sampling.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(MisraGriesTest, ExactWhileCountersFree) {
  MisraGries mg(4);
  for (int i = 0; i < 7; ++i) mg.Update(1);
  for (int i = 0; i < 3; ++i) mg.Update(2);
  EXPECT_EQ(mg.EstimateCount(1), 7);
  EXPECT_EQ(mg.EstimateCount(2), 3);
  EXPECT_EQ(mg.decrements(), 0);
}

TEST(MisraGriesTest, UnderestimatesByAtMostDecrements) {
  MisraGries mg(10);
  Rng rng(120);
  std::vector<int64_t> truth(100, 0);
  for (int i = 0; i < 20000; ++i) {
    uint64_t item = rng.NextBounded(100);
    ++truth[item];
    mg.Update(item);
  }
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_LE(mg.EstimateCount(i), truth[i]);
    EXPECT_GE(mg.UpperBound(i), truth[i]);
  }
  // Classic bound: decrements <= n/(m+1).
  EXPECT_LE(mg.decrements(), 20000 / 11 + 1);
}

TEST(MisraGriesTest, IsomorphicToSpaceSavingWithOneMoreBin) {
  // Agarwal et al.: MG with m-1 counters == Space Saving with m bins via
  // est_MG(x) = (est_SS(x) - min)+, independent of tie-breaking. Verify
  // exactly on random streams, at several checkpoints.
  const size_t kM = 8;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    MisraGries mg(kM - 1);
    DeterministicSpaceSaving ss(kM, seed, TieBreak::kRandom);
    Rng rng(130 + seed);
    for (int i = 0; i < 4000; ++i) {
      uint64_t item = rng.NextBounded(60);
      mg.Update(item);
      ss.Update(item);
      if (i % 997 == 0 || i == 3999) {
        EXPECT_EQ(mg.decrements(), ss.MinCount());
        for (uint64_t x = 0; x < 60; ++x) {
          int64_t proj = ss.EstimateCount(x) - ss.MinCount();
          if (proj < 0) proj = 0;
          ASSERT_EQ(mg.EstimateCount(x), proj)
              << "seed " << seed << " row " << i << " item " << x;
        }
      }
    }
  }
}

TEST(MisraGriesTest, MergePreservesDeterministicGuarantee) {
  // After merging, est <= truth and truth - est <= combined n / (m+1)
  // (Agarwal et al.). Skewed counts make the bound binding for the head.
  const size_t kM = 12;
  MisraGries a(kM), b(kM);
  std::vector<int64_t> counts = ZipfCounts(80, 1.5, 4000);
  Rng rng(121);
  auto rows = PermutedStream(counts, rng);
  std::vector<int64_t> truth(counts.begin(), counts.end());
  int64_t n = static_cast<int64_t>(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(rows[i]);
  }
  a.MergeFrom(b);
  int64_t slack = n / static_cast<int64_t>(kM + 1) + 2;
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_LE(a.EstimateCount(i), truth[i]);
    EXPECT_GE(a.EstimateCount(i), truth[i] - slack) << "item " << i;
  }
  EXPECT_LE(a.size(), kM);
  // The heaviest item must survive the merge with a binding estimate.
  EXPECT_GT(a.EstimateCount(79), 0);
}

TEST(LossyCountingTest, DecrementsOnFixedSchedule) {
  LossyCounting lc(100);
  for (int i = 0; i < 250; ++i) lc.Update(static_cast<uint64_t>(i));
  EXPECT_EQ(lc.decrements(), 2);  // after rows 100 and 200
}

TEST(LossyCountingTest, UnderestimatesByAtMostNOverM) {
  LossyCounting lc(50);
  Rng rng(122);
  std::vector<int64_t> truth(60, 0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t item = rng.NextBounded(60);
    ++truth[item];
    lc.Update(item);
  }
  int64_t bound = 10000 / 50;
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_LE(lc.EstimateCount(i), truth[i]);
    EXPECT_GE(lc.EstimateCount(i), truth[i] - bound);
  }
}

TEST(LossyCountingTest, FrequentItemsSurvive) {
  // Items with frequency > n/period must be present.
  LossyCounting lc(20);
  for (int i = 0; i < 3000; ++i) {
    lc.Update(i % 3);                         // three heavy items
    lc.Update(1000 + static_cast<uint64_t>(i));  // noise
  }
  EXPECT_TRUE(lc.Contains(0));
  EXPECT_TRUE(lc.Contains(1));
  EXPECT_TRUE(lc.Contains(2));
}

TEST(StickySamplingTest, TracksHeavyItemsExactlyAfterEntry) {
  StickySampling ss(100, 123);
  for (int i = 0; i < 20000; ++i) {
    ss.Update(i % 5);  // five very heavy items
    ss.Update(10000 + static_cast<uint64_t>(i) % 3000);
  }
  for (uint64_t x = 0; x < 5; ++x) {
    EXPECT_TRUE(ss.Contains(x));
    // Underestimates but by a bounded amount in practice.
    EXPECT_GT(ss.EstimateCount(x), 3500);
    EXPECT_LE(ss.EstimateCount(x), 4000);
  }
  EXPECT_LT(ss.sampling_rate(), 1.0);
}

TEST(StickySamplingTest, EstimateNeverExceedsTruth) {
  StickySampling ss(50, 124);
  std::vector<int64_t> truth(40, 0);
  Rng rng(125);
  for (int i = 0; i < 30000; ++i) {
    uint64_t item = rng.NextBounded(40);
    ++truth[item];
    ss.Update(item);
  }
  for (uint64_t x = 0; x < 40; ++x) {
    EXPECT_LE(ss.EstimateCount(x), truth[x]);
  }
}

TEST(CountMinTest, NeverUnderestimates) {
  CountMin cm(64, 4, 1);
  Rng rng(126);
  std::unordered_map<uint64_t, int64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    uint64_t item = rng.NextBounded(3000);
    ++truth[item];
    cm.Update(item);
  }
  for (const auto& [item, count] : truth) {
    EXPECT_GE(cm.EstimateCount(item), count);
  }
}

TEST(CountMinTest, ErrorWithinTwoNOverWMostly) {
  CountMin cm(256, 5, 2);
  Rng rng(127);
  std::unordered_map<uint64_t, int64_t> truth;
  const int kRows = 50000;
  for (int i = 0; i < kRows; ++i) {
    uint64_t item = rng.NextBounded(5000);
    ++truth[item];
    cm.Update(item);
  }
  int violations = 0;
  int64_t bound = 2 * kRows / 256;
  for (const auto& [item, count] : truth) {
    if (cm.EstimateCount(item) - count > bound) ++violations;
  }
  // With depth 5, P(violation) <= 2^-5 per item; expect a small fraction.
  EXPECT_LT(violations, static_cast<int>(truth.size() / 16));
}

TEST(CountMinTest, ConservativeUpdateIsTighter) {
  CountMin plain(64, 4, 3, /*conservative=*/false);
  CountMin cons(64, 4, 3, /*conservative=*/true);
  Rng rng(128);
  std::unordered_map<uint64_t, int64_t> truth;
  for (int i = 0; i < 30000; ++i) {
    uint64_t item = rng.NextBounded(2000);
    ++truth[item];
    plain.Update(item);
    cons.Update(item);
  }
  int64_t plain_err = 0, cons_err = 0;
  for (const auto& [item, count] : truth) {
    plain_err += plain.EstimateCount(item) - count;
    cons_err += cons.EstimateCount(item) - count;
    EXPECT_GE(cons.EstimateCount(item), count);
  }
  EXPECT_LT(cons_err, plain_err);
}

TEST(CountMinTest, WeightedUpdates) {
  CountMin cm(128, 4, 4);
  cm.Update(7, 100);
  cm.Update(7, 23);
  EXPECT_GE(cm.EstimateCount(7), 123);
  EXPECT_EQ(cm.TotalCount(), 123);
}

TEST(AmsTest, F2WithinTolerance) {
  AmsSketch ams(5, 200, 5);
  std::vector<int64_t> counts = ZipfCounts(100, 1.0, 200);
  double f2 = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) ams.Update(i, counts[i]);
    f2 += static_cast<double>(counts[i]) * static_cast<double>(counts[i]);
  }
  // sd of a group mean ~ sqrt(2/200) * F2 ~ 0.1 F2; median of 5 tighter.
  EXPECT_NEAR(ams.EstimateF2(), f2, 0.35 * f2);
}

TEST(AmsTest, LinearityUnderDeletion) {
  AmsSketch ams(3, 50, 6);
  ams.Update(1, 10);
  ams.Update(2, 4);
  ams.Update(1, -10);
  ams.Update(2, -4);
  EXPECT_EQ(ams.EstimateF2(), 0.0);
}

TEST(AmsTest, JoinSizeEstimate) {
  // Two streams sharing hash seed; join size = sum n_i * m_i.
  AmsSketch a(5, 300, 7), b(5, 300, 7);
  std::vector<int64_t> na{100, 50, 10, 5, 0};
  std::vector<int64_t> nb{80, 0, 20, 5, 40};
  double join = 0;
  for (size_t i = 0; i < na.size(); ++i) {
    if (na[i] > 0) a.Update(i, na[i]);
    if (nb[i] > 0) b.Update(i, nb[i]);
    join += static_cast<double>(na[i]) * static_cast<double>(nb[i]);
  }
  EXPECT_NEAR(a.EstimateJoinSize(b), join, 0.35 * join + 100);
}

TEST(FrequentItemsTest, DeterministicGuaranteedFlags) {
  std::vector<int64_t> counts{1000, 800, 2, 2, 2, 2, 2, 2, 2, 2};
  Rng rng(129);
  auto rows = PermutedStream(counts, rng);
  DeterministicSpaceSaving sketch(6, 8);
  for (uint64_t item : rows) sketch.Update(item);

  auto frequent = FrequentItems(sketch, 0.2);
  ASSERT_GE(frequent.size(), 2u);
  EXPECT_EQ(frequent[0].item, 0u);
  EXPECT_EQ(frequent[1].item, 1u);
  EXPECT_TRUE(frequent[0].guaranteed);
  EXPECT_TRUE(frequent[1].guaranteed);
  for (const auto& f : frequent) {
    EXPECT_LE(f.lower_bound, f.estimate);
  }
}

TEST(FrequentItemsTest, TopKOrdering) {
  UnbiasedSpaceSaving sketch(16, 9);
  std::vector<int64_t> counts{500, 400, 300, 200, 100, 1, 1, 1, 1, 1};
  Rng rng(131);
  auto rows = PermutedStream(counts, rng);
  for (uint64_t item : rows) sketch.Update(item);

  auto top = TopK(sketch, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 0u);
  EXPECT_EQ(top[1].item, 1u);
  EXPECT_EQ(top[2].item, 2u);
  EXPECT_GE(top[0].count, top[1].count);
}

TEST(FrequentItemsTest, PhiZeroReturnsAllTracked) {
  DeterministicSpaceSaving sketch(4, 10);
  for (int i = 0; i < 100; ++i) sketch.Update(i % 3);
  auto frequent = FrequentItems(sketch, 0.0);
  EXPECT_EQ(frequent.size(), 3u);
}

}  // namespace
}  // namespace dsketch
