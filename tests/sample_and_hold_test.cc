// Tests for sampling/sample_and_hold: unbiasedness of the adaptive and
// step variants (Theorem 2 reductions) and their memory behavior.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sampling/sample_and_hold.h"
#include "stats/welford.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(AdaptiveSampleAndHoldTest, ExactWhileUnderCapacity) {
  AdaptiveSampleAndHold sketch(10, 80);
  for (int i = 0; i < 5; ++i) sketch.Update(1);
  for (int i = 0; i < 3; ++i) sketch.Update(2);
  EXPECT_EQ(sketch.sampling_rate(), 1.0);
  EXPECT_NEAR(sketch.EstimateCount(1), 5.0, 1e-12);
  EXPECT_NEAR(sketch.EstimateCount(2), 3.0, 1e-12);
  EXPECT_EQ(sketch.EstimateCount(3), 0.0);
}

TEST(AdaptiveSampleAndHoldTest, CapacityIsRespected) {
  AdaptiveSampleAndHold sketch(16, 81);
  for (uint64_t i = 0; i < 5000; ++i) sketch.Update(i % 200);
  EXPECT_LE(sketch.size(), 16u);
  EXPECT_LT(sketch.sampling_rate(), 1.0);
}

TEST(AdaptiveSampleAndHoldTest, PerItemEstimatesAreUnbiased) {
  // Small universe, capacity below distinct count, permuted stream.
  std::vector<int64_t> counts{60, 25, 10, 5, 5, 3, 2, 2, 1, 1};
  std::vector<Welford> est(counts.size());
  const int kTrials = 8000;
  for (int t = 0; t < kTrials; ++t) {
    Rng stream_rng(7000 + t);
    auto rows = PermutedStream(counts, stream_rng);
    AdaptiveSampleAndHold sketch(5, 90000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(sketch.EstimateCount(i));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(AdaptiveSampleAndHoldTest, SubsetEstimateMatchesSum) {
  AdaptiveSampleAndHold sketch(8, 82);
  for (uint64_t i = 0; i < 1000; ++i) sketch.Update(i % 30);
  double all = sketch.EstimateSubset([](uint64_t) { return true; });
  double even = sketch.EstimateSubset([](uint64_t x) { return x % 2 == 0; });
  double odd = sketch.EstimateSubset([](uint64_t x) { return x % 2 == 1; });
  EXPECT_NEAR(all, even + odd, 1e-9);
}

TEST(StepSampleAndHoldTest, ExactWhileUnderCapacity) {
  StepSampleAndHold sketch(10, 83);
  for (int i = 0; i < 7; ++i) sketch.Update(42);
  EXPECT_NEAR(sketch.EstimateCount(42), 7.0, 1e-12);
  EXPECT_EQ(sketch.sampling_rate(), 1.0);
}

TEST(StepSampleAndHoldTest, SoftCapacityGrowsSlowly) {
  StepSampleAndHold sketch(32, 84);
  for (uint64_t i = 0; i < 20000; ++i) sketch.Update(i % 500);
  // Every admission past capacity halves the entry rate, so overflow is
  // logarithmic: far below the 500-item universe.
  EXPECT_LE(sketch.size(), 64u);
  EXPECT_LT(sketch.sampling_rate(), 1.0);
}

TEST(StepSampleAndHoldTest, PerItemEstimatesAreUnbiased) {
  std::vector<int64_t> counts{60, 25, 10, 5, 5, 3, 2, 2, 1, 1};
  std::vector<Welford> est(counts.size());
  const int kTrials = 8000;
  for (int t = 0; t < kTrials; ++t) {
    Rng stream_rng(8000 + t);
    auto rows = PermutedStream(counts, stream_rng);
    StepSampleAndHold sketch(5, 91000 + t);
    for (uint64_t item : rows) sketch.Update(item);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(sketch.EstimateCount(i));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.05)
        << "item " << i;
  }
}

TEST(StepSampleAndHoldTest, EntriesCarryAdjustedWeights) {
  StepSampleAndHold sketch(4, 85);
  for (uint64_t i = 0; i < 400; ++i) sketch.Update(i % 20);
  double total_from_entries = 0;
  for (const auto& e : sketch.Entries()) total_from_entries += e.weight;
  double total_from_subset = sketch.EstimateSubset([](uint64_t) { return true; });
  EXPECT_NEAR(total_from_entries, total_from_subset, 1e-9);
}

}  // namespace
}  // namespace dsketch
