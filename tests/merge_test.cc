// Tests for core/merge: Theorem 2 unbiased reductions (pairwise PPS and
// priority sampling), exact total preservation, the Misra-Gries reduction,
// and end-to-end sketch merges.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/merge.h"
#include "stats/welford.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

std::vector<SketchEntry> TestEntries() {
  return {{1, 100}, {2, 50}, {3, 20}, {4, 10}, {5, 5},
          {6, 3},   {7, 2},  {8, 1},  {9, 1},  {10, 1}};
}

TEST(CombineEntriesTest, SumsDuplicates) {
  auto combined = CombineEntries({{1, 5}, {2, 3}}, {{2, 4}, {3, 1}});
  std::unordered_map<uint64_t, int64_t> m;
  for (const auto& e : combined) m[e.item] = e.count;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m[1], 5);
  EXPECT_EQ(m[2], 7);
  EXPECT_EQ(m[3], 1);
}

TEST(ReducePairwiseTest, PreservesTotalExactly) {
  Rng rng(150);
  auto reduced = ReducePairwise(TestEntries(), 4, rng);
  EXPECT_EQ(reduced.size(), 4u);
  int64_t total = 0;
  for (const auto& e : reduced) total += e.count;
  EXPECT_EQ(total, 193);
}

TEST(ReducePairwiseTest, NoOpWhenUnderTarget) {
  Rng rng(151);
  auto entries = TestEntries();
  auto reduced = ReducePairwise(entries, 20, rng);
  EXPECT_EQ(reduced, entries);
}

TEST(ReducePairwiseTest, PerItemExpectationPreserved) {
  // Theorem 2: E[post-reduction estimate] = pre-reduction estimate.
  auto entries = TestEntries();
  std::vector<Welford> est(11);
  for (int t = 0; t < 60000; ++t) {
    Rng rng(160000 + t);
    auto reduced = ReducePairwise(entries, 3, rng);
    std::unordered_map<uint64_t, int64_t> m;
    for (const auto& e : reduced) m[e.item] = e.count;
    for (uint64_t x = 1; x <= 10; ++x) {
      auto it = m.find(x);
      est[x].Add(it != m.end() ? static_cast<double>(it->second) : 0.0);
    }
  }
  auto truth = TestEntries();
  for (const auto& e : truth) {
    EXPECT_NEAR(est[e.item].mean(), static_cast<double>(e.count),
                5 * est[e.item].stderr_mean() + 0.05)
        << "item " << e.item;
  }
}

TEST(ReducePriorityTest, PerItemExpectationPreserved) {
  auto entries = TestEntries();
  std::vector<Welford> est(11);
  for (int t = 0; t < 60000; ++t) {
    Rng rng(170000 + t);
    auto reduced = ReducePriority(entries, 5, rng);
    EXPECT_EQ(reduced.size(), 5u);
    std::unordered_map<uint64_t, double> m;
    for (const auto& e : reduced) m[e.item] = e.weight;
    for (uint64_t x = 1; x <= 10; ++x) {
      auto it = m.find(x);
      est[x].Add(it != m.end() ? it->second : 0.0);
    }
  }
  for (const auto& e : entries) {
    EXPECT_NEAR(est[e.item].mean(), static_cast<double>(e.count),
                5 * est[e.item].stderr_mean() + 0.05)
        << "item " << e.item;
  }
}

TEST(ReducePriorityTest, PassthroughUnderTarget) {
  Rng rng(152);
  auto reduced = ReducePriority({{1, 7}, {2, 3}}, 5, rng);
  ASSERT_EQ(reduced.size(), 2u);
  std::unordered_map<uint64_t, double> m;
  for (const auto& e : reduced) m[e.item] = e.weight;
  EXPECT_EQ(m[1], 7.0);
  EXPECT_EQ(m[2], 3.0);
}

TEST(ReduceMisraGriesTest, SoftThresholdByTargetPlusOneth) {
  auto reduced = ReduceMisraGries(TestEntries(), 4);
  // (4+1)-th largest of {100,50,20,10,5,...} is 5: counts shrink by 5.
  std::unordered_map<uint64_t, int64_t> m;
  for (const auto& e : reduced) m[e.item] = e.count;
  EXPECT_LE(reduced.size(), 4u);
  EXPECT_EQ(m[1], 95);
  EXPECT_EQ(m[2], 45);
  EXPECT_EQ(m[3], 15);
  EXPECT_EQ(m[4], 5);
  EXPECT_EQ(m.count(5), 0u);
}

TEST(MergeTest, UnbiasedMergePreservesCombinedTotal) {
  UnbiasedSpaceSaving a(16, 1), b(16, 2);
  Rng rng(153);
  for (int i = 0; i < 5000; ++i) a.Update(rng.NextBounded(100));
  for (int i = 0; i < 3000; ++i) b.Update(200 + rng.NextBounded(100));
  UnbiasedSpaceSaving merged = Merge(a, b, 16, 3);
  EXPECT_EQ(merged.TotalCount(), 8000);
  EXPECT_LE(merged.size(), 16u);
}

TEST(MergeTest, UnbiasedMergeEstimatesAreUnbiased) {
  // Split one stream across two sketches, merge, compare to truth.
  std::vector<int64_t> counts{80, 40, 20, 10, 6, 4, 2, 2, 1, 1};
  std::vector<Welford> est(counts.size());
  const int kTrials = 15000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(180000 + t);
    auto rows = PermutedStream(counts, rng);
    UnbiasedSpaceSaving a(5, 190000 + t), b(5, 195000 + t);
    for (size_t i = 0; i < rows.size(); ++i) {
      (i % 2 == 0 ? a : b).Update(rows[i]);
    }
    UnbiasedSpaceSaving merged = Merge(a, b, 5, 198000 + t);
    for (size_t i = 0; i < counts.size(); ++i) {
      est[i].Add(static_cast<double>(merged.EstimateCount(i)));
    }
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), static_cast<double>(counts[i]),
                5 * est[i].stderr_mean() + 0.1)
        << "item " << i;
  }
}

TEST(MergeTest, DeterministicMergeKeepsHeavyHitters) {
  DeterministicSpaceSaving a(8, 1), b(8, 2);
  for (int i = 0; i < 1000; ++i) {
    a.Update(1);
    b.Update(2);
  }
  for (int i = 0; i < 50; ++i) {
    a.Update(10 + static_cast<uint64_t>(i) % 20);
    b.Update(40 + static_cast<uint64_t>(i) % 20);
  }
  DeterministicSpaceSaving merged = Merge(a, b, 8, 3);
  EXPECT_TRUE(merged.Contains(1));
  EXPECT_TRUE(merged.Contains(2));
  EXPECT_GT(merged.EstimateCount(1), 900);
  EXPECT_LE(merged.size(), 8u);
}

TEST(MergeTest, MergeAllCombinesManySketches) {
  const int kShards = 6;
  std::vector<UnbiasedSpaceSaving> shards;
  for (int s = 0; s < kShards; ++s) shards.emplace_back(8, 100 + s);
  Rng rng(154);
  int64_t rows = 0;
  for (int i = 0; i < 12000; ++i) {
    shards[static_cast<size_t>(rng.NextBounded(kShards))].Update(
        rng.NextBounded(300));
    ++rows;
  }
  std::vector<const UnbiasedSpaceSaving*> ptrs;
  for (const auto& s : shards) ptrs.push_back(&s);
  UnbiasedSpaceSaving merged = MergeAll(ptrs, 12, 5);
  EXPECT_EQ(merged.TotalCount(), rows);
  EXPECT_LE(merged.size(), 12u);
}

TEST(ReducePairwiseWeightedTest, PreservesTotalAndExpectation) {
  std::vector<WeightedEntry> entries{{1, 50.5}, {2, 20.25}, {3, 10.0},
                                     {4, 5.5},  {5, 2.25},  {6, 1.5}};
  double total = 0;
  for (const auto& e : entries) total += e.weight;

  std::vector<Welford> est(7);
  for (int t = 0; t < 40000; ++t) {
    Rng rng(600000 + t);
    auto reduced = ReducePairwiseWeighted(entries, 3, rng);
    EXPECT_EQ(reduced.size(), 3u);
    double sum = 0;
    std::unordered_map<uint64_t, double> m;
    for (const auto& e : reduced) {
      sum += e.weight;
      m[e.item] = e.weight;
    }
    EXPECT_NEAR(sum, total, 1e-9);
    for (uint64_t x = 1; x <= 6; ++x) {
      auto it = m.find(x);
      est[x].Add(it != m.end() ? it->second : 0.0);
    }
  }
  for (const auto& e : entries) {
    EXPECT_NEAR(est[e.item].mean(), e.weight,
                5 * est[e.item].stderr_mean() + 0.01)
        << "item " << e.item;
  }
}

TEST(MergeTest, WeightedMergePreservesTotal) {
  WeightedSpaceSaving a(8, 1), b(8, 2);
  Rng rng(155);
  double total = 0;
  for (int i = 0; i < 3000; ++i) {
    double w = 0.5 + rng.NextDouble();
    a.Update(rng.NextBounded(40), w);
    total += w;
  }
  for (int i = 0; i < 2000; ++i) {
    double w = 0.5 + rng.NextDouble();
    b.Update(50 + rng.NextBounded(40), w);
    total += w;
  }
  WeightedSpaceSaving merged = Merge(a, b, 8, 3);
  EXPECT_NEAR(merged.TotalWeight(), total, 1e-6 * total);
  EXPECT_LE(merged.size(), 8u);
  // The merged sketch keeps accepting rows.
  merged.Update(999, 1.25);
  EXPECT_NEAR(merged.TotalWeight(), total + 1.25, 1e-6 * total);
}

TEST(MergeTest, WeightedMergeEstimatesAreUnbiased) {
  const std::vector<double> weights{30.0, 12.0, 6.0, 3.0, 1.5, 1.5, 0.75,
                                    0.75};
  std::vector<Welford> est(weights.size());
  const int kTrials = 15000;
  for (int t = 0; t < kTrials; ++t) {
    Rng order(610000 + t);
    WeightedSpaceSaving a(3, 620000 + t), b(3, 630000 + t);
    std::vector<size_t> idx(weights.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    order.Shuffle(idx.data(), idx.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      (i % 2 == 0 ? a : b).Update(idx[i], weights[idx[i]]);
    }
    WeightedSpaceSaving merged = Merge(a, b, 3, 640000 + t);
    for (size_t i = 0; i < weights.size(); ++i) {
      est[i].Add(merged.EstimateWeight(i));
    }
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR(est[i].mean(), weights[i], 5 * est[i].stderr_mean() + 0.02)
        << "item " << i;
  }
}

TEST(MergeTest, MergedSketchRemainsUsable) {
  UnbiasedSpaceSaving a(8, 1), b(8, 2);
  for (int i = 0; i < 500; ++i) {
    a.Update(static_cast<uint64_t>(i % 10));
    b.Update(static_cast<uint64_t>(i % 7));
  }
  UnbiasedSpaceSaving merged = Merge(a, b, 8, 3);
  int64_t before = merged.TotalCount();
  for (int i = 0; i < 100; ++i) merged.Update(999);
  EXPECT_EQ(merged.TotalCount(), before + 100);
  EXPECT_GE(merged.EstimateCount(999), 100);
}

}  // namespace
}  // namespace dsketch
