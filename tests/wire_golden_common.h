// Deterministic reference sketches behind the checked-in golden
// fixtures in tests/golden/. The generator (wire_golden_gen.cc) encodes
// these (SerializeV1 for the legacy kinds; the current encoder for the
// v2-only windowed ring) and writes the .bin files; wire_compat_test
// rebuilds the same sketches and asserts (a) the encoders still produce
// the golden bytes byte-for-byte and (b) the goldens decode into the
// same state. Never change these recipes without regenerating the
// fixtures — they pin the wire contract.

#ifndef DSKETCH_TESTS_WIRE_GOLDEN_COMMON_H_
#define DSKETCH_TESTS_WIRE_GOLDEN_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/serialization.h"
#include "util/random.h"
#include "util/span.h"
#include "window/window_wire.h"

namespace dsketch {
namespace golden {

/// Canonical ordering for entry comparison across serialization tests:
/// ties in count are ordered by item, which the wire formats do not (and
/// need not) preserve.
inline std::vector<SketchEntry> Canonical(std::vector<SketchEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.item < b.item;
            });
  return entries;
}

inline UnbiasedSpaceSaving Unbiased() {
  UnbiasedSpaceSaving sketch(32, 1001);
  Rng rng(2001);
  for (int i = 0; i < 5000; ++i) sketch.Update(rng.NextBounded(200));
  return sketch;
}

inline DeterministicSpaceSaving Deterministic() {
  DeterministicSpaceSaving sketch(16, 1002);
  for (int i = 0; i < 3000; ++i) sketch.Update(i % 40);
  return sketch;
}

inline WeightedSpaceSaving Weighted() {
  WeightedSpaceSaving sketch(8, 1003);
  Rng rng(2003);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(rng.NextBounded(50), 0.25 + rng.NextDouble());
  }
  return sketch;
}

inline MultiMetricSpaceSaving MultiMetric() {
  MultiMetricSpaceSaving sketch(16, 3, 1004);
  Rng rng(2004);
  for (int i = 0; i < 4000; ++i) {
    sketch.Update(rng.NextBounded(60), 0.5 + rng.NextDouble(),
                  {rng.NextDouble(), 2.0 * rng.NextDouble(), 0.0});
  }
  return sketch;
}

inline MisraGries MisraGriesSketch() {
  MisraGries sketch(12);
  Rng rng(2005);
  for (int i = 0; i < 8000; ++i) sketch.Update(rng.NextBounded(300));
  return sketch;
}

inline CountMin CountMinSketch() {
  CountMin sketch(16, 2, 1006, /*conservative=*/true);
  Rng rng(2006);
  for (int i = 0; i < 3000; ++i) {
    sketch.Update(rng.NextBounded(100), 1 + rng.NextBounded(4));
  }
  return sketch;
}

inline WindowedSpaceSaving Windowed() {
  WindowedSketchOptions opt;
  opt.window_epochs = 4;
  opt.epoch_capacity = 16;
  opt.merged_capacity = 32;
  opt.half_life_epochs = 2.0;
  opt.seed = 1007;
  WindowedSpaceSaving sketch(opt);
  Rng rng(2007);
  for (uint64_t e = 0; e < 6; ++e) {
    std::vector<uint64_t> rows;
    for (int i = 0; i < 600; ++i) {
      rows.push_back(e * 1000 + rng.NextBounded(80));
    }
    sketch.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
    if (e < 5) sketch.Advance();
  }
  return sketch;
}

/// File names of the v1 fixtures, index-aligned with the kinds above.
inline constexpr const char* kFixtureNames[] = {
    "v1_unbiased.bin",    "v1_deterministic.bin", "v1_weighted.bin",
    "v1_multimetric.bin", "v1_misragries.bin",    "v1_countmin.bin",
};

/// The v2-only windowed-ring fixture (kind 7 was born on wire v2, so
/// its golden pins the *current* encoder's bytes).
inline constexpr const char* kWindowedFixtureName = "v2_windowed.bin";

/// The frozen-image fixture (kind 8). Freezing is deterministic down to
/// the padding bytes, so this golden pins the entire mmap'd layout:
/// header field order, section offsets/alignment, canonical entry
/// order, and the open-addressed index's slot assignment (i.e. the
/// FrozenHash function itself).
inline constexpr const char* kFrozenFixtureName = "frozen_unbiased.bin";

}  // namespace golden
}  // namespace dsketch

#endif  // DSKETCH_TESTS_WIRE_GOLDEN_COMMON_H_
