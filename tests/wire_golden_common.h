// Deterministic reference sketches behind the checked-in v1 golden
// fixtures in tests/golden/. The generator (wire_golden_gen.cc) encodes
// these with SerializeV1 and writes the .bin files; wire_compat_test
// rebuilds the same sketches and asserts (a) the legacy encoder still
// produces the golden bytes byte-for-byte and (b) the goldens decode
// into the same state. Never change these recipes without regenerating
// the fixtures — they pin the v1 wire contract.

#ifndef DSKETCH_TESTS_WIRE_GOLDEN_COMMON_H_
#define DSKETCH_TESTS_WIRE_GOLDEN_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/serialization.h"
#include "util/random.h"

namespace dsketch {
namespace golden {

/// Canonical ordering for entry comparison across serialization tests:
/// ties in count are ordered by item, which the wire formats do not (and
/// need not) preserve.
inline std::vector<SketchEntry> Canonical(std::vector<SketchEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.item < b.item;
            });
  return entries;
}

inline UnbiasedSpaceSaving Unbiased() {
  UnbiasedSpaceSaving sketch(32, 1001);
  Rng rng(2001);
  for (int i = 0; i < 5000; ++i) sketch.Update(rng.NextBounded(200));
  return sketch;
}

inline DeterministicSpaceSaving Deterministic() {
  DeterministicSpaceSaving sketch(16, 1002);
  for (int i = 0; i < 3000; ++i) sketch.Update(i % 40);
  return sketch;
}

inline WeightedSpaceSaving Weighted() {
  WeightedSpaceSaving sketch(8, 1003);
  Rng rng(2003);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(rng.NextBounded(50), 0.25 + rng.NextDouble());
  }
  return sketch;
}

inline MultiMetricSpaceSaving MultiMetric() {
  MultiMetricSpaceSaving sketch(16, 3, 1004);
  Rng rng(2004);
  for (int i = 0; i < 4000; ++i) {
    sketch.Update(rng.NextBounded(60), 0.5 + rng.NextDouble(),
                  {rng.NextDouble(), 2.0 * rng.NextDouble(), 0.0});
  }
  return sketch;
}

inline MisraGries MisraGriesSketch() {
  MisraGries sketch(12);
  Rng rng(2005);
  for (int i = 0; i < 8000; ++i) sketch.Update(rng.NextBounded(300));
  return sketch;
}

inline CountMin CountMinSketch() {
  CountMin sketch(16, 2, 1006, /*conservative=*/true);
  Rng rng(2006);
  for (int i = 0; i < 3000; ++i) {
    sketch.Update(rng.NextBounded(100), 1 + rng.NextBounded(4));
  }
  return sketch;
}

/// File names of the v1 fixtures, index-aligned with the kinds above.
inline constexpr const char* kFixtureNames[] = {
    "v1_unbiased.bin",    "v1_deterministic.bin", "v1_weighted.bin",
    "v1_multimetric.bin", "v1_misragries.bin",    "v1_countmin.bin",
};

}  // namespace golden
}  // namespace dsketch

#endif  // DSKETCH_TESTS_WIRE_GOLDEN_COMMON_H_
