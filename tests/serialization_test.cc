// Tests for core/serialization: round trips for all three sketch kinds,
// network-merge workflows, and rejection of malformed/hostile inputs.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/merge.h"
#include "core/serialization.h"
#include "util/random.h"

namespace dsketch {
namespace {

// Canonical ordering for entry comparison: ties in count are ordered by
// slot position, which serialization does not (and need not) preserve.
std::vector<SketchEntry> Canonical(std::vector<SketchEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SketchEntry& a, const SketchEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.item < b.item;
            });
  return entries;
}

TEST(SerializationTest, UnbiasedRoundTrip) {
  UnbiasedSpaceSaving sketch(32, 1);
  Rng rng(400);
  for (int i = 0; i < 5000; ++i) sketch.Update(rng.NextBounded(200));

  std::string bytes = Serialize(sketch);
  auto restored = DeserializeUnbiased(bytes, 2);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->capacity(), sketch.capacity());
  EXPECT_EQ(restored->size(), sketch.size());
  EXPECT_EQ(restored->TotalCount(), sketch.TotalCount());
  EXPECT_EQ(restored->MinCount(), sketch.MinCount());
  EXPECT_EQ(Canonical(restored->Entries()), Canonical(sketch.Entries()));
}

TEST(SerializationTest, DeterministicRoundTrip) {
  DeterministicSpaceSaving sketch(16, 3);
  for (int i = 0; i < 3000; ++i) sketch.Update(i % 40);
  std::string bytes = Serialize(sketch);
  auto restored = DeserializeDeterministic(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(Canonical(restored->Entries()), Canonical(sketch.Entries()));
}

TEST(SerializationTest, WeightedRoundTrip) {
  WeightedSpaceSaving sketch(8, 4);
  Rng rng(401);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(rng.NextBounded(50), 0.25 + rng.NextDouble());
  }
  std::string bytes = Serialize(sketch);
  auto restored = DeserializeWeighted(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), sketch.size());
  EXPECT_NEAR(restored->TotalWeight(), sketch.TotalWeight(),
              1e-9 * sketch.TotalWeight());
  for (const WeightedEntry& e : sketch.Entries()) {
    EXPECT_DOUBLE_EQ(restored->EstimateWeight(e.item), e.weight);
  }
}

TEST(SerializationTest, EmptySketchRoundTrip) {
  UnbiasedSpaceSaving sketch(8, 5);
  auto restored = DeserializeUnbiased(Serialize(sketch));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_EQ(restored->TotalCount(), 0);
}

TEST(SerializationTest, RestoredSketchAcceptsUpdatesAndMerges) {
  // The map-reduce workflow: mappers serialize, the reducer deserializes
  // and merges.
  UnbiasedSpaceSaving mapper1(16, 6), mapper2(16, 7);
  for (int i = 0; i < 2000; ++i) {
    mapper1.Update(i % 30);
    mapper2.Update(100 + (i % 50));
  }
  auto r1 = DeserializeUnbiased(Serialize(mapper1), 8);
  auto r2 = DeserializeUnbiased(Serialize(mapper2), 9);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  UnbiasedSpaceSaving merged = Merge(*r1, *r2, 16, 10);
  EXPECT_EQ(merged.TotalCount(), 4000);
  merged.Update(999);
  EXPECT_EQ(merged.TotalCount(), 4001);
}

TEST(SerializationTest, RejectsWrongKind) {
  UnbiasedSpaceSaving uss(8, 11);
  uss.Update(1);
  std::string bytes = Serialize(uss);
  EXPECT_FALSE(DeserializeDeterministic(bytes).has_value());
  EXPECT_FALSE(DeserializeWeighted(bytes).has_value());
  EXPECT_TRUE(DeserializeUnbiased(bytes).has_value());
}

TEST(SerializationTest, RejectsTruncatedInput) {
  UnbiasedSpaceSaving sketch(8, 12);
  for (int i = 0; i < 100; ++i) sketch.Update(i % 10);
  std::string bytes = Serialize(sketch);
  for (size_t cut : {0ul, 1ul, 4ul, 10ul, bytes.size() - 1}) {
    EXPECT_FALSE(
        DeserializeUnbiased(std::string_view(bytes.data(), cut)).has_value())
        << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  UnbiasedSpaceSaving sketch(8, 13);
  sketch.Update(5);
  std::string bytes = Serialize(sketch);
  bytes.push_back('x');
  EXPECT_FALSE(DeserializeUnbiased(bytes).has_value());
}

TEST(SerializationTest, RejectsBadMagicAndCorruptHeader) {
  UnbiasedSpaceSaving sketch(8, 14);
  sketch.Update(5);
  std::string bytes = Serialize(sketch);
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeUnbiased(bad_magic).has_value());

  // Corrupt entry count to exceed capacity.
  std::string bad_count = bytes;
  bad_count[16] = 'z';  // entry_count field
  EXPECT_FALSE(DeserializeUnbiased(bad_count).has_value());
}

TEST(SerializationTest, RejectsNegativeCountsAndDuplicates) {
  // Hand-craft: header for kUnbiased, capacity 4, 2 entries.
  auto craft = [](int64_t count2, uint64_t item2) {
    std::string out;
    uint32_t magic = 0x44534B31;
    uint8_t kind = 1, version = 1;
    uint16_t reserved = 0;
    uint64_t capacity = 4;
    uint32_t n = 2;
    out.append(reinterpret_cast<char*>(&magic), 4);
    out.append(reinterpret_cast<char*>(&kind), 1);
    out.append(reinterpret_cast<char*>(&version), 1);
    out.append(reinterpret_cast<char*>(&reserved), 2);
    out.append(reinterpret_cast<char*>(&capacity), 8);
    out.append(reinterpret_cast<char*>(&n), 4);
    uint64_t item1 = 7;
    int64_t count1 = 5;
    out.append(reinterpret_cast<char*>(&item1), 8);
    out.append(reinterpret_cast<char*>(&count1), 8);
    out.append(reinterpret_cast<char*>(&item2), 8);
    out.append(reinterpret_cast<char*>(&count2), 8);
    return out;
  };
  EXPECT_TRUE(DeserializeUnbiased(craft(3, 8)).has_value());
  EXPECT_FALSE(DeserializeUnbiased(craft(-3, 8)).has_value());  // negative
  EXPECT_FALSE(DeserializeUnbiased(craft(3, 7)).has_value());   // duplicate
}

TEST(SerializationTest, WireSizeIsCompact) {
  UnbiasedSpaceSaving sketch(100, 15);
  Rng rng(402);
  for (int i = 0; i < 100000; ++i) sketch.Update(rng.NextBounded(10000));
  std::string bytes = Serialize(sketch);
  // Header (20B) + 100 entries x 16B.
  EXPECT_EQ(bytes.size(), 20u + 100u * 16u);
}

}  // namespace
}  // namespace dsketch
