// Tests for core/serialization: v2 round trips for every serializable
// kind, v1 cross-version decoding, network-merge workflows, per-version
// wire-size budgets, and rejection of malformed/hostile inputs. The
// offset-based tampering tests target the fixed-width v1 layout via
// SerializeV1; wire_adversarial_test sweeps both versions exhaustively.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/merge.h"
#include "core/serialization.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"
#include "util/span.h"
#include "wire_golden_common.h"

namespace dsketch {
namespace {

using golden::Canonical;

TEST(SerializationTest, UnbiasedRoundTrip) {
  UnbiasedSpaceSaving sketch(32, 1);
  Rng rng(400);
  for (int i = 0; i < 5000; ++i) sketch.Update(rng.NextBounded(200));

  std::string bytes = Serialize(sketch);
  auto restored = DeserializeUnbiased(bytes, 2);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->capacity(), sketch.capacity());
  EXPECT_EQ(restored->size(), sketch.size());
  EXPECT_EQ(restored->TotalCount(), sketch.TotalCount());
  EXPECT_EQ(restored->MinCount(), sketch.MinCount());
  EXPECT_EQ(Canonical(restored->Entries()), Canonical(sketch.Entries()));
}

TEST(SerializationTest, DeterministicRoundTrip) {
  DeterministicSpaceSaving sketch(16, 3);
  for (int i = 0; i < 3000; ++i) sketch.Update(i % 40);
  std::string bytes = Serialize(sketch);
  auto restored = DeserializeDeterministic(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(Canonical(restored->Entries()), Canonical(sketch.Entries()));
}

TEST(SerializationTest, WeightedRoundTrip) {
  WeightedSpaceSaving sketch(8, 4);
  Rng rng(401);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(rng.NextBounded(50), 0.25 + rng.NextDouble());
  }
  std::string bytes = Serialize(sketch);
  auto restored = DeserializeWeighted(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), sketch.size());
  EXPECT_NEAR(restored->TotalWeight(), sketch.TotalWeight(),
              1e-9 * sketch.TotalWeight());
  for (const WeightedEntry& e : sketch.Entries()) {
    EXPECT_DOUBLE_EQ(restored->EstimateWeight(e.item), e.weight);
  }
}

TEST(SerializationTest, EmptySketchRoundTrip) {
  UnbiasedSpaceSaving sketch(8, 5);
  auto restored = DeserializeUnbiased(Serialize(sketch));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), 0u);
  EXPECT_EQ(restored->TotalCount(), 0);
}

TEST(SerializationTest, RestoredSketchAcceptsUpdatesAndMerges) {
  // The map-reduce workflow: mappers serialize, the reducer deserializes
  // and merges.
  UnbiasedSpaceSaving mapper1(16, 6), mapper2(16, 7);
  for (int i = 0; i < 2000; ++i) {
    mapper1.Update(i % 30);
    mapper2.Update(100 + (i % 50));
  }
  auto r1 = DeserializeUnbiased(Serialize(mapper1), 8);
  auto r2 = DeserializeUnbiased(Serialize(mapper2), 9);
  ASSERT_TRUE(r1.has_value() && r2.has_value());
  UnbiasedSpaceSaving merged = Merge(*r1, *r2, 16, 10);
  EXPECT_EQ(merged.TotalCount(), 4000);
  merged.Update(999);
  EXPECT_EQ(merged.TotalCount(), 4001);
}

TEST(SerializationTest, MultiMetricRoundTrip) {
  // Primary + 3 auxiliary metrics; HT-scaled metric values survive the
  // trip bit-for-bit.
  MultiMetricSpaceSaving sketch(16, 3, 20);
  Rng rng(403);
  for (int i = 0; i < 4000; ++i) {
    uint64_t item = rng.NextBounded(60);
    sketch.Update(item, 0.5 + rng.NextDouble(),
                  {rng.NextDouble(), 2.0 * rng.NextDouble(), 0.0});
  }
  std::string bytes = Serialize(sketch);
  auto restored = DeserializeMultiMetric(bytes, 21);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->capacity(), sketch.capacity());
  EXPECT_EQ(restored->num_metrics(), sketch.num_metrics());
  EXPECT_EQ(restored->size(), sketch.size());
  // The restored total is the bin sum; summation order differs from the
  // original's running accumulation, so compare to fp rounding only.
  EXPECT_NEAR(restored->TotalPrimary(), sketch.TotalPrimary(),
              1e-9 * sketch.TotalPrimary());
  for (const MultiMetricEntry& b : sketch.bins()) {
    EXPECT_DOUBLE_EQ(restored->EstimatePrimary(b.item), b.primary);
    for (size_t k = 0; k < sketch.num_metrics(); ++k) {
      EXPECT_DOUBLE_EQ(restored->EstimateMetric(b.item, k), b.metrics[k]);
    }
  }
  // The restored sketch keeps working.
  double before = restored->TotalPrimary();
  restored->Update(999, 1.0, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(restored->TotalPrimary(), before + 1.0);
}

TEST(SerializationTest, MisraGriesRoundTrip) {
  MisraGries sketch(12);
  Rng rng(404);
  for (int i = 0; i < 8000; ++i) sketch.Update(rng.NextBounded(300));
  ASSERT_GT(sketch.decrements(), 0);  // the stream forced decrements

  std::string bytes = Serialize(sketch);
  auto restored = DeserializeMisraGries(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->capacity(), sketch.capacity());
  EXPECT_EQ(restored->size(), sketch.size());
  EXPECT_EQ(restored->decrements(), sketch.decrements());
  EXPECT_EQ(restored->TotalCount(), sketch.TotalCount());
  EXPECT_EQ(Canonical(restored->Entries()), Canonical(sketch.Entries()));
  for (const SketchEntry& e : sketch.Entries()) {
    EXPECT_EQ(restored->EstimateCount(e.item), e.count);
    EXPECT_EQ(restored->UpperBound(e.item), sketch.UpperBound(e.item));
  }
}

TEST(SerializationTest, CountMinRoundTrip) {
  for (bool conservative : {false, true}) {
    CountMin sketch(64, 4, 17, conservative);
    Rng rng(405);
    for (int i = 0; i < 5000; ++i) {
      sketch.Update(rng.NextBounded(500), 1 + rng.NextBounded(4));
    }
    std::string bytes = Serialize(sketch);
    auto restored = DeserializeCountMin(bytes);
    ASSERT_TRUE(restored.has_value()) << "conservative " << conservative;
    EXPECT_EQ(restored->width(), sketch.width());
    EXPECT_EQ(restored->depth(), sketch.depth());
    EXPECT_EQ(restored->seed(), sketch.seed());
    EXPECT_EQ(restored->conservative(), sketch.conservative());
    EXPECT_EQ(restored->TotalCount(), sketch.TotalCount());
    EXPECT_EQ(restored->table(), sketch.table());
    // Hashes re-derived from the seed: estimates match bit-for-bit, and
    // further updates land in the same cells.
    for (uint64_t item = 0; item < 500; ++item) {
      ASSERT_EQ(restored->EstimateCount(item), sketch.EstimateCount(item))
          << "item " << item;
    }
    restored->Update(42, 7);
    sketch.Update(42, 7);
    EXPECT_EQ(restored->table(), sketch.table());
  }
}

TEST(SerializationTest, EmptyFrequencySketchesRoundTrip) {
  MisraGries mg(8);
  auto mg_restored = DeserializeMisraGries(Serialize(mg));
  ASSERT_TRUE(mg_restored.has_value());
  EXPECT_EQ(mg_restored->size(), 0u);
  EXPECT_EQ(mg_restored->TotalCount(), 0);

  CountMin cm(32, 2, 9);
  auto cm_restored = DeserializeCountMin(Serialize(cm));
  ASSERT_TRUE(cm_restored.has_value());
  EXPECT_EQ(cm_restored->TotalCount(), 0);
  EXPECT_EQ(cm_restored->EstimateCount(123), 0);

  MultiMetricSpaceSaving mm(8, 2, 10);
  auto mm_restored = DeserializeMultiMetric(Serialize(mm));
  ASSERT_TRUE(mm_restored.has_value());
  EXPECT_EQ(mm_restored->size(), 0u);
  EXPECT_DOUBLE_EQ(mm_restored->TotalPrimary(), 0.0);
}

TEST(SerializationTest, RejectsWrongKind) {
  UnbiasedSpaceSaving uss(8, 11);
  uss.Update(1);
  std::string bytes = Serialize(uss);
  EXPECT_FALSE(DeserializeDeterministic(bytes).has_value());
  EXPECT_FALSE(DeserializeWeighted(bytes).has_value());
  EXPECT_FALSE(DeserializeMultiMetric(bytes).has_value());
  EXPECT_FALSE(DeserializeMisraGries(bytes).has_value());
  EXPECT_FALSE(DeserializeCountMin(bytes).has_value());
  EXPECT_TRUE(DeserializeUnbiased(bytes).has_value());

  MisraGries mg(8);
  mg.Update(1);
  std::string mg_bytes = Serialize(mg);
  EXPECT_FALSE(DeserializeUnbiased(mg_bytes).has_value());
  EXPECT_FALSE(DeserializeCountMin(mg_bytes).has_value());
  EXPECT_TRUE(DeserializeMisraGries(mg_bytes).has_value());
}

TEST(SerializationTest, RejectsTruncatedFrequencyInputs) {
  MisraGries mg(8);
  for (int i = 0; i < 100; ++i) mg.Update(i % 10);
  std::string mg_bytes = Serialize(mg);
  CountMin cm(16, 2, 3);
  cm.Update(1);
  std::string cm_bytes = Serialize(cm);
  MultiMetricSpaceSaving mm(4, 2, 5);
  mm.Update(1, 1.0, {1.0, 0.0});
  std::string mm_bytes = Serialize(mm);
  for (const std::string* bytes : {&mg_bytes, &cm_bytes, &mm_bytes}) {
    for (size_t cut :
         {size_t{0}, size_t{1}, size_t{4}, size_t{19}, bytes->size() - 1}) {
      std::string_view view(bytes->data(), cut);
      EXPECT_FALSE(DeserializeMisraGries(view).has_value());
      EXPECT_FALSE(DeserializeCountMin(view).has_value());
      EXPECT_FALSE(DeserializeMultiMetric(view).has_value());
    }
    std::string padded = *bytes;
    padded.push_back('x');
    EXPECT_FALSE(DeserializeMisraGries(padded).has_value());
    EXPECT_FALSE(DeserializeCountMin(padded).has_value());
    EXPECT_FALSE(DeserializeMultiMetric(padded).has_value());
  }
}

TEST(SerializationTest, MultiMetricRejectsNonFinitePayloads) {
  // Update and Serialize both CHECK finiteness, so non-finite values on
  // the wire can only be tampering; NaN/inf would poison the restored
  // accumulators and must be rejected.
  MultiMetricSpaceSaving mm(4, 2, 5);
  mm.Update(1, 1.0, {2.0, 3.0});
  std::string bytes = SerializeV1(mm);
  // v1 layout: 20-byte header, num_metrics u32 at 20, then the bin —
  // item at 24, primary at 32, metrics at 40 and 48.
  for (double evil : {std::numeric_limits<double>::quiet_NaN(),
                      std::numeric_limits<double>::infinity()}) {
    for (size_t offset : {size_t{32}, size_t{40}, size_t{48}}) {
      std::string tampered = bytes;
      std::memcpy(&tampered[offset], &evil, sizeof(evil));
      EXPECT_FALSE(DeserializeMultiMetric(tampered).has_value())
          << "value " << evil << " at offset " << offset;
    }
    // In v2 the doubles sit at the end of the blob (varint item, then
    // fixed-width primary + metrics); tamper the final metric.
    std::string v2 = Serialize(mm);
    std::memcpy(&v2[v2.size() - sizeof(evil)], &evil, sizeof(evil));
    EXPECT_FALSE(DeserializeMultiMetric(v2).has_value()) << "v2 " << evil;
  }
}

TEST(SerializationTest, CountMinRejectsInconsistentGeometry) {
  CountMin cm(3, 2, 5);  // 6 cells
  cm.Update(1);
  std::string bytes = SerializeV1(cm);
  // v1 width/depth live at offsets 20/28. A width beyond the cell count is
  // rejected by the per-field bound (which also rules out uint64 wrap
  // in the product check: width, depth <= cells <= 2^25)...
  uint64_t huge_width = (1ULL << 63) + 3;
  std::memcpy(&bytes[20], &huge_width, sizeof(huge_width));
  EXPECT_FALSE(DeserializeCountMin(bytes).has_value());
  // ...and in-range width/depth whose product is not the cell count
  // (3 x 3 claimed, 6 cells present) by the consistency check.
  uint64_t three = 3;
  std::memcpy(&bytes[20], &three, sizeof(three));
  std::memcpy(&bytes[28], &three, sizeof(three));
  EXPECT_FALSE(DeserializeCountMin(bytes).has_value());
}

TEST(SerializationTest, CountMinRejectsInconsistentTotal) {
  // No real CountMin has a row summing past `total` (or, without
  // conservative update, to anything but `total`), so a tampered total
  // would let EstimateCount exceed TotalCount and must be rejected.
  CountMin cm(8, 2, /*seed=*/5);
  cm.Update(1, 3);
  std::string bytes = SerializeV1(cm);
  // In v1, `total` lives at offset 45, after the 20-byte header and the
  // width/depth/seed/conservative sub-header fields.
  int64_t zero = 0;
  std::memcpy(&bytes[45], &zero, sizeof(zero));
  EXPECT_FALSE(DeserializeCountMin(bytes).has_value());
}

TEST(SerializationTest, MisraGriesRejectsCounterOverflow) {
  MisraGries mg(4);
  mg.Update(1);
  std::string bytes = SerializeV1(mg);
  // v1: decrements at offset 20, total at 28, the entry's count at 44. A
  // count + decrements sum that would wrap int64 must be rejected, not
  // stored as a negative counter; the estimate-budget invariant
  // (count <= total - decrements) already guarantees this.
  int64_t huge = int64_t{1} << 62;
  std::memcpy(&bytes[20], &huge, sizeof(huge));
  std::memcpy(&bytes[28], &huge, sizeof(huge));
  std::memcpy(&bytes[44], &huge, sizeof(huge));
  EXPECT_FALSE(DeserializeMisraGries(bytes).has_value());
}

TEST(SerializationTest, RejectsImplausiblyLargeCapacity) {
  // A hostile header must not force a multi-gigabyte allocation before
  // payload validation; capacities beyond the documented cap are
  // rejected outright.
  UnbiasedSpaceSaving uss(8, 16);
  uss.Update(1);
  std::string bytes = SerializeV1(uss);
  uint64_t evil_capacity = 0xFFFFFFF0ULL;  // v1 capacity field at offset 8
  std::memcpy(&bytes[8], &evil_capacity, sizeof(evil_capacity));
  EXPECT_FALSE(DeserializeUnbiased(bytes).has_value());

  MultiMetricSpaceSaving mm(4, 1024, 17);
  std::string mm_bytes = SerializeV1(mm);
  uint64_t big_capacity = 1ULL << 21;  // passes the header cap alone...
  std::memcpy(&mm_bytes[8], &big_capacity, sizeof(big_capacity));
  // ...but capacity x num_metrics exceeds the footprint bound.
  EXPECT_FALSE(DeserializeMultiMetric(mm_bytes).has_value());
}

TEST(SerializationTest, MisraGriesRejectsInconsistentTotals) {
  MisraGries mg(4);
  for (int i = 0; i < 50; ++i) mg.Update(1);
  std::string bytes = SerializeV1(mg);
  // The v1 total field sits after the header (20B) and decrements (8B);
  // shrink it below the entry sum.
  int64_t bogus_total = 3;
  std::memcpy(&bytes[28], &bogus_total, sizeof(bogus_total));
  EXPECT_FALSE(DeserializeMisraGries(bytes).has_value());

  // Estimates must also fit within total - decrements: a blob claiming
  // every row was both counted and decremented away is impossible and,
  // if accepted, would merge into unserializable states.
  MisraGries mg2(4);
  for (int i = 0; i < 10; ++i) mg2.Update(1);  // one entry, count 10
  std::string bytes2 = SerializeV1(mg2);
  int64_t bogus_decrements = 10;  // total stays 10
  std::memcpy(&bytes2[20], &bogus_decrements, sizeof(bogus_decrements));
  EXPECT_FALSE(DeserializeMisraGries(bytes2).has_value());
}

TEST(SerializationTest, RejectsTruncatedInput) {
  UnbiasedSpaceSaving sketch(8, 12);
  for (int i = 0; i < 100; ++i) sketch.Update(i % 10);
  std::string bytes = Serialize(sketch);
  for (size_t cut :
       {size_t{0}, size_t{1}, size_t{4}, size_t{10}, bytes.size() - 1}) {
    EXPECT_FALSE(
        DeserializeUnbiased(std::string_view(bytes.data(), cut)).has_value())
        << "cut at " << cut;
  }
}

TEST(SerializationTest, RejectsTrailingGarbage) {
  UnbiasedSpaceSaving sketch(8, 13);
  sketch.Update(5);
  std::string bytes = Serialize(sketch);
  bytes.push_back('x');
  EXPECT_FALSE(DeserializeUnbiased(bytes).has_value());
}

TEST(SerializationTest, RejectsBadMagicAndCorruptHeader) {
  UnbiasedSpaceSaving sketch(8, 14);
  sketch.Update(5);
  for (std::string bytes : {Serialize(sketch), SerializeV1(sketch)}) {
    std::string bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_FALSE(DeserializeUnbiased(bad_magic).has_value());

    std::string bad_version = bytes;
    bad_version[5] = 99;  // version byte outside the supported range
    EXPECT_FALSE(DeserializeUnbiased(bad_version).has_value());
  }

  // Corrupt the v1 entry count to exceed capacity (u32 at offset 16).
  std::string bad_count = SerializeV1(sketch);
  bad_count[16] = 'z';
  EXPECT_FALSE(DeserializeUnbiased(bad_count).has_value());

  // The v2 equivalent: single-byte varints, capacity 8 at offset 8 and
  // entry count at offset 9 — claim 9 entries in an 8-bin sketch.
  std::string bad_count2 = Serialize(sketch);
  ASSERT_EQ(bad_count2[8], 8);
  bad_count2[9] = 9;
  EXPECT_FALSE(DeserializeUnbiased(bad_count2).has_value());
}

TEST(SerializationTest, RejectsNegativeCountsAndDuplicates) {
  // Hand-craft: header for kUnbiased, capacity 4, 2 entries.
  auto craft = [](int64_t count2, uint64_t item2) {
    std::string out;
    uint32_t magic = 0x44534B31;
    uint8_t kind = 1, version = 1;
    uint16_t reserved = 0;
    uint64_t capacity = 4;
    uint32_t n = 2;
    out.append(reinterpret_cast<char*>(&magic), 4);
    out.append(reinterpret_cast<char*>(&kind), 1);
    out.append(reinterpret_cast<char*>(&version), 1);
    out.append(reinterpret_cast<char*>(&reserved), 2);
    out.append(reinterpret_cast<char*>(&capacity), 8);
    out.append(reinterpret_cast<char*>(&n), 4);
    uint64_t item1 = 7;
    int64_t count1 = 5;
    out.append(reinterpret_cast<char*>(&item1), 8);
    out.append(reinterpret_cast<char*>(&count1), 8);
    out.append(reinterpret_cast<char*>(&item2), 8);
    out.append(reinterpret_cast<char*>(&count2), 8);
    return out;
  };
  EXPECT_TRUE(DeserializeUnbiased(craft(3, 8)).has_value());
  EXPECT_FALSE(DeserializeUnbiased(craft(-3, 8)).has_value());  // negative
  EXPECT_FALSE(DeserializeUnbiased(craft(3, 7)).has_value());   // duplicate
}

// Per-version wire-size budgets. The v1 layout is pinned exactly (part
// of the legacy decode contract); v2 must beat it by at least 30% on a
// Zipf(1.1) stream at 2^16 capacity (the varint/delta layout's target
// workload: small item ids, long near-minimum count tail).
TEST(SerializationTest, WireSizeBudgets) {
  UnbiasedSpaceSaving small(100, 15);
  Rng rng(402);
  for (int i = 0; i < 100000; ++i) small.Update(rng.NextBounded(10000));
  // v1: header (20B) + 100 entries x 16B, byte-exact.
  EXPECT_EQ(SerializeV1(small).size(), 20u + 100u * 16u);
  // v2 never exceeds the v1 footprint, even on this uniform stream.
  EXPECT_LE(Serialize(small).size(), SerializeV1(small).size());

  const size_t capacity = size_t{1} << 16;
  UnbiasedSpaceSaving sketch(capacity, 16);
  std::vector<int64_t> counts =
      ZipfCounts(2 * capacity, 1.1, /*max_count=*/1 << 18);
  std::vector<uint64_t> stream = SortedStream(counts, /*ascending=*/false);
  sketch.UpdateBatch(Span<const uint64_t>(stream.data(), stream.size()));
  ASSERT_EQ(sketch.size(), capacity);  // full sketch: worst case for v2

  const std::string v1 = SerializeV1(sketch);
  const std::string v2 = Serialize(sketch);
  EXPECT_EQ(v1.size(), 20u + capacity * 16u);
  EXPECT_LE(v2.size(), (v1.size() * 7) / 10)
      << "v2 bytes/entry: "
      << static_cast<double>(v2.size()) / static_cast<double>(capacity);
}

TEST(SerializationTest, V1BlobsStillDecode) {
  // Cross-version compatibility: every kind's v1 encoding decodes into
  // the same state the v2 round trip produces.
  UnbiasedSpaceSaving uss(32, 21);
  Rng rng(406);
  for (int i = 0; i < 5000; ++i) uss.Update(rng.NextBounded(200));
  auto from_v1 = DeserializeUnbiased(SerializeV1(uss), 2);
  ASSERT_TRUE(from_v1.has_value());
  EXPECT_EQ(Canonical(from_v1->Entries()), Canonical(uss.Entries()));
  EXPECT_EQ(from_v1->TotalCount(), uss.TotalCount());

  MisraGries mg(12);
  for (int i = 0; i < 8000; ++i) mg.Update(rng.NextBounded(300));
  auto mg_v1 = DeserializeMisraGries(SerializeV1(mg));
  ASSERT_TRUE(mg_v1.has_value());
  EXPECT_EQ(Canonical(mg_v1->Entries()), Canonical(mg.Entries()));
  EXPECT_EQ(mg_v1->decrements(), mg.decrements());

  CountMin cm(64, 4, 17, /*conservative=*/true);
  for (int i = 0; i < 3000; ++i) cm.Update(rng.NextBounded(500), 2);
  auto cm_v1 = DeserializeCountMin(SerializeV1(cm));
  ASSERT_TRUE(cm_v1.has_value());
  EXPECT_EQ(cm_v1->table(), cm.table());
}

TEST(SerializationTest, DescribeWireClassifiesBothVersions) {
  UnbiasedSpaceSaving uss(8, 22);
  uss.Update(1);
  auto v2 = wire::DescribeWire(Serialize(uss));
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->version, wire::kVersionCurrent);
  EXPECT_STREQ(v2->kind_name, "unbiased_space_saving");

  auto v1 = wire::DescribeWire(SerializeV1(uss));
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->version, wire::kVersionLegacy);
  EXPECT_EQ(v1->kind, v2->kind);

  MisraGries mg(4);
  auto mg_info = wire::DescribeWire(Serialize(mg));
  ASSERT_TRUE(mg_info.has_value());
  EXPECT_STREQ(mg_info->kind_name, "misra_gries");

  EXPECT_FALSE(wire::DescribeWire("not a sketch").has_value());
}

}  // namespace
}  // namespace dsketch
