// Tests for the obs metrics layer (src/obs/metrics.h): histogram bucket
// boundaries and percentile math against hand-computed references,
// exact aggregation of concurrent counter increments, registry naming
// rules (sharing, lookup, kind-collision death), and a golden pin of
// the Prometheus-style text exposition on a private registry so the
// format cannot drift under the METRICS opcode and the scrape tooling.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace dsketch {
namespace obs {
namespace {

TEST(HistogramBucketsTest, BoundariesArePowersOfTwoWithSharedEdges) {
  // Bucket 0 holds [0, 1]; bucket i > 0 holds (2^(i-1), 2^i].
  EXPECT_EQ(HistogramSnapshot::BucketIndex(0), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(1), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(2), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(3), 2u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(4), 2u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(5), 3u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(uint64_t{1} << 62), 62u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex((uint64_t{1} << 62) + 1), 63u);
  EXPECT_EQ(HistogramSnapshot::BucketIndex(UINT64_MAX), 63u);

  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(5), 32u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(62), uint64_t{1} << 62);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(63), UINT64_MAX);

  // The index function is the exact inverse of the bounds: every finite
  // bound lands in its own bucket, one past it lands in the next.
  for (size_t i = 0; i + 1 < HistogramSnapshot::kNumBuckets; ++i) {
    const uint64_t bound = HistogramSnapshot::BucketUpperBound(i);
    EXPECT_EQ(HistogramSnapshot::BucketIndex(bound), i) << "bound " << bound;
    EXPECT_EQ(HistogramSnapshot::BucketIndex(bound + 1), i + 1)
        << "bound " << bound;
  }
}

TEST(HistogramPercentileTest, MatchesHandComputedReferences) {
  Histogram empty;
  EXPECT_EQ(empty.Snapshot().Percentile(50), 0.0);

  // 50 samples in bucket 1 ((1,2]) and 50 in bucket 2 ((2,4]): the
  // percentile walk interpolates linearly inside each bucket's bounds.
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(2);
  for (int i = 0; i < 50; ++i) h.Record(4);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 50u * 2 + 50u * 4);
  EXPECT_DOUBLE_EQ(snap.Percentile(25), 1.5);   // halfway through bucket 1
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 2.0);   // exactly bucket 1's bound
  EXPECT_DOUBLE_EQ(snap.Percentile(75), 3.0);   // halfway through bucket 2
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 4.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(snap.Percentile(200), 4.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(-5), snap.Percentile(0));

  // All mass in bucket 0 ([0,1]): interpolation spans [0, 1].
  Histogram ones;
  for (int i = 0; i < 100; ++i) ones.Record(1);
  EXPECT_DOUBLE_EQ(ones.Snapshot().Percentile(50), 0.5);
  EXPECT_DOUBLE_EQ(ones.Snapshot().Percentile(100), 1.0);

  // Overflow bucket: interpolates toward 2^63 (one doubling past the
  // largest finite bound).
  Histogram big;
  big.Record(UINT64_MAX);
  EXPECT_DOUBLE_EQ(big.Snapshot().Percentile(100),
                   static_cast<double>(uint64_t{1} << 62) * 2.0);
}

TEST(HistogramSnapshotTest, SinceSubtractsPerBucketCountAndSum) {
  Histogram h;
  h.Record(3);
  h.Record(300);
  const HistogramSnapshot before = h.Snapshot();
  h.Record(3);
  h.Record(5);
  const HistogramSnapshot delta = h.Snapshot().Since(before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 8u);
  EXPECT_EQ(delta.buckets[HistogramSnapshot::BucketIndex(3)], 1u);
  EXPECT_EQ(delta.buckets[HistogramSnapshot::BucketIndex(5)], 1u);
  EXPECT_EQ(delta.buckets[HistogramSnapshot::BucketIndex(300)], 0u);
}

TEST(CounterTest, ConcurrentIncrementsAggregateExactly) {
  // Through the global registry, the way real call sites share series.
  Counter& counter = MetricsRegistry::Global().GetCounter(
      "obs_test_concurrent_total");
  Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "obs_test_concurrent_us");
  const uint64_t base = counter.Value();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Inc();
        hist.Record(i & 1023);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  // Relaxed atomics lose nothing: totals are exact, not approximate.
  EXPECT_EQ(counter.Value() - base, kThreads * kPerThread);
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  uint64_t per_thread_sum = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) per_thread_sum += i & 1023;
  EXPECT_EQ(hist.Sum(), kThreads * per_thread_sum);
}

TEST(GaugeTest, SetAddAndMonotoneRaiseTo) {
  Gauge g;
  g.Set(5);
  EXPECT_EQ(g.Value(), 5);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 3);
  g.RaiseTo(10);
  EXPECT_EQ(g.Value(), 10);
  g.RaiseTo(7);  // never lowers
  EXPECT_EQ(g.Value(), 10);
}

TEST(ScopedTimerTest, RecordsOneSampleOnDestruction) {
  Histogram h;
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.Count(), 1u);
}

TEST(MetricsRegistryTest, SameNameSharesOneSeries) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("shared_total");
  Counter& b = registry.GetCounter("shared_total");
  EXPECT_EQ(&a, &b);
  a.Inc(3);
  EXPECT_EQ(b.Value(), 3u);
  EXPECT_EQ(registry.size(), 1u);

  // Find never creates, and answers nullptr across kinds.
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
  EXPECT_EQ(registry.FindGauge("shared_total"), nullptr);
  ASSERT_NE(registry.FindCounter("shared_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("shared_total")->Value(), 3u);
}

TEST(MetricsRegistryDeathTest, KindCollisionIsAProgrammerError) {
  MetricsRegistry registry;
  registry.GetCounter("collide_total");
  EXPECT_DEATH(registry.GetGauge("collide_total"), "");
  EXPECT_DEATH(MetricsRegistry::Global().GetCounter(""), "");
}

TEST(MetricsTextTest, GoldenExpositionFormat) {
  // A private registry pins the exact text (the global one carries
  // whatever the rest of the test binary touched).
  MetricsRegistry registry;
  registry.GetGauge("test_depth").Set(-5);
  Histogram& lat = registry.GetHistogram("test_lat_us");
  lat.Record(1);    // bucket 0
  lat.Record(3);    // bucket 2
  lat.Record(100);  // bucket 7 (le=128)
  registry.GetCounter("test_requests_total{op=\"a\"}").Inc(7);
  registry.GetCounter("test_requests_total{op=\"b\"}");
  EXPECT_EQ(registry.DumpText(),
            "# TYPE test_depth gauge\n"
            "test_depth -5\n"
            "# TYPE test_lat_us histogram\n"
            "test_lat_us_bucket{le=\"1\"} 1\n"
            "test_lat_us_bucket{le=\"2\"} 1\n"
            "test_lat_us_bucket{le=\"4\"} 2\n"
            "test_lat_us_bucket{le=\"8\"} 2\n"
            "test_lat_us_bucket{le=\"16\"} 2\n"
            "test_lat_us_bucket{le=\"32\"} 2\n"
            "test_lat_us_bucket{le=\"64\"} 2\n"
            "test_lat_us_bucket{le=\"128\"} 3\n"
            "test_lat_us_bucket{le=\"+Inf\"} 3\n"
            "test_lat_us_sum 104\n"
            "test_lat_us_count 3\n"
            "# TYPE test_requests_total counter\n"
            "test_requests_total{op=\"a\"} 7\n"
            "test_requests_total{op=\"b\"} 0\n");

  // Labeled histograms carry their labels on every sub-series line,
  // joined with le= inside one brace set.
  MetricsRegistry labeled;
  labeled.GetHistogram("lat_us{op=\"q\"}").Record(2);
  EXPECT_EQ(labeled.DumpText(),
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{op=\"q\",le=\"2\"} 1\n"
            "lat_us_bucket{op=\"q\",le=\"+Inf\"} 1\n"
            "lat_us_sum{op=\"q\"} 2\n"
            "lat_us_count{op=\"q\"} 1\n");
}

TEST(MetricsTextTest, PrefixFiltersByFamily) {
  MetricsRegistry registry;
  registry.GetCounter("aaa_x_total").Inc();
  registry.GetCounter("bbb_y_total").Inc(2);
  const std::string only_b = registry.DumpText("bbb_");
  EXPECT_EQ(only_b,
            "# TYPE bbb_y_total counter\n"
            "bbb_y_total 2\n");
  EXPECT_EQ(registry.Snapshot("aaa_").size(), 1u);
  EXPECT_EQ(registry.Snapshot().size(), 2u);
  EXPECT_EQ(registry.DumpText("zzz_"), "");
}

TEST(MetricsBuildTest, BuildModeMatchesCompileConfig) {
#ifdef DSKETCH_NO_METRICS
  EXPECT_STREQ(MetricsBuildMode(), "off");
#else
  EXPECT_STREQ(MetricsBuildMode(), "on");
#endif
}

}  // namespace
}  // namespace obs
}  // namespace dsketch
