// Integration tests: miniature versions of the paper's evaluation
// pipelines, asserting the *qualitative* results each figure reports —
// USS competitive with priority sampling (Figs. 3, 5), orders of magnitude
// better than bottom-k on skew (Fig. 4), robust where Deterministic Space
// Saving collapses (Figs. 7, 10), and better-than-sample-and-hold error
// (§5.4).

#include <cmath>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/deterministic_space_saving.h"
#include "core/subset_sum.h"
#include "core/unbiased_space_saving.h"
#include "query/exact_aggregator.h"
#include "sampling/bottom_k.h"
#include "sampling/priority_sampling.h"
#include "sampling/sample_and_hold.h"
#include "stats/summary.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"

namespace dsketch {
namespace {

// Shared miniature workload: skewed counts, random 25-item subsets.
struct MiniWorkload {
  std::vector<int64_t> counts;
  std::vector<std::unordered_set<uint64_t>> subsets;
  std::vector<double> subset_truth;
};

MiniWorkload MakeMiniWorkload(uint64_t seed) {
  MiniWorkload w;
  w.counts = WeibullCounts(400, 100.0, 0.4);
  Rng rng(seed);
  for (int s = 0; s < 20; ++s) {
    std::unordered_set<uint64_t> subset;
    double truth = 0;
    while (subset.size() < 25) {
      uint64_t item = rng.NextBounded(w.counts.size());
      if (subset.insert(item).second) {
        truth += static_cast<double>(w.counts[item]);
      }
    }
    w.subsets.push_back(std::move(subset));
    w.subset_truth.push_back(truth);
  }
  return w;
}

TEST(IntegrationTest, UssCompetitiveWithPrioritySampling) {
  // Paper Figs. 3/5: USS on raw rows matches priority sampling on
  // pre-aggregated data (within a modest factor in this mini setup).
  MiniWorkload w = MakeMiniWorkload(800);
  const size_t kM = 50;
  const int kTrials = 400;

  std::vector<ErrorAccumulator> uss_err(w.subsets.size());
  std::vector<ErrorAccumulator> pri_err(w.subsets.size());

  for (int t = 0; t < kTrials; ++t) {
    Rng rng(310000 + t);
    auto rows = PermutedStream(w.counts, rng);
    UnbiasedSpaceSaving uss(kM, 320000 + t);
    for (uint64_t item : rows) uss.Update(item);

    PrioritySampler pri(kM, 330000 + t);
    for (size_t i = 0; i < w.counts.size(); ++i) {
      if (w.counts[i] > 0) pri.Add(i, static_cast<double>(w.counts[i]));
    }

    for (size_t s = 0; s < w.subsets.size(); ++s) {
      const auto& subset = w.subsets[s];
      auto pred = [&subset](uint64_t x) { return subset.count(x) > 0; };
      uss_err[s].Add(EstimateSubsetSum(uss, pred).estimate,
                     w.subset_truth[s]);
      pri_err[s].Add(pri.EstimateSubset(pred), w.subset_truth[s]);
    }
  }

  double uss_total_mse = 0, pri_total_mse = 0;
  for (size_t s = 0; s < w.subsets.size(); ++s) {
    uss_total_mse += uss_err[s].mse();
    pri_total_mse += pri_err[s].mse();
  }
  // USS is expected to match priority sampling (paper finds it often
  // wins); allow up to 2x aggregate MSE in this scaled-down setting.
  EXPECT_LT(uss_total_mse, 2.0 * pri_total_mse);
}

TEST(IntegrationTest, UssCrushesBottomKOnSkewedData) {
  // Paper Fig. 4: uniform item sampling is orders of magnitude worse on
  // skewed data.
  MiniWorkload w = MakeMiniWorkload(801);
  const size_t kM = 50;
  const int kTrials = 300;

  ErrorAccumulator uss_err, bk_err;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(340000 + t);
    auto rows = PermutedStream(w.counts, rng);
    UnbiasedSpaceSaving uss(kM, 350000 + t);
    BottomKSampler bk(kM, 360000 + t);
    for (uint64_t item : rows) {
      uss.Update(item);
      bk.Update(item);
    }
    for (size_t s = 0; s < w.subsets.size(); ++s) {
      const auto& subset = w.subsets[s];
      auto pred = [&subset](uint64_t x) { return subset.count(x) > 0; };
      uss_err.Add(EstimateSubsetSum(uss, pred).estimate, w.subset_truth[s]);
      bk_err.Add(bk.EstimateSubset(pred), w.subset_truth[s]);
    }
  }
  // At least 5x RMSE advantage in this mini setup (paper: orders of
  // magnitude at scale).
  EXPECT_LT(uss_err.rmse() * 5, bk_err.rmse());
}

TEST(IntegrationTest, UssBeatsAdaptiveSampleAndHold) {
  // Paper §5.4: the geometric resampling noise of adaptive sample-and-hold
  // dwarfs USS's bounded increments.
  MiniWorkload w = MakeMiniWorkload(802);
  const size_t kM = 50;
  const int kTrials = 300;

  ErrorAccumulator uss_err, ash_err;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(370000 + t);
    auto rows = PermutedStream(w.counts, rng);
    UnbiasedSpaceSaving uss(kM, 380000 + t);
    AdaptiveSampleAndHold ash(kM, 390000 + t);
    for (uint64_t item : rows) {
      uss.Update(item);
      ash.Update(item);
    }
    for (size_t s = 0; s < w.subsets.size(); ++s) {
      const auto& subset = w.subsets[s];
      auto pred = [&subset](uint64_t x) { return subset.count(x) > 0; };
      uss_err.Add(EstimateSubsetSum(uss, pred).estimate, w.subset_truth[s]);
      ash_err.Add(ash.EstimateSubset(pred), w.subset_truth[s]);
    }
  }
  EXPECT_LT(uss_err.rmse(), ash_err.rmse());
}

TEST(IntegrationTest, PathologicalTwoHalfStreamFavorsUss) {
  // Paper Fig. 7/10: on a two-half stream, querying first-half items shows
  // DSS bias exploding while USS stays accurate.
  auto half = WeibullCounts(150, 40.0, 0.5);
  double first_half_truth = 0;
  for (int64_t c : half) first_half_truth += static_cast<double>(c);

  const size_t kM = 60;
  ErrorAccumulator uss_err, dss_err;
  for (int t = 0; t < 300; ++t) {
    Rng rng(400000 + t);
    auto rows = TwoHalfStream(half, half, rng);
    UnbiasedSpaceSaving uss(kM, 410000 + t);
    DeterministicSpaceSaving dss(kM, 420000 + t);
    for (uint64_t item : rows) {
      uss.Update(item);
      dss.Update(item);
    }
    auto first_half_pred = [&half](uint64_t x) { return x < half.size(); };
    uss_err.Add(EstimateSubsetSum(uss, first_half_pred).estimate,
                first_half_truth);
    double dss_est = 0;
    for (const SketchEntry& e : dss.Entries()) {
      if (first_half_pred(e.item)) dss_est += static_cast<double>(e.count);
    }
    dss_err.Add(dss_est, first_half_truth);
  }
  // DSS systematically underestimates the first half; USS does not.
  EXPECT_LT(std::abs(uss_err.bias()), 0.05 * first_half_truth);
  EXPECT_LT(dss_err.bias(), -0.2 * first_half_truth);
  EXPECT_LT(uss_err.rmse() * 2, dss_err.rmse());
}

TEST(IntegrationTest, ExactAggregatorMatchesBruteForce) {
  // Ground-truth plumbing used by every experiment.
  auto counts = WeibullCounts(200, 20.0, 0.6);
  Rng rng(803);
  auto rows = PermutedStream(counts, rng);
  ExactAggregator agg;
  for (uint64_t item : rows) agg.Update(item);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(agg.Count(i), counts[i]);
  }
  EXPECT_EQ(agg.TotalCount(), static_cast<int64_t>(rows.size()));
}

}  // namespace
}  // namespace dsketch
