// Tests for hhh/: hierarchical heavy hitters over prefix hierarchies
// (paper §3.1 network application).

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "hhh/hierarchical_heavy_hitters.h"
#include "stats/welford.h"
#include "util/random.h"

namespace dsketch {
namespace {

// Keys: 16-bit "addresses" = (subnet << 8) | host, 2 levels of 8 bits.
uint64_t Addr(uint32_t subnet, uint32_t host) {
  return (static_cast<uint64_t>(subnet) << 8) | host;
}

TEST(HierarchicalTest, TruncationLevels) {
  HierarchicalHeavyHitters hhh(3, 8, 16, 1);
  uint64_t key = 0xABCDEF;
  EXPECT_EQ(hhh.Truncate(key, 0), 0xABCDEFu);
  EXPECT_EQ(hhh.Truncate(key, 1), 0xABCD00u);
  EXPECT_EQ(hhh.Truncate(key, 2), 0xAB0000u);
}

TEST(HierarchicalTest, PrefixEstimatesAggregateChildren) {
  HierarchicalHeavyHitters hhh(2, 8, 64, 2);
  // Subnet 3 hosts: 100 + 200 + 50; subnet 5: 30.
  for (int i = 0; i < 100; ++i) hhh.Update(Addr(3, 1));
  for (int i = 0; i < 200; ++i) hhh.Update(Addr(3, 2));
  for (int i = 0; i < 50; ++i) hhh.Update(Addr(3, 9));
  for (int i = 0; i < 30; ++i) hhh.Update(Addr(5, 7));
  EXPECT_EQ(hhh.EstimatePrefix(Addr(3, 0), 1), 350);
  EXPECT_EQ(hhh.EstimatePrefix(Addr(5, 0), 1), 30);
  EXPECT_EQ(hhh.EstimatePrefix(Addr(3, 2), 0), 200);
  EXPECT_EQ(hhh.TotalCount(), 380);
}

TEST(HierarchicalTest, QueryReportsHeavyHostAndShieldsParent) {
  HierarchicalHeavyHitters hhh(2, 8, 64, 3);
  // One dominant host inside subnet 1; subnet 1 has nothing else heavy.
  for (int i = 0; i < 900; ++i) hhh.Update(Addr(1, 4));
  Rng rng(300);
  for (int i = 0; i < 100; ++i) {
    hhh.Update(Addr(2 + rng.NextBounded(50), rng.NextBounded(200)));
  }
  auto result = hhh.Query(0.1);
  // The host is reported at level 0.
  bool host_reported = false, subnet_reported = false;
  for (const auto& hp : result) {
    if (hp.level == 0 && hp.prefix == Addr(1, 4)) host_reported = true;
    if (hp.level == 1 && hp.prefix == Addr(1, 0)) subnet_reported = true;
  }
  EXPECT_TRUE(host_reported);
  // Subnet 1's mass is fully explained by its heavy child: conditioned
  // count ~0, so it is NOT reported again.
  EXPECT_FALSE(subnet_reported);
}

TEST(HierarchicalTest, DiffuseSubnetReportedOnlyAtParentLevel) {
  HierarchicalHeavyHitters hhh(2, 8, 128, 4);
  // Subnet 9: 400 rows spread over 200 hosts (no heavy host);
  // background: 600 rows spread over everything else.
  Rng rng(301);
  for (int i = 0; i < 400; ++i) hhh.Update(Addr(9, rng.NextBounded(200)));
  for (int i = 0; i < 600; ++i) {
    hhh.Update(Addr(20 + rng.NextBounded(100), rng.NextBounded(200)));
  }
  auto result = hhh.Query(0.2);  // threshold 200 rows
  bool subnet9 = false;
  for (const auto& hp : result) {
    EXPECT_NE(hp.level, 0);  // no single host exceeds 200
    if (hp.level == 1 && hp.prefix == Addr(9, 0)) subnet9 = true;
  }
  EXPECT_TRUE(subnet9);
}

TEST(HierarchicalTest, LevelSumsAreUnbiasedUnderPressure) {
  // Sketch far smaller than the key universe: level-1 subset sums stay
  // unbiased (each level is an independent USS sketch).
  Welford est;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    HierarchicalHeavyHitters hhh(2, 8, 8, static_cast<uint64_t>(500 + t));
    Rng rng(static_cast<uint64_t>(700 + t));
    // 60 rows in subnet 9, 140 rows elsewhere (distinct hosts).
    for (int i = 0; i < 60; ++i) hhh.Update(Addr(9, rng.NextBounded(250)));
    for (int i = 0; i < 140; ++i) {
      hhh.Update(Addr(10 + rng.NextBounded(40), rng.NextBounded(250)));
    }
    est.Add(static_cast<double>(hhh.EstimatePrefix(Addr(9, 0), 1)));
  }
  EXPECT_NEAR(est.mean(), 60.0, 5 * est.stderr_mean() + 0.1);
}

TEST(HierarchicalTest, RootLevelHoldsEverything) {
  HierarchicalHeavyHitters hhh(3, 8, 4, 5);
  Rng rng(302);
  for (int i = 0; i < 1000; ++i) {
    hhh.Update(Addr(rng.NextBounded(4), rng.NextBounded(256)) |
               (rng.NextBounded(2) << 16));
  }
  // Level 2 truncates to the top byte: few distinct prefixes, so counts
  // are exact and sum to the total.
  int64_t sum = 0;
  for (const SketchEntry& e : hhh.level_sketch(2).Entries()) sum += e.count;
  EXPECT_EQ(sum, 1000);
}

}  // namespace
}  // namespace dsketch
