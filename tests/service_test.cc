// End-to-end tests for the streaming service layer: the frame codec over
// the in-memory transport, protocol message round trips, a live
// client/server session exercising every opcode, the weighted ingest
// path, and the replication contract — a replica that restores from a
// primary's SNAPSHOT frames answers top-k/subset-sum queries identically
// (the fresh-fleet restore is exact when the merge capacity holds every
// snapshot entry, the same contract sharded_sketch_test pins for
// IngestSerialized).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/unbiased_space_saving.h"
#include "obs/trace.h"
#include "query/attribute_table.h"
#include "query/frozen_source.h"
#include "service/client.h"
#include "service/frame.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/transport.h"
#include "stream/distributions.h"
#include "stream/generators.h"
#include "util/random.h"
#include "wire/codec.h"

namespace dsketch {
namespace {

TEST(FrameTest, RoundTripsPayloadsOverInMemoryDuplex) {
  InMemoryDuplex duplex;
  std::string payload;
  EXPECT_TRUE(WriteFrame(duplex.client(), "hello frames"));
  EXPECT_TRUE(WriteFrame(duplex.client(), ""));  // empty frame is legal
  ASSERT_EQ(ReadFrame(duplex.server(), &payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "hello frames");
  ASSERT_EQ(ReadFrame(duplex.server(), &payload), FrameStatus::kOk);
  EXPECT_EQ(payload, "");
  duplex.client().CloseWrite();
  EXPECT_EQ(ReadFrame(duplex.server(), &payload), FrameStatus::kEof);
}

TEST(FrameTest, RefusesOversizedPayloadOnWrite) {
  InMemoryDuplex duplex;
  std::string big(kMaxFramePayload + 1, 'x');
  EXPECT_FALSE(WriteFrame(duplex.client(), big));
}

TEST(ProtocolTest, IngestBatchRoundTripsWithAndWithoutWeights) {
  IngestBatchRequest unit;
  unit.items = {1, 99, 1u << 30, 7};
  std::string payload = EncodeIngestBatchRequest(42, unit);
  wire::VarintReader reader(payload);
  RequestHeader header;
  ASSERT_TRUE(DecodeRequestHeader(reader, &header));
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.opcode, Opcode::kIngestBatch);
  EXPECT_EQ(header.request_id, 42u);
  IngestBatchRequest decoded;
  ASSERT_TRUE(DecodeIngestBatchRequest(reader, &decoded));
  EXPECT_EQ(decoded.items, unit.items);
  EXPECT_TRUE(decoded.weights.empty());

  IngestBatchRequest weighted = unit;
  weighted.weights = {0.5, 2.0, 1.25, 100.0};
  payload = EncodeIngestBatchRequest(43, weighted);
  wire::VarintReader reader2(payload);
  ASSERT_TRUE(DecodeRequestHeader(reader2, &header));
  ASSERT_TRUE(DecodeIngestBatchRequest(reader2, &decoded));
  EXPECT_EQ(decoded.items, weighted.items);
  EXPECT_EQ(decoded.weights, weighted.weights);
}

TEST(ProtocolTest, QueryAndResponseMessagesRoundTrip) {
  QuerySumRequest sum;
  sum.scope = QueryScope::kWeighted;
  sum.where.WhereEq(0, 3).WhereIn(2, {1, 5, 9});
  std::string payload = EncodeQuerySumRequest(7, sum);
  wire::VarintReader reader(payload);
  RequestHeader header;
  ASSERT_TRUE(DecodeRequestHeader(reader, &header));
  QuerySumRequest sum2;
  ASSERT_TRUE(DecodeQuerySumRequest(reader, &sum2));
  EXPECT_EQ(sum2.scope, QueryScope::kWeighted);
  ASSERT_EQ(sum2.where.conditions.size(), 2u);
  EXPECT_EQ(sum2.where.conditions[1].values, (std::vector<uint32_t>{1, 5, 9}));

  QueryTopKResponse topk;
  topk.scope = QueryScope::kCounts;
  topk.counts = {{11, 500}, {22, 300}};
  payload = EncodeQueryTopKResponse(9, topk);
  wire::VarintReader reader2(payload);
  ResponseHeader rsp_header;
  ASSERT_TRUE(DecodeResponseHeader(reader2, &rsp_header));
  EXPECT_EQ(rsp_header.status, Status::kOk);
  EXPECT_EQ(rsp_header.request_id, 9u);
  QueryTopKResponse topk2;
  ASSERT_TRUE(DecodeQueryTopKResponse(reader2, &topk2));
  ASSERT_EQ(topk2.counts.size(), 2u);
  EXPECT_EQ(topk2.counts[0].item, 11u);
  EXPECT_EQ(topk2.counts[0].count, 500);

  StatsResponse stats;
  stats.rows_ingested = 12345;
  stats.total_count = -3;  // signed path
  stats.total_weight = 2.5;
  stats.last_snapshot_format = SnapshotFormat::kFrozen;
  stats.last_snapshot_bytes = 98432;
  stats.last_restore_format = SnapshotFormat::kStream;
  stats.last_restore_bytes = 1613;
  stats.traces_captured_total = 77;
  stats.flight_recorder_dropped_total = 4096;
  payload = EncodeStatsResponse(1, stats);
  wire::VarintReader reader3(payload);
  ASSERT_TRUE(DecodeResponseHeader(reader3, &rsp_header));
  StatsResponse stats2;
  ASSERT_TRUE(DecodeStatsResponse(reader3, &stats2));
  EXPECT_EQ(stats2.rows_ingested, 12345u);
  EXPECT_EQ(stats2.total_count, -3);
  EXPECT_DOUBLE_EQ(stats2.total_weight, 2.5);
  EXPECT_EQ(stats2.last_snapshot_format, SnapshotFormat::kFrozen);
  EXPECT_EQ(stats2.last_snapshot_bytes, 98432u);
  EXPECT_EQ(stats2.last_restore_format, SnapshotFormat::kStream);
  EXPECT_EQ(stats2.last_restore_bytes, 1613u);
  EXPECT_EQ(stats2.traces_captured_total, 77u);
  EXPECT_EQ(stats2.flight_recorder_dropped_total, 4096u);

  // The frozen flag rides the high bit of the SNAPSHOT scope byte;
  // decoding must strip it and validate the masked scope.
  SnapshotRequest snap_req;
  snap_req.scope = QueryScope::kCounts;
  snap_req.frozen = true;
  payload = EncodeSnapshotRequest(9, snap_req);
  wire::VarintReader reader4(payload);
  RequestHeader req_header;
  ASSERT_TRUE(DecodeRequestHeader(reader4, &req_header));
  SnapshotRequest snap_req2;
  ASSERT_TRUE(DecodeSnapshotRequest(reader4, &snap_req2));
  EXPECT_EQ(snap_req2.scope, QueryScope::kCounts);
  EXPECT_TRUE(snap_req2.frozen);
}

TEST(ProtocolTest, MetricsMessagesRoundTripAndValidateScope) {
  MetricsRequest req;
  req.scope = MetricsScope::kWindow;
  std::string payload = EncodeMetricsRequest(5, req);
  wire::VarintReader reader(payload);
  RequestHeader header;
  ASSERT_TRUE(DecodeRequestHeader(reader, &header));
  EXPECT_EQ(header.opcode, Opcode::kMetrics);
  MetricsRequest req2;
  ASSERT_TRUE(DecodeMetricsRequest(reader, &req2));
  EXPECT_EQ(req2.scope, MetricsScope::kWindow);

  // A scope byte past the enum is malformed, not misinterpreted.
  std::string bad = EncodeMetricsRequest(6, req);
  bad.back() = static_cast<char>(6);
  wire::VarintReader bad_reader(bad);
  ASSERT_TRUE(DecodeRequestHeader(bad_reader, &header));
  MetricsRequest req3;
  EXPECT_FALSE(DecodeMetricsRequest(bad_reader, &req3));

  MetricsResponse rsp;
  rsp.text = "# TYPE t counter\nt 1\n";
  payload = EncodeMetricsResponse(5, rsp);
  wire::VarintReader rsp_reader(payload);
  ResponseHeader rsp_header;
  ASSERT_TRUE(DecodeResponseHeader(rsp_reader, &rsp_header));
  EXPECT_EQ(rsp_header.status, Status::kOk);
  MetricsResponse rsp2;
  ASSERT_TRUE(DecodeMetricsResponse(rsp_reader, &rsp2));
  EXPECT_EQ(rsp2.text, rsp.text);

  EXPECT_EQ(MetricsScopePrefix(MetricsScope::kAll), "dsketch_");
  EXPECT_EQ(MetricsScopePrefix(MetricsScope::kService), "dsketch_service_");
  EXPECT_EQ(MetricsScopePrefix(MetricsScope::kUtil), "dsketch_util_");
}

TEST(ProtocolTest, TraceMessagesRoundTripAndValidateScope) {
  TraceRequest req;
  req.scope = TraceScope::kFlight;
  std::string payload = EncodeTraceRequest(21, req);
  wire::VarintReader reader(payload);
  RequestHeader header;
  ASSERT_TRUE(DecodeRequestHeader(reader, &header));
  EXPECT_EQ(header.opcode, Opcode::kTrace);
  TraceRequest req2;
  ASSERT_TRUE(DecodeTraceRequest(reader, &req2));
  EXPECT_EQ(req2.scope, TraceScope::kFlight);

  // A scope byte past the enum is malformed, not misinterpreted.
  std::string bad = EncodeTraceRequest(22, req);
  bad.back() = static_cast<char>(2);
  wire::VarintReader bad_reader(bad);
  ASSERT_TRUE(DecodeRequestHeader(bad_reader, &header));
  TraceRequest req3;
  EXPECT_FALSE(DecodeTraceRequest(bad_reader, &req3));

  TraceResponse rsp;
  rsp.text = "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}\n";
  payload = EncodeTraceResponse(21, rsp);
  wire::VarintReader rsp_reader(payload);
  ResponseHeader rsp_header;
  ASSERT_TRUE(DecodeResponseHeader(rsp_reader, &rsp_header));
  EXPECT_EQ(rsp_header.status, Status::kOk);
  TraceResponse rsp2;
  ASSERT_TRUE(DecodeTraceResponse(rsp_reader, &rsp2));
  EXPECT_EQ(rsp2.text, rsp.text);
}

// Fixture running a server thread over the in-memory duplex.
class ServiceSessionTest : public ::testing::Test {
 protected:
  ServiceSessionTest() : attrs_(2) {
    // 1000 items: dim 0 = item % 10, dim 1 = item % 4.
    for (uint64_t i = 0; i < 1000; ++i) {
      attrs_.AddItem({static_cast<uint32_t>(i % 10),
                      static_cast<uint32_t>(i % 4)});
    }
  }

  void Boot(const AttributeTable* attrs) {
    SketchServerOptions options;
    options.shard.num_shards = 2;
    options.shard.shard_capacity = 512;
    options.shard.seed = 5;
    options.merged_capacity = 1024;
    options.seed = 5;
    server_ = std::make_unique<SketchServer>(options, attrs);
    serve_ = std::thread([this] { server_->Serve(duplex_.server()); });
    client_ = std::make_unique<SketchClient>(duplex_.client());
  }

  void TearDown() override {
    if (client_ != nullptr) client_->Shutdown();
    if (serve_.joinable()) serve_.join();
  }

  AttributeTable attrs_;
  InMemoryDuplex duplex_;
  std::unique_ptr<SketchServer> server_;
  std::thread serve_;
  std::unique_ptr<SketchClient> client_;
};

TEST_F(ServiceSessionTest, IngestsAndAnswersEveryQueryOpcode) {
  Boot(&attrs_);
  // 200 copies each of items 0..99: totals are exact, filters are easy
  // to check (dim 0 == 3 selects items 3, 13, ..., 93 -> 2000 rows).
  std::vector<uint64_t> rows;
  for (uint64_t item = 0; item < 100; ++item) {
    for (int c = 0; c < 200; ++c) rows.push_back(item);
  }
  Rng rng(3);
  for (size_t i = rows.size(); i > 1; --i) {
    std::swap(rows[i - 1], rows[rng.NextBounded(i)]);
  }
  ASSERT_TRUE(client_->IngestBatch(rows));

  auto total = client_->QuerySum();
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->estimate, 20000.0);

  auto filtered = client_->QuerySum(PredicateSpec().WhereEq(0, 3));
  ASSERT_TRUE(filtered.has_value());
  // The sketch holds all 100 distinct items (capacity 512), so the
  // subset estimate is exact.
  EXPECT_EQ(filtered->estimate, 2000.0);
  EXPECT_EQ(filtered->items_in_sample, 10u);

  auto topk = client_->QueryTopK(5);
  ASSERT_TRUE(topk.has_value());
  ASSERT_EQ(topk->counts.size(), 5u);
  EXPECT_EQ(topk->counts[0].count, 200);

  auto by_dim0 = client_->QueryGroupBy(0);
  ASSERT_TRUE(by_dim0.has_value());
  ASSERT_EQ(by_dim0->groups.size(), 10u);
  for (const GroupRow& g : by_dim0->groups) {
    EXPECT_EQ(g.estimate, 2000.0) << "group " << g.key;
  }

  auto by_pair = client_->QueryGroupBy2(0, 1);
  ASSERT_TRUE(by_pair.has_value());
  EXPECT_EQ(by_pair->groups.size(), 20u);  // lcm(10,4)=20 pairs occur

  auto stats = client_->Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->rows_ingested, rows.size());
  EXPECT_EQ(stats->total_count, 20000);
  EXPECT_EQ(stats->batches, 1u);
  EXPECT_EQ(stats->num_shards, 2u);
}

TEST_F(ServiceSessionTest, WeightedPathIngestsQueriesAndSnapshots) {
  Boot(&attrs_);
  // Items 0..49, each with weight item + 0.5, 10 rows each.
  std::vector<uint64_t> items;
  std::vector<double> weights;
  double truth = 0.0;
  for (uint64_t item = 0; item < 50; ++item) {
    for (int c = 0; c < 10; ++c) {
      items.push_back(item);
      weights.push_back(static_cast<double>(item) + 0.5);
      truth += static_cast<double>(item) + 0.5;
    }
  }
  ASSERT_TRUE(client_->IngestWeighted(items, weights));

  auto total = client_->QuerySum(PredicateSpec(), QueryScope::kWeighted);
  ASSERT_TRUE(total.has_value());
  EXPECT_NEAR(total->estimate, truth, 1e-6 * truth);

  auto topk = client_->QueryTopK(3, QueryScope::kWeighted);
  ASSERT_TRUE(topk.has_value());
  ASSERT_EQ(topk->weighted.size(), 3u);
  EXPECT_EQ(topk->weighted[0].item, 49u);
  EXPECT_NEAR(topk->weighted[0].weight, 495.0, 1e-9);

  // Weighted filter: dim 0 == 7 selects items 7, 17, 27, 37, 47.
  auto filtered =
      client_->QuerySum(PredicateSpec().WhereEq(0, 7), QueryScope::kWeighted);
  ASSERT_TRUE(filtered.has_value());
  EXPECT_NEAR(filtered->estimate, 10 * (7 + 17 + 27 + 37 + 47 + 2.5), 1e-6);

  // Weighted snapshot replicates into a fresh node.
  auto blob = client_->Snapshot(QueryScope::kWeighted);
  ASSERT_TRUE(blob.has_value());
  {
    SketchServerOptions options;
    options.shard.num_shards = 2;
    options.shard.shard_capacity = 512;
    options.shard.seed = 77;
    options.merged_capacity = 1024;
    options.seed = 77;
    InMemoryDuplex wire_b;
    SketchServer replica(options, &attrs_);
    std::thread serve_b([&] { replica.Serve(wire_b.server()); });
    SketchClient client_b(wire_b.client());
    ASSERT_TRUE(client_b.Restore(*blob, QueryScope::kWeighted));
    auto replica_total =
        client_b.QuerySum(PredicateSpec(), QueryScope::kWeighted);
    ASSERT_TRUE(replica_total.has_value());
    EXPECT_NEAR(replica_total->estimate, truth, 1e-6 * truth);
    client_b.Shutdown();
    serve_b.join();
  }

  // The unit-row state is untouched by weighted ingest.
  auto counts_total = client_->QuerySum();
  ASSERT_TRUE(counts_total.has_value());
  EXPECT_EQ(counts_total->estimate, 0.0);
}

TEST_F(ServiceSessionTest, WindowedPathIngestsQueriesAndReplicates) {
  Boot(&attrs_);
  // 3 epochs of epoch-disjoint labels: epoch e carries 120 rows of
  // items e*100 .. e*100+39 (3 rows each), so per-epoch truths and
  // window truths are exact.
  const uint64_t kEpochs = 3;
  size_t window_rows = 0;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    std::vector<uint64_t> rows;
    for (uint64_t item = 0; item < 40; ++item) {
      for (int c = 0; c < 3; ++c) rows.push_back(e * 100 + item);
    }
    window_rows += rows.size();
    ASSERT_TRUE(client_->IngestWindowed(rows, e));
  }

  // Full-window total (ring default of 8 epochs holds everything).
  auto total = client_->QuerySum(PredicateSpec(), QueryScope::kWindow);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->estimate, static_cast<double>(window_rows));

  // last_k = 1 scopes to the newest epoch exactly.
  auto newest = client_->QuerySum(PredicateSpec(), QueryScope::kWindow, 1);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->estimate, 120.0);

  // Predicates compose with the window scope: dim 0 == 5 selects items
  // ending in 5, present in every epoch (4 per epoch x 3 rows).
  auto filtered = client_->QuerySum(PredicateSpec().WhereEq(0, 5),
                                    QueryScope::kWindow);
  ASSERT_TRUE(filtered.has_value());
  EXPECT_EQ(filtered->estimate, 36.0);

  // Window top-k over the newest epoch stays in its label range.
  auto topk = client_->QueryTopK(5, QueryScope::kWindow, /*last_k=*/1);
  ASSERT_TRUE(topk.has_value());
  ASSERT_EQ(topk->counts.size(), 5u);
  for (const SketchEntry& e : topk->counts) {
    EXPECT_GE(e.item, (kEpochs - 1) * 100);
    EXPECT_EQ(e.count, 3);
  }

  auto stats = client_->Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->windowed_rows_ingested, window_rows);
  EXPECT_EQ(stats->window_epoch, kEpochs - 1);
  // The unit-row state is untouched by windowed ingest.
  EXPECT_EQ(stats->total_count, 0);

  // The full ring replicates into a fresh node through one
  // SNAPSHOT -> RESTORE hop: totals, per-window totals, and epoch
  // position all carry over exactly.
  auto ring = client_->Snapshot(QueryScope::kWindow);
  ASSERT_TRUE(ring.has_value());
  {
    SketchServerOptions options;
    options.shard.num_shards = 2;
    options.shard.shard_capacity = 512;
    options.shard.seed = 88;
    options.merged_capacity = 1024;
    options.seed = 88;
    InMemoryDuplex wire_b;
    SketchServer replica(options, &attrs_);
    std::thread serve_b([&] { replica.Serve(wire_b.server()); });
    SketchClient client_b(wire_b.client());
    ASSERT_TRUE(client_b.Restore(*ring, QueryScope::kWindow));
    auto replica_total =
        client_b.QuerySum(PredicateSpec(), QueryScope::kWindow);
    ASSERT_TRUE(replica_total.has_value());
    EXPECT_EQ(replica_total->estimate, static_cast<double>(window_rows));
    auto replica_newest =
        client_b.QuerySum(PredicateSpec(), QueryScope::kWindow, 1);
    ASSERT_TRUE(replica_newest.has_value());
    EXPECT_EQ(replica_newest->estimate, 120.0);
    client_b.Shutdown();
    serve_b.join();
  }
}

TEST_F(ServiceSessionTest, WindowedEpochAdvanceExpiresOldEpochs) {
  Boot(&attrs_);
  // Ring length defaults to 8; advance far enough that epoch 0 falls
  // off and the full-window total shrinks accordingly.
  std::vector<uint64_t> old_rows(60, 7);
  ASSERT_TRUE(client_->IngestWindowed(old_rows, 0));
  std::vector<uint64_t> new_rows(40, 9);
  ASSERT_TRUE(client_->IngestWindowed(new_rows, 9));  // epoch 0 expires

  auto total = client_->QuerySum(PredicateSpec(), QueryScope::kWindow);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->estimate, 40.0);  // only epoch 9 remains in range

  // An empty windowed batch is a pure epoch advance.
  ASSERT_TRUE(client_->IngestWindowed(std::vector<uint64_t>{}, 17));
  auto stats = client_->Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->window_epoch, 17u);
  auto after = client_->QuerySum(PredicateSpec(), QueryScope::kWindow);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->estimate, 0.0);  // everything expired
}

// The wall-clock epoch timer: a server booted with epoch_interval_ms
// closes window epochs on its own between frames (WaitReadable slices),
// so clients that only query still see the window slide.
TEST(ServiceEpochTimerTest, WallClockTicksAdvanceTheWindowEpoch) {
  SketchServerOptions options;
  options.shard.num_shards = 2;
  options.shard.shard_capacity = 512;
  options.shard.seed = 5;
  options.merged_capacity = 1024;
  options.seed = 5;
  options.epoch_interval_ms = 5;
  SketchServer server(options);
  InMemoryDuplex duplex;
  std::thread serve([&] { server.Serve(duplex.server()); });
  SketchClient client(duplex.client());

  // Boot the windowed fleet (it is lazy) with rows at the start epoch.
  ASSERT_TRUE(client.IngestWindowed(std::vector<uint64_t>{1, 2, 3}, 0));
  // Poll until the timer has closed at least one epoch. Bounded wait:
  // one tick is due after 5ms; 400 polls of 5ms only matter on a
  // machine so loaded the test would time out anyway.
  uint64_t epoch = 0;
  for (int i = 0; i < 400 && epoch == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto stats = client.Stats();
    ASSERT_TRUE(stats.has_value());
    epoch = stats->window_epoch;
  }
  EXPECT_GE(epoch, 1u);

  client.Shutdown();
  serve.join();
}

// Hostile-stamp safety for the timer: a client that parks the window
// clock at the stamp cap must not push wall-clock ticks past it — the
// tick target saturates at kMaxEpochStamp instead of overflowing or
// tripping the stamp CHECKs.
TEST(ServiceEpochTimerTest, TicksSaturateAtTheEpochStampCap) {
  SketchServerOptions options;
  options.shard.num_shards = 2;
  options.shard.shard_capacity = 512;
  options.shard.seed = 5;
  options.merged_capacity = 1024;
  options.seed = 5;
  options.epoch_interval_ms = 1;
  SketchServer server(options);
  InMemoryDuplex duplex;
  std::thread serve([&] { server.Serve(duplex.server()); });
  SketchClient client(duplex.client());

  ASSERT_TRUE(
      client.IngestWindowed(std::vector<uint64_t>{9}, kMaxEpochStamp));
  // Give the timer several due ticks, then confirm the clock held.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  auto stats = client.Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->window_epoch, kMaxEpochStamp);

  client.Shutdown();
  serve.join();
}

TEST_F(ServiceSessionTest, PredicateQueriesWithoutTableAreUnsupported) {
  Boot(nullptr);
  ASSERT_TRUE(client_->IngestBatch(std::vector<uint64_t>{1, 2, 3}));
  auto total = client_->QuerySum();  // no conditions: fine without table
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->estimate, 3.0);
  auto filtered = client_->QuerySum(PredicateSpec().WhereEq(0, 1));
  EXPECT_FALSE(filtered.has_value());
  EXPECT_EQ(client_->last_status(),
            static_cast<uint8_t>(Status::kUnsupported));
  auto grouped = client_->QueryGroupBy(0);
  EXPECT_FALSE(grouped.has_value());
  EXPECT_EQ(client_->last_status(),
            static_cast<uint8_t>(Status::kUnsupported));
}

TEST_F(ServiceSessionTest, ShutdownEndsTheSession) {
  Boot(&attrs_);
  ASSERT_TRUE(client_->Shutdown());
  EXPECT_TRUE(server_->shutdown_requested());
  serve_.join();
  // The connection is gone: further calls fail at the transport.
  EXPECT_FALSE(client_->IngestBatch(std::vector<uint64_t>{1}));
  EXPECT_EQ(client_->last_status(), kTransportError);
  client_.reset();  // TearDown must not re-shutdown a dead session
}

// The acceptance scenario: node A ingests a Zipf workload; node B
// catches up purely from A's SNAPSHOT frames. A fresh replica's restore
// is exact (same contract as sharded_sketch_test's
// SerializedSnapshotRoundTripsIntoFreshFleet): totals match exactly and
// every top-k / subset-sum answer matches A's.
TEST(ServiceReplicationTest, ReplicaCatchesUpFromSnapshotFrames) {
  AttributeTable attrs(1);
  const size_t kItems = 3000;
  for (uint64_t i = 0; i < kItems; ++i) {
    attrs.AddItem({static_cast<uint32_t>(i % 8)});
  }
  auto counts = ZipfCounts(kItems, 1.1, 400);
  Rng rng(17);
  auto rows = PermutedStream(counts, rng);

  SketchServerOptions options;
  options.shard.num_shards = 3;
  options.shard.shard_capacity = 1024;
  options.shard.seed = 21;
  options.merged_capacity = 2048;
  options.seed = 21;

  InMemoryDuplex wire_a;
  SketchServer node_a(options, &attrs);
  std::thread serve_a([&] { node_a.Serve(wire_a.server()); });
  SketchClient client_a(wire_a.client());
  const size_t kBatch = 2000;
  for (size_t pos = 0; pos < rows.size(); pos += kBatch) {
    size_t len = std::min(kBatch, rows.size() - pos);
    ASSERT_TRUE(client_a.IngestBatch(
        Span<const uint64_t>(rows.data() + pos, len)));
  }
  auto blob = client_a.Snapshot();
  ASSERT_TRUE(blob.has_value());

  SketchServerOptions options_b = options;
  options_b.shard.seed = 99;  // replica randomness is independent
  options_b.seed = 99;
  InMemoryDuplex wire_b;
  SketchServer node_b(options_b, &attrs);
  std::thread serve_b([&] { node_b.Serve(wire_b.server()); });
  SketchClient client_b(wire_b.client());
  ASSERT_TRUE(client_b.Restore(*blob));

  // Totals are preserved exactly through snapshot + restore.
  auto total_a = client_a.QuerySum();
  auto total_b = client_b.QuerySum();
  ASSERT_TRUE(total_a.has_value() && total_b.has_value());
  EXPECT_EQ(total_a->estimate, static_cast<double>(rows.size()));
  EXPECT_EQ(total_b->estimate, total_a->estimate);

  // Top-k answers match item-for-item, count-for-count.
  auto topk_a = client_a.QueryTopK(20);
  auto topk_b = client_b.QueryTopK(20);
  ASSERT_TRUE(topk_a.has_value() && topk_b.has_value());
  ASSERT_EQ(topk_a->counts.size(), topk_b->counts.size());
  for (size_t i = 0; i < topk_a->counts.size(); ++i) {
    EXPECT_EQ(topk_a->counts[i].item, topk_b->counts[i].item) << "rank " << i;
    EXPECT_EQ(topk_a->counts[i].count, topk_b->counts[i].count)
        << "rank " << i;
  }

  // Subset sums (filtered and grouped) agree on every group.
  for (uint32_t value : {0u, 3u, 7u}) {
    auto sum_a = client_a.QuerySum(PredicateSpec().WhereEq(0, value));
    auto sum_b = client_b.QuerySum(PredicateSpec().WhereEq(0, value));
    ASSERT_TRUE(sum_a.has_value() && sum_b.has_value());
    EXPECT_EQ(sum_a->estimate, sum_b->estimate) << "dim0 == " << value;
  }
  auto groups_a = client_a.QueryGroupBy(0);
  auto groups_b = client_b.QueryGroupBy(0);
  ASSERT_TRUE(groups_a.has_value() && groups_b.has_value());
  ASSERT_EQ(groups_a->groups.size(), groups_b->groups.size());
  for (size_t i = 0; i < groups_a->groups.size(); ++i) {
    EXPECT_EQ(groups_a->groups[i].key, groups_b->groups[i].key);
    EXPECT_EQ(groups_a->groups[i].estimate, groups_b->groups[i].estimate);
  }

  // B keeps answering after more local rows arrive on top of the
  // restored state: the total covers both streams.
  std::vector<uint64_t> extra(500, 12345);
  ASSERT_TRUE(client_b.IngestBatch(extra));
  auto grown = client_b.QuerySum();
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(grown->estimate, static_cast<double>(rows.size() + 500));

  // STATS reports the format and size of the last snapshot hop: A
  // served a v2 stream blob, B absorbed the same bytes.
  auto stats_a = client_a.Stats();
  ASSERT_TRUE(stats_a.has_value());
  EXPECT_EQ(stats_a->last_snapshot_format, SnapshotFormat::kStream);
  EXPECT_EQ(stats_a->last_snapshot_bytes, blob->size());
  EXPECT_EQ(stats_a->last_restore_format, SnapshotFormat::kNone);
  auto stats_b = client_b.Stats();
  ASSERT_TRUE(stats_b.has_value());
  EXPECT_EQ(stats_b->last_restore_format, SnapshotFormat::kStream);
  EXPECT_EQ(stats_b->last_restore_bytes, blob->size());

  // The frozen negotiation: A freezes its state into the mmap-able
  // image (wire kind 8), B restores it through the same RESTORE opcode
  // (the decoder dispatches on the envelope), and both sides' STATS
  // flip to the frozen format.
  auto frozen = client_a.Snapshot(QueryScope::kCounts, /*frozen=*/true);
  ASSERT_TRUE(frozen.has_value());
  auto info = wire::DescribeWire(*frozen);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->kind, wire::kKindFrozenUnbiased);
  ASSERT_TRUE(client_b.Restore(*frozen));
  // Restore absorbs the peer rows on top of B's state, so B's total
  // grows by exactly the frozen sketch's row count.
  auto total_b2 = client_b.QuerySum();
  ASSERT_TRUE(total_b2.has_value());
  EXPECT_EQ(total_b2->estimate, grown->estimate + total_a->estimate);

  stats_a = client_a.Stats();
  ASSERT_TRUE(stats_a.has_value());
  EXPECT_EQ(stats_a->last_snapshot_format, SnapshotFormat::kFrozen);
  EXPECT_EQ(stats_a->last_snapshot_bytes, frozen->size());
  stats_b = client_b.Stats();
  ASSERT_TRUE(stats_b.has_value());
  EXPECT_EQ(stats_b->last_restore_format, SnapshotFormat::kFrozen);
  EXPECT_EQ(stats_b->last_restore_bytes, frozen->size());

  client_a.Shutdown();
  client_b.Shutdown();
  serve_a.join();
  serve_b.join();
}

// ---- telemetry surface (protocol v4) ----

Status ResponseStatusOf(const std::string& response) {
  wire::VarintReader reader(response);
  ResponseHeader header;
  EXPECT_TRUE(DecodeResponseHeader(reader, &header));
  return header.status;
}

SketchServerOptions SmallServerOptions() {
  SketchServerOptions options;
  options.shard.num_shards = 2;
  options.shard.shard_capacity = 256;
  options.shard.seed = 11;
  options.merged_capacity = 512;
  options.seed = 11;
  return options;
}

TEST_F(ServiceSessionTest, MetricsOpcodeServesScopedExposition) {
  Boot(&attrs_);
  ASSERT_TRUE(client_->IngestBatch(std::vector<uint64_t>{1, 2, 3, 4, 5}));
  ASSERT_TRUE(client_->QuerySum().has_value());

  auto all = client_->Metrics();
  ASSERT_TRUE(all.has_value());
  // The exposition reflects this very session's traffic (counters are
  // process-global, so >= rather than == under parallel test runs).
  EXPECT_NE(
      all->find("dsketch_service_requests_total{opcode=\"ingest_batch\"}"),
      std::string::npos);
  EXPECT_NE(all->find("dsketch_service_request_latency_us_bucket"),
            std::string::npos);
  EXPECT_NE(all->find("dsketch_util_build_info"), std::string::npos);

  // Scope filtering selects whole metric families by prefix.
  auto service_only = client_->Metrics(MetricsScope::kService);
  ASSERT_TRUE(service_only.has_value());
  EXPECT_NE(service_only->find("dsketch_service_"), std::string::npos);
  EXPECT_EQ(service_only->find("dsketch_shard_"), std::string::npos);
  EXPECT_EQ(service_only->find("dsketch_util_"), std::string::npos);
  auto util_only = client_->Metrics(MetricsScope::kUtil);
  ASSERT_TRUE(util_only.has_value());
  EXPECT_EQ(util_only->find("dsketch_service_"), std::string::npos);
  EXPECT_NE(util_only->find("dsketch_util_build_info"), std::string::npos);
}

TEST_F(ServiceSessionTest, TraceOpcodeServesRecentAndFlightScopes) {
  // The fixture boots with sampling off; configure the global collector
  // directly (what a server built with trace_sample > 0 does) and
  // restore it on exit so other tests see the default-off policy.
  obs::TraceCollector::Global().Configure({/*sample_every=*/1,
                                           /*slow_request_us=*/0});
  Boot(&attrs_);
  ASSERT_TRUE(client_->IngestBatch(std::vector<uint64_t>{1, 2, 3, 2, 1}));
  ASSERT_TRUE(client_->QuerySum().has_value());

  auto recent = client_->Trace();
  ASSERT_TRUE(recent.has_value());
  EXPECT_NE(recent->find("traceEvents"), std::string::npos);
  auto flight = client_->Trace(TraceScope::kFlight);
  ASSERT_TRUE(flight.has_value());
#ifndef DSKETCH_NO_METRICS
  // The sampled QUERY_SUM span tree is visible through the opcode, and
  // the always-on recorder carries the request roots.
  EXPECT_NE(recent->find("\"request\""), std::string::npos);
  EXPECT_NE(recent->find("query_reduce"), std::string::npos);
  EXPECT_NE(flight->find("request"), std::string::npos);
  auto stats = client_->Stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->traces_captured_total, 0u);
#endif
  obs::TraceCollector::Global().Configure(obs::TraceConfig{});
}

TEST(ServiceProtocolNegotiationTest, PriorVersionFramesAreRefused) {
  SketchServer server(SmallServerOptions());
  // A v4 peer (the pre-TRACE protocol) must get a firm kUnsupported,
  // not a misparse: the version byte gates before the opcode switch.
  std::string old_frame;
  wire::VarintWriter w(old_frame);
  w.PutByte(kProtocolVersion - 1);
  w.PutByte(static_cast<uint8_t>(Opcode::kStats));
  w.PutVarint(1);
  EXPECT_EQ(ResponseStatusOf(server.HandleRequest(old_frame)),
            Status::kUnsupported);
  EXPECT_EQ(server.Stats().errors_unsupported, 1u);
}

// STATS breaks errors down by status, and a read replica reports the
// same counter set as a read-write server — same fields, same causes.
TEST(ServiceErrorCounterTest, WriterAndReplicaReportPerStatusErrors) {
  auto poke = [](SketchServer& server) {
    // One malformed (empty request), one unknown opcode, one
    // unsupported (future protocol version).
    server.HandleRequest("");
    std::string unknown;
    wire::VarintWriter wu(unknown);
    wu.PutByte(kProtocolVersion);
    wu.PutByte(42);
    wu.PutVarint(1);
    server.HandleRequest(unknown);
    std::string future;
    wire::VarintWriter wf(future);
    wf.PutByte(kProtocolVersion + 1);
    wf.PutByte(static_cast<uint8_t>(Opcode::kStats));
    wf.PutVarint(2);
    server.HandleRequest(future);
  };

  SketchServer writer(SmallServerOptions());
  poke(writer);
  StatsResponse ws = writer.Stats();
  EXPECT_EQ(ws.errors, 3u);
  EXPECT_EQ(ws.errors_malformed, 1u);
  EXPECT_EQ(ws.errors_unknown_opcode, 1u);
  EXPECT_EQ(ws.errors_unsupported, 1u);
  EXPECT_EQ(ws.errors_too_large, 0u);
  EXPECT_EQ(ws.errors_bad_state, 0u);

  UnbiasedSpaceSaving sketch(64, 3);
  for (uint64_t i = 0; i < 500; ++i) sketch.Update(i % 20);
  std::optional<FrozenSketchSource> image =
      FrozenSketchSource::FromBlob(SerializeFrozen(sketch));
  ASSERT_TRUE(image.has_value());
  SketchServer replica(SmallServerOptions(), &*image, nullptr);
  poke(replica);
  // Plus one replica-specific refusal: ingest is kUnsupported there.
  IngestBatchRequest ingest;
  ingest.items = {7, 8};
  EXPECT_EQ(ResponseStatusOf(
                replica.HandleRequest(EncodeIngestBatchRequest(9, ingest))),
            Status::kUnsupported);
  StatsResponse rs = replica.Stats();
  EXPECT_EQ(rs.errors, 4u);
  EXPECT_EQ(rs.errors_malformed, ws.errors_malformed);
  EXPECT_EQ(rs.errors_unknown_opcode, ws.errors_unknown_opcode);
  EXPECT_EQ(rs.errors_unsupported, ws.errors_unsupported + 1);
  EXPECT_EQ(rs.errors_too_large, 0u);
  EXPECT_EQ(rs.errors_bad_state, 0u);

  // The replica answers METRICS like any writer (observability does not
  // degrade on read-only nodes).
  MetricsRequest mreq;
  std::string mrsp = replica.HandleRequest(EncodeMetricsRequest(10, mreq));
  EXPECT_EQ(ResponseStatusOf(mrsp), Status::kOk);
}

TEST(ServiceSlowRequestTest, HookFiresWithTheRequestShape) {
  SketchServerOptions options = SmallServerOptions();
  options.slow_request_us = 1;  // every real request is slower than 1µs
  std::vector<SlowRequestInfo> calls;
  options.slow_request_hook = [&](const SlowRequestInfo& info) {
    calls.push_back(info);
  };
  SketchServer server(options);

  IngestBatchRequest req;
  for (uint64_t i = 0; i < 50000; ++i) req.items.push_back(i % 1000);
  const std::string request = EncodeIngestBatchRequest(21, req);
  const std::string response = server.HandleRequest(request);
  EXPECT_EQ(ResponseStatusOf(response), Status::kOk);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].opcode, Opcode::kIngestBatch);
  EXPECT_EQ(calls[0].request_id, 21u);
  EXPECT_GE(calls[0].latency_us, 1u);
  EXPECT_EQ(calls[0].request_bytes, request.size());
  EXPECT_EQ(calls[0].response_bytes, response.size());

  // Threshold 0 disables the hook entirely.
  SketchServerOptions quiet = SmallServerOptions();
  std::vector<SlowRequestInfo> quiet_calls;
  quiet.slow_request_hook = [&](const SlowRequestInfo& info) {
    quiet_calls.push_back(info);
  };
  SketchServer quiet_server(quiet);
  quiet_server.HandleRequest(request);
  EXPECT_TRUE(quiet_calls.empty());
}

}  // namespace
}  // namespace dsketch
