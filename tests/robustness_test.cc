// Robustness and interaction tests: edge-of-domain keys, query-engine
// fuzzing against ground truth, merge-of-decayed-sketches workflows,
// long LoadEntries lifecycles, and distributional checks on the stream
// substrate that other suites do not cover.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/decayed_space_saving.h"
#include "core/merge.h"
#include "core/space_saving_core.h"
#include "core/unbiased_space_saving.h"
#include "core/weighted_space_saving.h"
#include "hhh/hierarchical_heavy_hitters.h"
#include "query/engine.h"
#include "stats/welford.h"
#include "stream/ad_click.h"
#include "stream/generators.h"
#include "test_scale.h"
#include "util/flat_map.h"
#include "util/random.h"

namespace dsketch {
namespace {

TEST(RobustnessTest, FlatMapHandlesBoundaryKeys) {
  FlatMap<uint32_t> map;
  // Everything except the reserved kEmpty sentinel must be storable.
  std::vector<uint64_t> keys{0,          1,          0x7FFFFFFFFFFFFFFFull,
                             1ull << 63, ~0ull - 1,  0xDEADBEEFull};
  for (uint32_t i = 0; i < keys.size(); ++i) {
    map.InsertOrAssign(keys[i], i);
  }
  for (uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(map.Find(keys[i]), nullptr);
    EXPECT_EQ(*map.Find(keys[i]), i);
  }
}

TEST(RobustnessTest, SketchAcceptsExtremeItemIds) {
  UnbiasedSpaceSaving sketch(4, 1);
  // Item ids at the edges of the valid space (kNoLabel = ~0-1 and the
  // FlatMap sentinel ~0 are reserved by contract).
  std::vector<uint64_t> ids{0, 1, 0x8000000000000000ull, ~0ull - 2};
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t id : ids) sketch.Update(id);
  }
  for (uint64_t id : ids) EXPECT_EQ(sketch.EstimateCount(id), 10);
}

TEST(RobustnessTest, RngBoundOneAlwaysZero) {
  Rng rng(500);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RobustnessTest, UrnStreamFirstDrawMatchesProportions) {
  // The urn must draw its first row proportional to counts — this is what
  // makes it interchangeable with PermutedStream for huge streams.
  std::vector<int64_t> counts{70, 20, 10};
  std::vector<int> first(3, 0);
  const int kTrials = test::ScaledTrials(4000);
  for (int t = 0; t < kTrials; ++t) {
    UrnStream stream(counts, static_cast<uint64_t>(900 + t));
    uint64_t item;
    ASSERT_TRUE(stream.Next(&item));
    ++first[item];
  }
  // 5-sigma binomial bands; at the full-strength 40000 trials this is the
  // seed's original ~0.012 tolerance for the 0.70 proportion.
  auto tol = [kTrials](double p) {
    return 5.0 * std::sqrt(p * (1.0 - p) / kTrials) + 0.001;
  };
  EXPECT_NEAR(first[0] / static_cast<double>(kTrials), 0.70, tol(0.70));
  EXPECT_NEAR(first[1] / static_cast<double>(kTrials), 0.20, tol(0.20));
  EXPECT_NEAR(first[2] / static_cast<double>(kTrials), 0.10, tol(0.10));
}

TEST(RobustnessTest, WeightedEntriesSortedDescending) {
  WeightedSpaceSaving sketch(16, 2);
  Rng rng(501);
  for (int i = 0; i < 5000; ++i) {
    sketch.Update(rng.NextBounded(100), 0.1 + rng.NextDouble());
  }
  auto entries = sketch.Entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].weight, entries[i].weight);
  }
}

TEST(RobustnessTest, QueryEngineFuzzAgainstExact) {
  // Exact-capacity sketch => the approximate engine must equal the exact
  // engine on *every* conjunctive predicate.
  AdClickConfig cfg;
  cfg.num_ads = 500;
  cfg.num_features = 5;
  cfg.feature_cardinality = 7;
  cfg.weibull_scale = 10.0;
  AdClickGenerator gen(cfg, 502);
  auto log = gen.GenerateLog(/*shuffled=*/false, 503);

  UnbiasedSpaceSaving sketch(512, 3);  // >= 500 distinct ads: exact
  ExactAggregator exact;
  for (const AdImpression& row : log) {
    sketch.Update(row.ad_id);
    exact.Update(row.ad_id);
  }
  SketchQueryEngine approx_engine(&sketch, &gen.attributes());
  ExactQueryEngine exact_engine(&exact, &gen.attributes());

  Rng rng(504);
  for (int q = 0; q < 300; ++q) {
    Predicate pred;
    int conditions = 1 + static_cast<int>(rng.NextBounded(3));
    for (int c = 0; c < conditions; ++c) {
      size_t dim = rng.NextBounded(cfg.num_features);
      if (rng.NextBernoulli(0.5)) {
        pred.WhereEq(dim, static_cast<uint32_t>(
                              rng.NextBounded(cfg.feature_cardinality)));
      } else {
        pred.WhereIn(dim,
                     {static_cast<uint32_t>(
                          rng.NextBounded(cfg.feature_cardinality)),
                      static_cast<uint32_t>(
                          rng.NextBounded(cfg.feature_cardinality))});
      }
    }
    EXPECT_DOUBLE_EQ(approx_engine.Sum(pred).estimate,
                     static_cast<double>(exact_engine.Sum(pred)))
        << "query " << q;
  }
}

TEST(RobustnessTest, TwoWayGroupByMatchesExactUnderExactSketch) {
  AdClickConfig cfg;
  cfg.num_ads = 300;
  cfg.num_features = 4;
  cfg.feature_cardinality = 5;
  AdClickGenerator gen(cfg, 505);
  auto log = gen.GenerateLog(/*shuffled=*/true, 506);

  UnbiasedSpaceSaving sketch(512, 4);
  ExactAggregator exact;
  for (const AdImpression& row : log) {
    sketch.Update(row.ad_id);
    exact.Update(row.ad_id);
  }
  SketchQueryEngine approx_engine(&sketch, &gen.attributes());
  ExactQueryEngine exact_engine(&exact, &gen.attributes());

  auto approx = approx_engine.GroupBy2(1, 3);
  auto truth = exact_engine.GroupBy2(1, 3);
  EXPECT_EQ(approx.size(), truth.size());
  for (const auto& [key, value] : truth) {
    ASSERT_TRUE(approx.count(key)) << "missing group";
    EXPECT_DOUBLE_EQ(approx[key].estimate, static_cast<double>(value));
  }
}

TEST(RobustnessTest, MergedDecayedSketchesStayUnbiased) {
  // Two sites sketch their own decayed streams; the reducer merges the
  // decayed entries at a common query time via the weighted reduction.
  const double kHalfLife = 100.0;
  const double kQueryTime = 400.0;
  Welford est;
  const int kTrials = test::ScaledTrials(400);
  for (int t = 0; t < kTrials; ++t) {
    DecayedSpaceSaving site_a(4, kHalfLife, 700000 + t);
    DecayedSpaceSaving site_b(4, kHalfLife, 710000 + t);
    Rng rng(720000 + t);
    double expected = 0;
    for (int i = 0; i < 200; ++i) {
      double ts = static_cast<double>(i);
      uint64_t item = rng.NextBounded(30);
      (i % 2 == 0 ? site_a : site_b).Update(item, ts);
      if (item < 10) expected += std::exp2(-(kQueryTime - ts) / kHalfLife);
    }
    // Reducer: weighted sketches from decayed entries at query time.
    WeightedSpaceSaving wa(4, 730000 + t), wb(4, 740000 + t);
    wa.LoadEntries(site_a.DecayedEntries(kQueryTime));
    wb.LoadEntries(site_b.DecayedEntries(kQueryTime));
    WeightedSpaceSaving merged = Merge(wa, wb, 4, 750000 + t);
    double subset = 0;
    for (const WeightedEntry& e : merged.Entries()) {
      if (e.item < 10) subset += e.weight;
    }
    est.Add(subset - expected);
  }
  EXPECT_NEAR(est.mean(), 0.0, 5 * est.stderr_mean() + 0.01);
}

TEST(RobustnessTest, RepeatedLoadEntriesLifecycle) {
  // Merge-heavy deployments repeatedly load, update, extract: the range
  // map must stay consistent across many cycles.
  UnbiasedSpaceSaving sketch(16, 5);
  Rng rng(507);
  int64_t running_total = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 500; ++i) {
      sketch.Update(rng.NextBounded(100) + cycle);
    }
    running_total += 500;
    auto entries = sketch.Entries();
    Rng reduce_rng(508 + cycle);
    auto reduced = ReducePairwise(entries, 12, reduce_rng);
    sketch.core().LoadEntries(reduced);
    int64_t sum = 0;
    for (const SketchEntry& e : sketch.Entries()) sum += e.count;
    ASSERT_EQ(sum, running_total) << "cycle " << cycle;
  }
}

TEST(RobustnessTest, HierarchicalContracts) {
  EXPECT_DEATH(HierarchicalHeavyHitters(0, 8, 4), "CHECK failed");
  EXPECT_DEATH(HierarchicalHeavyHitters(9, 8, 4), "CHECK failed");
  HierarchicalHeavyHitters hhh(2, 8, 4);
  hhh.Update(42);
  EXPECT_DEATH(hhh.Query(0.0), "CHECK failed");
  EXPECT_DEATH(hhh.EstimatePrefix(42, 5), "CHECK failed");
}

TEST(RobustnessTest, DistinctFloodThenHeavyRecovers) {
  // After an all-distinct flood, a newly arriving heavy item must climb
  // into the sketch quickly (Theorem 3's mechanism) — robustness against
  // "cold cache" starts.
  UnbiasedSpaceSaving sketch(32, 6);
  for (uint64_t i = 0; i < 100000; ++i) sketch.Update(1000000 + i);
  for (int i = 0; i < 50000; ++i) sketch.Update(7);
  EXPECT_TRUE(sketch.Contains(7));
  // The estimate remains unbiased-ish: within 25% for this single run.
  EXPECT_NEAR(static_cast<double>(sketch.EstimateCount(7)), 50000.0,
              12500.0);
}

}  // namespace
}  // namespace dsketch
