// Adversarial decoder hardening across every sketch kind and both wire
// versions: truncation at every byte boundary, trailing garbage, an
// exhaustive single-bit-flip sweep, and hand-crafted hostile headers
// (huge capacities/arity/geometry, varint overflow, delta underflow).
// The contract under attack: Deserialize* returns nullopt on anything it
// rejects and never aborts, over-reads, or force-allocates — CI runs
// this suite under asan+ubsan, where any violation is fatal.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "util/random.h"
#include "wire/codec.h"
#include "wire/varint.h"

namespace dsketch {
namespace {

// Kind bytes, part of the wire contract (see core/serialization.cc).
constexpr uint8_t kKindUnbiased = 1;
constexpr uint8_t kKindMultiMetric = 4;
constexpr uint8_t kKindMisraGries = 5;
constexpr uint8_t kKindCountMin = 6;

struct Blob {
  std::string label;
  std::string bytes;
};

// Small-but-nonempty sketches of every kind, encoded at both versions.
std::vector<Blob> AllBlobs() {
  std::vector<Blob> blobs;
  auto add = [&](const std::string& label, std::string v2, std::string v1) {
    blobs.push_back({label + "/v2", std::move(v2)});
    blobs.push_back({label + "/v1", std::move(v1)});
  };

  UnbiasedSpaceSaving uss(8, 11);
  Rng rng(500);
  for (int i = 0; i < 400; ++i) uss.Update(rng.NextBounded(30));
  add("unbiased", Serialize(uss), SerializeV1(uss));

  DeterministicSpaceSaving dss(8, 12);
  for (int i = 0; i < 400; ++i) dss.Update(i % 30);
  add("deterministic", Serialize(dss), SerializeV1(dss));

  WeightedSpaceSaving wss(8, 13);
  for (int i = 0; i < 300; ++i) {
    wss.Update(rng.NextBounded(30), 0.5 + rng.NextDouble());
  }
  add("weighted", Serialize(wss), SerializeV1(wss));

  MultiMetricSpaceSaving mm(6, 2, 14);
  for (int i = 0; i < 300; ++i) {
    mm.Update(rng.NextBounded(25), 1.0, {rng.NextDouble(), 2.0});
  }
  add("multimetric", Serialize(mm), SerializeV1(mm));

  MisraGries mg(6);
  for (int i = 0; i < 500; ++i) mg.Update(rng.NextBounded(40));
  add("misragries", Serialize(mg), SerializeV1(mg));

  CountMin cm(16, 2, 15, /*conservative=*/false);
  for (int i = 0; i < 300; ++i) cm.Update(rng.NextBounded(50), 2);
  add("countmin", Serialize(cm), SerializeV1(cm));

  return blobs;
}

// Runs every deserializer over the bytes; returns how many accepted.
// The hard requirement is simply surviving the call — rejection paths
// must bail with nullopt, not abort or over-read.
size_t DecodeAll(std::string_view bytes) {
  size_t accepted = 0;
  if (DeserializeUnbiased(bytes, 3).has_value()) ++accepted;
  if (DeserializeDeterministic(bytes, 3).has_value()) ++accepted;
  if (DeserializeWeighted(bytes, 3).has_value()) ++accepted;
  if (DeserializeMultiMetric(bytes, 3).has_value()) ++accepted;
  if (DeserializeMisraGries(bytes).has_value()) ++accepted;
  if (DeserializeCountMin(bytes).has_value()) ++accepted;
  return accepted;
}

TEST(WireAdversarialTest, IntactBlobsDecodeExactlyOnce) {
  for (const Blob& blob : AllBlobs()) {
    EXPECT_EQ(DecodeAll(blob.bytes), 1u) << blob.label;
  }
}

TEST(WireAdversarialTest, EveryTruncationIsRejected) {
  // Entry counts travel before the payload, so no strict prefix of a
  // valid blob can itself be valid.
  for (const Blob& blob : AllBlobs()) {
    for (size_t cut = 0; cut < blob.bytes.size(); ++cut) {
      EXPECT_EQ(DecodeAll(std::string_view(blob.bytes.data(), cut)), 0u)
          << blob.label << " cut at " << cut;
    }
  }
}

TEST(WireAdversarialTest, TrailingGarbageIsRejected) {
  for (const Blob& blob : AllBlobs()) {
    std::string padded = blob.bytes;
    padded.push_back('\0');
    EXPECT_EQ(DecodeAll(padded), 0u) << blob.label;
    padded.back() = '\x7f';
    EXPECT_EQ(DecodeAll(padded), 0u) << blob.label;
  }
}

TEST(WireAdversarialTest, SingleBitFlipsNeverAbort) {
  // A flipped bit may still decode (e.g. inside an item label); the
  // contract is that every outcome is a clean nullopt-or-value with no
  // aborts, out-of-bounds reads, or hostile allocations.
  size_t survived = 0;
  for (const Blob& blob : AllBlobs()) {
    std::string tampered = blob.bytes;
    for (size_t i = 0; i < tampered.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        tampered[i] = static_cast<char>(tampered[i] ^ (1 << bit));
        survived += DecodeAll(tampered);
        tampered[i] = blob.bytes[i];  // restore
      }
    }
  }
  // Some flips (item-label bits) legitimately still decode; the count
  // only has to be finite and the loop alive to get here.
  SUCCEED() << survived << " tampered blobs still decoded cleanly";
}

// ---------------------------------------------------------------------
// Hand-crafted hostile v2 payloads.
// ---------------------------------------------------------------------

std::string V2Blob(uint8_t kind,
                   const std::function<void(wire::VarintWriter&)>& payload) {
  std::string out;
  wire::WriteEnvelope(out, kind, wire::kVersionCurrent);
  wire::VarintWriter writer(out);
  payload(writer);
  return out;
}

TEST(WireAdversarialTest, HostileCapacityHeadersAreRejected) {
  // Capacity beyond the documented cap.
  std::string over_cap = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(kMaxSerializableCapacity + 1);
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(over_cap), 0u);

  // Zero capacity.
  std::string zero_cap = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(0);
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(zero_cap), 0u);

  // Entry count beyond capacity.
  std::string over_count = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(5);
  });
  EXPECT_EQ(DecodeAll(over_count), 0u);

  // A maximal claimed count with a near-empty payload: the byte-budget
  // bound must reject before any large reserve.
  std::string alloc_bomb = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(kMaxSerializableCapacity);
    w.PutVarint(kMaxSerializableCapacity);
    w.PutVarint(1);  // one lonely byte where 2^22 entries were claimed
  });
  EXPECT_EQ(DecodeAll(alloc_bomb), 0u);
}

TEST(WireAdversarialTest, VarintOverflowAndDeltaUnderflowAreRejected) {
  // An 11-byte varint (continuation bit never clears within 10 bytes).
  std::string overlong = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    for (int i = 0; i < 11; ++i) w.PutByte(0x80);
  });
  EXPECT_EQ(DecodeAll(overlong), 0u);

  // A first count that exceeds int64.
  std::string count_overflow =
      V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
        w.PutVarint(4);
        w.PutVarint(1);
        w.PutVarint(7);                    // item
        w.PutVarint(uint64_t{1} << 63);    // count > INT64_MAX
      });
  EXPECT_EQ(DecodeAll(count_overflow), 0u);

  // A delta larger than the running count (would drive counts negative).
  std::string underflow = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(2);
    w.PutVarint(7);   // item 0
    w.PutVarint(5);   // first count 5
    w.PutVarint(8);   // item 1
    w.PutVarint(9);   // delta 9 > 5
  });
  EXPECT_EQ(DecodeAll(underflow), 0u);

  // Two near-INT64_MAX counts whose sum would wrap the restored
  // TotalCount (the overflow the bit-flip sweep first caught under
  // ubsan: each count is individually valid, the sum is not).
  std::string total_overflow =
      V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
        w.PutVarint(4);
        w.PutVarint(2);
        w.PutVarint(7);
        w.PutVarint(static_cast<uint64_t>(INT64_MAX));  // count 1
        w.PutVarint(8);
        w.PutVarint(0);  // delta 0: count 2 also INT64_MAX
      });
  EXPECT_EQ(DecodeAll(total_overflow), 0u);

  // Duplicate labels.
  std::string duplicate = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(2);
    w.PutVarint(7);
    w.PutVarint(5);
    w.PutVarint(7);  // same label again
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(duplicate), 0u);
}

TEST(WireAdversarialTest, HostileArityAndGeometryAreRejected) {
  // MultiMetric arity blowing the footprint bound.
  std::string huge_arity =
      V2Blob(kKindMultiMetric, [](wire::VarintWriter& w) {
        w.PutVarint(1 << 20);  // capacity passes the header cap alone
        w.PutVarint(0);
        w.PutVarint(1 << 20);  // capacity * (2 + K) >> cap
      });
  EXPECT_EQ(DecodeAll(huge_arity), 0u);

  // CountMin geometry: zero width, oversized width, and a product that
  // overflows the cell cap.
  for (auto [width, depth] :
       std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 2},
           {kMaxSerializableCountMinCells + 1, 1},
           {uint64_t{1} << 24, uint64_t{1} << 24}}) {
    std::string bad = V2Blob(kKindCountMin, [&](wire::VarintWriter& w) {
      w.PutVarint(width);
      w.PutVarint(depth);
      w.PutValue(uint64_t{9});  // seed
      w.PutByte(0);
      w.PutVarint(0);  // total
    });
    EXPECT_EQ(DecodeAll(bad), 0u) << width << "x" << depth;
  }

  // CountMin claiming a maximal table with no cell bytes behind it.
  std::string cm_bomb = V2Blob(kKindCountMin, [](wire::VarintWriter& w) {
    w.PutVarint(kMaxSerializableCountMinCells / 2);
    w.PutVarint(2);
    w.PutValue(uint64_t{9});
    w.PutByte(0);
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(cm_bomb), 0u);

  // MisraGries claiming more decrements than rows.
  std::string mg_bad = V2Blob(kKindMisraGries, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(0);
    w.PutVarint(10);  // decrements
    w.PutVarint(3);   // total < decrements
  });
  EXPECT_EQ(DecodeAll(mg_bad), 0u);
}

}  // namespace
}  // namespace dsketch
