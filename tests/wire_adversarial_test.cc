// Adversarial decoder hardening across every sketch kind and both wire
// versions: truncation at every byte boundary, trailing garbage, an
// exhaustive single-bit-flip sweep, and hand-crafted hostile headers
// (huge capacities/arity/geometry, varint overflow, delta underflow) —
// plus the frozen image (kind 8), whose offset-based layout gets its own
// hostile-header sweep (overlapping sections, out-of-bounds/wrapping
// offsets, misaligned sections, lying counts) and a content-lie sweep
// (Vet accepts, queries must stay in bounds, deep thaw must reject).
// The contract under attack: Deserialize* returns nullopt on anything it
// rejects and never aborts, over-reads, or force-allocates — CI runs
// this suite under asan+ubsan, where any violation is fatal.

#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "util/random.h"
#include "util/span.h"
#include "window/window_wire.h"
#include "wire/codec.h"
#include "wire/frozen.h"
#include "wire/varint.h"

namespace dsketch {
namespace {

// Kind bytes, part of the wire contract (see core/serialization.cc).
constexpr uint8_t kKindUnbiased = 1;
constexpr uint8_t kKindMultiMetric = 4;
constexpr uint8_t kKindMisraGries = 5;
constexpr uint8_t kKindCountMin = 6;
// kWireKindWindowed (7) comes from window/window_wire.h.

struct Blob {
  std::string label;
  std::string bytes;
};

// Small-but-nonempty sketches of every kind, encoded at both versions.
std::vector<Blob> AllBlobs() {
  std::vector<Blob> blobs;
  auto add = [&](const std::string& label, std::string v2, std::string v1) {
    blobs.push_back({label + "/v2", std::move(v2)});
    blobs.push_back({label + "/v1", std::move(v1)});
  };

  UnbiasedSpaceSaving uss(8, 11);
  Rng rng(500);
  for (int i = 0; i < 400; ++i) uss.Update(rng.NextBounded(30));
  add("unbiased", Serialize(uss), SerializeV1(uss));

  DeterministicSpaceSaving dss(8, 12);
  for (int i = 0; i < 400; ++i) dss.Update(i % 30);
  add("deterministic", Serialize(dss), SerializeV1(dss));

  WeightedSpaceSaving wss(8, 13);
  for (int i = 0; i < 300; ++i) {
    wss.Update(rng.NextBounded(30), 0.5 + rng.NextDouble());
  }
  add("weighted", Serialize(wss), SerializeV1(wss));

  MultiMetricSpaceSaving mm(6, 2, 14);
  for (int i = 0; i < 300; ++i) {
    mm.Update(rng.NextBounded(25), 1.0, {rng.NextDouble(), 2.0});
  }
  add("multimetric", Serialize(mm), SerializeV1(mm));

  MisraGries mg(6);
  for (int i = 0; i < 500; ++i) mg.Update(rng.NextBounded(40));
  add("misragries", Serialize(mg), SerializeV1(mg));

  CountMin cm(16, 2, 15, /*conservative=*/false);
  for (int i = 0; i < 300; ++i) cm.Update(rng.NextBounded(50), 2);
  add("countmin", Serialize(cm), SerializeV1(cm));

  // The windowed ring kind is v2-only, so it contributes one blob (with
  // a populated decayed accumulator so every payload section is swept).
  WindowedSketchOptions wopt;
  wopt.window_epochs = 3;
  wopt.epoch_capacity = 8;
  wopt.merged_capacity = 16;
  wopt.half_life_epochs = 2.0;
  wopt.seed = 16;
  WindowedSpaceSaving win(wopt);
  for (uint64_t e = 0; e < 4; ++e) {
    std::vector<uint64_t> rows;
    for (int i = 0; i < 150; ++i) rows.push_back(rng.NextBounded(25));
    win.UpdateBatch(Span<const uint64_t>(rows.data(), rows.size()));
    if (e < 3) win.Advance();
  }
  blobs.push_back({"windowed/v2", SerializeWindowed(win)});

  // The frozen image (kind 8) is v2-only too; DeserializeUnbiased
  // dispatches on the envelope, so it rides the same sweeps.
  blobs.push_back({"frozen/v2", SerializeFrozen(uss)});

  return blobs;
}

// Runs every deserializer over the bytes; returns how many accepted.
// The hard requirement is simply surviving the call — rejection paths
// must bail with nullopt, not abort or over-read.
size_t DecodeAll(std::string_view bytes) {
  size_t accepted = 0;
  if (DeserializeUnbiased(bytes, 3).has_value()) ++accepted;
  if (DeserializeDeterministic(bytes, 3).has_value()) ++accepted;
  if (DeserializeWeighted(bytes, 3).has_value()) ++accepted;
  if (DeserializeMultiMetric(bytes, 3).has_value()) ++accepted;
  if (DeserializeMisraGries(bytes).has_value()) ++accepted;
  if (DeserializeCountMin(bytes).has_value()) ++accepted;
  if (DeserializeWindowed(bytes, 3).has_value()) ++accepted;
  return accepted;
}

TEST(WireAdversarialTest, IntactBlobsDecodeExactlyOnce) {
  for (const Blob& blob : AllBlobs()) {
    EXPECT_EQ(DecodeAll(blob.bytes), 1u) << blob.label;
  }
}

TEST(WireAdversarialTest, EveryTruncationIsRejected) {
  // Entry counts travel before the payload, so no strict prefix of a
  // valid blob can itself be valid.
  for (const Blob& blob : AllBlobs()) {
    for (size_t cut = 0; cut < blob.bytes.size(); ++cut) {
      EXPECT_EQ(DecodeAll(std::string_view(blob.bytes.data(), cut)), 0u)
          << blob.label << " cut at " << cut;
    }
  }
}

TEST(WireAdversarialTest, TrailingGarbageIsRejected) {
  for (const Blob& blob : AllBlobs()) {
    std::string padded = blob.bytes;
    padded.push_back('\0');
    EXPECT_EQ(DecodeAll(padded), 0u) << blob.label;
    padded.back() = '\x7f';
    EXPECT_EQ(DecodeAll(padded), 0u) << blob.label;
  }
}

TEST(WireAdversarialTest, SingleBitFlipsNeverAbort) {
  // A flipped bit may still decode (e.g. inside an item label); the
  // contract is that every outcome is a clean nullopt-or-value with no
  // aborts, out-of-bounds reads, or hostile allocations.
  size_t survived = 0;
  for (const Blob& blob : AllBlobs()) {
    std::string tampered = blob.bytes;
    for (size_t i = 0; i < tampered.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        tampered[i] = static_cast<char>(tampered[i] ^ (1 << bit));
        survived += DecodeAll(tampered);
        tampered[i] = blob.bytes[i];  // restore
      }
    }
  }
  // Some flips (item-label bits) legitimately still decode; the count
  // only has to be finite and the loop alive to get here.
  SUCCEED() << survived << " tampered blobs still decoded cleanly";
}

// ---------------------------------------------------------------------
// Hand-crafted hostile v2 payloads.
// ---------------------------------------------------------------------

std::string V2Blob(uint8_t kind,
                   const std::function<void(wire::VarintWriter&)>& payload) {
  std::string out;
  wire::WriteEnvelope(out, kind, wire::kVersionCurrent);
  wire::VarintWriter writer(out);
  payload(writer);
  return out;
}

TEST(WireAdversarialTest, HostileCapacityHeadersAreRejected) {
  // Capacity beyond the documented cap.
  std::string over_cap = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(kMaxSerializableCapacity + 1);
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(over_cap), 0u);

  // Zero capacity.
  std::string zero_cap = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(0);
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(zero_cap), 0u);

  // Entry count beyond capacity.
  std::string over_count = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(5);
  });
  EXPECT_EQ(DecodeAll(over_count), 0u);

  // A maximal claimed count with a near-empty payload: the byte-budget
  // bound must reject before any large reserve.
  std::string alloc_bomb = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(kMaxSerializableCapacity);
    w.PutVarint(kMaxSerializableCapacity);
    w.PutVarint(1);  // one lonely byte where 2^22 entries were claimed
  });
  EXPECT_EQ(DecodeAll(alloc_bomb), 0u);
}

TEST(WireAdversarialTest, VarintOverflowAndDeltaUnderflowAreRejected) {
  // An 11-byte varint (continuation bit never clears within 10 bytes).
  std::string overlong = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    for (int i = 0; i < 11; ++i) w.PutByte(0x80);
  });
  EXPECT_EQ(DecodeAll(overlong), 0u);

  // A first count that exceeds int64.
  std::string count_overflow =
      V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
        w.PutVarint(4);
        w.PutVarint(1);
        w.PutVarint(7);                    // item
        w.PutVarint(uint64_t{1} << 63);    // count > INT64_MAX
      });
  EXPECT_EQ(DecodeAll(count_overflow), 0u);

  // A delta larger than the running count (would drive counts negative).
  std::string underflow = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(2);
    w.PutVarint(7);   // item 0
    w.PutVarint(5);   // first count 5
    w.PutVarint(8);   // item 1
    w.PutVarint(9);   // delta 9 > 5
  });
  EXPECT_EQ(DecodeAll(underflow), 0u);

  // Two near-INT64_MAX counts whose sum would wrap the restored
  // TotalCount (the overflow the bit-flip sweep first caught under
  // ubsan: each count is individually valid, the sum is not).
  std::string total_overflow =
      V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
        w.PutVarint(4);
        w.PutVarint(2);
        w.PutVarint(7);
        w.PutVarint(static_cast<uint64_t>(INT64_MAX));  // count 1
        w.PutVarint(8);
        w.PutVarint(0);  // delta 0: count 2 also INT64_MAX
      });
  EXPECT_EQ(DecodeAll(total_overflow), 0u);

  // Duplicate labels.
  std::string duplicate = V2Blob(kKindUnbiased, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(2);
    w.PutVarint(7);
    w.PutVarint(5);
    w.PutVarint(7);  // same label again
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(duplicate), 0u);
}

TEST(WireAdversarialTest, HostileArityAndGeometryAreRejected) {
  // MultiMetric arity blowing the footprint bound.
  std::string huge_arity =
      V2Blob(kKindMultiMetric, [](wire::VarintWriter& w) {
        w.PutVarint(1 << 20);  // capacity passes the header cap alone
        w.PutVarint(0);
        w.PutVarint(1 << 20);  // capacity * (2 + K) >> cap
      });
  EXPECT_EQ(DecodeAll(huge_arity), 0u);

  // CountMin geometry: zero width, oversized width, and a product that
  // overflows the cell cap.
  for (auto [width, depth] :
       std::vector<std::pair<uint64_t, uint64_t>>{
           {0, 2},
           {kMaxSerializableCountMinCells + 1, 1},
           {uint64_t{1} << 24, uint64_t{1} << 24}}) {
    std::string bad = V2Blob(kKindCountMin, [&](wire::VarintWriter& w) {
      w.PutVarint(width);
      w.PutVarint(depth);
      w.PutValue(uint64_t{9});  // seed
      w.PutByte(0);
      w.PutVarint(0);  // total
    });
    EXPECT_EQ(DecodeAll(bad), 0u) << width << "x" << depth;
  }

  // CountMin claiming a maximal table with no cell bytes behind it.
  std::string cm_bomb = V2Blob(kKindCountMin, [](wire::VarintWriter& w) {
    w.PutVarint(kMaxSerializableCountMinCells / 2);
    w.PutVarint(2);
    w.PutValue(uint64_t{9});
    w.PutByte(0);
    w.PutVarint(0);
  });
  EXPECT_EQ(DecodeAll(cm_bomb), 0u);

  // MisraGries claiming more decrements than rows.
  std::string mg_bad = V2Blob(kKindMisraGries, [](wire::VarintWriter& w) {
    w.PutVarint(4);
    w.PutVarint(0);
    w.PutVarint(10);  // decrements
    w.PutVarint(3);   // total < decrements
  });
  EXPECT_EQ(DecodeAll(mg_bad), 0u);
}

TEST(WireAdversarialTest, HostileWindowRingHeadersAreRejected) {
  // Shared ring prefix up to (and excluding) the slot list:
  // [W][epoch_cap][merged_cap][rows_per_epoch][f64 half_life]
  // [rows_in_epoch][total_rows].
  auto prefix = [](wire::VarintWriter& w, uint64_t window_epochs,
                   uint64_t epoch_cap) {
    w.PutVarint(window_epochs);
    w.PutVarint(epoch_cap);
    w.PutVarint(32);   // merged capacity
    w.PutVarint(0);    // rows_per_epoch
    w.PutDouble(0.0);  // half-life: decay off
    w.PutVarint(0);    // rows_in_epoch
    w.PutVarint(0);    // total_rows
  };

  // Ring length over the cap, and zero.
  for (uint64_t w_epochs : {uint64_t{0}, kMaxWindowEpochs + 1}) {
    std::string bad =
        V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
          prefix(w, w_epochs, 8);
          w.PutVarint(1);
        });
    EXPECT_EQ(DecodeAll(bad), 0u) << w_epochs;
  }

  // A maximal slot-count claim with almost no bytes behind it: the
  // byte-budget bound must reject before any allocation.
  std::string slot_bomb =
      V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
        prefix(w, kMaxWindowEpochs, 8);
        w.PutVarint(kMaxWindowEpochs);  // claimed slots
        w.PutVarint(1);                 // one lonely byte
      });
  EXPECT_EQ(DecodeAll(slot_bomb), 0u);

  // Build a genuine one-slot ring, then corrupt structural fields.
  WindowedSketchOptions opt;
  opt.window_epochs = 2;
  opt.epoch_capacity = 8;
  opt.merged_capacity = 16;
  opt.seed = 5;
  WindowedSpaceSaving ring(opt);
  ring.Update(3);
  const std::string inner = Serialize(ring.slots().back().sketch);

  // Non-ascending slot epochs.
  std::string unsorted =
      V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
        prefix(w, 4, 8);
        w.PutVarint(2);  // two slots
        for (uint64_t epoch : {uint64_t{5}, uint64_t{5}}) {
          w.PutVarint(epoch);
          w.PutVarint(inner.size());
          for (char c : inner) w.PutByte(static_cast<uint8_t>(c));
        }
        w.PutByte(0);  // no decayed accumulator
      });
  EXPECT_EQ(DecodeAll(unsorted), 0u);

  // Slot epochs spanning more than one window (0 and 9 with W = 4).
  std::string wide = V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
    prefix(w, 4, 8);
    w.PutVarint(2);
    for (uint64_t epoch : {uint64_t{0}, uint64_t{9}}) {
      w.PutVarint(epoch);
      w.PutVarint(inner.size());
      for (char c : inner) w.PutByte(static_cast<uint8_t>(c));
    }
    w.PutByte(0);
  });
  EXPECT_EQ(DecodeAll(wide), 0u);

  // Inner blob of the wrong kind (a weighted sketch where an unbiased
  // epoch sketch belongs).
  WeightedSpaceSaving wss(8, 9);
  wss.Update(1, 2.0);
  const std::string wrong_kind = Serialize(wss);
  std::string bad_inner =
      V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
        prefix(w, 4, 8);
        w.PutVarint(1);
        w.PutVarint(0);
        w.PutVarint(wrong_kind.size());
        for (char c : wrong_kind) w.PutByte(static_cast<uint8_t>(c));
        w.PutByte(0);
      });
  EXPECT_EQ(DecodeAll(bad_inner), 0u);

  // Inner capacity disagreeing with the declared ring geometry.
  UnbiasedSpaceSaving mismatched(16, 9);  // ring declares 8 bins
  mismatched.Update(1);
  const std::string wrong_cap = Serialize(mismatched);
  std::string bad_cap =
      V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
        prefix(w, 4, 8);
        w.PutVarint(1);
        w.PutVarint(0);
        w.PutVarint(wrong_cap.size());
        for (char c : wrong_cap) w.PutByte(static_cast<uint8_t>(c));
        w.PutByte(0);
      });
  EXPECT_EQ(DecodeAll(bad_cap), 0u);

  // A decayed accumulator claimed with decay disabled (flag mismatch).
  std::string stray_acc =
      V2Blob(kWireKindWindowed, [&](wire::VarintWriter& w) {
        prefix(w, 4, 8);  // half-life 0: decay off
        w.PutVarint(1);
        w.PutVarint(0);
        w.PutVarint(inner.size());
        for (char c : inner) w.PutByte(static_cast<uint8_t>(c));
        w.PutByte(1);  // claims an accumulator anyway
      });
  EXPECT_EQ(DecodeAll(stray_acc), 0u);
}

// ---------------------------------------------------------------------
// Hostile frozen images (wire kind 8). The layout is offset-based, so
// the attack surface is different from the varint kinds: a hostile
// header can point sections anywhere. FrozenView::Vet is the O(1) gate
// — structural lies must die there, before any offset is trusted —
// while content lies (which Vet deliberately does not read) must never
// turn into out-of-bounds access at query time and must be rejected by
// the deep thaw.
// ---------------------------------------------------------------------

// A full capacity-8 frozen image: 320 bytes — entries at 128 (8 x 16 B),
// the 16-slot index at 256 (see wire/frozen.h for the layout math).
constexpr size_t kFrozenEntriesOffset = 128;
constexpr size_t kFrozenIndexOffset = 256;
constexpr size_t kFrozenTestSlots = 16;

std::string FrozenBlob() {
  UnbiasedSpaceSaving uss(8, 11);
  Rng rng(500);
  for (int i = 0; i < 400; ++i) uss.Update(rng.NextBounded(30));
  return SerializeFrozen(uss);
}

void PatchU64(std::string* image, size_t offset, uint64_t value) {
  for (size_t i = 0; i < 8; ++i) {
    (*image)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PatchSlot(std::string* image, size_t slot, uint32_t value) {
  std::memcpy(&(*image)[kFrozenIndexOffset + slot * 4], &value, 4);
}

TEST(WireAdversarialTest, FrozenHostileHeadersAreRejected) {
  const std::string good = FrozenBlob();
  ASSERT_EQ(good.size(), 320u);
  ASSERT_TRUE(wire::FrozenView::Vet(good).has_value());

  // Header field byte offsets: 8-byte envelope, then ten u64 fields.
  constexpr size_t kImageBytes = 8, kCapacity = 16, kEntryCount = 24,
                   kMinCount = 32, kTotalCount = 40, kEntriesOffset = 48,
                   kEntriesBytes = 56, kIndexOffset = 64, kIndexBytes = 72,
                   kIndexSlots = 80;
  struct Case {
    const char* label;
    size_t field;
    uint64_t value;
  };
  const Case cases[] = {
      {"lying image_bytes", kImageBytes, 320 + 64},
      {"zero capacity", kCapacity, 0},
      {"huge capacity", kCapacity, kMaxSerializableCapacity + 1},
      {"entry_count > capacity", kEntryCount, 9},
      {"lying entry_count", kEntryCount, 7},
      {"negative min_count", kMinCount, uint64_t{1} << 63},
      {"negative total_count", kTotalCount, uint64_t{1} << 63},
      {"entries overlapping header", kEntriesOffset, 64},
      {"misaligned entries", kEntriesOffset, kFrozenEntriesOffset + 8},
      {"entries at image end", kEntriesOffset, 320},
      {"entries offset wrapping u64", kEntriesOffset, ~uint64_t{0} - 63},
      {"lying entries_bytes", kEntriesBytes, 16 * 7},
      {"index overlapping entries", kIndexOffset, kFrozenEntriesOffset},
      {"misaligned index", kIndexOffset, kFrozenIndexOffset + 4},
      {"index at image end", kIndexOffset, 320},
      {"index offset wrapping u64", kIndexOffset, ~uint64_t{0} - 63},
      {"lying index_bytes", kIndexBytes, 128},
      {"non-canonical index_slots", kIndexSlots, 32},
  };
  for (const Case& c : cases) {
    std::string bad = good;
    PatchU64(&bad, c.field, c.value);
    EXPECT_FALSE(wire::FrozenView::Vet(bad).has_value()) << c.label;
    EXPECT_FALSE(DeserializeUnbiased(bad, 3).has_value()) << c.label;
  }
}

TEST(WireAdversarialTest, FrozenContentLiesAreSafeToQueryAndRejectedByThaw) {
  const std::string good = FrozenBlob();
  ASSERT_EQ(good.size(), 320u);

  // Every index slot claims an out-of-range entry: point queries must
  // give up cleanly (0), never chase the bogus index.
  std::string bad_index = good;
  for (size_t s = 0; s < kFrozenTestSlots; ++s) {
    PatchSlot(&bad_index, s, 0xFFFFFFFE);
  }
  std::optional<wire::FrozenView> view = wire::FrozenView::Vet(bad_index);
  ASSERT_TRUE(view.has_value());  // structurally intact, content is a lie
  for (uint64_t item = 0; item < 64; ++item) {
    EXPECT_EQ(view->EstimateCount(item), 0) << item;
  }
  EXPECT_FALSE(ThawFrozen(bad_index, 3).has_value());

  // Every slot points at entry 0: the probe chain never reaches an
  // empty slot, so only the step cap can end the walk.
  std::string cycle = good;
  for (size_t s = 0; s < kFrozenTestSlots; ++s) PatchSlot(&cycle, s, 0);
  view = wire::FrozenView::Vet(cycle);
  ASSERT_TRUE(view.has_value());
  for (uint64_t item = 0; item < 64; ++item) {
    (void)view->EstimateCount(item);  // must terminate; any answer is fine
  }
  EXPECT_FALSE(ThawFrozen(cycle, 3).has_value());

  // A non-positive count breaks the canonical-order invariant the O(1)
  // vet never reads: scans must stay in bounds, thaw must reject.
  std::string scrambled = good;
  PatchU64(&scrambled, kFrozenEntriesOffset + 8, 0);  // first count := 0
  view = wire::FrozenView::Vet(scrambled);
  ASSERT_TRUE(view.has_value());
  const wire::FrozenSumResult sum =
      wire::FrozenSubsetSum(*view, [](uint64_t) { return true; });
  (void)sum;  // any value; the traversal itself is what is under test
  EXPECT_FALSE(ThawFrozen(scrambled, 3).has_value());

  // Entries intact but the header total disagrees with their sum.
  std::string lying_total = good;
  PatchU64(&lying_total, 40, 1234567);
  EXPECT_TRUE(wire::FrozenView::Vet(lying_total).has_value());
  EXPECT_FALSE(ThawFrozen(lying_total, 3).has_value());
}

}  // namespace
}  // namespace dsketch
